/**
 * @file
 * Differential property suite: the analytical models against the
 * cycle simulator.  Noise-free profiles at the table bottom / middle
 * / top fit the models, which must then predict a held-out frequency
 * within the paper's accuracy bands (1.96% mean per-op time, 4.62%
 * SoC power, Sect. 7.2/7.3).
 *
 * These cases drive the full simulator, so they are among the most
 * expensive properties in the suite; the workloads stay small, and
 * the service-side differential lives in its own binary
 * (prop_service.cc) so ctest can run the two in parallel.
 */

#include <gtest/gtest.h>

#include "check/prop.h"
#include "diff_case.h"
#include "ops/op_factory.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/**
 * Shrunk counterexample (seed 20250807): a single memory-bound Add —
 * uncore-saturated, with the max(core, memory) kink inside the
 * frequency range.  A two-point endpoint fit undershoots its constant
 * time by ~4.7% mid-table, which is why the differential oracle fits
 * three points and validates held-out; this pin keeps the production
 * protocol honest on the worst single-op shape the generator found.
 */
TEST(PropDifferential, RegressionMemoryBoundAddStaysInBand)
{
    npu::MemorySystem memory(differentialChip().memory);
    ops::OpFactory factory(memory, Rng(2));
    models::Workload workload;
    workload.name = "shrunk-add";
    workload.iteration.push_back(factory.add(28 * (1 << 18)));
    std::optional<std::string> failure =
        checkModelVsSimulator(workload, 42);
    EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(PropDifferential, ModelsTrackSimulatorWithinPaperBands)
{
    Property<DiffCase> prop(
        "model-vs-simulator",
        [](Rng &rng) { return genDiffCase(rng, 2, 8); },
        [](const DiffCase &diff_case) {
            return checkModelVsSimulator(diff_case.workload,
                                         diff_case.seed);
        });
    prop.withShrinker(shrinkDiffCase).withPrinter(showDiffCase);
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
