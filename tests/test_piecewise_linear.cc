#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/random.h"
#include "math/piecewise_linear.h"

namespace opdvfs::math {
namespace {

TEST(ConvexPwl, AffineEvaluates)
{
    auto f = ConvexPwl::affine(2.0, 1.0);
    EXPECT_DOUBLE_EQ(f.eval(0.0), 1.0);
    EXPECT_DOUBLE_EQ(f.eval(3.0), 7.0);
    EXPECT_EQ(f.pieceCount(), 1u);
}

TEST(ConvexPwl, MaxOfTwoLines)
{
    // max(x, 2 - x): kink at x = 1.
    auto f = ConvexPwl::max(ConvexPwl::affine(1.0, 0.0),
                            ConvexPwl::affine(-1.0, 2.0));
    EXPECT_DOUBLE_EQ(f.eval(0.0), 2.0);
    EXPECT_DOUBLE_EQ(f.eval(1.0), 1.0);
    EXPECT_DOUBLE_EQ(f.eval(3.0), 3.0);
    auto kinks = f.breakpoints(-10.0, 10.0);
    ASSERT_EQ(kinks.size(), 1u);
    EXPECT_DOUBLE_EQ(kinks[0], 1.0);
}

TEST(ConvexPwl, DominatedPiecePruned)
{
    // The middle line never attains the maximum.
    auto f = ConvexPwl::max({ConvexPwl::affine(0.0, 0.0),
                             ConvexPwl::affine(1.0, -10.0),
                             ConvexPwl::affine(2.0, -12.0)});
    // Between x=0 (flat wins) and large x (slope-2 wins), slope-1 line
    // is always below: at the flat/steep crossing x=6, line 1 gives -4.
    EXPECT_EQ(f.pieceCount(), 2u);
}

TEST(ConvexPwl, EqualSlopesKeepHighestIntercept)
{
    auto f = ConvexPwl::max(ConvexPwl::affine(1.0, 0.0),
                            ConvexPwl::affine(1.0, 5.0));
    EXPECT_EQ(f.pieceCount(), 1u);
    EXPECT_DOUBLE_EQ(f.eval(0.0), 5.0);
}

TEST(ConvexPwl, SumOfMaxes)
{
    // (max(x, 1)) + (max(2x, 3)) evaluated at a few points.
    auto a = ConvexPwl::max(ConvexPwl::affine(1.0, 0.0),
                            ConvexPwl::constant(1.0));
    auto b = ConvexPwl::max(ConvexPwl::affine(2.0, 0.0),
                            ConvexPwl::constant(3.0));
    auto s = ConvexPwl::sum(a, b);
    for (double x : {0.0, 0.5, 1.0, 1.4, 1.5, 2.0, 5.0}) {
        double expected =
            std::max(x, 1.0) + std::max(2.0 * x, 3.0);
        EXPECT_NEAR(s.eval(x), expected, 1e-12) << "x=" << x;
    }
}

TEST(ConvexPwl, ScaledByZeroIsZeroFunction)
{
    auto f = ConvexPwl::max(ConvexPwl::affine(1.0, 0.0),
                            ConvexPwl::constant(1.0));
    auto z = f.scaled(0.0);
    EXPECT_DOUBLE_EQ(z.eval(-5.0), 0.0);
    EXPECT_DOUBLE_EQ(z.eval(5.0), 0.0);
}

TEST(ConvexPwl, NegativeScaleThrows)
{
    EXPECT_THROW(ConvexPwl::affine(1.0, 0.0).scaled(-1.0),
                 std::invalid_argument);
}

TEST(ConvexPwl, SlopeAtReportsActivePieceSlope)
{
    auto f = ConvexPwl::max(ConvexPwl::affine(1.0, 0.0),
                            ConvexPwl::affine(-1.0, 2.0));
    EXPECT_DOUBLE_EQ(f.slopeAt(0.0), -1.0);
    EXPECT_DOUBLE_EQ(f.slopeAt(2.0), 1.0);
}

TEST(ConvexPwl, EmptyMaxThrows)
{
    EXPECT_THROW(ConvexPwl::max(std::vector<ConvexPwl>{}),
                 std::invalid_argument);
}

TEST(IsConvexSamples, AcceptsConvexRejectsConcave)
{
    std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
    EXPECT_TRUE(isConvexSamples(x, {0.0, 1.0, 4.0, 9.0}));  // x^2
    EXPECT_FALSE(isConvexSamples(x, {0.0, 5.0, 6.0, 6.5})); // concave
    EXPECT_TRUE(isConvexSamples(x, {3.0, 2.0, 1.0, 0.0}));  // linear
}

TEST(IsConvexSamples, Validation)
{
    EXPECT_THROW(isConvexSamples({1.0, 1.0, 2.0}, {0.0, 0.0, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(isConvexSamples({1.0, 2.0}, {0.0}),
                 std::invalid_argument);
}

/** Property: random +/max compositions of affine pieces stay convex. */
class ConvexClosure : public ::testing::TestWithParam<int>
{
};

TEST_P(ConvexClosure, RandomCompositionIsConvex)
{
    opdvfs::Rng rng(static_cast<std::uint64_t>(GetParam()));
    ConvexPwl f = ConvexPwl::affine(rng.uniform(-2, 2), rng.uniform(-2, 2));
    for (int step = 0; step < 12; ++step) {
        ConvexPwl g =
            ConvexPwl::affine(rng.uniform(-2, 2), rng.uniform(-2, 2));
        switch (rng.index(3)) {
          case 0: f = ConvexPwl::max(f, g); break;
          case 1: f = ConvexPwl::sum(f, g); break;
          default: f = f.scaled(rng.uniform(0.0, 2.0)); break;
        }
    }

    std::vector<double> xs, ys;
    for (int i = 0; i <= 200; ++i) {
        double x = -10.0 + 0.1 * i;
        xs.push_back(x);
        ys.push_back(f.eval(x));
    }
    EXPECT_TRUE(isConvexSamples(xs, ys, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvexClosure, ::testing::Range(0, 20));

} // namespace
} // namespace opdvfs::math
