#include <gtest/gtest.h>

#include <sstream>

#include "dvfs/report.h"
#include "models/transformer.h"
#include "power/offline_calibration.h"

namespace opdvfs::dvfs {
namespace {

TEST(Report, ContainsAllSections)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "report-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = 512;
    model.batch = 2;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 9);

    PipelineOptions options;
    options.chip = chip;
    options.constants = power::calibrateOffline(chip);
    options.warmup_seconds = 2.0;
    options.ga.population = 30;
    options.ga.generations = 30;
    EnergyPipeline pipeline(options);
    PipelineResult result = pipeline.optimize(workload);

    std::ostringstream os;
    writeReport(result, workload, memory, os);
    std::string text = os.str();

    for (const char *expected :
         {"# opdvfs energy-optimisation report: report-test",
          "## Result", "## Workload", "## Bottleneck classification",
          "## Strategy", "## Power model constants", "iteration time",
          "AICore power", "SoC power", "MatMul", "LFC", "HFC",
          "gamma_aicore"}) {
        EXPECT_NE(text.find(expected), std::string::npos) << expected;
    }

    // The frequency histogram covers every stage exactly once.
    std::size_t stage_total = 0;
    std::istringstream lines(text);
    std::string line;
    bool in_histogram = false;
    while (std::getline(lines, line)) {
        if (line.rfind("| frequency (MHz)", 0) == 0) {
            in_histogram = true;
            std::getline(lines, line); // separator
            continue;
        }
        if (in_histogram) {
            if (line.empty() || line[0] != '|')
                break;
            auto last_bar = line.rfind('|');
            auto second_last = line.rfind('|', last_bar - 1);
            stage_total += std::stoul(
                line.substr(second_last + 1, last_bar - second_last - 1));
        }
    }
    EXPECT_EQ(stage_total, result.prep.stages.size());
}

} // namespace
} // namespace opdvfs::dvfs
