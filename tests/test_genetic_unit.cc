#include <gtest/gtest.h>

#include "dvfs/genetic.h"

namespace opdvfs::dvfs {
namespace {

StrategyEvaluation
eval(double seconds, double soc_watts)
{
    StrategyEvaluation e;
    e.seconds = seconds;
    e.soc_watts = soc_watts;
    e.soc_joules = seconds * soc_watts;
    return e;
}

TEST(StrategyScore, MeetingTheBoundDoublesTheScore)
{
    // Eq. 17: Score = 2 Per^2 / Power above the bound, Per^2 / Power
    // below it.
    double per = 1e-6 / 10.0; // 10 s iteration
    double bound_below = per * 0.9;
    double bound_above = per * 1.1;
    double meets = strategyScore(eval(10.0, 250.0), bound_below);
    double misses = strategyScore(eval(10.0, 250.0), bound_above);
    EXPECT_NEAR(meets / misses, 2.0, 1e-9);
    EXPECT_NEAR(meets, 2.0 * per * per / 250.0, 1e-20);
}

TEST(StrategyScore, LowerPowerScoresHigherAtEqualPerformance)
{
    double bound = 0.0;
    EXPECT_GT(strategyScore(eval(10.0, 200.0), bound),
              strategyScore(eval(10.0, 260.0), bound));
}

TEST(StrategyScore, FasterScoresHigherAtEqualPower)
{
    double bound = 0.0;
    EXPECT_GT(strategyScore(eval(9.0, 250.0), bound),
              strategyScore(eval(10.0, 250.0), bound));
}

TEST(StrategyScore, DegenerateEvaluationsScoreZero)
{
    EXPECT_DOUBLE_EQ(strategyScore(eval(0.0, 250.0), 0.0), 0.0);
    EXPECT_DOUBLE_EQ(strategyScore(eval(10.0, 0.0), 0.0), 0.0);
}

TEST(StrategyScore, PenaltyStillPrefersLessPowerAmongInfeasible)
{
    double bound = 1.0; // nothing meets it
    EXPECT_GT(strategyScore(eval(10.0, 200.0), bound),
              strategyScore(eval(10.0, 260.0), bound));
}

} // namespace
} // namespace opdvfs::dvfs
