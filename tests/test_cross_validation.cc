/**
 * Cross-module consistency: the discrete-event execution, the analytic
 * summary, the profiler and the fitted models must all agree about the
 * same workload, within measurement noise.
 */

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "models/model_zoo.h"
#include "ops/op_stats.h"
#include "perf/perf_model.h"
#include "trace/workload_runner.h"

namespace opdvfs {
namespace {

class CrossValidation : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CrossValidation, SimulatedIterationMatchesAnalyticSummary)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::Workload workload =
        models::buildWorkload(GetParam(), memory, 11);

    // Analytic: sum of per-op timeline durations at 1800 MHz.
    ops::WorkloadStats stats =
        ops::summarize(workload.iteration, workload.name, memory);

    // Simulated: run it end to end.
    trace::WorkloadRunner runner(chip);
    trace::RunOptions options;
    trace::RunResult run = runner.run(workload, options);

    // Back-to-back execution on one stream: wall time == sum of
    // durations, up to tick rounding.
    EXPECT_NEAR(run.iteration_seconds, stats.iteration_seconds,
                stats.iteration_seconds * 1e-5);
}

TEST_P(CrossValidation, ProfiledDurationsMatchAnalyticPerOp)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::Workload workload =
        models::buildWorkload(GetParam(), memory, 11);

    trace::WorkloadRunner runner(chip);
    trace::RunOptions options;
    options.profiler_noise.duration_sigma = 0.0; // noise off
    trace::RunResult run = runner.run(workload, options);

    for (const auto &record : run.records) {
        const ops::Op &op = workload.iteration[record.op_id];
        npu::AicoreTimeline timeline(op.hw, memory);
        double expected = timeline.seconds(1800.0);
        if (expected < 1e-6)
            continue;
        EXPECT_NEAR(record.duration_s, expected, expected * 1e-6)
            << op.type;
    }
}

TEST_P(CrossValidation, FittedModelsPredictTheSimulator)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::Workload workload =
        models::buildWorkload(GetParam(), memory, 11);

    trace::WorkloadRunner runner(chip);
    perf::PerfModelRepository repo;
    std::vector<trace::OpRecord> held_out;
    for (double f : {1000.0, 1400.0, 1600.0, 1800.0}) {
        trace::RunOptions options;
        options.initial_mhz = f;
        options.seed = 40 + static_cast<std::uint64_t>(f);
        trace::RunResult run = runner.run(workload, options);
        if (f == 1600.0) {
            held_out = run.records;
            continue; // validation only
        }
        repo.addProfile(f, run.records);
    }
    perf::PerfBuildOptions build;
    build.kind = perf::FitFunction::PwlCycles;
    repo.fitAll(build);

    std::vector<double> errors;
    for (const auto &e : repo.evaluate(1600.0, held_out))
        errors.push_back(e.relative_error);
    ASSERT_FALSE(errors.empty());
    EXPECT_LT(stats::mean(errors), 0.04);
}

INSTANTIATE_TEST_SUITE_P(Models, CrossValidation,
                         ::testing::Values("ResNet50", "Deit_small",
                                           "AlexNet"));

} // namespace
} // namespace opdvfs
