#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "npu/fault_injector.h"
#include "npu/npu_chip.h"
#include "sim/simulator.h"
#include "trace/power_sampler.h"

namespace opdvfs::npu {
namespace {

HwOpParams
computeOp(double core_cycles)
{
    HwOpParams params;
    params.category = OpCategory::Compute;
    params.scenario = Scenario::PingPongIndependent;
    params.n = 4;
    params.core_cycles = core_cycles / 4.0;
    params.ld_volume_bytes = 1e5;
    params.st_volume_bytes = 1e5;
    return params;
}

TEST(FaultPlan, AnyEnabledReflectsEveryClass)
{
    EXPECT_FALSE(FaultPlan{}.anyEnabled());

    FaultPlan drop;
    drop.set_freq_drop_rate = 0.1;
    EXPECT_TRUE(drop.anyEnabled());

    FaultPlan jitter;
    jitter.set_freq_jitter_max = kTicksPerMs;
    EXPECT_TRUE(jitter.anyEnabled());

    FaultPlan throttle;
    throttle.thermal_throttle = true;
    EXPECT_TRUE(throttle.anyEnabled());

    FaultPlan spurious;
    spurious.spurious_trip_rate_hz = 0.5;
    EXPECT_TRUE(spurious.anyEnabled());

    FaultPlan blackout;
    blackout.blackout_rate_hz = 0.5;
    EXPECT_TRUE(blackout.anyEnabled());

    FaultPlan spike;
    spike.spike_rate = 0.5;
    EXPECT_TRUE(spike.anyEnabled());
}

TEST(FaultPlan, DriftMagnitudesCountTowardAnyEnabled)
{
    EXPECT_FALSE(FaultPlan{}.driftEnabled());

    FaultPlan aging;
    aging.aging_dynamic_drift = 0.1;
    EXPECT_TRUE(aging.driftEnabled());
    EXPECT_TRUE(aging.anyEnabled());

    FaultPlan bias;
    bias.sensor_bias_watts = 2.0;
    EXPECT_TRUE(bias.driftEnabled());
    EXPECT_TRUE(bias.anyEnabled());

    FaultPlan latency;
    latency.latency_drift = 0.05;
    EXPECT_TRUE(latency.driftEnabled());
    EXPECT_TRUE(latency.anyEnabled());

    FaultPlan ambient;
    ambient.ambient_drift_celsius = 5.0;
    EXPECT_TRUE(ambient.driftEnabled());
    EXPECT_TRUE(ambient.anyEnabled());
}

TEST(FaultInjector, RejectsMalformedDriftPlans)
{
    FaultPlan nan_magnitude;
    nan_magnitude.sensor_bias_watts =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(FaultInjector{nan_magnitude}, std::invalid_argument);

    FaultPlan dead_power;
    dead_power.aging_dynamic_drift = -1.0;
    EXPECT_THROW(FaultInjector{dead_power}, std::invalid_argument);

    FaultPlan dead_latency;
    dead_latency.latency_drift = -1.0;
    EXPECT_THROW(FaultInjector{dead_latency}, std::invalid_argument);

    FaultPlan bad_start;
    bad_start.latency_drift = 0.1;
    bad_start.drift_start = -1;
    EXPECT_THROW(FaultInjector{bad_start}, std::invalid_argument);

    FaultPlan bad_ramp;
    bad_ramp.latency_drift = 0.1;
    bad_ramp.drift_ramp = -1;
    EXPECT_THROW(FaultInjector{bad_ramp}, std::invalid_argument);
}

TEST(FaultInjector, DriftLevelIsPiecewiseLinear)
{
    FaultPlan plan;
    plan.latency_drift = 0.5;
    plan.drift_start = 100 * kTicksPerMs;
    plan.drift_ramp = 200 * kTicksPerMs;
    FaultInjector injector(plan);

    EXPECT_DOUBLE_EQ(injector.driftLevel(0), 0.0);
    EXPECT_DOUBLE_EQ(injector.driftLevel(100 * kTicksPerMs - 1), 0.0);
    EXPECT_DOUBLE_EQ(injector.driftLevel(100 * kTicksPerMs), 0.0);
    EXPECT_DOUBLE_EQ(injector.driftLevel(200 * kTicksPerMs), 0.5);
    EXPECT_DOUBLE_EQ(injector.driftLevel(300 * kTicksPerMs), 1.0);
    // Held at full drift forever after.
    EXPECT_DOUBLE_EQ(injector.driftLevel(900 * kTicksPerMs), 1.0);
    EXPECT_DOUBLE_EQ(injector.latencyScale(200 * kTicksPerMs), 1.25);

    // A zero ramp is a step to full drift at drift_start.
    plan.drift_ramp = 0;
    FaultInjector step(plan);
    EXPECT_DOUBLE_EQ(step.driftLevel(100 * kTicksPerMs - 1), 0.0);
    EXPECT_DOUBLE_EQ(step.driftLevel(100 * kTicksPerMs), 1.0);

    // A drift-free plan never reports a level.
    FaultPlan clean;
    clean.spike_rate = 0.5;
    EXPECT_DOUBLE_EQ(FaultInjector(clean).driftLevel(kMaxTick - 1), 0.0);
}

TEST(FaultInjector, DriftAccessorsScaleWithTheLevel)
{
    FaultPlan plan;
    plan.aging_dynamic_drift = 0.12;
    plan.sensor_bias_watts = 4.0;
    plan.latency_drift = 0.08;
    plan.ambient_drift_celsius = 8.0;
    plan.drift_start = 0;
    plan.drift_ramp = 0;
    FaultInjector injector(plan);

    EXPECT_DOUBLE_EQ(injector.agingDynamicScale(kTicksPerMs), 1.12);
    EXPECT_DOUBLE_EQ(injector.sensorBiasWatts(kTicksPerMs), 4.0);
    EXPECT_DOUBLE_EQ(injector.latencyScale(kTicksPerMs), 1.08);
    EXPECT_DOUBLE_EQ(injector.ambientOffsetCelsius(kTicksPerMs), 8.0);
}

TEST(FaultInjector, RejectsMalformedPlans)
{
    FaultPlan bad_prob;
    bad_prob.set_freq_drop_rate = 1.5;
    EXPECT_THROW(FaultInjector{bad_prob}, std::invalid_argument);

    FaultPlan bad_spike;
    bad_spike.spike_rate = -0.1;
    EXPECT_THROW(FaultInjector{bad_spike}, std::invalid_argument);

    FaultPlan bad_jitter;
    bad_jitter.set_freq_jitter_max = -1;
    EXPECT_THROW(FaultInjector{bad_jitter}, std::invalid_argument);

    FaultPlan bad_release;
    bad_release.thermal_throttle = true;
    bad_release.throttle_trip_celsius = 80.0;
    bad_release.throttle_release_celsius = 90.0;
    EXPECT_THROW(FaultInjector{bad_release}, std::invalid_argument);
}

TEST(FaultInjector, DropsAreSeedDeterministic)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.set_freq_drop_rate = 0.3;
    FaultInjector a(plan), b(plan);

    std::vector<bool> draws_a, draws_b;
    for (int i = 0; i < 200; ++i) {
        draws_a.push_back(a.dropSetFreq());
        draws_b.push_back(b.dropSetFreq());
    }
    EXPECT_EQ(draws_a, draws_b);
    EXPECT_EQ(a.counters().set_freqs_seen, 200u);
    EXPECT_GT(a.counters().set_freqs_dropped, 0u);
    EXPECT_LT(a.counters().set_freqs_dropped, 200u);
}

TEST(FaultInjector, DropRateEndpoints)
{
    FaultPlan never;
    never.set_freq_drop_rate = 0.0;
    never.set_freq_jitter_max = 1; // enable the injector
    FaultInjector n(never);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(n.dropSetFreq());

    FaultPlan always;
    always.set_freq_drop_rate = 1.0;
    FaultInjector a(always);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(a.dropSetFreq());
    EXPECT_EQ(a.counters().set_freqs_dropped, 50u);
}

TEST(FaultInjector, JitterBoundedAndCounted)
{
    FaultPlan plan;
    plan.set_freq_jitter_max = 3 * kTicksPerMs;
    FaultInjector injector(plan);
    Tick total = 0;
    for (int i = 0; i < 100; ++i) {
        Tick extra = injector.setFreqExtraLatency();
        EXPECT_GE(extra, 0);
        EXPECT_LE(extra, 3 * kTicksPerMs);
        total += extra;
    }
    EXPECT_EQ(injector.counters().jitter_injected, total);
    EXPECT_GT(total, 0);
}

TEST(FaultInjector, ThermalThrottleTripAndAutoRelease)
{
    FaultPlan plan;
    plan.thermal_throttle = true;
    plan.throttle_trip_celsius = 85.0;
    plan.throttle_release_celsius = 80.0;
    FaultInjector injector(plan);

    EXPECT_EQ(injector.updateThrottle(0, 70.0), ThrottleAction::None);
    EXPECT_FALSE(injector.throttleActive());

    EXPECT_EQ(injector.updateThrottle(1, 86.0), ThrottleAction::Trip);
    EXPECT_TRUE(injector.throttleActive());
    // Still hot: no repeated trip.
    EXPECT_EQ(injector.updateThrottle(2, 90.0), ThrottleAction::None);
    // Cooled below the trip point but above release: hysteresis holds.
    EXPECT_EQ(injector.updateThrottle(3, 82.0), ThrottleAction::None);
    EXPECT_EQ(injector.updateThrottle(4, 79.0), ThrottleAction::Release);
    EXPECT_FALSE(injector.throttleActive());
    EXPECT_EQ(injector.counters().throttle_trips, 1u);
    EXPECT_EQ(injector.counters().throttle_releases, 1u);
}

TEST(FaultInjector, LatchedThrottleOnlyClearsOnForcedRelease)
{
    FaultPlan plan;
    plan.thermal_throttle = true;
    plan.throttle_auto_release = false;
    FaultInjector injector(plan);

    EXPECT_EQ(injector.updateThrottle(0, 90.0), ThrottleAction::Trip);
    // Stone cold, but the broken firmware never releases.
    EXPECT_EQ(injector.updateThrottle(1, 25.0), ThrottleAction::None);
    EXPECT_TRUE(injector.throttleActive());

    injector.forceRelease();
    EXPECT_FALSE(injector.throttleActive());
    EXPECT_EQ(injector.counters().forced_releases, 1u);
}

TEST(FaultInjector, SpuriousTripsFollowTheirSchedule)
{
    FaultPlan plan;
    plan.spurious_trip_rate_hz = 100.0;
    FaultInjector injector(plan);

    // A cool die still trips once the scheduled glitch time passes.
    ThrottleAction action =
        injector.updateThrottle(secondsToTicks(1.0), 25.0);
    EXPECT_EQ(action, ThrottleAction::Trip);
    EXPECT_GE(injector.counters().spurious_trips, 1u);
}

TEST(FaultInjector, BlackoutWindowsSwallowSamples)
{
    FaultPlan plan;
    plan.blackout_rate_hz = 20.0;
    plan.blackout_duration = 100 * kTicksPerMs;
    FaultInjector injector(plan);

    int blacked = 0, clean = 0;
    for (int i = 0; i < 200; ++i) {
        TelemetryFault fault =
            injector.telemetrySample(i * 10 * kTicksPerMs);
        if (fault == TelemetryFault::Blackout)
            ++blacked;
        else
            ++clean;
    }
    EXPECT_GT(blacked, 0);
    EXPECT_GT(clean, 0);
    EXPECT_EQ(injector.counters().samples_blacked_out,
              static_cast<std::uint64_t>(blacked));
    EXPECT_EQ(injector.counters().samples_seen, 200u);
}

TEST(FaultInjector, SpikesAtRateOneHitEverySurvivingSample)
{
    FaultPlan plan;
    plan.spike_rate = 1.0;
    FaultInjector injector(plan);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(injector.telemetrySample(i * kTicksPerMs),
                  TelemetryFault::Spike);
    }
    EXPECT_EQ(injector.counters().samples_spiked, 20u);
}

// --- chip-level integration -------------------------------------------------

TEST(FaultInjectorChip, NoFaultsMeansNoInjector)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    EXPECT_EQ(chip.faultInjector(), nullptr);
}

TEST(FaultInjectorChip, DroppedSetFreqLeavesFrequencyUnchanged)
{
    sim::Simulator sim;
    NpuConfig config;
    config.faults.set_freq_drop_rate = 1.0;
    NpuChip chip(sim, config);

    chip.enqueueSetFreq(1000.0);
    sim.run();
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1800.0);
    // The command consumed stream time but never reached the governor.
    EXPECT_EQ(chip.dvfs().setFreqCount(), 0u);
    EXPECT_EQ(chip.faultInjector()->counters().set_freqs_dropped, 1u);
    EXPECT_EQ(sim.now(), config.set_freq_latency);
}

TEST(FaultInjectorChip, JitterDelaysTheApply)
{
    sim::Simulator sim;
    NpuConfig config;
    config.faults.set_freq_jitter_max = 5 * kTicksPerMs;
    NpuChip chip(sim, config);

    chip.enqueueSetFreq(1200.0);
    sim.run();
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1200.0);
    EXPECT_GE(sim.now(), config.set_freq_latency);
    EXPECT_LE(sim.now(), config.set_freq_latency + 5 * kTicksPerMs);
    EXPECT_EQ(sim.now(), config.set_freq_latency
                  + chip.faultInjector()->counters().jitter_injected);
}

TEST(FaultInjectorChip, HotDieTripsFirmwareThrottle)
{
    sim::Simulator clean_sim;
    NpuChip clean(clean_sim);
    double ambient = clean.temperature();

    sim::Simulator sim;
    NpuConfig config;
    config.faults.thermal_throttle = true;
    config.faults.throttle_trip_celsius = ambient + 5.0;
    config.faults.throttle_release_celsius = ambient + 2.0;
    config.faults.throttle_mhz = 1000.0;
    NpuChip chip(sim, config);

    chip.enqueueOp(computeOp(1.8e9 * 20), 0); // ~20 s of load
    sim.run();
    chip.syncAccounting();

    EXPECT_GT(chip.temperature(), config.faults.throttle_trip_celsius);
    EXPECT_TRUE(chip.dvfs().throttled());
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1000.0);
    // The firmware clamp is not a SetFreq command.
    EXPECT_EQ(chip.dvfs().setFreqCount(), 0u);
    EXPECT_GE(chip.faultInjector()->counters().throttle_trips, 1u);
}

TEST(FaultInjectorChip, GovernorResetClearsLatchedSpuriousClamp)
{
    sim::Simulator sim;
    NpuConfig config;
    config.faults.spurious_trip_rate_hz = 50.0;
    config.faults.throttle_auto_release = false;
    config.faults.throttle_mhz = 1100.0;
    NpuChip chip(sim, config);

    chip.enqueueOp(computeOp(1.8e9), 0); // ~1 s, plenty for a glitch
    sim.run();
    chip.syncAccounting();
    ASSERT_TRUE(chip.dvfs().throttled());
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1100.0);

    chip.resetThrottleGovernor();
    EXPECT_FALSE(chip.dvfs().throttled());
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1800.0);
    EXPECT_EQ(chip.faultInjector()->counters().forced_releases, 1u);
}

TEST(FaultInjectorChip, TelemetryBlackoutLosesSamplesSpikesCorruptThem)
{
    // Clean reference run.
    sim::Simulator clean_sim;
    NpuChip clean_chip(clean_sim);
    trace::PowerSampler clean(clean_chip, 10 * kTicksPerMs, {}, 1);
    clean_chip.enqueueOp(computeOp(1.8e9), 0);
    clean.start(/*stop_when_idle=*/true);
    clean_sim.run();

    // Spiked run: every sample corrupted by the configured factor.
    sim::Simulator spike_sim;
    NpuConfig spike_config;
    spike_config.faults.spike_rate = 1.0;
    NpuChip spike_chip(spike_sim, spike_config);
    trace::PowerSampler spiked(spike_chip, 10 * kTicksPerMs, {}, 1);
    spike_chip.enqueueOp(computeOp(1.8e9), 0);
    spiked.start(/*stop_when_idle=*/true);
    spike_sim.run();

    ASSERT_EQ(clean.samples().size(), spiked.samples().size());
    ASSERT_FALSE(clean.samples().empty());
    for (std::size_t i = 0; i < clean.samples().size(); ++i) {
        EXPECT_NEAR(spiked.samples()[i].soc_watts,
                    clean.samples()[i].soc_watts
                        * spike_config.faults.spike_factor,
                    1e-9);
        EXPECT_NEAR(spiked.samples()[i].temperature_c,
                    clean.samples()[i].temperature_c
                        + spike_config.faults.spike_temperature_delta,
                    1e-9);
    }

    // Blackout run: strictly fewer samples than the clean run.
    sim::Simulator dark_sim;
    NpuConfig dark_config;
    dark_config.faults.blackout_rate_hz = 5.0;
    dark_config.faults.blackout_duration = 100 * kTicksPerMs;
    NpuChip dark_chip(dark_sim, dark_config);
    trace::PowerSampler dark(dark_chip, 10 * kTicksPerMs, {}, 1);
    dark_chip.enqueueOp(computeOp(1.8e9), 0);
    dark.start(/*stop_when_idle=*/true);
    dark_sim.run();

    EXPECT_LT(dark.samples().size(), clean.samples().size());
    EXPECT_GT(
        dark_chip.faultInjector()->counters().samples_blacked_out, 0u);
}

TEST(FaultInjectorChip, LatencyDriftStretchesOperatorDurations)
{
    sim::Simulator clean_sim;
    NpuChip clean(clean_sim);
    clean.enqueueOp(computeOp(1.8e9), 0); // ~1 s at 1800 MHz
    clean_sim.run();
    Tick clean_span = clean_sim.now();

    sim::Simulator sim;
    NpuConfig config;
    config.faults.latency_drift = 0.10;
    config.faults.drift_start = 0;
    NpuChip chip(sim, config);
    chip.enqueueOp(computeOp(1.8e9), 0);
    sim.run();

    EXPECT_NEAR(ticksToSeconds(sim.now()),
                1.10 * ticksToSeconds(clean_span),
                1e-6 * ticksToSeconds(clean_span));
}

TEST(FaultInjectorChip, AgingDriftRaisesMeasuredDynamicPower)
{
    auto joules = [](double aging_drift) {
        sim::Simulator sim;
        NpuConfig config;
        config.faults.aging_dynamic_drift = aging_drift;
        // Keep at least one class on so the injector exists for both.
        config.faults.set_freq_jitter_max = 1;
        NpuChip chip(sim, config);
        chip.enqueueOp(computeOp(1.8e9), 0);
        sim.run();
        chip.syncAccounting();
        return chip.energy().aicore_joules;
    };

    double clean = joules(0.0);
    double aged = joules(0.12);
    // Dynamic power scales by 1.12 but static/leakage terms do not:
    // the energy ratio lands strictly between 1 and 1.12.
    EXPECT_GT(aged, clean * 1.01);
    EXPECT_LT(aged, clean * 1.12);
}

TEST(FaultInjectorChip, SensorBiasCorruptsTelemetryNotTheChip)
{
    auto run = [](double bias_watts) {
        sim::Simulator sim;
        NpuConfig config;
        config.faults.sensor_bias_watts = bias_watts;
        config.faults.set_freq_jitter_max = 1;
        NpuChip chip(sim, config);
        trace::PowerSampler sampler(chip, 10 * kTicksPerMs, {}, 1);
        chip.enqueueOp(computeOp(1.8e9), 0);
        sampler.start(/*stop_when_idle=*/true);
        sim.run();
        chip.syncAccounting();
        return std::pair(chip.energy().soc_joules, sampler.samples());
    };

    auto [clean_joules, clean_samples] = run(0.0);
    auto [biased_joules, biased_samples] = run(4.0);

    // The chip's true energy is untouched: only the telemetry lies.
    EXPECT_NEAR(biased_joules, clean_joules, 1e-9);
    ASSERT_EQ(clean_samples.size(), biased_samples.size());
    ASSERT_FALSE(clean_samples.empty());
    for (std::size_t i = 0; i < clean_samples.size(); ++i) {
        EXPECT_NEAR(biased_samples[i].soc_watts,
                    clean_samples[i].soc_watts + 4.0, 1e-9);
        EXPECT_NEAR(biased_samples[i].aicore_watts,
                    clean_samples[i].aicore_watts + 4.0, 1e-9);
    }
}

} // namespace
} // namespace opdvfs::npu
