#include <gtest/gtest.h>

#include <stdexcept>

#include "math/linear_solve.h"

namespace opdvfs::math {
namespace {

TEST(LinearSolve, Solves2x2)
{
    Matrix a(2, 2);
    a(0, 0) = 2.0; a(0, 1) = 1.0;
    a(1, 0) = 1.0; a(1, 1) = 3.0;
    auto x = solve(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolve, Solves3x3WithPivoting)
{
    // First pivot is zero; requires row exchange.
    Matrix a(3, 3);
    a(0, 0) = 0.0; a(0, 1) = 2.0; a(0, 2) = 1.0;
    a(1, 0) = 1.0; a(1, 1) = 1.0; a(1, 2) = 1.0;
    a(2, 0) = 2.0; a(2, 1) = 0.0; a(2, 2) = 3.0;
    // Solution (1, 2, 3).
    auto x = solve(a, {7.0, 6.0, 11.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LinearSolve, SingularThrows)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0; a(0, 1) = 2.0;
    a(1, 0) = 2.0; a(1, 1) = 4.0;
    EXPECT_THROW(solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(LinearSolve, ShapeMismatchThrows)
{
    Matrix a(2, 3);
    EXPECT_THROW(solve(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(LinearSolve, LeastSquaresOverdetermined)
{
    // Fit y = 2x + 1 through 4 exact points.
    Matrix a(4, 2);
    std::vector<double> b(4);
    for (int i = 0; i < 4; ++i) {
        double x = i + 1.0;
        a(static_cast<std::size_t>(i), 0) = x;
        a(static_cast<std::size_t>(i), 1) = 1.0;
        b[static_cast<std::size_t>(i)] = 2.0 * x + 1.0;
    }
    auto sol = leastSquares(a, b);
    EXPECT_NEAR(sol[0], 2.0, 1e-10);
    EXPECT_NEAR(sol[1], 1.0, 1e-10);
}

TEST(LinearSolve, LeastSquaresMinimisesResidual)
{
    // Inconsistent system: best fit of y = c through {1, 3} is c = 2.
    Matrix a(2, 1);
    a(0, 0) = 1.0;
    a(1, 0) = 1.0;
    auto sol = leastSquares(a, {1.0, 3.0});
    EXPECT_NEAR(sol[0], 2.0, 1e-12);
}

TEST(LinearSolve, DampingShrinksStep)
{
    Matrix a(2, 1);
    a(0, 0) = 1.0;
    a(1, 0) = 1.0;
    auto undamped = leastSquares(a, {2.0, 2.0}, 0.0);
    auto damped = leastSquares(a, {2.0, 2.0}, 1.0);
    EXPECT_NEAR(undamped[0], 2.0, 1e-12);
    EXPECT_NEAR(damped[0], 1.0, 1e-12); // (A^T A (1 + 1)) x = A^T b
}

TEST(LinearSolve, MatrixProducts)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0; a(0, 1) = 2.0;
    a(1, 0) = 3.0; a(1, 1) = 4.0;
    auto ax = a.times({1.0, 1.0});
    EXPECT_DOUBLE_EQ(ax[0], 3.0);
    EXPECT_DOUBLE_EQ(ax[1], 7.0);
    auto atv = a.transposeTimes({1.0, 1.0});
    EXPECT_DOUBLE_EQ(atv[0], 4.0);
    EXPECT_DOUBLE_EQ(atv[1], 6.0);

    Matrix g = a.gram();
    EXPECT_DOUBLE_EQ(g(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(g(0, 1), 14.0);
    EXPECT_DOUBLE_EQ(g(1, 0), 14.0);
    EXPECT_DOUBLE_EQ(g(1, 1), 20.0);
}

} // namespace
} // namespace opdvfs::math
