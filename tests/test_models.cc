#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "models/cnn.h"
#include "npu/aicore_timeline.h"
#include "models/model_zoo.h"
#include "models/transformer.h"

namespace opdvfs::models {
namespace {

class ModelsTest : public ::testing::Test
{
  protected:
    npu::MemorySystem memory_;
};

TEST_F(ModelsTest, AllZooWorkloadsBuild)
{
    for (const auto &name : workloadNames()) {
        SCOPED_TRACE(name);
        Workload w = buildWorkload(name, memory_, 1);
        EXPECT_EQ(w.name, name);
        EXPECT_GT(w.opCount(), 10u);
    }
}

TEST_F(ModelsTest, UnknownWorkloadThrows)
{
    EXPECT_THROW(buildWorkload("NoSuchModel", memory_, 1),
                 std::invalid_argument);
}

TEST_F(ModelsTest, StudyListsAreValidZooEntries)
{
    std::set<std::string> names;
    for (const auto &n : workloadNames())
        names.insert(n);
    for (const auto &n : perfStudyModels())
        EXPECT_TRUE(names.count(n)) << n;
    for (const auto &n : powerStudyModels())
        EXPECT_TRUE(names.count(n)) << n;
    EXPECT_EQ(perfStudyModels().size(), 7u);  // Sect. 7.2
    EXPECT_EQ(powerStudyModels().size(), 7u); // Sect. 7.3
}

TEST_F(ModelsTest, Gpt3MatchesPaperScale)
{
    Workload gpt3 = buildGpt3(memory_, 1);
    // "around 18,000 operators per iteration" (Sect. 7.4).
    EXPECT_GT(gpt3.opCount(), 15'000u);
    EXPECT_LT(gpt3.opCount(), 25'000u);
    // Tensor parallelism means per-layer collectives.
    EXPECT_GT(gpt3.countCategory(npu::OpCategory::Communication), 500u);
    EXPECT_GT(gpt3.countCategory(npu::OpCategory::Idle), 50u);
}

TEST_F(ModelsTest, ShuffleNetHasPaperOpCount)
{
    // 4,343 operators (Sect. 4.3); allow a ~15% band.
    Workload shuffle = buildShufflenetV2Plus(memory_, 1);
    EXPECT_GT(shuffle.opCount(), 3'700u);
    EXPECT_LT(shuffle.opCount(), 5'000u);
}

TEST_F(ModelsTest, WorkloadsAreDeterministicBySeed)
{
    Workload a = buildBert(memory_, 9);
    Workload b = buildBert(memory_, 9);
    ASSERT_EQ(a.opCount(), b.opCount());
    for (std::size_t i = 0; i < a.opCount(); ++i) {
        EXPECT_EQ(a.iteration[i].type, b.iteration[i].type);
        EXPECT_DOUBLE_EQ(a.iteration[i].hw.core_cycles,
                         b.iteration[i].hw.core_cycles);
    }
    Workload c = buildBert(memory_, 10);
    bool any_different = a.opCount() != c.opCount();
    for (std::size_t i = 0; !any_different && i < a.opCount(); ++i) {
        any_different =
            a.iteration[i].hw.core_cycles != c.iteration[i].hw.core_cycles;
    }
    EXPECT_TRUE(any_different);
}

TEST_F(ModelsTest, OpIdsMatchSequencePositions)
{
    Workload w = buildResnet50(memory_, 3);
    for (std::size_t i = 0; i < w.opCount(); ++i)
        EXPECT_EQ(w.iteration[i].id, i);
}

TEST_F(ModelsTest, TransformersContainExpectedOpTypes)
{
    Workload w = buildBert(memory_, 1);
    std::set<std::string> types;
    for (const auto &op : w.iteration)
        types.insert(op.type);
    for (const char *expected :
         {"MatMul", "BatchMatMul", "SoftMax", "LayerNorm", "Gelu", "Add",
          "Dropout", "AllReduce"}) {
        EXPECT_TRUE(types.count(expected)) << expected;
    }
}

TEST_F(ModelsTest, CnnsContainExpectedOpTypes)
{
    Workload w = buildResnet152(memory_, 1);
    std::set<std::string> types;
    for (const auto &op : w.iteration)
        types.insert(op.type);
    for (const char *expected :
         {"Conv2D", "BNTrainingUpdate", "Relu", "AllReduce"}) {
        EXPECT_TRUE(types.count(expected)) << expected;
    }
    // ResNet-152 has ~3x the blocks of ResNet-50.
    Workload r50 = buildResnet50(memory_, 1);
    EXPECT_GT(w.opCount(), 2 * r50.opCount());
}

TEST_F(ModelsTest, Llama2InferenceIsHostBound)
{
    // Sect. 8.4: the host dispatches slower than the NPU executes, so
    // idle gaps dominate the decode timeline.
    Workload w = buildLlama2Inference(memory_, 1);
    double idle = 0.0, total = 0.0;
    npu::MemorySystem memory;
    for (const auto &op : w.iteration) {
        if (op.hw.category != npu::OpCategory::Compute) {
            idle += op.hw.fixed_seconds;
            total += op.hw.fixed_seconds;
        } else {
            npu::AicoreTimeline t(op.hw, memory);
            total += t.seconds(1800.0);
        }
    }
    EXPECT_GT(idle / total, 0.35);
}

TEST_F(ModelsTest, InsensitiveSecondsHelper)
{
    Workload w;
    w.name = "t";
    ops::OpFactory factory(memory_, Rng(1));
    w.iteration.push_back(factory.idle(1.0));
    w.iteration.push_back(factory.matMul(512, 512, 512));
    EXPECT_NEAR(w.insensitiveSeconds(), 1.0, 1e-12);
    EXPECT_EQ(w.countCategory(npu::OpCategory::Idle), 1u);
    EXPECT_EQ(w.countCategory(npu::OpCategory::Compute), 1u);
}

} // namespace
} // namespace opdvfs::models
