#include <gtest/gtest.h>

#include <stdexcept>

#include "common/units.h"
#include "npu/memory_system.h"

namespace opdvfs::npu {
namespace {

TEST(MemorySystem, UncoreBandwidthBlendsByHitRate)
{
    MemorySystem mem;
    const auto &config = mem.config();
    EXPECT_DOUBLE_EQ(mem.uncoreBandwidth(1.0), config.l2_bandwidth);
    EXPECT_DOUBLE_EQ(mem.uncoreBandwidth(0.0), config.hbm_bandwidth);
    EXPECT_DOUBLE_EQ(mem.uncoreBandwidth(0.5),
                     (config.l2_bandwidth + config.hbm_bandwidth) / 2.0);
    // Out-of-range hit rates clamp.
    EXPECT_DOUBLE_EQ(mem.uncoreBandwidth(2.0), config.l2_bandwidth);
    EXPECT_DOUBLE_EQ(mem.uncoreBandwidth(-1.0), config.hbm_bandwidth);
}

// Eq. 1: Tp(f) = min(C f core_num, BW_uncore).
TEST(MemorySystem, ThroughputRisesThenSaturates)
{
    MemorySystem mem;
    double hit = 0.3;
    double fs = mem.saturationMhz(hit);
    ASSERT_GT(fs, 1000.0);
    ASSERT_LT(fs, 1800.0);

    double below = mem.throughput(fs * 0.5, hit);
    double at = mem.throughput(fs, hit);
    double above = mem.throughput(fs * 1.5, hit);
    EXPECT_LT(below, at);
    EXPECT_NEAR(at, mem.uncoreBandwidth(hit), 1.0);
    EXPECT_DOUBLE_EQ(above, mem.uncoreBandwidth(hit));
}

// Eq. 2: fs = BW_uncore / (C * core_num).
TEST(MemorySystem, SaturationFrequencyFormula)
{
    MemorySystem mem;
    const auto &config = mem.config();
    double hit = 0.5;
    double expected = mem.uncoreBandwidth(hit)
        / (config.bytes_per_cycle_per_core
           * static_cast<double>(config.core_num))
        / 1e6;
    EXPECT_NEAR(mem.saturationMhz(hit), expected, 1e-9);
}

TEST(MemorySystem, SaturationIncreasesWithHitRate)
{
    MemorySystem mem;
    EXPECT_LT(mem.saturationMhz(0.0), mem.saturationMhz(0.5));
    EXPECT_LT(mem.saturationMhz(0.5), mem.saturationMhz(1.0));
}

// Eq. 4 coefficients: slope = M / BW, floor = M / (C core_num).
TEST(MemorySystem, LdStCoefficients)
{
    MemorySystem mem;
    const auto &config = mem.config();
    double volume = 1e6;
    double hit = 0.4;
    auto coeff = mem.ldStCoefficients(volume, hit);
    EXPECT_NEAR(coeff.slope_per_hz, volume / mem.uncoreBandwidth(hit),
                1e-18);
    EXPECT_NEAR(coeff.floor_cycles,
                volume / (config.bytes_per_cycle_per_core
                          * static_cast<double>(config.core_num)),
                1e-9);
    // The two expressions cross exactly at the saturation frequency.
    double fs_hz = mhzToHz(mem.saturationMhz(hit));
    EXPECT_NEAR(coeff.slope_per_hz * fs_hz, coeff.floor_cycles, 1e-6);
}

TEST(MemorySystem, ZeroVolumeYieldsZeroCoefficients)
{
    MemorySystem mem;
    auto coeff = mem.ldStCoefficients(0.0, 0.5);
    EXPECT_DOUBLE_EQ(coeff.slope_per_hz, 0.0);
    EXPECT_DOUBLE_EQ(coeff.floor_cycles, 0.0);
}

TEST(MemorySystem, NegativeVolumeThrows)
{
    MemorySystem mem;
    EXPECT_THROW(mem.ldStCoefficients(-1.0, 0.5), std::invalid_argument);
}

TEST(MemorySystem, InvalidConfigThrows)
{
    MemorySystemConfig bad;
    bad.core_num = 0;
    EXPECT_THROW(MemorySystem{bad}, std::invalid_argument);
    bad = MemorySystemConfig{};
    bad.l2_bandwidth = -1.0;
    EXPECT_THROW(MemorySystem{bad}, std::invalid_argument);
}

/** Property sweep: throughput is non-decreasing in frequency. */
class ThroughputMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(ThroughputMonotone, NonDecreasingInFrequency)
{
    MemorySystem mem;
    double hit = GetParam();
    double previous = 0.0;
    for (double f = 200.0; f <= 2400.0; f += 100.0) {
        double tp = mem.throughput(f, hit);
        EXPECT_GE(tp, previous);
        previous = tp;
    }
}

INSTANTIATE_TEST_SUITE_P(HitRates, ThroughputMonotone,
                         ::testing::Values(0.0, 0.15, 0.3, 0.5, 0.8, 1.0));

} // namespace
} // namespace opdvfs::npu
