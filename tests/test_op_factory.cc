#include <gtest/gtest.h>

#include "npu/aicore_timeline.h"
#include "ops/op_factory.h"

namespace opdvfs::ops {
namespace {

class OpFactoryTest : public ::testing::Test
{
  protected:
    OpFactoryTest() : memory_(), factory_(memory_, Rng(42)) {}

    npu::MemorySystem memory_;
    OpFactory factory_;
};

TEST_F(OpFactoryTest, IdsAreSequentialAndUnique)
{
    Op a = factory_.add(1 << 20);
    Op b = factory_.gelu(1 << 20);
    Op c = factory_.matMul(512, 512, 512);
    EXPECT_EQ(a.id, 0u);
    EXPECT_EQ(b.id, 1u);
    EXPECT_EQ(c.id, 2u);
}

TEST_F(OpFactoryTest, DeterministicBySeed)
{
    OpFactory f1(memory_, Rng(7));
    OpFactory f2(memory_, Rng(7));
    Op a = f1.matMul(1024, 1024, 1024);
    Op b = f2.matMul(1024, 1024, 1024);
    EXPECT_DOUBLE_EQ(a.hw.core_cycles, b.hw.core_cycles);
    EXPECT_DOUBLE_EQ(a.hw.alpha_core, b.hw.alpha_core);
    EXPECT_DOUBLE_EQ(a.hw.ld_l2_hit, b.hw.ld_l2_hit);
}

TEST_F(OpFactoryTest, MatMulScalesWithShape)
{
    Op small = factory_.matMul(512, 512, 512);
    Op big = factory_.matMul(4096, 4096, 4096);
    npu::AicoreTimeline t_small(small.hw, memory_);
    npu::AicoreTimeline t_big(big.hw, memory_);
    EXPECT_GT(t_big.seconds(1800.0), 16.0 * t_small.seconds(1800.0));
}

TEST_F(OpFactoryTest, ComputeOpsHavePositiveParameters)
{
    for (const Op &op :
         {factory_.matMul(1024, 1024, 1024), factory_.add(1 << 22),
          factory_.gelu(1 << 22), factory_.layerNorm(1024, 1024),
          factory_.softmax(1024, 1024), factory_.conv2d(64, 64, 64, 28, 28, 3),
          factory_.bnTrainingUpdate(1 << 22), factory_.realDiv(1 << 22),
          factory_.reduceMean(1 << 22, 16), factory_.dropout(1 << 22),
          factory_.transpose(1 << 22), factory_.relu(1 << 22)}) {
        SCOPED_TRACE(op.type);
        EXPECT_EQ(op.hw.category, npu::OpCategory::Compute);
        EXPECT_GE(op.hw.n, 1);
        EXPECT_GT(op.hw.core_cycles, 0.0);
        EXPECT_GT(op.hw.alpha_core, 0.0);
        EXPECT_GE(op.hw.uncore_activity, 0.0);
        EXPECT_LE(op.hw.uncore_activity, 1.0);
        EXPECT_GE(op.hw.ld_l2_hit, 0.0);
        EXPECT_LE(op.hw.ld_l2_hit, 1.0);
    }
}

TEST_F(OpFactoryTest, ElementwiseOpsAreMemoryBound)
{
    // Big elementwise ops: the Ld pipe dominates at max frequency.
    Op op = factory_.add(32 * 1024 * 1024);
    npu::AicoreTimeline timeline(op.hw, memory_);
    npu::PipelineRatios ratios = timeline.ratios(1800.0);
    EXPECT_GT(ratios.mte2, ratios.vector);
    EXPECT_GT(ratios.mte2, 0.5);
}

TEST_F(OpFactoryTest, TinyOpIsOverheadDominated)
{
    Op op = factory_.tinyScalarOp("Cast");
    npu::AicoreTimeline timeline(op.hw, memory_);
    EXPECT_LT(timeline.ratios(1800.0).sum(), 1.0);
    EXPECT_LT(timeline.seconds(1800.0), 30e-6);
}

TEST_F(OpFactoryTest, MatMulBurnsMorePowerThanElementwise)
{
    Op mm = factory_.matMul(4096, 4096, 4096);
    Op add = factory_.add(32 * 1024 * 1024);
    EXPECT_GT(mm.hw.alpha_core, add.hw.alpha_core);
}

TEST_F(OpFactoryTest, AllReduceIsCommunication)
{
    Op op = factory_.allReduce(50'000'000);
    EXPECT_EQ(op.hw.category, npu::OpCategory::Communication);
    EXPECT_GT(op.hw.fixed_seconds,
              2.0 * 50e6 / factory_.throughput().link_bandwidth * 0.9);
    EXPECT_DOUBLE_EQ(op.hw.alpha_core, 0.0);
}

TEST_F(OpFactoryTest, AllReduceScalesWithBytes)
{
    Op small = factory_.allReduce(1'000'000);
    Op big = factory_.allReduce(100'000'000);
    EXPECT_GT(big.hw.fixed_seconds, small.hw.fixed_seconds);
}

TEST_F(OpFactoryTest, AicpuAndIdle)
{
    Op aicpu = factory_.aicpu("GetNext", 1e-4);
    EXPECT_EQ(aicpu.hw.category, npu::OpCategory::Aicpu);
    EXPECT_NEAR(aicpu.hw.fixed_seconds, 1e-4, 5e-5);

    Op idle = factory_.idle(2e-3);
    EXPECT_EQ(idle.hw.category, npu::OpCategory::Idle);
    EXPECT_DOUBLE_EQ(idle.hw.fixed_seconds, 2e-3);
    EXPECT_DOUBLE_EQ(idle.hw.uncore_activity, 0.0);
}

TEST_F(OpFactoryTest, InvalidArgumentsThrow)
{
    EXPECT_THROW(factory_.matMul(0, 10, 10), std::invalid_argument);
    EXPECT_THROW(factory_.aicpu("X", 0.0), std::invalid_argument);
    EXPECT_THROW(factory_.idle(-1.0), std::invalid_argument);
}

TEST_F(OpFactoryTest, SameTypeDifferentShapesDifferentAlpha)
{
    // Sect. 5.4.1: differing input shapes yield different activity
    // factors even for the same operator type.
    Op a = factory_.matMul(512, 512, 512);
    Op b = factory_.matMul(8192, 8192, 8192);
    EXPECT_NE(a.hw.alpha_core, b.hw.alpha_core);
}

} // namespace
} // namespace opdvfs::ops
