/**
 * Workload fingerprinting: equal content hashes equal (independently
 * of object identity — no pointer/address leakage), every
 * strategy-relevant perturbation changes the digest, and the
 * similarity metric orders near-misses sensibly.
 */

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "models/transformer.h"
#include "serve/fingerprint.h"

namespace opdvfs::serve {
namespace {

models::Workload
smallTransformer(std::uint64_t seed, int seq = 256)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "fp-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, seed);
}

TEST(Fingerprint, EqualWorkloadsHashEqual)
{
    // Two independently built (separately allocated) copies of the
    // same workload: any pointer or container-address leakage into
    // the hash would separate them.
    models::Workload a = smallTransformer(11);
    models::Workload b = smallTransformer(11);
    npu::NpuConfig chip;
    Fingerprint fa = fingerprintRequest(a, chip, 0.02, 1);
    Fingerprint fb = fingerprintRequest(b, chip, 0.02, 1);
    EXPECT_EQ(fa.digest, fb.digest);
    EXPECT_EQ(fa.features, fb.features);
    EXPECT_DOUBLE_EQ(fingerprintSimilarity(fa, fb), 1.0);
}

TEST(Fingerprint, StableWithinProcessAcrossCalls)
{
    models::Workload w = smallTransformer(3);
    npu::NpuConfig chip;
    std::uint64_t first = fingerprintRequest(w, chip, 0.02, 9).digest;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(fingerprintRequest(w, chip, 0.02, 9).digest, first);
}

TEST(Fingerprint, WorkloadNameDoesNotChangeIdentity)
{
    models::Workload a = smallTransformer(11);
    models::Workload b = smallTransformer(11);
    b.name = "renamed";
    npu::NpuConfig chip;
    EXPECT_EQ(fingerprintRequest(a, chip, 0.02, 1).digest,
              fingerprintRequest(b, chip, 0.02, 1).digest);
}

TEST(Fingerprint, OpShapePerturbationChangesDigest)
{
    models::Workload a = smallTransformer(11);
    npu::NpuConfig chip;
    std::uint64_t base = fingerprintRequest(a, chip, 0.02, 1).digest;

    models::Workload b = smallTransformer(11);
    b.iteration[b.iteration.size() / 2].hw.core_cycles += 1.0;
    EXPECT_NE(fingerprintRequest(b, chip, 0.02, 1).digest, base);

    models::Workload c = smallTransformer(11);
    c.iteration[0].hw.ld_volume_bytes *= 1.001;
    EXPECT_NE(fingerprintRequest(c, chip, 0.02, 1).digest, base);

    models::Workload d = smallTransformer(11);
    d.iteration[0].type += "X";
    EXPECT_NE(fingerprintRequest(d, chip, 0.02, 1).digest, base);
}

TEST(Fingerprint, FreqTableAndChipPerturbationsChangeDigest)
{
    models::Workload w = smallTransformer(11);
    npu::NpuConfig chip;
    std::uint64_t base = fingerprintRequest(w, chip, 0.02, 1).digest;

    npu::NpuConfig other_table = chip;
    other_table.freq.step_mhz = 50.0;
    EXPECT_NE(fingerprintRequest(w, other_table, 0.02, 1).digest, base);

    npu::NpuConfig other_mem = chip;
    other_mem.memory.hbm_bandwidth *= 1.1;
    EXPECT_NE(fingerprintRequest(w, other_mem, 0.02, 1).digest, base);

    npu::NpuConfig other_latency = chip;
    other_latency.set_freq_latency *= 2;
    EXPECT_NE(fingerprintRequest(w, other_latency, 0.02, 1).digest, base);
}

TEST(Fingerprint, TargetAndSeedChangeDigestButNotFeatures)
{
    models::Workload w = smallTransformer(11);
    npu::NpuConfig chip;
    Fingerprint base = fingerprintRequest(w, chip, 0.02, 1);

    Fingerprint other_target = fingerprintRequest(w, chip, 0.05, 1);
    EXPECT_NE(other_target.digest, base.digest);
    // The loss target is a similarity feature too (a 2% strategy is a
    // poor donor for a 10% request).
    EXPECT_NE(other_target.features, base.features);

    Fingerprint other_seed = fingerprintRequest(w, chip, 0.02, 2);
    EXPECT_NE(other_seed.digest, base.digest);
    EXPECT_EQ(other_seed.features, base.features);
    EXPECT_DOUBLE_EQ(fingerprintSimilarity(base, other_seed), 1.0);
}

TEST(Fingerprint, SimilarityOrdersNearMissesAboveStrangers)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    Fingerprint base =
        fingerprintRequest(smallTransformer(11, 256), chip, 0.02, 1);
    Fingerprint near =
        fingerprintRequest(smallTransformer(11, 288), chip, 0.02, 1);
    Fingerprint stranger = fingerprintRequest(
        models::buildWorkload("ResNet50", memory, 1), chip, 0.02, 1);

    double near_sim = fingerprintSimilarity(base, near);
    double far_sim = fingerprintSimilarity(base, stranger);
    EXPECT_GT(near_sim, far_sim);
    EXPECT_GT(near_sim, 0.85);
    EXPECT_LT(far_sim, 0.5);
    // Symmetry.
    EXPECT_DOUBLE_EQ(near_sim, fingerprintSimilarity(near, base));
}

TEST(Fingerprint, CanonicalisesSignedZero)
{
    FingerprintHasher a;
    a.mixNumber(0.0);
    FingerprintHasher b;
    b.mixNumber(-0.0);
    EXPECT_EQ(a.digest(), b.digest());
}

} // namespace
} // namespace opdvfs::serve
