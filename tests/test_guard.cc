#include <gtest/gtest.h>

#include <stdexcept>

#include "dvfs/guard.h"
#include "models/transformer.h"
#include "npu/memory_system.h"
#include "sim/simulator.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {
namespace {

GuardOptions
tightGuard()
{
    GuardOptions options;
    options.perf_loss_target = 0.02;
    options.violation_factor = 2.0;
    options.violation_limit = 2;
    options.reenable_after = 3;
    return options;
}

TEST(DvfsGuard, RejectsMalformedOptions)
{
    EXPECT_THROW(DvfsGuard(GuardOptions{}, 0.0), std::invalid_argument);
    EXPECT_THROW(DvfsGuard(GuardOptions{}, -1.0), std::invalid_argument);

    GuardOptions bad_limit = tightGuard();
    bad_limit.violation_limit = 0;
    EXPECT_THROW(DvfsGuard(bad_limit, 1.0), std::invalid_argument);

    GuardOptions bad_factor = tightGuard();
    bad_factor.violation_factor = 0.5;
    EXPECT_THROW(DvfsGuard(bad_factor, 1.0), std::invalid_argument);

    GuardOptions bad_backoff = tightGuard();
    bad_backoff.retry_backoff = 0;
    EXPECT_THROW(DvfsGuard(bad_backoff, 1.0), std::invalid_argument);
}

GuardObservation
obs(double seconds, double temperature = 50.0)
{
    GuardObservation o;
    o.iteration_seconds = seconds;
    o.temperature_c = temperature;
    return o;
}

TEST(DvfsGuard, FallsBackAfterConsecutiveViolations)
{
    DvfsGuard guard(tightGuard(), 1.0);

    // Threshold is violation_factor * target = 4% over baseline.
    EXPECT_EQ(guard.observe(obs(1.03)), GuardState::Monitoring);
    EXPECT_EQ(guard.observe(obs(1.05)), GuardState::Monitoring);
    // A clean iteration resets the consecutive count.
    EXPECT_EQ(guard.observe(obs(1.01)), GuardState::Monitoring);
    EXPECT_EQ(guard.observe(obs(1.05)), GuardState::Monitoring);
    EXPECT_EQ(guard.observe(obs(1.06)), GuardState::Fallback);
    EXPECT_FALSE(guard.strategyEnabled());
    EXPECT_EQ(guard.stats().fallbacks, 1u);
    EXPECT_EQ(guard.stats().perf_violations, 3u);
    EXPECT_NEAR(guard.lastLoss(), 0.06, 1e-12);
}

TEST(DvfsGuard, HysteresisReenableNeedsConsecutiveCleanIterations)
{
    GuardOptions options = tightGuard();
    options.violation_limit = 1;
    DvfsGuard guard(options, 1.0);

    EXPECT_EQ(guard.observe(obs(1.10)), GuardState::Fallback);
    EXPECT_EQ(guard.observe(obs(1.00)), GuardState::Fallback);
    EXPECT_EQ(guard.observe(obs(1.00)), GuardState::Fallback);
    // A violation inside fallback restarts the clean streak.
    EXPECT_EQ(guard.observe(obs(1.10)), GuardState::Fallback);
    EXPECT_EQ(guard.observe(obs(1.00)), GuardState::Fallback);
    EXPECT_EQ(guard.observe(obs(1.00)), GuardState::Fallback);
    EXPECT_EQ(guard.observe(obs(1.00)), GuardState::Monitoring);
    EXPECT_TRUE(guard.strategyEnabled());
    EXPECT_EQ(guard.stats().reenables, 1u);
}

TEST(DvfsGuard, ThermalEnvelopeViolationsCount)
{
    GuardOptions options = tightGuard();
    options.violation_limit = 1;
    options.max_temperature_c = 95.0;
    DvfsGuard guard(options, 1.0);

    // Performance fine, die too hot.
    EXPECT_EQ(guard.observe(obs(1.00, 96.0)), GuardState::Fallback);
    EXPECT_EQ(guard.stats().thermal_violations, 1u);
    EXPECT_EQ(guard.stats().perf_violations, 0u);
}

TEST(DvfsGuard, BlackoutHoldsLastTrustedTemperature)
{
    GuardOptions options = tightGuard();
    options.violation_limit = 1;
    options.max_temperature_c = 95.0;
    DvfsGuard guard(options, 1.0);

    EXPECT_EQ(guard.observe(obs(1.00, 90.0)), GuardState::Monitoring);

    // Telemetry lost: the garbage reading must not be trusted, the
    // last good one (90, inside the envelope) holds.
    GuardObservation dark = obs(1.00, 500.0);
    dark.telemetry_ok = false;
    EXPECT_EQ(guard.observe(dark), GuardState::Monitoring);
    EXPECT_EQ(guard.stats().telemetry_gaps, 1u);
    EXPECT_EQ(guard.stats().thermal_violations, 0u);
}

TEST(DvfsGuard, DisabledGuardOnlyObserves)
{
    GuardOptions options = tightGuard();
    options.enabled = false;
    options.violation_limit = 1;
    DvfsGuard guard(options, 1.0);

    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(guard.observe(obs(2.0)), GuardState::Monitoring);
    EXPECT_EQ(guard.stats().perf_violations, 5u);
    EXPECT_EQ(guard.stats().fallbacks, 0u);
    EXPECT_FALSE(guard.wantsThrottleReset());
}

TEST(DvfsGuard, ThrottleResetWantedOnlyWhenThrottledAndViolating)
{
    GuardOptions options = tightGuard();
    DvfsGuard guard(options, 1.0);

    GuardObservation throttled_ok = obs(1.00);
    throttled_ok.throttled = true;
    guard.observe(throttled_ok);
    EXPECT_FALSE(guard.wantsThrottleReset());

    GuardObservation throttled_slow = obs(1.20);
    throttled_slow.throttled = true;
    guard.observe(throttled_slow);
    EXPECT_TRUE(guard.wantsThrottleReset());

    guard.observe(obs(1.20));
    EXPECT_FALSE(guard.wantsThrottleReset());
}

// --- recalibration hooks (safe hold + rebase) -------------------------------

TEST(DvfsGuard, SafeHoldForcesFallbackThenAutoResumes)
{
    DvfsGuard guard(tightGuard(), 1.0);
    EXPECT_THROW(guard.holdSafe(0), std::invalid_argument);

    guard.holdSafe(2);
    EXPECT_TRUE(guard.safeHoldActive());
    EXPECT_FALSE(guard.strategyEnabled());
    EXPECT_EQ(guard.stats().safe_holds, 1u);

    // Gross violations during the hold are recorded but never drive
    // transitions: the measurements were taken against a baseline the
    // recalibration is about to replace.
    EXPECT_EQ(guard.observe(obs(1.50)), GuardState::Fallback);
    EXPECT_TRUE(guard.safeHoldActive());
    EXPECT_EQ(guard.observe(obs(1.50)), GuardState::Monitoring);
    EXPECT_FALSE(guard.safeHoldActive());
    EXPECT_TRUE(guard.strategyEnabled());
    EXPECT_EQ(guard.stats().fallbacks, 0u);

    // The hold wiped the violation streak: the next violating
    // iteration starts counting from zero again.
    EXPECT_EQ(guard.observe(obs(1.10)), GuardState::Monitoring);
}

TEST(DvfsGuard, RebaseMovesTheLossReferenceAndClearsHistory)
{
    GuardOptions options = tightGuard();
    DvfsGuard guard(options, 1.0);

    EXPECT_THROW(guard.rebase(0.0), std::invalid_argument);
    EXPECT_THROW(guard.rebase(-2.0), std::invalid_argument);

    // One violation accrued against the old baseline...
    EXPECT_EQ(guard.observe(obs(1.10)), GuardState::Monitoring);

    // ...then the recalibrated model says iterations are 10% longer
    // now.  The same measurement is clean under the new baseline, and
    // the stale violation streak must not count toward fallback.
    guard.rebase(1.10);
    EXPECT_DOUBLE_EQ(guard.baselineSeconds(), 1.10);
    EXPECT_EQ(guard.stats().rebases, 1u);

    // Still violating under the new baseline - but only as streak #1:
    // had the rebase kept the stale count, this would already fall
    // back (violation_limit = 2).
    EXPECT_EQ(guard.observe(obs(1.20)), GuardState::Monitoring);
    EXPECT_NEAR(guard.lastLoss(), 0.10 / 1.10, 1e-12);
    EXPECT_EQ(guard.observe(obs(1.20)), GuardState::Fallback);
    EXPECT_EQ(guard.stats().fallbacks, 1u);
}

// --- guarded SetFreq wiring -------------------------------------------------

TEST(GuardedSetFreq, AppliesCleanlyWithoutFaults)
{
    sim::Simulator sim;
    npu::NpuChip chip(sim);
    GuardStats stats;
    enqueueGuardedSetFreq(chip, 1200.0, 3, kTicksPerMs / 2, stats);
    sim.run();
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1200.0);
    EXPECT_EQ(stats.set_freq_retries, 0u);
    EXPECT_EQ(stats.set_freq_abandoned, 0u);
}

TEST(GuardedSetFreq, ExhaustsRetriesAgainstAlwaysDroppingFirmware)
{
    sim::Simulator sim;
    npu::NpuConfig config;
    config.faults.set_freq_drop_rate = 1.0;
    npu::NpuChip chip(sim, config);

    GuardStats stats;
    enqueueGuardedSetFreq(chip, 1000.0, 2, kTicksPerMs / 2, stats);
    sim.run();
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1800.0);
    EXPECT_EQ(stats.set_freq_retries, 2u);
    EXPECT_EQ(stats.set_freq_abandoned, 1u);
    // Initial attempt + both retries reached the firmware.
    EXPECT_EQ(chip.faultInjector()->counters().set_freqs_dropped, 3u);
}

TEST(GuardedSetFreq, RetriesUntilACommandLands)
{
    sim::Simulator sim;
    npu::NpuConfig config;
    config.faults.set_freq_drop_rate = 0.5;
    config.faults.seed = 7;
    npu::NpuChip chip(sim, config);

    GuardStats stats;
    enqueueGuardedSetFreq(chip, 1000.0, 8, kTicksPerMs / 2, stats);
    sim.run();
    // Either a retry landed the command, or (if every seeded draw
    // dropped, which the counters would show) it was abandoned.
    if (stats.set_freq_abandoned == 0) {
        EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1000.0);
    }
    EXPECT_GT(chip.faultInjector()->counters().set_freqs_seen, 0u);
}

// --- end-to-end guarded runs ------------------------------------------------

struct GuardHarness
{
    npu::NpuConfig clean_config;
    models::Workload workload;
    std::vector<trace::SetFreqTrigger> upshift;
    double baseline_seconds = 0.0;
    trace::RunOptions run_options;

    GuardHarness()
    {
        npu::MemorySystem memory(clean_config.memory);
        // Compute-dominated so the floor-vs-ceiling gap is large
        // (~24% slower at 1000 MHz): a stuck downshift is clearly
        // visible in the iteration time.
        models::TransformerConfig model;
        model.name = "guard";
        model.layers = 2;
        model.hidden = 4096;
        model.heads = 32;
        model.seq = 512;
        model.batch = 4;
        workload = models::buildTransformerTraining(memory, model, 5);

        // Cyclic strategy under test: upshift to the ceiling right
        // after op 0, drop back to the floor after the last op (the
        // wrap trigger), so every iteration starts slow and speeds
        // up.  A dropped upshift leaves the whole iteration at
        // 1000 MHz - a gross, easily measurable straggler.
        upshift.push_back({0, 1800.0});
        upshift.push_back({workload.iteration.size() - 1, 1000.0});
        run_options.initial_mhz = 1000.0;
        run_options.warmup_seconds = 0.0;
        run_options.seed = 33;

        // Fault-free steady-state iteration time on a persistent chip.
        GuardedRunOptions probe;
        probe.guard.enabled = false;
        probe.iterations = 4;
        probe.run = run_options;
        GuardedRunResult clean = runGuarded(clean_config, workload,
                                            upshift, 1.0, probe);
        double total = 0.0;
        for (const auto &it : clean.iterations)
            total += it.seconds;
        baseline_seconds =
            total / static_cast<double>(clean.iterations.size());
    }
};

GuardHarness &
guardHarness()
{
    static GuardHarness h;
    return h;
}

TEST(GuardedRun, NoFaultsStaysInMonitoring)
{
    GuardHarness &h = guardHarness();
    GuardedRunOptions options;
    options.guard = tightGuard();
    options.iterations = 4;
    options.run = h.run_options;

    GuardedRunResult result = runGuarded(
        h.clean_config, h.workload, h.upshift, h.baseline_seconds, options);
    ASSERT_EQ(result.iterations.size(), 4u);
    for (const auto &it : result.iterations) {
        EXPECT_TRUE(it.strategy_active);
        EXPECT_EQ(it.state_after, GuardState::Monitoring);
    }
    EXPECT_EQ(result.guard.fallbacks, 0u);
    EXPECT_LT(result.worstLoss(),
              options.guard.violation_factor
                  * options.guard.perf_loss_target);
}

TEST(GuardedRun, RepairsDroppedUpshifts)
{
    GuardHarness &h = guardHarness();

    npu::NpuConfig faulted = h.clean_config;
    faulted.faults.set_freq_drop_rate = 0.5;
    faulted.faults.seed = 11;

    GuardedRunOptions unguarded;
    unguarded.guard = tightGuard();
    unguarded.guard.enabled = false;
    unguarded.iterations = 8;
    unguarded.run = h.run_options;
    GuardedRunResult before = runGuarded(
        faulted, h.workload, h.upshift, h.baseline_seconds, unguarded);

    GuardedRunOptions guarded = unguarded;
    guarded.guard.enabled = true;
    GuardedRunResult after = runGuarded(
        faulted, h.workload, h.upshift, h.baseline_seconds, guarded);

    // Unguarded: dropped upshifts leave whole iterations at the floor.
    EXPECT_GT(before.meanLoss(), unguarded.guard.violation_factor
                                     * unguarded.guard.perf_loss_target);
    EXPECT_GT(before.faults.set_freqs_dropped, 0u);

    // Guarded: retries land the upshift within milliseconds.
    EXPECT_GT(after.guard.set_freq_retries, 0u);
    EXPECT_LT(after.meanLoss(), before.meanLoss() / 2.0);
}

TEST(GuardedRun, ResetsLatchedSpuriousThrottle)
{
    GuardHarness &h = guardHarness();

    npu::NpuConfig faulted = h.clean_config;
    faulted.faults.spurious_trip_rate_hz = 10.0;
    faulted.faults.throttle_auto_release = false;
    faulted.faults.throttle_mhz = 1000.0;
    faulted.faults.seed = 19;

    GuardedRunOptions unguarded;
    unguarded.guard = tightGuard();
    unguarded.guard.enabled = false;
    unguarded.guard.violation_limit = 1;
    unguarded.iterations = 10;
    unguarded.run = h.run_options;
    GuardedRunResult before = runGuarded(
        faulted, h.workload, h.upshift, h.baseline_seconds, unguarded);

    GuardedRunOptions guarded = unguarded;
    guarded.guard.enabled = true;
    GuardedRunResult after = runGuarded(
        faulted, h.workload, h.upshift, h.baseline_seconds, guarded);

    // The latched clamp makes every unguarded iteration after the
    // first trip a straggler.
    EXPECT_GT(before.faults.spurious_trips, 0u);
    EXPECT_GT(before.meanLoss(), unguarded.guard.violation_factor
                                     * unguarded.guard.perf_loss_target);

    // The guard resets the governor and contains the damage.
    EXPECT_GT(after.guard.throttle_resets, 0u);
    EXPECT_LT(after.meanLoss(), before.meanLoss() / 2.0);
}

TEST(GuardedRun, SurvivesTelemetrySpikesWithoutFalseFallback)
{
    GuardHarness &h = guardHarness();

    npu::NpuConfig faulted = h.clean_config;
    faulted.faults.spike_rate = 0.3;
    faulted.faults.spike_temperature_delta = 60.0;
    faulted.faults.seed = 23;

    GuardedRunOptions options;
    options.guard = tightGuard();
    options.guard.violation_limit = 1;
    options.iterations = 6;
    options.run = h.run_options;

    GuardedRunResult result = runGuarded(
        faulted, h.workload, h.upshift, h.baseline_seconds, options);
    EXPECT_GT(result.faults.samples_spiked, 0u);
    // Median filtering keeps corrupted readings from tripping the
    // thermal envelope.
    EXPECT_EQ(result.guard.thermal_violations, 0u);
    EXPECT_EQ(result.guard.fallbacks, 0u);
}

} // namespace
} // namespace opdvfs::dvfs
