#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"

namespace opdvfs::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTick)
{
    EventQueue q;
    EXPECT_EQ(q.nextTick(), kMaxTick);
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextTick(), 42);
}

TEST(EventQueue, RunNextReturnsTick)
{
    EventQueue q;
    q.schedule(7, [] {});
    EXPECT_EQ(q.runNext(), 7);
}

TEST(EventQueue, RunNextOnEmptyThrows)
{
    EventQueue q;
    EXPECT_THROW(q.runNext(), std::logic_error);
}

TEST(EventQueue, NegativeTickThrows)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(-1, [] {}), std::invalid_argument);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<Tick> ran;
    q.schedule(1, [&] {
        ran.push_back(1);
        q.schedule(2, [&] { ran.push_back(2); });
    });
    while (!q.empty())
        ran.push_back(q.runNext() * 100);
    // runNext executes the event then returns its tick.
    EXPECT_EQ(ran, (std::vector<Tick>{1, 100, 2, 200}));
}

TEST(EventQueue, SizeTracksPending)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.runNext();
    EXPECT_EQ(q.size(), 1u);
}

} // namespace
} // namespace opdvfs::sim
