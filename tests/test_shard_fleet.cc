/**
 * @file
 * In-process multi-shard fleet tests: every shard is a real
 * StrategyService + StrategyServer on loopback with its own shard map
 * and peer client, exactly as `strategy_server --shard-id` wires them.
 *
 * Covered contracts:
 *
 *  - a router holding a wrong map is answered NotOwner, self-heals
 *    from the carried map, and the redirected exact hit is
 *    byte-identical to the owner's answer;
 *  - a cold request whose owner has no local donor converts to a
 *    warm start through the peer-donor protocol (and the import is
 *    never served as an exact hit);
 *  - after one shard recalibrates (admin RECAL), no shard in the
 *    fleet answers an exact hit with a stale-epoch strategy — the
 *    epoch-invalidate broadcast blocks until every peer acked,
 *    including when the invalidate frame crawls through a stalling
 *    chaos proxy;
 *  - killing one shard of a replicated 3-shard fleet is invisible to
 *    clients: every key answers through router failover (the dead
 *    shard's keys as warm replicas from its ring successors), and the
 *    restarted shard rehydrates from snapshot + WAL so its keys are
 *    exact hits again;
 *  - with failover disabled the owner's failure propagates unchanged
 *    (the pre-failover fail-fast contract, pinned);
 *  - a RECAL whose peer is dead names that peer's address in the
 *    admin reply;
 *  - the health monitor walks a dead peer Alive → Suspect → Down and
 *    the admin HEALTH reply carries the table.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "models/transformer.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/health.h"
#include "net/peer.h"
#include "net/router.h"
#include "net/server.h"
#include "power/offline_calibration.h"
#include "serve/cache_store.h"
#include "shard/shard_map.h"

namespace opdvfs::net {
namespace {

models::Workload
testWorkload(int seq)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "fleet-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, 5);
}

const power::CalibratedConstants &
constants()
{
    static const power::CalibratedConstants value =
        power::calibrateOffline(npu::NpuConfig{});
    return value;
}

WireRequest
testWireRequest(int seq, std::uint64_t seed)
{
    WireRequest request;
    request.workload = testWorkload(seq);
    request.seed = seed;
    return request;
}

/** Strategy text with the provenance token pinned, so cold and
 *  exact-hit strategies (which differ only in that token) compare. */
std::string
normalisedStrategyText(dvfs::Strategy strategy)
{
    if (strategy.meta)
        strategy.meta->provenance = "normalised";
    std::ostringstream os;
    dvfs::saveStrategy(strategy, os);
    return os.str();
}

/** One in-process shard: service + server + its own map and peers. */
struct TestShard
{
    std::shared_ptr<shard::SharedShardMap> map;
    std::shared_ptr<ShardPeers> peers;
    // Declared before the service: the insert listener targets them,
    // so they must outlive it.  Both stop() hooks are idempotent and
    // safe against late calls.
    std::shared_ptr<ShardReplicator> replicator;
    std::shared_ptr<HealthMonitor> health;
    std::unique_ptr<serve::CachePersister> persister;
    std::unique_ptr<serve::StrategyService> service;
    std::unique_ptr<StrategyServer> server;
    std::uint32_t id = 0;
    std::string snapshot_path;
    std::string wal_path;
};

/** A loopback fleet whose shards all know each other. */
struct TestFleet
{
    TestFleet() = default;
    TestFleet(TestFleet &&) = default;
    TestFleet &operator=(TestFleet &&) = default;

    std::vector<std::unique_ptr<TestShard>> shards;

    /** The full membership, as a client would hold it. */
    shard::ShardMap clientMap() const
    {
        return *shards.front()->map->snapshot();
    }

    TestShard &shardOwning(const WireRequest &request)
    {
        std::uint32_t id =
            clientMap()
                .ownerOf(ShardRouter::requestDigest(request))
                .id;
        for (auto &entry : shards)
            if (entry->id == id)
                return *entry;
        throw std::logic_error("fleet: owner not in fleet");
    }

    std::uint16_t portOf(std::uint32_t id) const
    {
        for (const auto &entry : shards)
            if (entry->id == id)
                return entry->server->port();
        throw std::logic_error("fleet: unknown shard id");
    }

    ~TestFleet()
    {
        // Servers first (they reference services and maps).
        for (auto &entry : shards)
            entry->server->stop();
    }
};

/** Fault-tolerance wiring for makeFleet. */
struct FleetConfig
{
    /** Total copies per entry; > 1 wires a ShardReplicator. */
    std::size_t replication_factor = 1;
    /** Non-empty: wire a CachePersister writing under this directory. */
    std::string persist_dir;
    /** Wire a HealthMonitor (manual probeOnce; no probe thread). */
    bool health = false;
};

serve::ServiceOptions
fleetServiceOptions()
{
    serve::ServiceOptions options;
    options.pipeline.warmup_seconds = 2.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 30;
    options.pipeline.ga.generations = 24;
    options.pipeline.ga.refine_sweeps = 2;
    options.pipeline.constants = constants();
    options.workers = 2;
    return options;
}

TestFleet
makeFleet(std::size_t count, const FleetConfig &config = {})
{
    TestFleet fleet;
    for (std::size_t at = 0; at < count; ++at) {
        auto shard = std::make_unique<TestShard>();
        shard->id = static_cast<std::uint32_t>(at + 1);
        shard->map = std::make_shared<shard::SharedShardMap>();
        shard->peers =
            std::make_shared<ShardPeers>(shard->id, shard->map);

        serve::ServiceOptions options = fleetServiceOptions();
        options.peer_donor_lookup = makePeerDonorLookup(shard->peers);
        if (config.replication_factor > 1) {
            ReplicatorOptions replication;
            replication.replication_factor = config.replication_factor;
            shard->replicator = std::make_shared<ShardReplicator>(
                shard->id, shard->map, replication);
        }
        if (config.health) {
            HealthOptions health;
            health.probe_interval_seconds = 0.0; // probeOnce only
            health.suspect_after_failures = 1;
            health.down_after_failures = 2;
            shard->health = std::make_shared<HealthMonitor>(
                shard->id, shard->map, health);
        }
        shard->service =
            std::make_unique<serve::StrategyService>(options);
        if (!config.persist_dir.empty()) {
            std::string stem = config.persist_dir + "/shard"
                               + std::to_string(shard->id);
            shard->snapshot_path = stem + ".snap";
            shard->wal_path = stem + ".wal";
            serve::CachePersister::Options persist;
            persist.snapshot_path = shard->snapshot_path;
            persist.wal_path = shard->wal_path;
            persist.snapshot_interval_seconds = 0.0; // explicit only
            serve::StrategyService *service = shard->service.get();
            shard->persister = std::make_unique<serve::CachePersister>(
                persist, [service] {
                    serve::CacheSnapshot snapshot;
                    snapshot.model_epoch = service->modelEpoch();
                    snapshot.entries = service->snapshotCache();
                    return snapshot;
                });
        }
        if (shard->persister || shard->replicator) {
            serve::CachePersister *persister = shard->persister.get();
            ShardReplicator *replicator = shard->replicator.get();
            shard->service->setInsertListener(
                [persister, replicator](const serve::CacheEntry &entry) {
                    if (persister)
                        persister->onInsert(entry);
                    if (replicator)
                        replicator->onInsert(entry);
                });
        }

        ServerOptions server_options;
        server_options.shard_id = shard->id;
        server_options.shard_map = shard->map;
        server_options.peers = shard->peers;
        server_options.replicator = shard->replicator;
        server_options.health = shard->health;
        shard->server = std::make_unique<StrategyServer>(
            *shard->service, server_options);
        shard->server->start();
        fleet.shards.push_back(std::move(shard));
    }
    // Every shard learns the whole membership (the bound ports exist
    // only now, hence the second pass).
    for (auto &owner : fleet.shards)
        for (auto &member : fleet.shards)
            owner->map->join(
                {member->id, "127.0.0.1:"
                                 + std::to_string(member->server->port())});
    return fleet;
}

/** A request pair (similar workloads) owned by two different shards,
 *  found by scanning seq variants; the fleet routing is deterministic
 *  so the scan always converges quickly for a 2-shard fleet. */
std::pair<WireRequest, WireRequest>
crossShardSimilarPair(TestFleet &fleet)
{
    WireRequest base = testWireRequest(256, 3);
    std::uint32_t base_owner = fleet.shardOwning(base).id;
    for (int seq = 264; seq <= 512; seq += 8) {
        WireRequest variant = testWireRequest(seq, 3);
        if (fleet.shardOwning(variant).id != base_owner)
            return {base, variant};
    }
    throw std::logic_error("fleet: no cross-shard similar pair found");
}

TEST(ShardFleet, RedirectedExactHitIsByteIdentical)
{
    TestFleet fleet = makeFleet(2);
    WireRequest request = testWireRequest(256, 3);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);

    WireResponse cold = router.call(request);
    EXPECT_EQ(cold.provenance, serve::Provenance::Cold);
    WireResponse hit = router.call(request);
    ASSERT_EQ(hit.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(router.redirectsFollowed(), 0u);

    // A router whose map swaps the two addresses dials the non-owner
    // first; the NotOwner answer must carry enough to self-heal and
    // land the byte-identical exact hit on the second hop.
    shard::ShardMap fleet_map = fleet.clientMap();
    std::vector<shard::ShardInfo> swapped = fleet_map.shards();
    std::swap(swapped[0].address, swapped[1].address);
    shard::ShardMap stale(swapped, fleet_map.vnodesPerShard(),
                          /*epoch=*/1);
    ShardRouter misrouted(stale, options);

    WireResponse redirected = misrouted.call(request);
    EXPECT_GE(misrouted.redirectsFollowed(), 1u);
    EXPECT_GE(misrouted.mapRefreshes(), 1u);
    EXPECT_EQ(misrouted.map().epoch(), fleet_map.epoch());
    ASSERT_EQ(redirected.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(redirected.fingerprint_digest, hit.fingerprint_digest);
    EXPECT_EQ(redirected.best_score, hit.best_score);
    EXPECT_EQ(normalisedStrategyText(redirected.strategy),
              normalisedStrategyText(hit.strategy));

    // The wrong first hop was counted by the non-owner.
    std::uint64_t not_owner = 0;
    for (auto &entry : fleet.shards)
        not_owner += entry->server->stats().responses_not_owner;
    EXPECT_GE(not_owner, 1u);
}

TEST(ShardFleet, PeerDonorConvertsColdToWarmStart)
{
    TestFleet fleet = makeFleet(2);
    auto [base, variant] = crossShardSimilarPair(fleet);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);

    // Prime the base on its owner.
    WireResponse primed = router.call(base);
    EXPECT_EQ(primed.provenance, serve::Provenance::Cold);

    // The variant's owner has an empty cache: without peers this
    // would be a cold search; the donor from the other shard makes it
    // a warm start.
    TestShard &owner = fleet.shardOwning(variant);
    WireResponse warmed = router.call(variant);
    EXPECT_EQ(warmed.provenance, serve::Provenance::WarmStart);

    serve::ServiceStats service_stats = owner.service->stats();
    EXPECT_GE(service_stats.peer_donor_queries, 1u);
    EXPECT_GE(service_stats.peer_donor_hits, 1u);
    EXPECT_GE(service_stats.donors_imported, 1u);

    TestShard &donor_shard = fleet.shardOwning(base);
    ServerStats donor_stats = donor_shard.server->stats();
    EXPECT_GE(donor_stats.peer_donor_queries_served, 1u);
    EXPECT_GE(donor_stats.peer_donors_exported, 1u);

    // The import is a warm-start donor, never an exact hit: asking
    // the owner for the *base* fingerprint directly (bypassing the
    // router's ownership routing) must not be answered from the
    // imported copy.
    StrategyClient direct("127.0.0.1", owner.server->port(),
                          options.client);
    try {
        WireResponse shadow = direct.call(base);
        FAIL() << "non-owner served an owned digest: "
               << serve::provenanceToken(shadow.provenance);
    } catch (const NotOwnerError &) {
        // Ownership checking already prevents the shadow read — the
        // cache-level warm_start_only guarantee is covered by the
        // service tests.
    }

    // The variant's own answer is now cached at its owner.
    WireResponse again = router.call(variant);
    EXPECT_EQ(again.provenance, serve::Provenance::ExactHit);
}

TEST(ShardFleet, RecalInvalidatesExactHitsFleetWide)
{
    TestFleet fleet = makeFleet(2);
    auto [base, variant] = crossShardSimilarPair(fleet);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);

    // Prime an exact hit on both shards.
    router.call(base);
    router.call(variant);
    ASSERT_EQ(router.call(base).provenance, serve::Provenance::ExactHit);
    ASSERT_EQ(router.call(variant).provenance,
              serve::Provenance::ExactHit);

    // One shard recalibrates; the admin reply arrives only after the
    // peer acked the epoch invalidate.
    std::uint32_t recal_id = fleet.shardOwning(base).id;
    std::string reply = adminQuery(
        "127.0.0.1", fleet.portOf(recal_id), "RECAL");
    std::istringstream fields(reply);
    std::string ok;
    std::string epoch_word;
    std::uint64_t epoch = 0;
    std::string acks_word;
    std::size_t acks = 0;
    ASSERT_TRUE(fields >> ok >> epoch_word >> epoch >> acks_word >> acks)
        << "unparseable RECAL reply: " << reply;
    EXPECT_EQ(ok, "ok");
    EXPECT_EQ(acks, 1u);
    // Full coverage: no timed-out peers to name.
    EXPECT_EQ(reply.find("timeouts"), std::string::npos) << reply;

    // No shard may answer an exact hit with a stale-epoch strategy —
    // the primed entries demote to warm-start donors everywhere.
    WireResponse base_after = router.call(base);
    EXPECT_NE(base_after.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(base_after.model_epoch, epoch);
    WireResponse variant_after = router.call(variant);
    EXPECT_NE(variant_after.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(variant_after.model_epoch, epoch);

    for (auto &entry : fleet.shards)
        EXPECT_EQ(entry->service->modelEpoch(), epoch);

    // Recomputed entries are exact-hittable again at the new epoch.
    EXPECT_EQ(router.call(base).provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(router.call(variant).provenance,
              serve::Provenance::ExactHit);
}

TEST(ShardFleet, DelayedInvalidateFrameStillBlocksUntilCoherent)
{
    TestFleet fleet = makeFleet(2);
    auto [base, variant] = crossShardSimilarPair(fleet);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);
    router.call(base);
    router.call(variant);

    TestShard &recal = fleet.shardOwning(base);
    TestShard &peer = fleet.shardOwning(variant);

    // Route the recalibrating shard's view of its peer through a
    // chaos proxy that stalls mid-frame: the invalidate crawls, but
    // the broadcast must keep blocking until the ack.
    ChaosPlan plan;
    plan.stall_after_bytes = 8; // mid-header, upstream
    plan.stall_seconds = 0.5;
    plan.apply_downstream = false;
    ChaosProxy proxy("127.0.0.1", peer.server->port(), plan);
    proxy.start();
    recal.map->join(
        {peer.id, "127.0.0.1:" + std::to_string(proxy.port())});

    std::string reply = adminQuery(
        "127.0.0.1", recal.server->port(), "RECAL");
    std::istringstream fields(reply);
    std::string ok;
    std::string epoch_word;
    std::uint64_t epoch = 0;
    std::string acks_word;
    std::size_t acks = 0;
    ASSERT_TRUE(fields >> ok >> epoch_word >> epoch >> acks_word >> acks)
        << "unparseable RECAL reply: " << reply;
    EXPECT_EQ(ok, "ok");
    EXPECT_EQ(acks, 1u) << "the stalled invalidate was not acked";
    EXPECT_GE(proxy.counters().stalls, 1u);

    // The delayed frame arrived before the admin reply: the peer is
    // already coherent.
    EXPECT_EQ(peer.service->modelEpoch(), epoch);
    EXPECT_NE(router.call(variant).provenance,
              serve::Provenance::ExactHit);

    proxy.stop();
}

/** Fresh empty scratch directory for one test. */
std::string
freshTempDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/**
 * The tentpole chaos drill: a 3-shard fleet with replication factor 2,
 * health probing and snapshot+WAL persistence.  One shard is killed
 * mid-traffic (sockets torn down, no graceful persister drain — the
 * crash path).  Every key must keep answering with zero client-visible
 * errors: the dead shard's keys come back byte-identical from its ring
 * successors' replica sets.  A fresh service then rehydrates from the
 * victim's snapshot + WAL and answers the victim's keys as local exact
 * hits — the crash lost nothing that was durable.
 */
TEST(ShardFleet, ChaosKillFailoverAndRecovery)
{
    std::string dir = freshTempDir("opdvfs_fleet_chaos");
    FleetConfig config;
    config.replication_factor = 2;
    config.persist_dir = dir;
    config.health = true;
    TestFleet fleet = makeFleet(3, config);

    // Deterministic key set: whoever owns seq 256 is the victim; scan
    // seq variants until the victim owns two keys and the survivors
    // own two between them.
    struct DrillKey
    {
        int seq = 0;
        WireRequest request;
        bool victim_owned = false;
        std::string primed_text;
    };
    std::vector<DrillKey> keys;
    keys.push_back({256, testWireRequest(256, 3), true, ""});
    TestShard &victim = fleet.shardOwning(keys.front().request);
    std::size_t victim_owned = 1;
    std::size_t other_owned = 0;
    for (int seq = 264; seq <= 768 && (victim_owned < 2 || other_owned < 2);
         seq += 8) {
        DrillKey key{seq, testWireRequest(seq, 3), false, ""};
        key.victim_owned =
            fleet.shardOwning(key.request).id == victim.id;
        if (key.victim_owned) {
            if (victim_owned >= 2)
                continue;
            ++victim_owned;
        } else {
            if (other_owned >= 2)
                continue;
            ++other_owned;
        }
        keys.push_back(std::move(key));
    }
    ASSERT_GE(victim_owned, 2u) << "seq scan found too few victim keys";
    ASSERT_GE(other_owned, 2u) << "seq scan found too few other keys";

    RouterOptions prime_options;
    prime_options.client.request_timeout_seconds = 120.0;
    ShardRouter primer(fleet.clientMap(), prime_options);

    // Prime the first victim key, then snapshot: recovery must read
    // this entry from the snapshot and every later one from the WAL
    // (both restore paths exercised).
    keys.front().primed_text =
        normalisedStrategyText(primer.call(keys.front().request).strategy);
    ASSERT_TRUE(victim.persister);
    victim.persister->flush();
    victim.persister->writeSnapshotNow();
    for (std::size_t at = 1; at < keys.size(); ++at)
        keys[at].primed_text = normalisedStrategyText(
            primer.call(keys[at].request).strategy);

    // Make the victim's inserts durable (WAL) and replicated before
    // the kill; survivors' replicas of *their* keys are irrelevant.
    ASSERT_TRUE(victim.replicator);
    victim.replicator->flush();
    victim.persister->flush();
    serve::CachePersister::Stats persist_stats = victim.persister->stats();
    EXPECT_GE(persist_stats.wal_appends, victim_owned - 1);
    EXPECT_EQ(persist_stats.wal_dropped, 0u);
    EXPECT_GE(persist_stats.snapshots_written, 1u);
    ReplicatorStats replication = victim.replicator->stats();
    EXPECT_GE(replication.acked, victim_owned);
    EXPECT_EQ(replication.dropped, 0u);

    // Kill: sockets die, the persister stops WITHOUT a final snapshot
    // (crash semantics — only the snapshot + WAL written so far
    // survive).
    victim.server->stop();
    victim.replicator->stop();
    victim.persister->stop(/*write_final_snapshot=*/false);

    // A survivor's health monitor walks the victim to Down.
    TestShard &observer = *fleet.shards[victim.id == 1 ? 1 : 0];
    ASSERT_NE(observer.id, victim.id);
    ASSERT_TRUE(observer.health);
    observer.health->probeOnce();
    observer.health->probeOnce();
    EXPECT_EQ(observer.health->healthOf(victim.id), PeerHealth::Down);

    // Failover traffic: every key answers, zero errors.  The victim's
    // keys come from a successor's replica set as warm starts,
    // byte-identical to the primed strategies.
    RouterOptions failover_options = prime_options;
    failover_options.client.connect_timeout_seconds = 0.3;
    failover_options.client.max_attempts = 2;
    failover_options.failover = true;
    failover_options.max_failover_successors = 2;
    failover_options.peer_health = [&observer](std::uint32_t id) {
        return observer.health->healthOf(id);
    };
    ShardRouter failover_router(fleet.clientMap(), failover_options);
    for (const DrillKey &key : keys) {
        WireResponse response;
        ASSERT_NO_THROW(response = failover_router.call(key.request))
            << "client-visible error for seq " << key.seq;
        if (key.victim_owned) {
            EXPECT_EQ(response.provenance, serve::Provenance::WarmStart)
                << "seq " << key.seq;
            EXPECT_EQ(normalisedStrategyText(response.strategy),
                      key.primed_text)
                << "replica answer diverged for seq " << key.seq;
        } else {
            EXPECT_EQ(response.provenance, serve::Provenance::ExactHit)
                << "seq " << key.seq;
        }
    }
    EXPECT_GE(failover_router.failoversServed(), victim_owned);
    std::uint64_t replica_hits = 0;
    std::uint64_t replicas_received = 0;
    for (auto &entry : fleet.shards) {
        if (entry->id == victim.id)
            continue;
        replica_hits += entry->service->stats().replica_hits;
        replicas_received +=
            entry->server->stats().peer_replicas_received;
    }
    EXPECT_GE(replica_hits, victim_owned);
    EXPECT_GE(replicas_received, victim_owned);

    // Restart: a fresh service rehydrates from the victim's snapshot +
    // WAL.  Both restore paths must have carried entries, and every
    // victim key must answer as a local exact hit, byte-identical.
    serve::StrategyService restored(fleetServiceOptions());
    serve::RestoreReport report = serve::restoreServiceCache(
        restored, victim.snapshot_path, victim.wal_path);
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_GE(report.snapshot_entries, 1u);
    EXPECT_GE(report.wal_entries, 1u);
    EXPECT_GE(report.restored, victim_owned);
    EXPECT_FALSE(report.wal_truncated);
    EXPECT_GE(restored.stats().restored_entries, victim_owned);
    for (const DrillKey &key : keys) {
        if (!key.victim_owned)
            continue;
        serve::StrategyRequest request;
        request.workload = testWorkload(key.seq);
        request.seed = 3;
        serve::StrategyResponse answer =
            restored.submit(request).get();
        EXPECT_EQ(answer.provenance, serve::Provenance::ExactHit)
            << "restart lost seq " << key.seq;
        EXPECT_EQ(normalisedStrategyText(answer.strategy),
                  key.primed_text)
            << "restored strategy diverged for seq " << key.seq;
    }
    restored.drain();
    std::filesystem::remove_all(dir);
}

/** The pre-failover contract, pinned: with failover disabled the
 *  owner's failure propagates unchanged, and the circuit breaker still
 *  fails the next call fast. */
TEST(ShardFleet, RouterFailsFastWhenFailoverDisabled)
{
    TestFleet fleet = makeFleet(2);
    shard::ShardMap map = fleet.clientMap();
    for (auto &entry : fleet.shards)
        entry->server->stop();

    RouterOptions options;
    options.failover = false;
    options.client.connect_timeout_seconds = 0.2;
    options.client.max_attempts = 1;
    options.client.breaker_failure_threshold = 1;
    ShardRouter router(map, options);

    WireRequest request = testWireRequest(256, 3);
    EXPECT_THROW(router.call(request), NetError);
    // The breaker opened after that single failure: the immediate
    // retry fails fast without touching the network.
    EXPECT_THROW(router.call(request), CircuitOpenError);
    EXPECT_EQ(router.failoversServed(), 0u);
}

/** A RECAL with a dead peer names that peer's address in the admin
 *  reply — operators see *who* is incoherent, not just a count. */
TEST(ShardFleet, RecalReplyListsTimedOutPeers)
{
    TestFleet fleet = makeFleet(2);
    TestShard &alive = *fleet.shards[0];
    TestShard &dead = *fleet.shards[1];
    std::string dead_address =
        "127.0.0.1:" + std::to_string(dead.server->port());
    dead.server->stop();

    std::string reply =
        adminQuery("127.0.0.1", alive.server->port(), "RECAL", 10.0);
    std::istringstream fields(reply);
    std::string ok;
    std::string epoch_word;
    std::uint64_t epoch = 0;
    std::string acks_word;
    std::size_t acks = 0;
    std::string timeouts_word;
    std::string addresses;
    ASSERT_TRUE(fields >> ok >> epoch_word >> epoch >> acks_word >> acks
                >> timeouts_word >> addresses)
        << "unparseable RECAL reply: " << reply;
    EXPECT_EQ(ok, "ok");
    EXPECT_EQ(acks, 0u);
    EXPECT_EQ(timeouts_word, "timeouts");
    EXPECT_EQ(addresses, dead_address);
}

/** The health monitor walks a dead peer Alive → Suspect → Down (one
 *  miss suspects, two confirm), keeps unknown ids optimistic, and the
 *  admin HEALTH reply carries the per-peer table. */
TEST(ShardFleet, HealthMonitorWalksAliveSuspectDown)
{
    FleetConfig config;
    config.health = true;
    TestFleet fleet = makeFleet(2, config);
    TestShard &observer = *fleet.shards[0];
    TestShard &target = *fleet.shards[1];
    ASSERT_TRUE(observer.health);

    // Not yet probed: optimistic.
    EXPECT_EQ(observer.health->healthOf(target.id), PeerHealth::Alive);
    observer.health->probeOnce();
    EXPECT_EQ(observer.health->healthOf(target.id), PeerHealth::Alive);

    target.server->stop();
    observer.health->probeOnce();
    EXPECT_EQ(observer.health->healthOf(target.id), PeerHealth::Suspect);
    observer.health->probeOnce();
    EXPECT_EQ(observer.health->healthOf(target.id), PeerHealth::Down);

    // Ids the monitor has never seen stay optimistic.
    EXPECT_EQ(observer.health->healthOf(99), PeerHealth::Alive);

    std::string reply =
        adminQuery("127.0.0.1", observer.server->port(), "HEALTH");
    EXPECT_NE(reply.find("peer_health " + std::to_string(target.id)),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("down"), std::string::npos) << reply;
}

} // namespace
} // namespace opdvfs::net
