/**
 * @file
 * In-process multi-shard fleet tests: every shard is a real
 * StrategyService + StrategyServer on loopback with its own shard map
 * and peer client, exactly as `strategy_server --shard-id` wires them.
 *
 * Covered contracts:
 *
 *  - a router holding a wrong map is answered NotOwner, self-heals
 *    from the carried map, and the redirected exact hit is
 *    byte-identical to the owner's answer;
 *  - a cold request whose owner has no local donor converts to a
 *    warm start through the peer-donor protocol (and the import is
 *    never served as an exact hit);
 *  - after one shard recalibrates (admin RECAL), no shard in the
 *    fleet answers an exact hit with a stale-epoch strategy — the
 *    epoch-invalidate broadcast blocks until every peer acked,
 *    including when the invalidate frame crawls through a stalling
 *    chaos proxy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "models/transformer.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/peer.h"
#include "net/router.h"
#include "net/server.h"
#include "power/offline_calibration.h"
#include "shard/shard_map.h"

namespace opdvfs::net {
namespace {

models::Workload
testWorkload(int seq)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "fleet-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, 5);
}

const power::CalibratedConstants &
constants()
{
    static const power::CalibratedConstants value =
        power::calibrateOffline(npu::NpuConfig{});
    return value;
}

WireRequest
testWireRequest(int seq, std::uint64_t seed)
{
    WireRequest request;
    request.workload = testWorkload(seq);
    request.seed = seed;
    return request;
}

/** Strategy text with the provenance token pinned, so cold and
 *  exact-hit strategies (which differ only in that token) compare. */
std::string
normalisedStrategyText(dvfs::Strategy strategy)
{
    if (strategy.meta)
        strategy.meta->provenance = "normalised";
    std::ostringstream os;
    dvfs::saveStrategy(strategy, os);
    return os.str();
}

/** One in-process shard: service + server + its own map and peers. */
struct TestShard
{
    std::shared_ptr<shard::SharedShardMap> map;
    std::shared_ptr<ShardPeers> peers;
    std::unique_ptr<serve::StrategyService> service;
    std::unique_ptr<StrategyServer> server;
    std::uint32_t id = 0;
};

/** A loopback fleet whose shards all know each other. */
struct TestFleet
{
    TestFleet() = default;
    TestFleet(TestFleet &&) = default;
    TestFleet &operator=(TestFleet &&) = default;

    std::vector<std::unique_ptr<TestShard>> shards;

    /** The full membership, as a client would hold it. */
    shard::ShardMap clientMap() const
    {
        return *shards.front()->map->snapshot();
    }

    TestShard &shardOwning(const WireRequest &request)
    {
        std::uint32_t id =
            clientMap()
                .ownerOf(ShardRouter::requestDigest(request))
                .id;
        for (auto &entry : shards)
            if (entry->id == id)
                return *entry;
        throw std::logic_error("fleet: owner not in fleet");
    }

    std::uint16_t portOf(std::uint32_t id) const
    {
        for (const auto &entry : shards)
            if (entry->id == id)
                return entry->server->port();
        throw std::logic_error("fleet: unknown shard id");
    }

    ~TestFleet()
    {
        // Servers first (they reference services and maps).
        for (auto &entry : shards)
            entry->server->stop();
    }
};

TestFleet
makeFleet(std::size_t count)
{
    TestFleet fleet;
    for (std::size_t at = 0; at < count; ++at) {
        auto shard = std::make_unique<TestShard>();
        shard->id = static_cast<std::uint32_t>(at + 1);
        shard->map = std::make_shared<shard::SharedShardMap>();
        shard->peers =
            std::make_shared<ShardPeers>(shard->id, shard->map);

        serve::ServiceOptions options;
        options.pipeline.warmup_seconds = 2.0;
        options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
        options.pipeline.ga.population = 30;
        options.pipeline.ga.generations = 24;
        options.pipeline.ga.refine_sweeps = 2;
        options.pipeline.constants = constants();
        options.workers = 2;
        options.peer_donor_lookup = makePeerDonorLookup(shard->peers);
        shard->service =
            std::make_unique<serve::StrategyService>(options);

        ServerOptions server_options;
        server_options.shard_id = shard->id;
        server_options.shard_map = shard->map;
        server_options.peers = shard->peers;
        shard->server = std::make_unique<StrategyServer>(
            *shard->service, server_options);
        shard->server->start();
        fleet.shards.push_back(std::move(shard));
    }
    // Every shard learns the whole membership (the bound ports exist
    // only now, hence the second pass).
    for (auto &owner : fleet.shards)
        for (auto &member : fleet.shards)
            owner->map->join(
                {member->id, "127.0.0.1:"
                                 + std::to_string(member->server->port())});
    return fleet;
}

/** A request pair (similar workloads) owned by two different shards,
 *  found by scanning seq variants; the fleet routing is deterministic
 *  so the scan always converges quickly for a 2-shard fleet. */
std::pair<WireRequest, WireRequest>
crossShardSimilarPair(TestFleet &fleet)
{
    WireRequest base = testWireRequest(256, 3);
    std::uint32_t base_owner = fleet.shardOwning(base).id;
    for (int seq = 264; seq <= 512; seq += 8) {
        WireRequest variant = testWireRequest(seq, 3);
        if (fleet.shardOwning(variant).id != base_owner)
            return {base, variant};
    }
    throw std::logic_error("fleet: no cross-shard similar pair found");
}

TEST(ShardFleet, RedirectedExactHitIsByteIdentical)
{
    TestFleet fleet = makeFleet(2);
    WireRequest request = testWireRequest(256, 3);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);

    WireResponse cold = router.call(request);
    EXPECT_EQ(cold.provenance, serve::Provenance::Cold);
    WireResponse hit = router.call(request);
    ASSERT_EQ(hit.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(router.redirectsFollowed(), 0u);

    // A router whose map swaps the two addresses dials the non-owner
    // first; the NotOwner answer must carry enough to self-heal and
    // land the byte-identical exact hit on the second hop.
    shard::ShardMap fleet_map = fleet.clientMap();
    std::vector<shard::ShardInfo> swapped = fleet_map.shards();
    std::swap(swapped[0].address, swapped[1].address);
    shard::ShardMap stale(swapped, fleet_map.vnodesPerShard(),
                          /*epoch=*/1);
    ShardRouter misrouted(stale, options);

    WireResponse redirected = misrouted.call(request);
    EXPECT_GE(misrouted.redirectsFollowed(), 1u);
    EXPECT_GE(misrouted.mapRefreshes(), 1u);
    EXPECT_EQ(misrouted.map().epoch(), fleet_map.epoch());
    ASSERT_EQ(redirected.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(redirected.fingerprint_digest, hit.fingerprint_digest);
    EXPECT_EQ(redirected.best_score, hit.best_score);
    EXPECT_EQ(normalisedStrategyText(redirected.strategy),
              normalisedStrategyText(hit.strategy));

    // The wrong first hop was counted by the non-owner.
    std::uint64_t not_owner = 0;
    for (auto &entry : fleet.shards)
        not_owner += entry->server->stats().responses_not_owner;
    EXPECT_GE(not_owner, 1u);
}

TEST(ShardFleet, PeerDonorConvertsColdToWarmStart)
{
    TestFleet fleet = makeFleet(2);
    auto [base, variant] = crossShardSimilarPair(fleet);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);

    // Prime the base on its owner.
    WireResponse primed = router.call(base);
    EXPECT_EQ(primed.provenance, serve::Provenance::Cold);

    // The variant's owner has an empty cache: without peers this
    // would be a cold search; the donor from the other shard makes it
    // a warm start.
    TestShard &owner = fleet.shardOwning(variant);
    WireResponse warmed = router.call(variant);
    EXPECT_EQ(warmed.provenance, serve::Provenance::WarmStart);

    serve::ServiceStats service_stats = owner.service->stats();
    EXPECT_GE(service_stats.peer_donor_queries, 1u);
    EXPECT_GE(service_stats.peer_donor_hits, 1u);
    EXPECT_GE(service_stats.donors_imported, 1u);

    TestShard &donor_shard = fleet.shardOwning(base);
    ServerStats donor_stats = donor_shard.server->stats();
    EXPECT_GE(donor_stats.peer_donor_queries_served, 1u);
    EXPECT_GE(donor_stats.peer_donors_exported, 1u);

    // The import is a warm-start donor, never an exact hit: asking
    // the owner for the *base* fingerprint directly (bypassing the
    // router's ownership routing) must not be answered from the
    // imported copy.
    StrategyClient direct("127.0.0.1", owner.server->port(),
                          options.client);
    try {
        WireResponse shadow = direct.call(base);
        FAIL() << "non-owner served an owned digest: "
               << serve::provenanceToken(shadow.provenance);
    } catch (const NotOwnerError &) {
        // Ownership checking already prevents the shadow read — the
        // cache-level warm_start_only guarantee is covered by the
        // service tests.
    }

    // The variant's own answer is now cached at its owner.
    WireResponse again = router.call(variant);
    EXPECT_EQ(again.provenance, serve::Provenance::ExactHit);
}

TEST(ShardFleet, RecalInvalidatesExactHitsFleetWide)
{
    TestFleet fleet = makeFleet(2);
    auto [base, variant] = crossShardSimilarPair(fleet);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);

    // Prime an exact hit on both shards.
    router.call(base);
    router.call(variant);
    ASSERT_EQ(router.call(base).provenance, serve::Provenance::ExactHit);
    ASSERT_EQ(router.call(variant).provenance,
              serve::Provenance::ExactHit);

    // One shard recalibrates; the admin reply arrives only after the
    // peer acked the epoch invalidate.
    std::uint32_t recal_id = fleet.shardOwning(base).id;
    std::string reply = adminQuery(
        "127.0.0.1", fleet.portOf(recal_id), "RECAL");
    std::istringstream fields(reply);
    std::string ok;
    std::string epoch_word;
    std::uint64_t epoch = 0;
    std::string acks_word;
    std::size_t acks = 0;
    ASSERT_TRUE(fields >> ok >> epoch_word >> epoch >> acks_word >> acks)
        << "unparseable RECAL reply: " << reply;
    EXPECT_EQ(ok, "ok");
    EXPECT_EQ(acks, 1u);

    // No shard may answer an exact hit with a stale-epoch strategy —
    // the primed entries demote to warm-start donors everywhere.
    WireResponse base_after = router.call(base);
    EXPECT_NE(base_after.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(base_after.model_epoch, epoch);
    WireResponse variant_after = router.call(variant);
    EXPECT_NE(variant_after.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(variant_after.model_epoch, epoch);

    for (auto &entry : fleet.shards)
        EXPECT_EQ(entry->service->modelEpoch(), epoch);

    // Recomputed entries are exact-hittable again at the new epoch.
    EXPECT_EQ(router.call(base).provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(router.call(variant).provenance,
              serve::Provenance::ExactHit);
}

TEST(ShardFleet, DelayedInvalidateFrameStillBlocksUntilCoherent)
{
    TestFleet fleet = makeFleet(2);
    auto [base, variant] = crossShardSimilarPair(fleet);

    RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    ShardRouter router(fleet.clientMap(), options);
    router.call(base);
    router.call(variant);

    TestShard &recal = fleet.shardOwning(base);
    TestShard &peer = fleet.shardOwning(variant);

    // Route the recalibrating shard's view of its peer through a
    // chaos proxy that stalls mid-frame: the invalidate crawls, but
    // the broadcast must keep blocking until the ack.
    ChaosPlan plan;
    plan.stall_after_bytes = 8; // mid-header, upstream
    plan.stall_seconds = 0.5;
    plan.apply_downstream = false;
    ChaosProxy proxy("127.0.0.1", peer.server->port(), plan);
    proxy.start();
    recal.map->join(
        {peer.id, "127.0.0.1:" + std::to_string(proxy.port())});

    std::string reply = adminQuery(
        "127.0.0.1", recal.server->port(), "RECAL");
    std::istringstream fields(reply);
    std::string ok;
    std::string epoch_word;
    std::uint64_t epoch = 0;
    std::string acks_word;
    std::size_t acks = 0;
    ASSERT_TRUE(fields >> ok >> epoch_word >> epoch >> acks_word >> acks)
        << "unparseable RECAL reply: " << reply;
    EXPECT_EQ(ok, "ok");
    EXPECT_EQ(acks, 1u) << "the stalled invalidate was not acked";
    EXPECT_GE(proxy.counters().stalls, 1u);

    // The delayed frame arrived before the admin reply: the peer is
    // already coherent.
    EXPECT_EQ(peer.service->modelEpoch(), epoch);
    EXPECT_NE(router.call(variant).provenance,
              serve::Provenance::ExactHit);

    proxy.stop();
}

} // namespace
} // namespace opdvfs::net
