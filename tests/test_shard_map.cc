/**
 * @file
 * Unit tests for the shard membership map: construction validation,
 * epoch discipline under join/leave, the text codec's error handling,
 * address parsing, the thread-safe SharedShardMap holder, and a set
 * of golden ring lookups pinning ownership across processes and
 * builds (the consistent-hash function is part of the wire contract —
 * clients and servers route independently and must agree).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/ring.h"
#include "shard/shard_map.h"

namespace opdvfs::shard {
namespace {

std::vector<ShardInfo>
fourShards()
{
    return {{1, "h1:1001"}, {2, "h2:1002"}, {3, "h3:1003"}, {4, "h4:1004"}};
}

TEST(ShardMap, GoldenOwnershipIsStableAcrossProcesses)
{
    // Computed once from this exact membership; any change here means
    // the hash function changed and every deployed map is invalid.
    ShardMap map(fourShards(), 64);
    EXPECT_EQ(map.ownerOf(0x0000000000000000ull).id, 4u);
    EXPECT_EQ(map.ownerOf(0x0000000000000001ull).id, 3u);
    EXPECT_EQ(map.ownerOf(0x00000000DEADBEEFull).id, 1u);
    EXPECT_EQ(map.ownerOf(0x123456789ABCDEF0ull).id, 1u);
    EXPECT_EQ(map.ownerOf(0x8000000000000000ull).id, 4u);
    EXPECT_EQ(map.ownerOf(0xFFFFFFFFFFFFFFFFull).id, 3u);
}

TEST(ShardMap, ConstructionValidates)
{
    EXPECT_THROW(ShardMap({{1, "h:1"}, {1, "h:2"}}), std::invalid_argument);
    EXPECT_THROW(ShardMap({{1, "no-port"}}), std::invalid_argument);
    EXPECT_THROW(ShardMap({{1, "h:0"}}), std::invalid_argument);
    EXPECT_THROW(ShardMap({{1, "h:99999"}}), std::invalid_argument);
    EXPECT_THROW(ShardMap({{1, "h:1"}}, /*vnodes=*/0),
                 std::invalid_argument);
}

TEST(ShardMap, EmptyMapRefusesLookups)
{
    ShardMap empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.epoch(), 0u);
    EXPECT_THROW(empty.ownerOf(42), std::logic_error);
}

TEST(ShardMap, JoinAndLeaveBumpTheEpoch)
{
    ShardMap map(fourShards(), 64, /*epoch=*/1);
    EXPECT_EQ(map.epoch(), 1u);
    map.join({9, "h9:1009"});
    EXPECT_EQ(map.epoch(), 2u);
    EXPECT_EQ(map.size(), 5u);
    ASSERT_NE(map.find(9), nullptr);
    EXPECT_EQ(map.find(9)->address, "h9:1009");

    // Re-joining an existing id replaces the address (a shard moved
    // hosts) and still bumps: routing truth changed.
    map.join({9, "h10:1010"});
    EXPECT_EQ(map.epoch(), 3u);
    EXPECT_EQ(map.size(), 5u);
    EXPECT_EQ(map.find(9)->address, "h10:1010");

    map.leave(9);
    EXPECT_EQ(map.epoch(), 4u);
    EXPECT_EQ(map.size(), 4u);
    EXPECT_EQ(map.find(9), nullptr);

    // Leaving an unknown id is a no-op and must not bump (a retried
    // LEAVE stays idempotent).
    map.leave(9);
    EXPECT_EQ(map.epoch(), 4u);
}

TEST(ShardMap, CodecRejectsMalformedText)
{
    ShardMap map(fourShards());
    std::string good = map.encode();
    EXPECT_EQ(ShardMap::decode(good), map);

    EXPECT_THROW(ShardMap::decode(""), std::invalid_argument);
    EXPECT_THROW(ShardMap::decode("shardmap v2\n"), std::invalid_argument);
    EXPECT_THROW(ShardMap::decode("shardmap v1\nepoch x\n"),
                 std::invalid_argument);
    // A count that promises more shards than the text carries.
    EXPECT_THROW(
        ShardMap::decode(
            "shardmap v1\nepoch 1\nvnodes 64\ncount 2\nshard 1 h:1\n"),
        std::invalid_argument);
    // Trailing garbage after the promised records.
    EXPECT_THROW(ShardMap::decode(good + "shard 9 h:9\n"),
                 std::invalid_argument);
}

TEST(ShardMap, ParseAddressValidates)
{
    std::string host;
    std::uint16_t port = 0;
    parseAddress("127.0.0.1:8080", &host, &port);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);

    EXPECT_THROW(parseAddress("no-colon", &host, &port),
                 std::invalid_argument);
    EXPECT_THROW(parseAddress(":8080", &host, &port),
                 std::invalid_argument);
    EXPECT_THROW(parseAddress("h:", &host, &port), std::invalid_argument);
    EXPECT_THROW(parseAddress("h:0", &host, &port), std::invalid_argument);
    EXPECT_THROW(parseAddress("h:65536", &host, &port),
                 std::invalid_argument);
    EXPECT_THROW(parseAddress("h:12x4", &host, &port),
                 std::invalid_argument);
}

TEST(SharedShardMap, SnapshotsAreImmutableAndLive)
{
    auto shared = std::make_shared<SharedShardMap>();
    auto before = shared->snapshot();
    ASSERT_NE(before, nullptr);
    EXPECT_TRUE(before->empty());

    EXPECT_EQ(shared->join({1, "h1:1001"}), 1u);
    EXPECT_EQ(shared->join({2, "h2:1002"}), 2u);

    // The old snapshot is untouched; a fresh one sees both joins.
    EXPECT_TRUE(before->empty());
    auto after = shared->snapshot();
    EXPECT_EQ(after->size(), 2u);
    EXPECT_EQ(after->epoch(), 2u);

    EXPECT_EQ(shared->leave(1), 3u);
    EXPECT_EQ(shared->snapshot()->size(), 1u);

    ShardMap replacement(fourShards(), 64, /*epoch=*/10);
    shared->update(replacement);
    EXPECT_EQ(shared->snapshot()->epoch(), 10u);
    EXPECT_EQ(shared->snapshot()->size(), 4u);
}

TEST(HashRing, DegenerateInputYieldsAnEmptyRing)
{
    HashRing empty;
    EXPECT_THROW(empty.ownerOf(1), std::logic_error);
    // No ids or no vnodes: an empty ring that refuses lookups (the
    // ShardMap constructor rejects zero vnodes before getting here).
    EXPECT_THROW(HashRing({}, 64).ownerOf(1), std::logic_error);
    EXPECT_THROW(HashRing({1, 2}, 0).ownerOf(1), std::logic_error);
}

TEST(HashRing, SingleShardOwnsEverything)
{
    HashRing ring({7}, 8);
    for (std::uint64_t digest : {0ull, 1ull, ~0ull, 0xABCDEFull})
        EXPECT_EQ(ring.ownerOf(digest), 7u);
}

} // namespace
} // namespace opdvfs::shard
