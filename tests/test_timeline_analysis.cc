#include <gtest/gtest.h>

#include "common/units.h"
#include "npu/memory_system.h"
#include "perf/timeline_analysis.h"

namespace opdvfs::perf {
namespace {

TEST(TimelineAnalysis, PureComputeOpHasOneSegment)
{
    npu::MemorySystem memory;
    npu::HwOpParams params;
    params.scenario = npu::Scenario::PingPongIndependent;
    params.n = 4;
    params.core_cycles = 50'000.0;
    params.ld_volume_bytes = 0.0;
    params.st_volume_bytes = 0.0;
    params.t0_seconds = 0.0;

    auto analysis = analyzeTimeline(params, memory, 1000.0, 1800.0);
    EXPECT_EQ(analysis.segments, 1u);
    EXPECT_TRUE(analysis.breakpoints_mhz.empty());
    // Pure compute: cycle count is constant, slope zero.
    EXPECT_NEAR(analysis.low_slope, 0.0, 1e-12);
}

TEST(TimelineAnalysis, MemoryOpHasBreakpointAtSaturation)
{
    npu::MemorySystem memory;
    npu::HwOpParams params;
    params.scenario = npu::Scenario::PingPongIndependent;
    params.n = 4;
    params.core_cycles = 10.0;
    params.ld_volume_bytes = 2e6;
    params.ld_l2_hit = 0.3;
    params.st_volume_bytes = 0.0;
    params.t0_seconds = 0.0;
    params.overhead_seconds = 0.0;

    double fs = memory.saturationMhz(0.3);
    ASSERT_GT(fs, 1000.0);
    ASSERT_LT(fs, 1800.0);

    auto analysis = analyzeTimeline(params, memory, 1000.0, 1800.0);
    ASSERT_GE(analysis.segments, 2u);
    bool found = false;
    for (double bp : analysis.breakpoints_mhz)
        found |= std::abs(bp - fs) < 1.0;
    EXPECT_TRUE(found);
}

TEST(TimelineAnalysis, SlopesNondecreasing)
{
    // Convexity: the derivative can only grow with frequency.
    npu::MemorySystem memory;
    npu::HwOpParams params;
    params.scenario = npu::Scenario::PingPongFreeIndependent;
    params.n = 8;
    params.core_cycles = 20'000.0;
    params.ld_volume_bytes = 1.5e6;
    params.ld_l2_hit = 0.2;
    params.st_volume_bytes = 8e5;
    params.st_l2_hit = 0.6;
    params.t0_seconds = 4e-7;

    auto analysis = analyzeTimeline(params, memory, 1000.0, 1800.0);
    EXPECT_GE(analysis.high_slope, analysis.low_slope);
}

TEST(TimelineAnalysis, BreakpointsWithinRangeAndSorted)
{
    npu::MemorySystem memory;
    npu::HwOpParams params;
    params.scenario = npu::Scenario::PingPongIndependent;
    params.n = 16;
    params.core_cycles = 1'500.0;
    params.ld_volume_bytes = 2e6;
    params.ld_l2_hit = 0.1;
    params.st_volume_bytes = 1e6;
    params.st_l2_hit = 0.7;
    params.t0_seconds = 3e-7;

    auto analysis = analyzeTimeline(params, memory, 800.0, 2200.0);
    for (std::size_t i = 0; i < analysis.breakpoints_mhz.size(); ++i) {
        EXPECT_GT(analysis.breakpoints_mhz[i], 800.0);
        EXPECT_LT(analysis.breakpoints_mhz[i], 2200.0);
        if (i > 0) {
            EXPECT_GE(analysis.breakpoints_mhz[i],
                      analysis.breakpoints_mhz[i - 1]);
        }
    }
    EXPECT_EQ(analysis.segments, analysis.breakpoints_mhz.size() + 1);
}

TEST(TimelineAnalysis, BadRangeThrows)
{
    npu::MemorySystem memory;
    npu::HwOpParams params;
    EXPECT_THROW(analyzeTimeline(params, memory, 1800.0, 1000.0),
                 std::invalid_argument);
    EXPECT_THROW(analyzeTimeline(params, memory, 0.0, 1000.0),
                 std::invalid_argument);
}

} // namespace
} // namespace opdvfs::perf
