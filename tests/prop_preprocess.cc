/**
 * @file
 * Property suite over preprocessing (paper Sect. 6.2, Fig. 13):
 * stages partition the profiled timeline and the operator stream,
 * merging leaves no stage under the FAI (single-stage output
 * excepted), the merged stage kind follows the dominant time, and the
 * whole pass is deterministic.
 */

#include <gtest/gtest.h>

#include "check/generators.h"
#include "check/oracles.h"
#include "check/prop.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/** One preprocessing case: a contiguous record stream and an FAI. */
struct PrepCase
{
    std::vector<trace::OpRecord> records;
    dvfs::PreprocessOptions options;
};

/** Re-pack a record subsequence into a contiguous timeline. */
std::vector<trace::OpRecord>
retime(std::vector<trace::OpRecord> records)
{
    Tick t = 0;
    for (trace::OpRecord &record : records) {
        Tick duration = record.end - record.start;
        record.start = t;
        record.end = t + duration;
        t = record.end;
    }
    return records;
}

TEST(PropPreprocess, StagesPartitionTimelineAndStream)
{
    Property<PrepCase> prop(
        "preprocess-invariants",
        [](Rng &rng) {
            PrepCase prep_case;
            prep_case.records = genRecordStream(rng, 1, 64);
            prep_case.options.fai =
                static_cast<Tick>(rng.uniformInt(1, 20)) * kTicksPerMs / 2;
            return prep_case;
        },
        [](const PrepCase &prep_case) {
            return checkPreprocessInvariants(prep_case.records,
                                             prep_case.options);
        });
    prop.withShrinker([](const PrepCase &prep_case) {
            // Shrink candidates are re-timed to stay contiguous, so
            // every candidate is still a valid profiled stream.
            std::vector<PrepCase> out;
            for (auto &records : shrinkVector(prep_case.records)) {
                PrepCase smaller;
                smaller.records = retime(std::move(records));
                smaller.options = prep_case.options;
                out.push_back(std::move(smaller));
            }
            return out;
        })
        .withPrinter([](const PrepCase &prep_case) {
            std::ostringstream os;
            os << "fai=" << prep_case.options.fai << "\n"
               << show(prep_case.records);
            return os.str();
        });
    OPDVFS_CHECK_PROP(prop);
}

/** The FAI floor holds for degenerate single-op streams too. */
TEST(PropPreprocess, SingleOpStreamYieldsOneStage)
{
    Property<PrepCase> prop(
        "preprocess-single-op",
        [](Rng &rng) {
            PrepCase prep_case;
            prep_case.records = genRecordStream(rng, 1, 1);
            prep_case.options.fai =
                static_cast<Tick>(rng.uniformInt(1, 40)) * kTicksPerMs;
            return prep_case;
        },
        [](const PrepCase &prep_case) -> std::optional<std::string> {
            if (auto failure = checkPreprocessInvariants(prep_case.records,
                                                         prep_case.options))
                return failure;
            auto result =
                dvfs::preprocess(prep_case.records, prep_case.options);
            if (result.stages.size() != 1) {
                return "single record produced "
                    + std::to_string(result.stages.size()) + " stages";
            }
            return std::nullopt;
        });
    prop.withPrinter([](const PrepCase &prep_case) {
        std::ostringstream os;
        os << "fai=" << prep_case.options.fai << "\n"
           << show(prep_case.records);
        return os.str();
    });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
