/**
 * @file
 * Property suite over strategy serialisation: save -> load -> save is
 * byte-stable for every valid strategy, and structurally broken
 * files — duplicate stage starts, out-of-order stages, overlapping
 * stage intervals — are rejected with std::invalid_argument instead
 * of being handed to the executor.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "check/generators.h"
#include "check/oracles.h"
#include "check/prop.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/** One round-trip case: a table and a valid strategy against it. */
struct IoCase
{
    npu::FreqTableConfig freq;
    dvfs::Strategy strategy;
};

TEST(PropStrategyIo, SaveLoadSaveIsByteStable)
{
    Property<IoCase> prop(
        "strategy-round-trip",
        [](Rng &rng) {
            IoCase io_case;
            io_case.freq = genFreqTableConfig(rng);
            io_case.strategy =
                genStrategy(rng, npu::FreqTable(io_case.freq));
            return io_case;
        },
        [](const IoCase &io_case) {
            npu::FreqTable table(io_case.freq);
            return checkStrategyRoundTrip(io_case.strategy, &table);
        });
    prop.withShrinker([](const IoCase &io_case) {
            std::vector<IoCase> out;
            for (dvfs::Strategy &s : shrinkStrategy(io_case.strategy))
                out.push_back({io_case.freq, std::move(s)});
            return out;
        })
        .withPrinter([](const IoCase &io_case) {
            return show(io_case.freq) + "\n" + show(io_case.strategy);
        });
    OPDVFS_CHECK_PROP(prop);
}

/** How to structurally break the stage list of a valid strategy. */
enum class Corruption
{
    DuplicateStage,
    OverlapStage,
    ReorderStages,
};

struct CorruptCase
{
    npu::FreqTableConfig freq;
    dvfs::Strategy strategy;
    Corruption corruption = Corruption::DuplicateStage;
};

TEST(PropStrategyIo, BrokenStageListsAreRejectedOnLoad)
{
    Property<CorruptCase> prop(
        "strategy-broken-stages-rejected",
        [](Rng &rng) {
            CorruptCase corrupt_case;
            corrupt_case.freq = genFreqTableConfig(rng);
            npu::FreqTable table(corrupt_case.freq);
            dvfs::Strategy strategy = genStrategy(rng, table);
            std::size_t at = rng.index(strategy.stages.size());
            switch (rng.uniformInt(0, 2)) {
            case 0: {
                // Duplicate one stage in place: same start twice.
                corrupt_case.corruption = Corruption::DuplicateStage;
                strategy.stages.insert(
                    strategy.stages.begin()
                        + static_cast<std::ptrdiff_t>(at),
                    strategy.stages[at]);
                strategy.mhz_per_stage.insert(
                    strategy.mhz_per_stage.begin()
                        + static_cast<std::ptrdiff_t>(at),
                    strategy.mhz_per_stage[at]);
                break;
            }
            case 1: {
                // Stretch a stage into its successor (append one when
                // the strategy has a single stage).
                corrupt_case.corruption = Corruption::OverlapStage;
                if (strategy.stages.size() == 1) {
                    dvfs::Stage extra = strategy.stages.back();
                    extra.start += extra.duration / 2 + 1;
                    strategy.stages.push_back(extra);
                    strategy.mhz_per_stage.push_back(
                        strategy.mhz_per_stage.back());
                } else {
                    std::size_t first =
                        std::min(at, strategy.stages.size() - 2);
                    strategy.stages[first].duration =
                        strategy.stages[first + 1].start
                        - strategy.stages[first].start
                        + static_cast<Tick>(rng.uniformInt(1, kTicksPerMs));
                }
                break;
            }
            default: {
                // Swap two stages out of time order.
                corrupt_case.corruption = Corruption::ReorderStages;
                if (strategy.stages.size() == 1) {
                    // Append a stage that starts before the first.
                    dvfs::Stage earlier = strategy.stages.front();
                    earlier.start = strategy.stages.front().start / 2;
                    if (earlier.start >= strategy.stages.front().start) {
                        strategy.stages.front().start =
                            earlier.start + earlier.duration + 1;
                    }
                    strategy.stages.push_back(earlier);
                    strategy.mhz_per_stage.push_back(
                        strategy.mhz_per_stage.back());
                } else {
                    std::size_t first =
                        std::min(at, strategy.stages.size() - 2);
                    std::swap(strategy.stages[first],
                              strategy.stages[first + 1]);
                    std::swap(strategy.mhz_per_stage[first],
                              strategy.mhz_per_stage[first + 1]);
                }
                break;
            }
            }
            corrupt_case.strategy = std::move(strategy);
            return corrupt_case;
        },
        [](const CorruptCase &corrupt_case) -> std::optional<std::string> {
            std::ostringstream os;
            dvfs::saveStrategy(corrupt_case.strategy, os);
            try {
                std::istringstream is(os.str());
                dvfs::loadStrategy(is);
            } catch (const std::invalid_argument &) {
                return std::nullopt; // rejected, as required
            }
            return "corrupted stage list was accepted on load";
        });
    prop.withPrinter([](const CorruptCase &corrupt_case) {
        return show(corrupt_case.freq) + "\n" + show(corrupt_case.strategy);
    });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
