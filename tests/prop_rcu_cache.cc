/**
 * @file
 * Property suite over the RCU exact-hit read path (cache_read.h /
 * encoded_cache.h).
 *
 * Three layers of evidence:
 *
 *  1. A sequential model check: random insert / invalidateBelow /
 *     erase / lookup sequences against a plain map-plus-FIFO
 *     reference — the
 *     cache's observable behaviour (hit/miss, returned bytes, size,
 *     capacity bound) must agree op for op, and a lookup at the
 *     post-invalidate epoch must never return a demoted entry.
 *
 *  2. A re-encode identity oracle: a stored frame for a random
 *     exact-hit response, peeled and decoded, re-encodes to the very
 *     bytes the cache returned — the frame-reuse path is CRC-exact
 *     and cannot drift from a fresh encodeResponse.
 *
 *  3. A seeded reader-vs-writer-vs-invalidate thread stress (scaled
 *     by OPDVFS_PROP_CASES): every frame's contents restate its own
 *     digest and epoch, so a torn read, a wrong-key hit, or a
 *     stale-epoch entry served as exact is detected by the reader
 *     that received it; afterwards, retired snapshots reclaim to
 *     zero once readers quiesce.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/generators.h"
#include "check/prop.h"
#include "net/wire.h"
#include "serve/encoded_cache.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

// --- 1. sequential model check ----------------------------------------

enum class OpKind
{
    Insert,
    InvalidateBelow,
    Erase,
    Lookup,
};

struct Op
{
    OpKind kind = OpKind::Lookup;
    std::uint64_t digest = 0;
    std::uint64_t epoch = 0;
    std::string frame;
};

struct ModelCase
{
    std::size_t capacity = 4;
    std::vector<Op> ops;
};

std::string
frameFor(std::uint64_t digest, std::uint64_t epoch)
{
    std::ostringstream out;
    out << "frame digest=" << digest << " epoch=" << epoch;
    return out.str();
}

ModelCase
genModelCase(Rng &rng)
{
    ModelCase model_case;
    model_case.capacity = static_cast<std::size_t>(rng.uniformInt(1, 8));
    // A small digest universe so inserts collide, evict, and get
    // looked up again; epochs advance slowly so exact-epoch hits and
    // stale-epoch misses both occur.
    int steps = static_cast<int>(rng.uniformInt(10, 60));
    std::uint64_t epoch = 0;
    for (int i = 0; i < steps; ++i) {
        Op op;
        op.digest = static_cast<std::uint64_t>(rng.uniformInt(1, 12));
        double roll = rng.uniform(0.0, 1.0);
        if (roll < 0.45) {
            op.kind = OpKind::Insert;
            op.epoch = epoch;
            op.frame = frameFor(op.digest, op.epoch);
        } else if (roll < 0.55) {
            op.kind = OpKind::InvalidateBelow;
            if (rng.chance(0.6))
                ++epoch;
            op.epoch = epoch;
        } else if (roll < 0.65) {
            // The refine-upgrade path: drop one digest, present or not.
            op.kind = OpKind::Erase;
        } else {
            op.kind = OpKind::Lookup;
            // Mostly the live epoch, sometimes a demoted one.
            op.epoch = rng.chance(0.8) || epoch == 0
                           ? epoch
                           : epoch
                                 - static_cast<std::uint64_t>(
                                     rng.uniformInt(1, 2) > 1 ? 2 : 1)
                                       % (epoch + 1);
            if (op.epoch > epoch)
                op.epoch = epoch;
        }
        model_case.ops.push_back(std::move(op));
    }
    return model_case;
}

/** Plain single-threaded reference with the same FIFO semantics. */
struct Reference
{
    std::size_t capacity;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::string>>
        entries;
    std::deque<std::uint64_t> order;

    void
    insert(std::uint64_t digest, std::uint64_t epoch, std::string frame)
    {
        auto it = entries.find(digest);
        if (it != entries.end()) {
            it->second = {epoch, std::move(frame)};
            return;
        }
        entries[digest] = {epoch, std::move(frame)};
        order.push_back(digest);
        while (entries.size() > capacity) {
            std::uint64_t victim = order.front();
            order.pop_front();
            if (victim == digest) {
                order.push_back(victim);
                continue;
            }
            entries.erase(victim);
        }
    }

    void
    invalidateBelow(std::uint64_t floor)
    {
        for (auto it = entries.begin(); it != entries.end();)
            it = it->second.first < floor ? entries.erase(it) : ++it;
        std::deque<std::uint64_t> kept;
        for (std::uint64_t digest : order)
            if (entries.count(digest))
                kept.push_back(digest);
        order = std::move(kept);
    }

    void
    erase(std::uint64_t digest)
    {
        if (entries.erase(digest) == 0)
            return;
        std::deque<std::uint64_t> kept;
        for (std::uint64_t other : order)
            if (other != digest)
                kept.push_back(other);
        order = std::move(kept);
    }

    const std::string *
    lookup(std::uint64_t digest, std::uint64_t epoch) const
    {
        auto it = entries.find(digest);
        if (it == entries.end() || it->second.first != epoch)
            return nullptr;
        return &it->second.second;
    }
};

std::optional<std::string>
checkModelAgreement(const ModelCase &model_case)
{
    serve::EncodedResponseCache cache(
        serve::EncodedCacheOptions{model_case.capacity});
    std::size_t reader = cache.registerReader();
    Reference reference{model_case.capacity, {}, {}};
    std::uint64_t floor_epoch = 0;
    for (std::size_t i = 0; i < model_case.ops.size(); ++i) {
        const Op &op = model_case.ops[i];
        switch (op.kind) {
        case OpKind::Insert:
            cache.insert(op.digest, op.epoch, op.frame);
            reference.insert(op.digest, op.epoch, op.frame);
            break;
        case OpKind::InvalidateBelow:
            cache.invalidateBelow(op.epoch);
            reference.invalidateBelow(op.epoch);
            floor_epoch = op.epoch;
            break;
        case OpKind::Erase:
            cache.erase(op.digest);
            reference.erase(op.digest);
            break;
        case OpKind::Lookup: {
            auto got = cache.find(reader, op.digest, op.epoch);
            const std::string *want =
                reference.lookup(op.digest, op.epoch);
            if ((got != nullptr) != (want != nullptr)) {
                std::ostringstream out;
                out << "op " << i << ": lookup(digest=" << op.digest
                    << ", epoch=" << op.epoch << ") "
                    << (got ? "hit" : "miss") << " but reference "
                    << (want ? "hit" : "miss");
                return out.str();
            }
            if (got && *got != *want)
                return "op " + std::to_string(i)
                       + ": returned bytes differ from reference";
            // A demoted entry must never surface as exact at an
            // epoch below the last invalidation floor.
            if (got && op.epoch < floor_epoch)
                return "op " + std::to_string(i)
                       + ": served an entry demoted by "
                         "invalidateBelow("
                       + std::to_string(floor_epoch) + ")";
            break;
        }
        }
        if (cache.size() != reference.entries.size())
            return "op " + std::to_string(i) + ": size "
                   + std::to_string(cache.size()) + " != reference "
                   + std::to_string(reference.entries.size());
        if (cache.size() > model_case.capacity)
            return "op " + std::to_string(i) + ": capacity exceeded";
    }
    return std::nullopt;
}

std::string
showModelCase(const ModelCase &model_case)
{
    std::ostringstream out;
    out << "capacity=" << model_case.capacity << "\n";
    for (const Op &op : model_case.ops) {
        switch (op.kind) {
        case OpKind::Insert:
            out << "insert digest=" << op.digest
                << " epoch=" << op.epoch << "\n";
            break;
        case OpKind::InvalidateBelow:
            out << "invalidate_below " << op.epoch << "\n";
            break;
        case OpKind::Erase:
            out << "erase digest=" << op.digest << "\n";
            break;
        case OpKind::Lookup:
            out << "lookup digest=" << op.digest
                << " epoch=" << op.epoch << "\n";
            break;
        }
    }
    return out.str();
}

std::vector<ModelCase>
shrinkModelCase(const ModelCase &model_case)
{
    std::vector<ModelCase> out;
    // Drop each op; a failure that survives op removal is smaller.
    for (std::size_t i = 0; i < model_case.ops.size(); ++i) {
        ModelCase smaller = model_case;
        smaller.ops.erase(smaller.ops.begin()
                          + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(smaller));
    }
    return out;
}

TEST(PropRcuCache, CacheAgreesWithSequentialReference)
{
    Property<ModelCase> prop("rcu-cache-model-agreement", genModelCase,
                             checkModelAgreement);
    prop.withShrinker(shrinkModelCase).withPrinter(showModelCase);
    OPDVFS_CHECK_PROP(prop);
}

// --- 2. re-encode identity oracle --------------------------------------

struct FrameCase
{
    npu::FreqTableConfig freq;
    net::WireResponse response;
};

FrameCase
genFrameCase(Rng &rng)
{
    FrameCase frame_case;
    frame_case.freq = genFreqTableConfig(rng);
    net::WireResponse &wire = frame_case.response;
    wire.status = net::Status::Ok;
    wire.strategy = genStrategy(rng, npu::FreqTable(frame_case.freq));
    wire.best_score = rng.uniform(0.1, 50.0);
    wire.provenance = serve::Provenance::ExactHit;
    wire.similarity = 0.0;
    wire.generations_run = 0;
    wire.generations_saved =
        static_cast<std::uint32_t>(rng.uniformInt(0, 64));
    wire.service_seconds = 0.0;
    wire.fingerprint_digest =
        static_cast<std::uint64_t>(rng.uniformInt(1, 1 << 30));
    wire.model_epoch = static_cast<std::uint64_t>(rng.uniformInt(0, 5));
    return frame_case;
}

std::optional<std::string>
checkFrameReuseIdentity(const FrameCase &frame_case)
{
    const net::WireResponse &wire = frame_case.response;
    std::string fresh = net::frameResponse(wire);

    serve::EncodedResponseCache cache;
    std::size_t reader = cache.registerReader();
    cache.insert(wire.fingerprint_digest, wire.model_epoch, fresh);
    auto stored =
        cache.find(reader, wire.fingerprint_digest, wire.model_epoch);
    if (!stored)
        return "inserted frame not found at its own epoch";
    if (*stored != fresh)
        return "cache returned different bytes than were inserted";

    // Peel + decode the stored frame and re-encode: byte-identical,
    // so reusing the cached bytes can never drift from a fresh
    // encodeResponse of the same response (CRC included).
    std::size_t consumed = 0;
    auto view = net::peelFrame(*stored, &consumed);
    if (!view || consumed != stored->size())
        return "stored frame does not peel as exactly one frame";
    net::WireResponse decoded = net::decodeResponse(view->payload);
    if (net::frameResponse(decoded) != *stored)
        return "decode -> re-encode of the stored frame is not "
               "byte-identical";
    return std::nullopt;
}

TEST(PropRcuCache, StoredFrameEqualsFreshEncode)
{
    Property<FrameCase> prop("rcu-cache-frame-identity", genFrameCase,
                             checkFrameReuseIdentity);
    prop.withPrinter([](const FrameCase &frame_case) {
        return show(frame_case.freq) + "\n"
               + show(frame_case.response.strategy);
    });
    OPDVFS_CHECK_PROP(prop);
}

// --- 3. concurrent reader / writer / invalidate stress ------------------

TEST(PropRcuCache, ConcurrentReadersNeverSeeTornOrDemotedEntries)
{
    PropConfig config = PropConfig::fromEnv();
    // Scale thread-loop iterations with the case budget so the tsan
    // job (which raises OPDVFS_PROP_CASES) stresses harder.
    const int writer_ops = std::max(200, config.cases / 2);
    const std::uint64_t digests = 32;

    serve::EncodedResponseCache cache(serve::EncodedCacheOptions{16});
    std::atomic<std::uint64_t> floor_epoch{0};
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> hits{0};
    std::vector<std::string> failures(4);

    // Readers pick a digest, read the current floor, and demand that
    // any hit restates exactly that digest and epoch — a torn map, a
    // wrong-key entry, or a demoted-epoch entry all fail the check.
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t)
        readers.emplace_back([&, t] {
            Rng rng(caseSeed(config.seed, 1000 + t));
            std::size_t slot = cache.registerReader();
            while (!done.load(std::memory_order_acquire)) {
                std::uint64_t digest = static_cast<std::uint64_t>(
                    rng.uniformInt(1,
                                   static_cast<std::int64_t>(digests)));
                std::uint64_t epoch =
                    floor_epoch.load(std::memory_order_acquire);
                auto frame = cache.find(slot, digest, epoch);
                if (!frame)
                    continue;
                hits.fetch_add(1, std::memory_order_relaxed);
                if (*frame != frameFor(digest, epoch)) {
                    failures[static_cast<std::size_t>(t)] =
                        "reader saw '" + *frame + "' for digest "
                        + std::to_string(digest) + " epoch "
                        + std::to_string(epoch);
                    return;
                }
            }
        });

    // One writer inserting at the current floor, one invalidator
    // advancing the floor and dropping demoted entries.
    std::thread writer([&] {
        Rng rng(caseSeed(config.seed, 2000));
        for (int i = 0; i < writer_ops; ++i) {
            std::uint64_t digest = static_cast<std::uint64_t>(
                rng.uniformInt(1, static_cast<std::int64_t>(digests)));
            std::uint64_t epoch =
                floor_epoch.load(std::memory_order_acquire);
            cache.insert(digest, epoch, frameFor(digest, epoch));
        }
    });
    std::thread invalidator([&] {
        Rng rng(caseSeed(config.seed, 3000));
        for (int i = 0; i < writer_ops / 20; ++i) {
            std::uint64_t next =
                floor_epoch.fetch_add(1, std::memory_order_acq_rel)
                + 1;
            cache.invalidateBelow(next);
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng.uniformInt(50, 500)));
        }
    });

    writer.join();
    invalidator.join();

    // Tail phase with a stable floor: on a loaded (or single-core)
    // box the racing phase can be all misses, so guarantee the hit
    // path is exercised before stopping the readers.
    std::uint64_t final_epoch =
        floor_epoch.load(std::memory_order_acquire);
    for (std::uint64_t digest = 1; digest <= digests; ++digest)
        cache.insert(digest, final_epoch, frameFor(digest, final_epoch));
    for (int spin = 0; spin < 1000 && hits.load() == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    done.store(true, std::memory_order_release);
    for (std::thread &reader : readers)
        reader.join();
    for (const std::string &failure : failures)
        EXPECT_TRUE(failure.empty()) << failure;
    // The stress must actually exercise the hit path.
    EXPECT_GT(hits.load(), 0u);

    // With every reader quiescent, reclamation drains: no retired
    // snapshot is pinned forever.
    cache.reclaim();
    EXPECT_EQ(cache.retiredSnapshots(), 0u);
    EXPECT_GT(cache.publishes(), 0u);
}

} // namespace
