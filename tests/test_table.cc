#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "common/table.h"

namespace opdvfs {
namespace {

TEST(Table, AlignsColumns)
{
    Table table("demo");
    table.setHeader({"a", "long-header", "c"});
    table.addRow({"1", "2", "3"});
    table.addRow({"wide-cell", "x", "y"});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();

    EXPECT_NE(text.find("== demo =="), std::string::npos);
    EXPECT_NE(text.find("long-header"), std::string::npos);
    // Every line after the separator starts a row; the header line and
    // first row line align on column starts.
    std::istringstream lines(text);
    std::string title, header, sep, row1;
    std::getline(lines, title);
    std::getline(lines, header);
    std::getline(lines, sep);
    std::getline(lines, row1);
    EXPECT_EQ(header.find("long-header"), row1.find("2"));
    EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(Table, HandlesRaggedRows)
{
    Table table;
    table.setHeader({"a", "b"});
    table.addRow({"only-one"});
    table.addRow({"1", "2", "extra"});
    std::ostringstream os;
    EXPECT_NO_THROW(table.print(os));
    EXPECT_NE(os.str().find("extra"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table table("unused-title");
    table.setHeader({"x", "y"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
    EXPECT_EQ(Table::pct(0.1344), "13.44%");
    EXPECT_EQ(Table::pct(0.5, 0), "50%");
}

TEST(Table, RowCount)
{
    Table table;
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"x"});
    EXPECT_EQ(table.rowCount(), 1u);
}

TEST(Logging, ThresholdFilters)
{
    log::Level previous = log::level();
    log::setLevel(log::Level::Error);
    EXPECT_EQ(log::level(), log::Level::Error);
    // These must not crash and must be suppressed below the threshold.
    log::debug("dropped ", 1);
    log::info("dropped ", 2.5);
    log::warn("dropped ", "three");
    log::setLevel(previous);
}

} // namespace
} // namespace opdvfs
