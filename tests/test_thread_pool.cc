/**
 * Thread-pool unit tests: task submission, the caller-participating
 * parallelFor (completion without free pool threads, exactly-once
 * index execution, exception propagation), and nested use from a pool
 * task — the pattern GA fitness evaluation relies on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <vector>

#include "serve/thread_pool.h"

namespace opdvfs::serve {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(2);
    std::promise<int> result;
    pool.submit([&result] { result.set_value(42); });
    EXPECT_EQ(result.get_future().get(), 42);
}

TEST(ThreadPool, ZeroWorkersRunInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    bool ran = false;
    pool.submit([&ran] { ran = true; });
    EXPECT_TRUE(ran); // inline: completed before submit returned
    std::vector<int> hits(8, 0);
    pool.parallelFor(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForCompletesWhenAllWorkersAreBusy)
{
    // Saturate the single worker with a task that itself runs a
    // parallelFor: the caller thread must drain the loop alone.
    ThreadPool pool(1);
    std::promise<long> done;
    pool.submit([&pool, &done] {
        std::vector<long> values(64, 0);
        pool.parallelFor(values.size(), [&values](std::size_t i) {
            values[i] = static_cast<long>(i);
        });
        done.set_value(
            std::accumulate(values.begin(), values.end(), 0L));
    });
    EXPECT_EQ(done.get_future().get(), 64L * 63L / 2L);
}

TEST(ThreadPool, NestedParallelForFromPoolTasks)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    std::vector<std::future<void>> finished;
    for (int t = 0; t < 6; ++t) {
        auto done = std::make_shared<std::promise<void>>();
        finished.push_back(done->get_future());
        pool.submit([&pool, &total, done] {
            pool.parallelFor(50, [&total](std::size_t) {
                total.fetch_add(1, std::memory_order_relaxed);
            });
            done->set_value();
        });
    }
    for (auto &f : finished)
        f.get();
    EXPECT_EQ(total.load(), 6 * 50);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstException)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [](std::size_t i) {
                             if (i == 17)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, ParallelForZeroCountIsANoop)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int t = 0; t < 16; ++t)
            pool.submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 16);
}

} // namespace
} // namespace opdvfs::serve
