#include <gtest/gtest.h>

#include "models/transformer.h"
#include "power/offline_calibration.h"
#include "power/online_calibration.h"
#include "trace/workload_runner.h"

namespace opdvfs::power {
namespace {

/** Offline calibration is slow-ish; run it once for the suite. */
class CalibrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        config_ = new npu::NpuConfig();
        constants_ = new CalibratedConstants(calibrateOffline(*config_));
    }

    static void
    TearDownTestSuite()
    {
        delete constants_;
        delete config_;
    }

    static npu::NpuConfig *config_;
    static CalibratedConstants *constants_;
};

npu::NpuConfig *CalibrationTest::config_ = nullptr;
CalibratedConstants *CalibrationTest::constants_ = nullptr;

TEST_F(CalibrationTest, RecoversGammaAicore)
{
    // Ground truth gamma_aicore is 0.2 W/(K V).
    EXPECT_NEAR(constants_->gamma_aicore,
                config_->aicore_power.gamma, 0.35 * config_->aicore_power.gamma);
}

TEST_F(CalibrationTest, RecoversGammaSoc)
{
    // SoC slope combines core and uncore leakage:
    // gamma_core + gamma_uncore / V at the calibration voltage.
    double volts = npu::FreqTable(config_->freq).voltageFor(1800.0);
    double truth =
        config_->aicore_power.gamma + config_->uncore_power.gamma / volts;
    EXPECT_NEAR(constants_->gamma_soc, truth, 0.25 * truth);
}

TEST_F(CalibrationTest, RecoversThermalSlopeAndAmbient)
{
    // k is measured through the leakage feedback loop, so the apparent
    // slope is slightly above the raw RC constant.
    EXPECT_GT(constants_->k_per_watt, 0.8 * config_->thermal.k_per_watt);
    EXPECT_LT(constants_->k_per_watt, 1.6 * config_->thermal.k_per_watt);
    EXPECT_NEAR(constants_->ambient_c, config_->thermal.ambient_celsius,
                6.0);
}

TEST_F(CalibrationTest, IdleModelInterpolatesSanely)
{
    npu::FreqTable table(config_->freq);
    PowerModel model(*constants_, table);
    double previous_core = 0.0;
    for (double f : table.frequenciesMhz()) {
        double core = model.aicoreIdle(f);
        EXPECT_GT(core, 0.0);
        EXPECT_GT(core, previous_core);
        previous_core = core;
        EXPECT_GT(model.socIdle(f), core);
        EXPECT_LT(model.socIdle(f), 250.0);
    }
}

TEST_F(CalibrationTest, OnlineCalibratorAlignsSamples)
{
    npu::MemorySystem memory(config_->memory);
    models::TransformerConfig model;
    model.layers = 2;
    model.hidden = 1536;
    model.heads = 12;
    model.seq = 512;
    model.batch = 4;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 3);

    trace::WorkloadRunner runner(*config_);
    trace::RunOptions options;
    options.sample_period = kTicksPerMs / 5;
    options.warmup_seconds = 5.0;
    trace::RunResult run = runner.run(workload, options);

    npu::FreqTable table(config_->freq);
    PowerModel power_model(*constants_, table);
    OnlinePowerCalibrator online(power_model);
    online.addRun(run);
    EXPECT_GT(online.alignedSampleCount(), 10u);

    auto models = online.perOpModels();
    EXPECT_EQ(models.size(), workload.opCount());

    // The pooled MatMul alpha must exceed the pooled Idle-ish alpha.
    OpPowerModel matmul = online.typeModel("MatMul");
    OpPowerModel workload_level = online.workloadModel();
    EXPECT_GT(matmul.alpha_aicore, 0.0);
    EXPECT_GT(workload_level.alpha_soc, 0.0);
    EXPECT_THROW(online.typeModel("NoSuchType"), std::invalid_argument);
}

TEST_F(CalibrationTest, WorkloadAggregateCalibrationPredictsMidFrequency)
{
    npu::MemorySystem memory(config_->memory);
    models::TransformerConfig model;
    model.layers = 2;
    model.hidden = 1536;
    model.heads = 12;
    model.seq = 512;
    model.batch = 4;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 3);

    trace::WorkloadRunner runner(*config_);
    std::map<double, trace::RunResult> runs;
    for (double f : {1000.0, 1400.0, 1800.0}) {
        trace::RunOptions options;
        options.initial_mhz = f;
        options.warmup_seconds = 25.0;
        options.seed = 5 + static_cast<std::uint64_t>(f);
        runs[f] = runner.run(workload, options);
    }

    npu::FreqTable table(config_->freq);
    PowerModel power_model(*constants_, table);
    OpPowerModel op = OnlinePowerCalibrator::calibrateWorkloadAggregate(
        power_model, {{1000.0, &runs[1000.0]}, {1800.0, &runs[1800.0]}});

    // Predict the held-out middle frequency (the Table 2 protocol).
    PowerPrediction prediction = power_model.predict(op, 1400.0);
    double measured = runs[1400.0].soc_avg_w;
    EXPECT_NEAR(prediction.soc_watts, measured, 0.15 * measured);
}

} // namespace
} // namespace opdvfs::power
