#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "dvfs/pipeline.h"
#include "dvfs/strategy_io.h"
#include "models/transformer.h"
#include "power/offline_calibration.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {
namespace {

Strategy
sampleStrategy()
{
    Strategy strategy;
    for (int s = 0; s < 4; ++s) {
        Stage stage;
        stage.start = s * 10 * kTicksPerMs;
        stage.duration = 10 * kTicksPerMs;
        stage.high_frequency = s % 2 == 0;
        strategy.stages.push_back(stage);
        strategy.mhz_per_stage.push_back(s % 2 == 0 ? 1800.0 : 1300.0);
    }
    strategy.plan.initial_mhz = 1800.0;
    strategy.plan.triggers.push_back({8, 1300.0});
    strategy.plan.triggers.push_back({18, 1800.0});
    strategy.plan.triggers.push_back({28, 1300.0});
    return strategy;
}

TEST(StrategyIo, RoundTripPreservesEverything)
{
    Strategy original = sampleStrategy();
    std::stringstream buffer;
    saveStrategy(original, buffer);
    Strategy loaded = loadStrategy(buffer);

    ASSERT_EQ(loaded.stages.size(), original.stages.size());
    ASSERT_EQ(loaded.mhz_per_stage.size(), original.mhz_per_stage.size());
    ASSERT_EQ(loaded.plan.triggers.size(), original.plan.triggers.size());
    EXPECT_DOUBLE_EQ(loaded.plan.initial_mhz, original.plan.initial_mhz);
    for (std::size_t s = 0; s < original.stages.size(); ++s) {
        EXPECT_EQ(loaded.stages[s].start, original.stages[s].start);
        EXPECT_EQ(loaded.stages[s].duration, original.stages[s].duration);
        EXPECT_EQ(loaded.stages[s].high_frequency,
                  original.stages[s].high_frequency);
        EXPECT_DOUBLE_EQ(loaded.mhz_per_stage[s],
                         original.mhz_per_stage[s]);
    }
    for (std::size_t t = 0; t < original.plan.triggers.size(); ++t) {
        EXPECT_EQ(loaded.plan.triggers[t].after_op_index,
                  original.plan.triggers[t].after_op_index);
        EXPECT_DOUBLE_EQ(loaded.plan.triggers[t].mhz,
                         original.plan.triggers[t].mhz);
    }
    EXPECT_EQ(loaded.triggerCount(), 3u);
}

TEST(StrategyIo, MetaRoundTripPreservesScoreAndProvenance)
{
    Strategy original = sampleStrategy();
    StrategyMeta meta;
    meta.score = 3.25e-16;
    meta.pre_refine_score = 3.1e-16;
    meta.converged_at = 37;
    meta.generations = 60;
    meta.provenance = "warm-start";
    meta.fingerprint = 0xdeadbeefcafe1234ULL;
    original.meta = meta;

    std::stringstream buffer;
    saveStrategy(original, buffer);
    Strategy loaded = loadStrategy(buffer);

    ASSERT_TRUE(loaded.meta.has_value());
    EXPECT_DOUBLE_EQ(loaded.meta->score, meta.score);
    EXPECT_DOUBLE_EQ(loaded.meta->pre_refine_score,
                     meta.pre_refine_score);
    EXPECT_EQ(loaded.meta->converged_at, meta.converged_at);
    EXPECT_EQ(loaded.meta->generations, meta.generations);
    EXPECT_EQ(loaded.meta->provenance, meta.provenance);
    EXPECT_EQ(loaded.meta->fingerprint, meta.fingerprint);
}

TEST(StrategyIo, PredictFirstProvenanceTokensRoundTrip)
{
    // The two tokens the predict-then-refine path mints: the strategy
    // file format carries them verbatim, like any other provenance.
    for (const char *token : {"predicted", "refined"}) {
        Strategy original = sampleStrategy();
        StrategyMeta meta;
        meta.score = 2.5e-16;
        meta.pre_refine_score = 2.5e-16;
        meta.converged_at = 0;
        meta.generations = 0;
        meta.provenance = token;
        meta.fingerprint = 0x0123456789abcdefULL;
        original.meta = meta;

        std::stringstream buffer;
        saveStrategy(original, buffer);
        Strategy loaded = loadStrategy(buffer);
        ASSERT_TRUE(loaded.meta.has_value()) << token;
        EXPECT_EQ(loaded.meta->provenance, token);
        EXPECT_EQ(loaded.meta->generations, 0);
        EXPECT_EQ(loaded.meta->fingerprint, meta.fingerprint);
    }
}

TEST(StrategyIo, MetaIsOptionalAndAbsentStaysAbsent)
{
    Strategy original = sampleStrategy();
    ASSERT_FALSE(original.meta.has_value());
    std::stringstream buffer;
    saveStrategy(original, buffer);
    EXPECT_EQ(buffer.str().find("meta"), std::string::npos);
    Strategy loaded = loadStrategy(buffer);
    EXPECT_FALSE(loaded.meta.has_value());
}

TEST(StrategyIo, MalformedMetaRecordsThrow)
{
    for (const char *bad :
         {"strategy v1\nmeta score nan 1 2 3\n",
          "strategy v1\nmeta score 1e-16 1e-16 -2 60\n",
          "strategy v1\nmeta score 1e-16\n",
          "strategy v1\nmeta provenance\n",
          "strategy v1\nmeta provenance cold zz-not-hex\n",
          "strategy v1\nmeta bogus 1\n"}) {
        std::stringstream buffer(bad);
        EXPECT_THROW(loadStrategy(buffer), std::invalid_argument) << bad;
    }
    // Provenance tokens with whitespace can't survive the line format.
    Strategy strategy = sampleStrategy();
    StrategyMeta meta;
    meta.provenance = "two words";
    strategy.meta = meta;
    std::stringstream buffer;
    EXPECT_THROW(saveStrategy(strategy, buffer), std::invalid_argument);
}

TEST(StrategyIo, CommentsAndBlankLinesIgnored)
{
    std::stringstream buffer;
    buffer << "strategy v1\n\n# a comment\ninitial 1500\n"
           << "stage 0 1000000 1500 lfc\n";
    Strategy loaded = loadStrategy(buffer);
    EXPECT_DOUBLE_EQ(loaded.plan.initial_mhz, 1500.0);
    ASSERT_EQ(loaded.stages.size(), 1u);
    EXPECT_FALSE(loaded.stages[0].high_frequency);
}

TEST(StrategyIo, MissingHeaderThrows)
{
    std::stringstream buffer;
    buffer << "stage 0 1 1800 hfc\n";
    EXPECT_THROW(loadStrategy(buffer), std::invalid_argument);
}

TEST(StrategyIo, MalformedRecordsThrow)
{
    for (const char *bad :
         {"strategy v1\nstage 0 1 1800 weird\n",
          "strategy v1\nstage 0 1\n", "strategy v1\nbogus 1 2 3\n",
          "strategy v1\ntrigger nope 1800\n",
          "strategy v1\ninitial\n"}) {
        std::stringstream buffer(bad);
        EXPECT_THROW(loadStrategy(buffer), std::invalid_argument) << bad;
    }
}

TEST(StrategyIo, RejectsGarbageFrequenciesAndTimings)
{
    for (const char *bad :
         {"strategy v1\ninitial nan\n", "strategy v1\ninitial -1500\n",
          "strategy v1\ninitial 0\n", "strategy v1\ninitial inf\n",
          "strategy v1\nstage 0 1000 -1300 hfc\n",
          "strategy v1\nstage 0 1000 nan lfc\n",
          "strategy v1\nstage -5 1000 1300 lfc\n",
          "strategy v1\nstage 0 0 1300 lfc\n",
          "strategy v1\nstage 0 -1000 1300 lfc\n",
          "strategy v1\ntrigger 4 nan\n",
          "strategy v1\ntrigger 4 -1800\n"}) {
        std::stringstream buffer(bad);
        EXPECT_THROW(loadStrategy(buffer), std::invalid_argument) << bad;
    }
}

TEST(StrategyIo, CountsMismatchMeansTruncatedFile)
{
    // A counts record declaring more stages/triggers than the file
    // holds is the signature of a truncated download.
    std::stringstream truncated;
    truncated << "strategy v1\ncounts 2 1\ninitial 1800\n"
              << "stage 0 1000000 1800 hfc\n";
    EXPECT_THROW(loadStrategy(truncated), std::invalid_argument);

    std::stringstream extra;
    extra << "strategy v1\ncounts 0 0\ninitial 1800\n"
          << "trigger 3 1300\n";
    EXPECT_THROW(loadStrategy(extra), std::invalid_argument);

    // saveStrategy always emits the counts record, so a clean
    // round-trip self-checks.
    Strategy original = sampleStrategy();
    std::stringstream buffer;
    saveStrategy(original, buffer);
    EXPECT_NE(buffer.str().find("counts 4 3"), std::string::npos);
    EXPECT_NO_THROW(loadStrategy(buffer));
}

TEST(StrategyIo, RejectsDuplicateOverlappingAndUnorderedStages)
{
    // Shrunk counterexample from the strategy-broken-stages-rejected
    // property: the loader used to hand stage lists with duplicate
    // starts, overlapping intervals, or reversed time order straight
    // to the executor.  Each minimal file below must be refused.

    // Two stages with the same start tick.
    std::stringstream duplicate;
    duplicate << "strategy v1\ninitial 1800\n"
              << "stage 0 1000000 1800 hfc\n"
              << "stage 0 1000000 1300 lfc\n";
    EXPECT_THROW(loadStrategy(duplicate), std::invalid_argument);

    // First stage's interval [0, 2000000) overruns the second's start.
    std::stringstream overlap;
    overlap << "strategy v1\ninitial 1800\n"
            << "stage 0 2000000 1800 hfc\n"
            << "stage 1000000 1000000 1300 lfc\n";
    EXPECT_THROW(loadStrategy(overlap), std::invalid_argument);

    // Stages out of time order.
    std::stringstream unordered;
    unordered << "strategy v1\ninitial 1800\n"
              << "stage 1000000 1000000 1300 lfc\n"
              << "stage 0 1000000 1800 hfc\n";
    EXPECT_THROW(loadStrategy(unordered), std::invalid_argument);

    // Back-to-back stages (each starting exactly where the previous
    // ends) are the shape the preprocessor emits and must keep
    // loading; so must a gap between stages.
    std::stringstream contiguous;
    contiguous << "strategy v1\ninitial 1800\n"
               << "stage 0 1000000 1800 hfc\n"
               << "stage 1000000 1000000 1300 lfc\n"
               << "stage 3000000 1000000 1800 hfc\n";
    Strategy loaded = loadStrategy(contiguous);
    EXPECT_EQ(loaded.stages.size(), 3u);
}

TEST(StrategyIo, DeviceTablePinsFrequencies)
{
    npu::FreqTable table(npu::FreqTableConfig{});

    // Positive, finite, but not an operating point of this device.
    std::stringstream off_table;
    off_table << "strategy v1\ninitial 1800\ntrigger 2 1750\n";
    EXPECT_THROW(loadStrategy(off_table, &table), std::invalid_argument);

    // The same stream parses fine without a device to check against.
    off_table.clear();
    off_table.seekg(0);
    EXPECT_NO_THROW(loadStrategy(off_table));

    Strategy strategy = sampleStrategy();
    EXPECT_NO_THROW(validateStrategy(strategy, table));
    strategy.mhz_per_stage[1] = 1337.0;
    EXPECT_THROW(validateStrategy(strategy, table), std::invalid_argument);
    strategy.mhz_per_stage[1] = 1300.0;
    strategy.plan.initial_mhz = 2500.0;
    EXPECT_THROW(validateStrategy(strategy, table), std::invalid_argument);
    strategy.plan.initial_mhz = 1800.0;
    strategy.mhz_per_stage.pop_back();
    EXPECT_THROW(validateStrategy(strategy, table), std::invalid_argument);
}

TEST(StrategyIo, SaveValidatesShape)
{
    Strategy broken = sampleStrategy();
    broken.mhz_per_stage.pop_back();
    std::stringstream buffer;
    EXPECT_THROW(saveStrategy(broken, buffer), std::invalid_argument);
}

TEST(StrategyIo, FileRoundTrip)
{
    Strategy original = sampleStrategy();
    std::string path = ::testing::TempDir() + "/opdvfs_strategy.txt";
    saveStrategyFile(original, path);
    Strategy loaded = loadStrategyFile(path);
    EXPECT_EQ(loaded.stages.size(), original.stages.size());
    EXPECT_EQ(loaded.plan.triggers.size(), original.plan.triggers.size());
}

TEST(StrategyIo, MissingFileThrows)
{
    EXPECT_THROW(loadStrategyFile("/nonexistent/path/strategy.txt"),
                 std::runtime_error);
}

// --- crash-safe persistence (CRC-32 footer + atomic replace) ----------------

TEST(StrategyIo, ChecksumFooterDetectsCorruption)
{
    std::stringstream buffer;
    saveStrategy(sampleStrategy(), buffer);
    std::string text = buffer.str();
    ASSERT_NE(text.find("crc32 "), std::string::npos);

    // Flip one payload byte (a frequency digit): the footer no longer
    // matches and the loader must refuse the whole file.
    std::size_t pos = text.find("1800");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = '9';
    std::stringstream corrupted(text);
    EXPECT_THROW(loadStrategy(corrupted), std::invalid_argument);
}

TEST(StrategyIo, TamperedOrMalformedFooterThrows)
{
    for (const char *bad :
         {"strategy v1\ninitial 1800\ncrc32 0\n", // wrong checksum
          "strategy v1\ninitial 1800\ncrc32\n",   // value missing
          "strategy v1\ninitial 1800\ncrc32 zzzz\n", // not hex
          // Records after the footer mean the file was appended to
          // (or two writes interleaved): never trust it.
          "strategy v1\ncrc32 0\ninitial 1800\n"}) {
        std::stringstream buffer(bad);
        EXPECT_THROW(loadStrategy(buffer), std::invalid_argument) << bad;
    }
}

TEST(StrategyIo, FooterlessStreamStillLoads)
{
    // Files written before the checksum existed keep loading.
    std::stringstream buffer;
    saveStrategy(sampleStrategy(), buffer);
    std::string text = buffer.str();
    std::size_t footer = text.find("crc32 ");
    ASSERT_NE(footer, std::string::npos);
    std::stringstream legacy(text.substr(0, footer));
    Strategy loaded = loadStrategy(legacy);
    EXPECT_EQ(loaded.stages.size(), 4u);
}

TEST(StrategyIo, FileRoundTripIsChecksummedAndLeavesNoTempFile)
{
    Strategy original = sampleStrategy();
    std::string path = ::testing::TempDir() + "/opdvfs_crc_strategy.txt";
    saveStrategyFile(original, path);

    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("crc32 "), std::string::npos);
    EXPECT_NO_THROW(loadStrategyFile(path));
    std::remove(path.c_str());
}

TEST(StrategyIo, FailedSavePreservesThePreviousFile)
{
    Strategy original = sampleStrategy();
    std::string path = ::testing::TempDir() + "/opdvfs_keep_strategy.txt";
    saveStrategyFile(original, path);

    // A malformed strategy must not clobber the good file on disk.
    Strategy broken = sampleStrategy();
    broken.mhz_per_stage.pop_back();
    EXPECT_THROW(saveStrategyFile(broken, path), std::invalid_argument);

    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    Strategy survivor = loadStrategyFile(path);
    EXPECT_EQ(survivor.stages.size(), original.stages.size());
    std::remove(path.c_str());
}

TEST(StrategyIo, SavedStrategyReExecutesEquivalently)
{
    // The production decoupling: generate + save in one process,
    // load + execute in another.  The re-executed strategy must
    // reproduce the original measured behaviour.
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "io-e2e";
    model.layers = 2;
    model.hidden = 2048;
    model.heads = 16;
    model.seq = 1024;
    model.batch = 2;
    model.tp_allreduce = true;
    model.tensor_parallel = 2;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 44);

    PipelineOptions options;
    options.chip = chip;
    options.constants = power::calibrateOffline(chip);
    options.warmup_seconds = 4.0;
    options.ga.population = 40;
    options.ga.generations = 60;
    EnergyPipeline pipeline(options);
    PipelineResult result = pipeline.optimize(workload);

    std::string path = ::testing::TempDir() + "/opdvfs_e2e_strategy.txt";
    saveStrategyFile(result.strategy(), path);
    Strategy loaded = loadStrategyFile(path);

    trace::WorkloadRunner runner(chip);
    trace::RunOptions run_options;
    run_options.initial_mhz = loaded.plan.initial_mhz;
    run_options.warmup_seconds = 4.0;
    run_options.seed = options.seed * 131 + 7; // the pipeline's seed
    trace::RunResult replay =
        runner.run(workload, run_options, loaded.plan.triggers);

    EXPECT_NEAR(replay.iteration_seconds, result.dvfs.iteration_seconds,
                result.dvfs.iteration_seconds * 1e-6);
    EXPECT_NEAR(replay.aicore_avg_w, result.dvfs.aicore_avg_w,
                result.dvfs.aicore_avg_w * 1e-6);
    EXPECT_EQ(replay.set_freq_count, result.dvfs.set_freq_count);
}

} // namespace
} // namespace opdvfs::dvfs
