#include <gtest/gtest.h>

#include <sstream>

#include "dvfs/pipeline.h"
#include "dvfs/strategy_io.h"
#include "models/transformer.h"
#include "power/offline_calibration.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {
namespace {

Strategy
sampleStrategy()
{
    Strategy strategy;
    for (int s = 0; s < 4; ++s) {
        Stage stage;
        stage.start = s * 10 * kTicksPerMs;
        stage.duration = 10 * kTicksPerMs;
        stage.high_frequency = s % 2 == 0;
        strategy.stages.push_back(stage);
        strategy.mhz_per_stage.push_back(s % 2 == 0 ? 1800.0 : 1300.0);
    }
    strategy.plan.initial_mhz = 1800.0;
    strategy.plan.triggers.push_back({8, 1300.0});
    strategy.plan.triggers.push_back({18, 1800.0});
    strategy.plan.triggers.push_back({28, 1300.0});
    return strategy;
}

TEST(StrategyIo, RoundTripPreservesEverything)
{
    Strategy original = sampleStrategy();
    std::stringstream buffer;
    saveStrategy(original, buffer);
    Strategy loaded = loadStrategy(buffer);

    ASSERT_EQ(loaded.stages.size(), original.stages.size());
    ASSERT_EQ(loaded.mhz_per_stage.size(), original.mhz_per_stage.size());
    ASSERT_EQ(loaded.plan.triggers.size(), original.plan.triggers.size());
    EXPECT_DOUBLE_EQ(loaded.plan.initial_mhz, original.plan.initial_mhz);
    for (std::size_t s = 0; s < original.stages.size(); ++s) {
        EXPECT_EQ(loaded.stages[s].start, original.stages[s].start);
        EXPECT_EQ(loaded.stages[s].duration, original.stages[s].duration);
        EXPECT_EQ(loaded.stages[s].high_frequency,
                  original.stages[s].high_frequency);
        EXPECT_DOUBLE_EQ(loaded.mhz_per_stage[s],
                         original.mhz_per_stage[s]);
    }
    for (std::size_t t = 0; t < original.plan.triggers.size(); ++t) {
        EXPECT_EQ(loaded.plan.triggers[t].after_op_index,
                  original.plan.triggers[t].after_op_index);
        EXPECT_DOUBLE_EQ(loaded.plan.triggers[t].mhz,
                         original.plan.triggers[t].mhz);
    }
    EXPECT_EQ(loaded.triggerCount(), 3u);
}

TEST(StrategyIo, CommentsAndBlankLinesIgnored)
{
    std::stringstream buffer;
    buffer << "strategy v1\n\n# a comment\ninitial 1500\n"
           << "stage 0 1000000 1500 lfc\n";
    Strategy loaded = loadStrategy(buffer);
    EXPECT_DOUBLE_EQ(loaded.plan.initial_mhz, 1500.0);
    ASSERT_EQ(loaded.stages.size(), 1u);
    EXPECT_FALSE(loaded.stages[0].high_frequency);
}

TEST(StrategyIo, MissingHeaderThrows)
{
    std::stringstream buffer;
    buffer << "stage 0 1 1800 hfc\n";
    EXPECT_THROW(loadStrategy(buffer), std::invalid_argument);
}

TEST(StrategyIo, MalformedRecordsThrow)
{
    for (const char *bad :
         {"strategy v1\nstage 0 1 1800 weird\n",
          "strategy v1\nstage 0 1\n", "strategy v1\nbogus 1 2 3\n",
          "strategy v1\ntrigger nope 1800\n",
          "strategy v1\ninitial\n"}) {
        std::stringstream buffer(bad);
        EXPECT_THROW(loadStrategy(buffer), std::invalid_argument) << bad;
    }
}

TEST(StrategyIo, SaveValidatesShape)
{
    Strategy broken = sampleStrategy();
    broken.mhz_per_stage.pop_back();
    std::stringstream buffer;
    EXPECT_THROW(saveStrategy(broken, buffer), std::invalid_argument);
}

TEST(StrategyIo, FileRoundTrip)
{
    Strategy original = sampleStrategy();
    std::string path = ::testing::TempDir() + "/opdvfs_strategy.txt";
    saveStrategyFile(original, path);
    Strategy loaded = loadStrategyFile(path);
    EXPECT_EQ(loaded.stages.size(), original.stages.size());
    EXPECT_EQ(loaded.plan.triggers.size(), original.plan.triggers.size());
}

TEST(StrategyIo, MissingFileThrows)
{
    EXPECT_THROW(loadStrategyFile("/nonexistent/path/strategy.txt"),
                 std::runtime_error);
}

TEST(StrategyIo, SavedStrategyReExecutesEquivalently)
{
    // The production decoupling: generate + save in one process,
    // load + execute in another.  The re-executed strategy must
    // reproduce the original measured behaviour.
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "io-e2e";
    model.layers = 2;
    model.hidden = 2048;
    model.heads = 16;
    model.seq = 1024;
    model.batch = 2;
    model.tp_allreduce = true;
    model.tensor_parallel = 2;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 44);

    PipelineOptions options;
    options.chip = chip;
    options.constants = power::calibrateOffline(chip);
    options.warmup_seconds = 4.0;
    options.ga.population = 40;
    options.ga.generations = 60;
    EnergyPipeline pipeline(options);
    PipelineResult result = pipeline.optimize(workload);

    std::string path = ::testing::TempDir() + "/opdvfs_e2e_strategy.txt";
    saveStrategyFile(result.strategy(), path);
    Strategy loaded = loadStrategyFile(path);

    trace::WorkloadRunner runner(chip);
    trace::RunOptions run_options;
    run_options.initial_mhz = loaded.plan.initial_mhz;
    run_options.warmup_seconds = 4.0;
    run_options.seed = options.seed * 131 + 7; // the pipeline's seed
    trace::RunResult replay =
        runner.run(workload, run_options, loaded.plan.triggers);

    EXPECT_NEAR(replay.iteration_seconds, result.dvfs.iteration_seconds,
                result.dvfs.iteration_seconds * 1e-6);
    EXPECT_NEAR(replay.aicore_avg_w, result.dvfs.aicore_avg_w,
                result.dvfs.aicore_avg_w * 1e-6);
    EXPECT_EQ(replay.set_freq_count, result.dvfs.set_freq_count);
}

} // namespace
} // namespace opdvfs::dvfs
