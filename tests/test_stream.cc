#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/stream.h"

namespace opdvfs::sim {
namespace {

TEST(SyncEvent, RecordReleasesWaiters)
{
    SyncEvent event;
    int released = 0;
    event.onRecord([&] { ++released; });
    event.onRecord([&] { ++released; });
    EXPECT_EQ(released, 0);
    event.record(5);
    EXPECT_EQ(released, 2);
    EXPECT_TRUE(event.recorded());
    EXPECT_EQ(event.recordTick(), 5);
    // Late waiters run immediately.
    event.onRecord([&] { ++released; });
    EXPECT_EQ(released, 3);
}

TEST(SyncEvent, DoubleRecordThrows)
{
    SyncEvent event;
    event.record(1);
    EXPECT_THROW(event.record(2), std::logic_error);
}

TEST(Stream, TasksRunInFifoOrder)
{
    Simulator sim;
    Stream stream(sim, "s");
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        stream.enqueue([&sim, &order, i](std::function<void()> done) {
            order.push_back(i);
            sim.scheduleIn(10, std::move(done));
        });
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_TRUE(stream.idle());
}

TEST(Stream, DelaysAreSequential)
{
    Simulator sim;
    Stream stream(sim, "s");
    stream.enqueueDelay(100);
    stream.enqueueDelay(50);
    Tick finished = -1;
    stream.enqueue([&](std::function<void()> done) {
        finished = sim.now();
        done();
    });
    sim.run();
    EXPECT_EQ(finished, 150);
}

TEST(Stream, WaitBlocksUntilRecord)
{
    Simulator sim;
    Stream producer(sim, "producer");
    Stream consumer(sim, "consumer");
    auto event = std::make_shared<SyncEvent>();

    Tick consumer_ran_at = -1;
    consumer.enqueueWait(event);
    consumer.enqueue([&](std::function<void()> done) {
        consumer_ran_at = sim.now();
        done();
    });

    producer.enqueueDelay(500);
    producer.enqueueRecord(event);

    sim.run();
    EXPECT_EQ(consumer_ran_at, 500);
    EXPECT_EQ(event->recordTick(), 500);
}

TEST(Stream, WaitOnAlreadyRecordedEventDoesNotBlock)
{
    Simulator sim;
    Stream stream(sim, "s");
    auto event = std::make_shared<SyncEvent>();
    event->record(0);
    stream.enqueueWait(event);
    stream.enqueueDelay(10);
    sim.run();
    EXPECT_EQ(sim.now(), 10);
    EXPECT_TRUE(stream.idle());
}

TEST(Stream, SynchronousCompletionContinuesQueue)
{
    Simulator sim;
    Stream stream(sim, "s");
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        stream.enqueue([&order, i](std::function<void()> done) {
            order.push_back(i);
            done(); // completes without a scheduled event
        });
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_TRUE(stream.idle());
}

TEST(Stream, DoubleCompletionThrows)
{
    Simulator sim;
    Stream stream(sim, "s");
    std::function<void()> captured;
    stream.enqueue([&](std::function<void()> done) {
        captured = std::move(done);
    });
    captured();
    EXPECT_THROW(captured(), std::logic_error);
}

TEST(Stream, NullEventThrows)
{
    Simulator sim;
    Stream stream(sim, "s");
    EXPECT_THROW(stream.enqueueRecord(nullptr), std::invalid_argument);
    EXPECT_THROW(stream.enqueueWait(nullptr), std::invalid_argument);
    EXPECT_THROW(stream.enqueueDelay(-5), std::invalid_argument);
}

TEST(Stream, CrossStreamPipelineOrdering)
{
    // Fig. 14 pattern: compute records after op N; setfreq waits, then
    // runs a 1 ms task; change must land before compute op N+2.
    Simulator sim;
    Stream compute(sim, "compute");
    Stream setfreq(sim, "setfreq");
    auto event = std::make_shared<SyncEvent>();

    compute.enqueueDelay(3 * kTicksPerMs); // op N
    compute.enqueueRecord(event);
    compute.enqueueDelay(2 * kTicksPerMs); // op N+1

    Tick applied_at = -1;
    setfreq.enqueueWait(event);
    setfreq.enqueue([&](std::function<void()> done) {
        sim.scheduleIn(kTicksPerMs, [&applied_at, &sim, done] {
            applied_at = sim.now();
            done();
        });
    });

    sim.run();
    EXPECT_EQ(applied_at, 4 * kTicksPerMs);
    EXPECT_EQ(sim.now(), 5 * kTicksPerMs);
}

TEST(Stream, LastIdleTickUpdates)
{
    Simulator sim;
    Stream stream(sim, "s");
    stream.enqueueDelay(70);
    sim.run();
    EXPECT_EQ(stream.lastIdleTick(), 70);
}

} // namespace
} // namespace opdvfs::sim
