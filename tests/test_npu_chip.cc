#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "npu/aicore_timeline.h"
#include "npu/npu_chip.h"

namespace opdvfs::npu {
namespace {

HwOpParams
computeOp(double core_cycles = 1.8e6, double alpha = 2e-8)
{
    HwOpParams params;
    params.category = OpCategory::Compute;
    params.scenario = Scenario::PingPongIndependent;
    params.n = 4;
    params.core_cycles = core_cycles / 4.0;
    params.ld_volume_bytes = 1e5;
    params.st_volume_bytes = 1e5;
    params.alpha_core = alpha;
    params.uncore_activity = 0.3;
    return params;
}

struct RecordingObserver : NpuChip::OpObserver
{
    struct Entry
    {
        std::uint64_t op_id;
        Tick start;
        Tick end;
        double f_mhz;
    };
    std::vector<Entry> finished;

    void opStarted(std::uint64_t, Tick) override {}
    void
    opFinished(std::uint64_t op_id, Tick start, Tick end,
               double f_mhz) override
    {
        finished.push_back({op_id, start, end, f_mhz});
    }
};

TEST(NpuChip, FixedFrequencyOpDurationMatchesTimeline)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    RecordingObserver observer;
    chip.setObserver(&observer);

    HwOpParams op = computeOp();
    chip.enqueueOp(op, 7);
    sim.run();

    ASSERT_EQ(observer.finished.size(), 1u);
    AicoreTimeline timeline(op, chip.memorySystem());
    double expected = timeline.seconds(1800.0);
    double actual = ticksToSeconds(observer.finished[0].end
                                   - observer.finished[0].start);
    EXPECT_NEAR(actual, expected, 1e-9);
    EXPECT_DOUBLE_EQ(observer.finished[0].f_mhz, 1800.0);
}

TEST(NpuChip, OpsRunBackToBack)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    RecordingObserver observer;
    chip.setObserver(&observer);
    for (std::uint64_t i = 0; i < 5; ++i)
        chip.enqueueOp(computeOp(), i);
    sim.run();
    ASSERT_EQ(observer.finished.size(), 5u);
    for (std::size_t i = 1; i < 5; ++i) {
        EXPECT_EQ(observer.finished[i].start, observer.finished[i - 1].end);
    }
}

TEST(NpuChip, SetFreqTakesLatencyAndAppliesAfterwards)
{
    sim::Simulator sim;
    NpuConfig config;
    config.set_freq_latency = kTicksPerMs;
    NpuChip chip(sim, config);
    chip.enqueueSetFreq(1200.0);
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1800.0);
    sim.run();
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1200.0);
    EXPECT_EQ(sim.now(), kTicksPerMs);
}

TEST(NpuChip, MidOpFrequencyDropStretchesRemainder)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    RecordingObserver observer;
    chip.setObserver(&observer);

    HwOpParams op = computeOp(1.8e9); // ~1 s at 1800 MHz, core bound
    op.ld_volume_bytes = 0.0;
    op.st_volume_bytes = 0.0;
    chip.enqueueOp(op, 0);

    // Halfway through, drop to 1000 MHz (applied instantaneously).
    sim.scheduleIn(kTicksPerSecond / 2,
                   [&chip] { chip.dvfs().apply(1000.0); });
    sim.run();

    ASSERT_EQ(observer.finished.size(), 1u);
    double actual = ticksToSeconds(observer.finished[0].end);
    // First half at 1800 (0.5 s of work done), remaining 50% of work at
    // 1000 MHz takes 0.5 * 1.8 = 0.9 s: total 1.4 s.
    EXPECT_NEAR(actual, 1.4, 0.01);
    EXPECT_DOUBLE_EQ(observer.finished[0].f_mhz, 1000.0);
}

TEST(NpuChip, MidOpFrequencyRiseShortensRemainder)
{
    sim::Simulator sim;
    NpuConfig config;
    config.initial_mhz = 1000.0;
    NpuChip chip(sim, config);
    RecordingObserver observer;
    chip.setObserver(&observer);

    HwOpParams op = computeOp(1.0e9); // 1 s at 1000 MHz
    op.ld_volume_bytes = 0.0;
    op.st_volume_bytes = 0.0;
    chip.enqueueOp(op, 0);
    sim.scheduleIn(kTicksPerSecond / 2,
                   [&chip] { chip.dvfs().apply(1800.0); });
    sim.run();

    ASSERT_EQ(observer.finished.size(), 1u);
    double actual = ticksToSeconds(observer.finished[0].end);
    // 0.5 s at 1000 + remaining half of the work at 1.8x speed.
    EXPECT_NEAR(actual, 0.5 + 0.5 / 1.8, 0.01);
}

TEST(NpuChip, EnergyMatchesAnalyticForConstantLoad)
{
    sim::Simulator sim;
    NpuConfig config;
    config.thermal.k_per_watt = 0.0; // isolate from thermal feedback
    NpuChip chip(sim, config);

    HwOpParams op = computeOp(1.8e9, 2e-8);
    op.ld_volume_bytes = 0.0;
    op.st_volume_bytes = 0.0;
    chip.enqueueOp(op, 0);
    sim.run();
    chip.syncAccounting();

    double volts = chip.freqTable().voltageFor(1800.0);
    double fv2 = 1.8e9 * volts * volts;
    PowerCalculator calc(config.aicore_power, config.uncore_power);
    PowerState state;
    state.f_mhz = 1800.0;
    state.volts = volts;
    state.alpha_core = op.alpha_core;
    state.uncore_activity = op.uncore_activity;
    double expected_power = calc.aicorePower(state);
    EXPECT_GT(fv2, 0.0);
    EXPECT_NEAR(chip.energy().aicoreAvgWatts(), expected_power,
                expected_power * 1e-6);
}

TEST(NpuChip, EnergyAccountingInsensitiveToSyncFrequency)
{
    // With the thermal feedback disabled, energy integration over
    // piecewise-constant power must be exactly segmentation-invariant.
    auto run_with_syncs = [](int syncs) {
        sim::Simulator sim;
        NpuConfig config;
        config.thermal.k_per_watt = 0.0;
        NpuChip chip(sim, config);
        HwOpParams op = computeOp(1.8e8);
        chip.enqueueOp(op, 0);
        for (int i = 1; i <= syncs; ++i) {
            sim.scheduleIn(i * kTicksPerMs,
                           [&chip] { chip.syncAccounting(); });
        }
        sim.run();
        chip.syncAccounting();
        return chip.energy().aicore_joules;
    };
    EXPECT_NEAR(run_with_syncs(0), run_with_syncs(50),
                run_with_syncs(0) * 1e-9);
}

TEST(NpuChip, EnergyAtLastRetireExcludesIdleTail)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    chip.enqueueOp(computeOp(1.8e8), 0);
    sim.run();
    // Let time pass idle, then account.
    sim.scheduleIn(kTicksPerSecond, [] {});
    sim.run();
    chip.syncAccounting();
    EXPECT_GT(chip.energy().elapsed_ticks,
              chip.energyAtLastRetire().elapsed_ticks);
    EXPECT_GT(chip.energy().aicore_joules,
              chip.energyAtLastRetire().aicore_joules);
}

TEST(NpuChip, LowerFrequencyLowersAicorePower)
{
    auto avg_power = [](double mhz) {
        sim::Simulator sim;
        NpuConfig config;
        config.initial_mhz = mhz;
        NpuChip chip(sim, config);
        HwOpParams op = computeOp(1.8e8);
        op.ld_volume_bytes = 0.0;
        op.st_volume_bytes = 0.0;
        chip.enqueueOp(op, 0);
        sim.run();
        chip.syncAccounting();
        return chip.energyAtLastRetire().aicoreAvgWatts();
    };
    EXPECT_LT(avg_power(1000.0), avg_power(1400.0));
    EXPECT_LT(avg_power(1400.0), avg_power(1800.0));
}

TEST(NpuChip, TemperatureRisesUnderLoad)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    double ambient = chip.temperature();
    HwOpParams op = computeOp(1.8e9 * 20); // ~20 s of load
    chip.enqueueOp(op, 0);
    sim.run();
    chip.syncAccounting();
    EXPECT_GT(chip.temperature(), ambient + 10.0);
}

TEST(NpuChip, IdleStateReported)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    EXPECT_TRUE(chip.idle());
    chip.enqueueOp(computeOp(), 0);
    EXPECT_FALSE(chip.idle());
    sim.run();
    EXPECT_TRUE(chip.idle());
}

TEST(NpuChip, OutOfTableSetFreqSnapsToNearest)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    chip.enqueueSetFreq(1760.0);
    sim.run();
    EXPECT_DOUBLE_EQ(chip.dvfs().currentMhz(), 1800.0);
    EXPECT_EQ(chip.dvfs().setFreqCount(), 1u);
}

TEST(NpuChip, NonFiniteSetFreqThrows)
{
    sim::Simulator sim;
    NpuChip chip(sim);
    EXPECT_THROW(
        chip.enqueueSetFreq(std::numeric_limits<double>::quiet_NaN()),
        std::invalid_argument);
    EXPECT_THROW(
        chip.enqueueSetFreq(-std::numeric_limits<double>::infinity()),
        std::invalid_argument);
}

} // namespace
} // namespace opdvfs::npu
