#include <gtest/gtest.h>

#include "models/transformer.h"
#include "ops/op_stats.h"

namespace opdvfs::ops {
namespace {

class OpStatsTest : public ::testing::Test
{
  protected:
    OpStatsTest()
    {
        models::TransformerConfig model;
        model.name = "stats-test";
        model.layers = 2;
        model.hidden = 1024;
        model.heads = 8;
        model.seq = 256;
        model.batch = 4;
        workload_ = models::buildTransformerTraining(memory_, model, 2);
    }

    npu::MemorySystem memory_;
    models::Workload workload_;
};

TEST_F(OpStatsTest, CountsAndSharesAreConsistent)
{
    WorkloadStats stats =
        summarize(workload_.iteration, workload_.name, memory_);
    EXPECT_EQ(stats.workload, "stats-test");
    EXPECT_EQ(stats.op_count, workload_.opCount());
    EXPECT_GT(stats.iteration_seconds, 0.0);

    std::size_t total_count = 0;
    double total_share = 0.0;
    for (const auto &type : stats.types) {
        total_count += type.count;
        total_share += type.time_share;
        EXPECT_GT(type.mean_seconds, 0.0);
        EXPECT_LE(type.tiny_count, type.count);
    }
    EXPECT_EQ(total_count, stats.op_count);
    EXPECT_NEAR(total_share, 1.0, 1e-9);

    double category_share = stats.compute_share
        + stats.communication_share + stats.aicpu_share + stats.idle_share;
    EXPECT_NEAR(category_share, 1.0, 1e-9);
}

TEST_F(OpStatsTest, TypesSortedByTimeShare)
{
    WorkloadStats stats =
        summarize(workload_.iteration, workload_.name, memory_);
    for (std::size_t i = 1; i < stats.types.size(); ++i)
        EXPECT_GE(stats.types[i - 1].seconds, stats.types[i].seconds);
}

TEST_F(OpStatsTest, FindLocatesTypes)
{
    WorkloadStats stats =
        summarize(workload_.iteration, workload_.name, memory_);
    const TypeStats *matmul = stats.find("MatMul");
    ASSERT_NE(matmul, nullptr);
    EXPECT_GT(matmul->count, 0u);
    EXPECT_EQ(stats.find("NoSuchOp"), nullptr);
}

TEST_F(OpStatsTest, LowerReferenceFrequencyLengthensIteration)
{
    WorkloadStats fast =
        summarize(workload_.iteration, workload_.name, memory_, 1800.0);
    WorkloadStats slow =
        summarize(workload_.iteration, workload_.name, memory_, 1000.0);
    EXPECT_GT(slow.iteration_seconds, fast.iteration_seconds);
    // Insensitive categories keep their absolute time, so their share
    // shrinks at low frequency... communication time is fixed:
    double fast_comm =
        fast.communication_share * fast.iteration_seconds;
    double slow_comm =
        slow.communication_share * slow.iteration_seconds;
    EXPECT_NEAR(fast_comm, slow_comm, 1e-9);
}

TEST_F(OpStatsTest, EmptySequence)
{
    WorkloadStats stats = summarize({}, "empty", memory_);
    EXPECT_EQ(stats.op_count, 0u);
    EXPECT_DOUBLE_EQ(stats.iteration_seconds, 0.0);
    EXPECT_TRUE(stats.types.empty());
}

} // namespace
} // namespace opdvfs::ops
