/**
 * Chaos tests: the serving stack driven through the seeded
 * fault-injecting ChaosProxy.  Every plan here uses a fixed seed, so
 * each fault schedule — which bytes are split, corrupted, stalled or
 * cut — replays identically run to run: a failure reproduces, and the
 * expected outcome of each fault mode is asserted exactly (split
 * streams still decode, corruption is caught by the CRC and answered
 * `Malformed`, stalls surface as client deadlines, mid-frame resets as
 * transport errors).  Also covers the circuit breaker against a dead
 * port — a 16-client fleet's aggregate connect attempts are bounded by
 * the breaker, not by the number of calls — and that ChaosProxy::stop()
 * stays bounded under every fault mode.  An optional soak (gated on
 * OPDVFS_CHAOS_SOAK_SECONDS, wired to a manual CI job) hammers a
 * server through a mixed-fault proxy and requires it healthy after.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "models/transformer.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/server.h"
#include "power/offline_calibration.h"

namespace opdvfs::net {
namespace {

models::Workload
testWorkload(int seq)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "chaos-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, 5);
}

const power::CalibratedConstants &
constants()
{
    static const power::CalibratedConstants value =
        power::calibrateOffline(npu::NpuConfig{});
    return value;
}

serve::ServiceOptions
fastOptions(std::size_t workers)
{
    serve::ServiceOptions options;
    options.pipeline.warmup_seconds = 2.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 30;
    options.pipeline.ga.generations = 24;
    options.pipeline.ga.refine_sweeps = 2;
    options.pipeline.constants = constants();
    options.workers = workers;
    options.cache.capacity = 32;
    options.cache.shards = 4;
    return options;
}

WireRequest
testWireRequest(int seq, std::uint64_t seed)
{
    WireRequest request;
    request.workload = testWorkload(seq);
    request.seed = seed;
    return request;
}

/** Loopback socket connected to @p port, or -1. */
int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * A loopback port guaranteed dead for the test's lifetime: bound (so
 * nothing else can take it) but never listened on, so every connect is
 * refused immediately.  Caller owns the returned fd.
 */
int
deadPort(std::uint16_t *port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (fd < 0
        || ::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
               < 0)
        return -1;
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        return -1;
    *port = ntohs(addr.sin_port);
    return fd;
}

TEST(NetChaos, PassthroughProxyIsTransparent)
{
    serve::StrategyService service(fastOptions(2));
    StrategyServer server(service, {});
    server.start();
    ChaosProxy proxy("127.0.0.1", server.port()); // default: no faults
    proxy.start();

    StrategyClient client("127.0.0.1", proxy.port());
    WireResponse response = client.call(testWireRequest(128, 3));
    EXPECT_EQ(response.status, Status::Ok);

    ChaosCounters counters = proxy.counters();
    EXPECT_EQ(counters.connections, 1u);
    EXPECT_GT(counters.bytes_up, 0u);
    EXPECT_GT(counters.bytes_down, 0u);
    EXPECT_EQ(counters.bytes_corrupted, 0u);
    EXPECT_EQ(counters.stalls, 0u);
    EXPECT_EQ(counters.resets, 0u);
    proxy.stop();
    server.stop();
}

// A frame split at every byte boundary — the worst case for the
// server's frame peeler and the client's response reader — must decode
// exactly as the unsplit stream does.
TEST(NetChaos, ByteAtATimeSplitStillServes)
{
    serve::StrategyService service(fastOptions(2));
    StrategyServer server(service, {});
    server.start();

    ChaosPlan plan;
    plan.seed = 11;
    plan.min_chunk_bytes = 1;
    plan.max_chunk_bytes = 1;
    ChaosProxy proxy("127.0.0.1", server.port(), plan);
    proxy.start();

    StrategyClient client("127.0.0.1", proxy.port());
    WireRequest request = testWireRequest(128, 5);
    WireResponse cold = client.call(request);
    EXPECT_EQ(cold.status, Status::Ok);
    EXPECT_EQ(cold.provenance, serve::Provenance::Cold);
    WireResponse hit = client.call(request);
    EXPECT_EQ(hit.status, Status::Ok);
    EXPECT_EQ(hit.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(hit.best_score, cold.best_score);

    // With one-byte chunks every forwarded byte is its own write;
    // both counters move under one lock, so this holds at any moment.
    ChaosCounters counters = proxy.counters();
    EXPECT_EQ(counters.chunks, counters.bytes_up + counters.bytes_down);
    EXPECT_GT(counters.bytes_up,
              frameRequest(request).size()); // two requests forwarded
    proxy.stop();
    server.stop();
}

// One flipped bit inside the payload must be caught by the frame CRC:
// the server answers a well-formed `Malformed` and closes — never a
// crash, never a garbage strategy.
TEST(NetChaos, TargetedCorruptionIsCaughtByTheCrc)
{
    serve::StrategyService service(fastOptions(1));
    StrategyServer server(service, {});
    server.start();

    ChaosPlan plan;
    plan.seed = 13;
    plan.corrupt_byte_index = 24; // past the 16-byte header: payload
    plan.apply_downstream = false; // leave the response intact
    ChaosProxy proxy("127.0.0.1", server.port(), plan);
    proxy.start();

    ClientOptions one_shot;
    one_shot.max_attempts = 1;
    StrategyClient client("127.0.0.1", proxy.port(), one_shot);
    try {
        client.call(testWireRequest(128, 7));
        FAIL() << "expected RemoteError(Malformed)";
    } catch (const RemoteError &remote) {
        EXPECT_EQ(remote.status(), Status::Malformed);
    }
    EXPECT_EQ(proxy.counters().bytes_corrupted, 1u);
    EXPECT_GE(server.stats().responses_malformed, 1u);
    EXPECT_EQ(service.stats().requests, 0u); // nothing reached the GA
    proxy.stop();
    server.stop();
}

// A mid-response stall (a hung middlebox) must surface as the
// client's own deadline, not a hang.
TEST(NetChaos, StallSurfacesAsClientDeadline)
{
    serve::StrategyService service(fastOptions(1));
    StrategyServer server(service, {});
    server.start();

    // Pre-warm straight against the server so the proxied request is
    // an exact hit and the only slow path is the injected stall.
    StrategyClient warm("127.0.0.1", server.port());
    WireRequest request = testWireRequest(128, 9);
    ASSERT_EQ(warm.call(request).status, Status::Ok);

    ChaosPlan plan;
    plan.seed = 17;
    plan.apply_upstream = false;
    plan.stall_after_bytes = 8; // freeze mid-way through the header
    plan.stall_seconds = 5.0;
    ChaosProxy proxy("127.0.0.1", server.port(), plan);
    proxy.start();

    ClientOptions options;
    options.max_attempts = 1;
    options.request_timeout_seconds = 0.5;
    StrategyClient client("127.0.0.1", proxy.port(), options);
    EXPECT_THROW(client.call(request), DeadlineError);
    EXPECT_EQ(proxy.counters().stalls, 1u);
    proxy.stop(); // abandons the stall: bounded despite stall_seconds
    server.stop();
}

// A connection cut by an RST at an arbitrary point inside the request
// frame must surface as a transport error at the client (retryable),
// whichever byte the cut lands on.
TEST(NetChaos, MidFrameResetSurfacesAsTransportError)
{
    serve::StrategyService service(fastOptions(1));
    StrategyServer server(service, {});
    server.start();

    for (std::size_t cut : {std::size_t{1}, std::size_t{8},
                            std::size_t{17}, std::size_t{200}}) {
        ChaosPlan plan;
        plan.seed = 19 + cut;
        plan.reset_after_bytes = cut;
        plan.apply_downstream = false;
        ChaosProxy proxy("127.0.0.1", server.port(), plan);
        proxy.start();

        ClientOptions one_shot;
        one_shot.max_attempts = 1;
        StrategyClient client("127.0.0.1", proxy.port(), one_shot);
        try {
            client.call(testWireRequest(64, cut));
            FAIL() << "expected NetError at cut offset " << cut;
        } catch (const DeadlineError &) {
            FAIL() << "reset surfaced as a deadline at cut " << cut;
        } catch (const NetError &) {
            // expected: reset / torn connection
        }
        EXPECT_EQ(proxy.counters().resets, 1u) << "cut " << cut;
        proxy.stop();
    }
    server.stop();
}

// A four-reactor server behind the proxy upholds exactly the
// single-loop contracts: byte-at-a-time splits still serve (the hit
// now coming off a reactor's fast path), a flipped payload bit is
// caught by the CRC and answered `Malformed` by whichever reactor owns
// the connection, and a mid-response stall surfaces as the client's
// deadline.  Multi-reactor ownership must be invisible on the wire.
TEST(NetChaos, FourReactorServerMatchesSingleLoopContracts)
{
    serve::StrategyService service(fastOptions(2));
    ServerOptions server_options;
    server_options.reactor_threads = 4;
    StrategyServer server(service, server_options);
    server.start();

    // Split: one-byte chunks both ways; cold computes, the replay is
    // an exact hit with the same score — served on the event loop.
    {
        ChaosPlan plan;
        plan.seed = 29;
        plan.min_chunk_bytes = 1;
        plan.max_chunk_bytes = 1;
        ChaosProxy proxy("127.0.0.1", server.port(), plan);
        proxy.start();
        StrategyClient client("127.0.0.1", proxy.port());
        WireRequest request = testWireRequest(128, 21);
        WireResponse cold = client.call(request);
        EXPECT_EQ(cold.status, Status::Ok);
        EXPECT_EQ(cold.provenance, serve::Provenance::Cold);
        WireResponse hit = client.call(request);
        EXPECT_EQ(hit.provenance, serve::Provenance::ExactHit);
        EXPECT_EQ(hit.best_score, cold.best_score);
        proxy.stop();
        EXPECT_EQ(server.stats().fast_path_hits, 1u);
    }

    // Bit-flip: the CRC catches it on whichever reactor owns the
    // connection; the GA is never reached by the corrupted frame.
    {
        std::uint64_t requests_before = service.stats().requests;
        ChaosPlan plan;
        plan.seed = 31;
        plan.corrupt_byte_index = 24;
        plan.apply_downstream = false;
        ChaosProxy proxy("127.0.0.1", server.port(), plan);
        proxy.start();
        ClientOptions one_shot;
        one_shot.max_attempts = 1;
        StrategyClient client("127.0.0.1", proxy.port(), one_shot);
        try {
            client.call(testWireRequest(128, 23));
            FAIL() << "expected RemoteError(Malformed)";
        } catch (const RemoteError &remote) {
            EXPECT_EQ(remote.status(), Status::Malformed);
        }
        EXPECT_EQ(service.stats().requests, requests_before);
        EXPECT_GE(server.stats().responses_malformed, 1u);
        proxy.stop();
    }

    // Stall: an exact hit frozen mid-header downstream surfaces as
    // the client's own deadline, exactly as with one loop.
    {
        ChaosPlan plan;
        plan.seed = 37;
        plan.apply_upstream = false;
        plan.stall_after_bytes = 8;
        plan.stall_seconds = 5.0;
        ChaosProxy proxy("127.0.0.1", server.port(), plan);
        proxy.start();
        ClientOptions options;
        options.max_attempts = 1;
        options.request_timeout_seconds = 0.5;
        StrategyClient client("127.0.0.1", proxy.port(), options);
        EXPECT_THROW(client.call(testWireRequest(128, 21)),
                     DeadlineError);
        EXPECT_EQ(proxy.counters().stalls, 1u);
        proxy.stop();
    }
    server.stop();
}

// With the server dead, a fleet of breaker-equipped clients stops
// hammering the port: total connect attempts are a function of the
// breaker threshold, not of how many calls the fleet makes, and once
// the cool-down elapses exactly one half-open probe goes out per
// client before the breaker re-opens.
TEST(NetChaos, BreakerBoundsAFleetAgainstADeadServer)
{
    std::uint16_t port = 0;
    int reserved = deadPort(&port);
    ASSERT_GE(reserved, 0);

    constexpr int kClients = 16;
    constexpr int kCallsPerClient = 50;
    std::vector<std::unique_ptr<StrategyClient>> fleet;
    ClientOptions options;
    options.max_attempts = 1;
    options.connect_timeout_seconds = 0.5;
    options.breaker_failure_threshold = 2;
    options.breaker_open_seconds = 30.0; // no probe inside this test
    WireRequest request = testWireRequest(64, 1);
    for (int i = 0; i < kClients; ++i) {
        options.seed = static_cast<std::uint64_t>(i + 1);
        fleet.push_back(std::make_unique<StrategyClient>(
            "127.0.0.1", port, options));
        for (int call = 0; call < kCallsPerClient; ++call)
            EXPECT_THROW(fleet.back()->call(request), NetError);
    }

    std::uint64_t attempts = 0;
    for (auto &client : fleet) {
        EXPECT_EQ(client->breakerState(), BreakerState::Open);
        EXPECT_EQ(client->breakerOpens(), 1u);
        EXPECT_EQ(client->connectAttempts(), 2u); // == threshold
        attempts += client->connectAttempts();
    }
    // 800 calls, 32 connect attempts: the breaker, not the call rate,
    // sets the load on the dead server.
    EXPECT_EQ(attempts,
              static_cast<std::uint64_t>(kClients)
                  * static_cast<std::uint64_t>(
                      options.breaker_failure_threshold));

    // After the cool-down, exactly one half-open probe per call burst.
    ClientOptions probing = options;
    probing.breaker_open_seconds = 0.2;
    StrategyClient prober("127.0.0.1", port, probing);
    for (int call = 0; call < 10; ++call)
        EXPECT_THROW(prober.call(request), NetError);
    EXPECT_EQ(prober.connectAttempts(), 2u);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    for (int call = 0; call < 10; ++call)
        EXPECT_THROW(prober.call(request), NetError);
    EXPECT_EQ(prober.connectAttempts(), 3u); // the probe, re-opened
    EXPECT_EQ(prober.breakerOpens(), 2u);
    ::close(reserved);
}

// stop() must stay bounded whatever fault is mid-flight — including a
// relay thread asleep inside a configured 30 s stall.
TEST(NetChaos, StopIsBoundedUnderEveryFaultMode)
{
    ChaosPlan split;
    split.min_chunk_bytes = 1;
    split.max_chunk_bytes = 1;
    split.inter_chunk_delay_us = 20000;
    ChaosPlan corrupt;
    corrupt.corrupt_rate = 1.0;
    ChaosPlan stall;
    stall.stall_after_bytes = 1;
    stall.stall_seconds = 30.0;
    ChaosPlan reset;
    reset.reset_after_bytes = 3;

    for (const ChaosPlan &plan : {split, corrupt, stall, reset}) {
        // A bound-and-listening upstream that never reads: enough for
        // the proxy to connect and buffer its forwards.
        std::uint16_t upstream_port = 0;
        int upstream = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(upstream, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        ASSERT_EQ(::bind(upstream, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ASSERT_EQ(::listen(upstream, 4), 0);
        socklen_t len = sizeof(addr);
        ASSERT_EQ(::getsockname(upstream,
                                reinterpret_cast<sockaddr *>(&addr),
                                &len),
                  0);
        upstream_port = ntohs(addr.sin_port);

        ChaosProxy proxy("127.0.0.1", upstream_port, plan);
        proxy.start();
        int fd = connectLoopback(proxy.port());
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::send(fd, "hello", 5, 0), 5);
        // Let the relay pick the bytes up and enter its fault path.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));

        auto started = std::chrono::steady_clock::now();
        proxy.stop();
        double stop_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now()
                                          - started)
                .count();
        EXPECT_LT(stop_seconds, 2.0);
        ::close(fd);
        ::close(upstream);
    }
}

// Manual soak (wired to the chaos-soak CI job): hammer a live server
// through a mixed-fault proxy for OPDVFS_CHAOS_SOAK_SECONDS, then
// require the server itself still healthy and serving.
TEST(NetChaos, SoakSurvivesMixedFaults)
{
    const char *env = std::getenv("OPDVFS_CHAOS_SOAK_SECONDS");
    if (env == nullptr || *env == '\0')
        GTEST_SKIP()
            << "set OPDVFS_CHAOS_SOAK_SECONDS to run the chaos soak";
    double budget = std::atof(env);
    if (budget < 1.0)
        budget = 1.0;
    if (budget > 300.0)
        budget = 300.0;

    serve::StrategyService service(fastOptions(2));
    StrategyServer server(service, {});
    server.start();

    ChaosPlan plan;
    plan.seed = 29;
    plan.min_chunk_bytes = 1;
    plan.max_chunk_bytes = 9;
    plan.corrupt_rate = 2e-4;
    ChaosProxy proxy("127.0.0.1", server.port(), plan);
    proxy.start();

    auto deadline = std::chrono::steady_clock::now()
                    + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(budget));
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::thread> drivers;
    for (int t = 0; t < 4; ++t) {
        drivers.emplace_back([&, t] {
            ClientOptions options;
            options.max_attempts = 3;
            options.request_timeout_seconds = 5.0;
            options.backoff_initial_seconds = 0.01;
            options.backoff_max_seconds = 0.1;
            options.seed = static_cast<std::uint64_t>(t + 1);
            StrategyClient client("127.0.0.1", proxy.port(), options);
            int i = 0;
            while (std::chrono::steady_clock::now() < deadline) {
                try {
                    WireRequest request =
                        testWireRequest(64 + 64 * (i % 3),
                                        static_cast<std::uint64_t>(
                                            t * 1000 + i % 5));
                    if (client.call(request).status == Status::Ok)
                        ++completed;
                } catch (const std::exception &) {
                    // corruption / resets land here by design
                }
                if (++i % 17 == 0)
                    client.disconnect();
            }
        });
    }
    for (auto &driver : drivers)
        driver.join();
    proxy.stop();

    // The server itself must have survived the weather: still
    // healthy, still serving clean requests directly.
    EXPECT_EQ(adminQuery("127.0.0.1", server.port(), "HEALTH"), "ok\n");
    StrategyClient direct("127.0.0.1", server.port());
    EXPECT_EQ(direct.call(testWireRequest(128, 999)).status, Status::Ok);
    EXPECT_GT(completed.load(), 0u);
    server.stop();
}

} // namespace
} // namespace opdvfs::net
