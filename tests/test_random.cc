#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace opdvfs {
namespace {

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform(0, 1) == b.uniform(0, 1))
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(2.5, 3.5);
        EXPECT_GE(x, 2.5);
        EXPECT_LT(x, 3.5);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, IndexCoversRange)
{
    Rng rng(11);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 5000; ++i)
        counts[rng.index(5)]++;
    for (int c : counts)
        EXPECT_GT(c, 700); // roughly uniform
}

TEST(Rng, NoiseFactorStaysPositive)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        double f = rng.noiseFactor(0.5); // extreme sigma
        EXPECT_GT(f, 0.0);
    }
}

TEST(Rng, NoiseFactorCentredOnOne)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.noiseFactor(0.02);
    EXPECT_NEAR(sum / n, 1.0, 0.005);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(19);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 8000; ++i)
        counts[rng.weightedIndex(weights)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform)
{
    Rng rng(23);
    std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 4000; ++i)
        counts[rng.weightedIndex(weights)]++;
    for (int c : counts)
        EXPECT_GT(c, 600);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(31);
    Rng child = a.fork();
    // The child must not replay the parent's stream.
    Rng reference(31);
    reference.fork();
    double parent_next = a.uniform(0, 1);
    double child_next = child.uniform(0, 1);
    EXPECT_NE(parent_next, child_next);
    // But forking is deterministic overall.
    Rng b(31);
    Rng child_b = b.fork();
    EXPECT_DOUBLE_EQ(child_b.uniform(0, 1), child_next);
}

} // namespace
} // namespace opdvfs
