/**
 * Crash-safe cache persistence: entry/snapshot codec round-trips, CRC
 * rejection, WAL replay with torn-tail and bit-flip corruption (the
 * recover-or-truncate contract), file-level truncation repair, the
 * background CachePersister's flush/snapshot/crash-stop semantics, and
 * the startup restoreServiceCache path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dvfs/strategy_io.h"
#include "serve/cache_store.h"
#include "serve/service.h"

namespace opdvfs::serve {
namespace {

/** Fresh empty scratch directory for one test. */
std::string
freshTempDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

dvfs::Strategy
sampleStrategy(double low_mhz)
{
    dvfs::Strategy strategy;
    for (int s = 0; s < 4; ++s) {
        dvfs::Stage stage;
        stage.start = s * 10 * kTicksPerMs;
        stage.duration = 10 * kTicksPerMs;
        stage.high_frequency = s % 2 == 0;
        strategy.stages.push_back(stage);
        strategy.mhz_per_stage.push_back(s % 2 == 0 ? 1800.0 : low_mhz);
    }
    strategy.plan.initial_mhz = 1800.0;
    strategy.plan.triggers.push_back({8, low_mhz});
    strategy.plan.triggers.push_back({18, 1800.0});
    return strategy;
}

CacheEntry
sampleEntry(std::uint64_t digest, double low_mhz = 1300.0)
{
    CacheEntry entry;
    entry.fingerprint.digest = digest;
    entry.fingerprint.features = {0.25, 0.5, 0.125};
    entry.fingerprint.model_epoch = 3;
    entry.strategy = sampleStrategy(low_mhz);
    entry.ga.best_mhz = {1800.0, low_mhz, 1800.0, low_mhz};
    entry.ga.best_score = 0.75 + static_cast<double>(digest) / 1024.0;
    entry.perf_loss_target = 0.02;
    entry.warm_start_only = (digest % 2) == 1;
    return entry;
}

std::string
strategyText(const dvfs::Strategy &strategy)
{
    std::ostringstream os;
    dvfs::saveStrategy(strategy, os);
    return os.str();
}

TEST(CacheStoreCodec, EntryRoundTripIsLossless)
{
    CacheEntry original = sampleEntry(0xDEADBEEFCAFE0001ull);
    std::ostringstream os;
    encodeCacheEntry(original, os);
    std::istringstream is(os.str());
    CacheEntry loaded = decodeCacheEntry(is);

    EXPECT_EQ(loaded.fingerprint.digest, original.fingerprint.digest);
    EXPECT_EQ(loaded.fingerprint.model_epoch,
              original.fingerprint.model_epoch);
    EXPECT_EQ(loaded.fingerprint.features, original.fingerprint.features);
    EXPECT_DOUBLE_EQ(loaded.perf_loss_target, original.perf_loss_target);
    EXPECT_DOUBLE_EQ(loaded.ga.best_score, original.ga.best_score);
    EXPECT_EQ(loaded.ga.best_mhz, original.ga.best_mhz);
    EXPECT_EQ(loaded.warm_start_only, original.warm_start_only);
    EXPECT_EQ(strategyText(loaded.strategy),
              strategyText(original.strategy));
}

TEST(CacheStoreCodec, EncodeRejectsUnserviceableFields)
{
    CacheEntry entry = sampleEntry(1);
    entry.perf_loss_target = 0.0;
    std::ostringstream os;
    EXPECT_THROW(encodeCacheEntry(entry, os), std::invalid_argument);

    entry = sampleEntry(1);
    entry.ga.best_score = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(encodeCacheEntry(entry, os), std::invalid_argument);
}

TEST(CacheStoreCodec, DecodeRejectsCorruptEntryBlock)
{
    std::ostringstream os;
    encodeCacheEntry(sampleEntry(2), os);
    std::string text = os.str();
    // A non-finite score must never load.
    std::size_t at = text.find("score ");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, text.find('\n', at) - at, "score nan");
    std::istringstream is(text);
    EXPECT_THROW(decodeCacheEntry(is), std::invalid_argument);
}

TEST(CacheStoreSnapshot, RoundTripPreservesEpochAndEntries)
{
    CacheSnapshot snapshot;
    snapshot.model_epoch = 7;
    snapshot.entries = {sampleEntry(1), sampleEntry(2, 1000.0),
                        sampleEntry(3)};
    CacheSnapshot loaded = decodeCacheSnapshot(encodeCacheSnapshot(snapshot));
    EXPECT_EQ(loaded.model_epoch, 7u);
    ASSERT_EQ(loaded.entries.size(), 3u);
    for (std::size_t at = 0; at < 3; ++at) {
        EXPECT_EQ(loaded.entries[at].fingerprint.digest,
                  snapshot.entries[at].fingerprint.digest);
        EXPECT_EQ(strategyText(loaded.entries[at].strategy),
                  strategyText(snapshot.entries[at].strategy));
    }
}

TEST(CacheStoreSnapshot, CrcCatchesASingleFlippedByte)
{
    CacheSnapshot snapshot;
    snapshot.model_epoch = 1;
    snapshot.entries = {sampleEntry(4)};
    std::string text = encodeCacheSnapshot(snapshot);
    // Flip one strategy byte mid-file: the footer CRC must catch it
    // even when every record still parses.
    std::string corrupt = text;
    std::size_t at = corrupt.find("1800");
    ASSERT_NE(at, std::string::npos);
    corrupt[at] = '1' + 1;
    EXPECT_THROW(decodeCacheSnapshot(corrupt), std::invalid_argument);
}

TEST(CacheStoreSnapshot, FileRoundTripAndCorruptFileIsAbsent)
{
    std::string dir = freshTempDir("opdvfs_cache_snapfile");
    std::string path = dir + "/cache.snap";

    EXPECT_FALSE(loadCacheSnapshotFile(path).has_value());

    CacheSnapshot snapshot;
    snapshot.model_epoch = 5;
    snapshot.entries = {sampleEntry(10), sampleEntry(11)};
    saveCacheSnapshotFile(snapshot, path);
    auto loaded = loadCacheSnapshotFile(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->model_epoch, 5u);
    EXPECT_EQ(loaded->entries.size(), 2u);

    // Corrupt the file in place: a bad snapshot is treated as absent,
    // never as a crash or a partial load.
    {
        std::fstream file(path,
                          std::ios::in | std::ios::out | std::ios::binary);
        file.seekp(40);
        file.put('\xFF');
    }
    EXPECT_FALSE(loadCacheSnapshotFile(path).has_value());
    std::filesystem::remove_all(dir);
}

TEST(CacheStoreWal, ReplayRecoversAppendOrder)
{
    std::string wal = encodeWalRecord(sampleEntry(21))
                      + encodeWalRecord(sampleEntry(22, 1000.0))
                      + encodeWalRecord(sampleEntry(23));
    WalReplay replay = replayWalBuffer(wal);
    EXPECT_FALSE(replay.truncated_tail);
    EXPECT_EQ(replay.valid_bytes, wal.size());
    ASSERT_EQ(replay.entries.size(), 3u);
    EXPECT_EQ(replay.entries[0].fingerprint.digest, 21u);
    EXPECT_EQ(replay.entries[1].fingerprint.digest, 22u);
    EXPECT_EQ(replay.entries[2].fingerprint.digest, 23u);
}

TEST(CacheStoreWal, TornTailKeepsTheValidPrefix)
{
    std::string first = encodeWalRecord(sampleEntry(31));
    std::string second = encodeWalRecord(sampleEntry(32));
    // A crash mid-append tears the last record at any byte boundary;
    // replay must keep the prefix and flag the tail, at every cut.
    for (std::size_t cut = 1; cut < second.size(); cut += 7) {
        std::string torn = first + second.substr(0, second.size() - cut);
        WalReplay replay = replayWalBuffer(torn);
        EXPECT_TRUE(replay.truncated_tail) << "cut " << cut;
        EXPECT_EQ(replay.valid_bytes, first.size()) << "cut " << cut;
        ASSERT_EQ(replay.entries.size(), 1u) << "cut " << cut;
        EXPECT_EQ(replay.entries[0].fingerprint.digest, 31u);
    }
}

TEST(CacheStoreWal, BitFlipEndsReplayAtTheFlippedRecord)
{
    std::string first = encodeWalRecord(sampleEntry(41));
    std::string second = encodeWalRecord(sampleEntry(42));
    std::string wal = first + second;
    // Flip one payload byte of the second record: its CRC fails, the
    // first record survives, nothing corrupt loads.
    std::string corrupt = wal;
    corrupt[first.size() + 12 + 5] ^= 0x20;
    WalReplay replay = replayWalBuffer(corrupt);
    EXPECT_TRUE(replay.truncated_tail);
    EXPECT_EQ(replay.valid_bytes, first.size());
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.entries[0].fingerprint.digest, 41u);

    // Flip the magic of the *first* record: replay is empty but calm.
    corrupt = wal;
    corrupt[0] ^= 0x01;
    replay = replayWalBuffer(corrupt);
    EXPECT_TRUE(replay.truncated_tail);
    EXPECT_EQ(replay.valid_bytes, 0u);
    EXPECT_TRUE(replay.entries.empty());
}

TEST(CacheStoreWal, FileReplayTruncatesTheTornTailOnDisk)
{
    std::string dir = freshTempDir("opdvfs_cache_walfile");
    std::string path = dir + "/cache.wal";

    // Missing file replays empty.
    WalReplay replay = replayWalFile(path);
    EXPECT_TRUE(replay.entries.empty());
    EXPECT_FALSE(replay.truncated_tail);

    std::string first = encodeWalRecord(sampleEntry(51));
    std::string second = encodeWalRecord(sampleEntry(52));
    {
        std::ofstream file(path, std::ios::binary);
        file << first << second.substr(0, second.size() / 2);
    }
    replay = replayWalFile(path, /*truncate_torn_tail=*/true);
    EXPECT_TRUE(replay.truncated_tail);
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(std::filesystem::file_size(path), first.size());

    // The repaired file now extends cleanly: append a fresh record
    // and replay both without any truncation.
    {
        std::ofstream file(path, std::ios::binary | std::ios::app);
        file << second;
    }
    replay = replayWalFile(path);
    EXPECT_FALSE(replay.truncated_tail);
    ASSERT_EQ(replay.entries.size(), 2u);
    EXPECT_EQ(replay.entries[1].fingerprint.digest, 52u);
    std::filesystem::remove_all(dir);
}

TEST(CachePersister, FlushMakesInsertsDurableInTheWal)
{
    std::string dir = freshTempDir("opdvfs_cache_persister");
    CachePersister::Options options;
    options.snapshot_path = dir + "/cache.snap";
    options.wal_path = dir + "/cache.wal";
    options.snapshot_interval_seconds = 0.0; // explicit snapshots only

    CacheSnapshot image;
    image.model_epoch = 2;
    CachePersister persister(options, [&image] { return image; });

    persister.onInsert(sampleEntry(61));
    persister.onInsert(sampleEntry(62));
    persister.flush();
    CachePersister::Stats stats = persister.stats();
    EXPECT_EQ(stats.wal_appends, 2u);
    EXPECT_EQ(stats.wal_dropped, 0u);
    EXPECT_EQ(stats.queue_depth, 0u);

    WalReplay replay = replayWalFile(options.wal_path);
    ASSERT_EQ(replay.entries.size(), 2u);
    EXPECT_EQ(replay.entries[0].fingerprint.digest, 61u);

    // A snapshot captures the image and truncates the WAL: recovery
    // state stays "snapshot + WAL since snapshot", never both copies.
    image.entries = {sampleEntry(61), sampleEntry(62)};
    persister.writeSnapshotNow();
    EXPECT_GE(persister.stats().snapshots_written, 1u);
    EXPECT_EQ(std::filesystem::file_size(options.wal_path), 0u);
    auto snapshot = loadCacheSnapshotFile(options.snapshot_path);
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_EQ(snapshot->entries.size(), 2u);

    // Crash-stop: post-snapshot inserts live in the WAL only.
    persister.onInsert(sampleEntry(63));
    persister.flush();
    persister.stop(/*write_final_snapshot=*/false);
    replay = replayWalFile(options.wal_path);
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.entries[0].fingerprint.digest, 63u);
    EXPECT_EQ(loadCacheSnapshotFile(options.snapshot_path)->entries.size(),
              2u);
    std::filesystem::remove_all(dir);
}

TEST(CachePersister, GracefulStopWritesAFinalSnapshot)
{
    std::string dir = freshTempDir("opdvfs_cache_persister_stop");
    CachePersister::Options options;
    options.snapshot_path = dir + "/cache.snap";
    options.wal_path = dir + "/cache.wal";
    options.snapshot_interval_seconds = 0.0;

    CacheSnapshot image;
    image.model_epoch = 9;
    image.entries = {sampleEntry(71), sampleEntry(72), sampleEntry(73)};
    CachePersister persister(options, [&image] { return image; });
    persister.onInsert(sampleEntry(71));
    persister.stop(/*write_final_snapshot=*/true);

    // The SIGTERM path: queue drained, one final snapshot, empty WAL.
    auto snapshot = loadCacheSnapshotFile(options.snapshot_path);
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_EQ(snapshot->model_epoch, 9u);
    EXPECT_EQ(snapshot->entries.size(), 3u);
    EXPECT_EQ(std::filesystem::file_size(options.wal_path), 0u);

    // stop() is idempotent; a late crash-stop cannot undo it.
    persister.stop(false);
    persister.stop(true);
    std::filesystem::remove_all(dir);
}

TEST(CacheStoreRestore, ServiceRehydratesSnapshotThenWal)
{
    std::string dir = freshTempDir("opdvfs_cache_restore");
    std::string snapshot_path = dir + "/cache.snap";
    std::string wal_path = dir + "/cache.wal";

    CacheSnapshot snapshot;
    snapshot.model_epoch = 4;
    snapshot.entries = {sampleEntry(81), sampleEntry(82, 1000.0)};
    saveCacheSnapshotFile(snapshot, snapshot_path);
    {
        // The WAL re-logs digest 82 with a different strategy: replay
        // order must make the logged (newer) value win.
        std::ofstream file(wal_path, std::ios::binary);
        file << encodeWalRecord(sampleEntry(82, 1500.0))
             << encodeWalRecord(sampleEntry(83));
    }

    ServiceOptions options;
    options.workers = 1;
    StrategyService service(options);
    RestoreReport report =
        restoreServiceCache(service, snapshot_path, wal_path);
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_EQ(report.snapshot_entries, 2u);
    EXPECT_EQ(report.wal_entries, 2u);
    // Four insert operations: the logged copy of 82 overwrites the
    // snapshot's, leaving three distinct entries.
    EXPECT_EQ(report.restored, 4u);
    EXPECT_FALSE(report.wal_truncated);
    EXPECT_EQ(service.stats().restored_entries, 4u);
    // The restore may not regress the model epoch below the snapshot's.
    EXPECT_GE(service.modelEpoch(), 4u);

    std::vector<CacheEntry> entries = service.snapshotCache();
    ASSERT_EQ(entries.size(), 3u);
    bool saw_updated_82 = false;
    for (const CacheEntry &entry : entries)
        if (entry.fingerprint.digest == 82) {
            EXPECT_DOUBLE_EQ(entry.ga.best_mhz[1], 1500.0);
            saw_updated_82 = true;
        }
    EXPECT_TRUE(saw_updated_82);

    service.drain();
    std::filesystem::remove_all(dir);
}

TEST(CacheStoreRestore, MissingFilesRestoreNothingCalmly)
{
    std::string dir = freshTempDir("opdvfs_cache_restore_empty");
    ServiceOptions options;
    options.workers = 1;
    StrategyService service(options);
    RestoreReport report = restoreServiceCache(
        service, dir + "/none.snap", dir + "/none.wal");
    EXPECT_FALSE(report.snapshot_loaded);
    EXPECT_EQ(report.restored, 0u);
    service.drain();
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace opdvfs::serve
