#include <gtest/gtest.h>

#include "common/units.h"
#include "npu/power.h"

namespace opdvfs::npu {
namespace {

TEST(PowerCalculator, AicoreIdleMatchesEq12)
{
    AicorePowerParams params;
    PowerCalculator calc(params, UncorePowerParams{});
    double f = 1500.0, v = 0.78;
    double expected =
        params.beta * mhzToHz(f) * v * v + params.theta * v;
    EXPECT_NEAR(calc.aicoreIdlePower(f, v), expected, 1e-12);
}

TEST(PowerCalculator, AicorePowerMatchesEq11)
{
    AicorePowerParams params;
    PowerCalculator calc(params, UncorePowerParams{});
    PowerState state;
    state.f_mhz = 1800.0;
    state.volts = 0.85;
    state.alpha_core = 2e-8;
    state.delta_t = 30.0;
    double fv2 = mhzToHz(state.f_mhz) * state.volts * state.volts;
    double expected = state.alpha_core * fv2 + params.beta * fv2
        + params.gamma * state.delta_t * state.volts
        + params.theta * state.volts;
    EXPECT_NEAR(calc.aicorePower(state), expected, 1e-9);
}

TEST(PowerCalculator, IdleEqualsZeroAlphaZeroDeltaT)
{
    PowerCalculator calc;
    PowerState state;
    state.f_mhz = 1400.0;
    state.volts = 0.69;
    state.alpha_core = 0.0;
    state.delta_t = 0.0;
    EXPECT_NEAR(calc.aicorePower(state),
                calc.aicoreIdlePower(state.f_mhz, state.volts), 1e-12);
}

TEST(PowerCalculator, UncorePower)
{
    UncorePowerParams uncore;
    PowerCalculator calc(AicorePowerParams{}, uncore);
    PowerState state;
    state.uncore_activity = 0.5;
    state.delta_t = 20.0;
    double expected = uncore.idle_watts + 0.5 * uncore.active_watts
        + uncore.gamma * 20.0;
    EXPECT_NEAR(calc.uncorePower(state), expected, 1e-12);
}

TEST(PowerCalculator, UncoreActivityClamped)
{
    PowerCalculator calc;
    PowerState low, high;
    low.uncore_activity = -0.5;
    high.uncore_activity = 2.0;
    PowerState zero, one;
    zero.uncore_activity = 0.0;
    one.uncore_activity = 1.0;
    EXPECT_DOUBLE_EQ(calc.uncorePower(low), calc.uncorePower(zero));
    EXPECT_DOUBLE_EQ(calc.uncorePower(high), calc.uncorePower(one));
}

TEST(PowerCalculator, SocIsSumOfParts)
{
    PowerCalculator calc;
    PowerState state;
    state.alpha_core = 1.5e-8;
    state.uncore_activity = 0.4;
    state.delta_t = 25.0;
    EXPECT_NEAR(calc.socPower(state),
                calc.aicorePower(state) + calc.uncorePower(state), 1e-12);
}

TEST(PowerCalculator, HigherFrequencyMorePower)
{
    PowerCalculator calc;
    PowerState low, high;
    low.f_mhz = 1000.0;
    low.volts = 0.65;
    low.alpha_core = 2e-8;
    high = low;
    high.f_mhz = 1800.0;
    high.volts = 0.85;
    EXPECT_LT(calc.aicorePower(low), calc.aicorePower(high));
}

TEST(PowerCalculator, TemperatureRaisesStaticPower)
{
    PowerCalculator calc;
    PowerState cold, hot;
    hot.delta_t = 40.0;
    EXPECT_LT(calc.aicorePower(cold), calc.aicorePower(hot));
    EXPECT_LT(calc.uncorePower(cold), calc.uncorePower(hot));
}

} // namespace
} // namespace opdvfs::npu
