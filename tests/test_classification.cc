#include <gtest/gtest.h>

#include "dvfs/classification.h"

namespace opdvfs::dvfs {
namespace {

trace::OpRecord
record(npu::OpCategory category)
{
    trace::OpRecord r;
    r.category = category;
    return r;
}

TEST(Classification, NonComputeCategories)
{
    EXPECT_EQ(classify(record(npu::OpCategory::Aicpu)), Bottleneck::Aicpu);
    EXPECT_EQ(classify(record(npu::OpCategory::Communication)),
              Bottleneck::Communication);
    EXPECT_EQ(classify(record(npu::OpCategory::Idle)), Bottleneck::Idle);
}

TEST(Classification, NoPipelineWhenRatiosSumBelowOne)
{
    trace::OpRecord r = record(npu::OpCategory::Compute);
    r.ratios.vector = 0.3;
    r.ratios.mte2 = 0.4;
    EXPECT_EQ(classify(r), Bottleneck::NoPipeline);
}

TEST(Classification, LatencyBoundWhenMaxBelowThreshold)
{
    trace::OpRecord r = record(npu::OpCategory::Compute);
    r.ratios.vector = 0.6;
    r.ratios.mte2 = 0.5;
    r.ratios.mte3 = 0.5;
    EXPECT_EQ(classify(r), Bottleneck::Latency);
}

TEST(Classification, UncoreBoundWhenLdStPipeDominates)
{
    trace::OpRecord r = record(npu::OpCategory::Compute);
    r.ratios.mte2 = 0.95;
    r.ratios.vector = 0.4;
    EXPECT_EQ(classify(r), Bottleneck::Uncore);

    trace::OpRecord st = record(npu::OpCategory::Compute);
    st.ratios.mte3 = 0.9;
    st.ratios.cube = 0.5;
    EXPECT_EQ(classify(st), Bottleneck::Uncore);
}

TEST(Classification, CoreBoundWhenCorePipeDominates)
{
    for (auto setter :
         {+[](npu::PipelineRatios &r) { r.cube = 0.95; },
          +[](npu::PipelineRatios &r) { r.vector = 0.95; },
          +[](npu::PipelineRatios &r) { r.scalar = 0.95; },
          +[](npu::PipelineRatios &r) { r.mte1 = 0.95; }}) {
        trace::OpRecord r = record(npu::OpCategory::Compute);
        setter(r.ratios);
        r.ratios.mte2 = 0.3;
        EXPECT_EQ(classify(r), Bottleneck::Core);
    }
}

TEST(Classification, ThresholdsConfigurable)
{
    trace::OpRecord r = record(npu::OpCategory::Compute);
    r.ratios.cube = 0.85;
    r.ratios.mte2 = 0.4;
    ClassifyOptions strict;
    strict.latency_max_ratio = 0.9;
    EXPECT_EQ(classify(r, strict), Bottleneck::Latency);
    EXPECT_EQ(classify(r), Bottleneck::Core);
}

// Table 1: the frequency-sensitivity partition.
TEST(Classification, SensitivityTable)
{
    EXPECT_TRUE(isFrequencySensitive(Bottleneck::Core));
    EXPECT_TRUE(isFrequencySensitive(Bottleneck::Latency));
    EXPECT_FALSE(isFrequencySensitive(Bottleneck::Uncore));
    EXPECT_FALSE(isFrequencySensitive(Bottleneck::Aicpu));
    EXPECT_FALSE(isFrequencySensitive(Bottleneck::Communication));
    EXPECT_FALSE(isFrequencySensitive(Bottleneck::Idle));
    EXPECT_FALSE(isFrequencySensitive(Bottleneck::NoPipeline));
}

TEST(Classification, NamesAreDistinct)
{
    EXPECT_NE(bottleneckName(Bottleneck::Core),
              bottleneckName(Bottleneck::Uncore));
    EXPECT_FALSE(bottleneckName(Bottleneck::NoPipeline).empty());
}

} // namespace
} // namespace opdvfs::dvfs
