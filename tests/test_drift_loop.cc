/**
 * Closed-loop drift-recovery tests (the ISSUE's acceptance bands):
 * a drift-free run never recalibrates; each injected slow-drift mode
 * (latency ramp, capacitance aging, sensor bias, ambient shift) is
 * detected and recalibrated within a bounded number of iterations; and
 * the post-recalibration residuals return inside the paper's model
 * error bands (4.62% power, 1.96% perf).
 *
 * Every scenario injects a STEP drift (drift_ramp = 0) so the
 * post-confirmation observation window is stationary and the one-shot
 * refit has a well-defined truth to recover.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "calib/drift_loop.h"
#include "dvfs/pipeline.h"
#include "models/transformer.h"
#include "npu/freq_table.h"
#include "power/offline_calibration.h"

namespace opdvfs::calib {
namespace {

// Paper model-error bands the recalibrated loop must return inside.
constexpr double kPowerBand = 0.0462;
constexpr double kPerfBand = 0.0196;

/** Measured iteration the step drift begins at (after anchoring). */
constexpr int kDriftIter = 5;
constexpr int kIterations = 16;
/** Iterations scored for the recovered-residual bands. */
constexpr int kTailIterations = 4;

struct Generated
{
    npu::NpuConfig chip;
    models::Workload workload;
    dvfs::PipelineResult result;
    double baseline = 0.0;
};

/** One pipeline run shared by every scenario (models + baseline). */
const Generated &
generated()
{
    static const Generated value = [] {
        Generated g;
        npu::MemorySystem memory(g.chip.memory);
        models::TransformerConfig model;
        model.name = "drift-test";
        model.layers = 2;
        model.hidden = 2048;
        model.heads = 16;
        model.seq = 512;
        model.batch = 2;
        g.workload = models::buildTransformerTraining(memory, model, 5);

        dvfs::PipelineOptions options;
        options.chip = g.chip;
        options.constants = power::calibrateOffline(g.chip);
        options.warmup_seconds = 2.0;
        options.profile_freqs_mhz = {1000.0, 1800.0};
        // The default 2 ms telemetry period is sized for full-scale
        // workloads; this test iteration is only ~8.5 ms, which would
        // leave nearly every operator below the calibrator's
        // own-sample floor and on coarse pooled alphas.  20 us keeps
        // the per-op power fits sharp so the drift bands measure the
        // drift machinery, not profiling undersampling.
        options.profile_sample_period = kTicksPerMs / 50;
        options.ga.population = 30;
        options.ga.generations = 24;
        g.result = dvfs::EnergyPipeline(options).optimize(g.workload);
        g.baseline = g.result.baseline.iteration_seconds;
        return g;
    }();
    return value;
}

/**
 * Drift loop at the constant maximum frequency (no triggers), guard
 * off so detection and refit accuracy are observable undisturbed by
 * fallback policy — the guard interplay is bench_drift_recovery's and
 * test_guard's territory.  @p thermal_tau_s overrides the package time
 * constant (the ambient scenario needs the die to track its new
 * environment within the short simulated run).
 */
DriftLoopResult
runLoop(const npu::FaultPlan &faults, double thermal_tau_s = 0.0)
{
    const Generated &g = generated();
    npu::NpuConfig chip = g.chip;
    chip.faults = faults;
    if (thermal_tau_s > 0.0)
        chip.thermal.time_constant_s = thermal_tau_s;

    DriftLoopOptions options;
    options.iterations = kIterations;
    options.guard.enabled = false;
    options.run.initial_mhz = npu::FreqTable(g.chip.freq).maxMhz();
    options.run.warmup_seconds = 3.0 * g.baseline;
    // Dense telemetry (~256 samples per iteration): sparse sampling
    // aliases onto the same phase of the same operators every
    // iteration, and an operator's instantaneous power at one phase
    // can sit tens of percent from the op-average its alpha models.
    // Dense sampling makes each iteration's residual mean converge to
    // the model-level bias the bands are about.
    options.run.sample_period =
        std::max<Tick>(1, secondsToTicks(g.baseline / 256.0));
    options.run.seed = 17;
    // Same dead zones as the recovery bench: wide enough to ignore
    // post-refit systematic bias, far under the injected 8-12% steps.
    options.tracker.time.slack = 0.02;
    options.tracker.power.slack = 0.03;
    // Thermal observations arrive once per iteration; a 16-iteration
    // run cannot wait for the default 8 before refitting.
    options.recalibrator.min_thermal_samples = 4;

    power::PowerModel power_model(g.result.constants,
                                  npu::FreqTable(g.chip.freq));
    return runDriftLoop(chip, g.workload, g.result.perf_models,
                        power_model, g.result.op_power, {}, g.baseline,
                        options);
}

/** FaultPlan stepping to full drift at measured iteration kDriftIter. */
npu::FaultPlan
stepPlanAt(double warmup_seconds)
{
    npu::FaultPlan plan;
    plan.drift_start = secondsToTicks(
        warmup_seconds + kDriftIter * generated().baseline);
    plan.drift_ramp = 0; // step
    return plan;
}

npu::FaultPlan
stepPlan()
{
    return stepPlanAt(3.0 * generated().baseline);
}

int
firstRecalibratedIteration(const DriftLoopResult &result)
{
    for (std::size_t i = 0; i < result.iterations.size(); ++i)
        if (result.iterations[i].recalibrated)
            return static_cast<int>(i);
    return -1;
}

// The bands score the signed residual means (systematic model bias):
// that is what drift moves and recalibration must pull back.

double
tailMeanTimeResidual(const DriftLoopResult &result)
{
    double sum = 0.0;
    for (int i = kIterations - kTailIterations; i < kIterations; ++i)
        sum += std::abs(result.iterations[i].mean_time_residual);
    return sum / kTailIterations;
}

double
tailMeanPowerResidual(const DriftLoopResult &result)
{
    double sum = 0.0;
    for (int i = kIterations - kTailIterations; i < kIterations; ++i)
        sum += std::abs(result.iterations[i].mean_power_residual);
    return sum / kTailIterations;
}

double
tailMeanThermalResidual(const DriftLoopResult &result)
{
    double sum = 0.0;
    for (int i = kIterations - kTailIterations; i < kIterations; ++i)
        sum += std::abs(result.iterations[i].mean_thermal_residual);
    return sum / kTailIterations;
}

TEST(DriftLoop, GoldenPathNeverRecalibrates)
{
    DriftLoopResult result = runLoop({});
    EXPECT_EQ(result.recalibrations(), 0u);
    EXPECT_EQ(result.watchdog.confirmations, 0u);
    EXPECT_DOUBLE_EQ(result.patch.time_scale_global, 1.0);
    EXPECT_DOUBLE_EQ(result.patch.power_dynamic_scale, 1.0);
    EXPECT_FALSE(result.patch.thermal_updated);
    // The drift-free loop already sits inside both error bands.
    EXPECT_LT(tailMeanTimeResidual(result), kPerfBand);
    EXPECT_LT(tailMeanPowerResidual(result), kPowerBand);
}

TEST(DriftLoop, LatencyDriftDetectedAndRefitIntoPerfBand)
{
    npu::FaultPlan plan = stepPlan();
    plan.latency_drift = 0.08;
    DriftLoopResult result = runLoop(plan);

    ASSERT_GE(result.recalibrations(), 1u);
    int recal = firstRecalibratedIteration(result);
    ASSERT_GE(recal, kDriftIter);
    // Detection + confirmation + a fresh window, all within budget.
    EXPECT_LE(recal, kDriftIter + 7);

    // The refit recovered the injected 8% duration scale.
    EXPECT_NEAR(result.patch.time_scale_global, 1.08, 0.02);
    EXPECT_NEAR(result.final_baseline_seconds,
                generated().baseline * result.patch.time_scale_global,
                1e-12);
    EXPECT_LT(tailMeanTimeResidual(result), kPerfBand);
}

TEST(DriftLoop, AgingDriftDetectedAndRefitIntoPowerBand)
{
    npu::FaultPlan plan = stepPlan();
    plan.aging_dynamic_drift = 0.12;
    DriftLoopResult result = runLoop(plan);

    ASSERT_GE(result.recalibrations(), 1u);
    int recal = firstRecalibratedIteration(result);
    ASSERT_GE(recal, kDriftIter);
    EXPECT_LE(recal, kDriftIter + 7);

    // Capacitance aging lands on the dynamic-power scale, not on the
    // perf model.
    EXPECT_GT(result.patch.power_dynamic_scale, 1.04);
    EXPECT_LT(result.patch.power_dynamic_scale, 1.20);
    EXPECT_DOUBLE_EQ(result.patch.time_scale_global, 1.0);
    EXPECT_LT(tailMeanPowerResidual(result), kPowerBand);
}

TEST(DriftLoop, SensorBiasDetectedAndAbsorbed)
{
    npu::FaultPlan plan = stepPlan();
    plan.sensor_bias_watts = 4.0;
    DriftLoopResult result = runLoop(plan);

    ASSERT_GE(result.recalibrations(), 1u);
    int recal = firstRecalibratedIteration(result);
    ASSERT_GE(recal, kDriftIter);
    EXPECT_LE(recal, kDriftIter + 7);

    // A constant telemetry offset belongs in the static-bias term (the
    // scale may soak up a little of it at a single frequency point).
    EXPECT_GT(result.patch.power_static_bias_w
                  + 40.0 * (result.patch.power_dynamic_scale - 1.0),
              1.0);
    EXPECT_LT(tailMeanPowerResidual(result), kPowerBand);
}

TEST(DriftLoop, AmbientDriftRefitsTheThermalModel)
{
    npu::FaultPlan plan = stepPlan();
    plan.ambient_drift_celsius = 8.0;
    // Short package time constant: the die reaches its new equilibrium
    // within an iteration, so the 16-iteration run sees the full step.
    DriftLoopResult result = runLoop(plan, /*thermal_tau_s=*/1e-4);

    ASSERT_GE(result.recalibrations(), 1u);
    ASSERT_TRUE(result.patch.thermal_updated);
    // The refit line must pass through the new operating point: the
    // tail temperature bias returns inside the tracker's dead zone.
    // (k and ambient individually are weakly identified from a
    // near-constant-power window; their combination is what matters.)
    EXPECT_LT(tailMeanThermalResidual(result), 2.0);
}

TEST(DriftLoop, RejectsMalformedOptions)
{
    const Generated &g = generated();
    power::PowerModel power_model(g.result.constants,
                                  npu::FreqTable(g.chip.freq));
    DriftLoopOptions zero_iters;
    zero_iters.iterations = 0;
    EXPECT_THROW(runDriftLoop(g.chip, g.workload, g.result.perf_models,
                              power_model, g.result.op_power, {},
                              g.baseline, zero_iters),
                 std::invalid_argument);

    DriftLoopOptions bad_hold;
    bad_hold.hold_iterations = 0;
    EXPECT_THROW(runDriftLoop(g.chip, g.workload, g.result.perf_models,
                              power_model, g.result.op_power, {},
                              g.baseline, bad_hold),
                 std::invalid_argument);

    DriftLoopOptions ok;
    std::vector<trace::SetFreqTrigger> out_of_range{
        {g.workload.iteration.size(), 1000.0}};
    EXPECT_THROW(runDriftLoop(g.chip, g.workload, g.result.perf_models,
                              power_model, g.result.op_power,
                              out_of_range, g.baseline, ok),
                 std::invalid_argument);
}

} // namespace
} // namespace opdvfs::calib
