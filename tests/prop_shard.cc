/**
 * @file
 * Property suite over the consistent-hash shard ring and the shard
 * map codec:
 *
 *  - joining a shard only moves keys *to* the joiner, and the moved
 *    fraction is bounded near the ideal 1/(N+1) share;
 *  - leaving only moves the leaver's keys (every other assignment is
 *    untouched), so churn is confined to the departing shard's share;
 *  - ownership is a pure function of membership: insertion order
 *    never matters, and repeated lookups agree;
 *  - the text codec round-trips: decode(encode(m)) compares equal and
 *    routes every sampled digest exactly as m does (this is what
 *    makes a NotOwner-carried map trustworthy across processes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "check/generators.h"
#include "check/prop.h"
#include "shard/ring.h"
#include "shard/shard_map.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/** A membership plus sampled digests to route. */
struct RingCase
{
    std::vector<shard::ShardInfo> shards;
    std::size_t vnodes = shard::ShardMap::kDefaultVnodes;
    std::vector<std::uint64_t> digests;
};

RingCase
genRingCase(Rng &rng, std::int64_t min_shards)
{
    RingCase rc;
    std::int64_t count = rng.uniformInt(min_shards, 8);
    for (std::int64_t at = 0; at < count; ++at) {
        // Sparse, unordered ids: ownership must not depend on them
        // being dense or sorted.
        std::uint32_t id =
            static_cast<std::uint32_t>(1 + at * 7 + rng.uniformInt(0, 5));
        rc.shards.push_back(
            {id, "10.0.0." + std::to_string(at + 1) + ":"
                     + std::to_string(9000 + id)});
    }
    rc.vnodes = static_cast<std::size_t>(rng.uniformInt(32, 128));
    std::size_t samples = static_cast<std::size_t>(rng.uniformInt(256, 1024));
    for (std::size_t at = 0; at < samples; ++at)
        rc.digests.push_back(
            (static_cast<std::uint64_t>(rng.uniformInt(0, 0x7FFFFFFF)) << 32)
            | static_cast<std::uint64_t>(rng.uniformInt(0, 0xFFFFFFFF)));
    return rc;
}

std::string
printRingCase(const RingCase &rc)
{
    std::ostringstream os;
    os << rc.shards.size() << " shards, vnodes " << rc.vnodes << ", "
       << rc.digests.size() << " digests; ids:";
    for (const auto &info : rc.shards)
        os << ' ' << info.id;
    return os.str();
}

TEST(PropShard, JoinMovesKeysOnlyToTheJoinerAndBounded)
{
    Property<RingCase> prop(
        "shard-join-movement",
        [](Rng &rng) { return genRingCase(rng, 1); },
        [](const RingCase &rc) -> std::optional<std::string> {
            shard::ShardMap before(rc.shards, rc.vnodes);
            shard::ShardMap after = before;
            // An id guaranteed fresh: genRingCase ids stay under 64.
            shard::ShardInfo joiner{1000, "10.0.9.9:9999"};
            after.join(joiner);

            std::size_t moved = 0;
            for (std::uint64_t digest : rc.digests) {
                std::uint32_t was = before.ownerOf(digest).id;
                std::uint32_t now = after.ownerOf(digest).id;
                if (was == now)
                    continue;
                if (now != joiner.id)
                    return "a key moved between pre-existing shards "
                           "on join";
                ++moved;
            }
            // Ideal share is 1/(N+1); vnode placement is random-ish,
            // so allow a generous factor before calling it unbalanced.
            double share = static_cast<double>(moved)
                           / static_cast<double>(rc.digests.size());
            double ideal = 1.0 / static_cast<double>(rc.shards.size() + 1);
            if (share > std::min(1.0, 3.5 * ideal + 0.05)) {
                std::ostringstream os;
                os << "join moved " << share << " of keys; ideal share "
                   << ideal;
                return os.str();
            }
            return std::nullopt;
        });
    prop.withPrinter(printRingCase);
    PropResult result = prop.check();
    EXPECT_TRUE(result.passed) << result.report();
}

TEST(PropShard, LeaveMovesOnlyTheLeaversKeys)
{
    Property<RingCase> prop(
        "shard-leave-movement",
        [](Rng &rng) { return genRingCase(rng, 2); },
        [](const RingCase &rc) -> std::optional<std::string> {
            shard::ShardMap before(rc.shards, rc.vnodes);
            std::uint32_t leaver = rc.shards.front().id;
            shard::ShardMap after = before;
            after.leave(leaver);

            for (std::uint64_t digest : rc.digests) {
                std::uint32_t was = before.ownerOf(digest).id;
                std::uint32_t now = after.ownerOf(digest).id;
                if (was == leaver) {
                    if (now == leaver)
                        return "the departed shard still owns a key";
                } else if (was != now) {
                    return "a key not owned by the leaver moved on "
                           "leave";
                }
            }
            return std::nullopt;
        });
    prop.withPrinter(printRingCase);
    PropResult result = prop.check();
    EXPECT_TRUE(result.passed) << result.report();
}

TEST(PropShard, OwnershipIsInsertionOrderIndependent)
{
    Property<RingCase> prop(
        "shard-order-independent",
        [](Rng &rng) { return genRingCase(rng, 2); },
        [](const RingCase &rc) -> std::optional<std::string> {
            shard::ShardMap forward(rc.shards, rc.vnodes);
            std::vector<shard::ShardInfo> reversed(rc.shards.rbegin(),
                                                   rc.shards.rend());
            shard::ShardMap backward(reversed, rc.vnodes);
            for (std::uint64_t digest : rc.digests) {
                if (forward.ownerOf(digest).id
                    != backward.ownerOf(digest).id)
                    return "insertion order changed an owner";
            }
            return std::nullopt;
        });
    prop.withPrinter(printRingCase);
    PropResult result = prop.check();
    EXPECT_TRUE(result.passed) << result.report();
}

TEST(PropShard, CodecRoundTripPreservesRoutingAndEquality)
{
    Property<RingCase> prop(
        "shard-codec-round-trip",
        [](Rng &rng) { return genRingCase(rng, 1); },
        [](const RingCase &rc) -> std::optional<std::string> {
            shard::ShardMap original(rc.shards, rc.vnodes);
            shard::ShardMap decoded =
                shard::ShardMap::decode(original.encode());
            if (!(decoded == original))
                return "decode(encode(m)) != m";
            if (decoded.encode() != original.encode())
                return "re-encoding is not byte-stable";
            for (std::uint64_t digest : rc.digests)
                if (original.ownerOf(digest).id
                    != decoded.ownerOf(digest).id)
                    return "decoded map routes a digest differently";
            return std::nullopt;
        });
    prop.withPrinter(printRingCase);
    PropResult result = prop.check();
    EXPECT_TRUE(result.passed) << result.report();
}

} // namespace
