#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/random.h"
#include "math/curve_fit.h"

namespace opdvfs::math {
namespace {

std::vector<double>
linspace(double lo, double hi, int n)
{
    std::vector<double> out;
    for (int i = 0; i < n; ++i)
        out.push_back(lo + (hi - lo) * i / (n - 1));
    return out;
}

TEST(CurveFit, RecoversQuadratic)
{
    CurveModel model = [](double x, const std::vector<double> &p) {
        return p[0] * x * x + p[1] * x + p[2];
    };
    auto xs = linspace(-2.0, 2.0, 9);
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 * x * x - 1.5 * x + 0.25);

    auto result = curveFit(model, xs, ys, {1.0, 1.0, 1.0});
    EXPECT_NEAR(result.params[0], 3.0, 1e-5);
    EXPECT_NEAR(result.params[1], -1.5, 1e-5);
    EXPECT_NEAR(result.params[2], 0.25, 1e-5);
    EXPECT_LT(result.sse, 1e-10);
}

TEST(CurveFit, RecoversExponential)
{
    CurveModel model = [](double x, const std::vector<double> &p) {
        return p[0] * std::exp(p[1] * x) + p[2];
    };
    auto xs = linspace(0.0, 2.0, 11);
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.0 * std::exp(0.8 * x) + 0.5);

    auto result = curveFit(model, xs, ys, {1.0, 0.5, 0.0});
    EXPECT_NEAR(result.params[0], 2.0, 1e-3);
    EXPECT_NEAR(result.params[1], 0.8, 1e-3);
    EXPECT_NEAR(result.params[2], 0.5, 1e-2);
}

TEST(CurveFit, RespectsBounds)
{
    CurveModel model = [](double x, const std::vector<double> &p) {
        return p[0] * std::exp(p[1] * x);
    };
    auto xs = linspace(0.0, 1.0, 8);
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(std::exp(20.0 * x)); // would need b = 20

    CurveFitOptions options;
    options.lower_bounds = {-1e9, 0.0};
    options.upper_bounds = {1e9, 10.0};
    auto result = curveFit(model, xs, ys, {1.0, 5.0}, options);
    EXPECT_LE(result.params[1], 10.0 + 1e-12);
}

TEST(CurveFit, NoisyDataStillClose)
{
    CurveModel model = [](double x, const std::vector<double> &p) {
        return p[0] * x + p[1];
    };
    opdvfs::Rng rng(99);
    auto xs = linspace(0.0, 10.0, 50);
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(4.0 * x + 2.0 + rng.gaussian(0.0, 0.05));
    auto result = curveFit(model, xs, ys, {0.0, 0.0});
    EXPECT_NEAR(result.params[0], 4.0, 0.05);
    EXPECT_NEAR(result.params[1], 2.0, 0.2);
}

TEST(CurveFit, InputValidation)
{
    CurveModel model = [](double, const std::vector<double> &p) {
        return p[0];
    };
    EXPECT_THROW(curveFit(model, {1.0}, {1.0, 2.0}, {0.0}),
                 std::invalid_argument);
    EXPECT_THROW(curveFit(model, {}, {}, {}), std::invalid_argument);
    // Underdetermined: 1 sample, 2 params.
    CurveModel model2 = [](double x, const std::vector<double> &p) {
        return p[0] * x + p[1];
    };
    EXPECT_THROW(curveFit(model2, {1.0}, {1.0}, {0.0, 0.0}),
                 std::invalid_argument);
}

TEST(CurveFit, ReportsConvergence)
{
    CurveModel model = [](double x, const std::vector<double> &p) {
        return p[0] * x;
    };
    auto result = curveFit(model, {1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, {1.9});
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.iterations, 0);
}

} // namespace
} // namespace opdvfs::math
