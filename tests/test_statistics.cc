#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/statistics.h"

namespace opdvfs::stats {
namespace {

TEST(Statistics, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Statistics, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    // Population stddev of {2, 4} is 1.
    EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), 1.0);
}

TEST(Statistics, QuantileInterpolates)
{
    std::vector<double> xs = {3.0, 1.0, 2.0}; // unsorted on purpose
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.5);
}

TEST(Statistics, QuantileEdgeCases)
{
    EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(quantile({7.0}, 0.99), 7.0);
    // Out-of-range q clamps.
    EXPECT_DOUBLE_EQ(quantile({1.0, 2.0}, 2.0), 2.0);
}

TEST(Statistics, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(90.0, 100.0), 0.1);
    EXPECT_THROW(relativeError(1.0, 0.0), std::invalid_argument);
}

TEST(Statistics, Mape)
{
    EXPECT_DOUBLE_EQ(mape({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(mape({110.0, 90.0}, {100.0, 100.0}), 0.1);
    EXPECT_THROW(mape({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Statistics, CdfAt)
{
    std::vector<double> samples = {0.1, 0.2, 0.3, 0.4};
    auto cdf = cdfAt(samples, {0.0, 0.2, 0.25, 1.0});
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.5);
    EXPECT_DOUBLE_EQ(cdf[2], 0.5);
    EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(Statistics, BucketFractionsTableTwoStyle)
{
    // The Table 2 buckets: (0,1%], (1%,5%], (5%,10%], (10%, inf).
    std::vector<double> errors = {0.005, 0.02, 0.03, 0.07, 0.5};
    auto buckets = bucketFractions(errors, {0.01, 0.05, 0.10});
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_DOUBLE_EQ(buckets[0], 0.2);
    EXPECT_DOUBLE_EQ(buckets[1], 0.4);
    EXPECT_DOUBLE_EQ(buckets[2], 0.2);
    EXPECT_DOUBLE_EQ(buckets[3], 0.2);
    double total = buckets[0] + buckets[1] + buckets[2] + buckets[3];
    EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(Statistics, FitLineRecoversSlope)
{
    std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> y = {2.5, 4.5, 6.5, 8.5}; // y = 2x + 0.5
    auto fit = fitLine(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 0.5, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Statistics, FitLineErrors)
{
    EXPECT_THROW(fitLine({1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(fitLine({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Statistics, Accumulator)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.add(2.0);
    acc.add(-1.0);
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.min(), -1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

} // namespace
} // namespace opdvfs::stats
