/**
 * Integration tests across the DVFS stack: evaluator, genetic search,
 * executor planning, and the end-to-end pipeline, all on one small
 * profiled transformer.
 */

#include <gtest/gtest.h>

#include <map>

#include "dvfs/evaluator.h"
#include "dvfs/executor.h"
#include "dvfs/genetic.h"
#include "dvfs/pareto.h"
#include "dvfs/pipeline.h"
#include "models/transformer.h"
#include "power/offline_calibration.h"
#include "power/online_calibration.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {
namespace {

struct Harness
{
    npu::NpuConfig config;
    npu::FreqTable table{npu::FreqTableConfig{}};
    models::Workload workload;
    power::CalibratedConstants constants;
    std::map<double, trace::RunResult> runs;
    perf::PerfModelRepository perf_repo;
    std::unordered_map<std::uint64_t, power::OpPowerModel> op_power;
    PreprocessResult prep;

    Harness()
    {
        npu::MemorySystem memory(config.memory);
        models::TransformerConfig model;
        model.name = "itest";
        model.layers = 4;
        model.hidden = 2048;
        model.heads = 16;
        model.seq = 1024;
        model.batch = 2;
        model.tp_allreduce = true;
        model.tensor_parallel = 2;
        workload = models::buildTransformerTraining(memory, model, 77);

        constants = power::calibrateOffline(config);
        power::PowerModel power_model(constants, table);
        power::OnlinePowerCalibrator online(power_model);

        trace::WorkloadRunner runner(config);
        for (double f : {1000.0, 1400.0, 1800.0}) {
            trace::RunOptions options;
            options.initial_mhz = f;
            options.warmup_seconds = 5.0;
            options.sample_period = kTicksPerMs;
            options.seed = 900 + static_cast<std::uint64_t>(f);
            runs[f] = runner.run(workload, options);
            perf_repo.addProfile(f, runs[f].records);
            online.addRun(runs[f]);
        }
        perf::PerfBuildOptions perf_options;
        perf_options.kind = perf::FitFunction::PwlCycles;
        perf_repo.fitAll(perf_options);
        op_power = online.perOpModels();
        prep = preprocess(runs[1800.0].records, {});
    }

    power::PowerModel
    powerModel() const
    {
        return power::PowerModel(constants, table);
    }
};

Harness &
harness()
{
    static Harness instance;
    return instance;
}

TEST(StageEvaluator, BaselinePredictionMatchesMeasurement)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    StrategyEvaluation baseline = evaluator.evaluateBaseline();
    double measured = h.runs[1800.0].iteration_seconds;
    EXPECT_NEAR(baseline.seconds, measured, 0.03 * measured);
    EXPECT_NEAR(baseline.aicore_watts, h.runs[1800.0].aicore_avg_w,
                0.15 * h.runs[1800.0].aicore_avg_w);
}

TEST(StageEvaluator, LoweringAStageNeverSpeedsUp)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    std::vector<std::uint8_t> genome(
        evaluator.stageCount(),
        static_cast<std::uint8_t>(evaluator.freqCount() - 1));
    StrategyEvaluation baseline = evaluator.evaluate(genome);
    for (std::size_t s = 0; s < evaluator.stageCount();
         s += std::max<std::size_t>(1, evaluator.stageCount() / 20)) {
        auto modified = genome;
        modified[s] = 0;
        StrategyEvaluation lowered = evaluator.evaluate(modified);
        EXPECT_GE(lowered.seconds, baseline.seconds * (1.0 - 1e-9));
    }
}

TEST(StageEvaluator, AllLowUsesLessAicorePowerThanAllHigh)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    std::vector<std::uint8_t> low(evaluator.stageCount(), 0);
    StrategyEvaluation low_eval = evaluator.evaluate(low);
    StrategyEvaluation high_eval = evaluator.evaluateBaseline();
    EXPECT_LT(low_eval.aicore_watts, high_eval.aicore_watts);
    EXPECT_GT(low_eval.seconds, high_eval.seconds);
}

TEST(StageEvaluator, GenomeLengthValidated)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    std::vector<std::uint8_t> wrong(evaluator.stageCount() + 1, 0);
    EXPECT_THROW(evaluator.evaluate(wrong), std::invalid_argument);
}

TEST(GeneticSearch, FindsStrategyBeatingBaselineScore)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions options;
    options.population = 60;
    options.generations = 60;
    options.perf_loss_target = 0.05;
    GaResult result = searchStrategy(evaluator, h.prep.stages, options);

    double per_lb = (1e-6 / result.baseline_eval.seconds) * 0.95;
    double baseline_score = strategyScore(result.baseline_eval, per_lb);
    EXPECT_GT(result.best_score, baseline_score);
    // Within the loss bound (model-predicted).
    EXPECT_LE(result.best_eval.seconds,
              result.baseline_eval.seconds * 1.051);
    // And it actually saves power.
    EXPECT_LT(result.best_eval.aicore_watts,
              result.baseline_eval.aicore_watts);
}

TEST(GeneticSearch, ScoreHistoryMonotone)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions options;
    options.population = 40;
    options.generations = 40;
    GaResult result = searchStrategy(evaluator, h.prep.stages, options);
    ASSERT_EQ(result.score_history.size(), 40u);
    for (std::size_t i = 1; i < result.score_history.size(); ++i)
        EXPECT_GE(result.score_history[i], result.score_history[i - 1]);
    EXPECT_GE(result.best_score, result.pre_refine_score);
}

TEST(GeneticSearch, DeterministicBySeed)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions options;
    options.population = 30;
    options.generations = 20;
    options.seed = 5;
    GaResult a = searchStrategy(evaluator, h.prep.stages, options);
    GaResult b = searchStrategy(evaluator, h.prep.stages, options);
    EXPECT_EQ(a.best_genome, b.best_genome);
    EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
}

TEST(GeneticSearch, ParallelFitnessMatchesSerialBitExactly)
{
    // The determinism contract behind service-side parallel scoring:
    // evaluation order must not affect selection, so any parallel_for
    // (even a reversed one) reproduces the serial search exactly.
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions options;
    options.population = 30;
    options.generations = 20;
    options.seed = 5;
    GaResult serial = searchStrategy(evaluator, h.prep.stages, options);

    GaOptions reversed = options;
    reversed.parallel_for = [](std::size_t count,
                               const std::function<void(std::size_t)> &fn) {
        for (std::size_t i = count; i-- > 0;)
            fn(i);
    };
    GaResult backwards = searchStrategy(evaluator, h.prep.stages, reversed);
    EXPECT_EQ(backwards.best_genome, serial.best_genome);
    EXPECT_DOUBLE_EQ(backwards.best_score, serial.best_score);
    EXPECT_EQ(backwards.score_history, serial.score_history);
    EXPECT_EQ(backwards.converged_at, serial.converged_at);
}

TEST(GeneticSearch, PriorIndividualSeedsThePopulation)
{
    // A warm-start prior at least as good as the cold search's answer
    // must never be lost: elitism keeps it, so the warm result scores
    // no worse from generation zero.
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions cold;
    cold.population = 30;
    cold.generations = 20;
    cold.seed = 5;
    GaResult donor = searchStrategy(evaluator, h.prep.stages, cold);

    GaOptions warm = cold;
    warm.generations = 4;
    warm.prior_individuals.push_back(donor.best_mhz);
    GaResult warmed = searchStrategy(evaluator, h.prep.stages, warm);
    EXPECT_GE(warmed.best_score, donor.pre_refine_score * (1.0 - 1e-12));
    // ...and at a fraction of the cold budget.
    ASSERT_EQ(warmed.score_history.size(), 4u);
    EXPECT_GE(warmed.score_history.front(),
              donor.pre_refine_score * (1.0 - 1e-12));
}

TEST(GeneticSearch, PriorWithDifferentStageCountIsResampled)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions options;
    options.population = 20;
    options.generations = 4;
    // A short prior (e.g. from a donor workload with fewer stages)
    // stretches across the genome instead of being rejected.
    options.prior_individuals.push_back({1000.0, 1800.0});
    GaResult result = searchStrategy(evaluator, h.prep.stages, options);
    EXPECT_FALSE(result.best_mhz.empty());

    GaOptions empty_prior = options;
    empty_prior.prior_individuals = {{}};
    EXPECT_THROW(searchStrategy(evaluator, h.prep.stages, empty_prior),
                 std::invalid_argument);
}

TEST(GeneticSearch, TighterTargetAllowsLessSlowdown)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions tight, loose;
    tight.population = loose.population = 60;
    tight.generations = loose.generations = 80;
    tight.perf_loss_target = 0.02;
    loose.perf_loss_target = 0.10;
    GaResult t = searchStrategy(evaluator, h.prep.stages, tight);
    GaResult l = searchStrategy(evaluator, h.prep.stages, loose);
    EXPECT_LE(t.best_eval.seconds, l.best_eval.seconds + 1e-9);
    EXPECT_GE(t.best_eval.aicore_watts, l.best_eval.aicore_watts - 1e-9);
}

TEST(ParetoSweep, FrontierIsMonotone)
{
    Harness &h = harness();
    power::PowerModel pm = h.powerModel();
    StageEvaluator evaluator(h.prep.stages, h.perf_repo, pm, h.op_power,
                             h.table);
    GaOptions options;
    options.population = 50;
    options.generations = 60;
    auto frontier = sweepParetoFrontier(
        evaluator, h.prep.stages, {0.02, 0.05, 0.10}, options);
    ASSERT_EQ(frontier.size(), 3u);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const auto &point = frontier[i];
        EXPECT_LE(point.predicted_loss,
                  point.perf_loss_target + 1e-9);
        EXPECT_EQ(point.mhz_per_stage.size(), h.prep.stages.size());
        if (i > 0) {
            EXPECT_GE(point.predicted_aicore_reduction,
                      frontier[i - 1].predicted_aicore_reduction - 1e-9);
        }
    }
    EXPECT_THROW(sweepParetoFrontier(evaluator, h.prep.stages, {}, options),
                 std::invalid_argument);
}

TEST(Executor, TriggersPlacedOneLatencyBeforeBoundaries)
{
    // Synthetic timeline: 30 contiguous 1 ms ops, three 10 ms stages.
    std::vector<trace::OpRecord> records;
    for (std::uint64_t i = 0; i < 30; ++i) {
        trace::OpRecord r;
        r.op_id = i;
        r.start = static_cast<Tick>(i) * kTicksPerMs;
        r.end = r.start + kTicksPerMs;
        records.push_back(r);
    }
    std::vector<Stage> stages(3);
    for (int s = 0; s < 3; ++s) {
        stages[static_cast<std::size_t>(s)].start = s * 10 * kTicksPerMs;
        stages[static_cast<std::size_t>(s)].duration = 10 * kTicksPerMs;
    }
    std::vector<double> mhz = {1800.0, 1200.0, 1800.0};

    ExecutionPlan plan = planExecution(stages, mhz, records, {});
    ASSERT_EQ(plan.triggers.size(), 2u);
    EXPECT_DOUBLE_EQ(plan.initial_mhz, 1800.0);

    // Stage 1 starts at 10 ms; with 1 ms SetFreq latency the trigger
    // is the op finishing at 9 ms, i.e. op 8.
    EXPECT_EQ(plan.triggers[0].after_op_index, 8u);
    EXPECT_DOUBLE_EQ(plan.triggers[0].mhz, 1200.0);
    // Stage 2 starts at 20 ms: trigger is op 18.
    EXPECT_EQ(plan.triggers[1].after_op_index, 18u);
    EXPECT_DOUBLE_EQ(plan.triggers[1].mhz, 1800.0);
}

TEST(Executor, UniformStrategyNeedsNoTriggers)
{
    Harness &h = harness();
    std::vector<double> mhz(h.prep.stages.size(), 1500.0);
    ExecutionPlan plan =
        planExecution(h.prep.stages, mhz, h.runs[1800.0].records, {});
    EXPECT_TRUE(plan.triggers.empty());
    EXPECT_DOUBLE_EQ(plan.initial_mhz, 1500.0);
}

TEST(Executor, CyclicWrapTriggerRestoresStageZeroFrequency)
{
    Harness &h = harness();
    std::vector<double> mhz(h.prep.stages.size(), 1300.0);
    mhz.back() = 1800.0;
    ExecutionPlan plan =
        planExecution(h.prep.stages, mhz, h.runs[1800.0].records, {});
    ASSERT_FALSE(plan.triggers.empty());
    EXPECT_DOUBLE_EQ(plan.triggers.back().mhz, 1300.0);
    EXPECT_DOUBLE_EQ(plan.initial_mhz, 1300.0);
}

TEST(Executor, OversizedLatencySnapsToEarliestValidTrigger)
{
    // Same synthetic timeline as above, but the assumed SetFreq
    // latency (14 ms, V100-class) exceeds the time before the first
    // boundary: the dispatch tick underflows past the iteration start.
    std::vector<trace::OpRecord> records;
    for (std::uint64_t i = 0; i < 30; ++i) {
        trace::OpRecord r;
        r.op_id = i;
        r.start = static_cast<Tick>(i) * kTicksPerMs;
        r.end = r.start + kTicksPerMs;
        records.push_back(r);
    }
    std::vector<Stage> stages(3);
    for (int s = 0; s < 3; ++s) {
        stages[static_cast<std::size_t>(s)].start = s * 10 * kTicksPerMs;
        stages[static_cast<std::size_t>(s)].duration = 10 * kTicksPerMs;
    }
    std::vector<double> mhz = {1800.0, 1200.0, 1800.0};

    ExecutorOptions slow;
    slow.assumed_set_freq_latency = 14 * kTicksPerMs;
    ExecutionPlan plan = planExecution(stages, mhz, records, slow);

    // Stage 1's dispatch point (10 ms - 14 ms) precedes every
    // completion: snap to the earliest valid trigger, op 0.
    ASSERT_EQ(plan.triggers.size(), 2u);
    EXPECT_EQ(plan.triggers[0].after_op_index, 0u);
    // Stage 2's (20 ms - 14 ms = 6 ms) resolves normally to op 5.
    EXPECT_EQ(plan.triggers[1].after_op_index, 5u);
}

TEST(Executor, TriggersStayInDispatchOrderWhenLatencyCompresses)
{
    // A latency longer than any stage pushes every dispatch point to
    // the front; the min_pos floor must keep the trigger sequence
    // monotone (including the cyclic wrap) instead of reordering
    // SetFreqs.
    std::vector<trace::OpRecord> records;
    for (std::uint64_t i = 0; i < 6; ++i) {
        trace::OpRecord r;
        r.op_id = i;
        r.start = static_cast<Tick>(i) * kTicksPerMs;
        r.end = r.start + kTicksPerMs;
        records.push_back(r);
    }
    std::vector<Stage> stages(3);
    for (int s = 0; s < 3; ++s) {
        stages[static_cast<std::size_t>(s)].start = s * 2 * kTicksPerMs;
        stages[static_cast<std::size_t>(s)].duration = 2 * kTicksPerMs;
    }
    std::vector<double> mhz = {1800.0, 1200.0, 1500.0};

    ExecutorOptions slow;
    slow.assumed_set_freq_latency = 20 * kTicksPerMs;
    ExecutionPlan plan = planExecution(stages, mhz, records, slow);

    // Two interior changes plus the cyclic wrap back to 1800.
    ASSERT_EQ(plan.triggers.size(), 3u);
    EXPECT_DOUBLE_EQ(plan.triggers.back().mhz, 1800.0);
    for (std::size_t t = 1; t < plan.triggers.size(); ++t) {
        EXPECT_GE(plan.triggers[t].after_op_index,
                  plan.triggers[t - 1].after_op_index);
    }
}

TEST(Executor, Validation)
{
    Harness &h = harness();
    std::vector<double> wrong(h.prep.stages.size() + 1, 1800.0);
    EXPECT_THROW(
        planExecution(h.prep.stages, wrong, h.runs[1800.0].records, {}),
        std::invalid_argument);
    std::vector<double> right(h.prep.stages.size(), 1800.0);
    EXPECT_THROW(planExecution(h.prep.stages, right, {}, {}),
                 std::invalid_argument);
}

TEST(EnergyPipeline, EndToEndReducesPowerWithinLossTarget)
{
    Harness &h = harness();
    PipelineOptions options;
    options.chip = h.config;
    options.perf_loss_target = 0.04;
    options.constants = h.constants; // reuse offline pass
    options.warmup_seconds = 5.0;
    options.ga.population = 80;
    options.ga.generations = 120;
    options.fit_kind = perf::FitFunction::PwlCycles;
    options.profile_freqs_mhz = {1000.0, 1400.0, 1800.0};

    EnergyPipeline pipeline(options);
    PipelineResult result = pipeline.optimize(h.workload);

    EXPECT_GT(result.aicoreReduction(), 0.03);
    EXPECT_GT(result.socReduction(), 0.0);
    // Allow modelling slack over the target.
    EXPECT_LT(result.perfLoss(), 0.06);
    EXPECT_GT(result.dvfs.set_freq_count, 0u);
    EXPECT_FALSE(result.ga.best_mhz.empty());
    EXPECT_EQ(result.ga.best_mhz.size(), result.prep.stages.size());
}

TEST(EnergyPipeline, RequiresTwoProfileFrequencies)
{
    Harness &h = harness();
    PipelineOptions options;
    options.chip = h.config;
    options.constants = h.constants;
    options.profile_freqs_mhz = {1800.0};
    EnergyPipeline pipeline(options);
    EXPECT_THROW(pipeline.optimize(h.workload), std::invalid_argument);
}

} // namespace
} // namespace opdvfs::dvfs
