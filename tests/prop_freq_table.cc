/**
 * @file
 * Property suite over the frequency table and the core-domain DVFS
 * controller — the layer every planned strategy passes through.
 *
 *  - freq-table-snap: snap() returns a supported point, is the
 *    nearest one (ties to the lower point), is idempotent, monotone,
 *    and the identity on supported frequencies.
 *  - dvfs-controller-state: under a random command stream of apply /
 *    throttle / release, the granted frequency always equals the
 *    reference model min(requested, ceiling) and stays on the table,
 *    and every apply counts exactly one SetFreq.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "check/generators.h"
#include "check/prop.h"
#include "npu/dvfs_controller.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/** A snap case: a table and an arbitrary finite request. */
struct SnapCase
{
    npu::FreqTableConfig freq;
    double request_a = 0.0;
    double request_b = 0.0;
};

TEST(PropFreqTable, SnapIsNearestSupportedAndMonotone)
{
    Property<SnapCase> prop(
        "freq-table-snap",
        [](Rng &rng) {
            SnapCase snap_case;
            snap_case.freq = genFreqTableConfig(rng);
            // Cover in-range, below-min, and above-max requests.
            double lo = snap_case.freq.min_mhz - 500.0;
            double hi = snap_case.freq.max_mhz + 500.0;
            snap_case.request_a = rng.uniform(lo, hi);
            snap_case.request_b = rng.uniform(lo, hi);
            return snap_case;
        },
        [](const SnapCase &snap_case) -> std::optional<std::string> {
            npu::FreqTable table(snap_case.freq);
            std::vector<double> freqs = table.frequenciesMhz();
            double a = snap_case.request_a;
            double snapped = table.snap(a);
            if (!table.supports(snapped))
                return "snap returned an unsupported frequency";
            if (table.snap(snapped) != snapped)
                return "snap is not idempotent";
            for (double f : freqs) {
                if (table.supports(f) && table.snap(f) != f)
                    return "snap moved a supported frequency";
                if (std::abs(f - a) < std::abs(snapped - a))
                    return "snap skipped a strictly closer point";
                if (std::abs(f - a) == std::abs(snapped - a)
                    && f < snapped) {
                    return "snap broke a tie upward";
                }
            }
            double b = snap_case.request_b;
            if (a <= b && table.snap(a) > table.snap(b))
                return "snap is not monotone";
            return std::nullopt;
        });
    prop.withPrinter([](const SnapCase &snap_case) {
        std::ostringstream os;
        os << show(snap_case.freq) << "\nrequest_a=" << snap_case.request_a
           << " request_b=" << snap_case.request_b;
        return os.str();
    });
    OPDVFS_CHECK_PROP(prop);
}

/** One controller command. */
struct Command
{
    enum Kind { Apply, Throttle, Release } kind = Apply;
    double mhz = 0.0;
};

struct ControllerCase
{
    npu::FreqTableConfig freq;
    double initial_mhz = 0.0;
    std::vector<Command> commands;
};

ControllerCase
genControllerCase(Rng &rng)
{
    ControllerCase ctl_case;
    ctl_case.freq = genFreqTableConfig(rng);
    npu::FreqTable table(ctl_case.freq);
    ctl_case.initial_mhz = table.snap(
        rng.uniform(ctl_case.freq.min_mhz, ctl_case.freq.max_mhz));
    int n = rng.uniformInt(1, 24);
    for (int i = 0; i < n; ++i) {
        Command command;
        double lo = ctl_case.freq.min_mhz - 300.0;
        double hi = ctl_case.freq.max_mhz + 300.0;
        switch (rng.uniformInt(0, 3)) {
        case 0:
        case 1:
            command.kind = Command::Apply;
            command.mhz = rng.uniform(lo, hi);
            break;
        case 2:
            command.kind = Command::Throttle;
            command.mhz = rng.uniform(lo, hi);
            break;
        default:
            command.kind = Command::Release;
            break;
        }
        ctl_case.commands.push_back(command);
    }
    return ctl_case;
}

std::optional<std::string>
checkControllerCase(const ControllerCase &ctl_case)
{
    npu::FreqTable table(ctl_case.freq);
    sim::Simulator sim;
    npu::DvfsController dvfs(sim, table, ctl_case.initial_mhz);

    // Reference model of the firmware contract.
    double requested = ctl_case.initial_mhz;
    double ceiling = 0.0;
    bool throttled = false;
    std::uint64_t applies = 0;

    for (std::size_t i = 0; i < ctl_case.commands.size(); ++i) {
        const Command &command = ctl_case.commands[i];
        switch (command.kind) {
        case Command::Apply:
            dvfs.apply(command.mhz);
            requested = table.snap(command.mhz);
            ++applies;
            break;
        case Command::Throttle:
            dvfs.setThrottleCeiling(command.mhz);
            ceiling = table.snap(command.mhz);
            throttled = true;
            break;
        case Command::Release:
            dvfs.clearThrottleCeiling();
            throttled = false;
            break;
        }
        double granted = throttled ? std::min(requested, ceiling)
                                   : requested;
        if (dvfs.currentMhz() != granted) {
            std::ostringstream os;
            os << "after command " << i << ": current "
               << dvfs.currentMhz() << " MHz, reference model says "
               << granted << " MHz";
            return os.str();
        }
        if (!table.supports(dvfs.currentMhz()))
            return "controller granted an unsupported frequency";
        if (dvfs.requestedMhz() != requested)
            return "remembered request diverged from the reference";
        if (dvfs.setFreqCount() != applies)
            return "setFreqCount diverged from the number of applies";
        (void)dvfs.currentVolts(); // must not throw on a granted point
    }
    return std::nullopt;
}

TEST(PropFreqTable, ControllerMatchesReferenceUnderCommandStream)
{
    Property<ControllerCase> prop("dvfs-controller-state",
                                  genControllerCase, checkControllerCase);
    prop.withShrinker([](const ControllerCase &ctl_case) {
            std::vector<ControllerCase> out;
            for (auto &commands : shrinkVector(ctl_case.commands)) {
                ControllerCase smaller = ctl_case;
                smaller.commands = std::move(commands);
                out.push_back(std::move(smaller));
            }
            return out;
        })
        .withPrinter([](const ControllerCase &ctl_case) {
            std::ostringstream os;
            os << show(ctl_case.freq)
               << "\ninitial=" << ctl_case.initial_mhz << "\n";
            for (const Command &command : ctl_case.commands) {
                switch (command.kind) {
                case Command::Apply:
                    os << "apply(" << command.mhz << ")\n";
                    break;
                case Command::Throttle:
                    os << "throttle(" << command.mhz << ")\n";
                    break;
                case Command::Release:
                    os << "release()\n";
                    break;
                }
            }
            return os.str();
        });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
