#include <gtest/gtest.h>

#include "dvfs/baselines.h"
#include "dvfs/preprocess.h"
#include "models/transformer.h"
#include "power/offline_calibration.h"
#include "power/online_calibration.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {
namespace {

/** Small shared setup mirroring the integration harness. */
struct BaselineHarness
{
    npu::NpuConfig config;
    npu::FreqTable table{npu::FreqTableConfig{}};
    models::Workload workload;
    trace::RunResult baseline;
    PreprocessResult prep;
    std::unique_ptr<StageEvaluator> evaluator;
    power::CalibratedConstants constants;

    BaselineHarness() : constants(power::calibrateOffline(config))
    {
        npu::MemorySystem memory(config.memory);
        models::TransformerConfig model;
        model.layers = 3;
        model.hidden = 2048;
        model.heads = 16;
        model.seq = 1024;
        model.batch = 2;
        model.tp_allreduce = true;
        model.tensor_parallel = 2;
        workload = models::buildTransformerTraining(memory, model, 55);

        trace::WorkloadRunner runner(config);
        power::PowerModel power_model(constants, table);
        power::OnlinePowerCalibrator online(power_model);
        perf::PerfModelRepository repo;
        for (double f : {1000.0, 1400.0, 1800.0}) {
            trace::RunOptions options;
            options.initial_mhz = f;
            options.warmup_seconds = 5.0;
            options.sample_period = kTicksPerMs;
            options.seed = 300 + static_cast<std::uint64_t>(f);
            trace::RunResult run = runner.run(workload, options);
            repo.addProfile(f, run.records);
            online.addRun(run);
            if (f == 1800.0)
                baseline = run;
        }
        perf::PerfBuildOptions perf_options;
        perf_options.kind = perf::FitFunction::PwlCycles;
        repo.fitAll(perf_options);
        prep = preprocess(baseline.records, {});
        evaluator = std::make_unique<StageEvaluator>(
            prep.stages, repo, power_model, online.perOpModels(), table);
    }
};

BaselineHarness &
harness()
{
    static BaselineHarness instance;
    return instance;
}

TEST(UniformFrequency, SelectsAValidSupportedPoint)
{
    BaselineHarness &h = harness();
    UniformFrequencyResult result =
        selectUniformFrequency(*h.evaluator, 0.02);
    EXPECT_TRUE(h.table.supports(result.mhz));
    EXPECT_GT(result.score, 0.0);
    // A uniform drop can never beat staying within the bound while
    // saving power relative to all-max.
    EXPECT_LE(result.eval.aicore_watts,
              result.baseline_eval.aicore_watts + 1e-9);
}

TEST(UniformFrequency, LooserTargetPermitsLowerFrequency)
{
    BaselineHarness &h = harness();
    UniformFrequencyResult tight =
        selectUniformFrequency(*h.evaluator, 0.01);
    UniformFrequencyResult loose =
        selectUniformFrequency(*h.evaluator, 0.20);
    EXPECT_LE(loose.mhz, tight.mhz);
}

TEST(ModelFree, RespectsEvaluationBudget)
{
    BaselineHarness &h = harness();
    trace::WorkloadRunner runner(h.config);
    ModelFreeOptions options;
    options.evaluation_budget = 8;
    options.population = 4;
    options.warmup_seconds = 1.0;
    ModelFreeResult result =
        searchModelFree(runner, h.workload, h.prep.stages,
                        h.baseline.records, h.table, options);
    EXPECT_EQ(result.evaluations, 8);
    EXPECT_GT(result.simulated_seconds, 0.0);
    EXPECT_EQ(result.best_mhz.size(), h.prep.stages.size());
    EXPECT_GT(result.best_score, 0.0);
}

TEST(ModelFree, NeverWorseThanItsOwnBaseline)
{
    BaselineHarness &h = harness();
    trace::WorkloadRunner runner(h.config);
    ModelFreeOptions options;
    options.evaluation_budget = 12;
    options.population = 5;
    options.warmup_seconds = 1.0;
    options.perf_loss_target = 0.05;
    ModelFreeResult result =
        searchModelFree(runner, h.workload, h.prep.stages,
                        h.baseline.records, h.table, options);
    StrategyEvaluation base;
    base.seconds = result.baseline_run.iteration_seconds;
    base.soc_watts = result.baseline_run.soc_avg_w;
    double per_lb = 1e-6 / result.baseline_run.iteration_seconds * 0.95;
    EXPECT_GE(result.best_score, strategyScore(base, per_lb));
}

TEST(ModelFree, Validation)
{
    BaselineHarness &h = harness();
    trace::WorkloadRunner runner(h.config);
    ModelFreeOptions bad;
    bad.evaluation_budget = 1;
    EXPECT_THROW(searchModelFree(runner, h.workload, h.prep.stages,
                                 h.baseline.records, h.table, bad),
                 std::invalid_argument);
    EXPECT_THROW(searchModelFree(runner, h.workload, {},
                                 h.baseline.records, h.table, {}),
                 std::invalid_argument);
}

} // namespace
} // namespace opdvfs::dvfs
