/**
 * Tests for the Sect. 8.2 future-work extension: the uncore operating
 * point that scales L2/HBM bandwidth and uncore dynamic power.
 */

#include <gtest/gtest.h>

#include "models/transformer.h"
#include "npu/memory_system.h"
#include "npu/npu_chip.h"
#include "npu/power.h"
#include "trace/workload_runner.h"

namespace opdvfs::npu {
namespace {

TEST(UncoreScale, BandwidthScalesLinearly)
{
    MemorySystemConfig config;
    MemorySystem nominal(config);
    config.bandwidth_scale = 0.8;
    MemorySystem scaled(config);
    for (double hit : {0.0, 0.5, 1.0}) {
        EXPECT_NEAR(scaled.uncoreBandwidth(hit),
                    0.8 * nominal.uncoreBandwidth(hit), 1e-3);
        EXPECT_NEAR(scaled.saturationMhz(hit),
                    0.8 * nominal.saturationMhz(hit), 1e-6);
    }
}

TEST(UncoreScale, InvalidScaleThrows)
{
    MemorySystemConfig config;
    config.bandwidth_scale = 0.0;
    EXPECT_THROW(MemorySystem{config}, std::invalid_argument);
    config.bandwidth_scale = 1.5;
    EXPECT_THROW(MemorySystem{config}, std::invalid_argument);
}

TEST(UncoreScale, UncorePowerDynamicPartScales)
{
    UncorePowerParams params;
    PowerCalculator calc(AicorePowerParams{}, params);
    PowerState nominal, scaled;
    nominal.uncore_activity = scaled.uncore_activity = 0.5;
    scaled.uncore_scale = 0.7;
    double p_nominal = calc.uncorePower(nominal);
    double p_scaled = calc.uncorePower(scaled);
    EXPECT_LT(p_scaled, p_nominal);
    // The static part never scales away: power stays above it.
    double idle_static = params.idle_watts * (1.0 - params.dynamic_fraction);
    EXPECT_GT(p_scaled, idle_static);
}

TEST(UncoreScale, NominalScaleIsIdentity)
{
    UncorePowerParams params;
    PowerCalculator calc(AicorePowerParams{}, params);
    PowerState state;
    state.uncore_activity = 0.4;
    state.uncore_scale = 1.0;
    double expected = params.idle_watts + 0.4 * params.active_watts;
    EXPECT_NEAR(calc.uncorePower(state), expected, 1e-9);
}

TEST(UncoreScale, SlowUncoreSlowsMemoryBoundWorkload)
{
    models::TransformerConfig model;
    model.layers = 2;
    model.hidden = 2048;
    model.heads = 16;
    model.seq = 512;
    model.batch = 4;

    auto run_at = [&model](double scale) {
        npu::NpuConfig chip;
        chip.uncore_scale = scale;
        npu::MemorySystem nominal_memory(npu::MemorySystemConfig{});
        models::Workload workload =
            models::buildTransformerTraining(nominal_memory, model, 5);
        trace::WorkloadRunner runner(chip);
        trace::RunOptions options;
        return runner.run(workload, options);
    };

    trace::RunResult nominal = run_at(1.0);
    trace::RunResult slowed = run_at(0.7);
    // Less bandwidth: slower iteration, lower SoC power.
    EXPECT_GT(slowed.iteration_seconds, nominal.iteration_seconds * 1.05);
    EXPECT_LT(slowed.soc_avg_w, nominal.soc_avg_w);
}

TEST(UncoreScale, ChipAppliesScaleToItsMemorySystem)
{
    sim::Simulator simulator;
    NpuConfig config;
    config.uncore_scale = 0.5;
    NpuChip chip(simulator, config);
    MemorySystem nominal(config.memory);
    EXPECT_NEAR(chip.memorySystem().uncoreBandwidth(0.5),
                0.5 * nominal.uncoreBandwidth(0.5), 1e-3);
}

} // namespace
} // namespace opdvfs::npu
