#include <gtest/gtest.h>

#include "cluster/cluster_runner.h"
#include "models/transformer.h"
#include "ops/op_factory.h"

namespace opdvfs::cluster {
namespace {

models::Workload
tinyWorkload(const npu::MemorySystem &memory, std::uint64_t seed)
{
    models::TransformerConfig model;
    model.name = "cluster-tiny";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = 512;
    model.batch = 2;
    model.tensor_parallel = 4;
    model.tp_allreduce = true;
    model.grad_allreduce = false;
    return models::buildTransformerTraining(memory, model, seed);
}

/**
 * Compute-bound configuration: enough matmul work per operator that
 * the fleet iteration time visibly tracks the core frequency (the
 * tiny workload above is dominated by fixed-duration transfers and
 * barely reacts to DVFS, which would mask fault-induced stragglers).
 */
models::Workload
computeBoundWorkload(const npu::MemorySystem &memory, std::uint64_t seed)
{
    models::TransformerConfig model;
    model.name = "cluster-compute";
    model.layers = 2;
    model.hidden = 4096;
    model.heads = 32;
    model.seq = 512;
    model.batch = 4;
    model.tensor_parallel = 4;
    model.tp_allreduce = true;
    model.grad_allreduce = false;
    return models::buildTransformerTraining(memory, model, seed);
}

TEST(CollectiveGroup, SingleDeviceCompletesImmediately)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 1, 1e11, 0.0);
    bool fired = false;
    group.arrive(0, 1e6, [&] { fired = true; });
    simulator.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(group.completedCollectives(), 1u);
    EXPECT_DOUBLE_EQ(group.totalWaitSeconds(), 0.0);
}

TEST(CollectiveGroup, WaitsForLastParticipant)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 2, 1e12, 0.0);

    std::vector<Tick> completion(2, -1);
    group.arrive(0, 1e6, [&] { completion[0] = simulator.now(); });
    // Rank 1 arrives 5 ms later.
    simulator.scheduleIn(5 * kTicksPerMs, [&] {
        group.arrive(1, 1e6, [&] { completion[1] = simulator.now(); });
    });
    simulator.run();

    Tick transfer = secondsToTicks(group.transferSeconds(1e6));
    EXPECT_EQ(completion[0], 5 * kTicksPerMs + transfer);
    EXPECT_EQ(completion[1], completion[0]);
    // Rank 0 waited the full 5 ms.
    EXPECT_NEAR(group.totalWaitSeconds(), 5e-3, 1e-9);
}

TEST(CollectiveGroup, RingTransferTimeFormula)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 8, 2.0e11, 30e-6);
    double bytes = 1e8;
    double expected = 30e-6 + 2.0 * 7.0 / 8.0 * bytes / 2.0e11;
    EXPECT_NEAR(group.transferSeconds(bytes), expected, 1e-12);
}

TEST(CollectiveGroup, PipelinedCollectivesKeepOrder)
{
    // Device 0 posts two collectives back to back; device 1 joins
    // later: both must complete in order.
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 2, 1e12, 0.0);
    std::vector<int> order;
    group.arrive(0, 1e6, [&] { order.push_back(10); });
    group.arrive(0, 2e6, [&] { order.push_back(20); });
    simulator.scheduleIn(kTicksPerMs, [&] {
        group.arrive(1, 1e6, [&] { order.push_back(11); });
        group.arrive(1, 2e6, [&] { order.push_back(21); });
    });
    simulator.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_TRUE((order[0] == 10 && order[1] == 11)
                || (order[0] == 11 && order[1] == 10));
    EXPECT_TRUE(order[2] == 20 || order[2] == 21);
}

TEST(CollectiveGroup, MismatchedBytesThrow)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 2, 1e12);
    group.arrive(0, 1e6, [] {});
    EXPECT_THROW(group.arrive(1, 2e6, [] {}), std::invalid_argument);
    EXPECT_THROW(group.arrive(5, 1e6, [] {}), std::invalid_argument);
}

TEST(ClusterRunner, RunsIterationAcrossDevices)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 3);

    ClusterRunner runner(config);
    ClusterRunResult result = runner.run(workload);
    ASSERT_EQ(result.devices.size(), 4u);
    EXPECT_GT(result.iteration_seconds, 0.0);
    EXPECT_GT(result.collectives, 0u);
    for (const auto &device : result.devices) {
        EXPECT_GT(device.aicore_avg_w, 5.0);
        EXPECT_GT(device.soc_avg_w, device.aicore_avg_w);
    }
    // Identical devices running identical sequences barely wait.
    EXPECT_LT(result.collective_wait_seconds,
              0.02 * result.iteration_seconds
                  * static_cast<double>(config.devices));
}

TEST(ClusterRunner, StragglerStallsTheWholeGroup)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 3);
    ClusterRunner runner(config);

    ClusterRunResult uniform = runner.run(workload);

    // Slow only device 0 to the minimum frequency.
    std::vector<std::vector<trace::SetFreqTrigger>> triggers(4);
    triggers[0].push_back({0, 1000.0});
    ClusterRunResult straggler = runner.run(workload, triggers);

    // The whole group slows down despite 3 of 4 devices being fast...
    EXPECT_GT(straggler.iteration_seconds,
              uniform.iteration_seconds * 1.02);
    // ...and the fast devices burn their time waiting at collectives.
    EXPECT_GT(straggler.collective_wait_seconds,
              uniform.collective_wait_seconds * 3.0);
}

TEST(ClusterRunner, FleetWideSlowdownBeatsStraggler)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 3);
    ClusterRunner runner(config);

    std::vector<std::vector<trace::SetFreqTrigger>> one(4), all(4);
    one[0].push_back({0, 1300.0});
    for (auto &t : all)
        t.push_back({0, 1300.0});

    ClusterRunResult straggler = runner.run(workload, one);
    ClusterRunResult fleet = runner.run(workload, all);

    // Same iteration time (the straggler sets the pace either way)...
    EXPECT_NEAR(fleet.iteration_seconds, straggler.iteration_seconds,
                0.02 * straggler.iteration_seconds);
    // ...but fleet-wide application saves power on every device.
    EXPECT_LT(fleet.aicoreAvgWatts(), straggler.aicoreAvgWatts() * 0.98);
}

TEST(ClusterRunner, Validation)
{
    ClusterConfig config;
    config.devices = 2;
    ClusterRunner runner(config);
    models::Workload empty;
    EXPECT_THROW(runner.run(empty), std::invalid_argument);

    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 1);
    std::vector<std::vector<trace::SetFreqTrigger>> wrong(3);
    EXPECT_THROW(runner.run(workload, wrong), std::invalid_argument);

    // Fault plans must be per-device too.
    ClusterRunOptions bad_faults;
    bad_faults.device_faults.resize(1);
    EXPECT_THROW(runner.run(workload, {}, bad_faults),
                 std::invalid_argument);
    EXPECT_THROW(runner.runGuarded(workload, {}, 1.0,
                                   {{}, 4, bad_faults}),
                 std::invalid_argument);
}

/** Cyclic per-device strategy: ceiling after op 0, floor at the wrap. */
std::vector<std::vector<trace::SetFreqTrigger>>
cyclicStrategy(int devices, const models::Workload &workload)
{
    std::vector<std::vector<trace::SetFreqTrigger>> triggers(
        static_cast<std::size_t>(devices));
    for (auto &t : triggers) {
        t.push_back({0, 1800.0});
        t.push_back({workload.iteration.size() - 1, 1000.0});
    }
    return triggers;
}

TEST(ClusterRunner, GuardRepairsLatchedThrottleFleetWide)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = computeBoundWorkload(memory, 3);
    ClusterRunner runner(config);
    auto triggers = cyclicStrategy(config.devices, workload);

    ClusterRunOptions clean_run;
    clean_run.initial_mhz = 1000.0;

    // Fault-free steady-state fleet iteration time.
    GuardedClusterOptions probe;
    probe.guard.enabled = false;
    probe.iterations = 3;
    probe.run = clean_run;
    GuardedClusterResult clean =
        runner.runGuarded(workload, triggers, 1.0, probe);
    double baseline = 0.0;
    for (const auto &it : clean.iterations)
        baseline += it.seconds;
    baseline /= static_cast<double>(clean.iterations.size());

    // Rank 1's firmware latches a spurious 1000 MHz clamp.
    ClusterRunOptions faulted_run = clean_run;
    faulted_run.device_faults.resize(4);
    faulted_run.device_faults[1].spurious_trip_rate_hz = 300.0;
    faulted_run.device_faults[1].throttle_auto_release = false;
    faulted_run.device_faults[1].throttle_mhz = 1000.0;
    faulted_run.device_faults[1].seed = 13;

    GuardedClusterOptions unguarded;
    unguarded.guard.enabled = false;
    unguarded.guard.violation_limit = 1;
    unguarded.iterations = 8;
    unguarded.run = faulted_run;
    GuardedClusterResult before =
        runner.runGuarded(workload, triggers, baseline, unguarded);

    GuardedClusterOptions guarded = unguarded;
    guarded.guard.enabled = true;
    GuardedClusterResult after =
        runner.runGuarded(workload, triggers, baseline, guarded);

    // The clamp hit rank 1 and only rank 1...
    EXPECT_GT(before.device_faults[1].spurious_trips, 0u);
    EXPECT_EQ(before.device_faults[0].spurious_trips, 0u);

    // ...which the per-iteration diagnostics single out as the
    // straggler stalling the whole group.
    bool rank1_flagged = false;
    for (const auto &it : before.iterations) {
        for (int rank : it.straggler_ranks)
            rank1_flagged = rank1_flagged || rank == 1;
    }
    EXPECT_TRUE(rank1_flagged);

    // One clamped rank slows every device past the violation line.
    EXPECT_GT(before.meanLoss(), unguarded.guard.violation_factor
                                     * unguarded.guard.perf_loss_target);

    // The guard resets the latched governor and contains the damage
    // fleet-wide.
    EXPECT_GT(after.guard.throttle_resets, 0u);
    EXPECT_LT(after.meanLoss(), before.meanLoss() / 2.0);
}

TEST(ClusterRunner, GuardRetriesDroppedSetFreqsOnFaultedRank)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = computeBoundWorkload(memory, 3);
    ClusterRunner runner(config);
    auto triggers = cyclicStrategy(config.devices, workload);

    ClusterRunOptions faulted_run;
    faulted_run.initial_mhz = 1000.0;
    faulted_run.device_faults.resize(4);
    faulted_run.device_faults[2].set_freq_drop_rate = 0.7;
    faulted_run.device_faults[2].seed = 17;

    GuardedClusterOptions probe;
    probe.guard.enabled = false;
    probe.iterations = 3;
    probe.run.initial_mhz = 1000.0;
    GuardedClusterResult clean =
        runner.runGuarded(workload, triggers, 1.0, probe);
    double baseline = 0.0;
    for (const auto &it : clean.iterations)
        baseline += it.seconds;
    baseline /= static_cast<double>(clean.iterations.size());

    GuardedClusterOptions unguarded;
    unguarded.guard.enabled = false;
    // Keep the retry backoff tail (which drains after the compute
    // streams finish) small relative to the iteration time.
    unguarded.guard.retry_backoff = kTicksPerMs / 20;
    unguarded.iterations = 10;
    unguarded.run = faulted_run;
    GuardedClusterResult before =
        runner.runGuarded(workload, triggers, baseline, unguarded);

    GuardedClusterOptions guarded = unguarded;
    guarded.guard.enabled = true;
    GuardedClusterResult after =
        runner.runGuarded(workload, triggers, baseline, guarded);

    // Only the faulted rank saw drops; the guard's retries repaired
    // them within the iteration.
    EXPECT_GT(after.device_faults[2].set_freqs_dropped, 0u);
    EXPECT_EQ(after.device_faults[0].set_freqs_dropped, 0u);
    EXPECT_GT(after.guard.set_freq_retries, 0u);
    EXPECT_LT(after.meanLoss(), before.meanLoss() / 2.0);
}

} // namespace
} // namespace opdvfs::cluster
