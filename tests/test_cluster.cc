#include <gtest/gtest.h>

#include "cluster/cluster_runner.h"
#include "models/transformer.h"
#include "ops/op_factory.h"

namespace opdvfs::cluster {
namespace {

models::Workload
tinyWorkload(const npu::MemorySystem &memory, std::uint64_t seed)
{
    models::TransformerConfig model;
    model.name = "cluster-tiny";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = 512;
    model.batch = 2;
    model.tensor_parallel = 4;
    model.tp_allreduce = true;
    model.grad_allreduce = false;
    return models::buildTransformerTraining(memory, model, seed);
}

TEST(CollectiveGroup, SingleDeviceCompletesImmediately)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 1, 1e11, 0.0);
    bool fired = false;
    group.arrive(0, 1e6, [&] { fired = true; });
    simulator.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(group.completedCollectives(), 1u);
    EXPECT_DOUBLE_EQ(group.totalWaitSeconds(), 0.0);
}

TEST(CollectiveGroup, WaitsForLastParticipant)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 2, 1e12, 0.0);

    std::vector<Tick> completion(2, -1);
    group.arrive(0, 1e6, [&] { completion[0] = simulator.now(); });
    // Rank 1 arrives 5 ms later.
    simulator.scheduleIn(5 * kTicksPerMs, [&] {
        group.arrive(1, 1e6, [&] { completion[1] = simulator.now(); });
    });
    simulator.run();

    Tick transfer = secondsToTicks(group.transferSeconds(1e6));
    EXPECT_EQ(completion[0], 5 * kTicksPerMs + transfer);
    EXPECT_EQ(completion[1], completion[0]);
    // Rank 0 waited the full 5 ms.
    EXPECT_NEAR(group.totalWaitSeconds(), 5e-3, 1e-9);
}

TEST(CollectiveGroup, RingTransferTimeFormula)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 8, 2.0e11, 30e-6);
    double bytes = 1e8;
    double expected = 30e-6 + 2.0 * 7.0 / 8.0 * bytes / 2.0e11;
    EXPECT_NEAR(group.transferSeconds(bytes), expected, 1e-12);
}

TEST(CollectiveGroup, PipelinedCollectivesKeepOrder)
{
    // Device 0 posts two collectives back to back; device 1 joins
    // later: both must complete in order.
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 2, 1e12, 0.0);
    std::vector<int> order;
    group.arrive(0, 1e6, [&] { order.push_back(10); });
    group.arrive(0, 2e6, [&] { order.push_back(20); });
    simulator.scheduleIn(kTicksPerMs, [&] {
        group.arrive(1, 1e6, [&] { order.push_back(11); });
        group.arrive(1, 2e6, [&] { order.push_back(21); });
    });
    simulator.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_TRUE((order[0] == 10 && order[1] == 11)
                || (order[0] == 11 && order[1] == 10));
    EXPECT_TRUE(order[2] == 20 || order[2] == 21);
}

TEST(CollectiveGroup, MismatchedBytesThrow)
{
    sim::Simulator simulator;
    CollectiveGroup group(simulator, 2, 1e12);
    group.arrive(0, 1e6, [] {});
    EXPECT_THROW(group.arrive(1, 2e6, [] {}), std::invalid_argument);
    EXPECT_THROW(group.arrive(5, 1e6, [] {}), std::invalid_argument);
}

TEST(ClusterRunner, RunsIterationAcrossDevices)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 3);

    ClusterRunner runner(config);
    ClusterRunResult result = runner.run(workload);
    ASSERT_EQ(result.devices.size(), 4u);
    EXPECT_GT(result.iteration_seconds, 0.0);
    EXPECT_GT(result.collectives, 0u);
    for (const auto &device : result.devices) {
        EXPECT_GT(device.aicore_avg_w, 5.0);
        EXPECT_GT(device.soc_avg_w, device.aicore_avg_w);
    }
    // Identical devices running identical sequences barely wait.
    EXPECT_LT(result.collective_wait_seconds,
              0.02 * result.iteration_seconds
                  * static_cast<double>(config.devices));
}

TEST(ClusterRunner, StragglerStallsTheWholeGroup)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 3);
    ClusterRunner runner(config);

    ClusterRunResult uniform = runner.run(workload);

    // Slow only device 0 to the minimum frequency.
    std::vector<std::vector<trace::SetFreqTrigger>> triggers(4);
    triggers[0].push_back({0, 1000.0});
    ClusterRunResult straggler = runner.run(workload, triggers);

    // The whole group slows down despite 3 of 4 devices being fast...
    EXPECT_GT(straggler.iteration_seconds,
              uniform.iteration_seconds * 1.02);
    // ...and the fast devices burn their time waiting at collectives.
    EXPECT_GT(straggler.collective_wait_seconds,
              uniform.collective_wait_seconds * 3.0);
}

TEST(ClusterRunner, FleetWideSlowdownBeatsStraggler)
{
    ClusterConfig config;
    config.devices = 4;
    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 3);
    ClusterRunner runner(config);

    std::vector<std::vector<trace::SetFreqTrigger>> one(4), all(4);
    one[0].push_back({0, 1300.0});
    for (auto &t : all)
        t.push_back({0, 1300.0});

    ClusterRunResult straggler = runner.run(workload, one);
    ClusterRunResult fleet = runner.run(workload, all);

    // Same iteration time (the straggler sets the pace either way)...
    EXPECT_NEAR(fleet.iteration_seconds, straggler.iteration_seconds,
                0.02 * straggler.iteration_seconds);
    // ...but fleet-wide application saves power on every device.
    EXPECT_LT(fleet.aicoreAvgWatts(), straggler.aicoreAvgWatts() * 0.98);
}

TEST(ClusterRunner, Validation)
{
    ClusterConfig config;
    config.devices = 2;
    ClusterRunner runner(config);
    models::Workload empty;
    EXPECT_THROW(runner.run(empty), std::invalid_argument);

    npu::MemorySystem memory(config.chip.memory);
    models::Workload workload = tinyWorkload(memory, 1);
    std::vector<std::vector<trace::SetFreqTrigger>> wrong(3);
    EXPECT_THROW(runner.run(workload, wrong), std::invalid_argument);
}

} // namespace
} // namespace opdvfs::cluster
