#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "perf/fit_functions.h"

namespace opdvfs::perf {
namespace {

TEST(FitFunctions, NamesAndParamCounts)
{
    EXPECT_EQ(fitFunctionParams(FitFunction::QuadOverF), 2);
    EXPECT_EQ(fitFunctionParams(FitFunction::FullQuadOverF), 3);
    EXPECT_EQ(fitFunctionParams(FitFunction::ExpOverF), 3);
    EXPECT_FALSE(fitFunctionName(FitFunction::QuadOverF).empty());
    EXPECT_NE(fitFunctionName(FitFunction::QuadOverF),
              fitFunctionName(FitFunction::ExpOverF));
}

TEST(FitFunctions, QuadOverFClosedFormTwoPoints)
{
    // Generate from T(f) = (a f^2 + c)/f with a=2, c=3 (f in GHz).
    auto truth = [](double f) { return (2.0 * f * f + 3.0) / f; };
    FittedCurve curve = fitCurve(FitFunction::QuadOverF, {1000.0, 1800.0},
                                 {truth(1.0), truth(1.8)});
    EXPECT_NEAR(curve.params[0], 2.0, 1e-9);
    EXPECT_NEAR(curve.params[1], 3.0, 1e-9);
    for (double f : {1100.0, 1400.0, 1700.0})
        EXPECT_NEAR(curve.predictSeconds(f), truth(f / 1000.0), 1e-9);
}

TEST(FitFunctions, QuadOverFLeastSquaresManyPoints)
{
    auto truth = [](double f) { return (1.5 * f * f + 0.8) / f; };
    std::vector<double> fs, ts;
    for (double f = 1000.0; f <= 1800.0; f += 100.0) {
        fs.push_back(f);
        ts.push_back(truth(f / 1000.0));
    }
    FittedCurve curve = fitCurve(FitFunction::QuadOverF, fs, ts);
    EXPECT_NEAR(curve.params[0], 1.5, 1e-9);
    EXPECT_NEAR(curve.params[1], 0.8, 1e-9);
}

TEST(FitFunctions, FullQuadRecoversLinearTerm)
{
    auto truth = [](double f) {
        return (1.0 * f * f + 0.5 * f + 2.0) / f;
    };
    std::vector<double> fs, ts;
    for (double f = 1000.0; f <= 1800.0; f += 200.0) {
        fs.push_back(f);
        ts.push_back(truth(f / 1000.0));
    }
    FittedCurve curve = fitCurve(FitFunction::FullQuadOverF, fs, ts);
    for (double f : {1100.0, 1500.0, 1700.0})
        EXPECT_NEAR(curve.predictSeconds(f), truth(f / 1000.0),
                    truth(f / 1000.0) * 1e-4);
}

TEST(FitFunctions, ExpOverFFitsAndClampsExponent)
{
    auto truth = [](double f) {
        return (0.7 * std::exp(1.2 * f) + 0.4) / f;
    };
    std::vector<double> fs, ts;
    for (double f = 1000.0; f <= 1800.0; f += 100.0) {
        fs.push_back(f);
        ts.push_back(truth(f / 1000.0));
    }
    FittedCurve curve = fitCurve(FitFunction::ExpOverF, fs, ts);
    // The paper clamps b to [0, 10].
    EXPECT_GE(curve.params[1], 0.0);
    EXPECT_LE(curve.params[1], 10.0);
    for (double f : {1200.0, 1600.0})
        EXPECT_NEAR(curve.predictSeconds(f), truth(f / 1000.0),
                    truth(f / 1000.0) * 0.02);
}

TEST(FitFunctions, PwlCyclesInterpolatesExactly)
{
    // Cycle(f) flat above a kink at 1400 MHz: T = c/f above, rising
    // below.  Knot interpolation reproduces the flat region exactly.
    auto cycles = [](double f_ghz) { return std::max(1.4, f_ghz) * 2.0; };
    std::vector<double> fs = {1000.0, 1400.0, 1800.0};
    std::vector<double> ts;
    for (double f : fs)
        ts.push_back(cycles(f / 1000.0) / (f / 1000.0));

    FittedCurve curve = fitCurve(FitFunction::PwlCycles, fs, ts);
    for (double f : {1100.0, 1300.0, 1500.0, 1600.0, 1700.0}) {
        double f_ghz = f / 1000.0;
        EXPECT_NEAR(curve.predictSeconds(f), cycles(f_ghz) / f_ghz, 1e-9)
            << f;
    }
}

TEST(FitFunctions, PwlCyclesExtrapolatesEndSegments)
{
    // Linear cycles: extrapolation is exact.
    std::vector<double> fs = {1200.0, 1500.0};
    std::vector<double> ts;
    for (double f : fs) {
        double f_ghz = f / 1000.0;
        ts.push_back((3.0 * f_ghz + 1.0) / f_ghz);
    }
    FittedCurve curve = fitCurve(FitFunction::PwlCycles, fs, ts);
    for (double f : {1000.0, 1800.0}) {
        double f_ghz = f / 1000.0;
        EXPECT_NEAR(curve.predictSeconds(f), (3.0 * f_ghz + 1.0) / f_ghz,
                    1e-9);
    }
}

TEST(FitFunctions, PwlCyclesHandlesUnsortedInput)
{
    std::vector<double> fs = {1800.0, 1000.0, 1400.0};
    std::vector<double> ts = {1.0, 2.0, 1.3};
    FittedCurve curve = fitCurve(FitFunction::PwlCycles, fs, ts);
    EXPECT_NEAR(curve.predictSeconds(1000.0), 2.0, 1e-9);
    EXPECT_NEAR(curve.predictSeconds(1800.0), 1.0, 1e-9);
}

TEST(FitFunctions, StallModelClosedForm)
{
    // T(f) = b + c/f exactly: the CRISP-like model recovers it.
    auto truth = [](double f_ghz) { return 1.2 + 0.9 / f_ghz; };
    FittedCurve curve = fitCurve(FitFunction::StallOverF, {1000.0, 1800.0},
                                 {truth(1.0), truth(1.8)});
    EXPECT_NEAR(curve.params[0], 1.2, 1e-9);
    EXPECT_NEAR(curve.params[1], 0.9, 1e-9);
    EXPECT_NEAR(curve.predictSeconds(1400.0), truth(1.4), 1e-9);
}

TEST(FitFunctions, StallModelUnderestimatesSaturatedOps)
{
    // On an uncore-saturated operator (cycles grow with f), the
    // constant-stall assumption underestimates high-frequency time:
    // the paper's Sect. 4.1 critique of Ref. [28].
    auto cycles = [](double f_ghz) { return std::max(1.2, f_ghz) * 2.0; };
    std::vector<double> fs = {1000.0, 1300.0, 1800.0};
    std::vector<double> ts;
    for (double f : fs)
        ts.push_back(cycles(f / 1000.0) / (f / 1000.0));
    FittedCurve stall = fitCurve(FitFunction::StallOverF, fs, ts);
    FittedCurve quad = fitCurve(FitFunction::QuadOverF, fs, ts);
    double truth_1600 = cycles(1.6) / 1.6;
    double stall_err = std::abs(stall.predictSeconds(1600.0) - truth_1600);
    double quad_err = std::abs(quad.predictSeconds(1600.0) - truth_1600);
    EXPECT_GT(stall_err, quad_err);
}

TEST(FitFunctions, Validation)
{
    EXPECT_THROW(fitCurve(FitFunction::QuadOverF, {1000.0}, {1.0}),
                 std::invalid_argument);
    EXPECT_THROW(
        fitCurve(FitFunction::FullQuadOverF, {1000.0, 1800.0}, {1.0, 2.0}),
        std::invalid_argument);
    EXPECT_THROW(fitCurve(FitFunction::QuadOverF, {1.0, 2.0}, {1.0}),
                 std::invalid_argument);
    EXPECT_THROW(
        fitCurve(FitFunction::QuadOverF, {1000.0, 1000.0}, {1.0, 1.0}),
        std::invalid_argument);
}

} // namespace
} // namespace opdvfs::perf
