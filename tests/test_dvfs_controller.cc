#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "npu/dvfs_controller.h"

namespace opdvfs::npu {
namespace {

class DvfsControllerTest : public ::testing::Test
{
  protected:
    sim::Simulator sim_;
    FreqTable table_;
};

TEST_F(DvfsControllerTest, InitialState)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1800.0);
    EXPECT_DOUBLE_EQ(dvfs.currentVolts(), table_.voltageFor(1800.0));
    EXPECT_EQ(dvfs.setFreqCount(), 0u);
}

TEST_F(DvfsControllerTest, UnsupportedInitialThrows)
{
    EXPECT_THROW(DvfsController(sim_, table_, 1750.0),
                 std::invalid_argument);
}

TEST_F(DvfsControllerTest, ApplyChangesFrequencyAndVoltage)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    dvfs.apply(1200.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1200.0);
    EXPECT_DOUBLE_EQ(dvfs.currentVolts(), table_.voltageFor(1200.0));
    EXPECT_EQ(dvfs.setFreqCount(), 1u);
}

TEST_F(DvfsControllerTest, ApplyUnsupportedThrows)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    EXPECT_THROW(dvfs.apply(1234.0), std::invalid_argument);
}

TEST_F(DvfsControllerTest, ListenersSeeOldAndNew)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    std::vector<std::pair<double, double>> changes;
    dvfs.onChange([&](double old_mhz, double new_mhz) {
        changes.emplace_back(old_mhz, new_mhz);
    });
    dvfs.apply(1500.0);
    dvfs.apply(1000.0);
    ASSERT_EQ(changes.size(), 2u);
    EXPECT_DOUBLE_EQ(changes[0].first, 1800.0);
    EXPECT_DOUBLE_EQ(changes[0].second, 1500.0);
    EXPECT_DOUBLE_EQ(changes[1].first, 1500.0);
    EXPECT_DOUBLE_EQ(changes[1].second, 1000.0);
}

TEST_F(DvfsControllerTest, NoOpChangeCountsButDoesNotNotify)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    int notified = 0;
    dvfs.onChange([&](double, double) { ++notified; });
    dvfs.apply(1800.0);
    EXPECT_EQ(dvfs.setFreqCount(), 1u);
    EXPECT_EQ(notified, 0);
}

TEST_F(DvfsControllerTest, ApplyAfterDelaysTheChange)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    dvfs.applyAfter(kTicksPerMs, 1100.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1800.0);
    sim_.run();
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1100.0);
    EXPECT_EQ(sim_.now(), kTicksPerMs);
}

} // namespace
} // namespace opdvfs::npu
