#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "npu/dvfs_controller.h"

namespace opdvfs::npu {
namespace {

class DvfsControllerTest : public ::testing::Test
{
  protected:
    sim::Simulator sim_;
    FreqTable table_;
};

TEST_F(DvfsControllerTest, InitialState)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1800.0);
    EXPECT_DOUBLE_EQ(dvfs.currentVolts(), table_.voltageFor(1800.0));
    EXPECT_EQ(dvfs.setFreqCount(), 0u);
}

TEST_F(DvfsControllerTest, UnsupportedInitialThrows)
{
    EXPECT_THROW(DvfsController(sim_, table_, 1750.0),
                 std::invalid_argument);
}

TEST_F(DvfsControllerTest, ApplyChangesFrequencyAndVoltage)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    dvfs.apply(1200.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1200.0);
    EXPECT_DOUBLE_EQ(dvfs.currentVolts(), table_.voltageFor(1200.0));
    EXPECT_EQ(dvfs.setFreqCount(), 1u);
}

TEST_F(DvfsControllerTest, ApplySnapsOutOfTableToNearestSupported)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    dvfs.apply(1234.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1200.0);
    EXPECT_EQ(dvfs.setFreqCount(), 1u);
    dvfs.apply(2500.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1800.0);
    dvfs.apply(100.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1000.0);
    EXPECT_EQ(dvfs.setFreqCount(), 3u);
}

TEST_F(DvfsControllerTest, ApplyNonFiniteThrows)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    EXPECT_THROW(dvfs.apply(std::numeric_limits<double>::quiet_NaN()),
                 std::invalid_argument);
    EXPECT_THROW(dvfs.apply(std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
    EXPECT_EQ(dvfs.setFreqCount(), 0u);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1800.0);
}

TEST_F(DvfsControllerTest, ThrottleCeilingClampsAndRestores)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    dvfs.setThrottleCeiling(1000.0);
    EXPECT_TRUE(dvfs.throttled());
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1000.0);
    // The firmware clamp is not a SetFreq command.
    EXPECT_EQ(dvfs.setFreqCount(), 0u);
    EXPECT_DOUBLE_EQ(dvfs.requestedMhz(), 1800.0);

    // Requests while throttled are remembered but capped.
    dvfs.apply(1500.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1000.0);
    EXPECT_DOUBLE_EQ(dvfs.requestedMhz(), 1500.0);
    EXPECT_EQ(dvfs.setFreqCount(), 1u);

    // Release restores the pending request.
    dvfs.clearThrottleCeiling();
    EXPECT_FALSE(dvfs.throttled());
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1500.0);
    EXPECT_EQ(dvfs.throttleEvents(), 1u);
}

TEST_F(DvfsControllerTest, ThrottleListenersNotified)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    std::vector<std::pair<bool, double>> events;
    dvfs.onThrottle([&](bool active, double ceiling_mhz) {
        events.emplace_back(active, ceiling_mhz);
    });
    dvfs.setThrottleCeiling(1100.0);
    dvfs.setThrottleCeiling(1100.0); // no-op, no duplicate event
    dvfs.clearThrottleCeiling();
    dvfs.clearThrottleCeiling(); // no-op
    ASSERT_EQ(events.size(), 2u);
    EXPECT_TRUE(events[0].first);
    EXPECT_DOUBLE_EQ(events[0].second, 1100.0);
    EXPECT_FALSE(events[1].first);
}

TEST_F(DvfsControllerTest, RequestBelowCeilingPassesThrough)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    dvfs.setThrottleCeiling(1400.0);
    dvfs.apply(1200.0);
    // Below the ceiling: the request is granted unmodified.
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1200.0);
    dvfs.clearThrottleCeiling();
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1200.0);
}

TEST_F(DvfsControllerTest, ListenersSeeOldAndNew)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    std::vector<std::pair<double, double>> changes;
    dvfs.onChange([&](double old_mhz, double new_mhz) {
        changes.emplace_back(old_mhz, new_mhz);
    });
    dvfs.apply(1500.0);
    dvfs.apply(1000.0);
    ASSERT_EQ(changes.size(), 2u);
    EXPECT_DOUBLE_EQ(changes[0].first, 1800.0);
    EXPECT_DOUBLE_EQ(changes[0].second, 1500.0);
    EXPECT_DOUBLE_EQ(changes[1].first, 1500.0);
    EXPECT_DOUBLE_EQ(changes[1].second, 1000.0);
}

TEST_F(DvfsControllerTest, NoOpChangeCountsButDoesNotNotify)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    int notified = 0;
    dvfs.onChange([&](double, double) { ++notified; });
    dvfs.apply(1800.0);
    EXPECT_EQ(dvfs.setFreqCount(), 1u);
    EXPECT_EQ(notified, 0);
}

TEST_F(DvfsControllerTest, ApplyAfterDelaysTheChange)
{
    DvfsController dvfs(sim_, table_, 1800.0);
    dvfs.applyAfter(kTicksPerMs, 1100.0);
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1800.0);
    sim_.run();
    EXPECT_DOUBLE_EQ(dvfs.currentMhz(), 1100.0);
    EXPECT_EQ(sim_.now(), kTicksPerMs);
}

} // namespace
} // namespace opdvfs::npu
