#include <gtest/gtest.h>

#include <stdexcept>

#include "npu/freq_table.h"

namespace opdvfs::npu {
namespace {

TEST(FreqTable, DefaultRangeMatchesPaper)
{
    FreqTable table;
    // 1000..1800 MHz in 100 MHz steps (Sect. 5.1).
    EXPECT_EQ(table.points().size(), 9u);
    EXPECT_DOUBLE_EQ(table.minMhz(), 1000.0);
    EXPECT_DOUBLE_EQ(table.maxMhz(), 1800.0);
}

TEST(FreqTable, VoltageFlatBelowKnee)
{
    FreqTable table;
    double v1000 = table.voltageFor(1000.0);
    double v1200 = table.voltageFor(1200.0);
    double v1300 = table.voltageFor(1300.0);
    EXPECT_DOUBLE_EQ(v1000, v1200);
    EXPECT_DOUBLE_EQ(v1000, v1300);
}

TEST(FreqTable, VoltageLinearAboveKnee)
{
    FreqTable table;
    const auto &config = table.config();
    double v1400 = table.voltageFor(1400.0);
    double v1500 = table.voltageFor(1500.0);
    double v1800 = table.voltageFor(1800.0);
    double step = config.step_mhz * config.volts_per_mhz;
    EXPECT_NEAR(v1500 - v1400, step, 1e-12);
    EXPECT_NEAR(v1800, config.base_volts
                + (1800.0 - config.knee_mhz) * config.volts_per_mhz, 1e-12);
    // Strictly increasing above the knee.
    EXPECT_GT(v1400, table.voltageFor(1300.0));
}

TEST(FreqTable, SupportsExactPointsOnly)
{
    FreqTable table;
    EXPECT_TRUE(table.supports(1500.0));
    EXPECT_FALSE(table.supports(1550.0));
    EXPECT_FALSE(table.supports(900.0));
}

TEST(FreqTable, VoltageForUnsupportedThrows)
{
    FreqTable table;
    EXPECT_THROW(table.voltageFor(1234.0), std::invalid_argument);
}

TEST(FreqTable, SnapClampsAndRounds)
{
    FreqTable table;
    EXPECT_DOUBLE_EQ(table.snap(1540.0), 1500.0);
    EXPECT_DOUBLE_EQ(table.snap(1560.0), 1600.0);
    EXPECT_DOUBLE_EQ(table.snap(500.0), 1000.0);
    EXPECT_DOUBLE_EQ(table.snap(5000.0), 1800.0);
}

TEST(FreqTable, FrequenciesAscending)
{
    FreqTable table;
    auto fs = table.frequenciesMhz();
    for (std::size_t i = 1; i < fs.size(); ++i)
        EXPECT_LT(fs[i - 1], fs[i]);
}

TEST(FreqTable, InvalidConfigThrows)
{
    FreqTableConfig bad;
    bad.min_mhz = 0.0;
    EXPECT_THROW(FreqTable{bad}, std::invalid_argument);
    bad = FreqTableConfig{};
    bad.max_mhz = 500.0;
    EXPECT_THROW(FreqTable{bad}, std::invalid_argument);
    bad = FreqTableConfig{};
    bad.step_mhz = -100.0;
    EXPECT_THROW(FreqTable{bad}, std::invalid_argument);
}

TEST(FreqTable, CustomCurve)
{
    FreqTableConfig config;
    config.min_mhz = 500.0;
    config.max_mhz = 1000.0;
    config.step_mhz = 250.0;
    config.knee_mhz = 750.0;
    config.base_volts = 0.7;
    config.volts_per_mhz = 1e-3;
    FreqTable table(config);
    EXPECT_EQ(table.points().size(), 3u);
    EXPECT_DOUBLE_EQ(table.voltageFor(500.0), 0.7);
    EXPECT_DOUBLE_EQ(table.voltageFor(750.0), 0.7);
    EXPECT_NEAR(table.voltageFor(1000.0), 0.95, 1e-12);
}

} // namespace
} // namespace opdvfs::npu
