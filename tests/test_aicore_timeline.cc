#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "math/piecewise_linear.h"
#include "npu/aicore_timeline.h"

namespace opdvfs::npu {
namespace {

HwOpParams
baseParams(Scenario scenario)
{
    HwOpParams params;
    params.category = OpCategory::Compute;
    params.scenario = scenario;
    params.n = 8;
    params.core_cycles = 30'000.0;
    params.ld_volume_bytes = 2.0e6;
    params.ld_l2_hit = 0.3;
    params.st_volume_bytes = 1.0e6;
    params.st_l2_hit = 0.3;
    params.t0_seconds = 4e-7;
    params.overhead_seconds = 2e-6;
    return params;
}

const Scenario kAllScenarios[] = {
    Scenario::PingPongFreeIndependent,
    Scenario::PingPongFreeDependent,
    Scenario::PingPongIndependent,
    Scenario::PingPongDependent,
};

/**
 * The paper's central claim (Sect. 4.2.5): Cycle(f) is a convex
 * piecewise-linear function of frequency for every scenario.
 * Parameterised over scenario x randomized operator shape.
 */
class TimelineConvexity
    : public ::testing::TestWithParam<std::tuple<Scenario, int>>
{
};

TEST_P(TimelineConvexity, CycleCountIsConvexInFrequency)
{
    auto [scenario, seed] = GetParam();
    opdvfs::Rng rng(static_cast<std::uint64_t>(seed) * 977 + 3);

    HwOpParams params = baseParams(scenario);
    params.n = static_cast<int>(rng.uniformInt(1, 64));
    params.core_cycles = rng.uniform(0.0, 100'000.0);
    params.ld_volume_bytes = rng.uniform(0.0, 8.0e6);
    params.st_volume_bytes = rng.uniform(0.0, 8.0e6);
    params.ld_l2_hit = rng.uniform(0.0, 0.95);
    params.st_l2_hit = rng.uniform(0.0, 0.95);
    params.t0_seconds = rng.uniform(0.0, 2e-6);
    params.overhead_seconds = rng.uniform(0.0, 1e-5);

    MemorySystem memory;
    AicoreTimeline timeline(params, memory);

    std::vector<double> f, cycles;
    for (double mhz = 600.0; mhz <= 2400.0; mhz += 25.0) {
        f.push_back(mhz);
        cycles.push_back(timeline.cycles(mhz));
    }
    EXPECT_TRUE(math::isConvexSamples(f, cycles, 1e-9));
}

TEST_P(TimelineConvexity, ExecutionTimeNonIncreasingInFrequency)
{
    auto [scenario, seed] = GetParam();
    opdvfs::Rng rng(static_cast<std::uint64_t>(seed) * 1091 + 7);

    HwOpParams params = baseParams(scenario);
    params.core_cycles = rng.uniform(1'000.0, 80'000.0);
    params.ld_volume_bytes = rng.uniform(1e5, 6e6);

    MemorySystem memory;
    AicoreTimeline timeline(params, memory);
    double previous = timeline.seconds(600.0);
    for (double mhz = 650.0; mhz <= 2400.0; mhz += 50.0) {
        double t = timeline.seconds(mhz);
        EXPECT_LE(t, previous * (1.0 + 1e-12)) << "at " << mhz;
        previous = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TimelineConvexity,
    ::testing::Combine(::testing::ValuesIn(kAllScenarios),
                       ::testing::Range(0, 8)));

/** The symbolic PWL form must agree exactly with the numeric path. */
class PwlAgreement
    : public ::testing::TestWithParam<std::tuple<Scenario, int>>
{
};

TEST_P(PwlAgreement, SymbolicMatchesNumeric)
{
    auto [scenario, seed] = GetParam();
    opdvfs::Rng rng(static_cast<std::uint64_t>(seed) * 499 + 1);

    HwOpParams params = baseParams(scenario);
    params.n = static_cast<int>(rng.uniformInt(1, 32));
    params.core_cycles = rng.uniform(0.0, 60'000.0);
    params.ld_volume_bytes = rng.chance(0.85) ? rng.uniform(1e4, 4e6) : 0.0;
    params.st_volume_bytes = rng.chance(0.85) ? rng.uniform(1e4, 4e6) : 0.0;

    MemorySystem memory;
    AicoreTimeline timeline(params, memory);
    math::ConvexPwl pwl = timeline.cyclePwl();

    for (double mhz = 800.0; mhz <= 2000.0; mhz += 37.0) {
        double numeric = timeline.cycles(mhz);
        double symbolic = pwl.eval(mhzToHz(mhz));
        EXPECT_NEAR(symbolic, numeric, 1e-6 * std::max(1.0, numeric))
            << "at " << mhz << " MHz";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PwlAgreement,
    ::testing::Combine(::testing::ValuesIn(kAllScenarios),
                       ::testing::Range(0, 6)));

TEST(AicoreTimeline, DependentSlowerThanIndependent)
{
    // Serialising Ld -> core -> St can only add cycles.
    MemorySystem memory;
    HwOpParams indep = baseParams(Scenario::PingPongFreeIndependent);
    HwOpParams dep = baseParams(Scenario::PingPongFreeDependent);
    AicoreTimeline t_indep(indep, memory);
    AicoreTimeline t_dep(dep, memory);
    for (double mhz : {1000.0, 1400.0, 1800.0})
        EXPECT_GE(t_dep.cycles(mhz), t_indep.cycles(mhz));
}

TEST(AicoreTimeline, PingPongFasterThanPingPongFree)
{
    // Double buffering overlaps transfers with compute.
    MemorySystem memory;
    HwOpParams no_pp = baseParams(Scenario::PingPongFreeDependent);
    HwOpParams pp = baseParams(Scenario::PingPongDependent);
    AicoreTimeline t_no(no_pp, memory);
    AicoreTimeline t_pp(pp, memory);
    for (double mhz : {1000.0, 1400.0, 1800.0})
        EXPECT_LT(t_pp.cycles(mhz), t_no.cycles(mhz));
}

TEST(AicoreTimeline, NonComputeUsesFixedDuration)
{
    MemorySystem memory;
    HwOpParams params;
    params.category = OpCategory::Communication;
    params.fixed_seconds = 2.5e-3;
    AicoreTimeline timeline(params, memory);
    EXPECT_DOUBLE_EQ(timeline.seconds(1000.0), 2.5e-3);
    EXPECT_DOUBLE_EQ(timeline.seconds(1800.0), 2.5e-3);
    EXPECT_DOUBLE_EQ(timeline.cycles(1800.0), 0.0);
}

TEST(AicoreTimeline, RatiosSumBelowOneForOverheadDominatedOp)
{
    // No-pipeline-bound operators (Sect. 6.1): dispatch overhead
    // dominates, so accounted pipeline activity is under 100%.
    MemorySystem memory;
    HwOpParams params = baseParams(Scenario::PingPongFreeIndependent);
    params.n = 1;
    params.core_cycles = 3'000.0;
    params.ld_volume_bytes = 2e4;
    params.st_volume_bytes = 1e4;
    params.overhead_seconds = 10e-6;
    AicoreTimeline timeline(params, memory);
    EXPECT_LT(timeline.ratios(1800.0).sum(), 1.0);
}

TEST(AicoreTimeline, RatiosInUnitRangeAndAssignedToConfiguredPipe)
{
    MemorySystem memory;
    HwOpParams params = baseParams(Scenario::PingPongIndependent);
    params.core_pipe = CorePipe::Cube;
    params.core_cycles = 60'000.0;
    AicoreTimeline timeline(params, memory);
    PipelineRatios r = timeline.ratios(1800.0);
    for (double ratio : {r.cube, r.vector, r.scalar, r.mte1, r.mte2, r.mte3}) {
        EXPECT_GE(ratio, 0.0);
        EXPECT_LE(ratio, 1.0);
    }
    EXPECT_GT(r.cube, 0.0);
    EXPECT_DOUBLE_EQ(r.vector, 0.0);
    EXPECT_DOUBLE_EQ(r.scalar, 0.0);
}

TEST(AicoreTimeline, UncoreSaturatedOpTimeFlatAboveSaturation)
{
    // A pure-transfer op above fs: time becomes frequency-independent
    // (up to the T0 f and overhead terms).
    MemorySystem memory;
    HwOpParams params = baseParams(Scenario::PingPongIndependent);
    params.core_cycles = 10.0; // negligible compute
    params.ld_volume_bytes = 4e6;
    params.ld_l2_hit = 0.0;
    params.st_volume_bytes = 0.0;
    params.t0_seconds = 0.0;
    params.overhead_seconds = 0.0;

    AicoreTimeline timeline(params, memory);
    double fs = memory.saturationMhz(params.ld_l2_hit);
    double just_above = timeline.seconds(fs * 1.05);
    double far_above = timeline.seconds(fs * 1.5);
    EXPECT_NEAR(just_above, far_above, just_above * 0.01);
    // And well below fs, time scales like 1/f.
    double t_low = timeline.seconds(fs * 0.5);
    EXPECT_NEAR(t_low / just_above, 2.0 * 1.05, 0.15);
}

TEST(AicoreTimeline, InvalidParamsThrow)
{
    MemorySystem memory;
    HwOpParams params = baseParams(Scenario::PingPongIndependent);
    params.n = 0;
    EXPECT_THROW(AicoreTimeline(params, memory), std::invalid_argument);
    params = baseParams(Scenario::PingPongIndependent);
    params.core_cycles = -1.0;
    EXPECT_THROW(AicoreTimeline(params, memory), std::invalid_argument);
}

} // namespace
} // namespace opdvfs::npu
