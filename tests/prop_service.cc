/**
 * @file
 * Service differential property suite: the strategy service against
 * its own cache.  A repeated request is an exact hit byte-identical
 * to the cold answer; after a model-epoch advance the same request is
 * recomputed as a warm start that never scores below its donor.
 *
 * Each case runs the full pipeline (simulator profile + GA search),
 * so this is the heaviest suite; it lives in its own binary so ctest
 * can schedule it alongside prop_differential.
 */

#include <gtest/gtest.h>

#include "check/prop.h"
#include "diff_case.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

TEST(PropService, ServiceCacheIsEquivalentToRecomputation)
{
    Property<DiffCase> prop(
        "service-cache-equivalence",
        [](Rng &rng) { return genDiffCase(rng, 2, 5); },
        [](const DiffCase &diff_case) {
            return checkServiceCacheEquivalence(diff_case.workload,
                                                diff_case.seed);
        });
    prop.withShrinker(shrinkDiffCase).withPrinter(showDiffCase);
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
