/**
 * @file
 * Property suite over the genetic strategy search (paper Sect. 6.3,
 * Eq. 17): on tiny instances — at most 4 stages x 3 supported
 * frequencies — the GA never scores above the exhaustive optimum
 * (soundness), always reaches it (the search budget covers the genome
 * space many times over), and its reported artefacts are consistent
 * (best genome rescores to the reported score, the score history
 * never regresses, refinement never hurts).
 */

#include <gtest/gtest.h>

#include "check/generators.h"
#include "check/oracles.h"
#include "check/prop.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

TEST(PropGa, MatchesExhaustiveOptimumOnTinyInstances)
{
    Property<TinyProblem> prop(
        "ga-vs-exhaustive",
        [](Rng &rng) { return genTinyProblem(rng, 4, 3); },
        checkGaOptimality);
    prop.withPrinter([](const TinyProblem &problem) {
        return show(problem);
    });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
