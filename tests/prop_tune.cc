/**
 * @file
 * Property suite over the tune subsystem.
 *
 * The load-bearing invariant is the incremental-fitness contract: for
 * any problem and any seeded stream of elites, mutated children and
 * foreign genomes, IncrementalFitness::scoreGeneration (copy the
 * parent's reduction tree, patch dirty leaves, recompute ancestors)
 * is BITWISE identical to scoring every genome from scratch — same
 * score bits, same evaluation bits.  The surrogate must be exactly
 * reproducible (same corpus, same predictions), and every predicted
 * strategy must be frequency-table-snapped and meet the Eq. 17
 * performance lower bound after repair.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <vector>

#include "check/generators.h"
#include "check/prop.h"
#include "dvfs/genetic.h"
#include "npu/freq_table.h"
#include "power/power_model.h"
#include "tune/features.h"
#include "tune/incremental.h"
#include "tune/surrogate.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a)
           == std::bit_cast<std::uint64_t>(b);
}

bool
sameBits(const dvfs::StrategyEvaluation &a,
         const dvfs::StrategyEvaluation &b)
{
    return sameBits(a.seconds, b.seconds)
           && sameBits(a.aicore_joules, b.aicore_joules)
           && sameBits(a.soc_joules, b.soc_joules)
           && sameBits(a.aicore_watts, b.aicore_watts)
           && sameBits(a.soc_watts, b.soc_watts)
           && sameBits(a.delta_t, b.delta_t);
}

// --- incremental fitness is bit-exact ----------------------------------

struct MutationCase
{
    TinyProblem problem;
    std::uint64_t stream_seed = 0;
    int population = 6;
    int generations = 4;
};

std::string
show(const MutationCase &c)
{
    std::ostringstream os;
    os << "stream_seed=" << c.stream_seed << " population="
       << c.population << " generations=" << c.generations << "\n"
       << check::show(c.problem);
    return os.str();
}

/**
 * Replays a GA-shaped breeding stream against the backend: elites
 * (parent copy, no dirty spans), children (point/block/tail
 * mutations with their spans recorded, sometimes over-approximated)
 * and foreign genomes (no parent, full build).  Every generation is
 * cross-checked slot by slot against scoreOne full builds.
 */
std::optional<std::string>
checkIncrementalBitExact(const MutationCase &c)
{
    npu::FreqTable table(c.problem.freq);
    power::PowerModel power_model(c.problem.constants, table);
    dvfs::StageEvaluator evaluator(c.problem.stages, c.problem.perf,
                                   power_model, c.problem.op_power,
                                   table);
    const std::size_t n = evaluator.stageCount();
    const std::size_t freqs = evaluator.freqCount();
    if (n == 0)
        return std::string("tiny problem produced no stages");

    dvfs::StrategyEvaluation baseline = evaluator.evaluateBaseline();
    double per_lb = 1e-6 / baseline.seconds
                    * (1.0 - c.problem.perf_loss_target);

    tune::IncrementalFitness backend(evaluator);
    tune::IncrementalFitness reference(evaluator);

    Rng rng(c.stream_seed);
    auto random_genome = [&] {
        std::vector<std::uint8_t> genome(n);
        for (std::uint8_t &gene : genome)
            gene = static_cast<std::uint8_t>(rng.index(freqs));
        return genome;
    };

    std::size_t population = static_cast<std::size_t>(c.population);
    std::vector<std::vector<std::uint8_t>> current;
    for (std::size_t i = 0; i < population; ++i)
        current.push_back(random_genome());
    std::vector<dvfs::GenomeLineage> lineage(population); // all kNoParent

    // Exercise both the serial path and a caller-supplied loop that
    // visits indices in reverse: scoring must not depend on order.
    dvfs::ParallelFor reversed =
        [](std::size_t count, const std::function<void(std::size_t)> &fn) {
            for (std::size_t i = count; i-- > 0;)
                fn(i);
        };

    bool scored_with_parent = false;
    for (int gen = 0; gen < c.generations; ++gen) {
        for (const dvfs::GenomeLineage &lin : lineage)
            if (lin.parent != dvfs::GenomeLineage::kNoParent)
                scored_with_parent = true;
        std::vector<double> scores;
        std::vector<dvfs::StrategyEvaluation> evals;
        backend.scoreGeneration(current, lineage, per_lb,
                                gen % 2 == 0 ? dvfs::ParallelFor{}
                                             : reversed,
                                scores, evals);
        if (scores.size() != current.size()
            || evals.size() != current.size())
            return std::string("scoreGeneration wrote wrong sizes");

        for (std::size_t i = 0; i < current.size(); ++i) {
            double full_score = 0.0;
            dvfs::StrategyEvaluation full_eval;
            reference.scoreOne(current[i], per_lb, full_score,
                               full_eval);
            if (!sameBits(scores[i], full_score)
                || !sameBits(evals[i], full_eval)) {
                std::ostringstream os;
                os << "generation " << gen << " slot " << i
                   << ": incremental score "
                   << std::hexfloat << scores[i]
                   << " != full score " << full_score
                   << " (parent "
                   << (lineage[i].parent
                               == dvfs::GenomeLineage::kNoParent
                           ? std::string("none")
                           : std::to_string(lineage[i].parent))
                   << ", " << lineage[i].dirty.size()
                   << " dirty spans)";
                return os.str();
            }
        }

        // Breed the next generation with recorded lineage.
        std::vector<std::vector<std::uint8_t>> next;
        std::vector<dvfs::GenomeLineage> next_lineage;
        for (std::size_t i = 0; i < population; ++i) {
            double kind = rng.uniform(0.0, 1.0);
            if (kind < 0.2) { // elite: bitwise copy, no dirty spans
                std::size_t parent = rng.index(current.size());
                next.push_back(current[parent]);
                next_lineage.push_back({parent, {}});
                continue;
            }
            if (kind < 0.35) { // foreign genome: full build
                next.push_back(random_genome());
                next_lineage.push_back(
                    {dvfs::GenomeLineage::kNoParent, {}});
                continue;
            }
            std::size_t parent = rng.index(current.size());
            std::vector<std::uint8_t> child = current[parent];
            std::vector<dvfs::GeneSpan> dirty;
            int edits = static_cast<int>(rng.uniformInt(1, 3));
            for (int e = 0; e < edits; ++e) {
                switch (rng.uniformInt(0, 2)) {
                case 0: { // point mutation
                    std::size_t at = rng.index(n);
                    child[at] =
                        static_cast<std::uint8_t>(rng.index(freqs));
                    dirty.push_back({at, at + 1});
                    break;
                }
                case 1: { // block mutation
                    std::size_t start = rng.index(n);
                    std::size_t len = 1 + rng.index(
                        std::min<std::size_t>(4, n - start));
                    for (std::size_t at = start; at < start + len; ++at)
                        child[at] = static_cast<std::uint8_t>(
                            rng.index(freqs));
                    dirty.push_back({start, start + len});
                    break;
                }
                default: { // tail swap from another parent
                    std::size_t other = rng.index(current.size());
                    std::size_t k = rng.index(n + 1);
                    for (std::size_t at = n - k; at < n; ++at)
                        child[at] = current[other][at];
                    if (k > 0)
                        dirty.push_back({n - k, n});
                    break;
                }
                }
            }
            // A span may legally over-approximate (cover genes the
            // edit left equal); the patch must still be exact.
            if (!dirty.empty() && rng.chance(0.3))
                dirty.back().end = std::min(dirty.back().end + 1, n);
            next.push_back(std::move(child));
            next_lineage.push_back({parent, std::move(dirty)});
        }
        current = std::move(next);
        lineage = std::move(next_lineage);
    }

    tune::IncrementalStats stats = backend.stats();
    if (stats.full_builds == 0)
        return std::string("backend never did a full build");
    if (scored_with_parent && stats.incremental_builds == 0)
        return std::string("backend never took the incremental path");
    if (stats.genes_patched > stats.genes_total)
        return std::string("patched more genes than a full rebuild");
    return std::nullopt;
}

TEST(PropTune, IncrementalFitnessBitExactUnderMutationStreams)
{
    Property<MutationCase> prop(
        "incremental-fitness-bit-exact",
        [](Rng &rng) {
            MutationCase c;
            c.problem = genTinyProblem(rng, 6, 4);
            c.stream_seed = static_cast<std::uint64_t>(
                rng.uniformInt(0, 1'000'000'000));
            c.population = static_cast<int>(rng.uniformInt(2, 8));
            c.generations = static_cast<int>(rng.uniformInt(1, 5));
            return c;
        },
        checkIncrementalBitExact);
    prop.withShrinker([](const MutationCase &c) {
        std::vector<MutationCase> smaller;
        if (c.generations > 1) {
            MutationCase s = c;
            s.generations = c.generations / 2;
            smaller.push_back(s);
        }
        if (c.population > 2) {
            MutationCase s = c;
            s.population = c.population / 2 < 2 ? 2 : c.population / 2;
            smaller.push_back(s);
        }
        return smaller;
    });
    prop.withPrinter([](const MutationCase &c) { return show(c); });
    OPDVFS_CHECK_PROP(prop);
}

// --- surrogate determinism ---------------------------------------------

struct SurrogateCase
{
    std::uint64_t seed = 0;
    int observations = 4;
    int rows_per_observation = 3;
};

tune::Observation
genObservation(Rng &rng, int rows)
{
    tune::Observation observation;
    for (int r = 0; r < rows; ++r) {
        tune::StageSample sample;
        for (std::size_t f = 0; f < tune::kStageFeatureCount; ++f)
            sample.features.push_back(rng.uniform(-2.0, 2.0));
        sample.target_mhz = rng.uniform(200.0, 2200.0);
        observation.push_back(std::move(sample));
    }
    return observation;
}

std::optional<std::string>
checkSurrogateDeterminism(const SurrogateCase &c)
{
    Rng rng(c.seed);
    std::vector<tune::Observation> corpus;
    for (int o = 0; o < c.observations; ++o)
        corpus.push_back(genObservation(rng, c.rows_per_observation));
    tune::Observation probe = genObservation(rng, 5);
    tune::Observation extra = genObservation(rng, c.rows_per_observation);

    tune::SurrogateOptions options;
    options.min_rows = 1;
    options.refit_interval_rows = 1;
    options.boost_rounds = 6;
    options.quantile_cuts = 4;

    tune::Surrogate first(options);
    tune::Surrogate second(options);
    first.seedCorpus(corpus);
    second.seedCorpus(corpus);
    if (!first.ready() || !second.ready())
        return std::string("surrogate not ready after seeding");

    std::vector<double> a = first.predictMhz(probe);
    std::vector<double> b = second.predictMhz(probe);
    if (a.size() != b.size() || a.size() != probe.size())
        return std::string("prediction size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!sameBits(a[i], b[i]))
            return std::string("same corpus, different predictions");

    // Same prediction twice from one instance (snapshot stability).
    std::vector<double> again = first.predictMhz(probe);
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!sameBits(a[i], again[i]))
            return std::string("prediction is not stable");

    // One more identical observation each: still in lockstep.
    first.observe(extra);
    second.observe(extra);
    std::vector<double> c1 = first.predictMhz(probe);
    std::vector<double> c2 = second.predictMhz(probe);
    for (std::size_t i = 0; i < c1.size(); ++i)
        if (!sameBits(c1[i], c2[i]))
            return std::string(
                "same observation stream, different models");
    return std::nullopt;
}

TEST(PropTune, SurrogateIsDeterministicOverTheCorpus)
{
    Property<SurrogateCase> prop(
        "surrogate-determinism",
        [](Rng &rng) {
            SurrogateCase c;
            c.seed = static_cast<std::uint64_t>(
                rng.uniformInt(0, 1'000'000'000));
            c.observations = static_cast<int>(rng.uniformInt(1, 8));
            c.rows_per_observation =
                static_cast<int>(rng.uniformInt(1, 6));
            return c;
        },
        checkSurrogateDeterminism);
    prop.withPrinter([](const SurrogateCase &c) {
        std::ostringstream os;
        os << "seed=" << c.seed << " observations=" << c.observations
           << " rows=" << c.rows_per_observation;
        return os.str();
    });
    OPDVFS_CHECK_PROP(prop);
}

// --- predicted strategies are snapped and feasible ---------------------

struct PredictCase
{
    TinyProblem problem;
    std::uint64_t seed = 0;
};

std::optional<std::string>
checkPredictedStrategy(const PredictCase &c)
{
    npu::FreqTable table(c.problem.freq);
    power::PowerModel power_model(c.problem.constants, table);
    dvfs::StageEvaluator evaluator(c.problem.stages, c.problem.perf,
                                   power_model, c.problem.op_power,
                                   table);
    const std::size_t n = evaluator.stageCount();
    if (n == 0)
        return std::string("tiny problem produced no stages");

    Rng rng(c.seed);
    tune::SurrogateOptions options;
    options.min_rows = 1;
    options.refit_interval_rows = 1;
    options.boost_rounds = 4;
    options.quantile_cuts = 4;
    tune::Surrogate surrogate(options);
    int trainings = static_cast<int>(rng.uniformInt(1, 4));
    for (int t = 0; t < trainings; ++t)
        surrogate.observe(
            genObservation(rng, static_cast<int>(rng.uniformInt(1, 6))));
    if (!surrogate.ready())
        return std::string("surrogate not ready after observe()");

    tune::Observation rows =
        genObservation(rng, static_cast<int>(n));
    tune::PredictedStrategy predicted = tune::predictStrategy(
        surrogate, rows, evaluator, c.problem.perf_loss_target);

    if (predicted.genome.size() != n || predicted.mhz.size() != n)
        return std::string("prediction has wrong stage count");
    const std::vector<double> &freqs = evaluator.frequenciesMhz();
    for (std::size_t s = 0; s < n; ++s) {
        if (predicted.genome[s] >= freqs.size())
            return std::string("gene outside the frequency table");
        if (!sameBits(predicted.mhz[s], freqs[predicted.genome[s]]))
            return std::string(
                "predicted MHz is not a table frequency");
    }

    double per_lb = 1e-6 / predicted.baseline_eval.seconds
                    * (1.0 - c.problem.perf_loss_target);
    double per = 1e-6 / predicted.eval.seconds;
    if (per < per_lb) {
        std::ostringstream os;
        os << "infeasible prediction: per " << per << " < bound "
           << per_lb << " after " << predicted.repair_steps
           << " repair steps";
        return os.str();
    }

    // The reported score/eval must be a real evaluator evaluation of
    // the returned genome, not an estimate.
    dvfs::StrategyEvaluation check_eval =
        evaluator.evaluate(predicted.genome);
    if (!sameBits(check_eval, predicted.eval))
        return std::string("reported eval is not evaluate(genome)");
    if (!sameBits(predicted.score,
                  dvfs::strategyScore(check_eval, per_lb)))
        return std::string("reported score is not Eq. 17 of the eval");

    // Determinism end to end: the same prediction twice.
    tune::PredictedStrategy second = tune::predictStrategy(
        surrogate, rows, evaluator, c.problem.perf_loss_target);
    if (second.genome != predicted.genome
        || !sameBits(second.score, predicted.score))
        return std::string("predictStrategy is not deterministic");
    return std::nullopt;
}

TEST(PropTune, PredictedStrategiesAreSnappedAndFeasible)
{
    Property<PredictCase> prop(
        "predicted-strategy-snapped-feasible",
        [](Rng &rng) {
            PredictCase c;
            c.problem = genTinyProblem(rng, 6, 4);
            c.seed = static_cast<std::uint64_t>(
                rng.uniformInt(0, 1'000'000'000));
            return c;
        },
        checkPredictedStrategy);
    prop.withPrinter([](const PredictCase &c) {
        std::ostringstream os;
        os << "seed=" << c.seed << "\n" << check::show(c.problem);
        return os.str();
    });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
