/**
 * Loopback end-to-end tests for the strategy server and client: a
 * cold request and its exact hit answered over TCP byte-identical to
 * the in-process service, structured Busy backpressure under a
 * one-slot admission queue, client retry-after-Busy, request
 * deadlines against a stalled server, malformed-frame handling, chip
 * mismatch, the plaintext admin endpoint, and graceful shutdown
 * (server stop drains the service).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/transformer.h"
#include "net/client.h"
#include "net/server.h"
#include "power/offline_calibration.h"

namespace opdvfs::net {
namespace {

models::Workload
testWorkload(int seq)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "net-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, 5);
}

const power::CalibratedConstants &
constants()
{
    static const power::CalibratedConstants value =
        power::calibrateOffline(npu::NpuConfig{});
    return value;
}

serve::ServiceOptions
fastOptions(std::size_t workers)
{
    serve::ServiceOptions options;
    options.pipeline.warmup_seconds = 2.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 30;
    options.pipeline.ga.generations = 24;
    options.pipeline.ga.refine_sweeps = 2;
    options.pipeline.constants = constants();
    options.workers = workers;
    options.cache.capacity = 32;
    options.cache.shards = 4;
    return options;
}

WireRequest
testWireRequest(int seq, std::uint64_t seed)
{
    WireRequest request;
    request.workload = testWorkload(seq);
    request.seed = seed;
    return request;
}

/** Strategy text with the provenance token pinned, so cold and
 *  exact-hit strategies (which differ only in that token) compare. */
std::string
normalisedStrategyText(dvfs::Strategy strategy)
{
    if (strategy.meta)
        strategy.meta->provenance = "normalised";
    std::ostringstream os;
    dvfs::saveStrategy(strategy, os);
    return os.str();
}

TEST(NetServer, ColdAndExactHitMatchTheInProcessService)
{
    serve::ServiceOptions options = fastOptions(2);
    serve::StrategyService in_process(options);
    serve::StrategyService served(options);
    StrategyServer server(served, {});
    server.start();

    StrategyClient client("127.0.0.1", server.port());
    WireRequest request = testWireRequest(256, 3);

    // Ground truth: the same request answered without any network.
    serve::StrategyRequest direct;
    direct.workload = request.workload;
    direct.perf_loss_target = request.perf_loss_target;
    direct.seed = request.seed;
    serve::StrategyResponse local = in_process.submit(direct).get();

    WireResponse cold = client.call(request);
    EXPECT_EQ(cold.status, Status::Ok);
    EXPECT_EQ(cold.provenance, serve::Provenance::Cold);
    EXPECT_EQ(cold.fingerprint_digest, local.fingerprint.digest);
    EXPECT_EQ(cold.best_score, local.ga.best_score);
    EXPECT_EQ(normalisedStrategyText(cold.strategy),
              normalisedStrategyText(local.strategy));

    // The second identical request is an exact hit with the same
    // strategy, byte for byte.
    WireResponse hit = client.call(request);
    EXPECT_EQ(hit.status, Status::Ok);
    EXPECT_EQ(hit.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(hit.fingerprint_digest, cold.fingerprint_digest);
    EXPECT_EQ(hit.best_score, cold.best_score);
    EXPECT_EQ(normalisedStrategyText(hit.strategy),
              normalisedStrategyText(cold.strategy));

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.frames_in, 2u);
    EXPECT_EQ(stats.responses_ok, 2u);
    EXPECT_EQ(stats.responses_malformed, 0u);
    EXPECT_EQ(client.retries(), 0u);
    server.stop();
}

TEST(NetServer, BusyRejectionCarriesTheStructuredCause)
{
    serve::ServiceOptions options = fastOptions(1);
    options.admission_capacity = 1;
    serve::StrategyService service(options);
    StrategyServer server(service, {});
    server.start();

    // Occupy the single admission slot with a cold uncached run (it
    // holds the slot for the whole pipeline, hundreds of ms).
    serve::StrategyRequest occupier;
    occupier.workload = testWorkload(512);
    occupier.use_cache = false;
    serve::Admission admitted = service.trySubmit(occupier);
    ASSERT_TRUE(admitted.accepted());

    ClientOptions no_retry;
    no_retry.max_attempts = 1;
    StrategyClient client("127.0.0.1", server.port(), no_retry);
    try {
        client.call(testWireRequest(256, 7));
        FAIL() << "expected BusyError";
    } catch (const BusyError &busy) {
        EXPECT_EQ(busy.reason(), serve::RejectReason::QueueFull);
        // Queue-full rejections always carry a backpressure hint (the
        // service clamps its estimate to at least 1 ms).
        EXPECT_GE(busy.retry_after_ms(), 1u);
    }
    EXPECT_GE(server.stats().responses_busy, 1u);

    // The connection survived the rejection: once the slot frees,
    // the same client completes on the same connection.
    admitted.future->get();
    EXPECT_TRUE(client.connected());
    WireResponse ok = client.call(testWireRequest(256, 7));
    EXPECT_EQ(ok.status, Status::Ok);
    server.stop();
}

TEST(NetServer, ClientRetriesAfterBusyAndCompletes)
{
    serve::ServiceOptions options = fastOptions(1);
    options.admission_capacity = 1;
    serve::StrategyService service(options);
    StrategyServer server(service, {});
    server.start();

    serve::StrategyRequest occupier;
    occupier.workload = testWorkload(512);
    occupier.use_cache = false;
    serve::Admission admitted = service.trySubmit(occupier);
    ASSERT_TRUE(admitted.accepted());

    ClientOptions retrying;
    retrying.max_attempts = 200;
    retrying.backoff_initial_seconds = 0.02;
    retrying.backoff_max_seconds = 0.05;
    StrategyClient client("127.0.0.1", server.port(), retrying);

    // First attempt happens while the slot is held: the client backs
    // off on the structured Busy and keeps trying until admitted.
    WireResponse response = client.call(testWireRequest(256, 11));
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_GE(client.retries(), 1u);
    EXPECT_GE(server.stats().responses_busy, 1u);
    admitted.future->get();
    server.stop();
}

TEST(NetServer, DeadlineFiresAgainstAStalledServer)
{
    // A listener that accepts into its backlog and never answers.
    int stall_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(stall_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(stall_fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(stall_fd, 4), 0);
    socklen_t addr_len = sizeof(addr);
    ASSERT_EQ(::getsockname(stall_fd, reinterpret_cast<sockaddr *>(&addr),
                            &addr_len),
              0);

    ClientOptions options;
    options.request_timeout_seconds = 0.3;
    options.max_attempts = 5; // deadlines must NOT consume retries
    StrategyClient client("127.0.0.1", ntohs(addr.sin_port), options);
    EXPECT_THROW(client.call(testWireRequest(64, 1)), DeadlineError);
    EXPECT_EQ(client.retries(), 0u);
    EXPECT_FALSE(client.connected());
    ::close(stall_fd);
}

TEST(NetServer, MalformedStreamIsAnsweredThenClosed)
{
    serve::StrategyService service(fastOptions(1));
    StrategyServer server(service, {});
    server.start();

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    // 'O' routes into frame mode; the rest is not a valid header.
    std::string garbage = "OXXXXXXXXXXXXXXXXXXXXXXX";
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));

    std::string bytes;
    char chunk[4096];
    ssize_t got;
    while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        bytes.append(chunk, static_cast<std::size_t>(got));
    ::close(fd);

    // One well-formed Malformed response, then an orderly close.
    std::size_t consumed = 0;
    auto frame = peelFrame(bytes, &consumed);
    ASSERT_TRUE(frame.has_value());
    WireResponse response = decodeResponse(frame->payload);
    EXPECT_EQ(response.status, Status::Malformed);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_GE(server.stats().responses_malformed, 1u);
    server.stop();
}

TEST(NetServer, ChipMismatchIsStructuredAndNotRetried)
{
    serve::StrategyService service(fastOptions(1));
    StrategyServer server(service, {});
    server.start();

    StrategyClient client("127.0.0.1", server.port());
    WireRequest request = testWireRequest(128, 1);
    request.chip.uncore_power.idle_watts += 1.0;
    try {
        client.call(request);
        FAIL() << "expected RemoteError";
    } catch (const RemoteError &remote) {
        EXPECT_EQ(remote.status(), Status::ChipMismatch);
    }
    EXPECT_EQ(client.retries(), 0u);
    EXPECT_GE(server.stats().responses_chip_mismatch, 1u);
    server.stop();
}

TEST(NetServer, AdminEndpointServesHealthAndStats)
{
    serve::StrategyService service(fastOptions(2));
    StrategyServer server(service, {});
    server.start();

    EXPECT_EQ(adminQuery("127.0.0.1", server.port(), "HEALTH"), "ok\n");

    StrategyClient client("127.0.0.1", server.port());
    client.call(testWireRequest(128, 2));

    std::string stats = adminQuery("127.0.0.1", server.port(), "STATS");
    EXPECT_NE(stats.find("responses_ok 1\n"), std::string::npos) << stats;
    EXPECT_NE(stats.find("service_requests 1\n"), std::string::npos);
    EXPECT_NE(stats.find("p95_service_seconds "), std::string::npos);
    EXPECT_NE(stats.find("service_draining 0\n"), std::string::npos);
    // Overload-control observability: uptime, the deadline/shedding
    // counters and the live EWMAs/hint all surface through STATS.
    EXPECT_NE(stats.find("uptime_seconds "), std::string::npos);
    EXPECT_NE(stats.find("responses_expired 0\n"), std::string::npos);
    EXPECT_NE(stats.find("service_expired_in_queue 0\n"),
              std::string::npos);
    EXPECT_NE(stats.find("service_shed_early 0\n"), std::string::npos);
    EXPECT_NE(stats.find("service_ga_runs_past_deadline 0\n"),
              std::string::npos);
    EXPECT_NE(stats.find("sojourn_ewma_seconds "), std::string::npos);
    EXPECT_NE(stats.find("cold_ewma_seconds "), std::string::npos);
    EXPECT_NE(stats.find("retry_after_hint_ms "), std::string::npos);
    // Predict-then-refine and similarity-scan observability.
    EXPECT_NE(stats.find("service_predicted_served 0\n"),
              std::string::npos);
    EXPECT_NE(stats.find("service_refine_upgrades 0\n"),
              std::string::npos);
    EXPECT_NE(stats.find("service_refine_discards 0\n"),
              std::string::npos);
    EXPECT_NE(stats.find("service_refines_in_flight 0\n"),
              std::string::npos);
    EXPECT_NE(stats.find("cache_similar_scanned "), std::string::npos);
    EXPECT_NE(stats.find("cache_similar_pruned "), std::string::npos);

    EXPECT_EQ(adminQuery("127.0.0.1", server.port(), "NOPE"),
              "error unknown-command\n");
    server.stop();
}

/** Loopback socket connected to @p port, or -1. */
int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Read until @p count responses decoded or EOF; sets @p eof. */
std::vector<WireResponse>
readResponses(int fd, std::size_t count, bool *eof)
{
    std::vector<WireResponse> responses;
    std::string buffer;
    char chunk[4096];
    *eof = false;
    while (responses.size() < count) {
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0) {
            *eof = true;
            return responses;
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
        for (;;) {
            std::size_t consumed = 0;
            auto frame = peelFrame(buffer, &consumed);
            if (!frame)
                break;
            responses.push_back(decodeResponse(frame->payload));
            buffer.erase(0, consumed);
        }
    }
    return responses;
}

// A peer spewing intact frames whose payloads never decode cannot
// hold a connection slot forever: after max_payload_errors
// *consecutive* payload errors the connection is answered then
// closed — but one good frame resets the streak.
TEST(NetServer, PayloadErrorStreakClosesTheConnection)
{
    serve::StrategyService service(fastOptions(1));
    ServerOptions server_options;
    server_options.max_payload_errors = 2;
    StrategyServer server(service, server_options);
    server.start();

    // Valid framing (magic, version, CRC) around a garbage payload:
    // a payload error, not a framing error.
    std::string bad = frameMessage(MsgType::Request, "not-a-request");
    // Decodes cleanly but for the wrong chip: a "good" frame that
    // resets the streak without costing a GA run.
    WireRequest mismatched = testWireRequest(64, 23);
    mismatched.chip.uncore_power.idle_watts += 1.0;
    std::string good = frameRequest(mismatched);

    // Two consecutive bad payloads: both answered, then closed.
    int fd = connectLoopback(server.port());
    ASSERT_GE(fd, 0);
    std::string burst = bad + bad;
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));
    bool eof = false;
    std::vector<WireResponse> responses = readResponses(fd, 3, &eof);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].status, Status::Malformed);
    EXPECT_EQ(responses[1].status, Status::Malformed);
    EXPECT_TRUE(eof);
    ::close(fd);

    // A good frame between bad ones resets the count: bad, good,
    // bad, bad is answered in full before the close.
    fd = connectLoopback(server.port());
    ASSERT_GE(fd, 0);
    burst = bad + good + bad + bad;
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
              static_cast<ssize_t>(burst.size()));
    responses = readResponses(fd, 5, &eof);
    ASSERT_EQ(responses.size(), 4u);
    EXPECT_EQ(responses[0].status, Status::Malformed);
    EXPECT_EQ(responses[1].status, Status::ChipMismatch);
    EXPECT_EQ(responses[2].status, Status::Malformed);
    EXPECT_EQ(responses[3].status, Status::Malformed);
    EXPECT_TRUE(eof);
    ::close(fd);
    server.stop();
}

// While stop() drains in-flight work the listener stays open, so a
// load balancer probing HEALTH sees `draining` instead of a refused
// connection — and can fail the instance over gracefully.
TEST(NetServer, HealthReportsDrainingWhileStopDrains)
{
    serve::ServiceOptions options = fastOptions(1);
    serve::StrategyService service(options);
    StrategyServer server(service, {});
    server.start();

    // The slow request must be server-admitted (not submitted straight
    // to the service): stop() only waits out completions the server
    // itself owes, so a direct submit would drain instantly.
    WireRequest slow = testWireRequest(512, 47);
    slow.use_cache = false;
    std::thread requester([&] {
        StrategyClient client("127.0.0.1", server.port());
        try {
            client.call(slow);
        } catch (const std::exception &) {
            // The stop() below may cut the response path; the drain
            // behaviour is what this test observes.
        }
    });
    for (int spin = 0; spin < 500 && service.stats().in_flight == 0;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(service.stats().in_flight, 1u);

    EXPECT_EQ(adminQuery("127.0.0.1", server.port(), "HEALTH"), "ok\n");

    std::thread stopper([&] { server.stop(); });
    bool saw_draining = false;
    for (int spin = 0; spin < 200 && !saw_draining; ++spin) {
        try {
            saw_draining = adminQuery("127.0.0.1", server.port(),
                                      "HEALTH", 0.5)
                           == "draining\n";
        } catch (const std::exception &) {
            break; // listener already closed: the drain beat us
        }
    }
    stopper.join();
    requester.join();
    EXPECT_TRUE(saw_draining);
}

// Deadline propagation end to end: the client stamps its remaining
// budget into the frame, and a request whose budget expires while
// queued behind a busy worker is answered Busy/Expired without the
// GA ever running for it.
TEST(NetServer, QueuedRequestPastItsDeadlineExpiresWithoutAGaRun)
{
    serve::ServiceOptions options = fastOptions(1);
    serve::StrategyService service(options);
    StrategyServer server(service, {});
    server.start();

    // Hold the single worker well past the client's budget: one cold
    // search lasts a couple hundred milliseconds, so a wall of four
    // keeps the worker busy for ~1 s against a 0.2 s deadline.
    std::vector<serve::Admission> wall;
    for (std::uint64_t seed = 41; seed < 45; ++seed) {
        serve::StrategyRequest occupier;
        occupier.workload = testWorkload(768);
        occupier.use_cache = false;
        occupier.seed = seed;
        wall.push_back(service.trySubmit(occupier));
        ASSERT_TRUE(wall.back().accepted());
    }

    ClientOptions one_shot;
    one_shot.max_attempts = 1;
    one_shot.request_timeout_seconds = 0.2;
    StrategyClient client("127.0.0.1", server.port(), one_shot);
    try {
        client.call(testWireRequest(256, 31));
        FAIL() << "expected the deadline to fire";
    } catch (const DeadlineError &) {
        // The usual outcome: the caller gives up first; the server
        // must still expire the queued work instead of running it.
    } catch (const BusyError &busy) {
        // The server's expiry answer can also win the race.
        EXPECT_EQ(busy.reason(), serve::RejectReason::Expired);
    }
    for (serve::Admission &admitted : wall)
        admitted.future->get();

    for (int spin = 0;
         spin < 500 && service.stats().expired_in_queue == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.expired_in_queue, 1u);
    EXPECT_EQ(stats.ga_runs_past_deadline, 0u);
    for (int spin = 0;
         spin < 100 && server.stats().responses_expired == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(server.stats().responses_expired, 1u);
    server.stop();
}

// Regression: the service releases its admission slot before the
// completion callback runs, so drain() alone does not fence callbacks
// capturing the server.  With the requester's connection already reset
// the loop sees nothing in flight and can exit — stop() must still
// wait for the callback (use-after-free otherwise; caught by the
// asan/tsan presets).
TEST(NetServer, StopWaitsForCompletionsAfterPeerReset)
{
    serve::ServiceOptions options = fastOptions(1);
    serve::StrategyService service(options);
    StrategyServer server(service, {});
    server.start();

    int fd = connectLoopback(server.port());
    ASSERT_GE(fd, 0);
    std::string framed = frameRequest(testWireRequest(128, 21));
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));

    // Wait until the request is admitted (the pipeline holds the slot
    // for the whole search, hundreds of ms).
    for (int spin = 0; spin < 500 && service.stats().in_flight == 0;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(service.stats().in_flight, 1u);

    // Reset the connection mid-request, then stop immediately: the
    // completion callback races the teardown.
    linger hard_reset{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                 sizeof(hard_reset));
    ::close(fd);
    server.stop();

    serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.in_flight, 0u);
    EXPECT_EQ(stats.requests, 1u);
}

// Regression: stop() must stay bounded when a peer neither finishes
// its request nor reads anything.
TEST(NetServer, StopIsBoundedWithAnUnresponsivePeer)
{
    serve::StrategyService service(fastOptions(1));
    ServerOptions server_options;
    server_options.shutdown_flush_seconds = 0.2;
    StrategyServer server(service, server_options);
    server.start();

    int fd = connectLoopback(server.port());
    ASSERT_GE(fd, 0);
    // Half a frame header: the server waits for more bytes forever.
    ASSERT_EQ(::send(fd, kWireMagic, sizeof(kWireMagic), 0),
              static_cast<ssize_t>(sizeof(kWireMagic)));

    auto started = std::chrono::steady_clock::now();
    server.stop();
    double stop_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count();
    EXPECT_LT(stop_seconds, 5.0);
    ::close(fd);
}

TEST(NetServer, StopDrainsTheServiceAndIsIdempotent)
{
    serve::StrategyService service(fastOptions(2));
    StrategyServer server(service, {});
    server.start();

    StrategyClient client("127.0.0.1", server.port());
    EXPECT_EQ(client.call(testWireRequest(128, 4)).status, Status::Ok);

    server.stop();
    EXPECT_TRUE(service.draining());
    serve::StrategyRequest late;
    late.workload = testWorkload(128);
    EXPECT_EQ(service.trySubmit(late, [](serve::StrategyResponse,
                                         std::exception_ptr) {}),
              serve::RejectReason::ShuttingDown);
    server.stop(); // idempotent

    // The port is gone: a fresh call fails in transport (refused),
    // which the client classifies as retryable-but-exhausted.
    ClientOptions one_shot;
    one_shot.max_attempts = 1;
    one_shot.connect_timeout_seconds = 0.5;
    StrategyClient late_client("127.0.0.1", server.port(), one_shot);
    EXPECT_THROW(late_client.call(testWireRequest(128, 4)), NetError);
}

} // namespace
} // namespace opdvfs::net
