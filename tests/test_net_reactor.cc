/**
 * Deterministic multi-reactor server suite: exact hits served by every
 * reactor byte-identical to the in-process worker-path ground truth,
 * round-robin connection distribution asserted through STATS and the
 * per-reactor counter slices, epoch invalidation gating the fast path
 * (a demoted epoch is never served as exact, and the fast path
 * repopulates at the new epoch), graceful stop() draining all
 * reactors, and the idle-reaping / payload-error-streak contracts
 * holding per reactor.  Everything runs in accept-and-distribute mode
 * (connection k lands on reactor k mod N) so distribution assertions
 * are exact, plus one SO_REUSEPORT smoke case where the kernel picks.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/transformer.h"
#include "net/client.h"
#include "net/server.h"
#include "power/offline_calibration.h"

namespace opdvfs::net {
namespace {

models::Workload
testWorkload(int seq)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "reactor-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, 5);
}

const power::CalibratedConstants &
constants()
{
    static const power::CalibratedConstants value =
        power::calibrateOffline(npu::NpuConfig{});
    return value;
}

serve::ServiceOptions
fastOptions(std::size_t workers)
{
    serve::ServiceOptions options;
    options.pipeline.warmup_seconds = 2.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 30;
    options.pipeline.ga.generations = 24;
    options.pipeline.ga.refine_sweeps = 2;
    options.pipeline.constants = constants();
    options.workers = workers;
    options.cache.capacity = 32;
    options.cache.shards = 4;
    return options;
}

WireRequest
testWireRequest(int seq, std::uint64_t seed)
{
    WireRequest request;
    request.workload = testWorkload(seq);
    request.seed = seed;
    return request;
}

int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Send @p frame and read exactly one response frame's raw bytes. */
std::string
roundTripRaw(int fd, const std::string &frame)
{
    if (::send(fd, frame.data(), frame.size(), 0)
        != static_cast<ssize_t>(frame.size()))
        return {};
    std::string buffer;
    char chunk[4096];
    for (;;) {
        std::size_t consumed = 0;
        if (auto peeled = peelFrame(buffer, &consumed)) {
            (void)peeled;
            return buffer.substr(0, consumed);
        }
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            return {};
        buffer.append(chunk, static_cast<std::size_t>(got));
    }
}

/**
 * The frame the worker path would encode for an in-process exact hit
 * on @p service, with service_seconds pinned to 0.0 — the fast path's
 * documented contract.  Built from the service response directly
 * (not via encodeExactHitFrame) so the comparison is an independent
 * oracle, not the implementation checked against itself.
 */
std::string
groundTruthHitFrame(serve::StrategyService &service,
                    const WireRequest &request)
{
    serve::StrategyRequest direct;
    direct.workload = request.workload;
    direct.perf_loss_target = request.perf_loss_target;
    direct.seed = request.seed;
    serve::StrategyResponse local = service.submit(direct).get();
    EXPECT_EQ(local.provenance, serve::Provenance::ExactHit);
    WireResponse wire;
    wire.status = Status::Ok;
    wire.strategy = local.strategy;
    wire.best_score = local.ga.best_score;
    wire.provenance = local.provenance;
    wire.similarity = local.similarity;
    wire.generations_run = static_cast<std::uint32_t>(
        local.generations_run < 0 ? 0 : local.generations_run);
    wire.generations_saved = static_cast<std::uint32_t>(
        local.generations_saved < 0 ? 0 : local.generations_saved);
    wire.service_seconds = 0.0;
    wire.fingerprint_digest = local.fingerprint.digest;
    wire.model_epoch = service.modelEpoch();
    return frameResponse(wire);
}

TEST(NetReactor, ExactHitsFromEveryReactorAreByteIdentical)
{
    serve::StrategyService service(fastOptions(2));
    ServerOptions server_options;
    server_options.reactor_threads = 4;
    StrategyServer server(service, server_options);
    server.start();

    // Prime two workloads through the worker path; the completions
    // publish the pre-encoded frames.
    std::vector<WireRequest> requests = {testWireRequest(256, 3),
                                         testWireRequest(384, 3)};
    {
        StrategyClient primer("127.0.0.1", server.port());
        for (const WireRequest &request : requests)
            ASSERT_EQ(primer.call(request).status, Status::Ok);
    }

    // Ground truth: the same requests answered in-process by the same
    // service (exact hits off the strategy cache), re-encoded the way
    // the worker path serves them.
    std::vector<std::string> expected;
    for (const WireRequest &request : requests)
        expected.push_back(groundTruthHitFrame(service, request));

    // Eight connections deal round-robin onto the four reactors (the
    // primer was connection 1), so every reactor owns exactly two;
    // each connection replays both workloads.
    std::vector<int> fds;
    for (int i = 0; i < 8; ++i) {
        int fd = connectLoopback(server.port());
        ASSERT_GE(fd, 0);
        fds.push_back(fd);
    }
    for (int fd : fds)
        for (std::size_t w = 0; w < requests.size(); ++w) {
            std::string raw = roundTripRaw(fd, frameRequest(requests[w]));
            EXPECT_EQ(raw, expected[w])
                << "fast-path frame differs from the worker-path "
                   "ground truth";
        }
    for (int fd : fds)
        ::close(fd);

    // All 16 storm responses came off the fast path, spread exactly
    // two connections / four hits per reactor.
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.fast_path_hits, 16u);
    ASSERT_EQ(stats.reactors.size(), 4u);
    for (const ReactorStats &reactor : stats.reactors) {
        EXPECT_GE(reactor.connections_accepted, 2u);
        EXPECT_EQ(reactor.fast_path_hits, 4u);
    }

    // The same distribution surfaces through the admin STATS text.
    std::string text = adminQuery("127.0.0.1", server.port(), "STATS");
    EXPECT_NE(text.find("reactor_threads 4\n"), std::string::npos);
    EXPECT_NE(text.find("fast_path_hits 16\n"), std::string::npos);
    for (int i = 0; i < 4; ++i) {
        std::string line = "reactor " + std::to_string(i) + " accepted ";
        EXPECT_NE(text.find(line), std::string::npos) << text;
    }
    server.stop();
}

TEST(NetReactor, EpochInvalidateGatesAndRepopulatesTheFastPath)
{
    serve::StrategyService service(fastOptions(2));
    ServerOptions server_options;
    server_options.reactor_threads = 2;
    StrategyServer server(service, server_options);
    server.start();

    StrategyClient client("127.0.0.1", server.port());
    WireRequest request = testWireRequest(256, 5);

    WireResponse cold = client.call(request);
    ASSERT_EQ(cold.status, Status::Ok);
    EXPECT_EQ(cold.provenance, serve::Provenance::Cold);
    EXPECT_EQ(cold.model_epoch, 0u);

    WireResponse hit = client.call(request);
    EXPECT_EQ(hit.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(hit.service_seconds, 0.0);
    EXPECT_EQ(server.stats().fast_path_hits, 1u);

    // RECAL advances the model epoch: the very next identical request
    // must not be served as an exact hit at the demoted epoch — it
    // recomputes (warm-started by the demoted entry) under epoch 1.
    std::string recal = adminQuery("127.0.0.1", server.port(), "RECAL");
    EXPECT_EQ(recal.rfind("ok epoch 1", 0), 0u) << recal;

    WireResponse recomputed = client.call(request);
    ASSERT_EQ(recomputed.status, Status::Ok);
    EXPECT_NE(recomputed.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(recomputed.model_epoch, 1u);
    EXPECT_EQ(server.stats().fast_path_hits, 1u); // no new fast hit

    // The recomputation's completion republished at epoch 1: the next
    // identical request is on the loop again.
    WireResponse rehit = client.call(request);
    EXPECT_EQ(rehit.provenance, serve::Provenance::ExactHit);
    EXPECT_EQ(rehit.model_epoch, 1u);
    EXPECT_EQ(server.stats().fast_path_hits, 2u);
    server.stop();
}

TEST(NetReactor, GracefulStopDrainsEveryReactor)
{
    serve::StrategyService service(fastOptions(1));
    ServerOptions server_options;
    server_options.reactor_threads = 4;
    server_options.shutdown_flush_seconds = 10.0;
    StrategyServer server(service, server_options);
    server.start();

    // Idle connections parked on three reactors while a slow cold
    // request is in flight on the fourth: stop() must drain the
    // in-flight work, flush its response, and close every reactor's
    // connections.
    std::vector<int> idlers;
    for (int i = 0; i < 3; ++i) {
        int fd = connectLoopback(server.port());
        ASSERT_GE(fd, 0);
        idlers.push_back(fd);
    }
    WireRequest slow = testWireRequest(512, 47);
    slow.use_cache = false;
    WireResponse answered;
    std::thread requester([&] {
        StrategyClient client("127.0.0.1", server.port());
        answered = client.call(slow);
    });
    for (int spin = 0; spin < 500 && service.stats().in_flight == 0;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_GE(service.stats().in_flight, 1u);

    auto begun = std::chrono::steady_clock::now();
    server.stop();
    double stop_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - begun)
                              .count();
    requester.join();

    // The admitted request completed and its response was flushed
    // before the reactors exited.
    EXPECT_EQ(answered.status, Status::Ok);
    EXPECT_LT(stop_seconds, server_options.shutdown_flush_seconds);
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.open_connections, 0u);
    for (const ReactorStats &reactor : stats.reactors)
        EXPECT_EQ(reactor.open_connections, 0u);
    for (int fd : idlers)
        ::close(fd);
    server.stop(); // idempotent
}

TEST(NetReactor, IdleReapingAndPayloadStreakHoldPerReactor)
{
    serve::StrategyService service(fastOptions(1));
    ServerOptions server_options;
    server_options.reactor_threads = 2;
    server_options.idle_timeout_seconds = 0.3;
    server_options.max_payload_errors = 2;
    StrategyServer server(service, server_options);
    server.start();

    // Four idle connections, two per reactor, all reaped.
    std::vector<int> idlers;
    for (int i = 0; i < 4; ++i) {
        int fd = connectLoopback(server.port());
        ASSERT_GE(fd, 0);
        idlers.push_back(fd);
    }
    for (int spin = 0;
         spin < 500 && server.stats().connections_reaped < 4; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.connections_reaped, 4u);
    ASSERT_EQ(stats.reactors.size(), 2u);
    EXPECT_EQ(stats.reactors[0].connections_reaped, 2u);
    EXPECT_EQ(stats.reactors[1].connections_reaped, 2u);
    for (int fd : idlers)
        ::close(fd);

    // The payload-error streak closes connections on both reactors:
    // two intact-but-undecodable frames each, answered then closed.
    std::string bad = frameMessage(MsgType::Request, "not-a-request");
    for (int i = 0; i < 2; ++i) {
        int fd = connectLoopback(server.port());
        ASSERT_GE(fd, 0);
        std::string burst = bad + bad;
        ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
                  static_cast<ssize_t>(burst.size()));
        std::string bytes;
        char chunk[4096];
        ssize_t got;
        while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
            bytes.append(chunk, static_cast<std::size_t>(got));
        ::close(fd);
        std::size_t consumed = 0;
        std::size_t responses = 0;
        while (auto frame = peelFrame(bytes, &consumed)) {
            EXPECT_EQ(decodeResponse(frame->payload).status,
                      Status::Malformed);
            bytes.erase(0, consumed);
            ++responses;
        }
        EXPECT_EQ(responses, 2u);
    }
    EXPECT_GE(server.stats().responses_malformed, 4u);
    server.stop();
}

TEST(NetReactor, ReusePortModeServesColdAndHit)
{
    serve::StrategyService service(fastOptions(2));
    ServerOptions server_options;
    server_options.reactor_threads = 2;
    server_options.reuse_port = true;
    StrategyServer server(service, server_options);
    server.start();

    // The kernel picks the reactor per connection (not asserted);
    // both paths must serve regardless of which loop owns the socket.
    StrategyClient client("127.0.0.1", server.port());
    WireRequest request = testWireRequest(256, 9);
    EXPECT_EQ(client.call(request).provenance, serve::Provenance::Cold);
    client.disconnect();
    EXPECT_EQ(client.call(request).provenance,
              serve::Provenance::ExactHit);
    EXPECT_EQ(server.stats().responses_ok, 2u);
    server.stop();
}

} // namespace
} // namespace opdvfs::net
