/**
 * @file
 * Property suite over the per-operator performance model (paper
 * Sect. 4.3): two-point noise-free fits recover the synthetic ground
 * truth exactly, and every fitted curve keeps the Eqs. 1-8 shape
 * invariants (positive finite T, cycles non-decreasing and convex, no
 * operating point slower than f_min).
 *
 * Replay a failure with the printed OPDVFS_PROP_SEED / OPDVFS_PROP_CASE
 * environment (see docs/TESTING.md).
 */

#include <gtest/gtest.h>

#include "check/generators.h"
#include "check/oracles.h"
#include "check/prop.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/** One fit-recovery case: a table and a synthetic operator stream. */
struct FitCase
{
    npu::FreqTableConfig freq;
    SyntheticWorkload workload;
};

TEST(PropPerfModel, TwoPointFitRecoversGroundTruthAndCurveShape)
{
    Property<FitCase> prop(
        "perf-fit-recovery",
        [](Rng &rng) {
            FitCase fit_case;
            fit_case.freq = genFreqTableConfig(rng);
            fit_case.workload = genSyntheticWorkload(rng, 1, 24);
            return fit_case;
        },
        [](const FitCase &fit_case) {
            return checkFitRecovery(fit_case.workload, fit_case.freq);
        });
    prop.withShrinker([](const FitCase &fit_case) {
            std::vector<FitCase> out;
            for (SyntheticWorkload &w : shrinkWorkload(fit_case.workload))
                out.push_back({fit_case.freq, std::move(w)});
            return out;
        })
        .withPrinter([](const FitCase &fit_case) {
            return show(fit_case.freq) + "\n" + show(fit_case.workload);
        });
    OPDVFS_CHECK_PROP(prop);
}

/** Curve-shape invariants for every fit family on noise-free data. */
TEST(PropPerfModel, EveryFitFamilyKeepsCurveShapeOnCleanData)
{
    Property<FitCase> prop(
        "perf-curve-shape-all-families",
        [](Rng &rng) {
            FitCase fit_case;
            fit_case.freq = genFreqTableConfig(rng);
            fit_case.workload = genSyntheticWorkload(rng, 1, 12);
            return fit_case;
        },
        [](const FitCase &fit_case) -> std::optional<std::string> {
            npu::FreqTable table(fit_case.freq);
            for (perf::FitFunction kind :
                 {perf::FitFunction::QuadOverF,
                  perf::FitFunction::StallOverF,
                  perf::FitFunction::PwlCycles}) {
                perf::PerfModelRepository repo;
                repo.addProfile(table.minMhz(),
                                fit_case.workload.recordsAt(table.minMhz()));
                repo.addProfile(table.maxMhz(),
                                fit_case.workload.recordsAt(table.maxMhz()));
                perf::PerfBuildOptions options;
                options.kind = kind;
                repo.fitAll(options);
                for (const auto &[op_id, model] : repo.models()) {
                    if (auto failure = checkPerfCurveShape(model, table)) {
                        return perf::fitFunctionName(kind) + ": "
                            + *failure;
                    }
                }
            }
            return std::nullopt;
        });
    prop.withShrinker([](const FitCase &fit_case) {
            std::vector<FitCase> out;
            for (SyntheticWorkload &w : shrinkWorkload(fit_case.workload))
                out.push_back({fit_case.freq, std::move(w)});
            return out;
        })
        .withPrinter([](const FitCase &fit_case) {
            return show(fit_case.freq) + "\n" + show(fit_case.workload);
        });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
