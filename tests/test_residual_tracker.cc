/**
 * ResidualTracker unit tests: anchoring on systematic fit bias, noise
 * immunity inside the CUSUM dead zone, bounded detection of upward and
 * downward drifts, per-family classification, and the two reset
 * flavours (full vs refit-families-only).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "calib/residual_tracker.h"

namespace opdvfs::calib {
namespace {

TrackerOptions
tightOptions()
{
    TrackerOptions options;
    options.time = {0.01, 0.06};
    options.power = {0.015, 0.08};
    options.thermal = {2.0, 8.0};
    options.anchor_samples = 3;
    return options;
}

/** Feed @p n identical residuals into one channel. */
void
feedTime(ResidualTracker &tracker, const std::string &type, double value,
         int n)
{
    for (int i = 0; i < n; ++i)
        tracker.addTimeResidual(type, value);
}

TEST(ResidualTracker, RejectsMalformedOptions)
{
    TrackerOptions negative_slack = tightOptions();
    negative_slack.time.slack = -0.01;
    EXPECT_THROW(ResidualTracker{negative_slack}, std::invalid_argument);

    TrackerOptions zero_threshold = tightOptions();
    zero_threshold.power.threshold = 0.0;
    EXPECT_THROW(ResidualTracker{zero_threshold}, std::invalid_argument);

    TrackerOptions no_anchor = tightOptions();
    no_anchor.anchor_samples = 0;
    EXPECT_THROW(ResidualTracker{no_anchor}, std::invalid_argument);

    TrackerOptions bad_alpha = tightOptions();
    bad_alpha.ewma_alpha = 0.0;
    EXPECT_THROW(ResidualTracker{bad_alpha}, std::invalid_argument);
    bad_alpha.ewma_alpha = 1.5;
    EXPECT_THROW(ResidualTracker{bad_alpha}, std::invalid_argument);
}

TEST(ResidualTracker, AnchorCancelsSystematicFitBias)
{
    // A repeating op sequence makes the fit error repeat too: a large
    // but CONSTANT residual is "normal", not drift.
    ResidualTracker tracker(tightOptions());
    feedTime(tracker, "matmul", 0.05, 50);
    EXPECT_FALSE(tracker.verdict().any());
    EXPECT_NEAR(tracker.timeEwma("matmul"), 0.05, 1e-12);
}

TEST(ResidualTracker, NoiseInsideTheSlackNeverAlarms)
{
    ResidualTracker tracker(tightOptions());
    for (int i = 0; i < 200; ++i) {
        // Alternating +-0.8% around the anchor, under the 1% slack.
        tracker.addTimeResidual("conv", (i % 2 == 0) ? 0.008 : -0.008);
        tracker.addPowerResidual((i % 2 == 0) ? 0.012 : -0.012);
        tracker.addThermalResidual((i % 2 == 0) ? 1.5 : -1.5);
    }
    EXPECT_FALSE(tracker.verdict().any());
}

TEST(ResidualTracker, DetectsUpwardStepWithinBoundedObservations)
{
    ResidualTracker tracker(tightOptions());
    feedTime(tracker, "matmul", 0.0, 10);
    ASSERT_FALSE(tracker.verdict().perf);

    // An 8% latency step accumulates 0.07 per observation against the
    // 0.06 threshold: the alarm must fire within two observations.
    int detected_after = -1;
    for (int i = 1; i <= 5; ++i) {
        tracker.addTimeResidual("matmul", 0.08);
        if (tracker.verdict().perf) {
            detected_after = i;
            break;
        }
    }
    ASSERT_GT(detected_after, 0) << "step never detected";
    EXPECT_LE(detected_after, 2);
    EXPECT_EQ(tracker.verdict().primary(), DriftKind::PerfModel);
}

TEST(ResidualTracker, DetectsDownwardDriftToo)
{
    ResidualTracker tracker(tightOptions());
    for (int i = 0; i < 10; ++i)
        tracker.addPowerResidual(0.0);
    for (int i = 0; i < 4; ++i)
        tracker.addPowerResidual(-0.10);
    EXPECT_TRUE(tracker.verdict().power);
}

TEST(ResidualTracker, ChannelsClassifyIndependently)
{
    ResidualTracker tracker(tightOptions());
    for (int i = 0; i < 10; ++i) {
        tracker.addTimeResidual("matmul", 0.0);
        tracker.addPowerResidual(0.0);
        tracker.addThermalResidual(0.0);
    }
    // Only the thermal channel drifts.
    for (int i = 0; i < 5; ++i)
        tracker.addThermalResidual(6.0);

    DriftVerdict verdict = tracker.verdict();
    EXPECT_FALSE(verdict.perf);
    EXPECT_FALSE(verdict.power);
    EXPECT_TRUE(verdict.thermal);
    EXPECT_EQ(verdict.primary(), DriftKind::Thermal);
}

TEST(ResidualTracker, NonFiniteResidualsAreIgnored)
{
    ResidualTracker tracker(tightOptions());
    for (int i = 0; i < 10; ++i)
        tracker.addPowerResidual(0.0);
    tracker.addPowerResidual(std::numeric_limits<double>::quiet_NaN());
    tracker.addPowerResidual(std::numeric_limits<double>::infinity());
    EXPECT_FALSE(tracker.verdict().power);
    EXPECT_NEAR(tracker.powerEwma(), 0.0, 1e-12);
}

TEST(ResidualTracker, EwmaReportsZeroBeforeAnchoring)
{
    ResidualTracker tracker(tightOptions());
    EXPECT_DOUBLE_EQ(tracker.powerEwma(), 0.0);
    EXPECT_DOUBLE_EQ(tracker.timeEwma("unseen"), 0.0);
    tracker.addPowerResidual(0.5); // 1 of 3 anchor samples
    EXPECT_DOUBLE_EQ(tracker.powerEwma(), 0.0);
}

TEST(ResidualTracker, FullResetForgetsEverything)
{
    ResidualTracker tracker(tightOptions());
    feedTime(tracker, "matmul", 0.0, 10);
    feedTime(tracker, "matmul", 0.10, 4);
    ASSERT_TRUE(tracker.verdict().perf);

    tracker.reset();
    EXPECT_FALSE(tracker.verdict().any());
    // Re-anchors on the post-reset level: the old 10% step is the new
    // normal and must not re-alarm.
    feedTime(tracker, "matmul", 0.10, 20);
    EXPECT_FALSE(tracker.verdict().perf);
}

TEST(ResidualTracker, PerFamilyResetKeepsUnrefitEvidence)
{
    ResidualTracker tracker(tightOptions());
    for (int i = 0; i < 10; ++i) {
        tracker.addTimeResidual("matmul", 0.0);
        tracker.addPowerResidual(0.0);
    }
    // Both families drift; only the perf family gets refit.
    for (int i = 0; i < 4; ++i) {
        tracker.addTimeResidual("matmul", 0.10);
        tracker.addPowerResidual(0.06);
    }
    ASSERT_TRUE(tracker.verdict().perf);

    DriftVerdict refit;
    refit.perf = true;
    tracker.reset(refit);

    DriftVerdict after = tracker.verdict();
    EXPECT_FALSE(after.perf); // cleared, must re-anchor
    // The power channel kept its cumulative sums: the still-active 6%
    // power drift crosses its threshold without starting over.
    for (int i = 0; i < 2 && !after.power; ++i) {
        tracker.addPowerResidual(0.06);
        after = tracker.verdict();
    }
    EXPECT_TRUE(after.power);
}

} // namespace
} // namespace opdvfs::calib
