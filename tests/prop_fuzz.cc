/**
 * @file
 * Seeded-random fuzz fallback: runs the fuzz targets of src/check
 * under plain ctest, no libFuzzer required.  The corpus mixes mutated
 * valid strategy files, token soup assembled from the format's own
 * vocabulary, and raw random bytes; every finding reproduces in the
 * libFuzzer harness (fuzz/) from the same bytes.
 */

#include <gtest/gtest.h>

#include "check/fuzz.h"
#include "check/prop.h"

namespace {

using namespace opdvfs::check;

TEST(PropFuzz, StrategyLoaderSurvivesMutatedAndRandomInput)
{
    PropConfig config = PropConfig::fromEnv();
    FuzzStats stats;
    std::optional<std::string> failure = runSeededFuzz(
        fuzzStrategyIoOne, config.seed, config.cases, &stats);
    EXPECT_FALSE(failure.has_value()) << *failure;
    // The corpus must exercise both sides of the parser: files that
    // load and files that are rejected.
    EXPECT_GT(stats.accepted, 0) << "corpus never produced a valid file";
    EXPECT_GT(stats.rejected, 0) << "corpus never produced a broken file";
    RecordProperty("fuzz_executed", stats.executed);
    RecordProperty("fuzz_accepted", stats.accepted);
    RecordProperty("fuzz_rejected", stats.rejected);
}

TEST(PropFuzz, WireDecoderSurvivesMutatedAndRandomFrames)
{
    PropConfig config = PropConfig::fromEnv();
    FuzzStats stats;
    std::optional<std::string> failure = runSeededWireFuzz(
        config.seed ^ 0x0df5a11ceULL, config.cases, &stats);
    EXPECT_FALSE(failure.has_value()) << *failure;
    // The corpus must exercise both sides of the decoder: frames that
    // decode and frames that are refused.
    EXPECT_GT(stats.accepted, 0) << "corpus never produced a valid frame";
    EXPECT_GT(stats.rejected, 0) << "corpus never produced a broken frame";
    RecordProperty("wire_fuzz_executed", stats.executed);
    RecordProperty("wire_fuzz_accepted", stats.accepted);
    RecordProperty("wire_fuzz_rejected", stats.rejected);
}

TEST(PropFuzz, CacheWalReplayRecoversOrTruncatesNeverCrashes)
{
    PropConfig config = PropConfig::fromEnv();
    FuzzStats stats;
    std::optional<std::string> failure = runSeededWalFuzz(
        config.seed ^ 0x0ca11ab1eULL, config.cases, &stats);
    EXPECT_FALSE(failure.has_value()) << *failure;
    // The corpus must exercise both clean replays and damaged logs.
    EXPECT_GT(stats.accepted, 0) << "corpus never produced a clean WAL";
    EXPECT_GT(stats.rejected, 0) << "corpus never produced a damaged WAL";
    RecordProperty("wal_fuzz_executed", stats.executed);
    RecordProperty("wal_fuzz_accepted", stats.accepted);
    RecordProperty("wal_fuzz_rejected", stats.rejected);
}

TEST(PropFuzz, TuneCorpusLoaderRejectsCorruptionRoundTripsRest)
{
    PropConfig config = PropConfig::fromEnv();
    FuzzStats stats;
    std::optional<std::string> failure = runSeededCorpusFuzz(
        config.seed ^ 0x07c07c0deULL, config.cases, &stats);
    EXPECT_FALSE(failure.has_value()) << *failure;
    // The corpus must exercise both sides of the strict loader.
    EXPECT_GT(stats.accepted, 0) << "never produced a valid corpus";
    EXPECT_GT(stats.rejected, 0) << "never produced a broken corpus";
    RecordProperty("corpus_fuzz_executed", stats.executed);
    RecordProperty("corpus_fuzz_accepted", stats.accepted);
    RecordProperty("corpus_fuzz_rejected", stats.rejected);
}

TEST(PropFuzz, FingerprintIsDeterministicAndNameBlind)
{
    PropConfig config = PropConfig::fromEnv();
    std::optional<std::string> failure = runSeededFuzz(
        fuzzFingerprintOne, config.seed ^ 0xf1f2f3f4ULL, config.cases,
        nullptr);
    EXPECT_FALSE(failure.has_value()) << *failure;
}

} // namespace
