/**
 * @file
 * Property suite over the power model (Eqs. 11-15) and the thermal
 * machinery: positivity, SoC dominance and V-F monotonicity of the
 * predictions; convergence, consistency and determinism of the
 * Sect. 5.4.2 dT fix point; and the first-order RC relaxation
 * (monotone approach, exact step composition, idempotence at the
 * equilibrium fix point).
 */

#include <gtest/gtest.h>

#include "check/generators.h"
#include "check/oracles.h"
#include "check/prop.h"
#include "npu/thermal.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/** One power-model case: table, constants and activity factors. */
struct PowerCase
{
    npu::FreqTableConfig freq;
    power::CalibratedConstants constants;
    power::OpPowerModel op;
};

PowerCase
genPowerCase(Rng &rng)
{
    PowerCase power_case;
    power_case.freq = genFreqTableConfig(rng);
    power_case.constants = genConstants(rng);
    power_case.op = genOpPower(rng);
    return power_case;
}

std::string
showPowerCase(const PowerCase &power_case)
{
    std::ostringstream os;
    os.precision(17);
    os << show(power_case.freq) << "\n" << show(power_case.constants)
       << "\nOpPowerModel{alpha_aicore=" << power_case.op.alpha_aicore
       << ", alpha_soc=" << power_case.op.alpha_soc << "}";
    return os.str();
}

TEST(PropPowerThermal, PredictionsPositiveDominantAndMonotone)
{
    Property<PowerCase> prop(
        "power-invariants",
        genPowerCase,
        [](const PowerCase &power_case) {
            power::PowerModel model(power_case.constants,
                                    npu::FreqTable(power_case.freq));
            return checkPowerInvariants(model, power_case.op);
        });
    prop.withPrinter(showPowerCase);
    OPDVFS_CHECK_PROP(prop);
}

TEST(PropPowerThermal, TemperatureFixPointConvergesAndIsConsistent)
{
    Property<PowerCase> prop(
        "thermal-fix-point",
        genPowerCase,
        [](const PowerCase &power_case) {
            power::PowerModel model(power_case.constants,
                                    npu::FreqTable(power_case.freq));
            return checkThermalFixPoint(model, power_case.op);
        });
    prop.withPrinter(showPowerCase);
    OPDVFS_CHECK_PROP(prop);
}

/** One RC-relaxation case: thermal constants and a constant power. */
struct ThermalCase
{
    npu::ThermalConfig config;
    double p_soc_watts = 0.0;
};

TEST(PropPowerThermal, RcRelaxationMonotoneComposableIdempotent)
{
    Property<ThermalCase> prop(
        "thermal-relaxation",
        [](Rng &rng) {
            ThermalCase thermal_case;
            thermal_case.config = genChipConfig(rng).thermal;
            thermal_case.p_soc_watts = rng.uniform(0.0, 600.0);
            return thermal_case;
        },
        [](const ThermalCase &thermal_case) {
            return checkThermalRelaxation(thermal_case.config,
                                          thermal_case.p_soc_watts);
        });
    prop.withPrinter([](const ThermalCase &thermal_case) {
        std::ostringstream os;
        os.precision(17);
        os << "ThermalConfig{ambient=" << thermal_case.config.ambient_celsius
           << ", k=" << thermal_case.config.k_per_watt
           << ", tau=" << thermal_case.config.time_constant_s
           << "} p_soc=" << thermal_case.p_soc_watts << " W";
        return os.str();
    });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
