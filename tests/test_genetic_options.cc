/**
 * Behavioural tests of the GA knobs on a synthetic evaluator-free
 * setup: we build a tiny real evaluator from hand-made stages and
 * models so each option's effect is observable in isolation.
 */

#include <gtest/gtest.h>

#include "dvfs/evaluator.h"
#include "dvfs/genetic.h"
#include "npu/freq_table.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace opdvfs::dvfs {
namespace {

/**
 * Build a small evaluator over synthetic stages: half the stages hold
 * a frequency-insensitive operator (communication-like), half a fully
 * sensitive one, so the optimal strategy is obvious (drop insensitive
 * stages to minimum).
 */
struct TinyFixture
{
    npu::FreqTable table;
    power::CalibratedConstants constants;
    power::PowerModel power_model{initConstants(), npu::FreqTable{}};
    perf::PerfModelRepository repo;
    std::vector<Stage> stages;
    std::unordered_map<std::uint64_t, power::OpPowerModel> op_power;
    std::unique_ptr<StageEvaluator> evaluator;

    static power::CalibratedConstants
    initConstants()
    {
        power::CalibratedConstants c;
        c.beta_aicore = 5e-9;
        c.theta_aicore = 10.0;
        c.beta_soc = 1e-8;
        c.theta_soc = 150.0;
        c.gamma_aicore = 0.2;
        c.gamma_soc = 1.5;
        c.k_per_watt = 0.15;
        return c;
    }

    explicit TinyFixture(int stage_count)
    {
        // Profile records: op i measured at two frequencies.
        std::vector<trace::OpRecord> at1000, at1800;
        Tick t = 0;
        for (int i = 0; i < stage_count; ++i) {
            bool sensitive = i % 2 == 0;
            trace::OpRecord r;
            r.op_id = static_cast<std::uint64_t>(i);
            r.type = sensitive ? "MatMul" : "AllReduce";
            r.category = sensitive ? npu::OpCategory::Compute
                                   : npu::OpCategory::Communication;
            r.start = t;
            r.end = t + 10 * kTicksPerMs;
            t = r.end;
            r.duration_s = 10e-3;
            r.f_mhz = 1800.0;
            r.ratios.cube = sensitive ? 0.95 : 0.0;
            r.ratios.mte2 = sensitive ? 0.3 : 0.0;
            at1800.push_back(r);
            // At 1000 MHz the sensitive op takes 1.8x.
            r.duration_s = sensitive ? 18e-3 : 10e-3;
            r.f_mhz = 1000.0;
            at1000.push_back(r);

            Stage stage;
            stage.start = at1800[static_cast<std::size_t>(i)].start;
            stage.duration = 10 * kTicksPerMs;
            stage.high_frequency = sensitive;
            stage.first_op = static_cast<std::size_t>(i);
            stage.op_ids = {static_cast<std::uint64_t>(i)};
            stages.push_back(std::move(stage));

            op_power[static_cast<std::uint64_t>(i)] =
                power::OpPowerModel{sensitive ? 2e-8 : 1e-9,
                                    sensitive ? 8e-8 : 4e-8};
        }
        repo.addProfile(1000.0, at1000);
        repo.addProfile(1800.0, at1800);
        perf::PerfBuildOptions options;
        options.kind = perf::FitFunction::QuadOverF;
        repo.fitAll(options);
        evaluator = std::make_unique<StageEvaluator>(
            stages, repo, power_model, op_power, table);
    }
};

GaOptions
smallGa()
{
    GaOptions options;
    options.population = 30;
    options.generations = 40;
    options.refine_sweeps = 0;
    return options;
}

TEST(GaOptionsTest, FindsTheObviousOptimum)
{
    TinyFixture fixture(8);
    GaOptions options = smallGa();
    options.generations = 150;
    options.refine_sweeps = 4;
    options.perf_loss_target = 0.02;
    GaResult result =
        searchStrategy(*fixture.evaluator, fixture.stages, options);
    // Insensitive stages must end at the bottom of the table;
    // sensitive stages must stay at the top.
    for (std::size_t s = 0; s < fixture.stages.size(); ++s) {
        if (fixture.stages[s].high_frequency)
            EXPECT_GE(result.best_mhz[s], 1700.0) << s;
        else
            EXPECT_LE(result.best_mhz[s], 1100.0) << s;
    }
    EXPECT_LE(result.best_eval.seconds,
              result.baseline_eval.seconds * 1.021);
}

TEST(GaOptionsTest, MultiLevelPriorsHelpEarlyGenerations)
{
    TinyFixture fixture(30);
    GaOptions with = smallGa(), without = smallGa();
    with.generations = without.generations = 5; // early snapshot
    without.multi_level_priors = false;
    GaResult r_with =
        searchStrategy(*fixture.evaluator, fixture.stages, with);
    GaResult r_without =
        searchStrategy(*fixture.evaluator, fixture.stages, without);
    EXPECT_GE(r_with.score_history.front(),
              r_without.score_history.front());
}

TEST(GaOptionsTest, RefinementNeverHurts)
{
    TinyFixture fixture(20);
    GaOptions options = smallGa();
    options.refine_sweeps = 8;
    GaResult result =
        searchStrategy(*fixture.evaluator, fixture.stages, options);
    EXPECT_GE(result.best_score, result.pre_refine_score);
}

TEST(GaOptionsTest, InvalidOptionsThrow)
{
    TinyFixture fixture(4);
    GaOptions bad = smallGa();
    bad.population = 1;
    EXPECT_THROW(searchStrategy(*fixture.evaluator, fixture.stages, bad),
                 std::invalid_argument);
    bad = smallGa();
    bad.generations = 0;
    EXPECT_THROW(searchStrategy(*fixture.evaluator, fixture.stages, bad),
                 std::invalid_argument);
}

TEST(GaOptionsTest, StageMismatchThrows)
{
    TinyFixture fixture(4);
    std::vector<Stage> wrong(fixture.stages.begin(),
                             fixture.stages.end() - 1);
    EXPECT_THROW(
        searchStrategy(*fixture.evaluator, wrong, smallGa()),
        std::invalid_argument);
}

} // namespace
} // namespace opdvfs::dvfs
