/**
 * @file
 * Shared case type for the differential property suites
 * (prop_differential.cc, prop_service.cc): a real workload generated
 * against the differential chip's memory system plus a request seed,
 * with a printer and a shrinker that drops operators.
 */

#pragma once

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "check/generators.h"
#include "check/oracles.h"
#include "npu/memory_system.h"

namespace opdvfs::check {

/** One differential case: a real workload and a request seed. */
struct DiffCase
{
    models::Workload workload;
    std::uint64_t seed = 1;
};

inline DiffCase
genDiffCase(Rng &rng, int min_ops, int max_ops)
{
    static const npu::MemorySystem memory(differentialChip().memory);
    DiffCase diff_case;
    diff_case.workload = genWorkload(rng, memory, min_ops, max_ops);
    diff_case.seed = static_cast<std::uint64_t>(
        rng.uniformInt(1, std::numeric_limits<std::int64_t>::max()));
    return diff_case;
}

inline std::string
showDiffCase(const DiffCase &diff_case)
{
    std::ostringstream os;
    os << "seed=" << diff_case.seed << "\n" << show(diff_case.workload);
    return os.str();
}

inline std::vector<DiffCase>
shrinkDiffCase(const DiffCase &diff_case)
{
    std::vector<DiffCase> out;
    for (auto &ops : shrinkVector(diff_case.workload.iteration)) {
        DiffCase smaller;
        smaller.workload.name = diff_case.workload.name;
        smaller.workload.iteration = std::move(ops);
        smaller.seed = diff_case.seed;
        out.push_back(std::move(smaller));
    }
    return out;
}

} // namespace opdvfs::check
