/**
 * Sharded LRU strategy cache: exact hits, LRU eviction with recency
 * refresh, overwrite semantics, similarity search, and concurrent
 * access.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/strategy_cache.h"

namespace opdvfs::serve {
namespace {

CacheEntry
entryWith(std::uint64_t digest, double feature, double mhz = 1500.0)
{
    CacheEntry entry;
    entry.fingerprint.digest = digest;
    entry.fingerprint.features = {feature, 0.5};
    entry.ga.best_mhz = {mhz, mhz};
    entry.ga.best_score = static_cast<double>(digest);
    entry.perf_loss_target = 0.02;
    return entry;
}

TEST(StrategyCache, ExactHitReturnsTheStoredEntry)
{
    StrategyCache cache({.capacity = 8, .shards = 2});
    cache.insert(entryWith(101, 0.1, 1300.0));
    auto hit = cache.findExact(101);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->fingerprint.digest, 101u);
    EXPECT_EQ(hit->ga.best_mhz, (std::vector<double>{1300.0, 1300.0}));
    EXPECT_FALSE(cache.findExact(999).has_value());
}

TEST(StrategyCache, InsertOverwritesSameDigest)
{
    StrategyCache cache({.capacity = 8, .shards = 2});
    cache.insert(entryWith(7, 0.1, 1300.0));
    cache.insert(entryWith(7, 0.1, 1700.0));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_DOUBLE_EQ(cache.findExact(7)->ga.best_mhz[0], 1700.0);
}

TEST(StrategyCache, EvictsLeastRecentlyUsedPerShard)
{
    // One shard so the LRU order is global and easy to reason about.
    StrategyCache cache({.capacity = 3, .shards = 1});
    cache.insert(entryWith(1, 0.1));
    cache.insert(entryWith(2, 0.2));
    cache.insert(entryWith(3, 0.3));
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_TRUE(cache.findExact(1).has_value());
    cache.insert(entryWith(4, 0.4));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_TRUE(cache.findExact(1).has_value());
    EXPECT_FALSE(cache.findExact(2).has_value());
    EXPECT_TRUE(cache.findExact(3).has_value());
    EXPECT_TRUE(cache.findExact(4).has_value());
}

TEST(StrategyCache, FindSimilarPicksTheClosestAboveThreshold)
{
    StrategyCache cache({.capacity = 16, .shards = 4});
    cache.insert(entryWith(1, 0.10));
    cache.insert(entryWith(2, 0.12));
    cache.insert(entryWith(3, 0.90));

    Fingerprint probe;
    probe.digest = 999;
    probe.features = {0.11, 0.5};
    auto hit = cache.findSimilar(probe, 0.5);
    ASSERT_TRUE(hit.has_value());
    // 0.12 is closer to 0.11 than 0.10? No: |0.12-0.11| = 0.01 =
    // |0.10-0.11|; exp symmetric, the tie resolves to the first found
    // with strictly-greater comparison — accept either near entry.
    EXPECT_TRUE(hit->entry.fingerprint.digest == 1u
                || hit->entry.fingerprint.digest == 2u);
    EXPECT_GT(hit->similarity, 0.9);

    // A tight threshold rejects everything but a near-identical probe.
    Fingerprint far_probe;
    far_probe.features = {0.5, 0.5};
    EXPECT_FALSE(cache.findSimilar(far_probe, 0.9).has_value());
}

TEST(StrategyCache, FindSimilarGatesOnTheLossTarget)
{
    StrategyCache cache({.capacity = 16, .shards = 2});
    CacheEntry tight = entryWith(1, 0.10);
    tight.perf_loss_target = 0.02;
    CacheEntry loose = entryWith(2, 0.10);
    loose.perf_loss_target = 0.05;
    cache.insert(tight);
    cache.insert(loose);

    Fingerprint probe;
    probe.features = {0.10, 0.5};

    // A 2% probe must never seed from the 5% donor: identical
    // features, but the strategy optimises a different trade-off.
    auto hit = cache.findSimilar(probe, 0.5, 0.02);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->entry.fingerprint.digest, 1u);

    auto loose_hit = cache.findSimilar(probe, 0.5, 0.05);
    ASSERT_TRUE(loose_hit.has_value());
    EXPECT_EQ(loose_hit->entry.fingerprint.digest, 2u);

    // Within the tolerance (default 0.005) still matches.
    auto near_hit = cache.findSimilar(probe, 0.5, 0.024);
    ASSERT_TRUE(near_hit.has_value());
    EXPECT_EQ(near_hit->entry.fingerprint.digest, 1u);

    // A target between both envelopes but outside tolerance of either
    // finds nothing, however similar the features.
    EXPECT_FALSE(cache.findSimilar(probe, 0.5, 0.035).has_value());

    // No loss target = legacy behaviour: the gate is bypassed.
    EXPECT_TRUE(cache.findSimilar(probe, 0.5).has_value());
}

TEST(StrategyCache, ScanCountersTrackSimilarityEffort)
{
    StrategyCache cache({.capacity = 16, .shards = 1});
    ScanCounters before = cache.scanCounters();
    EXPECT_EQ(before.similar_lookups, 0u);
    EXPECT_EQ(before.similar_scanned, 0u);
    EXPECT_EQ(before.similar_pruned, 0u);

    // Three far donors inserted first, one near-perfect donor last:
    // the MRU-first scan visits the near donor first, so every far
    // row is abandoned on its first feature by the incumbent bound.
    auto wide = [](std::uint64_t digest, double value) {
        CacheEntry entry;
        entry.fingerprint.digest = digest;
        entry.fingerprint.features.assign(8, value);
        entry.ga.best_mhz = {1500.0, 1500.0};
        entry.perf_loss_target = 0.02;
        return entry;
    };
    cache.insert(wide(1, 0.90));
    cache.insert(wide(2, 0.95));
    cache.insert(wide(3, 0.85));
    cache.insert(wide(4, 0.1001));

    Fingerprint probe;
    probe.digest = 999;
    probe.features.assign(8, 0.1);
    auto hit = cache.findSimilar(probe, 0.5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->entry.fingerprint.digest, 4u);

    ScanCounters after = cache.scanCounters();
    EXPECT_EQ(after.similar_lookups, 1u);
    EXPECT_EQ(after.similar_scanned, 4u);
    EXPECT_EQ(after.similar_pruned, 3u);

    // A miss never primes the bound, so nothing is pruned — but every
    // visited entry is still counted.
    Fingerprint far;
    far.features.assign(8, -5.0);
    EXPECT_FALSE(cache.findSimilar(far, 0.9999).has_value());
    ScanCounters missed = cache.scanCounters();
    EXPECT_EQ(missed.similar_lookups, 2u);
    EXPECT_EQ(missed.similar_scanned, 8u);
    EXPECT_EQ(missed.similar_pruned, 3u);
}

TEST(StrategyCache, ZeroCapacityRejected)
{
    EXPECT_THROW(StrategyCache({.capacity = 0, .shards = 2}),
                 std::invalid_argument);
}

TEST(StrategyCache, ConcurrentInsertAndLookupKeepsInvariants)
{
    StrategyCache cache({.capacity = 64, .shards = 8});
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < 200; ++i) {
                auto digest =
                    static_cast<std::uint64_t>(t * 1000 + (i % 40));
                cache.insert(entryWith(digest, 0.1 * t));
                cache.findExact(digest);
                Fingerprint probe;
                probe.features = {0.1 * t, 0.5};
                cache.findSimilar(probe, 0.99);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_LE(cache.size(), 64u);
    EXPECT_GT(cache.size(), 0u);
}

} // namespace
} // namespace opdvfs::serve
