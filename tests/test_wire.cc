/**
 * Wire-protocol codec tests: request/response round trips (byte
 * stability, fingerprint agreement), framing (magic, version policy,
 * reserved bits, CRC), and decoder hardening against truncated,
 * oversized and corrupted frames.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dvfs/strategy_io.h"
#include "models/transformer.h"
#include "net/wire.h"
#include "serve/fingerprint.h"

namespace opdvfs::net {
namespace {

models::Workload
testWorkload(int seq)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "wire-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, 5);
}

WireRequest
testRequest(int seq = 128)
{
    WireRequest request;
    request.workload = testWorkload(seq);
    request.perf_loss_target = 0.03;
    request.seed = 42;
    request.use_cache = true;
    request.allow_warm_start = false;
    return request;
}

dvfs::Strategy
testStrategy()
{
    dvfs::Strategy strategy;
    dvfs::Stage stage;
    stage.start = 0;
    stage.duration = 1000;
    stage.high_frequency = true;
    strategy.stages.push_back(stage);
    stage.start = 1000;
    stage.duration = 2500;
    stage.high_frequency = false;
    strategy.stages.push_back(stage);
    strategy.mhz_per_stage = {1800.0, 1200.0};
    strategy.plan.initial_mhz = 1800.0;
    strategy.plan.triggers.push_back({3, 1200.0});
    dvfs::StrategyMeta meta;
    meta.score = 0.125;
    meta.pre_refine_score = 0.120;
    meta.converged_at = 7;
    meta.generations = 24;
    meta.provenance = "cold";
    meta.fingerprint = 0xDEADBEEFCAFEF00Dull;
    strategy.meta = meta;
    return strategy;
}

WireResponse
testOkResponse()
{
    WireResponse response;
    response.status = Status::Ok;
    response.strategy = testStrategy();
    response.best_score = 0.125;
    response.provenance = serve::Provenance::WarmStart;
    response.similarity = 0.97;
    response.generations_run = 8;
    response.generations_saved = 16;
    response.service_seconds = 0.0125;
    response.fingerprint_digest = 0x1234567890ABCDEFull;
    response.model_epoch = 3;
    return response;
}

TEST(Wire, RequestRoundTripIsByteStable)
{
    WireRequest request = testRequest();
    std::string payload = encodeRequest(request);
    WireRequest decoded = decodeRequest(payload);

    EXPECT_EQ(decoded.perf_loss_target, request.perf_loss_target);
    EXPECT_EQ(decoded.seed, request.seed);
    EXPECT_EQ(decoded.use_cache, request.use_cache);
    EXPECT_EQ(decoded.allow_warm_start, request.allow_warm_start);
    EXPECT_EQ(decoded.workload.opCount(), request.workload.opCount());
    // The name is deliberately not transmitted (not part of identity).
    EXPECT_TRUE(decoded.workload.name.empty());

    // encode(decode(p)) == p: the codec loses nothing it transmits.
    EXPECT_EQ(encodeRequest(decoded), payload);
}

TEST(Wire, DecodedWorkloadFingerprintsIdentically)
{
    // The codec walks models::visitWorkloadFields — the same stream
    // the fingerprint hashes — so a decoded request must fingerprint
    // to the same digest as the original.
    WireRequest request = testRequest();
    WireRequest decoded = decodeRequest(encodeRequest(request));
    serve::Fingerprint original = serve::fingerprintRequest(
        request.workload, request.chip, request.perf_loss_target,
        request.seed);
    serve::Fingerprint round_tripped = serve::fingerprintRequest(
        decoded.workload, decoded.chip, decoded.perf_loss_target,
        decoded.seed);
    EXPECT_EQ(round_tripped.digest, original.digest);
}

TEST(Wire, ChipConfigBlockDetectsAnyFieldChange)
{
    npu::NpuConfig a;
    npu::NpuConfig b = a;
    EXPECT_EQ(encodeChipConfig(a), encodeChipConfig(b));
    b.uncore_power.idle_watts += 0.5;
    EXPECT_NE(encodeChipConfig(a), encodeChipConfig(b));
}

TEST(Wire, OkResponseRoundTrips)
{
    WireResponse response = testOkResponse();
    WireResponse decoded = decodeResponse(encodeResponse(response));

    EXPECT_EQ(decoded.status, Status::Ok);
    EXPECT_EQ(decoded.reject, serve::RejectReason::None);
    EXPECT_EQ(decoded.best_score, response.best_score);
    EXPECT_EQ(decoded.provenance, response.provenance);
    EXPECT_EQ(decoded.similarity, response.similarity);
    EXPECT_EQ(decoded.generations_run, response.generations_run);
    EXPECT_EQ(decoded.generations_saved, response.generations_saved);
    EXPECT_EQ(decoded.service_seconds, response.service_seconds);
    EXPECT_EQ(decoded.fingerprint_digest, response.fingerprint_digest);
    EXPECT_EQ(decoded.model_epoch, response.model_epoch);

    // The embedded strategy survives byte-for-byte through the
    // strategy_io text it travels as.
    std::ostringstream original_text;
    dvfs::saveStrategy(response.strategy, original_text);
    std::ostringstream decoded_text;
    dvfs::saveStrategy(decoded.strategy, decoded_text);
    EXPECT_EQ(decoded_text.str(), original_text.str());
}

TEST(Wire, BusyResponseCarriesStructuredCause)
{
    WireResponse busy;
    busy.status = Status::Busy;
    busy.reject = serve::RejectReason::QueueFull;
    busy.message = "net: admission rejected: queue-full";
    WireResponse decoded = decodeResponse(encodeResponse(busy));
    EXPECT_EQ(decoded.status, Status::Busy);
    EXPECT_EQ(decoded.reject, serve::RejectReason::QueueFull);
    EXPECT_EQ(decoded.message, busy.message);

    // Busy and only Busy carries a cause — both sides enforce it.
    WireResponse bad = busy;
    bad.reject = serve::RejectReason::None;
    EXPECT_THROW(encodeResponse(bad), WireError);
    WireResponse ok_with_cause;
    ok_with_cause.status = Status::Ok;
    ok_with_cause.reject = serve::RejectReason::ShuttingDown;
    EXPECT_THROW(encodeResponse(ok_with_cause), WireError);
}

TEST(Wire, FramePeelsExactlyAndLeavesTheRest)
{
    std::string first = frameRequest(testRequest(64));
    std::string second = frameRequest(testRequest(96));
    std::string stream = first + second;

    std::size_t consumed = 0;
    auto frame = peelFrame(stream, &consumed);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::Request);
    EXPECT_EQ(consumed, first.size());
    EXPECT_EQ(decodeRequest(frame->payload).workload.opCount(),
              testWorkload(64).opCount());

    std::string rest = stream.substr(consumed);
    auto next = peelFrame(rest, &consumed);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(consumed, second.size());
}

TEST(Wire, IncompleteFramesAreNotErrors)
{
    std::string whole = frameRequest(testRequest(64));
    std::size_t consumed = 0;
    // Any strict prefix — header fragments and payload fragments
    // alike — asks for more bytes instead of failing.
    for (std::size_t cut : {std::size_t{0}, std::size_t{5},
                            kFrameHeaderBytes - 1, kFrameHeaderBytes,
                            whole.size() - 1}) {
        auto frame = peelFrame(std::string_view(whole).substr(0, cut),
                               &consumed);
        EXPECT_FALSE(frame.has_value()) << "cut=" << cut;
        EXPECT_EQ(consumed, 0u);
    }
}

TEST(Wire, ForeignVersionByteIsRejectedAsVersionError)
{
    std::string frame = frameRequest(testRequest(64));
    frame[4] = static_cast<char>(kWireVersion + 1);
    std::size_t consumed = 0;
    EXPECT_THROW(peelFrame(frame, &consumed), WireVersionError);
}

TEST(Wire, BadMagicAndReservedBitsAreRejected)
{
    std::string frame = frameRequest(testRequest(64));
    std::string bad_magic = frame;
    bad_magic[0] = 'X';
    std::size_t consumed = 0;
    EXPECT_THROW(peelFrame(bad_magic, &consumed), WireError);

    std::string bad_reserved = frame;
    bad_reserved[6] = 1;
    EXPECT_THROW(peelFrame(bad_reserved, &consumed), WireError);
}

TEST(Wire, CrcCorruptionIsDetected)
{
    std::string frame = frameRequest(testRequest(64));
    // Flip one payload bit; the header stays valid so only the CRC
    // can catch it.
    frame[kFrameHeaderBytes + 7] ^= 0x10;
    std::size_t consumed = 0;
    EXPECT_THROW(peelFrame(frame, &consumed), WireError);
}

TEST(Wire, OversizedDeclaredLengthIsRejectedFromTheHeaderAlone)
{
    WireLimits tight;
    tight.max_frame_bytes = 1024;
    std::string frame = frameRequest(testRequest(64)); // > 1 KiB
    std::size_t consumed = 0;
    // Rejected before the payload would ever be buffered: only the
    // 16-byte header has arrived.
    EXPECT_THROW(
        peelFrame(std::string_view(frame).substr(0, kFrameHeaderBytes),
                  &consumed, tight),
        WireError);
}

TEST(Wire, TruncatedPayloadsFailCleanly)
{
    std::string payload = encodeRequest(testRequest(64));
    for (std::size_t cut : {std::size_t{0}, std::size_t{1},
                            payload.size() / 2, payload.size() - 1})
        EXPECT_THROW(
            decodeRequest(std::string_view(payload).substr(0, cut)),
            WireError)
            << "cut=" << cut;
    // Trailing garbage is as malformed as missing bytes.
    EXPECT_THROW(decodeRequest(payload + "x"), WireError);
}

TEST(Wire, FieldCoverageMismatchIsAVersionError)
{
    // numbers_per_op sits right after the u32 op count; patch it and
    // the decoder must refuse rather than misalign the op stream.
    WireRequest request = testRequest(64);
    std::string payload = encodeRequest(request);
    std::size_t offset = 1 + 8 + 8 + encodeChipConfig(request.chip).size()
                         + 4;
    ASSERT_LT(offset, payload.size());
    payload[offset] = static_cast<char>(workloadNumbersPerOp() + 1);
    EXPECT_THROW(decodeRequest(payload), WireVersionError);
}

TEST(Wire, NonFiniteAndOutOfRangeFieldsAreRejected)
{
    WireRequest bad_target = testRequest(64);
    bad_target.perf_loss_target = 1.5;
    EXPECT_THROW(encodeRequest(bad_target), std::exception);

    // Craft an on-wire NaN: encode a valid request, then overwrite
    // the perf_loss_target double (offset 1) with a NaN bit pattern.
    std::string payload = encodeRequest(testRequest(64));
    for (std::size_t byte = 0; byte < 8; ++byte)
        payload[1 + byte] = static_cast<char>(0xFF);
    EXPECT_THROW(decodeRequest(payload), WireError);
}

TEST(Wire, CapsAreEnforcedBeforeAllocation)
{
    WireLimits tight;
    tight.max_ops = 4;
    std::string payload = encodeRequest(testRequest(64));
    EXPECT_THROW(decodeRequest(payload, tight), WireError);

    // An op count far beyond the remaining bytes is rejected by
    // arithmetic, not by attempting the reads.
    WireRequest request = testRequest(64);
    std::string honest = encodeRequest(request);
    std::size_t count_offset =
        1 + 8 + 8 + encodeChipConfig(request.chip).size();
    honest[count_offset] = static_cast<char>(0xFF);
    honest[count_offset + 1] = static_cast<char>(0xFF);
    EXPECT_THROW(decodeRequest(honest), WireError);
}

TEST(Wire, DeadlineRoundTripsAndIsFlagGated)
{
    WireRequest with_deadline = testRequest(64);
    with_deadline.deadline_ms = 1234;
    std::string payload = encodeRequest(with_deadline);
    WireRequest decoded = decodeRequest(payload);
    EXPECT_EQ(decoded.deadline_ms, 1234u);
    EXPECT_EQ(encodeRequest(decoded), payload);

    // Without a deadline the flag is clear and the payload keeps the
    // v1 shape: exactly four bytes (the u32) shorter.
    WireRequest without = with_deadline;
    without.deadline_ms = 0;
    std::string bare = encodeRequest(without);
    EXPECT_EQ(bare.size() + 4, payload.size());
    EXPECT_EQ(bare[0] & 0x04, 0);
    EXPECT_EQ(payload[0] & 0x04, 0x04);
    EXPECT_EQ(decodeRequest(bare).deadline_ms, 0u);
}

TEST(Wire, DeadlineFlagWithZeroBudgetIsRejected)
{
    // A zero budget travels as an absent field; a frame claiming the
    // flag while carrying zero is internally inconsistent (and would
    // break encode(decode(p)) == p), so the decoder refuses it.
    WireRequest request = testRequest(64);
    request.deadline_ms = 750;
    std::string payload = encodeRequest(request);
    std::size_t deadline_offset = 1 + 8 + 8; // flags, target, seed
    for (std::size_t byte = 0; byte < 4; ++byte)
        payload[deadline_offset + byte] = 0;
    EXPECT_THROW(decodeRequest(payload), WireError);
}

TEST(Wire, BusyRetryAfterHintRoundTrips)
{
    WireResponse busy;
    busy.status = Status::Busy;
    busy.reject = serve::RejectReason::QueueFull;
    busy.message = "net: admission rejected: queue-full";
    busy.retry_after_ms = 1500;
    WireResponse decoded = decodeResponse(encodeResponse(busy));
    EXPECT_EQ(decoded.retry_after_ms, 1500u);

    busy.retry_after_ms = 0; // "no estimate" is a valid hint
    EXPECT_EQ(decodeResponse(encodeResponse(busy)).retry_after_ms, 0u);

    // Busy and only Busy carries the hint — the encoder enforces it.
    WireResponse ok_with_hint = testOkResponse();
    ok_with_hint.retry_after_ms = 100;
    EXPECT_THROW(encodeResponse(ok_with_hint), WireError);
}

TEST(Wire, ExpiredAndOverloadedRejectReasonsRoundTrip)
{
    for (serve::RejectReason reason : {serve::RejectReason::Expired,
                                       serve::RejectReason::Overloaded}) {
        WireResponse busy;
        busy.status = Status::Busy;
        busy.reject = reason;
        busy.message = "net: admission rejected";
        busy.retry_after_ms = 40;
        WireResponse decoded = decodeResponse(encodeResponse(busy));
        EXPECT_EQ(decoded.status, Status::Busy);
        EXPECT_EQ(decoded.reject, reason);
        EXPECT_EQ(decoded.retry_after_ms, 40u);
    }
}

TEST(Wire, StatusTokensAreStable)
{
    EXPECT_STREQ(statusToken(Status::Ok), "ok");
    EXPECT_STREQ(statusToken(Status::Busy), "busy");
    EXPECT_STREQ(statusToken(Status::Malformed), "malformed");
    EXPECT_STREQ(statusToken(Status::ChipMismatch), "chip-mismatch");
    EXPECT_STREQ(statusToken(Status::Internal), "internal");
    EXPECT_STREQ(statusToken(Status::NotOwner), "not-owner");
}

// --- wire v3: cluster messages -----------------------------------------

TEST(Wire, NotOwnerResponseRoundTrips)
{
    WireResponse redirect;
    redirect.status = Status::NotOwner;
    redirect.owner_address = "10.1.2.3:9401";
    redirect.map_epoch = 17;
    redirect.shard_map_text = "shardmap v1\nepoch 17\nvnodes 64\n"
                              "count 1\nshard 3 10.1.2.3:9401\n";

    std::string payload = encodeResponse(redirect);
    WireResponse decoded = decodeResponse(payload);
    EXPECT_EQ(decoded.status, Status::NotOwner);
    EXPECT_EQ(decoded.owner_address, redirect.owner_address);
    EXPECT_EQ(decoded.map_epoch, redirect.map_epoch);
    EXPECT_EQ(decoded.shard_map_text, redirect.shard_map_text);
    EXPECT_EQ(encodeResponse(decoded), payload);

    // A NotOwner without an owner address is self-contradictory: the
    // encoder refuses to produce it and the decoder refuses to accept
    // a hand-rolled one.
    redirect.owner_address.clear();
    EXPECT_THROW(encodeResponse(redirect), WireError);
}

TEST(Wire, PeerDonorQueryRoundTrips)
{
    PeerDonorQuery query;
    query.digest = 0xFEEDFACE12345678ull;
    query.features = {0.25, 0.5, 1.0, 0.125};
    query.model_epoch = 9;
    query.perf_loss_target = 0.03;
    query.origin_shard = 4;

    std::string payload = encodePeerDonorQuery(query);
    PeerDonorQuery decoded = decodePeerDonorQuery(payload);
    EXPECT_EQ(decoded.digest, query.digest);
    EXPECT_EQ(decoded.features, query.features);
    EXPECT_EQ(decoded.model_epoch, query.model_epoch);
    EXPECT_EQ(decoded.perf_loss_target, query.perf_loss_target);
    EXPECT_EQ(decoded.origin_shard, query.origin_shard);
    EXPECT_EQ(encodePeerDonorQuery(decoded), payload);

    // The feature-count cap is enforced before allocation.
    PeerDonorQuery oversized = query;
    oversized.features.assign(WireLimits{}.max_features + 1, 0.5);
    EXPECT_THROW(encodePeerDonorQuery(oversized), WireError);
}

TEST(Wire, PeerDonorReplyRoundTripsHitAndMiss)
{
    PeerDonorReply miss;
    std::string miss_payload = encodePeerDonorReply(miss);
    PeerDonorReply miss_decoded = decodePeerDonorReply(miss_payload);
    EXPECT_FALSE(miss_decoded.found);
    EXPECT_EQ(encodePeerDonorReply(miss_decoded), miss_payload);

    PeerDonorReply hit;
    hit.found = true;
    hit.similarity = 0.94;
    hit.fingerprint_digest = 0xABCDEF0123456789ull;
    hit.features = {0.1, 0.9, 0.5};
    hit.model_epoch = 12;
    hit.perf_loss_target = 0.02;
    hit.best_score = 0.0625;
    hit.best_mhz = {1800.0, 1200.0, 1500.0};
    std::ostringstream os;
    dvfs::saveStrategy(testStrategy(), os);
    hit.strategy_text = os.str();

    std::string payload = encodePeerDonorReply(hit);
    PeerDonorReply decoded = decodePeerDonorReply(payload);
    EXPECT_TRUE(decoded.found);
    EXPECT_EQ(decoded.similarity, hit.similarity);
    EXPECT_EQ(decoded.fingerprint_digest, hit.fingerprint_digest);
    EXPECT_EQ(decoded.features, hit.features);
    EXPECT_EQ(decoded.model_epoch, hit.model_epoch);
    EXPECT_EQ(decoded.perf_loss_target, hit.perf_loss_target);
    EXPECT_EQ(decoded.best_score, hit.best_score);
    EXPECT_EQ(decoded.best_mhz, hit.best_mhz);
    EXPECT_EQ(decoded.strategy_text, hit.strategy_text);
    EXPECT_EQ(encodePeerDonorReply(decoded), payload);

    // Similarity outside [0, 1] is rejected on decode.
    PeerDonorReply bogus = hit;
    bogus.similarity = 1.5;
    EXPECT_THROW(decodePeerDonorReply(encodePeerDonorReply(bogus)),
                 WireError);
}

TEST(Wire, EpochInvalidateAndAckRoundTrip)
{
    EpochInvalidate invalidate;
    invalidate.origin_shard = 2;
    invalidate.model_epoch = 41;
    std::string payload = encodeEpochInvalidate(invalidate);
    EpochInvalidate decoded = decodeEpochInvalidate(payload);
    EXPECT_EQ(decoded.origin_shard, invalidate.origin_shard);
    EXPECT_EQ(decoded.model_epoch, invalidate.model_epoch);
    EXPECT_EQ(encodeEpochInvalidate(decoded), payload);
    EXPECT_THROW(decodeEpochInvalidate(payload.substr(0, 4)), WireError);

    EpochInvalidateAck ack;
    ack.shard_id = 5;
    ack.model_epoch = 41;
    std::string ack_payload = encodeEpochInvalidateAck(ack);
    EpochInvalidateAck ack_decoded =
        decodeEpochInvalidateAck(ack_payload);
    EXPECT_EQ(ack_decoded.shard_id, ack.shard_id);
    EXPECT_EQ(ack_decoded.model_epoch, ack.model_epoch);
    EXPECT_EQ(encodeEpochInvalidateAck(ack_decoded), ack_payload);
}

TEST(Wire, PeerFrameTypesFrameAndPeel)
{
    EpochInvalidate invalidate;
    invalidate.origin_shard = 1;
    invalidate.model_epoch = 3;
    std::string stream =
        frameMessage(MsgType::PeerDonorQuery,
                     encodePeerDonorQuery(PeerDonorQuery{}))
        + frameMessage(MsgType::PeerDonorReply,
                       encodePeerDonorReply(PeerDonorReply{}))
        + frameMessage(MsgType::EpochInvalidate,
                       encodeEpochInvalidate(invalidate))
        + frameMessage(MsgType::EpochInvalidateAck,
                       encodeEpochInvalidateAck(EpochInvalidateAck{}));

    std::string_view rest = stream;
    for (MsgType expected :
         {MsgType::PeerDonorQuery, MsgType::PeerDonorReply,
          MsgType::EpochInvalidate, MsgType::EpochInvalidateAck}) {
        std::size_t consumed = 0;
        std::optional<FrameView> view = peelFrame(rest, &consumed);
        ASSERT_TRUE(view.has_value());
        EXPECT_EQ(view->type, expected);
        rest.remove_prefix(consumed);
    }
    EXPECT_TRUE(rest.empty());
}

} // namespace
} // namespace opdvfs::net
