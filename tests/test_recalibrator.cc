/**
 * Recalibrator unit tests: per-family refits recover injected scales
 * and biases, increments compose across repeated recalibrations,
 * windows are bounded and droppable, and the patched power prediction
 * degenerates to the unpatched model under a pristine patch.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "calib/recalibrator.h"
#include "npu/freq_table.h"
#include "power/offline_calibration.h"

namespace opdvfs::calib {
namespace {

DriftVerdict
perfOnly()
{
    DriftVerdict verdict;
    verdict.perf = true;
    return verdict;
}

DriftVerdict
powerOnly()
{
    DriftVerdict verdict;
    verdict.power = true;
    return verdict;
}

DriftVerdict
thermalOnly()
{
    DriftVerdict verdict;
    verdict.thermal = true;
    return verdict;
}

/** Feed @p n (predicted, scale * predicted) pairs for one op type. */
void
feedTime(Recalibrator &recal, const std::string &type, double scale, int n)
{
    for (int i = 0; i < n; ++i) {
        double predicted = 1e-3 * (1.0 + 0.1 * i);
        recal.addTime({type, predicted, scale * predicted});
    }
}

TEST(Recalibrator, RejectsDegenerateWindow)
{
    RecalibratorOptions options;
    options.window = 1;
    EXPECT_THROW(Recalibrator{options}, std::invalid_argument);
}

TEST(Recalibrator, TimeRefitRecoversInjectedScale)
{
    Recalibrator recal;
    feedTime(recal, "matmul", 1.08, 16);

    ASSERT_TRUE(recal.recalibrate(perfOnly()));
    const ModelPatch &patch = recal.patch();
    EXPECT_NEAR(patch.time_scale_global, 1.08, 1e-6);
    EXPECT_NEAR(patch.timeScaleFor("matmul"), 1.08, 1e-6);
    EXPECT_EQ(patch.epoch, 1u);
    // A successful refit invalidates the window (stale predictions).
    EXPECT_EQ(recal.timeWindowSize(), 0u);
}

TEST(Recalibrator, PerTypeScalesNeedTheirOwnSamples)
{
    RecalibratorOptions options;
    options.min_time_samples = 8;
    options.min_time_samples_per_type = 8;
    Recalibrator recal(options);
    feedTime(recal, "matmul", 1.10, 12);
    feedTime(recal, "vector", 1.10, 3); // below the per-type floor

    ASSERT_TRUE(recal.recalibrate(perfOnly()));
    const ModelPatch &patch = recal.patch();
    EXPECT_TRUE(patch.time_scale_by_type.count("matmul"));
    EXPECT_FALSE(patch.time_scale_by_type.count("vector"));
    // The starved type falls back to the global scale.
    EXPECT_NEAR(patch.timeScaleFor("vector"), patch.time_scale_global,
                1e-12);
}

TEST(Recalibrator, TooFewSamplesKeepsWindowAndPatch)
{
    Recalibrator recal;
    feedTime(recal, "matmul", 1.5, 3); // below min_time_samples = 8
    EXPECT_FALSE(recal.recalibrate(perfOnly()));
    EXPECT_EQ(recal.timeWindowSize(), 3u);
    EXPECT_DOUBLE_EQ(recal.patch().time_scale_global, 1.0);
    EXPECT_EQ(recal.patch().epoch, 0u);
}

TEST(Recalibrator, PowerRefitSeparatesScaleFromBias)
{
    Recalibrator recal;
    // measured = 1.12 * dynamic + rest + 0.8 W, with the dynamic part
    // varied (different frequencies) so the system is well conditioned.
    for (int i = 0; i < 16; ++i) {
        double dynamic = 20.0 + 2.0 * i;
        double rest = 5.0 + 0.1 * i;
        recal.addPower({dynamic, rest, 1.12 * dynamic + rest + 0.8});
    }
    ASSERT_TRUE(recal.recalibrate(powerOnly()));
    EXPECT_NEAR(recal.patch().power_dynamic_scale, 1.12, 1e-9);
    EXPECT_NEAR(recal.patch().power_static_bias_w, 0.8, 1e-9);
    EXPECT_EQ(recal.powerWindowSize(), 0u);
}

TEST(Recalibrator, ThermalRefitRecoversSlopeAndAmbient)
{
    Recalibrator recal;
    const double k = 0.11, ambient = 31.0;
    for (int i = 0; i < 16; ++i) {
        double watts = 30.0 + 3.0 * i;
        recal.addThermal({watts, ambient + k * watts});
    }
    ASSERT_TRUE(recal.recalibrate(thermalOnly()));
    const ModelPatch &patch = recal.patch();
    ASSERT_TRUE(patch.thermal_updated);
    EXPECT_NEAR(patch.k_per_watt, k, 1e-9);
    EXPECT_NEAR(patch.ambient_c, ambient, 1e-6);
}

TEST(Recalibrator, IncrementsComposeAcrossRecalibrations)
{
    Recalibrator recal;
    feedTime(recal, "matmul", 1.08, 16);
    ASSERT_TRUE(recal.recalibrate(perfOnly()));

    // The second window holds residuals against the PATCHED model:
    // predictions already carry the 1.08, reality drifted another 5%.
    feedTime(recal, "matmul", 1.05, 16);
    ASSERT_TRUE(recal.recalibrate(perfOnly()));
    EXPECT_NEAR(recal.patch().time_scale_global, 1.08 * 1.05, 1e-6);
    EXPECT_EQ(recal.patch().epoch, 2u);
}

TEST(Recalibrator, VerdictGatesWhichFamiliesRefit)
{
    Recalibrator recal;
    feedTime(recal, "matmul", 1.3, 16);
    for (int i = 0; i < 16; ++i) {
        double dynamic = 20.0 + 2.0 * i;
        recal.addPower({dynamic, 5.0, 1.3 * dynamic + 5.0});
    }
    // Only the power family is implicated: the (drifted) time window
    // must not leak into the patch.
    ASSERT_TRUE(recal.recalibrate(powerOnly()));
    EXPECT_NEAR(recal.patch().power_dynamic_scale, 1.3, 1e-9);
    EXPECT_DOUBLE_EQ(recal.patch().time_scale_global, 1.0);
    // An applied refit conservatively invalidates every window (the
    // epoch the observations were scored under is gone).
    EXPECT_EQ(recal.timeWindowSize(), 0u);
}

TEST(Recalibrator, WindowsAreBounded)
{
    RecalibratorOptions options;
    options.window = 10;
    Recalibrator recal(options);
    feedTime(recal, "matmul", 1.0, 50);
    EXPECT_EQ(recal.timeWindowSize(), 10u);
}

TEST(Recalibrator, ClearWindowsDropsBufferedObservations)
{
    Recalibrator recal;
    feedTime(recal, "matmul", 1.2, 16);
    recal.clearWindows();
    EXPECT_EQ(recal.timeWindowSize(), 0u);
    EXPECT_FALSE(recal.recalibrate(perfOnly()));
    EXPECT_DOUBLE_EQ(recal.patch().time_scale_global, 1.0);
}

TEST(Recalibrator, InvalidObservationsAreDropped)
{
    Recalibrator recal;
    double nan = std::numeric_limits<double>::quiet_NaN();
    recal.addTime({"matmul", nan, 1.0});
    recal.addTime({"matmul", 1.0, -1.0});
    recal.addTime({"matmul", 0.0, 1.0});
    recal.addPower({0.0, 1.0, 1.0}); // non-positive dynamic part
    recal.addPower({nan, 1.0, 1.0});
    recal.addThermal({nan, 40.0});
    EXPECT_EQ(recal.timeWindowSize(), 0u);
    EXPECT_EQ(recal.powerWindowSize(), 0u);
    EXPECT_EQ(recal.thermalWindowSize(), 0u);
}

TEST(Recalibrator, EmptyWindowsNeverRefit)
{
    Recalibrator recal;
    DriftVerdict all;
    all.perf = all.power = all.thermal = true;
    EXPECT_FALSE(recal.recalibrate(all));
    EXPECT_FALSE(recal.recalibrate(DriftVerdict{})); // no family at all
    EXPECT_EQ(recal.patch().epoch, 0u);
    EXPECT_DOUBLE_EQ(recal.patch().time_scale_global, 1.0);
    EXPECT_DOUBLE_EQ(recal.patch().power_dynamic_scale, 1.0);
    EXPECT_FALSE(recal.patch().thermal_updated);
}

TEST(Recalibrator, SingleTimeSampleRefitsWhenFloorAllowsIt)
{
    RecalibratorOptions options;
    options.min_time_samples = 1;
    options.min_time_samples_per_type = 1;
    Recalibrator recal(options);
    recal.addTime({"matmul", 1e-3, 1.25e-3});
    ASSERT_TRUE(recal.recalibrate(perfOnly()));
    EXPECT_NEAR(recal.patch().time_scale_global, 1.25, 1e-6);
    EXPECT_NEAR(recal.patch().timeScaleFor("matmul"), 1.25, 1e-6);
    EXPECT_EQ(recal.patch().epoch, 1u);
    EXPECT_EQ(recal.timeWindowSize(), 0u);
}

TEST(Recalibrator, SinglePowerSampleFallsBackToPureScale)
{
    // One sample cannot separate a dynamic scale from a static bias
    // (the 2x2 normal system is singular); the refit must fall back
    // to the always-conditioned pure scale and leave the bias alone.
    RecalibratorOptions options;
    options.min_power_samples = 1;
    Recalibrator recal(options);
    recal.addPower({40.0, 10.0, 10.0 + 40.0 * 1.15});
    ASSERT_TRUE(recal.recalibrate(powerOnly()));
    EXPECT_NEAR(recal.patch().power_dynamic_scale, 1.15, 1e-9);
    EXPECT_DOUBLE_EQ(recal.patch().power_static_bias_w, 0.0);
    EXPECT_EQ(recal.patch().epoch, 1u);
}

TEST(Recalibrator, SingleThermalSampleCannotFitSlopeAndAmbient)
{
    // (k, ambient) needs two distinct power points; with one the
    // least-squares system is singular and the refit must decline —
    // keeping the window so the next attempt sees more data — rather
    // than fabricate constants.
    RecalibratorOptions options;
    options.min_thermal_samples = 1;
    Recalibrator recal(options);
    recal.addThermal({250.0, 62.0});
    EXPECT_FALSE(recal.recalibrate(thermalOnly()));
    EXPECT_FALSE(recal.patch().thermal_updated);
    EXPECT_EQ(recal.patch().epoch, 0u);
    EXPECT_EQ(recal.thermalWindowSize(), 1u);

    // A second, distinct sample makes the same window fit.
    recal.addThermal({450.0, 84.0});
    ASSERT_TRUE(recal.recalibrate(thermalOnly()));
    EXPECT_NEAR(recal.patch().k_per_watt, 0.11, 1e-9);
    EXPECT_NEAR(recal.patch().ambient_c, 34.5, 1e-9);
}

TEST(Recalibrator, PristinePatchReproducesThePowerModel)
{
    npu::NpuConfig chip;
    npu::FreqTable table(chip.freq);
    power::CalibratedConstants constants = power::calibrateOffline(chip);
    power::PowerModel model(constants, table);
    power::OpPowerModel op;
    op.alpha_aicore = 2.0e-10;
    op.alpha_soc = 3.0e-10;

    ModelPatch pristine;
    for (double mhz : {1000.0, 1400.0, 1800.0}) {
        power::PowerPrediction expected = model.predict(op, mhz);
        PatchedPowerPrediction patched =
            predictPatched(model, op, mhz, pristine);
        EXPECT_NEAR(patched.aicore_watts, expected.aicore_watts,
                    1e-6 * expected.aicore_watts);
        EXPECT_NEAR(patched.soc_watts, expected.soc_watts,
                    1e-6 * expected.soc_watts);
        EXPECT_NEAR(patched.delta_t, expected.delta_t, 0.05);
        // The dynamic/rest split must re-assemble to the total.
        EXPECT_NEAR(patched.aicore_dynamic_w + patched.aicore_rest_w,
                    patched.aicore_watts, 1e-12);
    }
}

} // namespace
} // namespace opdvfs::calib
