#include <gtest/gtest.h>

#include "common/units.h"

namespace opdvfs {
namespace {

TEST(Units, SecondsToTicksRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSecond);
    EXPECT_EQ(secondsToTicks(0.001), kTicksPerMs);
    EXPECT_EQ(secondsToTicks(1e-6), kTicksPerUs);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSecond), 1.0);
}

TEST(Units, SecondsToTicksRounds)
{
    // 1.6 ps rounds to 2 ticks, 1.4 ps to 1 tick.
    EXPECT_EQ(secondsToTicks(1.6e-12), 2);
    EXPECT_EQ(secondsToTicks(1.4e-12), 1);
    EXPECT_EQ(secondsToTicks(0.0), 0);
}

TEST(Units, TickConstantsConsistent)
{
    EXPECT_EQ(kTicksPerMs * 1000, kTicksPerSecond);
    EXPECT_EQ(kTicksPerUs * 1000, kTicksPerMs);
}

TEST(Units, MhzToHz)
{
    EXPECT_DOUBLE_EQ(mhzToHz(1800.0), 1.8e9);
    EXPECT_DOUBLE_EQ(mhzToHz(0.0), 0.0);
}

TEST(Units, CyclesSecondsRoundTrip)
{
    double cycles = secondsToCycles(1e-3, 1500.0);
    EXPECT_DOUBLE_EQ(cycles, 1.5e6);
    EXPECT_DOUBLE_EQ(cyclesToSeconds(cycles, 1500.0), 1e-3);
}

TEST(Units, SubTickDurationsDoNotVanishWhenAccumulated)
{
    // 1000 x 1 us == 1 ms exactly in tick arithmetic.
    Tick total = 0;
    for (int i = 0; i < 1000; ++i)
        total += secondsToTicks(1e-6);
    EXPECT_EQ(total, kTicksPerMs);
}

} // namespace
} // namespace opdvfs
