/**
 * @file
 * Property suite over the client's retry policy and the wire framing
 * under chaos-shaped delivery:
 *
 *  - the nominal backoff schedule is non-decreasing and capped for
 *    every options shape and retry index;
 *  - the actual retry delay always respects the server's
 *    retry_after_ms hint (a floor even past the backoff ceiling),
 *    stays inside the jitter band otherwise, and is a pure function
 *    of (options, index, hint, jitter state);
 *  - a frame stream delivered in arbitrary chunks — the exact shapes
 *    net::ChaosProxy's splitter produces — peels into the same frame
 *    sequence as the unsplit stream, and every peeled payload
 *    re-encodes byte-identically (the same identity oracle the wire
 *    fuzz target enforces, here covering the v2 deadline and
 *    retry-after fields).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "check/generators.h"
#include "check/prop.h"
#include "net/client.h"
#include "net/wire.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

/** One backoff-policy shape plus a retry position to inspect. */
struct BackoffCase
{
    net::ClientOptions options;
    int horizon = 10;
};

TEST(PropNet, NominalBackoffIsNonDecreasingAndCapped)
{
    Property<BackoffCase> prop(
        "backoff-monotone-capped",
        [](Rng &rng) {
            BackoffCase bc;
            bc.options.backoff_initial_seconds = rng.uniform(1e-4, 2.0);
            bc.options.backoff_max_seconds = rng.uniform(1e-4, 5.0);
            bc.horizon = static_cast<int>(rng.uniformInt(2, 40));
            return bc;
        },
        [](const BackoffCase &bc) -> std::optional<std::string> {
            double cap = bc.options.backoff_max_seconds;
            double previous = 0.0;
            for (int retry = 1; retry <= bc.horizon; ++retry) {
                double nominal =
                    net::backoffNominalSeconds(bc.options, retry);
                if (nominal < previous) {
                    std::ostringstream os;
                    os << "backoff decreased at retry " << retry << ": "
                       << previous << " -> " << nominal;
                    return os.str();
                }
                if (nominal > cap && nominal
                        > bc.options.backoff_initial_seconds) {
                    std::ostringstream os;
                    os << "backoff " << nominal << " above cap " << cap
                       << " at retry " << retry;
                    return os.str();
                }
                previous = nominal;
            }
            return std::nullopt;
        });
    prop.withPrinter([](const BackoffCase &bc) {
        std::ostringstream os;
        os << "BackoffCase{initial="
           << bc.options.backoff_initial_seconds
           << ", max=" << bc.options.backoff_max_seconds
           << ", horizon=" << bc.horizon << "}";
        return os.str();
    });
    OPDVFS_CHECK_PROP(prop);
}

/** One concrete retry decision. */
struct DelayCase
{
    net::ClientOptions options;
    int retry_index = 1;
    std::uint32_t retry_after_ms = 0;
    std::uint64_t jitter_state = 1;
};

TEST(PropNet, RetryDelayRespectsTheHintAndTheJitterBand)
{
    Property<DelayCase> prop(
        "retry-after-always-respected",
        [](Rng &rng) {
            DelayCase dc;
            dc.options.backoff_initial_seconds = rng.uniform(1e-4, 1.0);
            dc.options.backoff_max_seconds = rng.uniform(1e-3, 3.0);
            dc.retry_index = static_cast<int>(rng.uniformInt(1, 20));
            // Hints from zero to well past the backoff ceiling.
            dc.retry_after_ms = static_cast<std::uint32_t>(
                rng.uniformInt(0, 120000));
            dc.jitter_state = static_cast<std::uint64_t>(
                rng.uniformInt(0, std::numeric_limits<std::int64_t>::max()));
            return dc;
        },
        [](const DelayCase &dc) -> std::optional<std::string> {
            std::uint64_t state = dc.jitter_state;
            double delay = net::retryDelaySeconds(
                dc.options, dc.retry_index, dc.retry_after_ms, state);
            std::uint64_t replay_state = dc.jitter_state;
            double replay = net::retryDelaySeconds(
                dc.options, dc.retry_index, dc.retry_after_ms,
                replay_state);
            double nominal =
                net::backoffNominalSeconds(dc.options, dc.retry_index);
            double hint =
                static_cast<double>(dc.retry_after_ms) / 1000.0;
            std::ostringstream os;
            if (delay != replay) {
                os << "delay is not a pure function of its inputs: "
                   << delay << " vs " << replay;
                return os.str();
            }
            if (delay < hint) {
                os << "delay " << delay << " under the retry-after floor "
                   << hint;
                return os.str();
            }
            if (delay + 1e-12 < 0.5 * nominal) {
                os << "delay " << delay << " below the jitter band of "
                   << nominal;
                return os.str();
            }
            double ceiling = nominal > hint ? nominal : hint;
            if (delay > ceiling + 1e-12) {
                os << "delay " << delay << " above max(nominal, hint) "
                   << ceiling;
                return os.str();
            }
            return std::nullopt;
        });
    prop.withPrinter([](const DelayCase &dc) {
        std::ostringstream os;
        os << "DelayCase{initial=" << dc.options.backoff_initial_seconds
           << ", max=" << dc.options.backoff_max_seconds
           << ", retry=" << dc.retry_index
           << ", retry_after_ms=" << dc.retry_after_ms
           << ", jitter_state=" << dc.jitter_state << "}";
        return os.str();
    });
    OPDVFS_CHECK_PROP(prop);
}

/** A frame stream and the chunk schedule it is delivered under. */
struct SplitCase
{
    std::vector<std::string> frames;
    /** Chunk sizes applied cyclically (chaos splitter shapes). */
    std::vector<std::size_t> chunks;
};

/** Peel every complete frame, collecting (type, payload). */
std::vector<std::pair<net::MsgType, std::string>>
peelAll(std::string &buffer)
{
    std::vector<std::pair<net::MsgType, std::string>> out;
    for (;;) {
        std::size_t consumed = 0;
        std::optional<net::FrameView> frame =
            net::peelFrame(buffer, &consumed);
        if (!frame)
            return out;
        out.emplace_back(frame->type, std::string(frame->payload));
        buffer.erase(0, consumed);
    }
}

TEST(PropNet, ChaosSplitStreamsDecodeIdenticallyToUnsplit)
{
    Property<SplitCase> prop(
        "chaos-split-decode-identity",
        [](Rng &rng) {
            SplitCase sc;
            int frames = static_cast<int>(rng.uniformInt(1, 3));
            for (int f = 0; f < frames; ++f)
                sc.frames.push_back(genWireFrame(rng, {}));
            int chunks = static_cast<int>(rng.uniformInt(1, 16));
            for (int c = 0; c < chunks; ++c)
                sc.chunks.push_back(
                    static_cast<std::size_t>(rng.uniformInt(1, 9)));
            return sc;
        },
        [](const SplitCase &sc) -> std::optional<std::string> {
            std::string full;
            for (const std::string &frame : sc.frames)
                full += frame;

            std::string whole_buffer = full;
            auto whole = peelAll(whole_buffer);

            // The same bytes, arriving in the chaos chunk schedule.
            std::string trickle_buffer;
            std::vector<std::pair<net::MsgType, std::string>> split;
            std::size_t at = 0;
            for (std::size_t k = 0; at < full.size(); ++k) {
                std::size_t take = std::min(
                    sc.chunks[k % sc.chunks.size()], full.size() - at);
                trickle_buffer.append(full, at, take);
                at += take;
                for (auto &frame : peelAll(trickle_buffer))
                    split.push_back(std::move(frame));
            }

            if (!whole_buffer.empty() || !trickle_buffer.empty())
                return "leftover bytes after peeling every frame";
            if (whole.size() != sc.frames.size())
                return "whole-buffer peel lost frames";
            if (split != whole)
                return "split stream decoded differently from unsplit";

            // Every peeled payload must survive decode -> re-encode
            // byte-identically (covers the v2 deadline and retry-after
            // fields through the same oracle check/fuzz enforces).
            for (const auto &[type, payload] : whole) {
                std::string reencoded;
                if (type == net::MsgType::Request)
                    reencoded =
                        net::encodeRequest(net::decodeRequest(payload));
                else
                    reencoded = net::encodeResponse(
                        net::decodeResponse(payload));
                if (reencoded != payload)
                    return "payload did not re-encode byte-identically";
            }
            return std::nullopt;
        });
    prop.withShrinker([](const SplitCase &sc) {
            std::vector<SplitCase> out;
            for (auto &frames : shrinkVector(sc.frames))
                out.push_back({frames, sc.chunks});
            for (auto &chunks : shrinkVector(sc.chunks)) {
                if (!chunks.empty())
                    out.push_back({sc.frames, chunks});
            }
            return out;
        })
        .withPrinter([](const SplitCase &sc) {
            std::ostringstream os;
            os << "SplitCase{frame_bytes=[";
            for (const std::string &frame : sc.frames)
                os << frame.size() << ",";
            os << "], chunks=[";
            for (std::size_t chunk : sc.chunks)
                os << chunk << ",";
            os << "]}";
            return os.str();
        });
    OPDVFS_CHECK_PROP(prop);
}

} // namespace
