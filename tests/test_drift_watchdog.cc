/**
 * DriftWatchdog state-machine tests: confirmation debounce, transient
 * dismissal, sticky Recalibrating, epoch advancement, and misuse
 * detection.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "calib/watchdog.h"

namespace opdvfs::calib {
namespace {

DriftVerdict
alarming()
{
    DriftVerdict verdict;
    verdict.perf = true;
    return verdict;
}

TEST(DriftWatchdog, RejectsMalformedOptions)
{
    WatchdogOptions bad;
    bad.confirm_iterations = 0;
    EXPECT_THROW(DriftWatchdog{bad}, std::invalid_argument);
}

TEST(DriftWatchdog, StartsSteadyWithEpochZero)
{
    DriftWatchdog watchdog;
    EXPECT_EQ(watchdog.state(), WatchdogState::Steady);
    EXPECT_EQ(watchdog.epoch(), 0u);
    EXPECT_EQ(watchdog.observe({}), WatchdogState::Steady);
}

TEST(DriftWatchdog, SingleAlarmOnlyRaisesSuspicion)
{
    WatchdogOptions options;
    options.confirm_iterations = 2;
    DriftWatchdog watchdog(options);

    EXPECT_EQ(watchdog.observe(alarming()), WatchdogState::Suspect);
    EXPECT_EQ(watchdog.stats().suspects, 1u);
    EXPECT_EQ(watchdog.stats().confirmations, 0u);
}

TEST(DriftWatchdog, TransientAlarmIsDismissed)
{
    WatchdogOptions options;
    options.confirm_iterations = 2;
    DriftWatchdog watchdog(options);

    watchdog.observe(alarming());
    EXPECT_EQ(watchdog.observe({}), WatchdogState::Steady);
    EXPECT_EQ(watchdog.stats().dismissals, 1u);

    // The debounce counter restarts: another single alarm is again
    // only a suspicion.
    EXPECT_EQ(watchdog.observe(alarming()), WatchdogState::Suspect);
    EXPECT_EQ(watchdog.stats().confirmations, 0u);
}

TEST(DriftWatchdog, ConsecutiveAlarmsConfirm)
{
    WatchdogOptions options;
    options.confirm_iterations = 3;
    DriftWatchdog watchdog(options);

    DriftVerdict verdict;
    verdict.power = true;
    verdict.thermal = true;
    EXPECT_EQ(watchdog.observe(verdict), WatchdogState::Suspect);
    EXPECT_EQ(watchdog.observe(verdict), WatchdogState::Suspect);
    EXPECT_EQ(watchdog.observe(verdict), WatchdogState::Recalibrating);
    EXPECT_EQ(watchdog.stats().confirmations, 1u);
    EXPECT_TRUE(watchdog.confirmedVerdict().power);
    EXPECT_TRUE(watchdog.confirmedVerdict().thermal);
    EXPECT_FALSE(watchdog.confirmedVerdict().perf);
}

TEST(DriftWatchdog, RecalibratingIsStickyUntilServiced)
{
    WatchdogOptions options;
    options.confirm_iterations = 1;
    DriftWatchdog watchdog(options);
    ASSERT_EQ(watchdog.observe(alarming()), WatchdogState::Recalibrating);

    // Even an all-clear verdict cannot cancel an owed recalibration:
    // the residuals only look clean because nothing was refit yet.
    EXPECT_EQ(watchdog.observe({}), WatchdogState::Recalibrating);
    EXPECT_EQ(watchdog.observe(alarming()), WatchdogState::Recalibrating);
    EXPECT_EQ(watchdog.stats().confirmations, 1u);
}

TEST(DriftWatchdog, RecalibratedReturnsToSteadyAndAdvancesEpoch)
{
    WatchdogOptions options;
    options.confirm_iterations = 1;
    DriftWatchdog watchdog(options);
    watchdog.observe(alarming());
    ASSERT_EQ(watchdog.state(), WatchdogState::Recalibrating);

    watchdog.recalibrated();
    EXPECT_EQ(watchdog.state(), WatchdogState::Steady);
    EXPECT_EQ(watchdog.epoch(), 1u);
    EXPECT_EQ(watchdog.stats().recalibrations, 1u);

    // The machine re-arms for the next drift.
    watchdog.observe(alarming());
    watchdog.recalibrated();
    EXPECT_EQ(watchdog.epoch(), 2u);
}

TEST(DriftWatchdog, RecalibratedOutsideRecalibratingThrows)
{
    DriftWatchdog watchdog;
    EXPECT_THROW(watchdog.recalibrated(), std::logic_error);
    watchdog.observe(alarming()); // Suspect, not yet confirmed
    EXPECT_THROW(watchdog.recalibrated(), std::logic_error);
    EXPECT_EQ(watchdog.epoch(), 0u);
}

} // namespace
} // namespace opdvfs::calib
