/**
 * StrategyService integration tests: cold path, exact cache hits,
 * coalescing of identical racing requests, warm starts from similar
 * cached strategies, per-request determinism across worker counts
 * (seed-forwarding audit), bounded admission, and stats accounting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "dvfs/strategy_io.h"
#include "models/transformer.h"
#include "npu/freq_table.h"
#include "power/offline_calibration.h"
#include "serve/service.h"

namespace opdvfs::serve {
namespace {

models::Workload
testWorkload(int seq)
{
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "serve-test";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return models::buildTransformerTraining(memory, model, 5);
}

/** Small but real pipeline configuration shared by every test. */
ServiceOptions
baseOptions(std::size_t workers)
{
    ServiceOptions options;
    options.pipeline.warmup_seconds = 2.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 30;
    options.pipeline.ga.generations = 24;
    options.pipeline.ga.refine_sweeps = 2;
    options.workers = workers;
    options.cache.capacity = 32;
    options.cache.shards = 4;
    return options;
}

/** The offline calibration, shared so each service start is cheap. */
const power::CalibratedConstants &
constants()
{
    static const power::CalibratedConstants value =
        power::calibrateOffline(npu::NpuConfig{});
    return value;
}

ServiceOptions
fastOptions(std::size_t workers)
{
    ServiceOptions options = baseOptions(workers);
    options.pipeline.constants = constants();
    return options;
}

TEST(StrategyService, ColdThenExactHit)
{
    StrategyService service(fastOptions(2));
    StrategyRequest request;
    request.workload = testWorkload(256);
    request.seed = 3;

    StrategyResponse cold = service.submit(request).get();
    EXPECT_EQ(cold.provenance, Provenance::Cold);
    EXPECT_FALSE(cold.strategy.mhz_per_stage.empty());
    ASSERT_TRUE(cold.strategy.meta.has_value());
    EXPECT_EQ(cold.strategy.meta->provenance, "cold");
    EXPECT_EQ(cold.strategy.meta->fingerprint, cold.fingerprint.digest);
    EXPECT_GT(cold.strategy.meta->score, 0.0);
    EXPECT_EQ(cold.generations_run, 24);
    EXPECT_EQ(cold.generations_saved, 0);

    StrategyResponse hit = service.submit(request).get();
    EXPECT_EQ(hit.provenance, Provenance::ExactHit);
    EXPECT_EQ(hit.strategy.mhz_per_stage, cold.strategy.mhz_per_stage);
    EXPECT_EQ(hit.ga.best_genome, cold.ga.best_genome);
    EXPECT_DOUBLE_EQ(hit.ga.best_score, cold.ga.best_score);
    EXPECT_EQ(hit.generations_saved, 24);
    ASSERT_TRUE(hit.strategy.meta.has_value());
    EXPECT_EQ(hit.strategy.meta->provenance, "exact-hit");
    // The hit skips profiling and search entirely.
    EXPECT_LT(hit.service_seconds, cold.service_seconds);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.exact_hits, 1u);
    EXPECT_EQ(stats.cold_misses, 1u);
    EXPECT_EQ(stats.cache_size, 1u);
    EXPECT_EQ(stats.generations_saved, 24u);
    EXPECT_GT(stats.p95_service_seconds, 0.0);
}

TEST(StrategyService, IdenticalRacingRequestsYieldIdenticalStrategies)
{
    // The seed-forwarding audit: the same request + seed must come
    // back bit-identical no matter which worker runs it or how the
    // two requests interleave (here: coalesced, cache-answered, or
    // independently recomputed are all acceptable mechanisms).
    StrategyService service(fastOptions(4));
    StrategyRequest request;
    request.workload = testWorkload(256);
    request.seed = 11;

    auto first = service.submit(request);
    auto second = service.submit(request);
    StrategyResponse a = first.get();
    StrategyResponse b = second.get();

    EXPECT_EQ(a.ga.best_genome, b.ga.best_genome);
    EXPECT_DOUBLE_EQ(a.ga.best_score, b.ga.best_score);
    EXPECT_EQ(a.strategy.mhz_per_stage, b.strategy.mhz_per_stage);
    ASSERT_EQ(a.strategy.plan.triggers.size(),
              b.strategy.plan.triggers.size());
    for (std::size_t t = 0; t < a.strategy.plan.triggers.size(); ++t) {
        EXPECT_EQ(a.strategy.plan.triggers[t].after_op_index,
                  b.strategy.plan.triggers[t].after_op_index);
        EXPECT_DOUBLE_EQ(a.strategy.plan.triggers[t].mhz,
                         b.strategy.plan.triggers[t].mhz);
    }
    // Exactly one computed cold; the other came from coalescing or
    // the cache.
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cold_misses, 1u);
    EXPECT_EQ(stats.exact_hits + stats.coalesced, 1u);
}

TEST(StrategyService, DeterministicAcrossWorkerCountsAndCachePolicies)
{
    StrategyRequest request;
    request.workload = testWorkload(256);
    request.seed = 7;
    request.use_cache = false; // force a full cold search every time

    ServiceOptions serial = fastOptions(1);
    serial.parallel_fitness = false;
    StrategyResponse reference =
        StrategyService(serial).submit(request).get();

    StrategyResponse parallel =
        StrategyService(fastOptions(4)).submit(request).get();

    EXPECT_EQ(parallel.ga.best_genome, reference.ga.best_genome);
    EXPECT_DOUBLE_EQ(parallel.ga.best_score, reference.ga.best_score);
    EXPECT_EQ(parallel.strategy.mhz_per_stage,
              reference.strategy.mhz_per_stage);
    EXPECT_EQ(parallel.provenance, Provenance::Cold);
}

TEST(StrategyService, WarmStartFromSimilarWorkload)
{
    ServiceOptions options = fastOptions(2);
    options.warm_generation_fraction = 1.0 / 3.0;
    StrategyService service(options);

    StrategyRequest donor;
    donor.workload = testWorkload(256);
    donor.seed = 3;
    StrategyResponse cold = service.submit(donor).get();
    ASSERT_EQ(cold.provenance, Provenance::Cold);

    // Same model family, slightly longer sequence: near-identical
    // features, different digest.
    StrategyRequest similar;
    similar.workload = testWorkload(288);
    similar.seed = 3;
    StrategyResponse warm = service.submit(similar).get();
    EXPECT_EQ(warm.provenance, Provenance::WarmStart);
    EXPECT_GT(warm.similarity, 0.85);
    EXPECT_EQ(warm.generations_run, 8); // 24 / 3
    EXPECT_EQ(warm.generations_saved, 16);
    ASSERT_TRUE(warm.strategy.meta.has_value());
    EXPECT_EQ(warm.strategy.meta->provenance, "warm-start");

    // The warm-started search must still produce a winning strategy
    // for *its* workload: compare against a full-budget cold run.
    StrategyRequest cold_similar = similar;
    cold_similar.use_cache = false;
    StrategyResponse full = service.submit(cold_similar).get();
    ASSERT_EQ(full.provenance, Provenance::Cold);
    EXPECT_GT(warm.ga.best_score, 0.95 * full.ga.best_score);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.warm_hits, 1u);
    EXPECT_EQ(stats.generations_saved, 16u);
}

TEST(StrategyService, WarmStartCanBeDisabledPerRequest)
{
    StrategyService service(fastOptions(2));
    StrategyRequest donor;
    donor.workload = testWorkload(256);
    service.submit(donor).get();

    StrategyRequest similar;
    similar.workload = testWorkload(288);
    similar.allow_warm_start = false;
    StrategyResponse response = service.submit(similar).get();
    EXPECT_EQ(response.provenance, Provenance::Cold);
    EXPECT_EQ(response.generations_run, 24);
}

TEST(StrategyService, TrySubmitRejectsAtAdmissionCapacity)
{
    ServiceOptions options = fastOptions(1);
    options.admission_capacity = 1;
    StrategyService service(options);

    StrategyRequest request;
    request.workload = testWorkload(256);
    request.use_cache = false;

    Admission admitted = service.trySubmit(request);
    ASSERT_TRUE(admitted.accepted());
    EXPECT_EQ(admitted.reject, RejectReason::None);
    // The single slot is taken until the pipeline finishes (hundreds
    // of milliseconds); an immediate second try must bounce with the
    // structured cause the wire protocol forwards.
    Admission bounced = service.trySubmit(request);
    EXPECT_FALSE(bounced.accepted());
    EXPECT_EQ(bounced.reject, RejectReason::QueueFull);
    EXPECT_EQ(service.stats().rejected, 1u);
    admitted.future->get();
    // Capacity freed: the next try is admitted again.
    Admission retried = service.trySubmit(request);
    ASSERT_TRUE(retried.accepted());
    retried.future->get();
}

TEST(StrategyService, CallbackSubmitDeliversExactlyOnce)
{
    StrategyService service(fastOptions(2));
    StrategyRequest request;
    request.workload = testWorkload(256);
    request.seed = 5;

    std::promise<StrategyResponse> delivered;
    RejectReason reject = service.trySubmit(
        request, [&delivered](StrategyResponse response,
                              std::exception_ptr error) {
            ASSERT_EQ(error, nullptr);
            delivered.set_value(std::move(response));
        });
    ASSERT_EQ(reject, RejectReason::None);
    StrategyResponse response = delivered.get_future().get();
    EXPECT_EQ(response.provenance, Provenance::Cold);
    EXPECT_FALSE(response.strategy.mhz_per_stage.empty());

    // The callback result must match the future-based path bit for
    // bit (same request, same seed, cache answers the repeat).
    StrategyResponse repeat = service.submit(request).get();
    EXPECT_EQ(repeat.strategy.mhz_per_stage,
              response.strategy.mhz_per_stage);
}

TEST(StrategyService, DrainStopsAdmissionAndCompletesInFlight)
{
    ServiceOptions options = fastOptions(2);
    StrategyService service(options);
    StrategyRequest request;
    request.workload = testWorkload(256);
    request.use_cache = false; // keep both requests genuinely in flight

    auto first = service.submit(request);
    auto second = service.submit(request);
    EXPECT_FALSE(service.draining());

    // drain() must block until both searches finish.  (Slot release
    // precedes promise publication — "a ready future implies
    // capacity" — so allow the publication a moment to land.)
    service.drain();
    EXPECT_TRUE(service.draining());
    EXPECT_EQ(first.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    EXPECT_EQ(second.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    EXPECT_FALSE(first.get().strategy.mhz_per_stage.empty());
    EXPECT_FALSE(second.get().strategy.mhz_per_stage.empty());

    // ...and admission is closed for good, with the structured cause.
    Admission refused = service.trySubmit(request);
    EXPECT_FALSE(refused.accepted());
    EXPECT_EQ(refused.reject, RejectReason::ShuttingDown);
    EXPECT_EQ(service.trySubmit(request,
                                [](StrategyResponse, std::exception_ptr) {
                                    FAIL() << "admitted after drain";
                                }),
              RejectReason::ShuttingDown);
    EXPECT_THROW((void)service.submit(request), std::runtime_error);
    EXPECT_TRUE(service.stats().draining);

    // Idempotent: a second drain returns immediately.
    service.drain();
}

TEST(StrategyService, RejectReasonTokensAreStable)
{
    EXPECT_STREQ(rejectReasonToken(RejectReason::None), "none");
    EXPECT_STREQ(rejectReasonToken(RejectReason::QueueFull),
                 "queue-full");
    EXPECT_STREQ(rejectReasonToken(RejectReason::ShuttingDown),
                 "shutting-down");
}

TEST(StrategyService, EpochAdvanceDemotesExactHitsToWarmStarts)
{
    ServiceOptions options = fastOptions(2);
    options.warm_generation_fraction = 1.0 / 3.0;
    StrategyService service(options);
    EXPECT_EQ(service.modelEpoch(), 0u);

    StrategyRequest request;
    request.workload = testWorkload(256);
    request.seed = 3;

    StrategyResponse cold = service.submit(request).get();
    ASSERT_EQ(cold.provenance, Provenance::Cold);
    ASSERT_EQ(service.submit(request).get().provenance,
              Provenance::ExactHit);

    // A recalibration invalidates every strategy searched on the old
    // models.  The identical request must NEVER be served the stale
    // plan as-is again - it recomputes, warm-started from the stale
    // strategy (same digest, so the donor is a perfect feature match).
    EXPECT_EQ(service.advanceModelEpoch(), 1u);
    StrategyResponse demoted = service.submit(request).get();
    EXPECT_EQ(demoted.provenance, Provenance::WarmStart);
    EXPECT_DOUBLE_EQ(demoted.similarity, 1.0);
    EXPECT_EQ(demoted.generations_run, 8); // 24 / 3
    EXPECT_EQ(demoted.fingerprint.model_epoch, 1u);

    // The recomputed strategy was re-cached at the current epoch: the
    // next identical request is an exact hit again.
    StrategyResponse rehit = service.submit(request).get();
    EXPECT_EQ(rehit.provenance, Provenance::ExactHit);
    EXPECT_EQ(rehit.strategy.mhz_per_stage,
              demoted.strategy.mhz_per_stage);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.stale_demotions, 1u);
    EXPECT_EQ(stats.model_epoch, 1u);
    EXPECT_EQ(stats.exact_hits, 2u);
}

TEST(StrategyService, EvictionRacingEpochAdvanceStaysCoherent)
{
    // Run under the tsan preset (this binary matches its test regex):
    // a capacity-2 single-shard cache forces an eviction on nearly
    // every insert while another thread hammers advanceModelEpoch, so
    // the shard mutex, the epoch counter, and the stats counters are
    // all contended at once.  The assertions only pin logical
    // coherence; the sanitizer pins the memory ordering.
    ServiceOptions options = fastOptions(4);
    options.cache.capacity = 2;
    options.cache.shards = 1;
    StrategyService service(options);

    const std::vector<int> seqs = {128, 160, 192, 224, 256, 288};
    std::atomic<bool> done{false};
    std::thread epoch_thread([&] {
        while (!done.load()) {
            service.advanceModelEpoch();
            std::this_thread::yield();
        }
    });

    std::size_t submitted = 0;
    for (int round = 0; round < 2; ++round) {
        std::vector<std::future<StrategyResponse>> futures;
        for (int seq : seqs) {
            StrategyRequest request;
            request.workload = testWorkload(seq);
            request.seed = 7;
            futures.push_back(service.submit(request));
            ++submitted;
        }
        for (auto &future : futures) {
            StrategyResponse response = future.get();
            // Whatever provenance the interleaving produced, the
            // strategy itself must be complete and well-formed.
            EXPECT_FALSE(response.strategy.mhz_per_stage.empty());
            EXPECT_EQ(response.strategy.stages.size(),
                      response.strategy.mhz_per_stage.size());
            ASSERT_TRUE(response.strategy.meta.has_value());
            EXPECT_GT(response.strategy.meta->score, 0.0);
        }
    }
    done.store(true);
    epoch_thread.join();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, submitted);
    // Evictions bound the cache, they never corrupt its bookkeeping.
    EXPECT_LE(stats.cache_size, 2u);
    EXPECT_EQ(stats.model_epoch, service.modelEpoch());
}

TEST(StrategyService, ResponseStrategyRoundTripsWithMeta)
{
    StrategyService service(fastOptions(2));
    StrategyRequest request;
    request.workload = testWorkload(256);
    StrategyResponse response = service.submit(request).get();

    std::stringstream buffer;
    dvfs::saveStrategy(response.strategy, buffer);
    dvfs::Strategy loaded = dvfs::loadStrategy(buffer);
    ASSERT_TRUE(loaded.meta.has_value());
    EXPECT_DOUBLE_EQ(loaded.meta->score, response.strategy.meta->score);
    EXPECT_EQ(loaded.meta->provenance, "cold");
    EXPECT_EQ(loaded.meta->fingerprint, response.fingerprint.digest);
    EXPECT_EQ(loaded.mhz_per_stage, response.strategy.mhz_per_stage);
}

TEST(StrategyService, QueuedRequestPastItsDeadlineIsRefused)
{
    StrategyService service(fastOptions(1));

    // Hold the single worker with a slow cold search.
    StrategyRequest occupier;
    occupier.workload = testWorkload(512);
    occupier.use_cache = false;
    Admission admitted = service.trySubmit(occupier);
    ASSERT_TRUE(admitted.accepted());

    // A 50 ms budget expires long before the worker frees: the
    // service must refuse the search rather than burn a GA run the
    // caller stopped waiting for.
    StrategyRequest doomed;
    doomed.workload = testWorkload(256);
    doomed.deadline_seconds = 0.05;
    std::future<StrategyResponse> future = service.submit(doomed);
    EXPECT_THROW(future.get(), RequestExpired);
    admitted.future->get();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.expired_in_queue, 1u);
    EXPECT_EQ(stats.ga_runs_past_deadline, 0u);
}

// The bench's control arm: with enforcement off an expired request
// still runs, and the tripwire counter records the waste instead.
TEST(StrategyService, EnforcementOffRunsExpiredWorkAndCountsIt)
{
    ServiceOptions options = fastOptions(1);
    options.enforce_deadlines = false;
    StrategyService service(options);

    StrategyRequest occupier;
    occupier.workload = testWorkload(512);
    occupier.use_cache = false;
    Admission admitted = service.trySubmit(occupier);
    ASSERT_TRUE(admitted.accepted());

    StrategyRequest doomed;
    doomed.workload = testWorkload(256);
    doomed.deadline_seconds = 0.05;
    doomed.use_cache = false;
    StrategyResponse served = service.submit(doomed).get();
    EXPECT_EQ(served.provenance, Provenance::Cold);
    admitted.future->get();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.expired_in_queue, 0u);
    EXPECT_EQ(stats.ga_runs_past_deadline, 1u);
}

TEST(StrategyService, ShedsLikelyColdWorkUnderSustainedQueueing)
{
    ServiceOptions options = fastOptions(1);
    // Shrink the sojourn target so one real queue wait is enough to
    // trip the shedder deterministically: a single wait of one cold
    // duration D raises the EWMA to ~0.2*D, so the target must sit
    // well below that relative to the cold EWMA (~D).
    options.min_shed_sojourn_seconds = 0.001;
    options.assumed_cold_seconds = 0.001;
    options.shed_sojourn_factor = 0.05;
    StrategyService service(options);

    // Pre-warm one fingerprint: the likely-hit probe must let this
    // request through the shedder later.
    StrategyRequest warm;
    warm.workload = testWorkload(256);
    service.submit(warm).get();

    // A runs, B waits A's whole duration: when the worker picks B up
    // the sojourn EWMA rises far above the 1 ms target.
    StrategyRequest slow_a;
    slow_a.workload = testWorkload(512);
    slow_a.use_cache = false;
    slow_a.seed = 101;
    Admission a = service.trySubmit(slow_a);
    ASSERT_TRUE(a.accepted());
    StrategyRequest slow_b = slow_a;
    slow_b.seed = 102;
    Admission b = service.trySubmit(slow_b);
    ASSERT_TRUE(b.accepted());
    for (int spin = 0;
         spin < 1000 && service.stats().sojourn_ewma_seconds < 0.005;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GT(service.stats().sojourn_ewma_seconds, 0.005);

    // While slow_b's search occupies the only worker its parallelFor
    // helpers sit in the shared pool queue, so the shedder sees a
    // backlog for the whole run.  Wait for it to appear (the first
    // generation enqueues within the run's opening milliseconds)...
    for (int spin = 0; spin < 1000 && service.stats().queue_depth == 0;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(service.stats().queue_depth, 0u);

    // ...then a cold request is shed early, while the likely cache
    // hit is still admitted through the same gate.
    StrategyRequest cold = slow_a;
    cold.seed = 104;
    Admission shed = service.trySubmit(cold);
    EXPECT_FALSE(shed.accepted());
    EXPECT_EQ(shed.reject, RejectReason::Overloaded);
    Admission hit = service.trySubmit(warm);
    ASSERT_TRUE(hit.accepted());

    b.future->get();
    StrategyResponse warmed = hit.future->get();
    EXPECT_EQ(warmed.provenance, Provenance::ExactHit);

    ServiceStats stats = service.stats();
    EXPECT_GE(stats.shed_early, 1u);
    EXPECT_GT(stats.cold_ewma_seconds, 0.0);
}

TEST(StrategyService, RaiseModelEpochIsMonotone)
{
    StrategyService service(fastOptions(1));
    EXPECT_EQ(service.modelEpoch(), 0u);
    EXPECT_EQ(service.raiseModelEpoch(5), 5u);
    // Raising to a lower or equal epoch is a no-op (a late-arriving
    // invalidate from an older recalibration must not regress).
    EXPECT_EQ(service.raiseModelEpoch(3), 5u);
    EXPECT_EQ(service.raiseModelEpoch(5), 5u);
    EXPECT_EQ(service.modelEpoch(), 5u);
    EXPECT_EQ(service.advanceModelEpoch(), 6u);
    EXPECT_EQ(service.raiseModelEpoch(100), 100u);
    EXPECT_EQ(service.modelEpoch(), 100u);
}

TEST(StrategyService, RaisedEpochDemotesExactHitsLikeAdvance)
{
    StrategyService service(fastOptions(2));
    StrategyRequest request;
    request.workload = testWorkload(256);
    request.seed = 3;
    service.submit(request).get();
    ASSERT_EQ(service.submit(request).get().provenance,
              Provenance::ExactHit);

    // The receive side of a cluster invalidate: identical demotion
    // semantics to a local advanceModelEpoch.
    service.raiseModelEpoch(7);
    StrategyResponse demoted = service.submit(request).get();
    EXPECT_NE(demoted.provenance, Provenance::ExactHit);
    EXPECT_GT(demoted.generations_saved, 0);

    // The recomputed entry serves exact hits at the new epoch.
    EXPECT_EQ(service.submit(request).get().provenance,
              Provenance::ExactHit);
}

/** Build a PeerDonor the way net::ShardPeers does from a reply. */
PeerDonor
donorFromHit(const SimilarHit &hit, double similarity)
{
    PeerDonor donor;
    donor.fingerprint = hit.entry.fingerprint;
    donor.strategy = hit.entry.strategy;
    donor.best_mhz = hit.entry.ga.best_mhz;
    donor.best_score = hit.entry.ga.best_score;
    donor.similarity = similarity;
    donor.perf_loss_target = hit.entry.perf_loss_target;
    return donor;
}

TEST(StrategyService, ImportedDonorIsNeverAnExactHit)
{
    StrategyService origin(fastOptions(2));
    StrategyRequest request;
    request.workload = testWorkload(256);
    request.seed = 3;
    StrategyResponse owned = origin.submit(request).get();

    // The owner exports its own entry...
    std::optional<SimilarHit> exported = origin.exportDonor(
        owned.fingerprint, request.perf_loss_target);
    ASSERT_TRUE(exported.has_value());
    EXPECT_EQ(exported->similarity, 1.0);

    // ...a second shard imports it; the identical request there must
    // not be served verbatim from the import (warm start only).
    StrategyService importer(fastOptions(2));
    importer.importDonor(donorFromHit(*exported, exported->similarity));
    EXPECT_EQ(importer.stats().donors_imported, 1u);

    StrategyResponse warmed = importer.submit(request).get();
    EXPECT_EQ(warmed.provenance, Provenance::WarmStart);
    EXPECT_EQ(warmed.similarity, 1.0);
    EXPECT_GT(warmed.generations_saved, 0);

    // And the importer never re-exports the second-hand copy: only
    // its own recomputed entry (inserted by the warm start above) may
    // donate onward.
    std::optional<SimilarHit> re_exported = importer.exportDonor(
        owned.fingerprint, request.perf_loss_target);
    ASSERT_TRUE(re_exported.has_value());
    EXPECT_FALSE(re_exported->entry.warm_start_only);
}

TEST(StrategyService, PeerDonorLookupConvertsColdToWarmStart)
{
    StrategyService donor_shard(fastOptions(2));
    StrategyRequest base;
    base.workload = testWorkload(256);
    base.seed = 3;
    donor_shard.submit(base).get();

    // A shard whose donor lookup consults the first (the serve-layer
    // analogue of the cross-shard peer protocol, no sockets).
    ServiceOptions options = fastOptions(2);
    std::atomic<int> lookups{0};
    options.peer_donor_lookup =
        [&donor_shard, &lookups](const Fingerprint &probe,
                                 double loss_target)
        -> std::optional<PeerDonor> {
        ++lookups;
        std::optional<SimilarHit> hit =
            donor_shard.exportDonor(probe, loss_target);
        if (!hit)
            return std::nullopt;
        return donorFromHit(*hit, hit->similarity);
    };
    StrategyService service(options);

    StrategyRequest similar;
    similar.workload = testWorkload(288);
    similar.seed = 3;
    StrategyResponse warmed = service.submit(similar).get();
    EXPECT_EQ(warmed.provenance, Provenance::WarmStart);
    EXPECT_GE(lookups.load(), 1);
    EXPECT_GT(warmed.generations_saved, 0);

    ServiceStats stats = service.stats();
    EXPECT_GE(stats.peer_donor_queries, 1u);
    EXPECT_GE(stats.peer_donor_hits, 1u);
    EXPECT_GE(stats.donors_imported, 1u);

    // A local donor now exists (the import): the next similar request
    // warm-starts without consulting the peer again.
    int before = lookups.load();
    StrategyRequest another;
    another.workload = testWorkload(320);
    another.seed = 3;
    StrategyResponse local = service.submit(another).get();
    EXPECT_EQ(local.provenance, Provenance::WarmStart);
    EXPECT_EQ(lookups.load(), before);
}

ServiceOptions
predictOptions(std::size_t workers)
{
    // A surrogate that fits from the very first observation, so one
    // cold search is enough training for the predict path.
    tune::SurrogateOptions surrogate;
    surrogate.min_rows = 1;
    surrogate.refit_interval_rows = 1;
    surrogate.boost_rounds = 6;
    surrogate.quantile_cuts = 4;

    ServiceOptions options = fastOptions(workers);
    options.surrogate = std::make_shared<tune::Surrogate>(surrogate);
    options.predict_first = true;
    options.refine_generation_fraction = 0.5;
    return options;
}

TEST(StrategyService, PredictFirstConfigurationIsValidated)
{
    // predict_first without a surrogate is a wiring bug, not a
    // runtime condition: fail at construction.
    ServiceOptions no_model = fastOptions(1);
    no_model.predict_first = true;
    EXPECT_THROW(StrategyService{no_model}, std::invalid_argument);

    ServiceOptions zero = predictOptions(1);
    zero.refine_generation_fraction = 0.0;
    EXPECT_THROW(StrategyService{zero}, std::invalid_argument);

    ServiceOptions over = predictOptions(1);
    over.refine_generation_fraction = 1.5;
    EXPECT_THROW(StrategyService{over}, std::invalid_argument);
}

TEST(StrategyService, PredictFirstServesSurrogateThenRefinesAsync)
{
    ServiceOptions options = predictOptions(2);
    std::atomic<int> inserts{0};
    options.insert_listener = [&inserts](const CacheEntry &) {
        ++inserts;
    };
    StrategyService service(options);

    // First contact ever: the surrogate is not ready, so the request
    // takes the normal cold path — and its finished search trains the
    // model (learn_from_searches).
    StrategyRequest trainer;
    trainer.workload = testWorkload(256);
    trainer.seed = 3;
    StrategyResponse cold = service.submit(trainer).get();
    ASSERT_EQ(cold.provenance, Provenance::Cold);
    ASSERT_TRUE(options.surrogate->ready());
    EXPECT_EQ(inserts.load(), 1);

    // A workload the service has never solved: served straight from
    // the surrogate, no GA generations on the caller's clock.
    StrategyRequest fresh;
    fresh.workload = testWorkload(320);
    fresh.seed = 5;
    StrategyResponse predicted = service.submit(fresh).get();
    EXPECT_EQ(predicted.provenance, Provenance::Predicted);
    EXPECT_EQ(predicted.generations_run, 0);
    EXPECT_EQ(predicted.generations_saved, 24);
    ASSERT_TRUE(predicted.strategy.meta.has_value());
    EXPECT_EQ(predicted.strategy.meta->provenance, "predicted");
    EXPECT_GT(predicted.strategy.meta->score, 0.0);
    EXPECT_DOUBLE_EQ(predicted.strategy.meta->pre_refine_score,
                     predicted.strategy.meta->score);
    ASSERT_EQ(predicted.strategy.mhz_per_stage.size(),
              predicted.strategy.stages.size());
    // Every predicted frequency is snapped to the chip's table.
    npu::FreqTable table(options.pipeline.chip.freq);
    for (double mhz : predicted.strategy.mhz_per_stage)
        EXPECT_TRUE(table.supports(mhz))
            << mhz << " MHz is not a table frequency";
    // The async refinement either upgraded the entry or proved the
    // prediction was already as good; both resolve, exactly once.
    service.waitForRefines();
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.predicted_served, 1u);
    EXPECT_EQ(stats.refine_upgrades + stats.refine_discards, 1u);
    EXPECT_EQ(stats.refines_in_flight, 0u);
    EXPECT_EQ(stats.cold_misses, 1u);

    // Provisional entries never fire the replication/WAL listener;
    // only the refined upgrade does.
    EXPECT_EQ(inserts.load(),
              1 + static_cast<int>(stats.refine_upgrades));

    // The identical request now exact-hits whatever the refinement
    // left in the cache — never worse than the served prediction.
    StrategyResponse hit = service.submit(fresh).get();
    EXPECT_EQ(hit.provenance, Provenance::ExactHit);
    EXPECT_GE(hit.ga.best_score, predicted.ga.best_score);
    if (stats.refine_upgrades == 1) {
        EXPECT_GT(hit.ga.best_score, predicted.ga.best_score);
        ASSERT_TRUE(hit.strategy.meta.has_value());
        EXPECT_DOUBLE_EQ(hit.strategy.meta->score, hit.ga.best_score);
    }

    // Predicted entries are provisional: the persistence snapshot
    // must never contain one.
    for (const CacheEntry &entry : service.snapshotCache())
        EXPECT_FALSE(entry.predicted);
}

TEST(StrategyService, PredictFirstRespectsColdQualityRequests)
{
    StrategyService service(predictOptions(2));

    StrategyRequest trainer;
    trainer.workload = testWorkload(256);
    service.submit(trainer).get();
    ASSERT_TRUE(service.options().surrogate->ready());

    // A caller that forbids warm starts demands full search quality;
    // the surrogate must not answer for it.
    StrategyRequest strict;
    strict.workload = testWorkload(320);
    strict.allow_warm_start = false;
    StrategyResponse response = service.submit(strict).get();
    EXPECT_EQ(response.provenance, Provenance::Cold);
    EXPECT_EQ(response.generations_run, 24);
    EXPECT_EQ(service.stats().predicted_served, 0u);
}

TEST(StrategyService, DrainWaitsOutScheduledRefinements)
{
    ServiceOptions options = predictOptions(2);
    StrategyService service(options);

    StrategyRequest trainer;
    trainer.workload = testWorkload(256);
    service.submit(trainer).get();
    ASSERT_TRUE(options.surrogate->ready());

    StrategyRequest fresh;
    fresh.workload = testWorkload(288);
    StrategyResponse predicted = service.submit(fresh).get();
    ASSERT_EQ(predicted.provenance, Provenance::Predicted);

    // drain() implies waitForRefines(): afterwards the refinement has
    // fully resolved (ran, or observed draining and bailed — either
    // way nothing is queued or running).
    service.drain();
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.refines_in_flight, 0u);
    EXPECT_LE(stats.refine_upgrades + stats.refine_discards, 1u);
}

} // namespace
} // namespace opdvfs::serve
