#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "npu/thermal.h"

namespace opdvfs::npu {
namespace {

TEST(Thermal, StartsAtAmbient)
{
    ThermalModel thermal;
    EXPECT_DOUBLE_EQ(thermal.temperature(),
                     thermal.config().ambient_celsius);
    EXPECT_DOUBLE_EQ(thermal.deltaT(), 0.0);
}

// Eq. 15: equilibrium temperature is linear in SoC power.
TEST(Thermal, EquilibriumLinearInPower)
{
    ThermalModel thermal;
    const auto &config = thermal.config();
    EXPECT_DOUBLE_EQ(thermal.equilibrium(0.0), config.ambient_celsius);
    double t200 = thermal.equilibrium(200.0);
    double t300 = thermal.equilibrium(300.0);
    double t400 = thermal.equilibrium(400.0);
    EXPECT_NEAR(t300 - t200, t400 - t300, 1e-12);
    EXPECT_NEAR(t300 - t200, 100.0 * config.k_per_watt, 1e-12);
}

TEST(Thermal, ApproachesEquilibriumExponentially)
{
    ThermalModel thermal;
    const auto &config = thermal.config();
    double power = 250.0;
    // After exactly one time constant, 1 - 1/e of the gap is closed.
    thermal.advance(config.time_constant_s, power);
    double target = thermal.equilibrium(power);
    double expected = config.ambient_celsius
        + (target - config.ambient_celsius) * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(thermal.temperature(), expected, 1e-9);
}

TEST(Thermal, ManySmallStepsEqualOneBigStep)
{
    ThermalModel a, b;
    double power = 300.0;
    a.advance(10.0, power);
    for (int i = 0; i < 1000; ++i)
        b.advance(0.01, power);
    EXPECT_NEAR(a.temperature(), b.temperature(), 1e-9);
}

TEST(Thermal, ConvergesToEquilibrium)
{
    ThermalModel thermal;
    double power = 280.0;
    for (int i = 0; i < 100; ++i)
        thermal.advance(1.0, power);
    EXPECT_NEAR(thermal.temperature(), thermal.equilibrium(power), 1e-3);
}

TEST(Thermal, CoolsBackDown)
{
    ThermalModel thermal;
    for (int i = 0; i < 100; ++i)
        thermal.advance(1.0, 300.0);
    double hot = thermal.temperature();
    thermal.advance(5.0, 0.0);
    EXPECT_LT(thermal.temperature(), hot);
    for (int i = 0; i < 100; ++i)
        thermal.advance(1.0, 0.0);
    EXPECT_NEAR(thermal.temperature(), thermal.config().ambient_celsius,
                1e-3);
}

TEST(Thermal, ZeroStepIsNoOp)
{
    ThermalModel thermal;
    thermal.advance(0.0, 500.0);
    EXPECT_DOUBLE_EQ(thermal.temperature(),
                     thermal.config().ambient_celsius);
}

TEST(Thermal, ResetReturnsToAmbient)
{
    ThermalModel thermal;
    thermal.advance(100.0, 300.0);
    thermal.reset();
    EXPECT_DOUBLE_EQ(thermal.deltaT(), 0.0);
}

TEST(Thermal, Validation)
{
    ThermalModel thermal;
    EXPECT_THROW(thermal.advance(-1.0, 100.0), std::invalid_argument);
    ThermalConfig bad;
    bad.time_constant_s = 0.0;
    EXPECT_THROW(ThermalModel{bad}, std::invalid_argument);
}

} // namespace
} // namespace opdvfs::npu
