#include <gtest/gtest.h>

#include <set>

#include "dvfs/preprocess.h"

namespace opdvfs::dvfs {
namespace {

/** Build a synthetic record with a given class-determining shape. */
trace::OpRecord
makeRecord(std::uint64_t id, Tick start, Tick duration, bool sensitive)
{
    trace::OpRecord r;
    r.op_id = id;
    r.start = start;
    r.end = start + duration;
    r.duration_s = ticksToSeconds(duration);
    r.category = npu::OpCategory::Compute;
    // Keep ratio sums above 1 so the class is decided by the dominant
    // pipe, not the no-pipeline rule.
    if (sensitive) {
        r.ratios.cube = 0.95; // core bound
        r.ratios.mte2 = 0.30;
    } else {
        r.ratios.mte2 = 0.95; // uncore bound
        r.ratios.vector = 0.30;
    }
    return r;
}

/** Alternating run pattern: k sensitive then k insensitive ops. */
std::vector<trace::OpRecord>
alternating(int groups, int per_group, Tick op_duration)
{
    std::vector<trace::OpRecord> records;
    Tick t = 0;
    std::uint64_t id = 0;
    for (int g = 0; g < groups; ++g) {
        bool sensitive = g % 2 == 0;
        for (int i = 0; i < per_group; ++i) {
            records.push_back(makeRecord(id++, t, op_duration, sensitive));
            t += op_duration;
        }
    }
    return records;
}

TEST(Preprocess, SplitsBySensitivity)
{
    // Each group is 10 x 1 ms = 10 ms >> FAI: no merging.
    auto records = alternating(6, 10, kTicksPerMs);
    PreprocessResult result = preprocess(records, {});
    ASSERT_EQ(result.stages.size(), 6u);
    for (std::size_t i = 0; i < result.stages.size(); ++i) {
        EXPECT_EQ(result.stages[i].high_frequency, i % 2 == 0);
        EXPECT_EQ(result.stages[i].op_ids.size(), 10u);
    }
    EXPECT_EQ(result.lfcCount(), 3u);
    EXPECT_EQ(result.hfcCount(), 3u);
}

TEST(Preprocess, EveryOpAssignedExactlyOnceInOrder)
{
    auto records = alternating(9, 7, kTicksPerMs / 2);
    PreprocessResult result = preprocess(records, {});
    std::vector<std::uint64_t> seen;
    for (const auto &stage : result.stages)
        seen.insert(seen.end(), stage.op_ids.begin(), stage.op_ids.end());
    ASSERT_EQ(seen.size(), records.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i);
}

TEST(Preprocess, ShortStagesMergedUpToFai)
{
    // Groups of 1 ms alternate; with FAI 5 ms they must merge.
    auto records = alternating(20, 1, kTicksPerMs);
    PreprocessOptions options;
    options.fai = 5 * kTicksPerMs;
    PreprocessResult result = preprocess(records, options);
    ASSERT_LT(result.stages.size(), 20u / 4);
    // All but possibly the last stage meet the FAI.
    for (std::size_t i = 0; i + 1 < result.stages.size(); ++i)
        EXPECT_GE(result.stages[i].duration, options.fai);
}

TEST(Preprocess, MergedStageTypeFollowsDominantTime)
{
    // 1 ms sensitive + 3 ms insensitive merged: stage is LFC.
    std::vector<trace::OpRecord> records;
    records.push_back(makeRecord(0, 0, kTicksPerMs, true));
    records.push_back(
        makeRecord(1, kTicksPerMs, 3 * kTicksPerMs, false));
    PreprocessOptions options;
    options.fai = 10 * kTicksPerMs;
    PreprocessResult result = preprocess(records, options);
    ASSERT_EQ(result.stages.size(), 1u);
    EXPECT_FALSE(result.stages[0].high_frequency);
    EXPECT_NEAR(result.stages[0].sensitive_seconds, 1e-3, 1e-9);
    EXPECT_NEAR(result.stages[0].insensitive_seconds, 3e-3, 1e-9);
}

TEST(Preprocess, StageTimingCoversTimeline)
{
    auto records = alternating(8, 5, kTicksPerMs);
    PreprocessResult result = preprocess(records, {});
    EXPECT_EQ(result.stages.front().start, records.front().start);
    Tick covered = 0;
    for (const auto &stage : result.stages)
        covered += stage.duration;
    EXPECT_EQ(covered, records.back().end - records.front().start);
}

TEST(Preprocess, BottlenecksAlignedWithRecords)
{
    auto records = alternating(4, 3, kTicksPerMs);
    PreprocessResult result = preprocess(records, {});
    ASSERT_EQ(result.bottlenecks.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        bool sensitive = isFrequencySensitive(result.bottlenecks[i]);
        EXPECT_EQ(sensitive, records[i].ratios.cube > 0.5);
    }
}

TEST(Preprocess, SingleRunYieldsSingleStage)
{
    auto records = alternating(1, 20, kTicksPerMs);
    PreprocessResult result = preprocess(records, {});
    ASSERT_EQ(result.stages.size(), 1u);
    EXPECT_TRUE(result.stages[0].high_frequency);
    EXPECT_EQ(result.stages[0].first_op, 0u);
}

TEST(Preprocess, Validation)
{
    EXPECT_THROW(preprocess({}, {}), std::invalid_argument);
    auto records = alternating(2, 2, kTicksPerMs);
    PreprocessOptions bad;
    bad.fai = 0;
    EXPECT_THROW(preprocess(records, bad), std::invalid_argument);
}

/** Property: merging never drops or reorders ops, for many FAIs. */
class PreprocessFaiSweep : public ::testing::TestWithParam<Tick>
{
};

TEST_P(PreprocessFaiSweep, OpConservation)
{
    auto records = alternating(15, 4, 700 * kTicksPerUs);
    PreprocessOptions options;
    options.fai = GetParam();
    PreprocessResult result = preprocess(records, options);
    std::size_t total = 0;
    std::uint64_t expected = 0;
    for (const auto &stage : result.stages) {
        for (std::uint64_t id : stage.op_ids)
            EXPECT_EQ(id, expected++);
        total += stage.op_ids.size();
    }
    EXPECT_EQ(total, records.size());
    // Fewer (or equal) stages with a larger FAI.
}

INSTANTIATE_TEST_SUITE_P(Fais, PreprocessFaiSweep,
                         ::testing::Values(kTicksPerMs, 5 * kTicksPerMs,
                                           20 * kTicksPerMs,
                                           100 * kTicksPerMs,
                                           kTicksPerSecond));

TEST(Preprocess, LargerFaiNeverMoreStages)
{
    auto records = alternating(30, 3, 900 * kTicksPerUs);
    std::size_t previous = SIZE_MAX;
    for (Tick fai : {kTicksPerMs, 5 * kTicksPerMs, 50 * kTicksPerMs,
                     500 * kTicksPerMs}) {
        PreprocessOptions options;
        options.fai = fai;
        std::size_t count = preprocess(records, options).stages.size();
        EXPECT_LE(count, previous);
        previous = count;
    }
}

} // namespace
} // namespace opdvfs::dvfs
