#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.h"

namespace opdvfs::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    sim.scheduleIn(100, [] {});
    sim.run();
    EXPECT_EQ(sim.now(), 100);
}

// Regression: the clock must be advanced *before* an event body runs,
// so now() inside the event equals the event's own timestamp.
TEST(Simulator, NowIsEventTimestampInsideEvent)
{
    Simulator sim;
    std::vector<Tick> observed;
    sim.scheduleIn(10, [&] { observed.push_back(sim.now()); });
    sim.scheduleIn(25, [&] { observed.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(observed, (std::vector<Tick>{10, 25}));
}

TEST(Simulator, NestedSchedulingSeesConsistentTime)
{
    Simulator sim;
    std::vector<Tick> observed;
    sim.scheduleIn(5, [&] {
        sim.scheduleIn(7, [&] { observed.push_back(sim.now()); });
    });
    sim.run();
    EXPECT_EQ(observed, (std::vector<Tick>{12}));
}

TEST(Simulator, RunLimitStopsAndAdvancesClock)
{
    Simulator sim;
    int ran = 0;
    sim.scheduleIn(10, [&] { ++ran; });
    sim.scheduleIn(100, [&] { ++ran; });
    auto executed = sim.run(50);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(ran, 2);
}

TEST(Simulator, EventExactlyAtLimitRuns)
{
    Simulator sim;
    bool ran = false;
    sim.scheduleIn(50, [&] { ran = true; });
    sim.run(50);
    EXPECT_TRUE(ran);
}

TEST(Simulator, RunToLimitWithEmptyQueueAdvancesClock)
{
    Simulator sim;
    sim.run(1000);
    EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, NegativeDelayThrows)
{
    Simulator sim;
    EXPECT_THROW(sim.scheduleIn(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, SchedulingInThePastThrows)
{
    Simulator sim;
    sim.scheduleIn(100, [] {});
    sim.run();
    EXPECT_THROW(sim.scheduleAt(50, [] {}), std::invalid_argument);
    EXPECT_NO_THROW(sim.scheduleAt(100, [] {}));
}

TEST(Simulator, CountsExecutedEvents)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.scheduleIn(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 5u);
}

} // namespace
} // namespace opdvfs::sim
