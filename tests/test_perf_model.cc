#include <gtest/gtest.h>

#include "common/statistics.h"
#include "models/transformer.h"
#include "perf/perf_model.h"
#include "trace/workload_runner.h"

namespace opdvfs::perf {
namespace {

/** Shared fixture: profile a small transformer at several points. */
class PerfModelTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        npu::NpuConfig config;
        npu::MemorySystem memory(config.memory);
        models::TransformerConfig model;
        model.name = "tiny";
        model.layers = 3;
        model.hidden = 1536;
        model.heads = 12;
        model.seq = 512;
        model.batch = 4;
        workload_ = new models::Workload(
            models::buildTransformerTraining(memory, model, 21));

        trace::WorkloadRunner runner(config);
        runs_ = new std::map<double, trace::RunResult>();
        for (double f : {1000.0, 1200.0, 1400.0, 1600.0, 1800.0}) {
            trace::RunOptions options;
            options.initial_mhz = f;
            options.seed = 100 + static_cast<std::uint64_t>(f);
            (*runs_)[f] = runner.run(*workload_, options);
        }
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        delete runs_;
    }

    static PerfModelRepository
    buildRepo(const PerfBuildOptions &options)
    {
        PerfModelRepository repo;
        for (const auto &[f, run] : *runs_)
            repo.addProfile(f, run.records);
        repo.fitAll(options);
        return repo;
    }

    static models::Workload *workload_;
    static std::map<double, trace::RunResult> *runs_;
};

models::Workload *PerfModelTest::workload_ = nullptr;
std::map<double, trace::RunResult> *PerfModelTest::runs_ = nullptr;

TEST_F(PerfModelTest, BuildsModelForEveryOperator)
{
    PerfBuildOptions options;
    options.fit_frequencies_mhz = {1000.0, 1800.0};
    auto repo = buildRepo(options);
    EXPECT_EQ(repo.modelCount(), workload_->opCount());
    for (const auto &op : workload_->iteration)
        EXPECT_NE(repo.find(op.id), nullptr);
}

TEST_F(PerfModelTest, InsensitiveOperatorsPredictConstantDuration)
{
    PerfBuildOptions options;
    options.fit_frequencies_mhz = {1000.0, 1800.0};
    auto repo = buildRepo(options);
    for (const auto &op : workload_->iteration) {
        if (op.hw.category == npu::OpCategory::Compute)
            continue;
        const OpPerfModel *model = repo.find(op.id);
        ASSERT_NE(model, nullptr);
        EXPECT_FALSE(model->frequency_sensitive);
        EXPECT_DOUBLE_EQ(model->predictSeconds(1000.0),
                         model->predictSeconds(1800.0));
    }
}

// Sect. 7.2: out-of-sample prediction accuracy, all three families.
TEST_F(PerfModelTest, OutOfSampleErrorSmall)
{
    for (FitFunction kind :
         {FitFunction::QuadOverF, FitFunction::FullQuadOverF,
          FitFunction::PwlCycles}) {
        SCOPED_TRACE(fitFunctionName(kind));
        PerfBuildOptions options;
        options.kind = kind;
        options.fit_frequencies_mhz = kind == FitFunction::QuadOverF
            ? std::vector<double>{1000.0, 1800.0}
            : std::vector<double>{1000.0, 1400.0, 1800.0};
        auto repo = buildRepo(options);

        std::vector<double> errors;
        for (double f : {1200.0, 1600.0}) {
            for (const auto &e : repo.evaluate(f, (*runs_)[f].records))
                errors.push_back(e.relative_error);
        }
        ASSERT_FALSE(errors.empty());
        // The paper reports ~2% average error for Func. 2.
        EXPECT_LT(stats::mean(errors), 0.05);
    }
}

TEST_F(PerfModelTest, TinyOperatorsExcludedFromEvaluation)
{
    PerfBuildOptions options;
    options.fit_frequencies_mhz = {1000.0, 1800.0};
    options.tiny_threshold_s = 20e-6;
    auto repo = buildRepo(options);
    EXPECT_LT(repo.evaluableModelCount(), repo.modelCount());
    auto errors = repo.evaluate(1400.0, (*runs_)[1400.0].records);
    for (const auto &e : errors) {
        const OpPerfModel *model = repo.find(e.op_id);
        EXPECT_FALSE(model->tiny);
    }
}

TEST_F(PerfModelTest, ProfiledFrequenciesListed)
{
    PerfModelRepository repo;
    for (const auto &[f, run] : *runs_)
        repo.addProfile(f, run.records);
    auto fs = repo.profiledFrequencies();
    ASSERT_EQ(fs.size(), 5u);
    EXPECT_DOUBLE_EQ(fs.front(), 1000.0);
    EXPECT_DOUBLE_EQ(fs.back(), 1800.0);
}

TEST_F(PerfModelTest, MissingFitFrequencyThrows)
{
    PerfModelRepository repo;
    repo.addProfile(1000.0, (*runs_)[1000.0].records);
    PerfBuildOptions options;
    options.fit_frequencies_mhz = {1000.0, 1700.0};
    EXPECT_THROW(repo.fitAll(options), std::invalid_argument);
}

TEST_F(PerfModelTest, UnknownOperatorThrows)
{
    auto repo = buildRepo({});
    EXPECT_THROW(repo.predictSeconds(999'999'999, 1500.0),
                 std::invalid_argument);
    EXPECT_EQ(repo.find(999'999'999), nullptr);
}

TEST_F(PerfModelTest, PredictionsDecreaseWithFrequency)
{
    PerfBuildOptions options;
    options.fit_frequencies_mhz = {1000.0, 1800.0};
    auto repo = buildRepo(options);
    for (const auto &op : workload_->iteration) {
        const OpPerfModel *model = repo.find(op.id);
        if (!model->frequency_sensitive)
            continue;
        EXPECT_GE(model->predictSeconds(1000.0),
                  model->predictSeconds(1800.0) * 0.98)
            << op.type;
    }
}

} // namespace
} // namespace opdvfs::perf
