/**
 * Parameterized frequency sweep across the whole supported range:
 * fundamental monotonicity invariants of the simulated device, checked
 * through the public measurement path.
 */

#include <gtest/gtest.h>

#include <map>

#include "models/transformer.h"
#include "npu/freq_table.h"
#include "trace/workload_runner.h"

namespace opdvfs::trace {
namespace {

class FrequencySweep : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        npu::NpuConfig config;
        npu::MemorySystem memory(config.memory);
        models::TransformerConfig model;
        model.name = "sweep";
        model.layers = 2;
        model.hidden = 1536;
        model.heads = 12;
        model.seq = 512;
        model.batch = 4;
        models::Workload workload =
            models::buildTransformerTraining(memory, model, 33);

        runs_ = new std::map<double, RunResult>();
        WorkloadRunner runner(config);
        for (double f : npu::FreqTable(config.freq).frequenciesMhz()) {
            RunOptions options;
            options.initial_mhz = f;
            options.warmup_seconds = 8.0;
            options.seed = 500 + static_cast<std::uint64_t>(f);
            (*runs_)[f] = runner.run(workload, options);
        }
    }

    static void
    TearDownTestSuite()
    {
        delete runs_;
    }

    static std::map<double, RunResult> *runs_;
};

std::map<double, RunResult> *FrequencySweep::runs_ = nullptr;

TEST_F(FrequencySweep, IterationTimeNonIncreasingInFrequency)
{
    double previous = 1e18;
    for (const auto &[f, run] : *runs_) {
        EXPECT_LE(run.iteration_seconds, previous * (1.0 + 1e-9))
            << "at " << f;
        previous = run.iteration_seconds;
    }
}

TEST_F(FrequencySweep, AicorePowerStrictlyIncreasingInFrequency)
{
    double previous = 0.0;
    for (const auto &[f, run] : *runs_) {
        EXPECT_GT(run.aicore_avg_w, previous) << "at " << f;
        previous = run.aicore_avg_w;
    }
}

TEST_F(FrequencySweep, AicoreEnergyPerIterationHasRealTradeSpace)
{
    // Energy = power x time: low frequency must save AICore energy on
    // this memory-heavy workload (otherwise DVFS would be pointless).
    double e_low = (*runs_)[1200.0].aicore_energy_j;
    double e_high = (*runs_)[1800.0].aicore_energy_j;
    EXPECT_LT(e_low, e_high);
}

TEST_F(FrequencySweep, TemperatureTracksPower)
{
    EXPECT_GT((*runs_)[1800.0].avg_temperature_c,
              (*runs_)[1000.0].avg_temperature_c);
}

TEST_F(FrequencySweep, SocPowerIncreasesInFrequency)
{
    EXPECT_GT((*runs_)[1800.0].soc_avg_w, (*runs_)[1300.0].soc_avg_w);
    EXPECT_GT((*runs_)[1300.0].soc_avg_w, (*runs_)[1000.0].soc_avg_w);
}

TEST_F(FrequencySweep, SlowdownBoundedByFrequencyRatio)
{
    // Nothing can slow down more than the pure frequency ratio, and a
    // real workload (with insensitive time) slows down strictly less.
    double t_low = (*runs_)[1000.0].iteration_seconds;
    double t_high = (*runs_)[1800.0].iteration_seconds;
    double ratio = t_low / t_high;
    EXPECT_LE(ratio, 1.8 + 1e-6);
    EXPECT_LT(ratio, 1.75); // insensitive fraction exists
    EXPECT_GT(ratio, 1.05); // sensitive fraction exists
}

} // namespace
} // namespace opdvfs::trace
