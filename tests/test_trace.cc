#include <gtest/gtest.h>

#include <sstream>

#include "models/transformer.h"
#include "trace/trace_export.h"
#include "trace/workload_runner.h"

namespace opdvfs::trace {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    TraceTest()
        : memory_(config_.memory)
    {
        models::TransformerConfig model;
        model.name = "tiny";
        model.layers = 2;
        model.hidden = 1024;
        model.heads = 8;
        model.seq = 256;
        model.batch = 4;
        workload_ = models::buildTransformerTraining(memory_, model, 5);
    }

    npu::NpuConfig config_;
    npu::MemorySystem memory_;
    models::Workload workload_;
};

TEST_F(TraceTest, ProfilerRecordsEveryOperatorOnce)
{
    WorkloadRunner runner(config_);
    RunOptions options;
    RunResult result = runner.run(workload_, options);
    ASSERT_EQ(result.records.size(), workload_.opCount());
    // Records are time-ordered and contiguous on one stream.
    for (std::size_t i = 1; i < result.records.size(); ++i) {
        EXPECT_GE(result.records[i].start, result.records[i - 1].start);
        EXPECT_GE(result.records[i].end, result.records[i].start);
    }
}

TEST_F(TraceTest, MeasuredDurationsCloseToTrueDurations)
{
    WorkloadRunner runner(config_);
    RunOptions options;
    options.profiler_noise.duration_sigma = 0.006;
    RunResult result = runner.run(workload_, options);
    for (const auto &record : result.records) {
        double true_s = ticksToSeconds(record.end - record.start);
        if (true_s < 1e-6)
            continue;
        EXPECT_NEAR(record.duration_s, true_s, true_s * 0.05);
    }
}

TEST_F(TraceTest, RatiosWithinUnitInterval)
{
    WorkloadRunner runner(config_);
    RunResult result = runner.run(workload_, RunOptions{});
    for (const auto &record : result.records) {
        const auto &r = record.ratios;
        for (double v : {r.cube, r.vector, r.scalar, r.mte1, r.mte2, r.mte3}) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST_F(TraceTest, SamplerPeriodRespected)
{
    WorkloadRunner runner(config_);
    RunOptions options;
    options.sample_period = 200 * kTicksPerUs;
    RunResult result = runner.run(workload_, options);
    ASSERT_GT(result.samples.size(), 5u);
    for (std::size_t i = 1; i < result.samples.size(); ++i) {
        EXPECT_EQ(result.samples[i].tick - result.samples[i - 1].tick,
                  200 * kTicksPerUs);
    }
}

TEST_F(TraceTest, SamplerReadsArePlausible)
{
    WorkloadRunner runner(config_);
    RunOptions options;
    options.sample_period = kTicksPerMs;
    RunResult result = runner.run(workload_, options);
    for (const auto &s : result.samples) {
        EXPECT_GT(s.soc_watts, 50.0);
        EXPECT_LT(s.soc_watts, 600.0);
        EXPECT_GT(s.aicore_watts, 1.0);
        EXPECT_LT(s.aicore_watts, 200.0);
        EXPECT_GT(s.temperature_c, 15.0);
        EXPECT_LT(s.temperature_c, 120.0);
        // Quantised to the configured step.
        double steps = s.temperature_c / 0.5;
        EXPECT_NEAR(steps, std::round(steps), 1e-9);
        EXPECT_DOUBLE_EQ(s.f_mhz, 1800.0);
    }
}

TEST_F(TraceTest, WarmupRaisesTemperature)
{
    WorkloadRunner runner(config_);
    RunOptions cold, warm;
    warm.warmup_seconds = 20.0;
    RunResult cold_run = runner.run(workload_, cold);
    RunResult warm_run = runner.run(workload_, warm);
    EXPECT_GT(warm_run.avg_temperature_c, cold_run.avg_temperature_c + 3.0);
}

TEST_F(TraceTest, TriggersChangeFrequencyMidIteration)
{
    WorkloadRunner runner(config_);
    std::vector<SetFreqTrigger> triggers;
    triggers.push_back({workload_.opCount() / 2, 1200.0});

    RunOptions options;
    RunResult result = runner.run(workload_, options, triggers);
    EXPECT_EQ(result.set_freq_count, 1u);
    // Early ops retire at 1800, late ops at 1200.
    EXPECT_DOUBLE_EQ(result.records.front().f_mhz, 1800.0);
    EXPECT_DOUBLE_EQ(result.records.back().f_mhz, 1200.0);
}

TEST_F(TraceTest, DvfsRunUsesLessAicorePower)
{
    WorkloadRunner runner(config_);
    std::vector<SetFreqTrigger> triggers = {{0, 1000.0}};
    RunOptions options;
    RunResult high = runner.run(workload_, options);
    RunResult low = runner.run(workload_, options, triggers);
    EXPECT_LT(low.aicore_avg_w, high.aicore_avg_w);
    EXPECT_GT(low.iteration_seconds, high.iteration_seconds);
}

TEST_F(TraceTest, TriggerIndexValidation)
{
    WorkloadRunner runner(config_);
    std::vector<SetFreqTrigger> triggers = {{workload_.opCount(), 1200.0}};
    EXPECT_THROW(runner.run(workload_, RunOptions{}, triggers),
                 std::invalid_argument);
}

TEST_F(TraceTest, EmptyWorkloadThrows)
{
    WorkloadRunner runner(config_);
    models::Workload empty;
    EXPECT_THROW(runner.run(empty, RunOptions{}), std::invalid_argument);
}

TEST_F(TraceTest, CooldownExtendsSamples)
{
    WorkloadRunner runner(config_);
    RunOptions options;
    options.cooldown_seconds = 2.0;
    options.sample_period = 100 * kTicksPerMs;
    RunResult result = runner.run(workload_, options);
    Tick last_op_end = 0;
    for (const auto &r : result.records)
        last_op_end = std::max(last_op_end, r.end);
    EXPECT_GT(result.samples.back().tick, last_op_end);
}

TEST_F(TraceTest, CsvExportShapes)
{
    WorkloadRunner runner(config_);
    RunResult result = runner.run(workload_, RunOptions{});

    std::ostringstream ops;
    exportOpRecordsCsv(result.records, ops);
    std::string text = ops.str();
    std::size_t lines = static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
    EXPECT_EQ(lines, result.records.size() + 1); // header + rows
    EXPECT_NE(text.find("op_id,type,category"), std::string::npos);

    std::ostringstream samples;
    exportPowerSamplesCsv(result.samples, samples);
    std::string sample_text = samples.str();
    EXPECT_NE(sample_text.find("time_s,soc_watts"), std::string::npos);
}


TEST_F(TraceTest, CsvImportRoundTrips)
{
    WorkloadRunner runner(config_);
    RunResult result = runner.run(workload_, RunOptions{});

    std::ostringstream os;
    exportOpRecordsCsv(result.records, os);
    std::istringstream is(os.str());
    std::vector<OpRecord> loaded = importOpRecordsCsv(is);

    ASSERT_EQ(loaded.size(), result.records.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const OpRecord &a = result.records[i];
        const OpRecord &b = loaded[i];
        EXPECT_EQ(a.op_id, b.op_id);
        EXPECT_EQ(a.type, b.type);
        EXPECT_EQ(a.category, b.category);
        EXPECT_NEAR(ticksToSeconds(a.start), ticksToSeconds(b.start), 1e-9);
        EXPECT_NEAR(ticksToSeconds(a.end), ticksToSeconds(b.end), 1e-9);
        EXPECT_NEAR(a.duration_s, b.duration_s, a.duration_s * 1e-6 + 1e-12);
        EXPECT_DOUBLE_EQ(a.f_mhz, b.f_mhz);
        EXPECT_NEAR(a.ratios.mte2, b.ratios.mte2, 1e-9);
    }
}

TEST_F(TraceTest, CsvImportValidation)
{
    std::istringstream bad_header("nope\n1,2,3\n");
    EXPECT_THROW(importOpRecordsCsv(bad_header), std::invalid_argument);

    std::istringstream short_row(
        "op_id,type,category,start_us,end_us,duration_us,f_mhz,"
        "cube,vector,scalar,mte1,mte2,mte3\n1,Add,Compute,0,1\n");
    EXPECT_THROW(importOpRecordsCsv(short_row), std::invalid_argument);

    std::istringstream bad_category(
        "op_id,type,category,start_us,end_us,duration_us,f_mhz,"
        "cube,vector,scalar,mte1,mte2,mte3\n"
        "1,Add,Weird,0,1,1,1800,0,0,0,0,0,0\n");
    EXPECT_THROW(importOpRecordsCsv(bad_category), std::invalid_argument);

    std::istringstream bad_number(
        "op_id,type,category,start_us,end_us,duration_us,f_mhz,"
        "cube,vector,scalar,mte1,mte2,mte3\n"
        "1,Add,Compute,x,1,1,1800,0,0,0,0,0,0\n");
    EXPECT_THROW(importOpRecordsCsv(bad_number), std::invalid_argument);
}

TEST_F(TraceTest, ImportedTraceDrivesPreprocessing)
{
    // The bring-your-own-trace path: records from CSV feed the DVFS
    // preprocessing stage directly.
    WorkloadRunner runner(config_);
    RunResult result = runner.run(workload_, RunOptions{});
    std::ostringstream os;
    exportOpRecordsCsv(result.records, os);
    std::istringstream is(os.str());
    std::vector<OpRecord> loaded = importOpRecordsCsv(is);
    EXPECT_EQ(loaded.size(), workload_.opCount());
}

} // namespace
} // namespace opdvfs::trace
