#include <gtest/gtest.h>

#include "common/units.h"
#include "power/power_model.h"

namespace opdvfs::power {
namespace {

CalibratedConstants
referenceConstants()
{
    CalibratedConstants constants;
    constants.beta_aicore = 5.0e-9;
    constants.theta_aicore = 10.0;
    constants.beta_soc = 1.0e-8;
    constants.theta_soc = 180.0;
    constants.gamma_aicore = 0.2;
    constants.gamma_soc = 1.6;
    constants.k_per_watt = 0.15;
    constants.ambient_c = 25.0;
    return constants;
}

TEST(PowerModel, IdleFollowsEq12)
{
    npu::FreqTable table;
    CalibratedConstants constants = referenceConstants();
    PowerModel model(constants, table);
    double f = 1500.0;
    double v = table.voltageFor(f);
    EXPECT_NEAR(model.aicoreIdle(f),
                constants.beta_aicore * mhzToHz(f) * v * v
                    + constants.theta_aicore * v,
                1e-9);
    EXPECT_GT(model.aicoreIdle(1800.0), model.aicoreIdle(1000.0));
    EXPECT_GT(model.socIdle(1500.0), model.aicoreIdle(1500.0));
}

TEST(PowerModel, CalibrateThenPredictRoundTripsAtSameFrequency)
{
    npu::FreqTable table;
    PowerModel model(referenceConstants(), table);

    // Synthesise a measurement consistent with the model at f=1800.
    double f = 1800.0;
    OpPowerModel truth{2.0e-8, 7.0e-8};
    PowerPrediction generated = model.predict(truth, f);
    OpPowerModel recovered = model.calibrate(
        f, generated.aicore_watts, generated.soc_watts, generated.delta_t);
    EXPECT_NEAR(recovered.alpha_aicore, truth.alpha_aicore,
                truth.alpha_aicore * 1e-6);
    EXPECT_NEAR(recovered.alpha_soc, truth.alpha_soc,
                truth.alpha_soc * 1e-6);

    PowerPrediction again = model.predict(recovered, f);
    EXPECT_NEAR(again.soc_watts, generated.soc_watts, 1e-6);
    EXPECT_NEAR(again.aicore_watts, generated.aicore_watts, 1e-6);
}

// Sect. 5.4.2: the dT/P fix point converges in a handful of rounds.
TEST(PowerModel, FixPointConvergesQuickly)
{
    npu::FreqTable table;
    PowerModel model(referenceConstants(), table);
    OpPowerModel op{2.0e-8, 8.0e-8};
    PowerPrediction prediction = model.predict(op, 1800.0);
    EXPECT_LE(prediction.iterations, 8);
    // Self-consistency: dT == k * P_soc at the fix point.
    EXPECT_NEAR(prediction.delta_t,
                model.constants().k_per_watt * prediction.soc_watts, 0.05);
}

TEST(PowerModel, HigherFrequencyPredictsMorePower)
{
    npu::FreqTable table;
    PowerModel model(referenceConstants(), table);
    OpPowerModel op{2.0e-8, 8.0e-8};
    double previous = 0.0;
    for (double f : table.frequenciesMhz()) {
        PowerPrediction prediction = model.predict(op, f);
        EXPECT_GT(prediction.soc_watts, previous);
        previous = prediction.soc_watts;
    }
}

TEST(PowerModel, WithoutTemperatureDropsGammaTerms)
{
    CalibratedConstants constants = referenceConstants();
    CalibratedConstants stripped = constants.withoutTemperature();
    EXPECT_DOUBLE_EQ(stripped.gamma_aicore, 0.0);
    EXPECT_DOUBLE_EQ(stripped.gamma_soc, 0.0);
    EXPECT_DOUBLE_EQ(stripped.k_per_watt, 0.0);
    EXPECT_DOUBLE_EQ(stripped.beta_aicore, constants.beta_aicore);

    npu::FreqTable table;
    PowerModel with(constants, table), without(stripped, table);
    OpPowerModel op{2.0e-8, 8.0e-8};
    PowerPrediction p_with = with.predict(op, 1800.0);
    PowerPrediction p_without = without.predict(op, 1800.0);
    EXPECT_GT(p_with.soc_watts, p_without.soc_watts);
    EXPECT_DOUBLE_EQ(p_without.delta_t, 0.0);
}

TEST(PowerModel, TemperatureTermMattersAcrossFrequencies)
{
    // Calibrating without the temperature term folds dT power into
    // alpha (~f V^2), inflating the frequency dependence (Sect. 7.3).
    npu::FreqTable table;
    PowerModel truth_model(referenceConstants(), table);
    OpPowerModel truth{2.0e-8, 8.0e-8};

    PowerPrediction at1000 = truth_model.predict(truth, 1000.0);
    PowerPrediction at1800 = truth_model.predict(truth, 1800.0);

    PowerModel blind(referenceConstants().withoutTemperature(), table);
    OpPowerModel blind_op =
        blind.calibrate(1000.0, at1000.aicore_watts, at1000.soc_watts, 0.0);
    double blind_pred = blind.predict(blind_op, 1800.0).soc_watts;
    double aware_pred = truth_model
                            .predict(truth_model.calibrate(
                                         1000.0, at1000.aicore_watts,
                                         at1000.soc_watts, at1000.delta_t),
                                     1800.0)
                            .soc_watts;
    double blind_err = std::abs(blind_pred - at1800.soc_watts);
    double aware_err = std::abs(aware_pred - at1800.soc_watts);
    EXPECT_LT(aware_err, blind_err);
}

} // namespace
} // namespace opdvfs::power
