/**
 * @file
 * Table 3 reproduction (Sect. 7.4): end-to-end energy optimisation.
 *
 * GPT-3 training under performance-loss targets 2/4/6/8/10%, plus
 * BERT, ResNet50 and ResNet152 at the production 2% target.  Each row
 * runs the full pipeline (profile -> models -> classify/preprocess ->
 * GA -> SetFreq execution) and reports measured iteration time, SoC
 * power and AICore power against the 1800 MHz baseline.
 */

#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "common/table.h"
#include "models/model_zoo.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_table3_end2end",
                  "Table 3 (Sect. 7.4): end-to-end results");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);

    struct Row
    {
        std::string model;
        double target;
    };
    const std::vector<Row> rows = {
        {"GPT3", 0.02},  {"GPT3", 0.04},     {"GPT3", 0.06},
        {"GPT3", 0.08},  {"GPT3", 0.10},     {"BERT", 0.02},
        {"ResNet50", 0.02}, {"ResNet152", 0.02},
    };

    Table table("Table 3: end-to-end experimental results");
    table.setHeader({"Model", "Target", "Iter (base)", "Iter (DVFS)",
                     "Perf loss", "SoC base (W)", "SoC DVFS (W)",
                     "SoC red.", "AICore base (W)", "AICore DVFS (W)",
                     "AICore red.", "SetFreq/iter"});

    stats::Accumulator loss_2pct, soc_2pct, core_2pct;
    std::uint64_t seed = 1;
    for (const Row &row : rows) {
        models::Workload workload =
            models::buildWorkload(row.model, memory, 1);
        dvfs::PipelineOptions options =
            bench::standardPipeline(row.target);
        options.seed = seed++;
        // Short iterations need longer warm-up multiples; scale with
        // model size.
        options.warmup_seconds = row.model == "GPT3" ? 15.0 : 25.0;
        dvfs::EnergyPipeline pipeline(options);
        dvfs::PipelineResult result = pipeline.optimize(workload);

        table.addRow({row.model, Table::pct(row.target, 0),
                      Table::num(result.baseline.iteration_seconds, 3) + "s",
                      Table::num(result.dvfs.iteration_seconds, 3) + "s",
                      Table::pct(result.perfLoss(), 2),
                      Table::num(result.baseline.soc_avg_w, 1),
                      Table::num(result.dvfs.soc_avg_w, 1),
                      Table::pct(result.socReduction(), 2),
                      Table::num(result.baseline.aicore_avg_w, 2),
                      Table::num(result.dvfs.aicore_avg_w, 2),
                      Table::pct(result.aicoreReduction(), 2),
                      std::to_string(result.dvfs.set_freq_count)});

        if (row.target == 0.02) {
            loss_2pct.add(result.perfLoss());
            soc_2pct.add(result.socReduction());
            core_2pct.add(result.aicoreReduction());
        }
    }

    table.print(std::cout);
    std::cout << "\naverages at the 2% production target over "
              << loss_2pct.count() << " models:\n"
              << "  performance loss:       "
              << Table::pct(loss_2pct.mean(), 2) << "  (paper: 1.76%)\n"
              << "  AICore power reduction: "
              << Table::pct(core_2pct.mean(), 2) << "  (paper: 13.44%)\n"
              << "  SoC power reduction:    "
              << Table::pct(soc_2pct.mean(), 2) << "  (paper: 4.95%)\n"
              << "expected shapes: savings grow monotonically with the "
                 "loss target; diminishing returns beyond ~2%\n";
    return 0;
}
