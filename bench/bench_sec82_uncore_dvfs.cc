/**
 * @file
 * Sect. 8.2 future-work exploration: uncore DVFS.
 *
 * The paper notes that uncore components (HBM, buses) average ~80% of
 * SoC power but cannot be frequency-scaled on current hardware,
 * capping the overall savings.  This bench models the scenario the
 * authors anticipate: an uncore operating point that scales L2/HBM
 * bandwidth and uncore dynamic power together.  For each uncore point
 * it re-runs the full core-DVFS pipeline and reports the *joint*
 * result against the nominal (uncore = 1.0, core = 1800 MHz) baseline.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "power/offline_calibration.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_sec82_uncore_dvfs",
                  "Sect. 8.2 (future work): joint core + uncore DVFS");

    npu::NpuConfig nominal = bench::standardChip();
    npu::MemorySystem memory(nominal.memory);
    models::Workload gpt3 = models::buildWorkload("GPT3", memory, 1);

    // Nominal baseline for the global comparison.
    trace::WorkloadRunner nominal_runner(nominal);
    trace::RunOptions base_options;
    base_options.warmup_seconds = 15.0;
    trace::RunResult global_base = nominal_runner.run(gpt3, base_options);

    Table table("GPT-3: core-DVFS pipeline at each uncore operating "
                "point (loss vs the nominal baseline)");
    table.setHeader({"uncore point", "total perf loss", "SoC red.",
                     "AICore red.", "uncore power (W)", "feasible @2%"});

    for (double scale : {1.0, 0.9, 0.8, 0.7}) {
        npu::NpuConfig chip = nominal;
        chip.uncore_scale = scale;

        // Each uncore point is a different device: recalibrate and
        // rerun the pipeline against it.
        dvfs::PipelineOptions options = bench::standardPipeline(0.02);
        options.chip = chip;
        options.constants = power::calibrateOffline(chip);
        options.seed = 4;
        dvfs::EnergyPipeline pipeline(options);
        dvfs::PipelineResult result = pipeline.optimize(gpt3);

        double total_loss = result.dvfs.iteration_seconds
                / global_base.iteration_seconds
            - 1.0;
        double soc_red =
            1.0 - result.dvfs.soc_avg_w / global_base.soc_avg_w;
        double core_red =
            1.0 - result.dvfs.aicore_avg_w / global_base.aicore_avg_w;
        table.addRow(
            {Table::num(scale, 2), Table::pct(total_loss, 2),
             Table::pct(soc_red, 2), Table::pct(core_red, 2),
             Table::num(result.dvfs.soc_avg_w - result.dvfs.aicore_avg_w,
                        1),
             total_loss <= 0.02 ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nreading: scaling the uncore attacks the ~"
              << Table::pct(1.0
                            - global_base.aicore_avg_w
                                / global_base.soc_avg_w, 0)
              << " of SoC power that core DVFS cannot touch (paper "
                 "Sect. 8.2: uncore averages ~80% of SoC power); the "
                 "bandwidth cost pushes memory-bound operators over "
                 "their saturation point, so deep uncore slowdowns "
                 "blow the loss budget\n";
    return 0;
}
