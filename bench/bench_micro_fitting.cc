/**
 * @file
 * Microbenchmark (google-benchmark): per-operator fitting cost of the
 * candidate model families (Sect. 4.3).  The paper's argument for
 * Func. 2 is exactly this gap: a closed-form solve versus iterative
 * curve fitting, ~24x in their measurements.
 */

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "npu/aicore_timeline.h"
#include "npu/memory_system.h"
#include "ops/op_factory.h"
#include "perf/fit_functions.h"

namespace {

using namespace opdvfs;

/** Deterministic sample set: (f, T) pairs for a batch of operators. */
struct SampleSet
{
    std::vector<std::vector<double>> fs;
    std::vector<std::vector<double>> ts;
};

const SampleSet &
samples(int points)
{
    static std::map<int, SampleSet> cache;
    auto it = cache.find(points);
    if (it != cache.end())
        return it->second;

    SampleSet set;
    npu::MemorySystem memory;
    ops::OpFactory factory(memory, Rng(5));
    Rng noise(55);
    for (int i = 0; i < 256; ++i) {
        ops::Op op = (i % 3 == 0)
            ? factory.matMul(1024 + i, 1024, 1024)
            : (i % 3 == 1 ? factory.add((1 << 20) + i * 4096)
                          : factory.softmax(4096, 512 + i));
        npu::AicoreTimeline timeline(op.hw, memory);
        std::vector<double> fs, ts;
        for (int p = 0; p < points; ++p) {
            double f = 1000.0 + 800.0 * p / (points - 1);
            fs.push_back(f);
            ts.push_back(timeline.seconds(f) * noise.noiseFactor(0.006));
        }
        set.fs.push_back(std::move(fs));
        set.ts.push_back(std::move(ts));
    }
    return cache.emplace(points, std::move(set)).first->second;
}

void
fitFamily(benchmark::State &state, perf::FitFunction kind, int points)
{
    const SampleSet &set = samples(points);
    std::size_t i = 0;
    for (auto _ : state) {
        auto curve = perf::fitCurve(kind, set.fs[i], set.ts[i]);
        benchmark::DoNotOptimize(curve.params.data());
        i = (i + 1) % set.fs.size();
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FitFunc2ClosedForm(benchmark::State &state)
{
    fitFamily(state, perf::FitFunction::QuadOverF, 2);
}

void
BM_FitFunc1CurveFit(benchmark::State &state)
{
    fitFamily(state, perf::FitFunction::FullQuadOverF, 3);
}

void
BM_FitFunc3CurveFit(benchmark::State &state)
{
    fitFamily(state, perf::FitFunction::ExpOverF, 3);
}

void
BM_FitPwlCycles(benchmark::State &state)
{
    fitFamily(state, perf::FitFunction::PwlCycles, 3);
}

void
BM_PredictFunc2(benchmark::State &state)
{
    const SampleSet &set = samples(2);
    auto curve =
        perf::fitCurve(perf::FitFunction::QuadOverF, set.fs[0], set.ts[0]);
    double f = 1000.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(curve.predictSeconds(f));
        f = f >= 1800.0 ? 1000.0 : f + 100.0;
    }
}

BENCHMARK(BM_FitFunc2ClosedForm);
BENCHMARK(BM_FitFunc1CurveFit);
BENCHMARK(BM_FitFunc3CurveFit);
BENCHMARK(BM_FitPwlCycles);
BENCHMARK(BM_PredictFunc2);

} // namespace

BENCHMARK_MAIN();
