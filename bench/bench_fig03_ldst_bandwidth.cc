/**
 * @file
 * Fig. 3 reproduction: (a) Ld/St throughput versus core frequency
 * rises linearly until the uncore bandwidth saturates at fs (Eqs. 1-2);
 * (b) with a fixed transfer volume, the cycle count is flat below fs
 * and grows linearly above it, plus the T0 f overhead term (Eq. 4).
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "common/units.h"
#include "npu/aicore_timeline.h"
#include "npu/memory_system.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_fig03_ldst_bandwidth",
                  "Fig. 3 (Sect. 4.1): Tp-frequency and cycle-frequency");

    npu::MemorySystem memory;

    // (a) Throughput vs frequency for three L2 hit rates.
    Table tp_table("Fig. 3(a): Ld/St throughput vs core frequency");
    tp_table.setHeader({"f (MHz)", "Tp hit=0.0 (GB/s)", "Tp hit=0.5 (GB/s)",
                        "Tp hit=1.0 (GB/s)"});
    for (double f = 600.0; f <= 2400.0; f += 200.0) {
        tp_table.addRow({Table::num(f, 0),
                         Table::num(memory.throughput(f, 0.0) / 1e9, 0),
                         Table::num(memory.throughput(f, 0.5) / 1e9, 0),
                         Table::num(memory.throughput(f, 1.0) / 1e9, 0)});
    }
    tp_table.print(std::cout);

    std::cout << "\nsaturation frequencies fs (Eq. 2):\n";
    for (double hit : {0.0, 0.15, 0.3, 0.5, 0.8, 1.0}) {
        std::cout << "  hit=" << hit << ": fs = "
                  << Table::num(memory.saturationMhz(hit), 0) << " MHz\n";
    }

    // (b) Cycle count of one fixed-volume transfer vs frequency.
    npu::HwOpParams op;
    op.scenario = npu::Scenario::PingPongIndependent;
    op.n = 1;
    op.core_cycles = 0.0;
    op.ld_volume_bytes = 4.0e6;
    op.ld_l2_hit = 0.3;
    op.st_volume_bytes = 0.0;
    op.t0_seconds = 5e-7;
    npu::AicoreTimeline timeline(op, memory);

    Table cycle_table(
        "Fig. 3(b): cycles for a fixed 4 MB move-in (hit = 0.3)");
    cycle_table.setHeader(
        {"f (MHz)", "cycles", "time (us)", "regime"});
    double fs = memory.saturationMhz(0.3);
    for (double f = 600.0; f <= 2400.0; f += 150.0) {
        cycle_table.addRow({Table::num(f, 0),
                            Table::num(timeline.cycles(f), 0),
                            Table::num(timeline.seconds(f) * 1e6, 1),
                            f < fs ? "core-limited (flat cycles)"
                                   : "uncore-saturated (cycles ~ f)"});
    }
    cycle_table.print(std::cout);
    std::cout << "expected kink at fs = " << Table::num(fs, 0) << " MHz\n";
    return 0;
}
