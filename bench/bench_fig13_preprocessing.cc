/**
 * @file
 * Fig. 13 reproduction (Sect. 6.2): the four preprocessing steps shown
 * on a real excerpt of a profiled BERT iteration.
 *
 *  1. gather the execution sequence and profiling data;
 *  2. classify each operator's bottleneck (Fig. 12);
 *  3. split into LFC/HFC stages by frequency sensitivity;
 *  4. merge candidates closer than the frequency adjustment interval.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "dvfs/preprocess.h"
#include "models/model_zoo.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_fig13_preprocessing",
                  "Fig. 13 (Sect. 6.2): preprocessing steps on BERT");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    models::Workload bert = models::buildWorkload("BERT", memory, 1);
    trace::WorkloadRunner runner(chip);

    // Step 1: execution sequence + profiling data.
    trace::RunOptions options;
    options.warmup_seconds = 5.0;
    trace::RunResult run = runner.run(bert, options);
    std::cout << "step 1: profiled " << run.records.size()
              << " operator executions ("
              << Table::num(run.iteration_seconds * 1e3, 1) << " ms)\n\n";

    // Step 2: bottleneck classification on the first operators.
    dvfs::PreprocessResult fine = dvfs::preprocess(
        run.records, {kTicksPerUs, dvfs::ClassifyOptions{}});
    Table step2("step 2: bottleneck classes (first 18 operators)");
    step2.setHeader({"op", "type", "duration (us)", "class",
                     "sensitive?"});
    for (std::size_t i = 0; i < 18 && i < run.records.size(); ++i) {
        const auto &record = run.records[i];
        dvfs::Bottleneck bottleneck = fine.bottlenecks[i];
        step2.addRow({std::to_string(record.op_id), record.type,
                      Table::num(record.duration_s * 1e6, 1),
                      dvfs::bottleneckName(bottleneck),
                      dvfs::isFrequencySensitive(bottleneck) ? "HFC"
                                                             : "LFC"});
    }
    step2.print(std::cout);

    // Step 3: raw LFC/HFC runs (candidate points before merging).
    std::cout << "\nstep 3: " << fine.stages.size()
              << " raw LFC/HFC runs (" << fine.lfcCount() << " LFC / "
              << fine.hfcCount() << " HFC) - each run start is an "
              << "initial frequency candidate\n";

    // Step 4: merge candidates shorter than the FAI.
    Table step4("step 4: candidates after FAI merging");
    step4.setHeader({"FAI", "candidates", "LFC", "HFC",
                     "median stage (ms)"});
    for (Tick fai : {kTicksPerMs, 5 * kTicksPerMs, 20 * kTicksPerMs,
                     100 * kTicksPerMs}) {
        dvfs::PreprocessOptions merge_options;
        merge_options.fai = fai;
        dvfs::PreprocessResult merged =
            dvfs::preprocess(run.records, merge_options);
        std::vector<double> durations;
        for (const auto &stage : merged.stages)
            durations.push_back(ticksToSeconds(stage.duration) * 1e3);
        std::sort(durations.begin(), durations.end());
        step4.addRow({Table::num(ticksToSeconds(fai) * 1e3, 0) + " ms",
                      std::to_string(merged.stages.size()),
                      std::to_string(merged.lfcCount()),
                      std::to_string(merged.hfcCount()),
                      Table::num(durations[durations.size() / 2], 2)});
    }
    step4.print(std::cout);
    std::cout << "\npaper: candidates with intervals shorter than the "
                 "threshold merge into their neighbours, so every "
                 "remaining candidate respects the device's frequency "
                 "adjustment interval\n";
    return 0;
}
