/**
 * @file
 * Fault-resilience study (robustness extension of the paper's Sect. 7
 * deployment story): the DVFS Executor's planned SetFreq sequence
 * meets a misbehaving device - firmware drops commands, apply latency
 * jitters, thermal protection latches a spurious clamp, telemetry
 * blacks out or spikes.  How much of the strategy's bounded
 * performance loss survives each fault class, with and without the
 * runtime guard?
 *
 * Expectation: unguarded, command drops and latched clamps push the
 * measured loss far past the configured target; the guard's
 * verify-and-retry plus governor resets pull it back within ~2x the
 * target, and telemetry corruption alone never triggers a false
 * fallback.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "dvfs/guard.h"
#include "models/transformer.h"

namespace {

using namespace opdvfs;

/** One studied fault class. */
struct FaultCase
{
    std::string name;
    npu::FaultPlan plan;
};

std::vector<FaultCase>
faultCases()
{
    std::vector<FaultCase> cases;

    cases.push_back({"none (clean device)", {}});

    FaultCase drops;
    drops.name = "SetFreq drops (p=0.5)";
    drops.plan.set_freq_drop_rate = 0.5;
    drops.plan.seed = 11;
    cases.push_back(drops);

    FaultCase jitter;
    jitter.name = "apply jitter (<= 4 ms)";
    jitter.plan.set_freq_jitter_max = 4 * kTicksPerMs;
    jitter.plan.seed = 13;
    cases.push_back(jitter);

    FaultCase clamp;
    clamp.name = "latched spurious clamp";
    clamp.plan.spurious_trip_rate_hz = 10.0;
    clamp.plan.throttle_auto_release = false;
    clamp.plan.throttle_mhz = 1000.0;
    clamp.plan.seed = 19;
    cases.push_back(clamp);

    FaultCase telemetry;
    telemetry.name = "telemetry blackout+spikes";
    telemetry.plan.blackout_rate_hz = 5.0;
    telemetry.plan.spike_rate = 0.3;
    telemetry.plan.spike_temperature_delta = 60.0;
    telemetry.plan.seed = 23;
    cases.push_back(telemetry);

    return cases;
}

} // namespace

int
main()
{
    bench::banner("bench_fault_resilience",
                  "robustness extension: per-fault-class perf loss, "
                  "guard off vs on, vs the 2x perf_loss_target bound");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);

    // The compute-bound probe workload: ~24% floor-vs-ceiling gap, so
    // a fault that strands the chip at 1000 MHz is clearly visible.
    models::TransformerConfig model;
    model.name = "resilience-probe";
    model.layers = 2;
    model.hidden = 4096;
    model.heads = 32;
    model.seq = 512;
    model.batch = 4;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 5);

    // Cyclic strategy standing in for the GA output: ceiling for the
    // bulk of the iteration, floor across the wrap - every iteration
    // depends on its upshift landing.
    std::vector<trace::SetFreqTrigger> triggers = {
        {0, 1800.0}, {workload.iteration.size() - 1, 1000.0}};

    const double perf_loss_target = 0.02;

    dvfs::GuardedRunOptions base;
    base.iterations = 12;
    base.run.initial_mhz = 1000.0;
    base.run.warmup_seconds = 0.0;
    base.run.seed = 33;
    base.guard.perf_loss_target = perf_loss_target;
    base.guard.violation_limit = 1;

    // Fault-free steady-state baseline iteration time.
    dvfs::GuardedRunOptions probe = base;
    probe.guard.enabled = false;
    probe.iterations = 4;
    dvfs::GuardedRunResult clean =
        dvfs::runGuarded(chip, workload, triggers, 1.0, probe);
    double baseline = 0.0;
    for (const auto &it : clean.iterations)
        baseline += it.seconds;
    baseline /= static_cast<double>(clean.iterations.size());

    std::cout << "baseline iteration: " << baseline * 1e3
              << " ms, perf loss target " << perf_loss_target * 100.0
              << "% (guard bound 2x = " << 2.0 * perf_loss_target * 100.0
              << "%)\n\n";

    Table table("perf loss per fault class, guard off vs on");
    table.setHeader({"fault class", "loss off", "worst off", "loss on",
                     "worst on", "retries", "gov resets", "fallbacks",
                     "drops", "gaps"});

    for (const FaultCase &fault : faultCases()) {
        npu::NpuConfig faulted = chip;
        faulted.faults = fault.plan;

        dvfs::GuardedRunOptions off = base;
        off.guard.enabled = false;
        dvfs::GuardedRunResult unguarded =
            dvfs::runGuarded(faulted, workload, triggers, baseline, off);

        dvfs::GuardedRunOptions on = base;
        on.guard.enabled = true;
        dvfs::GuardedRunResult guarded =
            dvfs::runGuarded(faulted, workload, triggers, baseline, on);

        table.addRow(
            {fault.name, Table::pct(unguarded.meanLoss(), 2),
             Table::pct(unguarded.worstLoss(), 2),
             Table::pct(guarded.meanLoss(), 2),
             Table::pct(guarded.worstLoss(), 2),
             std::to_string(guarded.guard.set_freq_retries),
             std::to_string(guarded.guard.throttle_resets),
             std::to_string(guarded.guard.fallbacks),
             std::to_string(guarded.faults.set_freqs_dropped),
             std::to_string(guarded.guard.telemetry_gaps)});
    }

    table.print(std::cout);
    std::cout << "\nloss off/on: mean measured loss vs the fault-free "
                 "baseline without/with the runtime guard.\n"
                 "A guarded mean at or below "
              << 2.0 * perf_loss_target * 100.0
              << "% keeps the strategy's loss bound despite the fault; "
                 "the clean row shows the guard itself costs nothing.\n";
    return 0;
}
