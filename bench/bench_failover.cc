/**
 * @file
 * Fault-tolerance benchmark: what does losing one shard of a
 * replicated 3-shard fleet cost?
 *
 *   1. Prime a fixed key set over the fleet (replication factor 2,
 *      snapshot + WAL persistence on the victim), then measure the
 *      replication drain — the durability lag between an owned insert
 *      and its copy being acked by the ring successor.
 *   2. Kill the victim (sockets torn down, crash-stop persister) and
 *      drive every key through a failover-enabled router: requests
 *      must keep answering with zero client-visible errors.  The p50
 *      of answers served by a successor's replica set (failover path)
 *      is compared against answers served by a live owner's cache.
 *   3. Restart: rehydrate a fresh service from the victim's snapshot +
 *      WAL and report the restore time and the fraction of the
 *      victim's keys that come back as local exact hits.
 *
 * Emits BENCH_failover.json.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/transformer.h"
#include "net/health.h"
#include "net/peer.h"
#include "net/router.h"
#include "net/server.h"
#include "serve/cache_store.h"
#include "serve/service.h"
#include "shard/shard_map.h"

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

double
percentile(std::vector<double> values, double fraction)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    std::size_t at = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[at];
}

opdvfs::net::WireRequest
benchRequest(const opdvfs::npu::NpuConfig &chip,
             const opdvfs::npu::MemorySystem &memory, int seq)
{
    opdvfs::models::TransformerConfig model;
    model.name = "failover-bench";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    opdvfs::net::WireRequest request;
    request.workload =
        opdvfs::models::buildTransformerTraining(memory, model, 5);
    request.chip = chip;
    request.seed = 11;
    return request;
}

/** One in-process shard with the full fault-tolerance stack. */
struct Shard
{
    std::shared_ptr<opdvfs::shard::SharedShardMap> map;
    std::shared_ptr<opdvfs::net::ShardPeers> peers;
    std::shared_ptr<opdvfs::net::ShardReplicator> replicator;
    std::shared_ptr<opdvfs::net::HealthMonitor> health;
    std::unique_ptr<opdvfs::serve::CachePersister> persister;
    std::unique_ptr<opdvfs::serve::StrategyService> service;
    std::unique_ptr<opdvfs::net::StrategyServer> server;
    std::uint32_t id = 0;
    std::string snapshot_path;
    std::string wal_path;
};

struct Fleet
{
    std::vector<std::unique_ptr<Shard>> shards;

    opdvfs::shard::ShardMap clientMap() const
    {
        return *shards.front()->map->snapshot();
    }

    void stop()
    {
        for (auto &shard : shards) {
            shard->server->stop();
            if (shard->replicator)
                shard->replicator->stop();
            if (shard->persister)
                shard->persister->stop(false);
        }
    }
};

Fleet
makeFleet(std::size_t count, const std::string &persist_dir)
{
    using namespace opdvfs;
    Fleet fleet;
    for (std::size_t at = 0; at < count; ++at) {
        auto shard = std::make_unique<Shard>();
        shard->id = static_cast<std::uint32_t>(at + 1);
        shard->map = std::make_shared<opdvfs::shard::SharedShardMap>();
        shard->peers =
            std::make_shared<net::ShardPeers>(shard->id, shard->map);
        net::ReplicatorOptions replication;
        replication.replication_factor = 2;
        shard->replicator = std::make_shared<net::ShardReplicator>(
            shard->id, shard->map, replication);
        net::HealthOptions health;
        health.probe_interval_seconds = 0.0; // probed explicitly
        health.suspect_after_failures = 1;
        health.down_after_failures = 2;
        shard->health = std::make_shared<net::HealthMonitor>(
            shard->id, shard->map, health);

        serve::ServiceOptions options;
        options.pipeline = bench::standardPipeline(0.02);
        options.pipeline.warmup_seconds = 2.0;
        options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
        options.pipeline.ga.population = 40;
        options.pipeline.ga.generations = 90;
        options.workers = 2;
        options.peer_donor_lookup = net::makePeerDonorLookup(shard->peers);
        shard->service =
            std::make_unique<serve::StrategyService>(options);

        std::string stem =
            persist_dir + "/shard" + std::to_string(shard->id);
        shard->snapshot_path = stem + ".snap";
        shard->wal_path = stem + ".wal";
        serve::CachePersister::Options persist;
        persist.snapshot_path = shard->snapshot_path;
        persist.wal_path = shard->wal_path;
        persist.snapshot_interval_seconds = 0.0; // explicit only
        serve::StrategyService *service = shard->service.get();
        shard->persister = std::make_unique<serve::CachePersister>(
            persist, [service] {
                serve::CacheSnapshot snapshot;
                snapshot.model_epoch = service->modelEpoch();
                snapshot.entries = service->snapshotCache();
                return snapshot;
            });
        serve::CachePersister *persister = shard->persister.get();
        net::ShardReplicator *replicator = shard->replicator.get();
        shard->service->setInsertListener(
            [persister, replicator](const serve::CacheEntry &entry) {
                persister->onInsert(entry);
                replicator->onInsert(entry);
            });

        net::ServerOptions server_options;
        server_options.max_connections = 128;
        server_options.shard_id = shard->id;
        server_options.shard_map = shard->map;
        server_options.peers = shard->peers;
        server_options.replicator = shard->replicator;
        server_options.health = shard->health;
        shard->server = std::make_unique<net::StrategyServer>(
            *shard->service, server_options);
        shard->server->start();
        fleet.shards.push_back(std::move(shard));
    }
    for (auto &owner : fleet.shards)
        for (auto &member : fleet.shards)
            owner->map->join(
                {member->id,
                 "127.0.0.1:"
                     + std::to_string(member->server->port())});
    return fleet;
}

} // namespace

int
main()
{
    using namespace opdvfs;

    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "opdvfs_bench_failover";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    Fleet fleet = makeFleet(3, dir.string());
    shard::ShardMap map = fleet.clientMap();

    // Key set: 4 owned by the victim (the owner of the first key), 4
    // owned by the survivors.
    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    struct Key
    {
        net::WireRequest request;
        bool victim_owned = false;
    };
    std::vector<Key> keys;
    keys.push_back({benchRequest(chip, memory, 256), true});
    std::uint32_t victim_id =
        map.ownerOf(net::ShardRouter::requestDigest(keys[0].request)).id;
    std::size_t victim_owned = 1;
    std::size_t other_owned = 0;
    for (int seq = 264; seq <= 1024 && (victim_owned < 4 || other_owned < 4);
         seq += 8) {
        Key key{benchRequest(chip, memory, seq), false};
        key.victim_owned =
            map.ownerOf(net::ShardRouter::requestDigest(key.request)).id
            == victim_id;
        if (key.victim_owned) {
            if (victim_owned >= 4)
                continue;
            ++victim_owned;
        } else {
            if (other_owned >= 4)
                continue;
            ++other_owned;
        }
        keys.push_back(std::move(key));
    }
    Shard *victim = nullptr;
    for (auto &shard : fleet.shards)
        if (shard->id == victim_id)
            victim = shard.get();

    std::cout << "priming " << keys.size() << " keys (victim shard "
              << victim_id << " owns " << victim_owned << ")\n";
    net::RouterOptions prime_options;
    prime_options.client.request_timeout_seconds = 300.0;
    net::ShardRouter primer(map, prime_options);
    std::size_t half = keys.size() / 2;
    for (std::size_t at = 0; at < half; ++at)
        primer.call(keys[at].request);
    // Mid-stream snapshot: recovery must read the first half from the
    // snapshot and the rest from the WAL.
    victim->persister->flush();
    victim->persister->writeSnapshotNow();
    for (std::size_t at = half; at < keys.size(); ++at)
        primer.call(keys[at].request);

    // Replication drain: the durability lag behind the last insert.
    Clock::time_point drain_start = Clock::now();
    victim->replicator->flush();
    double replication_drain_ms = millisSince(drain_start);
    net::ReplicatorStats replication = victim->replicator->stats();
    victim->persister->flush();

    // Kill the victim: connections die, the persister crash-stops
    // (no final snapshot — only the durable snapshot + WAL survive).
    victim->server->stop();
    victim->replicator->stop();
    victim->persister->stop(/*write_final_snapshot=*/false);

    Shard *observer = fleet.shards[victim_id == 1 ? 1 : 0].get();
    observer->health->probeOnce();
    observer->health->probeOnce();

    net::RouterOptions failover_options;
    failover_options.client.request_timeout_seconds = 300.0;
    failover_options.client.connect_timeout_seconds = 0.3;
    failover_options.client.max_attempts = 2;
    failover_options.failover = true;
    failover_options.max_failover_successors = 2;
    failover_options.peer_health = [observer](std::uint32_t id) {
        return observer->health->healthOf(id);
    };
    net::ShardRouter router(map, failover_options);

    const int kRounds = 5;
    std::size_t errors = 0;
    std::size_t served = 0;
    std::vector<double> failover_ms;
    std::vector<double> owner_ms;
    for (int round = 0; round < kRounds; ++round) {
        for (const Key &key : keys) {
            Clock::time_point start = Clock::now();
            try {
                net::WireResponse response = router.call(key.request);
                (void)response;
                ++served;
                (key.victim_owned ? failover_ms : owner_ms)
                    .push_back(millisSince(start));
            } catch (const std::exception &error) {
                ++errors;
                std::cerr << "request failed: " << error.what() << "\n";
            }
        }
    }
    std::cout << "kill window: " << served << " served, " << errors
              << " errors, " << router.failoversServed()
              << " failovers\n";

    // Restart: rehydrate a fresh service from snapshot + WAL.
    serve::ServiceOptions restore_options;
    restore_options.pipeline = bench::standardPipeline(0.02);
    restore_options.pipeline.warmup_seconds = 2.0;
    restore_options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    restore_options.workers = 2;
    serve::StrategyService restored(restore_options);
    Clock::time_point restore_start = Clock::now();
    serve::RestoreReport report = serve::restoreServiceCache(
        restored, victim->snapshot_path, victim->wal_path);
    double restore_ms = millisSince(restore_start);

    std::size_t recovered_hits = 0;
    for (const Key &key : keys) {
        if (!key.victim_owned)
            continue;
        serve::StrategyRequest request;
        request.workload = key.request.workload;
        request.seed = key.request.seed;
        serve::StrategyResponse answer = restored.submit(request).get();
        if (answer.provenance == serve::Provenance::ExactHit)
            ++recovered_hits;
    }
    double restored_fraction =
        static_cast<double>(recovered_hits)
        / static_cast<double>(victim_owned);
    std::cout << "restore: " << report.restored << " entries in "
              << restore_ms << " ms, " << recovered_hits << "/"
              << victim_owned << " victim keys exact-hit\n";
    restored.drain();

    bench::BenchJson json("failover");
    json.add("kill_window_requests", static_cast<double>(served),
             "count");
    json.add("kill_window_errors", static_cast<double>(errors), "count");
    json.add("failovers_served",
             static_cast<double>(router.failoversServed()), "count");
    json.add("failover_p50", percentile(failover_ms, 0.5), "ms");
    json.add("owner_hit_p50", percentile(owner_ms, 0.5), "ms");
    json.add("replication_drain", replication_drain_ms, "ms");
    json.add("replication_acked", static_cast<double>(replication.acked),
             "count");
    json.add("replication_dropped",
             static_cast<double>(replication.dropped), "count");
    json.add("snapshot_entries",
             static_cast<double>(report.snapshot_entries), "count");
    json.add("wal_entries", static_cast<double>(report.wal_entries),
             "count");
    json.add("restore_time", restore_ms, "ms");
    json.add("restored_fraction", restored_fraction, "ratio");
    json.write();

    fleet.stop();
    std::filesystem::remove_all(dir);
    return errors == 0 && restored_fraction >= 0.99 ? 0 : 1;
}
