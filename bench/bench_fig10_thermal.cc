/**
 * @file
 * Fig. 10 reproduction: AICore temperature versus SoC power is linear
 * (Eq. 15), with every operator load falling on (nearly) the same
 * line.  Each "line" sweeps one operator loop across frequencies to
 * steady state and reports the fitted slope k.
 */

#include <iostream>

#include "bench_common.h"
#include "common/statistics.h"
#include "common/table.h"
#include "models/workload.h"
#include "ops/op_factory.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_fig10_thermal",
                  "Fig. 10 (Sect. 5.4.2): temperature vs SoC power");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    trace::WorkloadRunner runner(chip);

    struct Load
    {
        const char *name;
        models::Workload workload;
    };

    auto loop = [&memory](const char *name, auto make, double seconds) {
        models::Workload w;
        w.name = name;
        ops::OpFactory factory(memory, Rng(11));
        double acc = 0.0;
        while (acc < seconds) {
            ops::Op op = make(factory);
            npu::AicoreTimeline t(op.hw, memory);
            acc += t.seconds(1800.0);
            w.iteration.push_back(std::move(op));
        }
        return w;
    };

    std::vector<Load> loads;
    loads.push_back({"MatMul", loop("MatMul", [](ops::OpFactory &f) {
                         return f.matMul(4096, 4096, 4096);
                     }, 0.5)});
    loads.push_back({"Gelu", loop("Gelu", [](ops::OpFactory &f) {
                         return f.gelu(24 * 1024 * 1024);
                     }, 0.5)});
    loads.push_back({"SoftMax", loop("SoftMax", [](ops::OpFactory &f) {
                         return f.softmax(16384, 1024);
                     }, 0.5)});
    loads.push_back({"Conv2D", loop("Conv2D", [](ops::OpFactory &f) {
                         return f.conv2d(128, 128, 128, 28, 28, 3);
                     }, 0.5)});

    Table out("Steady-state (SoC power, AICore temperature) per operator"
              " loop, swept over frequency");
    out.setHeader({"operator", "f (MHz)", "P_soc (W)", "T (C)"});

    for (auto &load : loads) {
        std::vector<double> powers, temps;
        for (double f = 1000.0; f <= 1800.0; f += 200.0) {
            trace::RunOptions options;
            options.initial_mhz = f;
            options.warmup_seconds = 40.0; // reach thermal equilibrium
            options.seed = 3 + static_cast<std::uint64_t>(f);
            trace::RunResult run = runner.run(load.workload, options);
            powers.push_back(run.soc_avg_w);
            temps.push_back(run.avg_temperature_c);
            out.addRow({load.name, Table::num(f, 0),
                        Table::num(run.soc_avg_w, 1),
                        Table::num(run.avg_temperature_c, 1)});
        }
        auto fit = stats::fitLine(powers, temps);
        std::cout << load.name << ": T = " << Table::num(fit.intercept, 1)
                  << " + " << Table::num(fit.slope, 3)
                  << " * P_soc  (r^2 = " << Table::num(fit.r2, 3)
                  << ", true RC slope k = " << chip.thermal.k_per_watt
                  << " K/W before leakage feedback)\n";
    }
    std::cout << "\n";
    out.print(std::cout);
    return 0;
}
