/**
 * @file
 * Sect. 8.4 reproduction: model-inference scenario.  Llama2 decode on
 * the NPU is host-bound - the CPU dispatches operators slower than the
 * NPU executes them - so lowering the whole-run frequency to 1300 MHz
 * mostly fills existing idle gaps.  The paper measures a 2.48%
 * performance loss for an 11.26% SoC / 25.06% AICore power reduction.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_sec84_inference",
                  "Sect. 8.4: Llama2 inference, whole-run frequency drop");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    models::Workload llama =
        models::buildWorkload("Llama2-infer", memory, 1);
    trace::WorkloadRunner runner(chip);

    trace::RunOptions base_options;
    base_options.initial_mhz = 1800.0;
    base_options.warmup_seconds = 10.0;
    trace::RunResult baseline = runner.run(llama, base_options);

    Table table("Llama2 decode: all operators at a fixed frequency");
    table.setHeader({"f (MHz)", "iter (ms)", "perf loss", "SoC (W)",
                     "SoC red.", "AICore (W)", "AICore red."});
    table.addRow({"1800", Table::num(baseline.iteration_seconds * 1e3, 1),
                  "-", Table::num(baseline.soc_avg_w, 1), "-",
                  Table::num(baseline.aicore_avg_w, 2), "-"});

    for (double f : {1600.0, 1300.0, 1000.0}) {
        trace::RunOptions options = base_options;
        options.initial_mhz = f;
        options.seed = 2 + static_cast<std::uint64_t>(f);
        trace::RunResult run = runner.run(llama, options);
        table.addRow(
            {Table::num(f, 0), Table::num(run.iteration_seconds * 1e3, 1),
             Table::pct(run.iteration_seconds
                            / baseline.iteration_seconds - 1.0, 2),
             Table::num(run.soc_avg_w, 1),
             Table::pct(1.0 - run.soc_avg_w / baseline.soc_avg_w, 2),
             Table::num(run.aicore_avg_w, 2),
             Table::pct(1.0 - run.aicore_avg_w / baseline.aicore_avg_w,
                        2)});
    }
    table.print(std::cout);
    std::cout << "\npaper @1300 MHz: 2.48% perf loss, 11.26% SoC "
                 "reduction, 25.06% AICore reduction\n"
              << "expected shape: large power cuts at small performance "
                 "cost because the decode loop is host-bound\n";
    return 0;
}
