/**
 * @file
 * Fig. 16 reproduction: predicted time and prediction error across
 * frequency for five representative operators - Add, RealDiv,
 * ReduceMean, Conv2D and BNTrainingUpdate - using the three candidate
 * fitting functions of Sect. 4.3.
 */

#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "npu/aicore_timeline.h"
#include "ops/op_factory.h"
#include "perf/fit_functions.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_fig16_example_ops",
                  "Fig. 16: five example operators, predictions + errors");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    ops::OpFactory factory(memory, Rng(16));
    Rng noise(161);

    // Shapes chosen to span the paper's 20 us - 300 us range.
    std::vector<ops::Op> examples;
    examples.push_back(factory.add(24 * 1024 * 1024));
    examples.push_back(factory.realDiv(16 * 1024 * 1024));
    examples.push_back(factory.reduceMean(48 * 1024 * 1024, 4096));
    examples.push_back(factory.conv2d(64, 256, 256, 14, 14, 3));
    examples.push_back(factory.bnTrainingUpdate(40 * 1024 * 1024));

    const std::vector<perf::FitFunction> families = {
        perf::FitFunction::QuadOverF,
        perf::FitFunction::FullQuadOverF,
        perf::FitFunction::ExpOverF,
    };

    for (const auto &op : examples) {
        npu::AicoreTimeline timeline(op.hw, memory);

        // "Measure" with profiler-grade noise at all 9 points.
        std::map<double, double> measured;
        for (double f = 1000.0; f <= 1800.0; f += 100.0)
            measured[f] = timeline.seconds(f) * noise.noiseFactor(0.006);

        // Fit on 1000/1300/1800 (Func. 2 on 1000/1800).
        std::map<perf::FitFunction, perf::FittedCurve> curves;
        for (auto kind : families) {
            std::vector<double> fs =
                kind == perf::FitFunction::QuadOverF
                    ? std::vector<double>{1000.0, 1800.0}
                    : std::vector<double>{1000.0, 1300.0, 1800.0};
            std::vector<double> ts;
            for (double f : fs)
                ts.push_back(measured[f]);
            curves.emplace(kind, perf::fitCurve(kind, fs, ts));
        }

        Table table(op.type + ": measured vs predicted time (us)");
        table.setHeader({"f (MHz)", "real", "Func1 pred", "Func1 err",
                         "Func2 pred", "Func2 err", "Func3 pred",
                         "Func3 err"});
        for (double f = 1000.0; f <= 1800.0; f += 100.0) {
            std::vector<std::string> row = {Table::num(f, 0),
                                            Table::num(measured[f] * 1e6, 1)};
            for (auto kind :
                 {perf::FitFunction::FullQuadOverF,
                  perf::FitFunction::QuadOverF,
                  perf::FitFunction::ExpOverF}) {
                double pred = curves.at(kind).predictSeconds(f);
                row.push_back(Table::num(pred * 1e6, 1));
                row.push_back(Table::pct(
                    std::abs(pred - measured[f]) / measured[f], 1));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "paper: Func. 2 tracks the measured curves with low "
                 "error at all intermediate points\n";
    return 0;
}
