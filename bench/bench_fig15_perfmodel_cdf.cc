/**
 * @file
 * Fig. 15 + Sect. 7.2 reproduction: performance-model accuracy study.
 *
 * Profiles the seven models (ResNet50, Vit_base, BERT, Deit_small,
 * AlexNet, ShufflenetV2Plus, VGG19) at six frequency points, fits each
 * candidate function on a subset of points (Func. 2 on two, the
 * three-parameter families on three), predicts the held-out points,
 * and prints the error CDF, the average errors, and the
 * fitting-cost comparison that drives the paper's choice of Func. 2
 * (Sect. 4.3: 4,343 ShuffleNet operators fit in ~4.4 s with Func. 2
 * versus ~106 s with curve_fit - here both are fast, but the relative
 * gap reproduces).
 */

#include <chrono>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/statistics.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "perf/perf_model.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;
    using Clock = std::chrono::steady_clock;
    bench::banner("bench_fig15_perfmodel_cdf",
                  "Fig. 15 + Sect. 7.2: perf-model error CDF, 7 models x 6 "
                  "frequency points");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    trace::WorkloadRunner runner(chip);

    const std::vector<double> profile_points = {1000.0, 1200.0, 1300.0,
                                                1500.0, 1600.0, 1800.0};

    // Profile every study model once per frequency point.
    std::map<std::string, perf::PerfModelRepository> repos;
    std::map<std::string,
             std::map<double, std::vector<trace::OpRecord>>> held_out;
    std::size_t total_ops = 0, tiny_ops = 0;
    std::size_t data_points = 0;
    double tiny_time = 0.0, total_time = 0.0;

    for (const auto &name : models::perfStudyModels()) {
        models::Workload workload = models::buildWorkload(name, memory, 42);
        total_ops += workload.opCount();
        for (double f : profile_points) {
            trace::RunOptions options;
            options.initial_mhz = f;
            options.warmup_seconds = 3.0;
            options.seed = 1000 + static_cast<std::uint64_t>(f);
            trace::RunResult run = runner.run(workload, options);
            repos[name].addProfile(f, run.records);
            held_out[name][f] = run.records;
            data_points += run.records.size();
            if (f == 1800.0) {
                for (const auto &r : run.records) {
                    total_time += r.duration_s;
                    if (r.duration_s < 20e-6) {
                        ++tiny_ops;
                        tiny_time += r.duration_s;
                    }
                }
            }
        }
    }

    std::cout << "operator population: " << total_ops << " operators, "
              << data_points << " (operator, frequency) data points\n";
    std::cout << "operators under 20 us: "
              << Table::pct(static_cast<double>(tiny_ops)
                            / static_cast<double>(total_ops))
              << " of operators, "
              << Table::pct(tiny_time / total_time)
              << " of execution time (paper: 58.3% / 0.9%); excluded "
                 "from the error statistics\n\n";

    // Fit each family and evaluate on held-out frequencies.
    struct Family
    {
        std::string label;
        perf::FitFunction kind;
        std::vector<double> fit_points;
    };
    const std::vector<Family> families = {
        {"Func2 " + perf::fitFunctionName(perf::FitFunction::QuadOverF),
         perf::FitFunction::QuadOverF, {1000.0, 1300.0, 1800.0}},
        {"Func1 "
             + perf::fitFunctionName(perf::FitFunction::FullQuadOverF),
         perf::FitFunction::FullQuadOverF, {1000.0, 1300.0, 1800.0}},
        {"Func3 " + perf::fitFunctionName(perf::FitFunction::ExpOverF),
         perf::FitFunction::ExpOverF, {1000.0, 1300.0, 1800.0}},
        {"ext: " + perf::fitFunctionName(perf::FitFunction::PwlCycles),
         perf::FitFunction::PwlCycles, {1000.0, 1300.0, 1800.0}},
        {"Func2, 2-point (data-saving)",
         perf::FitFunction::QuadOverF, {1000.0, 1800.0}},
        {"baseline: " + perf::fitFunctionName(perf::FitFunction::StallOverF),
         perf::FitFunction::StallOverF, {1000.0, 1300.0, 1800.0}},
    };

    Table cdf_table("Fig. 15: error CDF per fitting function");
    cdf_table.setHeader({"function", "P(err<=2%)", "P(err<=5%)",
                         "P(err<=10%)", "P(err<=20%)", "avg err",
                         "fit time (ms)"});

    for (const Family &family : families) {
        std::vector<double> errors;
        double fit_ms = 0.0;
        for (const auto &name : models::perfStudyModels()) {
            perf::PerfBuildOptions options;
            options.kind = family.kind;
            options.fit_frequencies_mhz = family.fit_points;
            auto t0 = Clock::now();
            repos[name].fitAll(options);
            fit_ms += std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count();
            for (double f : profile_points) {
                bool was_fit = false;
                for (double fit_f : family.fit_points)
                    was_fit |= fit_f == f;
                if (was_fit)
                    continue;
                for (const auto &e :
                     repos[name].evaluate(f, held_out[name][f]))
                    errors.push_back(e.relative_error);
            }
        }
        auto cdf = stats::cdfAt(errors, {0.02, 0.05, 0.10, 0.20});
        cdf_table.addRow({family.label,
                          Table::pct(cdf[0], 1), Table::pct(cdf[1], 1),
                          Table::pct(cdf[2], 1), Table::pct(cdf[3], 1),
                          Table::pct(stats::mean(errors), 2),
                          Table::num(fit_ms, 1)});
    }
    cdf_table.print(std::cout);
    std::cout << "paper: Func. 2 achieves >90% within 5%, >98% within "
                 "10%, 1.96% average error, and fits ~24x faster than "
                 "the curve_fit families\n\n";

    // The Sect. 4.3 ShuffleNet fitting-cost anecdote.
    {
        auto &repo = repos["ShuffleNetV2Plus"];
        auto time_fit = [&repo](perf::FitFunction kind,
                                std::vector<double> points) {
            perf::PerfBuildOptions options;
            options.kind = kind;
            options.fit_frequencies_mhz = std::move(points);
            auto t0 = Clock::now();
            repo.fitAll(options);
            return std::chrono::duration<double, std::milli>(Clock::now()
                                                             - t0)
                .count();
        };
        double func2_ms =
            time_fit(perf::FitFunction::QuadOverF, {1000.0, 1800.0});
        double func1_ms = time_fit(perf::FitFunction::FullQuadOverF,
                                   {1000.0, 1300.0, 1800.0});
        std::cout << "ShuffleNetV2Plus (" << repos["ShuffleNetV2Plus"].modelCount()
                  << " operators): Func. 2 closed-form fit " << Table::num(func2_ms, 1)
                  << " ms vs Func. 1 curve-fit " << Table::num(func1_ms, 1)
                  << " ms (" << Table::num(func1_ms / func2_ms, 1)
                  << "x slower; paper: 4386 ms vs 105930 ms, ~24x)\n";
    }
    return 0;
}
