/**
 * @file
 * Fig. 17 reproduction: fittest-individual score versus GA iteration
 * for performance-loss targets from 2% to 10%, on the GPT-3 training
 * workload (Sect. 7.4: population 200, mutation 0.15, 600 iterations).
 * Also reports convergence generation and wall-clock per search, and
 * the Sect. 8.1 model-based evaluation-rate argument.
 */

#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "dvfs/evaluator.h"
#include "dvfs/genetic.h"
#include "models/model_zoo.h"
#include "power/online_calibration.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;
    using Clock = std::chrono::steady_clock;
    bench::banner("bench_fig17_ga_convergence",
                  "Fig. 17 (Sect. 7.4): GA score vs iteration, GPT-3");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    npu::FreqTable table(chip.freq);
    trace::WorkloadRunner runner(chip);
    models::Workload gpt3 = models::buildWorkload("GPT3", memory, 1);

    // Profile + models (shared across targets).
    power::PowerModel power_model(bench::calibratedConstants(), table);
    power::OnlinePowerCalibrator online(power_model);
    perf::PerfModelRepository repo;
    trace::RunResult baseline;
    for (double f : {1000.0, 1400.0, 1800.0}) {
        trace::RunOptions options;
        options.initial_mhz = f;
        options.warmup_seconds = 15.0;
        options.sample_period = 2 * kTicksPerMs;
        options.seed = 17 + static_cast<std::uint64_t>(f);
        trace::RunResult run = runner.run(gpt3, options);
        repo.addProfile(f, run.records);
        online.addRun(run);
        if (f == 1800.0)
            baseline = run;
    }
    perf::PerfBuildOptions perf_options;
    perf_options.kind = perf::FitFunction::PwlCycles;
    repo.fitAll(perf_options);
    auto op_power = online.perOpModels();

    dvfs::PreprocessResult prep = dvfs::preprocess(baseline.records, {});
    dvfs::StageEvaluator evaluator(prep.stages, repo, power_model, op_power,
                                   table);
    std::cout << "GPT-3: " << gpt3.opCount() << " operators, "
              << prep.stages.size() << " frequency candidates after "
              << "preprocessing (FAI 5 ms)\n\n";

    Table series("Fig. 17: fittest score (x1e-16) every 50 generations");
    std::vector<std::string> header = {"target"};
    for (int gen = 0; gen <= 600; gen += 50)
        header.push_back("g" + std::to_string(gen));
    header.push_back("conv@");
    header.push_back("search (s)");
    series.setHeader(std::move(header));

    for (double target : {0.02, 0.04, 0.06, 0.08, 0.10}) {
        dvfs::GaOptions options;
        options.population = 200;
        options.generations = 600;
        options.mutation_rate = 0.15;
        options.perf_loss_target = target;
        options.refine_sweeps = 0; // pure GA for the convergence plot
        auto t0 = Clock::now();
        dvfs::GaResult result =
            dvfs::searchStrategy(evaluator, prep.stages, options);
        double seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();

        std::vector<std::string> row = {Table::pct(target, 0)};
        for (int gen = 0; gen <= 600; gen += 50) {
            std::size_t index = gen == 0
                ? 0
                : std::min<std::size_t>(static_cast<std::size_t>(gen) - 1,
                                        result.score_history.size() - 1);
            row.push_back(
                Table::num(result.score_history[index] * 1e16, 3));
        }
        row.push_back(std::to_string(result.converged_at));
        row.push_back(Table::num(seconds, 2));
        series.addRow(std::move(row));
    }
    series.print(std::cout);
    std::cout << "paper: all configurations converge within 500 rounds, "
                 "each search within 2.5 s; stricter targets converge "
                 "faster\n\n";

    // Sect. 8.1: model-based policy evaluation rate.
    {
        std::vector<std::uint8_t> genome(
            evaluator.stageCount(),
            static_cast<std::uint8_t>(evaluator.freqCount() - 1));
        auto t0 = Clock::now();
        const int evals = 20'000;
        double checksum = 0.0;
        for (int i = 0; i < evals; ++i) {
            genome[static_cast<std::size_t>(i)
                   % evaluator.stageCount()] ^= 1;
            checksum += evaluator.evaluate(genome).soc_watts;
        }
        double seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        std::cout << "Sect. 8.1: evaluated " << evals << " policies in "
                  << Table::num(seconds, 2) << " s ("
                  << Table::num(seconds / evals * 1e3, 3)
                  << " ms per policy; paper: milliseconds per policy, "
                     "20,000 policies in 5 minutes; checksum "
                  << Table::num(checksum, 0) << ")\n";
        std::cout << "model-free alternative: one 11 s training "
                     "iteration per policy => ~30 policies in the same "
                     "5 minutes\n";
    }
    return 0;
}
