/**
 * @file
 * Microbenchmark (google-benchmark): model-based strategy evaluation
 * and GA generation throughput (Sect. 8.1).  The paper's case for the
 * modelling approach over model-free search is that one policy can be
 * scored in milliseconds instead of one full training iteration.
 */

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dvfs/evaluator.h"
#include "dvfs/genetic.h"
#include "dvfs/preprocess.h"
#include "models/transformer.h"
#include "power/offline_calibration.h"
#include "power/online_calibration.h"
#include "trace/workload_runner.h"

namespace {

using namespace opdvfs;

/** One-time setup: profile a mid-size transformer and build models. */
struct Fixture
{
    npu::NpuConfig chip;
    npu::FreqTable table{npu::FreqTableConfig{}};
    power::CalibratedConstants constants;
    power::PowerModel power_model;
    perf::PerfModelRepository repo;
    std::unordered_map<std::uint64_t, power::OpPowerModel> op_power;
    dvfs::PreprocessResult prep;
    std::unique_ptr<dvfs::StageEvaluator> evaluator;

    Fixture() : constants(power::calibrateOffline(chip)),
                power_model(constants, table)
    {
        npu::MemorySystem memory(chip.memory);
        models::TransformerConfig model;
        model.name = "ga-bench";
        model.layers = 24;
        model.hidden = 4096;
        model.heads = 32;
        model.seq = 2048;
        model.tensor_parallel = 4;
        model.tp_allreduce = true;
        model.micro_batches = 2;
        models::Workload workload =
            models::buildTransformerTraining(memory, model, 3);

        trace::WorkloadRunner runner(chip);
        power::OnlinePowerCalibrator online(power_model);
        trace::RunResult baseline;
        for (double f : {1000.0, 1400.0, 1800.0}) {
            trace::RunOptions options;
            options.initial_mhz = f;
            options.warmup_seconds = 4.0;
            options.sample_period = kTicksPerMs;
            options.seed = 60 + static_cast<std::uint64_t>(f);
            trace::RunResult run = runner.run(workload, options);
            repo.addProfile(f, run.records);
            online.addRun(run);
            if (f == 1800.0)
                baseline = run;
        }
        perf::PerfBuildOptions perf_options;
        perf_options.kind = perf::FitFunction::PwlCycles;
        repo.fitAll(perf_options);
        op_power = online.perOpModels();
        prep = dvfs::preprocess(baseline.records, {});
        evaluator = std::make_unique<dvfs::StageEvaluator>(
            prep.stages, repo, power_model, op_power, table);
    }
};

Fixture &
fixture()
{
    static Fixture instance;
    return instance;
}

void
BM_PolicyEvaluation(benchmark::State &state)
{
    Fixture &f = fixture();
    Rng rng(1);
    std::vector<std::uint8_t> genome(f.evaluator->stageCount());
    for (auto &g : genome)
        g = static_cast<std::uint8_t>(rng.index(f.evaluator->freqCount()));
    for (auto _ : state) {
        genome[rng.index(genome.size())] =
            static_cast<std::uint8_t>(rng.index(f.evaluator->freqCount()));
        benchmark::DoNotOptimize(f.evaluator->evaluate(genome).soc_watts);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["stages"] =
        static_cast<double>(f.evaluator->stageCount());
}

void
BM_GaGeneration(benchmark::State &state)
{
    Fixture &f = fixture();
    for (auto _ : state) {
        dvfs::GaOptions options;
        options.population = 200;
        options.generations = static_cast<int>(state.range(0));
        options.refine_sweeps = 0;
        auto result =
            dvfs::searchStrategy(*f.evaluator, f.prep.stages, options);
        benchmark::DoNotOptimize(result.best_score);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 200);
}

void
BM_EvaluatorConstruction(benchmark::State &state)
{
    Fixture &f = fixture();
    for (auto _ : state) {
        dvfs::StageEvaluator evaluator(f.prep.stages, f.repo,
                                       f.power_model, f.op_power, f.table);
        benchmark::DoNotOptimize(evaluator.stageCount());
    }
}

BENCHMARK(BM_PolicyEvaluation);
BENCHMARK(BM_GaGeneration)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluatorConstruction)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
