/**
 * @file
 * Strategy-service benchmark: the serving-layer economics on top of
 * the paper's per-workload pipeline.
 *
 *   1. cold request latency (full profile -> models -> GA run)
 *   2. exact cache hit latency (same fingerprint; target <1% of cold)
 *   3. warm-started GA on a similar workload at a third of the
 *      generation budget, scored against a full-budget cold run
 *   4. batch throughput of distinct requests, 1 vs 4 workers
 *
 * Worker scaling is hardware-bound: the search is CPU-bound, so the
 * 4-worker speedup approaches 4x only with >= 4 free cores (the
 * banner prints hardware_concurrency for reading the numbers in
 * context).
 */

#include <chrono>
#include <sstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "models/transformer.h"
#include "serve/service.h"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string
sci(double value, int digits)
{
    std::ostringstream out;
    out.precision(digits);
    out << std::scientific << value;
    return out.str();
}

opdvfs::models::Workload
transformerVariant(const opdvfs::npu::MemorySystem &memory, int seq)
{
    opdvfs::models::TransformerConfig model;
    model.name = "serve-bench";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return opdvfs::models::buildTransformerTraining(memory, model, 5);
}

opdvfs::serve::ServiceOptions
serviceOptions(std::size_t workers)
{
    opdvfs::serve::ServiceOptions options;
    options.pipeline = opdvfs::bench::standardPipeline(0.02);
    options.pipeline.warmup_seconds = 4.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 60;
    options.pipeline.ga.generations = 60;
    options.workers = workers;
    return options;
}

/** Time a batch of distinct workloads through one service. */
double
batchSeconds(std::size_t workers,
             const std::vector<opdvfs::models::Workload> &workloads)
{
    opdvfs::serve::StrategyService service(serviceOptions(workers));
    auto start = Clock::now();
    std::vector<std::future<opdvfs::serve::StrategyResponse>> pending;
    pending.reserve(workloads.size());
    for (const auto &workload : workloads) {
        opdvfs::serve::StrategyRequest request;
        request.workload = workload;
        request.use_cache = false; // every request pays a full search
        pending.push_back(service.submit(request));
    }
    for (auto &future : pending)
        future.get();
    return secondsSince(start);
}

} // namespace

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_serve_throughput",
                  "strategy service: cache, warm start, worker scaling");
    std::cout << "hardware_concurrency: "
              << std::thread::hardware_concurrency() << "\n\n";

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);

    // --- 1+2: cold latency vs exact-hit latency -------------------------
    serve::StrategyService service(serviceOptions(4));
    serve::StrategyRequest request;
    request.workload = transformerVariant(memory, 256);

    serve::StrategyResponse cold = service.submit(request).get();
    serve::StrategyResponse hit = service.submit(request).get();

    Table latency("Request latency: cold search vs exact cache hit");
    latency.setHeader({"Path", "Latency (s)", "Generations run",
                       "Of cold latency"});
    latency.addRow({"cold", Table::num(cold.service_seconds, 3),
                    std::to_string(cold.generations_run), "100%"});
    latency.addRow(
        {"exact-hit", Table::num(hit.service_seconds, 6),
         std::to_string(hit.generations_run),
         Table::pct(hit.service_seconds / cold.service_seconds, 3)});
    latency.print(std::cout);
    std::cout << "\n";

    // --- 3: warm start quality at a third of the budget -----------------
    serve::StrategyRequest similar;
    similar.workload = transformerVariant(memory, 288);
    serve::StrategyResponse warm = service.submit(similar).get();

    serve::StrategyRequest cold_similar = similar;
    cold_similar.use_cache = false;
    serve::StrategyResponse full = service.submit(cold_similar).get();

    Table warm_table("Warm-started GA vs full-budget cold search "
                     "(similar workload)");
    warm_table.setHeader({"Path", "Generations", "Score",
                          "Of cold score", "Donor similarity"});
    warm_table.addRow({"cold", std::to_string(full.generations_run),
                       sci(full.ga.best_score, 3), "100%", "-"});
    warm_table.addRow({"warm-start",
                       std::to_string(warm.generations_run),
                       sci(warm.ga.best_score, 3),
                       Table::pct(warm.ga.best_score / full.ga.best_score,
                                  2),
                       Table::num(warm.similarity, 3)});
    warm_table.print(std::cout);
    std::cout << "\n";

    // --- 4: distinct-request throughput, 1 vs 4 workers -----------------
    std::vector<models::Workload> batch;
    for (int seq : {192, 224, 256, 288, 320, 352, 384, 416})
        batch.push_back(transformerVariant(memory, seq));

    double one_worker = batchSeconds(1, batch);
    double four_workers = batchSeconds(4, batch);

    Table throughput("Batch of 8 distinct cold requests");
    throughput.setHeader(
        {"Workers", "Batch (s)", "Req/s", "Speedup vs 1 worker"});
    throughput.addRow({"1", Table::num(one_worker, 2),
                       Table::num(8.0 / one_worker, 2), "1.00x"});
    throughput.addRow({"4", Table::num(four_workers, 2),
                       Table::num(8.0 / four_workers, 2),
                       Table::num(one_worker / four_workers, 2) + "x"});
    throughput.print(std::cout);

    serve::ServiceStats stats = service.stats();
    std::cout << "\nfirst-service stats: requests=" << stats.requests
              << " exact_hits=" << stats.exact_hits
              << " warm_hits=" << stats.warm_hits
              << " cold_misses=" << stats.cold_misses
              << " generations_saved=" << stats.generations_saved
              << " p50=" << stats.p50_service_seconds << "s"
              << " p95=" << stats.p95_service_seconds << "s\n";

    bench::BenchJson json("serve");
    json.add("cold_latency", cold.service_seconds, "s");
    json.add("exact_hit_latency", hit.service_seconds, "s");
    json.add("exact_hit_fraction_of_cold",
             hit.service_seconds / cold.service_seconds, "fraction");
    json.add("warm_score_ratio", warm.ga.best_score / full.ga.best_score,
             "fraction");
    json.add("warm_generations",
             static_cast<double>(warm.generations_run), "count");
    json.add("batch8_1worker", one_worker, "s");
    json.add("batch8_4workers", four_workers, "s");
    json.add("worker_speedup", one_worker / four_workers, "x");
    json.write();
    return 0;
}
