/**
 * @file
 * Design-choice ablations (beyond the paper's own Fig. 18 ablation):
 * how much each piece of this implementation contributes to the
 * end-to-end GPT-3 result at the 2% loss target.
 *
 *  - fitting family: the paper's Func. 2 versus the piecewise-linear
 *    cycles extension (kink fidelity matters for pricing mild drops);
 *  - first-generation priors: baseline-only versus the multi-level
 *    prior individuals;
 *  - memetic refinement: pure GA (the paper's algorithm) versus GA
 *    plus hill-climbing sweeps;
 *  - search length: 150 versus 600 generations.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "models/model_zoo.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_ablation_design",
                  "implementation ablations on GPT-3 @ 2% target");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    models::Workload gpt3 = models::buildWorkload("GPT3", memory, 1);

    struct Variant
    {
        std::string name;
        perf::FitFunction fit = perf::FitFunction::PwlCycles;
        bool multi_priors = true;
        int refine_sweeps = 12;
        int generations = 600;
    };
    std::vector<Variant> variants;
    variants.push_back({"full (pwl fit, priors, refine, 600 gens)"});
    {
        Variant v;
        v.name = "paper Func. 2 fit";
        v.fit = perf::FitFunction::QuadOverF;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "no multi-level priors";
        v.multi_priors = false;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "pure GA (no refinement)";
        v.refine_sweeps = 0;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "short search (150 gens)";
        v.generations = 150;
        variants.push_back(v);
    }

    Table table("GPT-3 @ 2% target, one variant per row");
    table.setHeader({"variant", "perf loss", "AICore red.", "SoC red.",
                     "SetFreq/iter"});
    for (const Variant &variant : variants) {
        dvfs::PipelineOptions options = bench::standardPipeline(0.02);
        options.fit_kind = variant.fit;
        options.ga.multi_level_priors = variant.multi_priors;
        options.ga.refine_sweeps = variant.refine_sweeps;
        options.ga.generations = variant.generations;
        options.seed = 9;

        dvfs::EnergyPipeline pipeline(options);
        dvfs::PipelineResult result = pipeline.optimize(gpt3);
        table.addRow({variant.name, Table::pct(result.perfLoss(), 2),
                      Table::pct(result.aicoreReduction(), 2),
                      Table::pct(result.socReduction(), 2),
                      std::to_string(result.dvfs.set_freq_count)});
    }
    table.print(std::cout);
    std::cout << "\nreading: kink-faithful fitting and a refined search "
                 "recover most of the savings; the paper's pure GA with "
                 "a single prior relies on its workload's cleaner "
                 "LFC/HFC separation\n";
    return 0;
}
