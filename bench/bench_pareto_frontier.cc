/**
 * @file
 * Energy/performance frontier for GPT-3 (generalises Table 3's target
 * column): one shared profiling + modelling pass, then the strategy
 * search swept over loss targets from 1% to 15%.  The predicted
 * frontier shows where the diminishing returns the paper observes
 * beyond the 2% production target set in.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "dvfs/pareto.h"
#include "models/model_zoo.h"
#include "power/online_calibration.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_pareto_frontier",
                  "extension: GPT-3 energy/performance frontier");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    npu::FreqTable table(chip.freq);
    models::Workload gpt3 = models::buildWorkload("GPT3", memory, 1);
    trace::WorkloadRunner runner(chip);

    power::PowerModel power_model(bench::calibratedConstants(), table);
    power::OnlinePowerCalibrator online(power_model);
    perf::PerfModelRepository repo;
    trace::RunResult baseline;
    for (double f : {1000.0, 1400.0, 1800.0}) {
        trace::RunOptions options;
        options.initial_mhz = f;
        options.warmup_seconds = 15.0;
        options.sample_period = 2 * kTicksPerMs;
        options.seed = 8 + static_cast<std::uint64_t>(f);
        trace::RunResult run = runner.run(gpt3, options);
        repo.addProfile(f, run.records);
        online.addRun(run);
        if (f == 1800.0)
            baseline = run;
    }
    perf::PerfBuildOptions perf_options;
    perf_options.kind = perf::FitFunction::PwlCycles;
    repo.fitAll(perf_options);

    dvfs::PreprocessResult prep = dvfs::preprocess(baseline.records, {});
    dvfs::StageEvaluator evaluator(prep.stages, repo, power_model,
                                   online.perOpModels(), table);

    dvfs::GaOptions ga;
    ga.population = 200;
    ga.generations = 300;
    std::vector<double> targets = {0.01, 0.02, 0.03, 0.05,
                                   0.08, 0.10, 0.15};
    auto frontier =
        dvfs::sweepParetoFrontier(evaluator, prep.stages, targets, ga);

    Table out("predicted frontier (shared models, GA per target)");
    out.setHeader({"loss target", "pred. loss", "AICore red.", "SoC red.",
                   "mean frequency (MHz)"});
    for (const auto &point : frontier) {
        double mean_mhz = 0.0;
        for (double mhz : point.mhz_per_stage)
            mean_mhz += mhz;
        mean_mhz /= static_cast<double>(point.mhz_per_stage.size());
        out.addRow({Table::pct(point.perf_loss_target, 0),
                    Table::pct(point.predicted_loss, 2),
                    Table::pct(point.predicted_aicore_reduction, 2),
                    Table::pct(point.predicted_soc_reduction, 2),
                    Table::num(mean_mhz, 0)});
    }
    out.print(std::cout);
    std::cout << "\nreading: the marginal AICore savings per point of "
                 "allowed loss shrink past ~2-4%, matching the paper's "
                 "choice of 2% as the production target (Table 3: "
                 "'beyond this target, the power reduction rate slows')\n";
    return 0;
}
