/**
 * @file
 * Open-loop overload bench for the serving stack: offered load is
 * swept past saturation and goodput is measured against the overload
 * controls (sojourn-based shedding, deadline propagation, expiry of
 * queued work).
 *
 *   1. measure the cold search cost on this machine;
 *   2. derive the saturation rate from it (workers / per-request
 *      cost at the bench's cold fraction);
 *   3. for each offered load in {0.25, 0.5, 1.0, 1.5, 2.0} x
 *      saturation, generate bursty open-loop arrivals for a fixed
 *      window and classify every response.
 *
 * The controls pass when goodput past saturation plateaus instead of
 * collapsing (goodput at 2x >= 80% of the peak across the sweep) and
 * no GA run is ever spent on a request whose deadline had already
 * expired.  Emits BENCH_overload.json.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "models/transformer.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/service.h"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

opdvfs::models::Workload
transformerVariant(const opdvfs::npu::MemorySystem &memory, int seq)
{
    opdvfs::models::TransformerConfig model;
    model.name = "overload-bench";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return opdvfs::models::buildTransformerTraining(memory, model, 5);
}

/** One offered request: hot requests reuse a pre-warmed fingerprint,
 *  cold ones carry a never-seen seed (the seed is part of the
 *  fingerprint, so every one forces a full search). */
struct Arrival
{
    bool hot = false;
    std::uint64_t seed = 0;
    int hot_index = 0;
};

/** What came back, bucketed for the goodput accounting. */
struct LevelOutcome
{
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> busy_other{0};
    std::atomic<std::uint64_t> client_deadline{0};
    std::atomic<std::uint64_t> transport_error{0};
    std::mutex latency_mutex;
    std::vector<double> ok_latencies;
};

/** Open-loop arrival queue: the generator never blocks on a slow
 *  server, which is the property that makes overload visible. */
class ArrivalQueue
{
  public:
    void push(Arrival arrival)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            pending_.push_back(arrival);
        }
        ready_.notify_one();
    }

    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    bool pop(Arrival &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock,
                    [this] { return closed_ || !pending_.empty(); });
        if (pending_.empty())
            return false;
        out = pending_.front();
        pending_.pop_front();
        return true;
    }

  private:
    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Arrival> pending_;
    bool closed_ = false;
};

constexpr double kColdFraction = 0.5;
constexpr double kDeadlineSeconds = 0.5;
constexpr std::size_t kClientThreads = 24;

/** Offer @p rate requests/s for @p window_seconds in bursts, serve
 *  them one-shot (no retries: an open-loop driver re-offers through
 *  fresh arrivals, not through retry amplification). */
void
runLevel(std::uint16_t port,
         const std::vector<opdvfs::net::WireRequest> &hot_set,
         const opdvfs::net::WireRequest &cold_template, double rate,
         double window_seconds, opdvfs::Rng &rng,
         std::uint64_t &next_cold_seed, LevelOutcome &outcome)
{
    using namespace opdvfs;

    ArrivalQueue queue;
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClientThreads; ++c) {
        clients.emplace_back([&, c] {
            net::ClientOptions one_shot;
            one_shot.max_attempts = 1;
            one_shot.request_timeout_seconds = kDeadlineSeconds;
            one_shot.seed = 7000 + c;
            net::StrategyClient client("127.0.0.1", port, one_shot);
            Arrival arrival;
            while (queue.pop(arrival)) {
                net::WireRequest request =
                    arrival.hot ? hot_set[static_cast<std::size_t>(
                                      arrival.hot_index)]
                                : cold_template;
                if (!arrival.hot)
                    request.seed = arrival.seed;
                auto begin = Clock::now();
                try {
                    client.call(request);
                    double latency = secondsSince(begin);
                    outcome.ok.fetch_add(1);
                    std::lock_guard<std::mutex> lock(
                        outcome.latency_mutex);
                    outcome.ok_latencies.push_back(latency);
                } catch (const net::BusyError &busy) {
                    if (busy.reason() == serve::RejectReason::Overloaded)
                        outcome.shed.fetch_add(1);
                    else if (busy.reason() == serve::RejectReason::Expired)
                        outcome.expired.fetch_add(1);
                    else
                        outcome.busy_other.fetch_add(1);
                } catch (const net::DeadlineError &) {
                    outcome.client_deadline.fetch_add(1);
                } catch (const std::exception &) {
                    outcome.transport_error.fetch_add(1);
                }
            }
        });
    }

    // Bursty open-loop generator: arrivals come in clumps of 1-4 with
    // exponential gaps stretched to keep the offered rate.
    auto start = Clock::now();
    double next_at = 0.0;
    while (next_at < window_seconds) {
        double wait = next_at - secondsSince(start);
        if (wait > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(wait));
        int burst = static_cast<int>(rng.uniformInt(1, 4));
        for (int b = 0; b < burst; ++b) {
            Arrival arrival;
            arrival.hot = !rng.chance(kColdFraction);
            if (arrival.hot)
                arrival.hot_index = static_cast<int>(rng.index(
                    hot_set.size()));
            else
                arrival.seed = next_cold_seed++;
            queue.push(arrival);
        }
        // Exponential gap sized for the whole burst: E[gap] = burst/rate.
        double u = rng.uniform(1e-9, 1.0);
        next_at += -std::log(u) * static_cast<double>(burst) / rate;
    }
    queue.close();
    for (auto &client : clients)
        client.join();
}

double
percentile(std::vector<double> values, double fraction)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    auto rank = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[rank];
}

} // namespace

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_overload",
                  "overload control: goodput under an offered-load "
                  "sweep past saturation");
    std::cout << "hardware_concurrency: "
              << std::thread::hardware_concurrency() << "\n\n";

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);

    serve::ServiceOptions options;
    options.pipeline = bench::standardPipeline(0.02);
    options.pipeline.warmup_seconds = 2.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 30;
    options.pipeline.ga.generations = 24;
    options.pipeline.ga.refine_sweeps = 2;
    options.workers = 2;
    serve::StrategyService service(options);

    net::StrategyServer server(service, {});
    server.start();
    std::cout << "serving on 127.0.0.1:" << server.port() << "\n";

    // Pre-warm the hot set so its arrivals answer from the cache.
    std::vector<net::WireRequest> hot_set;
    {
        net::StrategyClient warmer("127.0.0.1", server.port());
        for (int seq : {192, 224, 256, 288}) {
            net::WireRequest request;
            request.workload = transformerVariant(memory, seq);
            request.chip = chip;
            request.seed = 7;
            warmer.call(request);
            hot_set.push_back(std::move(request));
        }
    }

    // Cold template: the seed is rewritten per arrival, which changes
    // the fingerprint, so each one costs a full search.
    net::WireRequest cold_template;
    cold_template.workload = transformerVariant(memory, 256);
    cold_template.chip = chip;

    // --- 1: cold cost and the derived saturation rate -------------------
    double cold_seconds = 0.0;
    {
        net::StrategyClient prober("127.0.0.1", server.port());
        constexpr int kProbes = 3;
        for (int i = 0; i < kProbes; ++i) {
            net::WireRequest probe = cold_template;
            probe.seed = 1000001 + static_cast<std::uint64_t>(i);
            auto begin = Clock::now();
            prober.call(probe);
            cold_seconds += secondsSince(begin);
        }
        cold_seconds /= kProbes;
    }
    double saturation_rps = static_cast<double>(options.workers)
                            / (kColdFraction * cold_seconds);
    std::cout << "cold search: " << cold_seconds << " s -> saturation "
              << saturation_rps << " rps at cold fraction "
              << kColdFraction << "\n\n";

    // --- 2: the offered-load sweep --------------------------------------
    const std::vector<double> kLevels = {0.25, 0.5, 1.0, 1.5, 2.0};
    constexpr double kWindowSeconds = 6.0;
    Rng rng(20250809);
    std::uint64_t next_cold_seed = 2000000;

    bench::BenchJson json("overload");
    json.add("cold_seconds", cold_seconds, "s");
    json.add("saturation_rps", saturation_rps, "rps");

    std::vector<double> goodputs;
    for (double level : kLevels) {
        LevelOutcome outcome;
        serve::ServiceStats before = service.stats();
        auto start = Clock::now();
        runLevel(server.port(), hot_set, cold_template,
                 level * saturation_rps, kWindowSeconds, rng,
                 next_cold_seed, outcome);
        double wall = secondsSince(start);
        serve::ServiceStats after = service.stats();

        double goodput = static_cast<double>(outcome.ok.load()) / wall;
        goodputs.push_back(goodput);
        double p99 = percentile(outcome.ok_latencies, 0.99);
        std::cout << level << "x: offered " << level * saturation_rps
                  << " rps, goodput " << goodput << " rps, p99 " << p99
                  << " s, shed " << outcome.shed.load() << ", expired "
                  << outcome.expired.load() << ", busy "
                  << outcome.busy_other.load() << ", client-deadline "
                  << outcome.client_deadline.load() << ", transport "
                  << outcome.transport_error.load() << " (service shed "
                  << after.shed_early - before.shed_early
                  << ", expired-in-queue "
                  << after.expired_in_queue - before.expired_in_queue
                  << ")\n";

        std::string prefix =
            "x" + std::to_string(level).substr(0, 4) + "_";
        json.add(prefix + "offered", level * saturation_rps, "rps");
        json.add(prefix + "goodput", goodput, "rps");
        json.add(prefix + "p99", p99, "s");
        json.add(prefix + "shed",
                 static_cast<double>(outcome.shed.load()), "count");
        json.add(prefix + "expired",
                 static_cast<double>(outcome.expired.load()), "count");
        json.add(prefix + "client_deadline",
                 static_cast<double>(outcome.client_deadline.load()),
                 "count");

        // Drain between levels so backlog does not bleed across.
        for (int spin = 0; spin < 600 && service.stats().in_flight > 0;
             ++spin)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    server.stop();

    serve::ServiceStats final_stats = service.stats();
    double peak = *std::max_element(goodputs.begin(), goodputs.end());
    double at_2x = goodputs.back();
    double plateau = peak > 0.0 ? at_2x / peak : 0.0;
    std::cout << "\npeak goodput " << peak << " rps; at 2x " << at_2x
              << " rps (" << plateau * 100.0 << "% of peak)\n"
              << "ga_runs_past_deadline "
              << final_stats.ga_runs_past_deadline
              << " (deadline propagation on: must be 0)\n";

    json.add("peak_goodput", peak, "rps");
    json.add("goodput_2x", at_2x, "rps");
    json.add("goodput_2x_over_peak", plateau, "ratio");
    json.add("expired_ga_runs",
             static_cast<double>(final_stats.ga_runs_past_deadline),
             "count");
    json.write();

    bool pass = plateau >= 0.8 && final_stats.ga_runs_past_deadline == 0;
    std::cout << (pass ? "\nPASS" : "\nFAIL")
              << ": goodput plateau past saturation\n";
    return pass ? 0 : 1;
}
