/**
 * @file
 * Drift-recovery study (robustness extension of the paper's Sect. 7
 * deployment story): the chip ages underneath a deployed strategy —
 * capacitance aging inflates dynamic power, every operator slows down
 * a few percent.  The strategy and the models it was searched on go
 * stale together.
 *
 * Three closed-loop scenarios, each paired with a max-frequency
 * reference run on an identically-faulted chip (the energy-savings
 * denominator, so common aging effects cancel):
 *
 *   clean     no drift, watchdog armed       -> zero recalibrations
 *   stale     drift, watchdog off, guard on  -> guard falls back, the
 *                                               strategy's savings die
 *   watchdog  drift, watchdog + recalibrate  -> detect, refit, rebase,
 *              + strategy regeneration          re-search; savings
 *                                               recover to the clean
 *                                               level
 *
 * Expectation (the PR's acceptance bar): the stale run forfeits more
 * than 5 points of AICore energy savings; the watchdog run finishes
 * within 1 point of the no-drift savings; the clean control never
 * recalibrates (no false positives).
 */

#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "calib/drift_loop.h"
#include "common/table.h"
#include "models/transformer.h"
#include "npu/freq_table.h"

namespace {

using namespace opdvfs;

/** Mean of the last @p n per-iteration savings. */
double
tailMean(const std::vector<double> &values, std::size_t n)
{
    if (values.empty())
        return 0.0;
    std::size_t start = values.size() > n ? values.size() - n : 0;
    double sum = 0.0;
    for (std::size_t i = start; i < values.size(); ++i)
        sum += values[i];
    return sum / static_cast<double>(values.size() - start);
}

struct Scenario
{
    std::string name;
    calib::DriftLoopResult strategy;
    calib::DriftLoopResult reference;
    /** Per-iteration AICore savings vs the paired reference. */
    std::vector<double> savings;
};

} // namespace

int
main()
{
    bench::banner("bench_drift_recovery",
                  "robustness extension: energy savings under aging "
                  "drift, stale strategy vs watchdog-driven "
                  "recalibration + regeneration");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    npu::FreqTable table(chip.freq);

    models::TransformerConfig model;
    model.name = "drift-probe";
    model.layers = 2;
    model.hidden = 4096;
    model.heads = 32;
    model.seq = 512;
    model.batch = 4;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 5);

    // --- generate the deployed strategy on the clean chip ---------------
    dvfs::PipelineOptions pipe = bench::standardPipeline(0.02);
    pipe.warmup_seconds = 5.0;
    pipe.ga.population = 48; // reduced budget: the bench studies drift,
    pipe.ga.generations = 60; // not search quality
    dvfs::EnergyPipeline pipeline(pipe);
    dvfs::PipelineResult generated = pipeline.optimize(workload);

    const double baseline = generated.baseline.iteration_seconds;
    power::PowerModel power_model(generated.constants, table);

    std::cout << "strategy: " << generated.plan.triggers.size()
              << " triggers, perf loss "
              << generated.perfLoss() * 100.0 << "%, AICore reduction "
              << generated.aicoreReduction() * 100.0
              << "%; baseline iteration " << baseline * 1e3 << " ms\n\n";

    // --- the drift the chip will age through ----------------------------
    const int kIterations = 30;
    const int kTail = 6; // savings scored over the final iterations
    const double warmup_seconds = 3.0 * baseline;

    npu::FaultPlan drift;
    drift.aging_dynamic_drift = 0.10; // +10% dynamic power at full ramp
    drift.latency_drift = 0.08;       // +8% op latency at full ramp
    drift.drift_start =
        secondsToTicks(warmup_seconds + 5.0 * baseline);
    drift.drift_ramp = secondsToTicks(6.0 * baseline);

    calib::DriftLoopOptions loop;
    loop.iterations = kIterations;
    loop.run.initial_mhz = generated.plan.initial_mhz;
    loop.run.warmup_seconds = warmup_seconds;
    // The default 50 ms telemetry period exceeds the ~28 ms iteration;
    // sample at the pipeline's fine-grained calibration period so the
    // power channel sees aligned (sample, operator) pairs.
    loop.run.sample_period = 2 * kTicksPerMs;
    loop.run.seed = 33;
    loop.guard.perf_loss_target = pipe.perf_loss_target;
    loop.guard.violation_limit = 2;
    // The injected drifts push residuals 5-10 points past the anchor;
    // a wider dead zone keeps detection fast while ignoring the
    // sub-point systematic bias left after a refit (per-type scales
    // fit at the parked maximum frequency, applied at the strategy's).
    loop.tracker.time.slack = 0.02;
    loop.tracker.power.slack = 0.03;

    // Reference runs: max-frequency pin, guard + watchdog off, on a
    // chip with the SAME fault plan — the per-iteration savings ratio
    // then cancels whatever the drift does to both runs alike.
    calib::DriftLoopOptions ref_loop = loop;
    ref_loop.guard.enabled = false;
    ref_loop.watchdog_enabled = false;
    ref_loop.run.initial_mhz = table.maxMhz();

    // Strategy regeneration: re-search the GA on the patched models
    // (warm-started from the stale best) and replan the triggers.
    auto regenerate =
        [&](const calib::ModelPatch &patch) -> calib::RegeneratedStrategy {
        perf::PerfModelRepository patched = generated.perf_models;
        patched.scaleDurations(patch.time_scale_by_type,
                               patch.time_scale_global);

        power::CalibratedConstants constants = generated.constants;
        constants.beta_aicore *= patch.power_dynamic_scale;
        constants.beta_soc *= patch.power_dynamic_scale;
        if (patch.thermal_updated) {
            constants.k_per_watt = patch.k_per_watt;
            constants.ambient_c = patch.ambient_c;
        }
        auto op_power = generated.op_power;
        for (auto &[id, op] : op_power) {
            op.alpha_aicore *= patch.power_dynamic_scale;
            op.alpha_soc *= patch.power_dynamic_scale;
        }

        power::PowerModel patched_power(constants, table);
        dvfs::StageEvaluator evaluator(generated.prep.stages, patched,
                                       patched_power, op_power, table);
        dvfs::GaOptions ga = pipe.ga;
        ga.generations = std::max(1, pipe.ga.generations / 3);
        ga.prior_individuals.push_back(generated.ga.best_mhz);
        dvfs::GaResult searched =
            dvfs::searchStrategy(evaluator, generated.prep.stages, ga);
        dvfs::ExecutionPlan plan =
            dvfs::planExecution(generated.prep.stages, searched.best_mhz,
                                generated.baseline.records, pipe.executor);
        return {plan.triggers, std::nullopt, plan.initial_mhz};
    };

    auto runScenario = [&](const std::string &name,
                           const npu::FaultPlan &faults,
                           bool watchdog_enabled,
                           bool with_regenerate) -> Scenario {
        npu::NpuConfig faulted = chip;
        faulted.faults = faults;

        calib::DriftLoopOptions strategy_options = loop;
        strategy_options.watchdog_enabled = watchdog_enabled;
        if (with_regenerate)
            strategy_options.regenerate = regenerate;

        Scenario out;
        out.name = name;
        out.strategy = calib::runDriftLoop(
            faulted, workload, generated.perf_models, power_model,
            generated.op_power, generated.plan.triggers, baseline,
            strategy_options);
        out.reference = calib::runDriftLoop(
            faulted, workload, generated.perf_models, power_model,
            generated.op_power, {}, baseline, ref_loop);

        for (std::size_t i = 0; i < out.strategy.iterations.size(); ++i) {
            double ref = out.reference.iterations[i].aicore_joules;
            double strat = out.strategy.iterations[i].aicore_joules;
            out.savings.push_back(ref > 0.0 ? 1.0 - strat / ref : 0.0);
        }
        return out;
    };

    Scenario clean = runScenario("clean (no drift)", {}, true, true);
    Scenario stale =
        runScenario("drift, stale strategy", drift, false, false);
    Scenario watchdog =
        runScenario("drift, watchdog + regen", drift, true, true);

    double savings_clean = tailMean(clean.savings, kTail);
    double savings_stale = tailMean(stale.savings, kTail);
    double savings_watchdog = tailMean(watchdog.savings, kTail);
    double stale_loss = savings_clean - savings_stale;
    double recovery_gap = savings_clean - savings_watchdog;

    Table summary("AICore energy savings vs max-frequency reference "
                  "(mean of final " + std::to_string(kTail)
                  + " iterations)");
    summary.setHeader({"scenario", "savings", "recals", "safe holds",
                       "fallbacks", "suspects", "dismissals"});
    for (const Scenario *s : {&clean, &stale, &watchdog}) {
        summary.addRow(
            {s->name, Table::pct(tailMean(s->savings, kTail), 2),
             std::to_string(s->strategy.recalibrations()),
             std::to_string(s->strategy.guard.safe_holds),
             std::to_string(s->strategy.guard.fallbacks),
             std::to_string(s->strategy.watchdog.suspects),
             std::to_string(s->strategy.watchdog.dismissals)});
    }
    summary.print(std::cout);

    std::cout << "\nper-iteration savings (watchdog scenario):\n";
    for (std::size_t i = 0; i < watchdog.savings.size(); ++i) {
        const calib::DriftIteration &it = watchdog.strategy.iterations[i];
        std::cout << "  iter " << i << ": savings "
                  << watchdog.savings[i] * 100.0 << "%, loss "
                  << it.loss * 100.0 << "%, |t-res| "
                  << it.mean_abs_time_residual * 100.0 << "%, |p-res| "
                  << it.mean_abs_power_residual * 100.0 << "%"
                  << (it.strategy_active ? "" : "  [fallback/hold]")
                  << (it.recalibrated ? "  <- recalibrated" : "") << "\n";
    }

    bool ok_stale = stale_loss > 0.05;
    bool ok_recovery = recovery_gap < 0.01;
    bool ok_control = clean.strategy.recalibrations() == 0;

    std::cout << "\nstale-strategy savings loss: " << stale_loss * 100.0
              << " points (" << (ok_stale ? "ok" : "VIOLATED")
              << ", bound > 5)\n"
              << "watchdog recovery gap: " << recovery_gap * 100.0
              << " points (" << (ok_recovery ? "ok" : "VIOLATED")
              << ", bound < 1)\n"
              << "control recalibrations: "
              << clean.strategy.recalibrations() << " ("
              << (ok_control ? "ok" : "VIOLATED") << ", bound = 0)\n";

    bench::BenchJson json("drift");
    json.add("savings_clean", savings_clean, "fraction");
    json.add("savings_stale", savings_stale, "fraction");
    json.add("savings_watchdog", savings_watchdog, "fraction");
    json.add("stale_savings_loss", stale_loss, "fraction");
    json.add("recovery_gap", recovery_gap, "fraction");
    json.add("control_recalibrations",
             static_cast<double>(clean.strategy.recalibrations()),
             "count");
    json.add("watchdog_recalibrations",
             static_cast<double>(watchdog.strategy.recalibrations()),
             "count");
    json.add("watchdog_safe_holds",
             static_cast<double>(watchdog.strategy.guard.safe_holds),
             "count");
    json.add("final_time_scale_global",
             watchdog.strategy.patch.time_scale_global, "scale");
    json.add("final_power_dynamic_scale",
             watchdog.strategy.patch.power_dynamic_scale, "scale");
    json.write();
    return 0;
}
