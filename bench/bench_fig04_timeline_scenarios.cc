/**
 * @file
 * Figs. 4-8 reproduction: the four execution-timeline scenarios of
 * Sect. 4.2.  For one operator per scenario, prints the Cycle(f)
 * series over the supported range, verifies convexity, and reports the
 * symbolic piecewise-linear structure (segment count, kink positions,
 * increasing slopes) that Sect. 4.3's model construction relies on.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "math/piecewise_linear.h"
#include "perf/timeline_analysis.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_fig04_timeline_scenarios",
                  "Figs. 4-8 (Sect. 4.2): per-scenario Cycle(f) curves");

    npu::MemorySystem memory;

    struct Case
    {
        const char *name;
        npu::Scenario scenario;
    };
    const Case cases[] = {
        {"PingPong-free, independent Ld/St (Eq. 5 / Fig. 5)",
         npu::Scenario::PingPongFreeIndependent},
        {"PingPong-free, dependent Ld/St (Eq. 6 / Fig. 6)",
         npu::Scenario::PingPongFreeDependent},
        {"PingPong, independent Ld/St (Eq. 7 / Fig. 7)",
         npu::Scenario::PingPongIndependent},
        {"PingPong, dependent Ld/St (Eq. 8 / Fig. 8)",
         npu::Scenario::PingPongDependent},
    };

    for (const Case &c : cases) {
        npu::HwOpParams op;
        op.scenario = c.scenario;
        op.n = 8;
        op.core_cycles = 250'000.0;
        op.ld_volume_bytes = 1.2e6;
        op.ld_l2_hit = 0.25;
        op.st_volume_bytes = 6.0e5;
        op.st_l2_hit = 0.6;
        op.t0_seconds = 4e-7;

        npu::AicoreTimeline timeline(op, memory);
        Table table(c.name);
        table.setHeader({"f (MHz)", "cycles (k)", "time (us)"});
        std::vector<double> fs, cycles;
        for (double f = 1000.0; f <= 1800.0; f += 100.0) {
            fs.push_back(f);
            cycles.push_back(timeline.cycles(f));
            table.addRow({Table::num(f, 0),
                          Table::num(timeline.cycles(f) / 1e3, 1),
                          Table::num(timeline.seconds(f) * 1e6, 1)});
        }
        table.print(std::cout);

        bool convex = math::isConvexSamples(fs, cycles);
        auto analysis = perf::analyzeTimeline(op, memory, 1000.0, 1800.0);
        std::cout << "convex: " << (convex ? "yes" : "NO") << ", pwl segments in range: "
                  << analysis.segments << ", kinks at:";
        if (analysis.breakpoints_mhz.empty())
            std::cout << " (none)";
        for (double bp : analysis.breakpoints_mhz)
            std::cout << " " << Table::num(bp, 0) << "MHz";
        std::cout << ", slope " << analysis.low_slope << " -> "
                  << analysis.high_slope
                  << " cycles/Hz (non-decreasing => convex PWL)\n\n";
    }
    return 0;
}
