/**
 * @file
 * Shard-scaling benchmark for the clustered strategy service.
 *
 *   1. aggregate exact-hit capacity at 1, 2 and 4 shards.  Each shard
 *      is measured in isolation (its own storm of routing clients over
 *      keys the ring assigns to it) and the aggregate is the sum.
 *      The fleet topology models one machine per shard; storming all
 *      shards concurrently on one container would measure the
 *      container's core count, not the architecture (colocated event
 *      loops just timeshare), so the per-shard capacity is the honest
 *      unit.  Routing stays real: every request goes through a
 *      ShardRouter against the live map, and each shard only ever
 *      serves keys it owns.
 *   2. cross-shard warm starts: six unrelated workload families, each
 *      contributing one primed base and one similar follow-up whose
 *      ring owner differs from the base's owner.  Without the
 *      peer-donor protocol the follow-up's owner has no similar
 *      strategy (cross-family similarity is far below the warm-start
 *      threshold) and must run a cold search; with peers enabled the
 *      owner imports the base from its peer and warm-starts.  The
 *      conversion rate and the cold-vs-donor-warmed p50 are reported.
 *
 * Emits BENCH_shard.json with the aggregate rps per fleet size, the
 * 2-shard and 4-shard scaling factors, the donor conversion rate and
 * the cold-vs-donor-warmed p50.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "models/transformer.h"
#include "net/peer.h"
#include "net/router.h"
#include "net/server.h"
#include "serve/service.h"
#include "shard/shard_map.h"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One model family; seq varies within it, everything else is fixed. */
struct Family
{
    int hidden = 0;
    int layers = 0;
    int heads = 0;
};

/**
 * The donor-scenario families.  Within a family, seq and seq+8 are
 * ~0.996 similar; across families the worst pair sits near 0.70 —
 * comfortably on both sides of the 0.90 warm-start threshold, so a
 * variant can only ever warm-start from its own family's base.
 */
const std::vector<Family> kFamilies = {
    {256, 2, 4},  {512, 4, 8},   {1024, 2, 8},
    {2048, 4, 16}, {4096, 2, 16}, {8192, 3, 32},
};

opdvfs::net::WireRequest
familyRequest(const opdvfs::npu::NpuConfig &chip,
              const opdvfs::npu::MemorySystem &memory,
              const Family &family, int seq)
{
    opdvfs::models::TransformerConfig model;
    model.name = "shard-bench";
    model.layers = family.layers;
    model.hidden = family.hidden;
    model.heads = family.heads;
    model.seq = seq;
    opdvfs::net::WireRequest request;
    request.workload =
        opdvfs::models::buildTransformerTraining(memory, model, 5);
    request.chip = chip;
    request.seed = 11;
    return request;
}

/** One in-process shard, wired exactly as strategy_server --shard-id. */
struct Shard
{
    std::shared_ptr<opdvfs::shard::SharedShardMap> map;
    std::shared_ptr<opdvfs::net::ShardPeers> peers;
    std::unique_ptr<opdvfs::serve::StrategyService> service;
    std::unique_ptr<opdvfs::net::StrategyServer> server;
    std::uint32_t id = 0;
};

struct Fleet
{
    Fleet() = default;
    Fleet(Fleet &&) = default;
    Fleet &operator=(Fleet &&) = default;

    std::vector<std::unique_ptr<Shard>> shards;

    opdvfs::shard::ShardMap clientMap() const
    {
        return *shards.front()->map->snapshot();
    }

    void stop()
    {
        for (auto &shard : shards)
            shard->server->stop();
    }
};

Fleet
makeFleet(std::size_t count, bool enable_peer_donors)
{
    using namespace opdvfs;
    Fleet fleet;
    for (std::size_t at = 0; at < count; ++at) {
        auto shard = std::make_unique<Shard>();
        shard->id = static_cast<std::uint32_t>(at + 1);
        shard->map = std::make_shared<opdvfs::shard::SharedShardMap>();
        shard->peers =
            std::make_shared<net::ShardPeers>(shard->id, shard->map);

        serve::ServiceOptions options;
        options.pipeline = bench::standardPipeline(0.02);
        options.pipeline.warmup_seconds = 2.0;
        options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
        // A paper-scale GA budget: big enough that the search (not the
        // per-request profiling) dominates a cold request, so the
        // donor scenario's warm-vs-cold comparison measures what the
        // saved generations buy.
        options.pipeline.ga.population = 40;
        options.pipeline.ga.generations = 90;
        options.workers = 2;
        if (enable_peer_donors)
            options.peer_donor_lookup =
                net::makePeerDonorLookup(shard->peers);
        shard->service =
            std::make_unique<serve::StrategyService>(options);

        net::ServerOptions server_options;
        server_options.max_connections = 128;
        server_options.shard_id = shard->id;
        server_options.shard_map = shard->map;
        server_options.peers = shard->peers;
        shard->server = std::make_unique<net::StrategyServer>(
            *shard->service, server_options);
        shard->server->start();
        fleet.shards.push_back(std::move(shard));
    }
    for (auto &owner : fleet.shards)
        for (auto &member : fleet.shards)
            owner->map->join(
                {member->id,
                 "127.0.0.1:"
                     + std::to_string(member->server->port())});
    return fleet;
}

/**
 * Pick @p per_shard requests the ring assigns to every shard, scanning
 * seq variants of one family (single-family: scenario 1 is about exact
 * hits, so similarity between keys is irrelevant).
 */
std::map<std::uint32_t, std::vector<opdvfs::net::WireRequest>>
keysPerShard(const opdvfs::npu::NpuConfig &chip,
             const opdvfs::npu::MemorySystem &memory,
             const opdvfs::shard::ShardMap &map, std::size_t shard_count,
             std::size_t per_shard)
{
    using namespace opdvfs;
    std::map<std::uint32_t, std::vector<net::WireRequest>> keys;
    const Family scan_family = {1024, 2, 8};
    for (int seq = 128; seq < 128 + 8 * 512; seq += 8) {
        net::WireRequest request =
            familyRequest(chip, memory, scan_family, seq);
        std::uint32_t owner =
            map.ownerOf(net::ShardRouter::requestDigest(request)).id;
        if (keys[owner].size() < per_shard)
            keys[owner].push_back(std::move(request));
        bool done = keys.size() == shard_count;
        for (const auto &entry : keys)
            done = done && entry.second.size() == per_shard;
        if (done)
            return keys;
    }
    std::cerr << "could not cover every shard with owned keys\n";
    std::exit(1);
}

/** All clients hammer the primed working set; aggregate rps. */
double
exactHitStorm(const Fleet &fleet,
              const std::vector<opdvfs::net::WireRequest> &working_set,
              std::size_t clients, int requests_per_client)
{
    using namespace opdvfs;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> completed{0};
    auto start = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            net::ShardRouter router(fleet.clientMap());
            for (int i = 0; i < requests_per_client; ++i) {
                router.call(
                    working_set[(c + static_cast<std::size_t>(i))
                                % working_set.size()]);
                completed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    double wall = secondsSince(start);
    return static_cast<double>(completed.load()) / wall;
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

} // namespace

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_shard_scaling",
                  "consistent-hash sharding: aggregate exact-hit "
                  "capacity and cross-shard warm starts");
    std::cout << "hardware_concurrency: "
              << std::thread::hardware_concurrency() << "\n\n";

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);

    constexpr std::size_t kKeysPerShard = 2;
    constexpr std::size_t kClients = 4;
    constexpr int kRequestsPerClient = 300;

    // --- 1: aggregate exact-hit capacity at 1 / 2 / 4 shards ------------
    // Per-shard capacity measured in isolation (one machine per shard);
    // the aggregate is the sum.  See the file comment for why a
    // concurrent colocated storm would measure the container instead.
    std::vector<std::size_t> fleet_sizes = {1, 2, 4};
    std::vector<double> rps_by_size;
    for (std::size_t size : fleet_sizes) {
        Fleet fleet = makeFleet(size, /*enable_peer_donors=*/false);
        auto keys = keysPerShard(chip, memory, fleet.clientMap(), size,
                                 kKeysPerShard);
        net::ShardRouter primer(fleet.clientMap());
        for (const auto &entry : keys)
            for (const auto &request : entry.second)
                primer.call(request);
        double aggregate = 0.0;
        for (const auto &shard : fleet.shards) {
            double rps = exactHitStorm(fleet, keys[shard->id], kClients,
                                       kRequestsPerClient);
            std::cout << "  " << size << "-shard fleet, shard "
                      << shard->id << ": " << rps
                      << " exact-hit rps in isolation\n";
            aggregate += rps;
        }
        rps_by_size.push_back(aggregate);
        std::cout << size << " shard" << (size > 1 ? "s" : " ") << ": "
                  << aggregate << " exact-hit rps aggregate "
                  << "(sum of per-shard isolated capacity)\n";
        fleet.stop();
    }
    double scaling_2 =
        rps_by_size[0] > 0.0 ? rps_by_size[1] / rps_by_size[0] : 0.0;
    double scaling_4 =
        rps_by_size[0] > 0.0 ? rps_by_size[2] / rps_by_size[0] : 0.0;
    std::cout << "scaling: 2 shards " << scaling_2 << "x, 4 shards "
              << scaling_4 << "x\n\n";

    // --- 2: would-be-cold requests without peers ------------------------
    // One (base, variant) pair per family, the variant chosen so its
    // ring owner differs from the base's: the pairs whose donor lives
    // on another shard are exactly the requests the peer-donor
    // protocol exists for.  Ownership depends only on shard ids, so
    // the no-peer fleet sees the identical pair set the peer fleet
    // does.
    std::vector<net::WireRequest> bases;
    std::vector<net::WireRequest> similars;
    {
        Fleet probe = makeFleet(2, /*enable_peer_donors=*/false);
        shard::ShardMap map = probe.clientMap();
        for (const Family &family : kFamilies) {
            bool found = false;
            for (int seq = 256; seq < 256 + 16 * 128; seq += 16) {
                net::WireRequest base =
                    familyRequest(chip, memory, family, seq);
                net::WireRequest variant =
                    familyRequest(chip, memory, family, seq + 8);
                std::uint32_t base_owner =
                    map.ownerOf(net::ShardRouter::requestDigest(base))
                        .id;
                std::uint32_t variant_owner =
                    map.ownerOf(
                           net::ShardRouter::requestDigest(variant))
                        .id;
                if (base_owner != variant_owner) {
                    bases.push_back(std::move(base));
                    similars.push_back(std::move(variant));
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::cerr << "no cross-shard pair in family hidden="
                          << family.hidden << "\n";
                return 1;
            }
        }
        probe.stop();
    }

    std::vector<bool> would_be_cold(similars.size(), false);
    std::vector<double> cold_seconds;
    {
        Fleet fleet = makeFleet(2, /*enable_peer_donors=*/false);
        net::ShardRouter router(fleet.clientMap());
        for (const auto &request : bases)
            router.call(request);
        for (std::size_t at = 0; at < similars.size(); ++at) {
            net::WireResponse response = router.call(similars[at]);
            if (response.provenance == serve::Provenance::Cold) {
                would_be_cold[at] = true;
                cold_seconds.push_back(response.service_seconds);
            }
        }
        fleet.stop();
    }
    std::size_t cold_count = cold_seconds.size();
    std::cout << "without peers: " << cold_count << " of "
              << similars.size()
              << " cross-shard similar requests ran a cold search (p50 "
              << median(cold_seconds) << " s)\n";

    // --- 3: the same requests with the peer-donor protocol --------------
    std::size_t converted = 0;
    std::vector<double> donor_seconds;
    std::vector<double> donor_generations_saved;
    std::uint64_t donor_queries = 0;
    std::uint64_t donor_hits = 0;
    {
        Fleet fleet = makeFleet(2, /*enable_peer_donors=*/true);
        net::ShardRouter router(fleet.clientMap());
        for (const auto &request : bases)
            router.call(request);
        for (std::size_t at = 0; at < similars.size(); ++at) {
            net::WireResponse response = router.call(similars[at]);
            if (!would_be_cold[at])
                continue;
            if (response.provenance == serve::Provenance::WarmStart) {
                ++converted;
                donor_seconds.push_back(response.service_seconds);
                donor_generations_saved.push_back(
                    static_cast<double>(response.generations_saved));
            }
        }
        for (auto &shard : fleet.shards) {
            serve::ServiceStats stats = shard->service->stats();
            donor_queries += stats.peer_donor_queries;
            donor_hits += stats.peer_donor_hits;
        }
        fleet.stop();
    }
    double conversion =
        cold_count > 0
            ? static_cast<double>(converted)
                  / static_cast<double>(cold_count)
            : 0.0;
    std::cout << "with peers:    " << converted << " of " << cold_count
              << " would-be-cold requests warm-started from a peer "
                 "donor ("
              << conversion * 100.0 << "%, p50 "
              << median(donor_seconds) << " s, p50 "
              << median(donor_generations_saved)
              << " GA generations saved); " << donor_hits << "/"
              << donor_queries << " donor queries hit\n";

    bench::BenchJson json("shard");
    json.add("exact_hit_rps_1shard", rps_by_size[0], "rps");
    json.add("exact_hit_rps_2shard", rps_by_size[1], "rps");
    json.add("exact_hit_rps_4shard", rps_by_size[2], "rps");
    json.add("scaling_2_over_1", scaling_2, "x");
    json.add("scaling_4_over_1", scaling_4, "x");
    json.add("would_be_cold", static_cast<double>(cold_count), "count");
    json.add("peer_donor_converted", static_cast<double>(converted),
             "count");
    json.add("donor_conversion_rate", conversion, "ratio");
    json.add("cold_p50_no_donors", median(cold_seconds), "s");
    json.add("warm_p50_with_donors", median(donor_seconds), "s");
    json.add("donor_speedup",
             median(donor_seconds) > 0.0
                 ? median(cold_seconds) / median(donor_seconds)
                 : 0.0,
             "x");
    json.add("donor_generations_saved_p50",
             median(donor_generations_saved), "generations");
    json.write();
    return 0;
}
