/**
 * @file
 * Fig. 18 reproduction (Sect. 7.4): comparative experiments on GPT-3.
 *
 *  - "Ours": 1 ms SetFreq latency, 5 ms frequency adjustment interval.
 *  - "14 ms delay": the chip's true SetFreq latency is raised to 15 ms
 *    while the executor still compensates for 1 ms, emulating the
 *    NVIDIA V100's frequency-control delay: every change lands 14 ms
 *    late.
 *  - "FAI 100 ms" and "FAI 1 s": coarser candidate merging, fewer
 *    SetFreq commands, coarser-grained control.
 *
 * The paper's expected shape: the delayed and coarse configurations
 * keep (or worsen) the performance loss while giving up a large part
 * of the power savings.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "models/model_zoo.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_fig18_comparative",
                  "Fig. 18 (Sect. 7.4): SetFreq-delay and FAI ablations");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    models::Workload gpt3 = models::buildWorkload("GPT3", memory, 1);

    struct Config
    {
        std::string name;
        Tick true_latency;
        Tick fai;
    };
    const std::vector<Config> configs = {
        {"ours (1ms, FAI 5ms)", kTicksPerMs, 5 * kTicksPerMs},
        {"14ms SetFreq delay (V100-like)", 15 * kTicksPerMs,
         5 * kTicksPerMs},
        {"FAI 100ms", kTicksPerMs, 100 * kTicksPerMs},
        {"FAI 1s", kTicksPerMs, kTicksPerSecond},
    };

    Table table("Fig. 18: GPT-3 at the 2% loss target");
    table.setHeader({"configuration", "SetFreq/iter", "perf loss",
                     "SoC reduction", "AICore reduction"});

    for (const Config &config : configs) {
        dvfs::PipelineOptions options = bench::standardPipeline(0.02);
        options.chip.set_freq_latency = config.true_latency;
        options.preprocess.fai = config.fai;
        options.seed = 5;

        dvfs::EnergyPipeline pipeline(options);
        dvfs::PipelineResult result = pipeline.optimize(gpt3);
        table.addRow({config.name,
                      std::to_string(result.dvfs.set_freq_count),
                      Table::pct(result.perfLoss(), 2),
                      Table::pct(result.socReduction(), 2),
                      Table::pct(result.aicoreReduction(), 2)});
    }

    table.print(std::cout);
    std::cout << "\npaper: ours 1.59% loss / 5.56% SoC / 15.27% AICore; "
                 "14ms delay 1.69% / 3.41% / 7.07%; FAI 100ms (38 "
                 "SetFreq) 1.74% / 3.60% / 9.30%; FAI 1s (4 SetFreq) "
                 "1.97% / 3.48% / 10.09%\n"
              << "expected shape: both the control delay and coarse "
                 "intervals forfeit a large share of the savings\n";
    return 0;
}
