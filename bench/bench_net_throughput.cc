/**
 * @file
 * Network serving benchmark: what the TCP front end adds on top of
 * the in-process StrategyService.
 *
 *   1. cold request latency over loopback (full pipeline + wire)
 *   2. exact-hit latency and RPS, one connection (codec + event loop
 *      dominate: the service answers from the cache in microseconds)
 *   3. exact-hit RPS with 4 concurrent connections (event-loop
 *      scaling; requests coalesce on the same cache entry)
 *   4. open-loop storm over 256 connections: every connection sends
 *      on a fixed arrival schedule (independent of completions, as
 *      far as one in-flight request per connection allows), offered
 *      at 2x the closed-loop 4-connection rate — achieved rps close
 *      to offered means the event loop absorbs a fleet-sized
 *      connection count; a latency blow-up means it saturated
 *   5. worker-path baseline: the same exact-hit traffic with the
 *      reactor fast path disabled (decode -> worker -> re-encode),
 *      the denominator for the fast-path speedup
 *   6. exact-hit open-loop storm over 256 connections across reactor
 *      counts {1, 2, 4}, offered past saturation (2x a closed-loop
 *      probe), measuring fast-path capacity and reactor scaling
 *
 * Emits BENCH_net.json with RPS and p50/p95 per scenario.  On a
 * single-core host the reactor-scaling numbers measure overhead, not
 * parallelism — clients, reactors and workers share one CPU.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "models/transformer.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/service.h"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

opdvfs::models::Workload
transformerVariant(const opdvfs::npu::MemorySystem &memory, int seq)
{
    opdvfs::models::TransformerConfig model;
    model.name = "net-bench";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    return opdvfs::models::buildTransformerTraining(memory, model, 5);
}

opdvfs::net::WireRequest
wireRequest(const opdvfs::npu::NpuConfig &chip,
            const opdvfs::npu::MemorySystem &memory, int seq)
{
    opdvfs::net::WireRequest request;
    request.workload = transformerVariant(memory, seq);
    request.chip = chip;
    request.seed = 11;
    return request;
}

struct LatencyStats
{
    double p50 = 0.0;
    double p95 = 0.0;
    double rps = 0.0;
    /** Calls that failed (deadline, Busy retries exhausted, breaker);
     *  only the open-loop storm populates this — at saturation,
     *  failures are a measurement, not a bug. */
    std::uint64_t errors = 0;
};

LatencyStats
summarise(std::vector<double> latencies, double wall_seconds)
{
    LatencyStats stats;
    if (latencies.empty())
        return stats;
    std::sort(latencies.begin(), latencies.end());
    stats.p50 = latencies[latencies.size() / 2];
    stats.p95 = latencies[latencies.size() * 95 / 100];
    stats.rps = static_cast<double>(latencies.size()) / wall_seconds;
    return stats;
}

/**
 * Open-loop storm: @p connections clients each send on a fixed
 * arrival schedule — request i goes out at (i * connections /
 * offered_rps) seconds after the common start, whether or not earlier
 * requests have completed (late completions simply eat into the wait;
 * the schedule never shifts).  Returns completion latency percentiles
 * measured from the *scheduled* send time, so queueing delay shows up
 * as latency exactly as an outside observer would see it.
 */
LatencyStats
openLoopStorm(std::uint16_t port, const opdvfs::net::WireRequest &request,
              std::size_t connections, double offered_rps,
              double duration_seconds)
{
    int per_connection = std::max(
        1, static_cast<int>(offered_rps * duration_seconds
                            / static_cast<double>(connections)));
    double interval =
        static_cast<double>(connections) / offered_rps; // per connection
    std::vector<std::vector<double>> latencies(connections);
    std::atomic<std::uint64_t> errors{0};
    std::vector<std::thread> threads;
    auto start = Clock::now() + std::chrono::milliseconds(200);
    for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            std::unique_ptr<opdvfs::net::StrategyClient> client;
            latencies[c].reserve(static_cast<std::size_t>(per_connection));
            // Stagger connections across one interval so arrivals
            // spread instead of beating in lockstep.
            auto offset = std::chrono::duration<double>(
                interval * static_cast<double>(c)
                / static_cast<double>(connections));
            for (int i = 0; i < per_connection; ++i) {
                auto scheduled =
                    start
                    + std::chrono::duration_cast<Clock::duration>(
                        offset
                        + std::chrono::duration<double>(interval * i));
                std::this_thread::sleep_until(scheduled);
                // A storm offered above capacity legitimately blows
                // deadlines and exhausts retries; count those instead
                // of crashing — the error rate IS the saturation
                // signal.  The client is rebuilt after a failure so a
                // desynced connection cannot poison later calls.
                try {
                    if (!client)
                        client = std::make_unique<
                            opdvfs::net::StrategyClient>("127.0.0.1",
                                                         port);
                    client->call(request);
                    latencies[c].push_back(
                        std::chrono::duration<double>(Clock::now()
                                                      - scheduled)
                            .count());
                } catch (const std::exception &) {
                    errors.fetch_add(1, std::memory_order_relaxed);
                    client.reset();
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    double wall = secondsSince(start);
    std::vector<double> merged;
    for (const auto &per_conn : latencies)
        merged.insert(merged.end(), per_conn.begin(), per_conn.end());
    LatencyStats stats = summarise(std::move(merged), wall);
    stats.errors = errors.load();
    return stats;
}

/** Hammer one already-cached request over @p connections clients. */
LatencyStats
exactHitStorm(std::uint16_t port, const opdvfs::net::WireRequest &request,
              std::size_t connections, int requests_per_connection)
{
    std::vector<std::vector<double>> latencies(connections);
    std::vector<std::thread> threads;
    auto start = Clock::now();
    for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            opdvfs::net::StrategyClient client("127.0.0.1", port);
            latencies[c].reserve(
                static_cast<std::size_t>(requests_per_connection));
            for (int i = 0; i < requests_per_connection; ++i) {
                auto begin = Clock::now();
                client.call(request);
                latencies[c].push_back(secondsSince(begin));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    double wall = secondsSince(start);
    std::vector<double> merged;
    for (const auto &per_connection : latencies)
        merged.insert(merged.end(), per_connection.begin(),
                      per_connection.end());
    return summarise(std::move(merged), wall);
}

} // namespace

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_net_throughput",
                  "TCP serving layer: wire + event loop over the "
                  "strategy service");
    std::cout << "hardware_concurrency: "
              << std::thread::hardware_concurrency() << "\n\n";

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);

    serve::ServiceOptions options;
    options.pipeline = bench::standardPipeline(0.02);
    options.pipeline.warmup_seconds = 4.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 60;
    options.pipeline.ga.generations = 60;
    options.workers = 4;
    serve::StrategyService service(options);

    net::ServerOptions server_options;
    server_options.max_connections = 512; // the open-loop storm needs 256
    net::StrategyServer server(service, server_options);
    server.start();
    std::cout << "serving on 127.0.0.1:" << server.port() << "\n";

    // --- 1: cold latency over the wire ----------------------------------
    net::StrategyClient client("127.0.0.1", server.port());
    std::vector<double> cold_latencies;
    for (int seq : {192, 224, 256, 288}) {
        net::WireRequest request = wireRequest(chip, memory, seq);
        auto begin = Clock::now();
        net::WireResponse response = client.call(request);
        cold_latencies.push_back(secondsSince(begin));
        std::cout << "cold seq " << seq << ": "
                  << cold_latencies.back() << " s (provenance "
                  << serve::provenanceToken(response.provenance)
                  << ")\n";
    }
    double cold_wall = 0.0;
    for (double latency : cold_latencies)
        cold_wall += latency;
    LatencyStats cold = summarise(cold_latencies, cold_wall);

    // --- 2: exact hits, one connection ----------------------------------
    net::WireRequest hot = wireRequest(chip, memory, 256);
    constexpr int kHitsPerConnection = 250;
    LatencyStats one = exactHitStorm(server.port(), hot, 1,
                                     kHitsPerConnection);
    std::cout << "\nexact hit, 1 connection:  p50 " << one.p50
              << " s, p95 " << one.p95 << " s, " << one.rps << " rps\n";

    // --- 3: exact hits, four connections --------------------------------
    LatencyStats four = exactHitStorm(server.port(), hot, 4,
                                      kHitsPerConnection);
    std::cout << "exact hit, 4 connections: p50 " << four.p50
              << " s, p95 " << four.p95 << " s, " << four.rps
              << " rps\n";

    // --- 4: open-loop storm over 256 connections ------------------------
    constexpr std::size_t kStormConnections = 256;
    double offered = std::max(2000.0, 2.0 * four.rps);
    LatencyStats storm = openLoopStorm(server.port(), hot,
                                       kStormConnections, offered, 3.0);
    std::cout << "open loop, " << kStormConnections
              << " connections: offered " << offered << " rps, achieved "
              << storm.rps << " rps, p50 " << storm.p50 << " s, p95 "
              << storm.p95 << " s, " << storm.errors
              << " failed calls\n";

    std::cout << "\ncold p50 " << cold.p50 << " s vs exact-hit p50 "
              << one.p50 << " s ("
              << (cold.p50 > 0.0 ? one.p50 / cold.p50 * 100.0 : 0.0)
              << "% of cold)\n";

    // Server::stop() permanently drains the shared service, so every
    // extra server below stays alive (idle reactors cost a poll wait)
    // until all measurement is done; they all stop at the end.
    std::vector<std::unique_ptr<net::StrategyServer>> extra_servers;

    // --- 5: worker-path baseline (fast path disabled) -------------------
    // The machine-relative denominator for the fast-path speedup: the
    // same exact-hit traffic forced through the worker hop (decode ->
    // submit -> future -> re-encode), as every request travelled
    // before the reactor fast path existed.
    net::ServerOptions worker_options;
    worker_options.max_connections = 512;
    worker_options.fast_exact_hits = false;
    LatencyStats worker_path;
    {
        extra_servers.push_back(std::make_unique<net::StrategyServer>(
            service, worker_options));
        net::StrategyServer &baseline = *extra_servers.back();
        baseline.start();
        net::StrategyClient warm("127.0.0.1", baseline.port());
        warm.call(hot);
        worker_path = exactHitStorm(baseline.port(), hot, 4,
                                    kHitsPerConnection);
    }
    std::cout << "\nworker path (fast path off), 4 connections: "
              << worker_path.rps << " rps, p50 " << worker_path.p50
              << " s\n";

    // --- 6: exact-hit open-loop storm across reactor counts -------------
    // 256 connections per run; offered rate adapts to the machine (2x
    // a closed-loop probe) so the storm is always past saturation and
    // achieved rps measures capacity, not the schedule.
    constexpr int kReactorCounts[] = {1, 2, 4};
    LatencyStats reactor_storm[3];
    LatencyStats reactor_closed[3];
    double reactor_offered[3] = {0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < 3; ++i) {
        net::ServerOptions storm_options;
        storm_options.max_connections = 512;
        storm_options.reactor_threads =
            static_cast<std::size_t>(kReactorCounts[i]);
        extra_servers.push_back(std::make_unique<net::StrategyServer>(
            service, storm_options));
        net::StrategyServer &storm_server = *extra_servers.back();
        storm_server.start();
        // First call rides the worker path and publishes the
        // pre-encoded frame; everything after is on the reactors.
        net::StrategyClient warm("127.0.0.1", storm_server.port());
        warm.call(hot);
        reactor_closed[i] =
            exactHitStorm(storm_server.port(), hot, 8, 100);
        reactor_offered[i] =
            2.0 * std::max(1000.0, reactor_closed[i].rps);
        reactor_storm[i] =
            openLoopStorm(storm_server.port(), hot, kStormConnections,
                          reactor_offered[i], 3.0);
        net::ServerStats stats = storm_server.stats();
        std::cout << "exact-hit closed loop, " << kReactorCounts[i]
                  << " reactor(s), 8 connections: "
                  << reactor_closed[i].rps << " rps\n";
        std::cout << "exact-hit storm, " << kReactorCounts[i]
                  << " reactor(s), " << kStormConnections
                  << " connections: offered " << reactor_offered[i]
                  << " rps, achieved " << reactor_storm[i].rps
                  << " rps, p50 " << reactor_storm[i].p50 << " s, p95 "
                  << reactor_storm[i].p95 << " s, "
                  << reactor_storm[i].errors << " failed calls, "
                  << stats.fast_path_hits << " fast-path hits\n";
    }
    // Closed-loop over closed-loop: both sides measured the same way,
    // so the ratio isolates the fast path (the open-loop storm is
    // client-bound on small hosts and measures saturation behaviour,
    // not capacity).
    double fast_path_speedup =
        worker_path.rps > 0.0 ? four.rps / worker_path.rps : 0.0;
    double reactor_scaling = reactor_closed[0].rps > 0.0
                                 ? reactor_closed[2].rps
                                       / reactor_closed[0].rps
                                 : 0.0;
    std::cout << "fast-path speedup over worker path: "
              << fast_path_speedup << "x; reactor scaling 4/1: "
              << reactor_scaling << "x\n";

    server.stop(); // drains the shared service
    for (auto &extra : extra_servers)
        extra->stop();
    extra_servers.clear();

    bench::BenchJson json("net");
    json.add("cold_p50", cold.p50, "s");
    json.add("cold_p95", cold.p95, "s");
    json.add("exact_hit_p50_1conn", one.p50, "s");
    json.add("exact_hit_p95_1conn", one.p95, "s");
    json.add("exact_hit_rps_1conn", one.rps, "rps");
    json.add("exact_hit_p50_4conn", four.p50, "s");
    json.add("exact_hit_p95_4conn", four.p95, "s");
    json.add("exact_hit_rps_4conn", four.rps, "rps");
    json.add("conn_scaling_4_over_1",
             one.rps > 0.0 ? four.rps / one.rps : 0.0, "x");
    json.add("open_loop_offered_256conn", offered, "rps");
    json.add("open_loop_achieved_256conn", storm.rps, "rps");
    json.add("open_loop_p50_256conn", storm.p50, "s");
    json.add("open_loop_p95_256conn", storm.p95, "s");
    json.add("open_loop_errors_256conn",
             static_cast<double>(storm.errors), "count");
    json.add("exact_hit_fraction_of_cold",
             cold.p50 > 0.0 ? one.p50 / cold.p50 : 0.0, "ratio");
    json.add("worker_path_rps_4conn", worker_path.rps, "rps");
    json.add("worker_path_p50_4conn", worker_path.p50, "s");
    for (std::size_t i = 0; i < 3; ++i) {
        std::string suffix =
            "_r" + std::to_string(kReactorCounts[i]);
        json.add("exact_hit_closed_rps" + suffix,
                 reactor_closed[i].rps, "rps");
        json.add("exact_hit_storm_offered" + suffix,
                 reactor_offered[i], "rps");
        json.add("exact_hit_storm_rps" + suffix, reactor_storm[i].rps,
                 "rps");
        json.add("exact_hit_storm_p50" + suffix, reactor_storm[i].p50,
                 "s");
        json.add("exact_hit_storm_p95" + suffix, reactor_storm[i].p95,
                 "s");
        json.add("exact_hit_storm_errors" + suffix,
                 static_cast<double>(reactor_storm[i].errors), "count");
    }
    json.add("fast_path_speedup", fast_path_speedup, "x");
    json.add("reactor_scaling_4_over_1", reactor_scaling, "x");
    json.write();
    return 0;
}
