/**
 * @file
 * Microbenchmark (google-benchmark): per-case cost of the property
 * tier's generators and oracles (src/check).  These figures size the
 * OPDVFS_PROP_CASES budget — the ctest default of 1,000 cases per
 * property and the CI depth of 10,000 both have to fit the prop job's
 * wall-clock envelope, and this is where to look when a new oracle
 * threatens it.
 */

#include <benchmark/benchmark.h>

#include "check/generators.h"
#include "check/oracles.h"
#include "check/prop.h"

namespace {

using namespace opdvfs;
using namespace opdvfs::check;

void
FitRecoveryCase(benchmark::State &state)
{
    std::uint64_t index = 0;
    for (auto _ : state) {
        Rng rng(caseSeed(1, index++));
        SyntheticWorkload workload = genSyntheticWorkload(rng, 1, 24);
        npu::FreqTableConfig freq = genFreqTableConfig(rng);
        auto failure = checkFitRecovery(workload, freq);
        if (failure.has_value())
            state.SkipWithError(failure->c_str());
        benchmark::DoNotOptimize(failure);
    }
}
BENCHMARK(FitRecoveryCase);

void
PreprocessInvariantsCase(benchmark::State &state)
{
    std::uint64_t index = 0;
    for (auto _ : state) {
        Rng rng(caseSeed(2, index++));
        std::vector<trace::OpRecord> records = genRecordStream(rng, 1, 64);
        dvfs::PreprocessOptions options;
        options.fai = static_cast<Tick>(rng.uniformInt(1, 20))
            * kTicksPerMs / 2;
        auto failure = checkPreprocessInvariants(records, options);
        if (failure.has_value())
            state.SkipWithError(failure->c_str());
        benchmark::DoNotOptimize(failure);
    }
}
BENCHMARK(PreprocessInvariantsCase);

void
StrategyRoundTripCase(benchmark::State &state)
{
    std::uint64_t index = 0;
    for (auto _ : state) {
        Rng rng(caseSeed(3, index++));
        npu::FreqTableConfig freq = genFreqTableConfig(rng);
        npu::FreqTable table(freq);
        dvfs::Strategy strategy = genStrategy(rng, table);
        auto failure = checkStrategyRoundTrip(strategy, &table);
        if (failure.has_value())
            state.SkipWithError(failure->c_str());
        benchmark::DoNotOptimize(failure);
    }
}
BENCHMARK(StrategyRoundTripCase);

void
GaVsExhaustiveCase(benchmark::State &state)
{
    std::uint64_t index = 0;
    for (auto _ : state) {
        Rng rng(caseSeed(4, index++));
        TinyProblem problem = genTinyProblem(rng, 4, 3);
        auto failure = checkGaOptimality(problem);
        if (failure.has_value())
            state.SkipWithError(failure->c_str());
        benchmark::DoNotOptimize(failure);
    }
}
BENCHMARK(GaVsExhaustiveCase);

} // namespace

BENCHMARK_MAIN();
