/**
 * @file
 * Cluster-deployment study (extension of the paper's Sect. 7.4 setup):
 * the GPT-3 slice runs tensor-parallel across 8 NPUs, so every
 * AllReduce synchronises the group.  What happens if the generated
 * DVFS strategy is rolled out to only part of the fleet?
 *
 * Expectation: slowed devices become stragglers - the whole group pays
 * their performance loss at every collective while only the slowed
 * devices save power.  The strategy only makes sense deployed
 * fleet-wide, which is how the paper applies it.
 */

#include <iostream>

#include "bench_common.h"
#include "cluster/cluster_runner.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "models/transformer.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_cluster_straggler",
                  "extension: partial vs fleet-wide strategy rollout on "
                  "an 8-NPU tensor-parallel group");

    cluster::ClusterConfig config;
    config.devices = 8;
    npu::MemorySystem memory(config.chip.memory);

    // A trimmed GPT-3 slice keeps the bench quick: same structure,
    // fewer layers/micro-batches.
    models::TransformerConfig model;
    model.name = "GPT3-slice";
    model.layers = 12;
    model.hidden = 12288;
    model.heads = 96;
    model.seq = 2048;
    model.batch = 2;
    model.tensor_parallel = 8;
    model.tp_allreduce = true;
    model.grad_allreduce = false;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 1);

    // A simple per-device strategy standing in for the GA output:
    // whole-iteration 1500 MHz (the fleet result reproduces the same
    // coupling whatever the strategy's fine structure).
    std::vector<trace::SetFreqTrigger> slow = {{0, 1500.0}};

    cluster::ClusterRunner runner(config);
    cluster::ClusterRunOptions options;
    options.warmup_iterations = 2;

    cluster::ClusterRunResult baseline = runner.run(workload, {}, options);

    Table table("strategy rollout across the group");
    table.setHeader({"deployment", "iter (ms)", "perf loss",
                     "mean AICore (W)", "AICore red.",
                     "wait at collectives (device-ms)"});

    auto add_row = [&](const std::string &name,
                       const cluster::ClusterRunResult &run) {
        table.addRow(
            {name, Table::num(run.iteration_seconds * 1e3, 1),
             Table::pct(run.iteration_seconds / baseline.iteration_seconds
                            - 1.0, 2),
             Table::num(run.aicoreAvgWatts(), 2),
             Table::pct(1.0 - run.aicoreAvgWatts()
                            / baseline.aicoreAvgWatts(), 2),
             Table::num(run.collective_wait_seconds * 1e3, 1)});
    };

    add_row("none (baseline, all 1800 MHz)", baseline);
    for (int slowed : {1, 4, 8}) {
        std::vector<std::vector<trace::SetFreqTrigger>> triggers(
            static_cast<std::size_t>(config.devices));
        for (int d = 0; d < slowed; ++d)
            triggers[static_cast<std::size_t>(d)] = slow;
        cluster::ClusterRunResult run =
            runner.run(workload, triggers, options);
        add_row(std::to_string(slowed) + " of 8 devices at 1500 MHz",
                run);
    }
    table.print(std::cout);

    std::cout << "\nreading: one straggler already costs the whole group "
                 "the full performance loss while saving only 1/8 of the "
                 "power - fine-grained DVFS strategies must ship "
                 "fleet-wide, as the paper deploys them\n";
    return 0;
}
