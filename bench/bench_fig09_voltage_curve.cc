/**
 * @file
 * Fig. 9 reproduction: the firmware voltage-frequency curve.  Voltage
 * is constant below the 1300 MHz knee and increases linearly with
 * frequency above it (Sect. 5.1).
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "npu/freq_table.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_fig09_voltage_curve",
                  "Fig. 9 (Sect. 5.1): voltage vs frequency");

    npu::FreqTable table;
    Table out("Voltage-Frequency on the simulated NPU");
    out.setHeader({"f (MHz)", "V (mV)", "region"});
    for (const auto &point : table.points()) {
        out.addRow({Table::num(point.mhz, 0),
                    Table::num(point.volts * 1000.0, 0),
                    point.mhz <= table.config().knee_mhz
                        ? "flat (below knee)"
                        : "linear (above knee)"});
    }
    out.print(std::cout);

    // Shape checks mirroring the figure.
    double v_min = table.voltageFor(table.minMhz());
    double v_knee = table.voltageFor(table.config().knee_mhz);
    double v_max = table.voltageFor(table.maxMhz());
    std::cout << "flat below knee: "
              << (v_min == v_knee ? "yes" : "NO") << "\n"
              << "rises above knee: " << (v_max > v_knee ? "yes" : "NO")
              << " (" << Table::num((v_max - v_knee) * 1000.0, 0)
              << " mV across "
              << Table::num(table.maxMhz() - table.config().knee_mhz, 0)
              << " MHz)\n";
    return 0;
}
