/**
 * @file
 * Table 2 reproduction (Sect. 7.3): power-model validation.
 *
 * For each study workload (GPT-3, BERT, VGG19, ResNet50, ViT and the
 * standalone Softmax/Tanh operator loops), measures steady-state
 * AICore and SoC power at every supported frequency, builds the model
 * from the 1000 MHz and 1800 MHz data only, predicts the held-out
 * frequencies, and reports the error buckets.  Repeats the prediction
 * with the temperature coefficient zeroed for the Sect. 7.3 ablation
 * (paper: 4.62% average with the temperature term, 4.97% without).
 */

#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/statistics.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "power/online_calibration.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_table2_powermodel",
                  "Table 2 (Sect. 7.3): power-model prediction errors");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    npu::FreqTable table(chip.freq);
    trace::WorkloadRunner runner(chip);

    const power::CalibratedConstants &constants =
        bench::calibratedConstants();
    power::PowerModel model(constants, table);
    power::PowerModel blind(constants.withoutTemperature(), table);

    std::vector<double> errors_with, errors_without;
    std::map<std::string, double> avg_by_model;

    for (const auto &name : models::powerStudyModels()) {
        models::Workload workload = models::buildWorkload(name, memory, 7);

        std::map<double, trace::RunResult> runs;
        for (double f : table.frequenciesMhz()) {
            trace::RunOptions options;
            options.initial_mhz = f;
            options.warmup_seconds = 20.0;
            options.seed = 2000 + static_cast<std::uint64_t>(f);
            runs[f] = runner.run(workload, options);
        }

        // Build from 1000 and 1800 MHz data (the paper's protocol).
        auto op = power::OnlinePowerCalibrator::calibrateWorkloadAggregate(
            model, {{1000.0, &runs[1000.0]}, {1800.0, &runs[1800.0]}});
        auto op_blind =
            power::OnlinePowerCalibrator::calibrateWorkloadAggregate(
                blind, {{1000.0, &runs[1000.0]}, {1800.0, &runs[1800.0]}});

        std::vector<double> model_errors;
        for (double f : table.frequenciesMhz()) {
            if (f == 1000.0 || f == 1800.0)
                continue;
            power::PowerPrediction with = model.predict(op, f);
            power::PowerPrediction without = blind.predict(op_blind, f);
            double soc_err = stats::relativeError(with.soc_watts,
                                                  runs[f].soc_avg_w);
            double core_err = stats::relativeError(with.aicore_watts,
                                                   runs[f].aicore_avg_w);
            errors_with.push_back(soc_err);
            errors_with.push_back(core_err);
            model_errors.push_back(soc_err);
            model_errors.push_back(core_err);
            errors_without.push_back(stats::relativeError(
                without.soc_watts, runs[f].soc_avg_w));
            errors_without.push_back(stats::relativeError(
                without.aicore_watts, runs[f].aicore_avg_w));
        }
        avg_by_model[name] = stats::mean(model_errors);
    }

    Table buckets("Table 2: prediction-error distribution");
    buckets.setHeader({"model variant", "(0,1%]", "(1%,5%]", "(5%,10%]",
                       "(10%,inf)", "avg"});
    auto add_row = [&buckets](const std::string &label,
                              const std::vector<double> &errors) {
        auto fractions =
            stats::bucketFractions(errors, {0.01, 0.05, 0.10});
        buckets.addRow({label, Table::pct(fractions[0], 1),
                        Table::pct(fractions[1], 1),
                        Table::pct(fractions[2], 1),
                        Table::pct(fractions[3], 1),
                        Table::pct(stats::mean(errors), 2)});
    };
    add_row("with temperature term", errors_with);
    add_row("without temperature (gamma = 0)", errors_without);
    buckets.print(std::cout);
    std::cout << "paper: 22.2% / 42.6% / ~15.8% / 19.4% (i.e. <5% for "
                 "64.8%, <10% for >80%), avg 4.62% with the temperature "
                 "term, 4.97% without\n\n";

    Table per_model("Average error per validation subject");
    per_model.setHeader({"workload", "avg error"});
    for (const auto &[name, avg] : avg_by_model)
        per_model.addRow({name, Table::pct(avg, 2)});
    per_model.print(std::cout);
    return 0;
}
