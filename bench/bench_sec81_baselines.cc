/**
 * @file
 * Sect. 8.1 + related-work baselines, on GPT-3 at the 2% target:
 *
 *  - model-based fine-grained search (this paper);
 *  - whole-program uniform frequency (the granularity of the prior
 *    GPU-DVFS work the introduction surveys);
 *  - model-free search (Sect. 8.1): identical scoring, but each
 *    candidate is measured by executing a full training iteration, so
 *    a 5-minute wall budget affords only ~30 evaluations (paper's
 *    arithmetic: 11 s per iteration).
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "dvfs/baselines.h"
#include "models/model_zoo.h"
#include "power/online_calibration.h"

int
main()
{
    using namespace opdvfs;
    bench::banner("bench_sec81_baselines",
                  "Sect. 8.1: model-based vs model-free vs uniform DVFS");

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);
    npu::FreqTable table(chip.freq);
    models::Workload gpt3 = models::buildWorkload("GPT3", memory, 1);
    trace::WorkloadRunner runner(chip);

    // --- model-based pipeline (the paper's approach) -----------------
    dvfs::PipelineOptions options = bench::standardPipeline(0.02);
    options.seed = 3;
    dvfs::EnergyPipeline pipeline(options);
    dvfs::PipelineResult fine = pipeline.optimize(gpt3);

    // --- uniform-frequency baseline on the same models ---------------
    power::PowerModel power_model(bench::calibratedConstants(), table);
    power::OnlinePowerCalibrator online(power_model);
    perf::PerfModelRepository repo;
    for (double f : options.profile_freqs_mhz) {
        trace::RunOptions run_options;
        run_options.initial_mhz = f;
        run_options.warmup_seconds = 15.0;
        run_options.sample_period = 2 * kTicksPerMs;
        run_options.seed = 23 + static_cast<std::uint64_t>(f);
        trace::RunResult run = runner.run(gpt3, run_options);
        repo.addProfile(f, run.records);
        online.addRun(run);
    }
    perf::PerfBuildOptions perf_options;
    perf_options.kind = perf::FitFunction::PwlCycles;
    repo.fitAll(perf_options);
    auto op_power = online.perOpModels();
    dvfs::StageEvaluator evaluator(fine.prep.stages, repo, power_model,
                                   op_power, table);
    dvfs::UniformFrequencyResult uniform =
        dvfs::selectUniformFrequency(evaluator, 0.02);

    // Execute the uniform choice for a measured comparison.
    std::vector<double> uniform_mhz(fine.prep.stages.size(), uniform.mhz);
    dvfs::ExecutionPlan uniform_plan = dvfs::planExecution(
        fine.prep.stages, uniform_mhz, fine.baseline.records, {});
    trace::RunOptions uniform_run_options;
    uniform_run_options.initial_mhz = uniform_plan.initial_mhz;
    uniform_run_options.warmup_seconds = 15.0;
    uniform_run_options.seed = 77;
    trace::RunResult uniform_run =
        runner.run(gpt3, uniform_run_options, uniform_plan.triggers);

    // --- model-free search under the paper's 30-evaluation budget ----
    dvfs::ModelFreeOptions mf_options;
    mf_options.evaluation_budget = 30;
    mf_options.perf_loss_target = 0.02;
    mf_options.warmup_seconds = 10.0;
    dvfs::ModelFreeResult model_free =
        dvfs::searchModelFree(runner, gpt3, fine.prep.stages,
                              fine.baseline.records, table, mf_options);

    auto row = [&](const std::string &name, const trace::RunResult &run,
                   const std::string &note) {
        return std::vector<std::string>{
            name,
            Table::pct(run.iteration_seconds
                           / fine.baseline.iteration_seconds - 1.0, 2),
            Table::pct(1.0 - run.aicore_avg_w
                           / fine.baseline.aicore_avg_w, 2),
            Table::pct(1.0 - run.soc_avg_w / fine.baseline.soc_avg_w, 2),
            note};
    };

    Table out("GPT-3 @ 2% target: measured results per approach");
    out.setHeader({"approach", "perf loss", "AICore red.", "SoC red.",
                   "search cost"});
    out.addRow(row("fine-grained, model-based (paper)", fine.dvfs,
                   "120k policies scored offline in <1 s"));
    out.addRow(row("uniform frequency ("
                       + Table::num(uniform.mhz, 0) + " MHz)",
                   uniform_run, "9 policies scored offline"));
    out.addRow(row("model-free GA (30 measured evals)",
                   model_free.best_run,
                   Table::num(model_free.simulated_seconds, 0)
                       + " s of device time"));
    out.print(std::cout);

    std::cout << "\npaper's argument: within 5 minutes the model-based "
                 "search assesses 20,000 strategies, a measurement "
                 "loop only ~30 - the models are what make the "
                 "fine-grained space searchable.  With ~1.3k candidate "
                 "stages, 30 measured evaluations cannot beat the "
                 "feasible all-max individual under Eq. 17, so the "
                 "model-free row typically shows no savings at all\n";
    return 0;
}
