/**
 * @file
 * Cold-path latency benchmark: what does the surrogate pre-ranker buy
 * on first contact?
 *
 * Three arms over the same evaluation workloads, same seeds:
 *
 *   1. cold      — full pipeline (profile + full-budget GA), the
 *                  baseline the paper's offline generator pays on
 *                  every new workload.
 *   2. seeded    — surrogate-seeded GA: the prediction joins the
 *                  initial population and the budget is halved; shows
 *                  how much search the prior replaces at equal final
 *                  quality (runs on the incremental fitness backend).
 *   3. predict   — the serving-path predict-then-refine mode: the
 *                  response returns after profile + one model
 *                  evaluation (provenance "predicted"), the refinement
 *                  runs asynchronously and upgrades the cache.
 *
 * The surrogate is trained online by a warm-up service that solves a
 * disjoint training set first — exactly the production sequence.
 *
 * Emits BENCH_cold.json.  Exit code asserts the PR's acceptance
 * criteria: predict-first p50 at least 2x below cold p50, refined
 * (or predicted, when the refinement could not improve it) score
 * within 1% of the pure cold-GA score.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "dvfs/evaluator.h"
#include "dvfs/genetic.h"
#include "models/transformer.h"
#include "npu/freq_table.h"
#include "power/power_model.h"
#include "serve/service.h"
#include "tune/features.h"
#include "tune/incremental.h"
#include "tune/surrogate.h"

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

double
percentile(std::vector<double> values, double fraction)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    std::size_t at = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[at];
}

opdvfs::models::Workload
benchWorkload(const opdvfs::npu::MemorySystem &memory, int seq, int hidden)
{
    opdvfs::models::TransformerConfig model;
    model.name = "cold-bench";
    model.layers = 2;
    model.hidden = hidden;
    model.heads = 8;
    model.seq = seq;
    return opdvfs::models::buildTransformerTraining(memory, model, 5);
}

} // namespace

int
main()
{
    using namespace opdvfs;
    bench::banner("cold-path latency: surrogate predict-then-refine",
                  "service-layer extension of the paper's Sect. 6 "
                  "strategy generator");

    constexpr std::uint64_t kSeed = 11;
    constexpr double kLossTarget = 0.02;
    constexpr int kFullGenerations = 600;

    npu::NpuConfig chip = bench::standardChip();
    npu::MemorySystem memory(chip.memory);

    // Disjoint training and evaluation sets: the surrogate never sees
    // an evaluation workload before predicting it.
    std::vector<models::Workload> train_set;
    for (int seq : {128, 160, 192, 224, 256, 512})
        train_set.push_back(benchWorkload(memory, seq, 1024));
    train_set.push_back(benchWorkload(memory, 192, 768));
    std::vector<models::Workload> eval_set;
    for (int seq : {288, 352, 448})
        eval_set.push_back(benchWorkload(memory, seq, 1024));

    serve::ServiceOptions base;
    base.pipeline = bench::standardPipeline(kLossTarget);
    base.pipeline.warmup_seconds = 0.5;
    base.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    // Paper Sect. 7.4 search budget: the GA, not the profiling, must
    // dominate the cold path — that is the cost the surrogate removes.
    base.pipeline.ga.population = 200;
    base.pipeline.ga.generations = kFullGenerations;
    base.workers = 2;

    tune::SurrogateOptions surrogate_options;
    surrogate_options.min_rows = 4;
    surrogate_options.refit_interval_rows = 8;
    auto surrogate = std::make_shared<tune::Surrogate>(surrogate_options);

    // --- warm-up: train the surrogate from real finished searches ------
    std::cout << "training: " << train_set.size()
              << " cold searches feed the surrogate corpus\n";
    {
        serve::ServiceOptions train_options = base;
        train_options.surrogate = surrogate;
        serve::StrategyService trainer(train_options);
        for (const models::Workload &workload : train_set) {
            serve::StrategyRequest request;
            request.workload = workload;
            request.seed = kSeed;
            request.perf_loss_target = kLossTarget;
            request.allow_warm_start = false; // full searches only
            trainer.submit(request).get();
        }
        trainer.drain();
    }
    if (!surrogate->ready()) {
        std::cerr << "surrogate failed to train\n";
        return 1;
    }

    // --- arm 1: cold (full pipeline, no cache/donor help) --------------
    std::vector<double> cold_ms;
    std::map<std::size_t, double> cold_score;
    {
        serve::StrategyService cold(base);
        for (std::size_t at = 0; at < eval_set.size(); ++at) {
            serve::StrategyRequest request;
            request.workload = eval_set[at];
            request.seed = kSeed;
            request.perf_loss_target = kLossTarget;
            request.allow_warm_start = false;
            Clock::time_point start = Clock::now();
            serve::StrategyResponse response =
                cold.submit(request).get();
            cold_ms.push_back(millisSince(start));
            cold_score[at] = response.ga.best_score;
        }
        cold.drain();
    }

    // --- arm 2: surrogate-seeded GA at half budget ----------------------
    std::vector<double> seeded_ms;
    double seeded_ratio_min = 1e300;
    {
        dvfs::PipelineOptions pipeline_options = base.pipeline;
        pipeline_options.seed = kSeed;
        pipeline_options.perf_loss_target = kLossTarget;
        dvfs::EnergyPipeline pipeline(pipeline_options);
        npu::FreqTable table(chip.freq);
        for (std::size_t at = 0; at < eval_set.size(); ++at) {
            Clock::time_point start = Clock::now();
            dvfs::PreparedWorkload prepared =
                pipeline.prepare(eval_set[at]);
            power::PowerModel power_model(prepared.constants, table);
            dvfs::StageEvaluator evaluator(prepared.prep.stages,
                                           prepared.perf_models,
                                           power_model,
                                           prepared.op_power, table);
            std::vector<tune::StageSample> rows = tune::extractStageRows(
                eval_set[at], chip, kLossTarget, prepared.prep);
            tune::PredictedStrategy predicted = tune::predictStrategy(
                *surrogate, rows, evaluator, kLossTarget);

            tune::IncrementalFitness fitness(evaluator);
            dvfs::GaOptions ga_options = pipeline_options.ga;
            ga_options.perf_loss_target = kLossTarget;
            ga_options.seed = kSeed * 7 + 13; // the pipeline derivation
            ga_options.generations = kFullGenerations / 2;
            ga_options.prior_individuals.push_back(predicted.mhz);
            ga_options.fitness_backend = &fitness;
            dvfs::GaResult seeded = dvfs::searchStrategy(
                evaluator, prepared.prep.stages, ga_options);
            seeded_ms.push_back(millisSince(start));
            seeded_ratio_min = std::min(
                seeded_ratio_min, seeded.best_score / cold_score[at]);
        }
    }

    // --- arm 3: predict-then-refine serving -----------------------------
    std::vector<double> predict_ms;
    double refined_ratio_min = 1e300;
    std::uint64_t refine_upgrades = 0;
    std::uint64_t refine_discards = 0;
    {
        serve::ServiceOptions predict_options = base;
        predict_options.surrogate = surrogate;
        predict_options.predict_first = true;
        predict_options.refine_generation_fraction = 0.5;
        serve::StrategyService service(predict_options);
        for (std::size_t at = 0; at < eval_set.size(); ++at) {
            serve::StrategyRequest request;
            request.workload = eval_set[at];
            request.seed = kSeed;
            request.perf_loss_target = kLossTarget;
            Clock::time_point start = Clock::now();
            serve::StrategyResponse response =
                service.submit(request).get();
            double ms = millisSince(start);
            if (response.provenance != serve::Provenance::Predicted) {
                std::cerr << "eval workload " << at
                          << " was not served from the surrogate\n";
                return 1;
            }
            predict_ms.push_back(ms);
        }
        // The refined (or kept-predicted) entries are the ones later
        // exact hits serve: compare their quality to the pure cold GA.
        service.waitForRefines();
        for (std::size_t at = 0; at < eval_set.size(); ++at) {
            serve::StrategyRequest request;
            request.workload = eval_set[at];
            request.seed = kSeed;
            request.perf_loss_target = kLossTarget;
            serve::StrategyResponse hit = service.submit(request).get();
            refined_ratio_min = std::min(
                refined_ratio_min, hit.ga.best_score / cold_score[at]);
        }
        serve::ServiceStats stats = service.stats();
        refine_upgrades = stats.refine_upgrades;
        refine_discards = stats.refine_discards;
        service.drain();
    }

    double cold_p50 = percentile(cold_ms, 0.5);
    double predict_p50 = percentile(predict_ms, 0.5);
    double speedup = predict_p50 > 0.0 ? cold_p50 / predict_p50 : 0.0;

    std::cout << "\ncold    p50 " << cold_p50 << " ms, p95 "
              << percentile(cold_ms, 0.95) << " ms\n"
              << "seeded  p50 " << percentile(seeded_ms, 0.5)
              << " ms (half budget), worst score ratio "
              << seeded_ratio_min << "\n"
              << "predict p50 " << predict_p50 << " ms, p95 "
              << percentile(predict_ms, 0.95) << " ms ("
              << speedup << "x vs cold), worst refined ratio "
              << refined_ratio_min << "\n"
              << "refines: " << refine_upgrades << " upgraded, "
              << refine_discards << " kept the prediction\n";

    bench::BenchJson json("cold");
    json.add("cold_p50", cold_p50, "ms");
    json.add("cold_p95", percentile(cold_ms, 0.95), "ms");
    json.add("seeded_p50", percentile(seeded_ms, 0.5), "ms");
    json.add("seeded_score_ratio_min", seeded_ratio_min, "ratio");
    json.add("predict_p50", predict_p50, "ms");
    json.add("predict_p95", percentile(predict_ms, 0.95), "ms");
    json.add("predict_speedup_p50", speedup, "x");
    json.add("refined_score_ratio_min", refined_ratio_min, "ratio");
    json.add("generations_saved_per_predict",
             static_cast<double>(kFullGenerations), "generations");
    json.add("refine_upgrades", static_cast<double>(refine_upgrades),
             "count");
    json.add("refine_discards", static_cast<double>(refine_discards),
             "count");
    json.write();

    bool ok = speedup >= 2.0 && refined_ratio_min >= 0.99;
    if (!ok)
        std::cerr << "ACCEPTANCE FAILED: speedup " << speedup
                  << " (need >= 2), refined ratio " << refined_ratio_min
                  << " (need >= 0.99)\n";
    return ok ? 0 : 1;
}
