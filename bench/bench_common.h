/**
 * @file
 * Shared setup for the reproduction benches: the reference chip
 * configuration, a cached offline power calibration, and pipeline
 * defaults matching the paper's experimental setup (Sect. 7.4):
 * profile at 1000/1800 MHz (plus 1400 MHz for the 3-point fits),
 * 5 ms frequency adjustment interval, population 200, mutation 0.15,
 * 600 generations.
 */

#ifndef OPDVFS_BENCH_BENCH_COMMON_H
#define OPDVFS_BENCH_BENCH_COMMON_H

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dvfs/pipeline.h"
#include "npu/npu_chip.h"
#include "power/offline_calibration.h"

namespace opdvfs::bench {

/** The simulated device under test. */
inline npu::NpuConfig
standardChip()
{
    return npu::NpuConfig{};
}

/** Offline calibration, run once per process. */
inline const power::CalibratedConstants &
calibratedConstants()
{
    static const power::CalibratedConstants constants =
        power::calibrateOffline(standardChip());
    return constants;
}

/** Pipeline options used by the end-to-end experiments. */
inline dvfs::PipelineOptions
standardPipeline(double perf_loss_target)
{
    dvfs::PipelineOptions options;
    options.chip = standardChip();
    options.perf_loss_target = perf_loss_target;
    options.constants = calibratedConstants();
    options.warmup_seconds = 15.0;
    options.fit_kind = perf::FitFunction::PwlCycles;
    options.profile_freqs_mhz = {1000.0, 1400.0, 1800.0};
    options.preprocess.fai = 5 * kTicksPerMs; // Sect. 7.4
    options.ga.population = 200;              // Sect. 7.4
    options.ga.generations = 600;
    options.ga.mutation_rate = 0.15;
    return options;
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::cout << "================================================\n"
              << experiment << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "================================================\n";
}

/**
 * Machine-readable bench output: collects (metric, value, unit)
 * triples and writes `BENCH_<name>.json` next to the binary, so CI
 * can upload the numbers as an artifact and trend them across runs
 * without scraping the human-readable tables.
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string name) : name_(std::move(name)) {}

    void add(const std::string &metric, double value,
             const std::string &unit)
    {
        metrics_.push_back({metric, value, unit});
    }

    /** Serialise to `BENCH_<name>.json`; prints the path on success. */
    void write() const
    {
        std::string path = "BENCH_" + name_ + ".json";
        std::ofstream os(path);
        if (!os) {
            std::cerr << "BenchJson: cannot write " << path << "\n";
            return;
        }
        os << toString();
        std::cout << "\nwrote " << path << "\n";
    }

    std::string toString() const
    {
        std::ostringstream os;
        os.precision(12);
        os << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": [\n";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            const Metric &m = metrics_[i];
            os << "    {\"metric\": \"" << m.name << "\", \"value\": "
               << m.value << ", \"unit\": \"" << m.unit << "\"}"
               << (i + 1 < metrics_.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        return os.str();
    }

  private:
    struct Metric
    {
        std::string name;
        double value = 0.0;
        std::string unit;
    };

    std::string name_;
    std::vector<Metric> metrics_;
};

} // namespace opdvfs::bench

#endif // OPDVFS_BENCH_BENCH_COMMON_H
