/**
 * @file
 * Shared setup for the reproduction benches: the reference chip
 * configuration, a cached offline power calibration, and pipeline
 * defaults matching the paper's experimental setup (Sect. 7.4):
 * profile at 1000/1800 MHz (plus 1400 MHz for the 3-point fits),
 * 5 ms frequency adjustment interval, population 200, mutation 0.15,
 * 600 generations.
 */

#ifndef OPDVFS_BENCH_BENCH_COMMON_H
#define OPDVFS_BENCH_BENCH_COMMON_H

#include <iostream>

#include "dvfs/pipeline.h"
#include "npu/npu_chip.h"
#include "power/offline_calibration.h"

namespace opdvfs::bench {

/** The simulated device under test. */
inline npu::NpuConfig
standardChip()
{
    return npu::NpuConfig{};
}

/** Offline calibration, run once per process. */
inline const power::CalibratedConstants &
calibratedConstants()
{
    static const power::CalibratedConstants constants =
        power::calibrateOffline(standardChip());
    return constants;
}

/** Pipeline options used by the end-to-end experiments. */
inline dvfs::PipelineOptions
standardPipeline(double perf_loss_target)
{
    dvfs::PipelineOptions options;
    options.chip = standardChip();
    options.perf_loss_target = perf_loss_target;
    options.constants = calibratedConstants();
    options.warmup_seconds = 15.0;
    options.fit_kind = perf::FitFunction::PwlCycles;
    options.profile_freqs_mhz = {1000.0, 1400.0, 1800.0};
    options.preprocess.fai = 5 * kTicksPerMs; // Sect. 7.4
    options.ga.population = 200;              // Sect. 7.4
    options.ga.generations = 600;
    options.ga.mutation_rate = 0.15;
    return options;
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::cout << "================================================\n"
              << experiment << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "================================================\n";
}

} // namespace opdvfs::bench

#endif // OPDVFS_BENCH_BENCH_COMMON_H
