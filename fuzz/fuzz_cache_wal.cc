/**
 * @file
 * libFuzzer entry point over the cache write-ahead-log replay: the
 * bytes are a WAL image and replay must recover the valid prefix or
 * truncate — never crash, never load a corrupt entry.  The oracle
 * lives in src/check/fuzz.cc and is shared with the seeded ctest
 * driver (tests/prop_fuzz.cc), so a crash found here replays there
 * from the same bytes and vice versa.
 *
 * Build: cmake -B build-fuzz -DOPDVFS_BUILD_FUZZERS=ON \
 *              -DCMAKE_CXX_COMPILER=clang++
 * Run:   build-fuzz/fuzz/fuzz_cache_wal -max_total_time=60
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "check/fuzz.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (auto failure = opdvfs::check::fuzzCacheWalOne(data, size)) {
        std::fprintf(stderr, "fuzz_cache_wal: %s\n", failure->c_str());
        std::abort();
    }
    return 0;
}
