/**
 * @file
 * libFuzzer entry point over the surrogate-corpus loader.  The oracle
 * lives in src/check/fuzz.cc and is shared with the seeded ctest
 * driver (tests/prop_fuzz.cc), so a crash found here replays there
 * from the same bytes and vice versa.
 *
 * Build: cmake -B build-fuzz -DOPDVFS_BUILD_FUZZERS=ON \
 *              -DCMAKE_CXX_COMPILER=clang++
 * Run:   build-fuzz/fuzz/fuzz_tune_corpus -max_total_time=60
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "check/fuzz.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (auto failure = opdvfs::check::fuzzTuneCorpusOne(data, size)) {
        std::fprintf(stderr, "fuzz_tune_corpus: %s\n", failure->c_str());
        std::abort();
    }
    return 0;
}
