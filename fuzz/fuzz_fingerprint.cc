/**
 * @file
 * libFuzzer entry point over workload fingerprinting: determinism,
 * exact self-similarity, finite features, and name-blindness of the
 * digest.  Shares its oracle with the seeded ctest driver
 * (tests/prop_fuzz.cc) via src/check/fuzz.cc.
 *
 * Build: cmake -B build-fuzz -DOPDVFS_BUILD_FUZZERS=ON \
 *              -DCMAKE_CXX_COMPILER=clang++
 * Run:   build-fuzz/fuzz/fuzz_fingerprint -max_total_time=60
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "check/fuzz.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (auto failure = opdvfs::check::fuzzFingerprintOne(data, size)) {
        std::fprintf(stderr, "fuzz_fingerprint: %s\n", failure->c_str());
        std::abort();
    }
    return 0;
}
