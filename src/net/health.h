/**
 * @file
 * Peer liveness monitor for the shard fleet.
 *
 * One background thread probes every peer in the shared shard map on a
 * fixed interval with the plaintext `HEALTH` admin command.  Any reply
 * — `ok` or `draining` — counts as alive; what matters is that the
 * event loop answered.  Consecutive probe failures walk a shard
 * through the classic three-state ladder:
 *
 *   Alive ──failure──▶ Suspect ──more failures──▶ Down
 *     ▲                                             │
 *     └────────────── any successful probe ─────────┘
 *
 * Consumers:
 *  - `ShardRouter` failover skips successors the monitor marks Down
 *    (no point burning a connect timeout on a corpse).
 *  - The admin `STATS`/`HEALTH` replies surface per-peer states so an
 *    operator sees fleet liveness from any single shard.
 *
 * Unknown shards (not yet probed, or not in the map) report Alive:
 * the monitor is an *optimisation* for skipping known-dead peers, and
 * optimistically trying a fresh shard is always safe — the connect
 * timeout is the backstop.
 */

#ifndef OPDVFS_NET_HEALTH_H
#define OPDVFS_NET_HEALTH_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shard/shard_map.h"

namespace opdvfs::net {

/** Liveness ladder for one peer shard. */
enum class PeerHealth
{
    Alive,
    Suspect,
    Down,
};

/** Stable lowercase token for STATS/HEALTH lines. */
const char *peerHealthToken(PeerHealth health);

/** Health-monitor configuration. */
struct HealthOptions
{
    /** Seconds between probe rounds; 0 disables the background
     *  thread (probes then happen only via probeOnce()). */
    double probe_interval_seconds = 0.5;
    /** Per-probe deadline, seconds. */
    double probe_timeout_seconds = 0.25;
    /** Consecutive failures before Alive degrades to Suspect. */
    std::size_t suspect_after_failures = 1;
    /** Consecutive failures before the shard is marked Down. */
    std::size_t down_after_failures = 3;
};

/** Peer health monitor; thread-safe. */
class HealthMonitor
{
  public:
    /** One row of the health table. */
    struct PeerState
    {
        std::uint32_t id = 0;
        std::string address;
        PeerHealth health = PeerHealth::Alive;
        std::size_t consecutive_failures = 0;
    };

    /** @p self_id this shard — never probed. */
    HealthMonitor(std::uint32_t self_id,
                  std::shared_ptr<shard::SharedShardMap> map,
                  HealthOptions options = {});
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Probe every peer once, synchronously (deterministic tests and
     *  callers that cannot wait for the interval). */
    void probeOnce();

    /** Current state of @p shard_id; unknown shards are Alive. */
    PeerHealth healthOf(std::uint32_t shard_id) const;

    /** The full table, sorted by shard id. */
    std::vector<PeerState> snapshot() const;

    /** Stop the probe thread (idempotent; destructor calls it). */
    void stop();

  private:
    void probeLoop();

    std::uint32_t self_id_;
    std::shared_ptr<shard::SharedShardMap> map_;
    HealthOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    /** shard id → state; rows vanish when a shard LEAVEs the map. */
    std::map<std::uint32_t, PeerState> states_;

    std::mutex join_mutex_;
    std::thread prober_;
};

} // namespace opdvfs::net

#endif // OPDVFS_NET_HEALTH_H
