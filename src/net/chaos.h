/**
 * @file
 * Seeded socket-fault injection for the serving stack.
 *
 * ChaosProxy is an in-process TCP proxy: clients connect to its port
 * and every byte is relayed to the real server, with faults injected
 * on the way through according to a ChaosPlan — the network analogue
 * of npu::FaultInjector.  Like FaultPlan, a ChaosPlan is explicitly
 * seeded, every fault class is off by default, and identical plans
 * replay identical fault schedules, so a test that fails under chaos
 * fails the same way every run.
 *
 * Fault classes (per direction, independently toggleable):
 *
 *  - chunking: forwarded data is re-split into random chunks of
 *    [min_chunk_bytes, max_chunk_bytes], exercising every short-read
 *    path in the peer's framing code (min = max = 1 delivers one byte
 *    at a time, i.e. a frame split at every boundary);
 *  - corruption: each forwarded byte is bit-flipped with probability
 *    corrupt_rate, and corrupt_byte_index targets one exact byte
 *    offset deterministically (aim it past the 16-byte header and the
 *    CRC must catch it);
 *  - stall: after stall_after_bytes have been forwarded the relay
 *    goes silent for stall_seconds, simulating a hung middlebox (the
 *    peer's deadline/idle-reaping paths must fire);
 *  - reset: after exactly reset_after_bytes the connection is torn
 *    down with an RST (SO_LINGER 0), cutting a frame mid-flight.
 *
 * Each proxied connection is driven by one relay thread that owns both
 * sockets; per-connection, per-direction RNG streams are derived from
 * (plan.seed, accept order, direction), so concurrent connections do
 * not perturb each other's fault schedules.  stop() is bounded: relay
 * threads poll with short timeouts and abandon stalls when asked to
 * stop.
 */

#ifndef OPDVFS_NET_CHAOS_H
#define OPDVFS_NET_CHAOS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace opdvfs::net {

/** Fault schedule for a ChaosProxy.  Defaults inject nothing. */
struct ChaosPlan
{
    /** Seed for every fault decision. */
    std::uint64_t seed = 1;

    /** Chunk forwarded data into [min, max]-byte writes; max 0 =
     *  forward whole reads untouched. */
    std::size_t min_chunk_bytes = 0;
    std::size_t max_chunk_bytes = 0;
    /** Pause between chunks (lets the peer's event loop observe each
     *  fragment separately instead of coalescing them). */
    std::uint32_t inter_chunk_delay_us = 0;

    /** Per-byte probability of flipping one random bit. */
    double corrupt_rate = 0.0;
    /** Flip one bit of the byte at this absolute per-direction
     *  forwarded offset; negative = disabled. */
    std::int64_t corrupt_byte_index = -1;

    /** After forwarding this many bytes in a direction, go silent for
     *  stall_seconds (once per connection per direction); 0 = never. */
    std::size_t stall_after_bytes = 0;
    double stall_seconds = 0.0;

    /** Tear the connection down with an RST after exactly this many
     *  bytes have been forwarded in a direction; 0 = never. */
    std::size_t reset_after_bytes = 0;

    /** Apply faults client -> server. */
    bool apply_upstream = true;
    /** Apply faults server -> client. */
    bool apply_downstream = true;
};

/** What the proxy did (monotonic; snapshot via counters()). */
struct ChaosCounters
{
    std::uint64_t connections = 0;
    /** Bytes forwarded client -> server. */
    std::uint64_t bytes_up = 0;
    /** Bytes forwarded server -> client. */
    std::uint64_t bytes_down = 0;
    /** Individual writes issued (== fragments the peer could see). */
    std::uint64_t chunks = 0;
    std::uint64_t bytes_corrupted = 0;
    std::uint64_t stalls = 0;
    std::uint64_t resets = 0;
};

/**
 * In-process fault-injecting TCP proxy.  start() binds an ephemeral
 * loopback port (see port()); point a client there instead of at the
 * server.  Not copyable; stop() (also run by the destructor) joins
 * every relay thread.
 */
class ChaosProxy
{
  public:
    ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
               ChaosPlan plan = {});
    ~ChaosProxy();

    ChaosProxy(const ChaosProxy &) = delete;
    ChaosProxy &operator=(const ChaosProxy &) = delete;

    /**
     * Bind, listen and launch the accept thread.
     * @throws std::runtime_error when the socket cannot be set up.
     */
    void start();

    /** Stop accepting, tear down every relay; bounded, idempotent. */
    void stop();

    /** The proxy's bound port (after start()). */
    std::uint16_t port() const { return bound_port_; }

    const ChaosPlan &plan() const { return plan_; }

    ChaosCounters counters() const;

  private:
    void acceptLoop();
    void relay(int client_fd, std::uint64_t connection_index);

    std::string upstream_host_;
    std::uint16_t upstream_port_;
    ChaosPlan plan_;

    int listen_fd_ = -1;
    std::uint16_t bound_port_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    std::thread accept_thread_;
    std::mutex relay_mutex_;
    std::vector<std::thread> relay_threads_;

    mutable std::mutex counters_mutex_;
    ChaosCounters counters_;
};

} // namespace opdvfs::net

#endif // OPDVFS_NET_CHAOS_H
