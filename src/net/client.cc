#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace opdvfs::net {

namespace {

double
steadyNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw NetError("net: fcntl(O_NONBLOCK) failed");
}

/** Poll one fd for @p events until @p deadline (steady seconds). */
void
pollUntil(int fd, short events, double deadline, const char *what)
{
    while (true) {
        double remaining = deadline - steadyNow();
        if (remaining <= 0.0)
            throw DeadlineError(std::string("net: deadline expired ")
                                + what);
        pollfd pfd{fd, events, 0};
        int timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
        int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready > 0)
            return;
        if (ready < 0 && errno != EINTR)
            throw NetError("net: poll() failed");
    }
}

int
connectSocket(const std::string &host, std::uint16_t port,
              double timeout_seconds)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw NetError("net: bad host address " + host);

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw NetError("net: socket() failed");
    try {
        setNonBlocking(fd);
        int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr));
        if (rc < 0 && errno != EINPROGRESS)
            throw NetError("net: connect() to " + host + " failed");
        if (rc < 0) {
            pollUntil(fd, POLLOUT, steadyNow() + timeout_seconds,
                      "connecting");
            int error = 0;
            socklen_t length = sizeof(error);
            if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &length)
                    < 0
                || error != 0)
                throw NetError("net: connect() to " + host
                               + " failed: "
                               + std::strerror(error ? error : errno));
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    } catch (...) {
        ::close(fd);
        throw;
    }
    return fd;
}

} // namespace

StrategyClient::StrategyClient(std::string host, std::uint16_t port,
                               ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options),
      jitter_state_(options.jitter_seed ? options.jitter_seed
                                        : 0x9E3779B97F4A7C15ull)
{}

StrategyClient::~StrategyClient()
{
    disconnect();
}

void
StrategyClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

double
StrategyClient::now() const
{
    return steadyNow();
}

void
StrategyClient::connectWithDeadline()
{
    fd_ = connectSocket(host_, port_, options_.connect_timeout_seconds);
}

void
StrategyClient::sendAll(const std::string &bytes, double deadline)
{
    std::size_t offset = 0;
    while (offset < bytes.size()) {
        ssize_t sent = ::send(fd_, bytes.data() + offset,
                              bytes.size() - offset, MSG_NOSIGNAL);
        if (sent > 0) {
            offset += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0
            && (errno == EAGAIN || errno == EWOULDBLOCK
                || errno == EINTR)) {
            pollUntil(fd_, POLLOUT, deadline, "sending the request");
            continue;
        }
        throw NetError("net: send() failed: "
                       + std::string(std::strerror(errno)));
    }
}

WireResponse
StrategyClient::receiveResponse(double deadline)
{
    std::string buffer;
    char chunk[16384];
    while (true) {
        std::size_t consumed = 0;
        // A WireError here (bad magic/CRC/version) propagates: the
        // stream is broken and a retry cannot fix the bytes.
        std::optional<FrameView> frame =
            peelFrame(buffer, &consumed, options_.limits);
        if (frame) {
            if (frame->type != MsgType::Response)
                throw WireError("net: server sent a non-response frame");
            WireResponse response =
                decodeResponse(frame->payload, options_.limits);
            switch (response.status) {
            case Status::Ok:
                return response;
            case Status::Busy:
                throw BusyError("net: server busy ("
                                    + std::string(serve::rejectReasonToken(
                                        response.reject))
                                    + "): " + response.message,
                                response.reject);
            default:
                throw RemoteError("net: server answered "
                                      + std::string(statusToken(
                                          response.status))
                                      + ": " + response.message,
                                  response.status);
            }
        }
        pollUntil(fd_, POLLIN, deadline, "awaiting the response");
        ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got > 0) {
            buffer.append(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0)
            throw NetError("net: server closed the connection");
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            continue;
        throw NetError("net: recv() failed: "
                       + std::string(std::strerror(errno)));
    }
}

WireResponse
StrategyClient::attemptOnce(const std::string &frame)
{
    if (!connected())
        connectWithDeadline();
    double deadline = now() + options_.request_timeout_seconds;
    sendAll(frame, deadline);
    return receiveResponse(deadline);
}

WireResponse
StrategyClient::call(const WireRequest &request)
{
    // Encoding failures are the caller's bug; no network was involved.
    std::string frame = frameRequest(request, options_.limits);

    int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
    for (int attempt = 1;; ++attempt) {
        bool drop_connection = false;
        try {
            return attemptOnce(frame);
        } catch (const DeadlineError &) {
            // The caller's time budget is spent; a retry would spend
            // it again.  Tear down so a later call starts clean.
            disconnect();
            throw;
        } catch (const BusyError &) {
            // Retryable; the connection itself is healthy.
            if (attempt >= attempts)
                throw;
        } catch (const WireError &) {
            disconnect();
            throw; // malformed bytes: never retry
        } catch (const RemoteError &) {
            throw; // structured non-retryable failure
        } catch (const NetError &) {
            drop_connection = true;
            if (attempt >= attempts) {
                disconnect();
                throw;
            }
        }
        if (drop_connection)
            disconnect();

        // Bounded exponential backoff with deterministic jitter in
        // [0.5, 1.0] x the nominal delay (decorrelates synchronised
        // retry storms while staying reproducible under a seed).
        double nominal = options_.backoff_initial_seconds;
        for (int doubling = 1; doubling < attempt; ++doubling)
            nominal *= 2.0;
        if (nominal > options_.backoff_max_seconds)
            nominal = options_.backoff_max_seconds;
        jitter_state_ ^= jitter_state_ << 13;
        jitter_state_ ^= jitter_state_ >> 7;
        jitter_state_ ^= jitter_state_ << 17;
        double fraction =
            static_cast<double>(jitter_state_ >> 11) * 0x1.0p-53;
        double delay = nominal * (0.5 + 0.5 * fraction);
        ++retries_;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay));
    }
}

std::string
adminQuery(const std::string &host, std::uint16_t port,
           const std::string &command, double timeout_seconds)
{
    double deadline = steadyNow() + timeout_seconds;
    int fd = connectSocket(host, port, timeout_seconds);
    std::string text;
    try {
        std::string line = command + "\n";
        std::size_t offset = 0;
        while (offset < line.size()) {
            ssize_t sent = ::send(fd, line.data() + offset,
                                  line.size() - offset, MSG_NOSIGNAL);
            if (sent > 0) {
                offset += static_cast<std::size_t>(sent);
                continue;
            }
            if (sent < 0
                && (errno == EAGAIN || errno == EWOULDBLOCK
                    || errno == EINTR)) {
                pollUntil(fd, POLLOUT, deadline, "sending the command");
                continue;
            }
            throw NetError("net: send() failed");
        }
        while (true) {
            char chunk[4096];
            ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
            if (got > 0) {
                text.append(chunk, static_cast<std::size_t>(got));
                continue;
            }
            if (got == 0)
                break; // server closes after one command
            if (errno == EAGAIN || errno == EWOULDBLOCK
                || errno == EINTR) {
                pollUntil(fd, POLLIN, deadline, "awaiting the reply");
                continue;
            }
            throw NetError("net: recv() failed");
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    return text;
}

} // namespace opdvfs::net
