#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace opdvfs::net {

namespace {

double
steadyNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw NetError("net: fcntl(O_NONBLOCK) failed");
}

/** Poll one fd for @p events until @p deadline (steady seconds). */
void
pollUntil(int fd, short events, double deadline, const char *what)
{
    while (true) {
        double remaining = deadline - steadyNow();
        if (remaining <= 0.0)
            throw DeadlineError(std::string("net: deadline expired ")
                                + what);
        pollfd pfd{fd, events, 0};
        int timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
        int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready > 0)
            return;
        if (ready < 0 && errno != EINTR)
            throw NetError("net: poll() failed");
    }
}

int
connectSocket(const std::string &host, std::uint16_t port,
              double timeout_seconds)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw NetError("net: bad host address " + host);

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw NetError("net: socket() failed");
    try {
        setNonBlocking(fd);
        int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr));
        if (rc < 0 && errno != EINPROGRESS)
            throw NetError("net: connect() to " + host + " failed");
        if (rc < 0) {
            pollUntil(fd, POLLOUT, steadyNow() + timeout_seconds,
                      "connecting");
            int error = 0;
            socklen_t length = sizeof(error);
            if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &length)
                    < 0
                || error != 0)
                throw NetError("net: connect() to " + host
                               + " failed: "
                               + std::strerror(error ? error : errno));
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    } catch (...) {
        ::close(fd);
        throw;
    }
    return fd;
}

/** splitmix64: one well-mixed word from a seed. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

RetryBudget::RetryBudget(double tokens_per_attempt, double max_tokens)
    : tokens_per_attempt_(tokens_per_attempt < 0.0 ? 0.0
                                                   : tokens_per_attempt),
      max_tokens_(max_tokens < 1.0 ? 1.0 : max_tokens),
      // Starting full lets a short incident retry immediately; only a
      // sustained failure rate drains the bucket.
      tokens_(max_tokens_)
{}

void
RetryBudget::onAttempt()
{
    std::lock_guard<std::mutex> lock(mutex_);
    tokens_ = std::min(max_tokens_, tokens_ + tokens_per_attempt_);
}

bool
RetryBudget::tryWithdrawRetry()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

double
RetryBudget::tokens() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tokens_;
}

double
backoffNominalSeconds(const ClientOptions &options, int retry_index)
{
    double nominal = options.backoff_initial_seconds;
    if (!(nominal > 0.0))
        nominal = 0.0;
    for (int doubling = 1; doubling < retry_index; ++doubling) {
        // Stop doubling at the cap: keeps the sequence monotone and
        // cannot overflow for any retry_index.
        if (nominal >= options.backoff_max_seconds)
            break;
        nominal *= 2.0;
    }
    if (nominal > options.backoff_max_seconds)
        nominal = options.backoff_max_seconds;
    return nominal;
}

double
retryDelaySeconds(const ClientOptions &options, int retry_index,
                  std::uint32_t retry_after_ms,
                  std::uint64_t &jitter_state)
{
    double nominal = backoffNominalSeconds(options, retry_index);
    // xorshift64; a zero state would stick, so displace it.
    if (jitter_state == 0)
        jitter_state = 0x9E3779B97F4A7C15ull;
    jitter_state ^= jitter_state << 13;
    jitter_state ^= jitter_state >> 7;
    jitter_state ^= jitter_state << 17;
    double fraction = static_cast<double>(jitter_state >> 11) * 0x1.0p-53;
    double delay = nominal * (0.5 + 0.5 * fraction);
    // The server's hint is a contract, not a suggestion: it floors the
    // sleep even past the local backoff ceiling.
    double hint = static_cast<double>(retry_after_ms) / 1000.0;
    return delay < hint ? hint : delay;
}

StrategyClient::StrategyClient(std::string host, std::uint16_t port,
                               ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options),
      jitter_state_(options.jitter_seed ? options.jitter_seed
                                        : 0x9E3779B97F4A7C15ull)
{}

StrategyClient::~StrategyClient()
{
    disconnect();
}

void
StrategyClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

double
StrategyClient::now() const
{
    return steadyNow();
}

void
StrategyClient::connectWithDeadline()
{
    // Counted before the attempt: failures count too (the breaker's
    // job is to bound exactly these).
    ++connect_attempts_;
    fd_ = connectSocket(host_, port_, options_.connect_timeout_seconds);
    ++connections_established_;
    if (options_.seed != 0) {
        // Per-connection reseed: the whole retry schedule becomes a
        // pure function of (seed, connection index), so breaker tests
        // replay bit-identically.
        jitter_state_ =
            mix64(options_.seed ^ connections_established_);
        if (jitter_state_ == 0)
            jitter_state_ = 0x9E3779B97F4A7C15ull;
    }
}

void
StrategyClient::breakerAdmit()
{
    if (options_.breaker_failure_threshold <= 0)
        return;
    if (breaker_state_ != BreakerState::Open)
        return;
    if (now() < breaker_open_until_)
        throw CircuitOpenError(
            "net: circuit breaker open after "
            + std::to_string(breaker_failures_)
            + " consecutive failures; probe not yet due");
    // Cool-down over: let exactly this call through as the probe.
    breaker_state_ = BreakerState::HalfOpen;
}

void
StrategyClient::breakerRecordSuccess()
{
    // Any decoded response (even Busy) proves the server reachable.
    breaker_failures_ = 0;
    breaker_state_ = BreakerState::Closed;
}

void
StrategyClient::breakerRecordFailure()
{
    if (options_.breaker_failure_threshold <= 0)
        return;
    ++breaker_failures_;
    if (breaker_state_ == BreakerState::HalfOpen
        || breaker_failures_ >= options_.breaker_failure_threshold) {
        if (breaker_state_ != BreakerState::Open)
            ++breaker_opens_;
        breaker_state_ = BreakerState::Open;
        breaker_open_until_ = now() + options_.breaker_open_seconds;
    }
}

void
StrategyClient::sendAll(const std::string &bytes, double deadline)
{
    std::size_t offset = 0;
    while (offset < bytes.size()) {
        ssize_t sent = ::send(fd_, bytes.data() + offset,
                              bytes.size() - offset, MSG_NOSIGNAL);
        if (sent > 0) {
            offset += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0
            && (errno == EAGAIN || errno == EWOULDBLOCK
                || errno == EINTR)) {
            pollUntil(fd_, POLLOUT, deadline, "sending the request");
            continue;
        }
        throw NetError("net: send() failed: "
                       + std::string(std::strerror(errno)));
    }
}

WireResponse
StrategyClient::receiveResponse(double deadline)
{
    std::string buffer;
    char chunk[16384];
    while (true) {
        std::size_t consumed = 0;
        // A WireError here (bad magic/CRC/version) propagates: the
        // stream is broken and a retry cannot fix the bytes.
        std::optional<FrameView> frame =
            peelFrame(buffer, &consumed, options_.limits);
        if (frame) {
            if (frame->type != MsgType::Response)
                throw WireError("net: server sent a non-response frame");
            WireResponse response =
                decodeResponse(frame->payload, options_.limits);
            switch (response.status) {
            case Status::Ok:
                return response;
            case Status::Busy:
                throw BusyError("net: server busy ("
                                    + std::string(serve::rejectReasonToken(
                                        response.reject))
                                    + "): " + response.message,
                                response.reject,
                                response.retry_after_ms);
            case Status::NotOwner:
                throw NotOwnerError(
                    "net: shard does not own this fingerprint; owner is "
                        + response.owner_address,
                    response.owner_address, response.map_epoch,
                    response.shard_map_text);
            default:
                throw RemoteError("net: server answered "
                                      + std::string(statusToken(
                                          response.status))
                                      + ": " + response.message,
                                  response.status);
            }
        }
        pollUntil(fd_, POLLIN, deadline, "awaiting the response");
        ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got > 0) {
            buffer.append(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0)
            throw NetError("net: server closed the connection");
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            continue;
        throw NetError("net: recv() failed: "
                       + std::string(std::strerror(errno)));
    }
}

WireResponse
StrategyClient::attemptOnce(const WireRequest &request,
                            const std::string &frame)
{
    if (!connected())
        connectWithDeadline();
    double deadline = now() + options_.request_timeout_seconds;
    if (options_.propagate_deadline && request.deadline_ms == 0) {
        // Stamp the remaining budget for *this* attempt (connect time
        // already spent is excluded: the deadline starts post-connect)
        // so the server never queues work past the point we hang up.
        WireRequest stamped = request;
        double remaining_ms =
            (deadline - now()) * 1000.0;
        if (remaining_ms < 1.0)
            remaining_ms = 1.0;
        if (remaining_ms > 4294967295.0)
            remaining_ms = 4294967295.0;
        stamped.deadline_ms = static_cast<std::uint32_t>(remaining_ms);
        sendAll(frameRequest(stamped, options_.limits), deadline);
    } else {
        sendAll(frame, deadline);
    }
    return receiveResponse(deadline);
}

WireResponse
StrategyClient::call(const WireRequest &request)
{
    // Encoding failures are the caller's bug; no network was involved.
    // (When deadline propagation re-frames per attempt, this also
    // validates the request once, up front.)
    std::string frame = frameRequest(request, options_.limits);

    int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
    for (int attempt = 1;; ++attempt) {
        breakerAdmit();
        if (options_.retry_budget)
            options_.retry_budget->onAttempt();
        bool drop_connection = false;
        std::uint32_t retry_after_ms = 0;
        std::exception_ptr retryable;
        try {
            WireResponse response = attemptOnce(request, frame);
            breakerRecordSuccess();
            return response;
        } catch (const DeadlineError &) {
            // The caller's time budget is spent; a retry would spend
            // it again.  Tear down so a later call starts clean.
            breakerRecordFailure();
            disconnect();
            throw;
        } catch (const BusyError &busy) {
            // Retryable; the connection is healthy and the server
            // demonstrably alive (it answered).
            breakerRecordSuccess();
            if (attempt >= attempts)
                throw;
            retry_after_ms = busy.retry_after_ms();
            retryable = std::current_exception();
        } catch (const WireError &) {
            disconnect();
            throw; // malformed bytes: never retry
        } catch (const NotOwnerError &) {
            // The server is demonstrably healthy — it decoded our
            // request and answered with routing truth.  Retrying here
            // would just repeat the same redirect; the router layer
            // owns following it.
            breakerRecordSuccess();
            throw;
        } catch (const RemoteError &) {
            breakerRecordSuccess();
            throw; // structured non-retryable failure
        } catch (const NetError &) {
            breakerRecordFailure();
            drop_connection = true;
            if (attempt >= attempts) {
                disconnect();
                throw;
            }
            retryable = std::current_exception();
        }
        if (drop_connection)
            disconnect();

        // A retry must be paid for from the shared budget (when one is
        // configured): under a sustained brown-out the fleet's retry
        // rate decays to a fraction of its first-attempt rate instead
        // of multiplying the overload.
        if (options_.retry_budget
            && !options_.retry_budget->tryWithdrawRetry())
            std::rethrow_exception(retryable);

        // Bounded exponential backoff with deterministic jitter in
        // [0.5, 1.0] x the nominal delay (decorrelates synchronised
        // retry storms while staying reproducible under a seed),
        // floored at the server's retry-after hint.
        double delay = retryDelaySeconds(options_, attempt,
                                         retry_after_ms, jitter_state_);
        ++retries_;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay));
    }
}

std::string
adminQuery(const std::string &host, std::uint16_t port,
           const std::string &command, double timeout_seconds)
{
    double deadline = steadyNow() + timeout_seconds;
    int fd = connectSocket(host, port, timeout_seconds);
    std::string text;
    try {
        std::string line = command + "\n";
        std::size_t offset = 0;
        while (offset < line.size()) {
            ssize_t sent = ::send(fd, line.data() + offset,
                                  line.size() - offset, MSG_NOSIGNAL);
            if (sent > 0) {
                offset += static_cast<std::size_t>(sent);
                continue;
            }
            if (sent < 0
                && (errno == EAGAIN || errno == EWOULDBLOCK
                    || errno == EINTR)) {
                pollUntil(fd, POLLOUT, deadline, "sending the command");
                continue;
            }
            throw NetError("net: send() failed");
        }
        while (true) {
            char chunk[4096];
            ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
            if (got > 0) {
                text.append(chunk, static_cast<std::size_t>(got));
                continue;
            }
            if (got == 0)
                break; // server closes after one command
            if (errno == EAGAIN || errno == EWOULDBLOCK
                || errno == EINTR) {
                pollUntil(fd, POLLIN, deadline, "awaiting the reply");
                continue;
            }
            throw NetError("net: recv() failed");
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    return text;
}

} // namespace opdvfs::net
