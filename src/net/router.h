/**
 * @file
 * Client-side shard router for the clustered strategy service.
 *
 * The router holds a shard map and one StrategyClient per shard
 * address: each request's workload is fingerprinted locally (the same
 * canonical digest the servers compute), the owning shard is looked up
 * on the consistent-hash ring, and the request goes straight to that
 * shard.  When a server answers `NotOwner` — the router's map is stale
 * (a shard joined or left) or the routing disagreed — the router
 * self-heals: it adopts the carried map when its epoch is newer, then
 * retries at the named owner, up to `max_redirects` hops.
 *
 * Fault isolation comes free from the per-address clients: each one
 * carries its own circuit breaker, so one dead shard fails fast
 * without poisoning calls routed to the others.
 *
 * Like StrategyClient, a router is not thread-safe — use one per
 * thread (the bench does).
 */

#ifndef OPDVFS_NET_ROUTER_H
#define OPDVFS_NET_ROUTER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/client.h"
#include "net/health.h"
#include "net/wire.h"
#include "shard/shard_map.h"

namespace opdvfs::net {

/**
 * Every redirect hop in one call() landed on NotOwner: the router's
 * map (even after refreshes) never agreed with any server.
 */
class RoutingError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Router configuration. */
struct RouterOptions
{
    /** NotOwner redirects followed per call before giving up. */
    int max_redirects = 3;
    /**
     * When the owner is unreachable (connect failure, retries
     * exhausted, or its circuit breaker open), retry against the
     * key's ring successors with the `serve_replica` flag set — they
     * answer from their replica set as warm starts instead of
     * `NotOwner`.  Off: the owner's failure propagates unchanged
     * (fail-fast, the pre-failover behaviour).
     */
    bool failover = true;
    /** Ring successors tried per failover (the sensible value is
     *  `replication_factor - 1`: shards that actually hold replicas). */
    std::size_t max_failover_successors = 2;
    /**
     * Optional liveness oracle (bind HealthMonitor::healthOf).  A
     * `Down` owner is failed over immediately without burning its
     * connect timeout, and `Down` successors are skipped.  Unset:
     * every address is tried and timeouts are the only signal.
     */
    std::function<PeerHealth(std::uint32_t)> peer_health;
    /** Options for every per-shard client (breaker, retries, ...). */
    ClientOptions client;
};

/** Routing client over a shard map.  Not thread-safe. */
class ShardRouter
{
  public:
    /** @throws std::invalid_argument when @p map is empty. */
    ShardRouter(shard::ShardMap map, RouterOptions options = {});

    /**
     * Route @p request to its owner shard and return the response,
     * following NotOwner redirects (self-healing the map) up to the
     * configured bound.  Per-shard failures throw exactly as
     * StrategyClient::call does.
     * @throws RoutingError when the redirect bound is exhausted.
     */
    WireResponse call(const WireRequest &request);

    /** The canonical digest this router would route @p request by. */
    static std::uint64_t requestDigest(const WireRequest &request);

    /** The address call() would currently send @p request to. */
    const std::string &ownerAddress(const WireRequest &request) const;

    /** The current (possibly self-healed) map. */
    const shard::ShardMap &map() const { return map_; }

    /** NotOwner redirects followed across all calls. */
    std::uint64_t redirectsFollowed() const { return redirects_; }

    /** Map refreshes adopted from NotOwner responses. */
    std::uint64_t mapRefreshes() const { return map_refreshes_; }

    /** Calls answered by a ring successor after the owner failed. */
    std::uint64_t failoversServed() const { return failovers_; }

    /** The per-address client, created on first use (test access to
     *  breaker state; the address need not be in the map). */
    StrategyClient &clientFor(const std::string &address);

  private:
    /** Try the key's ring successors with serve_replica set; nullopt
     *  when every successor also failed (the owner's error then
     *  propagates). */
    std::optional<WireResponse> tryFailover(const WireRequest &request,
                                            std::uint64_t digest);

    shard::ShardMap map_;
    RouterOptions options_;
    /** One lazily created client (and breaker) per shard address. */
    std::map<std::string, std::unique_ptr<StrategyClient>> clients_;
    std::uint64_t redirects_ = 0;
    std::uint64_t map_refreshes_ = 0;
    std::uint64_t failovers_ = 0;
};

} // namespace opdvfs::net

#endif // OPDVFS_NET_ROUTER_H
