/**
 * @file
 * Client-side shard router for the clustered strategy service.
 *
 * The router holds a shard map and one StrategyClient per shard
 * address: each request's workload is fingerprinted locally (the same
 * canonical digest the servers compute), the owning shard is looked up
 * on the consistent-hash ring, and the request goes straight to that
 * shard.  When a server answers `NotOwner` — the router's map is stale
 * (a shard joined or left) or the routing disagreed — the router
 * self-heals: it adopts the carried map when its epoch is newer, then
 * retries at the named owner, up to `max_redirects` hops.
 *
 * Fault isolation comes free from the per-address clients: each one
 * carries its own circuit breaker, so one dead shard fails fast
 * without poisoning calls routed to the others.
 *
 * Like StrategyClient, a router is not thread-safe — use one per
 * thread (the bench does).
 */

#ifndef OPDVFS_NET_ROUTER_H
#define OPDVFS_NET_ROUTER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/client.h"
#include "net/wire.h"
#include "shard/shard_map.h"

namespace opdvfs::net {

/**
 * Every redirect hop in one call() landed on NotOwner: the router's
 * map (even after refreshes) never agreed with any server.
 */
class RoutingError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Router configuration. */
struct RouterOptions
{
    /** NotOwner redirects followed per call before giving up. */
    int max_redirects = 3;
    /** Options for every per-shard client (breaker, retries, ...). */
    ClientOptions client;
};

/** Routing client over a shard map.  Not thread-safe. */
class ShardRouter
{
  public:
    /** @throws std::invalid_argument when @p map is empty. */
    ShardRouter(shard::ShardMap map, RouterOptions options = {});

    /**
     * Route @p request to its owner shard and return the response,
     * following NotOwner redirects (self-healing the map) up to the
     * configured bound.  Per-shard failures throw exactly as
     * StrategyClient::call does.
     * @throws RoutingError when the redirect bound is exhausted.
     */
    WireResponse call(const WireRequest &request);

    /** The canonical digest this router would route @p request by. */
    static std::uint64_t requestDigest(const WireRequest &request);

    /** The address call() would currently send @p request to. */
    const std::string &ownerAddress(const WireRequest &request) const;

    /** The current (possibly self-healed) map. */
    const shard::ShardMap &map() const { return map_; }

    /** NotOwner redirects followed across all calls. */
    std::uint64_t redirectsFollowed() const { return redirects_; }

    /** Map refreshes adopted from NotOwner responses. */
    std::uint64_t mapRefreshes() const { return map_refreshes_; }

    /** The per-address client, created on first use (test access to
     *  breaker state; the address need not be in the map). */
    StrategyClient &clientFor(const std::string &address);

  private:
    shard::ShardMap map_;
    RouterOptions options_;
    /** One lazily created client (and breaker) per shard address. */
    std::map<std::string, std::unique_ptr<StrategyClient>> clients_;
    std::uint64_t redirects_ = 0;
    std::uint64_t map_refreshes_ = 0;
};

} // namespace opdvfs::net

#endif // OPDVFS_NET_ROUTER_H
