#include "net/health.h"

#include <chrono>
#include <stdexcept>

#include "net/client.h"

namespace opdvfs::net {

const char *
peerHealthToken(PeerHealth health)
{
    switch (health) {
    case PeerHealth::Alive:
        return "alive";
    case PeerHealth::Suspect:
        return "suspect";
    case PeerHealth::Down:
        return "down";
    }
    return "alive";
}

HealthMonitor::HealthMonitor(std::uint32_t self_id,
                             std::shared_ptr<shard::SharedShardMap> map,
                             HealthOptions options)
    : self_id_(self_id), map_(std::move(map)), options_(options)
{
    if (!map_)
        throw std::invalid_argument("health: null shard map");
    if (options_.down_after_failures < options_.suspect_after_failures)
        throw std::invalid_argument(
            "health: down threshold below suspect threshold");
    if (options_.probe_interval_seconds > 0.0)
        prober_ = std::thread([this] { probeLoop(); });
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::probeOnce()
{
    // Probe outside the lock: a slow peer must not block healthOf()
    // readers on the serving path.
    auto map = map_->snapshot();
    std::vector<shard::ShardInfo> peers;
    for (const shard::ShardInfo &info : map->shards())
        if (info.id != self_id_)
            peers.push_back(info);

    std::vector<bool> alive(peers.size(), false);
    for (std::size_t i = 0; i < peers.size(); ++i) {
        std::string host;
        std::uint16_t port = 0;
        try {
            shard::parseAddress(peers[i].address, &host, &port);
            // Any reply at all — `ok` or `draining` — proves the event
            // loop is answering; that is the liveness that matters.
            (void)adminQuery(host, port, "HEALTH",
                             options_.probe_timeout_seconds);
            alive[i] = true;
        } catch (const std::exception &) {
            alive[i] = false;
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::uint32_t, PeerState> next;
    for (std::size_t i = 0; i < peers.size(); ++i) {
        PeerState state;
        auto known = states_.find(peers[i].id);
        if (known != states_.end())
            state = known->second;
        state.id = peers[i].id;
        state.address = peers[i].address;
        if (alive[i]) {
            state.consecutive_failures = 0;
            state.health = PeerHealth::Alive;
        } else {
            ++state.consecutive_failures;
            if (state.consecutive_failures
                >= options_.down_after_failures)
                state.health = PeerHealth::Down;
            else if (state.consecutive_failures
                     >= options_.suspect_after_failures)
                state.health = PeerHealth::Suspect;
        }
        next.emplace(state.id, std::move(state));
    }
    states_ = std::move(next); // shards that LEAVEd drop out
}

PeerHealth
HealthMonitor::healthOf(std::uint32_t shard_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = states_.find(shard_id);
    if (found == states_.end())
        return PeerHealth::Alive;
    return found->second.health;
}

std::vector<HealthMonitor::PeerState>
HealthMonitor::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PeerState> out;
    out.reserve(states_.size());
    for (const auto &[id, state] : states_)
        out.push_back(state);
    return out;
}

void
HealthMonitor::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    std::lock_guard<std::mutex> join_lock(join_mutex_);
    if (prober_.joinable())
        prober_.join();
}

void
HealthMonitor::probeLoop()
{
    auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(std::chrono::duration<double>(
        options_.probe_interval_seconds));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        lock.unlock();
        probeOnce();
        lock.lock();
        wake_.wait_for(lock, interval, [this] { return stopping_; });
    }
}

} // namespace opdvfs::net
