#include "net/chaos.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <stdexcept>

#include "common/random.h"

namespace opdvfs::net {

namespace {

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw std::runtime_error("chaos: fcntl(O_NONBLOCK) failed");
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Close with SO_LINGER {1, 0}: the peer sees an RST, not a FIN. */
void
rstClose(int &fd)
{
    if (fd < 0)
        return;
    linger hard{};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    closeFd(fd);
}

/** Sleep @p seconds in short slices, abandoning early on @p stopping
 *  so a configured stall cannot hold up ChaosProxy::stop(). */
void
sleepSlices(double seconds, const std::atomic<bool> &stopping)
{
    using clock = std::chrono::steady_clock;
    auto until = clock::now()
                 + std::chrono::duration_cast<clock::duration>(
                     std::chrono::duration<double>(seconds));
    while (!stopping.load(std::memory_order_relaxed)
           && clock::now() < until)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

/** Write all of @p data to the non-blocking @p fd, polling for space;
 *  false = the peer is gone or stop was requested. */
bool
sendAll(int fd, const char *data, std::size_t size,
        const std::atomic<bool> &stopping)
{
    while (size > 0) {
        if (stopping.load(std::memory_order_relaxed))
            return false;
        ssize_t wrote = ::send(fd, data, size, MSG_NOSIGNAL);
        if (wrote > 0) {
            data += wrote;
            size -= static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 && errno == EINTR)
            continue;
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd, POLLOUT, 0};
            ::poll(&pfd, 1, 50);
            continue;
        }
        return false;
    }
    return true;
}

/** Fault-schedule state for one direction of one connection. */
struct DirectionState
{
    Rng rng;
    /** Whether the plan's faults apply to this direction at all. */
    bool enabled;
    /** Bytes forwarded so far (fault offsets index into this). */
    std::uint64_t forwarded = 0;
    /** The one-shot stall has fired. */
    bool stalled = false;
};

} // namespace

ChaosProxy::ChaosProxy(std::string upstream_host,
                       std::uint16_t upstream_port, ChaosPlan plan)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port), plan_(plan)
{}

ChaosProxy::~ChaosProxy() { stop(); }

void
ChaosProxy::start()
{
    if (started_)
        throw std::runtime_error("chaos: start() called twice");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error("chaos: socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1
        || ::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
               < 0
        || ::listen(listen_fd_, 16) < 0) {
        closeFd(listen_fd_);
        throw std::runtime_error("chaos: cannot bind/listen on loopback");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len)
        < 0) {
        closeFd(listen_fd_);
        throw std::runtime_error("chaos: getsockname() failed");
    }
    bound_port_ = ntohs(addr.sin_port);
    setNonBlocking(listen_fd_);

    stopping_.store(false);
    started_ = true;
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

void
ChaosProxy::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    if (accept_thread_.joinable())
        accept_thread_.join();
    closeFd(listen_fd_);
    std::vector<std::thread> relays;
    {
        std::lock_guard<std::mutex> lock(relay_mutex_);
        relays.swap(relay_threads_);
    }
    for (auto &thread : relays)
        if (thread.joinable())
            thread.join();
    started_ = false;
}

ChaosCounters
ChaosProxy::counters() const
{
    std::lock_guard<std::mutex> lock(counters_mutex_);
    return counters_;
}

void
ChaosProxy::acceptLoop()
{
    std::uint64_t next_index = 0;
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        ::poll(&pfd, 1, 50);
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::uint64_t index = next_index++;
        {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            ++counters_.connections;
        }
        std::lock_guard<std::mutex> lock(relay_mutex_);
        relay_threads_.emplace_back(
            [this, fd, index]() mutable { relay(fd, index); });
    }
}

void
ChaosProxy::relay(int client_fd, std::uint64_t connection_index)
{
    int upstream_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(upstream_port_);
    if (upstream_fd < 0
        || ::inet_pton(AF_INET, upstream_host_.c_str(), &addr.sin_addr)
               != 1
        || ::connect(upstream_fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr))
               < 0) {
        closeFd(upstream_fd);
        closeFd(client_fd);
        return;
    }
    setNonBlocking(client_fd);
    setNonBlocking(upstream_fd);

    // Per-connection, per-direction streams forked from the plan seed
    // and the accept order, so concurrent connections cannot perturb
    // each other's fault schedules (same idiom as npu::FaultInjector).
    Rng connection_rng(plan_.seed
                       + 0x9E3779B97F4A7C15ull * (connection_index + 1));
    DirectionState up{connection_rng.fork(), plan_.apply_upstream};
    DirectionState down{connection_rng.fork(), plan_.apply_downstream};

    // Forward one freshly-read block through the fault schedule.
    // Returns false when the connection is finished (reset injected or
    // the destination is gone).
    auto forward = [&](const char *data, std::size_t size,
                       DirectionState &dir, int dest_fd,
                       bool is_upstream) -> bool {
        while (size > 0) {
            if (stopping_.load(std::memory_order_relaxed))
                return false;

            // A pending one-shot stall fires exactly at its byte
            // boundary, so a block spanning it is delivered in two
            // silences-apart pieces.
            bool stall_armed = dir.enabled && plan_.stall_after_bytes > 0
                               && plan_.stall_seconds > 0.0
                               && !dir.stalled;
            if (stall_armed
                && dir.forwarded >= plan_.stall_after_bytes) {
                dir.stalled = true;
                {
                    std::lock_guard<std::mutex> lock(counters_mutex_);
                    ++counters_.stalls;
                }
                sleepSlices(plan_.stall_seconds, stopping_);
                if (stopping_.load(std::memory_order_relaxed))
                    return false;
            }

            std::size_t take = size;
            if (stall_armed && dir.forwarded < plan_.stall_after_bytes)
                take = std::min<std::size_t>(
                    take, plan_.stall_after_bytes - dir.forwarded);
            bool reset_armed =
                dir.enabled && plan_.reset_after_bytes > 0;
            if (reset_armed)
                take = std::min<std::size_t>(
                    take, plan_.reset_after_bytes - dir.forwarded);
            if (dir.enabled && plan_.max_chunk_bytes > 0) {
                std::size_t lo =
                    std::max<std::size_t>(1, plan_.min_chunk_bytes);
                std::size_t hi =
                    std::max<std::size_t>(lo, plan_.max_chunk_bytes);
                take = std::min<std::size_t>(
                    take, static_cast<std::size_t>(dir.rng.uniformInt(
                              static_cast<std::int64_t>(lo),
                              static_cast<std::int64_t>(hi))));
            }

            std::string block(data, take);
            if (dir.enabled) {
                std::uint64_t corrupted = 0;
                for (std::size_t i = 0; i < block.size(); ++i) {
                    std::uint64_t offset = dir.forwarded + i;
                    bool targeted =
                        plan_.corrupt_byte_index >= 0
                        && offset == static_cast<std::uint64_t>(
                               plan_.corrupt_byte_index);
                    bool sampled = plan_.corrupt_rate > 0.0
                                   && dir.rng.chance(plan_.corrupt_rate);
                    if (targeted || sampled) {
                        block[i] = static_cast<char>(
                            static_cast<unsigned char>(block[i])
                            ^ (1u << dir.rng.index(8)));
                        ++corrupted;
                    }
                }
                if (corrupted > 0) {
                    std::lock_guard<std::mutex> lock(counters_mutex_);
                    counters_.bytes_corrupted += corrupted;
                }
            }

            if (!sendAll(dest_fd, block.data(), block.size(), stopping_))
                return false;
            dir.forwarded += take;
            data += take;
            size -= take;
            {
                std::lock_guard<std::mutex> lock(counters_mutex_);
                ++counters_.chunks;
                if (is_upstream)
                    counters_.bytes_up += take;
                else
                    counters_.bytes_down += take;
            }

            if (reset_armed
                && dir.forwarded >= plan_.reset_after_bytes) {
                {
                    std::lock_guard<std::mutex> lock(counters_mutex_);
                    ++counters_.resets;
                }
                rstClose(client_fd);
                rstClose(upstream_fd);
                return false;
            }

            if (size > 0 && dir.enabled
                && plan_.inter_chunk_delay_us > 0)
                sleepSlices(plan_.inter_chunk_delay_us * 1e-6,
                            stopping_);
        }
        return true;
    };

    bool client_eof = false;
    bool upstream_eof = false;
    char buffer[4096];
    while (!stopping_.load(std::memory_order_relaxed)
           && !(client_eof && upstream_eof)) {
        pollfd fds[2];
        nfds_t count = 0;
        if (!client_eof)
            fds[count++] = {client_fd, POLLIN, 0};
        if (!upstream_eof)
            fds[count++] = {upstream_fd, POLLIN, 0};
        ::poll(fds, count, 25);

        for (nfds_t i = 0; i < count; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            bool from_client = fds[i].fd == client_fd;
            ssize_t got = ::recv(fds[i].fd, buffer, sizeof(buffer), 0);
            if (got < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK
                    || errno == EINTR)
                    continue;
                got = 0; // treat a hard error as EOF for this side
            }
            if (got == 0) {
                // Half-close: propagate the FIN but keep relaying the
                // other direction (a response may still be in flight).
                if (from_client) {
                    client_eof = true;
                    if (upstream_fd >= 0)
                        ::shutdown(upstream_fd, SHUT_WR);
                } else {
                    upstream_eof = true;
                    if (client_fd >= 0)
                        ::shutdown(client_fd, SHUT_WR);
                }
                continue;
            }
            DirectionState &dir = from_client ? up : down;
            int dest = from_client ? upstream_fd : client_fd;
            if (!forward(buffer, static_cast<std::size_t>(got), dir,
                         dest, from_client)) {
                closeFd(client_fd);
                closeFd(upstream_fd);
                return;
            }
        }
    }
    closeFd(client_fd);
    closeFd(upstream_fd);
}

} // namespace opdvfs::net
