/**
 * @file
 * Versioned, length-prefixed binary wire protocol for the strategy
 * service.
 *
 * A frame is a fixed 16-byte header followed by the payload:
 *
 *   offset  size  field
 *   0       4     magic "ODVF"
 *   4       1     protocol version (kWireVersion)
 *   5       1     message type (MsgType)
 *   6       2     reserved, must be zero
 *   8       4     payload length, little-endian
 *   12      4     CRC-32 (IEEE 802.3) of the payload bytes
 *   16      ...   payload
 *
 * Payloads are flat little-endian records (no alignment, no pointers);
 * doubles travel as their IEEE-754 bit pattern.  Every length and
 * element count is validated against `WireLimits` *before* any
 * allocation, so a malicious frame cannot make the decoder allocate
 * beyond the caps, and the CRC rejects torn or bit-flipped frames
 * before the payload decoder ever runs.
 *
 * The request codec serialises the workload through
 * `models::visitWorkloadFields` — the exact canonical stream the
 * service fingerprint hashes — so the codec and the fingerprint can
 * never disagree on field coverage: for every accepted request payload
 * `encodeRequest(decodeRequest(p)) == p` byte for byte, and the
 * server-side fingerprint of the decoded workload equals the
 * client-side fingerprint of the original.  Strategies in responses
 * reuse the `dvfs::strategy_io` text format (embedded as one
 * length-prefixed block), inheriting its validation and stability
 * guarantees.
 *
 * Version policy: the version byte is bumped on any layout change; a
 * decoder seeing a foreign version throws WireVersionError without
 * reading further (clients must not retry — the peer build differs).
 * The per-op field count transmitted in each request guards the
 * visitor-coverage contract the same way.
 */

#ifndef OPDVFS_NET_WIRE_H
#define OPDVFS_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dvfs/strategy_io.h"
#include "models/workload.h"
#include "npu/npu_chip.h"
#include "serve/service.h"

namespace opdvfs::net {

/**
 * Protocol version this build speaks.
 *
 * v2 added the optional request deadline (flag-gated `deadline_ms`
 * after the seed) and the mandatory `retry_after_ms` hint on Busy
 * responses.
 *
 * v3 added the cluster messages: the `NotOwner` response status
 * (carrying the owner address, the current map epoch and the full
 * encoded shard map so a stale client self-heals in one round trip)
 * and the shard-to-shard frame types `PeerDonorQuery`/`PeerDonorReply`
 * (cross-shard warm-start donors) and
 * `EpochInvalidate`/`EpochInvalidateAck` (cluster-wide model-epoch
 * coherence after a recalibration).
 *
 * v4 added the fault-tolerance messages: the shard-to-shard frame
 * types `PeerReplicate`/`PeerReplicateAck` (an owner pushing a cache
 * entry to its ring successors as a warm-start-only replica) and the
 * flag-gated `serve_replica` request bit (a failover router asking a
 * successor to answer a non-owned key from its replica set instead of
 * redirecting with NotOwner).
 *
 * v5 added the `Predicted` provenance value: a response served
 * straight from the surrogate pre-ranker on a first-contact miss,
 * while the full search refines it asynchronously (predict-first
 * serving mode).  The payload layout is unchanged — v4 decoders would
 * reject the new provenance byte, so the version gates it.
 */
inline constexpr std::uint8_t kWireVersion = 5;

/** Frame header size in bytes (magic..CRC). */
inline constexpr std::size_t kFrameHeaderBytes = 16;

/** Frame magic, on the wire as the bytes 'O' 'D' 'V' 'F'. */
inline constexpr char kWireMagic[4] = {'O', 'D', 'V', 'F'};

/** Frame message types. */
enum class MsgType : std::uint8_t
{
    Request = 1,
    Response = 2,
    /** Shard-to-shard: probe a peer's cache for a warm-start donor. */
    PeerDonorQuery = 3,
    /** Shard-to-shard: the (possibly empty) donor answer. */
    PeerDonorReply = 4,
    /** Shard-to-shard: a recalibration advanced the model epoch;
     *  raise yours so stale strategies stop being exact hits. */
    EpochInvalidate = 5,
    /** Shard-to-shard: the receiver's epoch after applying the
     *  invalidate — the broadcast's completion signal. */
    EpochInvalidateAck = 6,
    /** Shard-to-shard: an owner pushing a cache entry to a ring
     *  successor as a warm-start-only replica. */
    PeerReplicate = 7,
    /** Shard-to-shard: the successor's accept/reject of a replica. */
    PeerReplicateAck = 8,
};

/** Response status codes. */
enum class Status : std::uint8_t
{
    Ok = 0,
    /** Admission rejected; `reject` carries the structured cause.
     *  Retryable with backoff (requests are idempotent by
     *  fingerprint). */
    Busy = 1,
    /** The request failed to decode.  Never retry. */
    Malformed = 2,
    /** The request's chip differs from the one this service
     *  optimises for.  Never retry against this server. */
    ChipMismatch = 3,
    /** The pipeline threw while serving the request. */
    Internal = 4,
    /**
     * This shard does not own the request's fingerprint on the
     * cluster's consistent-hash ring.  The response carries the owner
     * address, the server's map epoch and the full encoded map; a
     * router retries at the owner after refreshing any stale map.
     * Never served past the redirect bound — a client that keeps
     * seeing NotOwner holds a map no server agrees with.
     */
    NotOwner = 5,
};

/** Whitespace-free token ("ok", "busy", ...). */
const char *statusToken(Status status);

/** Hard caps the decoder enforces before allocating. */
struct WireLimits
{
    /** Whole frame including the 16-byte header. */
    std::size_t max_frame_bytes = 4u << 20;
    /** Operators per request workload. */
    std::size_t max_ops = 100000;
    /** Any single string field (op type names). */
    std::size_t max_string_bytes = 256;
    /** Embedded strategy_io text block in a response. */
    std::size_t max_strategy_bytes = 1u << 20;
    /** Error-message string in a response. */
    std::size_t max_message_bytes = 4096;
    /** Encoded shard-map text in a NotOwner response. */
    std::size_t max_shard_map_bytes = 64u << 10;
    /** Fingerprint similarity features in a peer donor message. */
    std::size_t max_features = 64;
    /** Per-stage frequency entries in a peer donor reply. */
    std::size_t max_stages = 16384;
};

/** Malformed frame or payload; never retryable. */
class WireError : public std::invalid_argument
{
  public:
    using std::invalid_argument::invalid_argument;
};

/** The peer speaks a different protocol version (or field coverage). */
class WireVersionError : public WireError
{
  public:
    using WireError::WireError;
};

/** One optimisation request as it travels over the wire. */
struct WireRequest
{
    /**
     * The workload content.  The *name* is not transmitted (it is
     * excluded from the request identity, exactly as in the
     * fingerprint); decoded workloads come back with an empty name
     * and positional op ids.
     */
    models::Workload workload;
    /** The chip the caller wants the strategy for; the server rejects
     *  with ChipMismatch when it differs from the serving chip. */
    npu::NpuConfig chip;
    double perf_loss_target = 0.02;
    std::uint64_t seed = 1;
    bool use_cache = true;
    bool allow_warm_start = true;
    /**
     * Remaining caller budget in milliseconds; 0 = no deadline (the
     * field is then absent from the wire, guarded by a flag bit, so
     * deadline-less requests keep the v1 payload shape).  The server
     * refuses to start a search once the budget has elapsed and
     * answers Busy/Expired instead.
     */
    std::uint32_t deadline_ms = 0;
    /**
     * Failover bit: the caller knows this server is not the owner and
     * asks it to answer from its replica set (or compute locally)
     * instead of redirecting with NotOwner.  Set only by a router
     * whose owner dial failed; replica answers degrade exact hits to
     * warm starts, never to errors.
     */
    bool serve_replica = false;
};

/** One response as it travels over the wire. */
struct WireResponse
{
    Status status = Status::Ok;
    /** Structured cause for Status::Busy; None otherwise. */
    serve::RejectReason reject = serve::RejectReason::None;
    /**
     * Backpressure hint carried by every Busy response (and only
     * those): the server's estimate of when a retry is worth sending.
     * 0 = no estimate.  Clients must wait at least this long before
     * retrying — the fleet-wide contract that keeps a recovering
     * server from being re-stormed.
     */
    std::uint32_t retry_after_ms = 0;
    /** Human-readable context for non-Ok statuses. */
    std::string message;

    // --- Status::Ok payload -------------------------------------------
    /** The strategy with its meta (score/provenance/fingerprint). */
    dvfs::Strategy strategy;
    double best_score = 0.0;
    serve::Provenance provenance = serve::Provenance::Cold;
    double similarity = 0.0;
    std::uint32_t generations_run = 0;
    std::uint32_t generations_saved = 0;
    /** Wall time inside the service (server-side clock). */
    double service_seconds = 0.0;
    std::uint64_t fingerprint_digest = 0;
    std::uint64_t model_epoch = 0;

    // --- Status::NotOwner payload -------------------------------------
    /** "host:port" of the shard owning the request's fingerprint. */
    std::string owner_address;
    /** The answering server's shard-map epoch. */
    std::uint64_t map_epoch = 0;
    /** The full encoded shard map (shard::ShardMap::encode text) so a
     *  stale router self-heals from one redirect. */
    std::string shard_map_text;
};

// --- shard-to-shard messages -------------------------------------------

/** Probe of a peer shard's cache for a warm-start donor. */
struct PeerDonorQuery
{
    /** Fingerprint of the cold request (digest + features + epoch). */
    std::uint64_t digest = 0;
    std::vector<double> features;
    std::uint64_t model_epoch = 0;
    double perf_loss_target = 0.02;
    /** The asking shard (telemetry; not used for routing). */
    std::uint32_t origin_shard = 0;
};

/** Answer to a PeerDonorQuery; `found == false` carries no donor. */
struct PeerDonorReply
{
    bool found = false;
    /** Donor similarity to the probe, as the peer computed it. */
    double similarity = 0.0;
    /** Donor identity: enough to import it as a donor-only entry. */
    std::uint64_t fingerprint_digest = 0;
    std::vector<double> features;
    std::uint64_t model_epoch = 0;
    double perf_loss_target = 0.0;
    double best_score = 0.0;
    /** Per-stage frequencies seeding the warm start. */
    std::vector<double> best_mhz;
    /** The donor strategy in strategy_io text form. */
    std::string strategy_text;
};

/** A recalibration advanced the origin shard's model epoch. */
struct EpochInvalidate
{
    std::uint32_t origin_shard = 0;
    /** Raise your epoch to at least this value. */
    std::uint64_t model_epoch = 0;
};

/** The receiver's epoch after applying an EpochInvalidate. */
struct EpochInvalidateAck
{
    std::uint32_t shard_id = 0;
    std::uint64_t model_epoch = 0;
};

/**
 * An owner pushing one cache entry to a ring successor.  The
 * successor imports it exactly as a peer donor (warm_start_only), so
 * a replica can never shadow an owned exact hit; it additionally
 * becomes servable as a degraded answer when a failover request
 * carries the serve_replica flag.
 */
struct PeerReplicate
{
    /** The replicating owner (telemetry; not used for routing). */
    std::uint32_t origin_shard = 0;
    /** Donor identity, mirroring PeerDonorReply. */
    std::uint64_t fingerprint_digest = 0;
    std::vector<double> features;
    std::uint64_t model_epoch = 0;
    double perf_loss_target = 0.0;
    double best_score = 0.0;
    /** Per-stage frequencies seeding a warm start. */
    std::vector<double> best_mhz;
    /** The replicated strategy in strategy_io text form. */
    std::string strategy_text;
};

/** The successor's answer to a PeerReplicate. */
struct PeerReplicateAck
{
    std::uint32_t shard_id = 0;
    /** False when the successor refused the entry (e.g. stale epoch). */
    bool accepted = false;
};

/** One frame peeled off the front of a byte stream. */
struct FrameView
{
    MsgType type = MsgType::Request;
    std::string_view payload;
};

// --- payload codecs ----------------------------------------------------

/** Serialise a request payload (not framed). @throws WireError when a
 *  field exceeds the caps or is non-finite. */
std::string encodeRequest(const WireRequest &request,
                          const WireLimits &limits = {});

/** Parse a request payload. @throws WireError / WireVersionError. */
WireRequest decodeRequest(std::string_view payload,
                          const WireLimits &limits = {});

/** Serialise a response payload (not framed). */
std::string encodeResponse(const WireResponse &response,
                           const WireLimits &limits = {});

/** Parse a response payload. @throws WireError. */
WireResponse decodeResponse(std::string_view payload,
                            const WireLimits &limits = {});

/** Peer-donor query codec. @throws WireError on malformed input. */
std::string encodePeerDonorQuery(const PeerDonorQuery &query,
                                 const WireLimits &limits = {});
PeerDonorQuery decodePeerDonorQuery(std::string_view payload,
                                    const WireLimits &limits = {});

/** Peer-donor reply codec. @throws WireError on malformed input. */
std::string encodePeerDonorReply(const PeerDonorReply &reply,
                                 const WireLimits &limits = {});
PeerDonorReply decodePeerDonorReply(std::string_view payload,
                                    const WireLimits &limits = {});

/** Epoch-invalidate codec. @throws WireError on malformed input. */
std::string encodeEpochInvalidate(const EpochInvalidate &invalidate);
EpochInvalidate decodeEpochInvalidate(std::string_view payload);

/** Epoch-invalidate-ack codec. @throws WireError on malformed input. */
std::string encodeEpochInvalidateAck(const EpochInvalidateAck &ack);
EpochInvalidateAck decodeEpochInvalidateAck(std::string_view payload);

/** Peer-replicate codec. @throws WireError on malformed input. */
std::string encodePeerReplicate(const PeerReplicate &replicate,
                                const WireLimits &limits = {});
PeerReplicate decodePeerReplicate(std::string_view payload,
                                  const WireLimits &limits = {});

/** Peer-replicate-ack codec. @throws WireError on malformed input. */
std::string encodePeerReplicateAck(const PeerReplicateAck &ack);
PeerReplicateAck decodePeerReplicateAck(std::string_view payload);

// --- framing -----------------------------------------------------------

/** Wrap @p payload in a frame header (version, length, CRC-32). */
std::string frameMessage(MsgType type, std::string_view payload,
                         const WireLimits &limits = {});

/**
 * Try to peel one frame off the front of @p buffer.  Returns nullopt
 * when more bytes are needed (an incomplete header or payload is never
 * an error), otherwise the frame view into @p buffer with @p consumed
 * set to the bytes to drop.  @throws WireError on bad magic, reserved
 * bits, an oversized declared length or a CRC mismatch, and
 * WireVersionError on a foreign version byte — all detectable from the
 * header alone except the CRC, so oversized frames are rejected before
 * they are ever buffered.
 */
std::optional<FrameView> peelFrame(std::string_view buffer,
                                   std::size_t *consumed,
                                   const WireLimits &limits = {});

/** Convenience: encode + frame in one call. */
std::string frameRequest(const WireRequest &request,
                         const WireLimits &limits = {});
std::string frameResponse(const WireResponse &response,
                          const WireLimits &limits = {});

// --- coverage helpers --------------------------------------------------

/**
 * Number of scalar fields `models::visitWorkloadFields` emits per
 * operator in this build.  Transmitted in every request and checked by
 * the decoder: a mismatch means the peer's field coverage differs and
 * the request must be rejected rather than silently misaligned.
 */
std::size_t workloadNumbersPerOp();

/**
 * The chip-configuration block exactly as the request codec transmits
 * it.  Two chips are "the same optimisation target" if and only if
 * their blocks are byte-equal — the server's mismatch check.
 */
std::string encodeChipConfig(const npu::NpuConfig &chip);

} // namespace opdvfs::net

#endif // OPDVFS_NET_WIRE_H
