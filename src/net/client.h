/**
 * @file
 * Blocking RPC client for the strategy server, resilient by policy:
 *
 *  - connect and whole-request deadlines (a stalled server cannot
 *    hang the caller);
 *  - bounded exponential backoff with deterministic jitter between
 *    retries;
 *  - retries only where they are sound: `Busy` responses and
 *    transport failures (refused / reset / torn connection) are
 *    retryable because requests are idempotent by fingerprint —
 *    re-sending the same request can at worst re-answer from the
 *    cache.  Malformed-frame errors and version mismatches are never
 *    retried (the bytes will not get better), and a deadline expiry
 *    fails the call immediately (retrying would double the wait the
 *    caller already refused to pay);
 *  - collective restraint: the server's `retry_after_ms` hint is a
 *    floor under every backoff sleep, a consecutive-failure circuit
 *    breaker (closed -> open -> half-open probe) stops hammering a
 *    dead server, and an optional fleet-shared RetryBudget caps the
 *    ratio of retries to first attempts so many clients cannot mount
 *    a retry storm against a recovering server;
 *  - deadline propagation: unless disabled, each attempt stamps its
 *    remaining time budget into the request (`deadline_ms`) so the
 *    server can refuse work this caller will no longer wait for.
 *
 * One client drives one connection, lazily (re-)established; it is
 * not thread-safe — use one client per thread (the bench does).  The
 * RetryBudget is the one shared, thread-safe piece.
 */

#ifndef OPDVFS_NET_CLIENT_H
#define OPDVFS_NET_CLIENT_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "net/wire.h"

namespace opdvfs::net {

/** Transport-level failure (connect/send/recv); retryable. */
class NetError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The server rejected admission (Status::Busy); retryable. */
class BusyError : public NetError
{
  public:
    BusyError(const std::string &what, serve::RejectReason reason,
              std::uint32_t retry_after_ms = 0)
        : NetError(what), reason_(reason), retry_after_ms_(retry_after_ms)
    {}

    /** Structured cause from the wire (queue-full / shutting-down /
     *  expired / overloaded). */
    serve::RejectReason reason() const { return reason_; }

    /** Server backpressure hint; 0 = none.  The client floors its
     *  backoff sleep at this value before retrying. */
    std::uint32_t retry_after_ms() const { return retry_after_ms_; }

  private:
    serve::RejectReason reason_;
    std::uint32_t retry_after_ms_;
};

/**
 * The client's circuit breaker is open: recent consecutive failures
 * prove the server unreachable, and the cool-down has not elapsed, so
 * the call fails without touching the network.  A NetError subclass:
 * callers treating transport failures as retryable-later need no new
 * handling.
 */
class CircuitOpenError : public NetError
{
  public:
    using NetError::NetError;
};

/** The configured deadline expired; never retried internally. */
class DeadlineError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * The server answered Status::NotOwner: this shard does not own the
 * request's fingerprint on the cluster ring.  Not retried by the
 * client (the same server would answer the same way); the ShardRouter
 * catches it, refreshes its map from the carried text when the
 * server's epoch is newer, and re-sends to the named owner.
 */
class NotOwnerError : public std::runtime_error
{
  public:
    NotOwnerError(const std::string &what, std::string owner_address,
                  std::uint64_t map_epoch, std::string shard_map_text)
        : std::runtime_error(what),
          owner_address_(std::move(owner_address)),
          map_epoch_(map_epoch),
          shard_map_text_(std::move(shard_map_text))
    {}

    /** "host:port" of the owning shard. */
    const std::string &ownerAddress() const { return owner_address_; }
    /** The answering server's shard-map epoch. */
    std::uint64_t mapEpoch() const { return map_epoch_; }
    /** The server's full encoded map (shard::ShardMap::encode text). */
    const std::string &shardMapText() const { return shard_map_text_; }

  private:
    std::string owner_address_;
    std::uint64_t map_epoch_;
    std::string shard_map_text_;
};

/** The server answered with a non-retryable failure status. */
class RemoteError : public std::runtime_error
{
  public:
    RemoteError(const std::string &what, Status status)
        : std::runtime_error(what), status_(status)
    {}

    Status status() const { return status_; }

  private:
    Status status_;
};

/**
 * Fleet-wide retry rationing: a token bucket shared by every client of
 * one logical server.  First attempts deposit a fraction of a token;
 * each retry withdraws a whole one.  Sustained, the fleet's retry rate
 * is therefore at most `tokens_per_attempt` times its first-attempt
 * rate — retries amplify healthy traffic a little instead of
 * multiplying a brown-out.  Thread-safe.
 */
class RetryBudget
{
  public:
    explicit RetryBudget(double tokens_per_attempt = 0.1,
                         double max_tokens = 10.0);

    /** A first attempt is being made: deposit the earn fraction. */
    void onAttempt();

    /** Take one token for a retry; false = budget exhausted. */
    bool tryWithdrawRetry();

    /** Current balance (observability). */
    double tokens() const;

  private:
    mutable std::mutex mutex_;
    double tokens_per_attempt_;
    double max_tokens_;
    double tokens_;
};

/** Circuit-breaker state (closed = healthy). */
enum class BreakerState : std::uint8_t
{
    /** Requests flow; consecutive failures are being counted. */
    Closed,
    /** Threshold reached: calls fail fast until the cool-down ends. */
    Open,
    /** Cool-down elapsed: exactly one probe is in flight; its outcome
     *  closes or re-opens the breaker. */
    HalfOpen,
};

/** Client configuration. */
struct ClientOptions
{
    /** Deadline for establishing a connection, seconds. */
    double connect_timeout_seconds = 2.0;
    /** Whole-call deadline per attempt (send + server + recv). */
    double request_timeout_seconds = 30.0;
    /** Total tries per call() (1 = no retries). */
    int max_attempts = 4;
    /** First backoff delay; doubles per retry. */
    double backoff_initial_seconds = 0.05;
    /** Backoff ceiling. */
    double backoff_max_seconds = 1.0;
    /** Seed for the deterministic backoff jitter. */
    std::uint64_t jitter_seed = 1;
    /**
     * When nonzero, the jitter RNG is additionally reseeded from
     * (seed, connection index) at every successful (re)connect, making
     * whole retry/breaker schedules a pure function of the options —
     * deterministic tests need no timing slack.
     */
    std::uint64_t seed = 0;
    /**
     * Stamp the remaining per-attempt budget into requests that carry
     * no explicit deadline_ms, so the server can expire work this
     * caller has stopped waiting for.
     */
    bool propagate_deadline = true;
    /** Consecutive transport/deadline failures that open the circuit
     *  breaker; 0 disables it. */
    int breaker_failure_threshold = 5;
    /** Cool-down before a half-open probe is allowed. */
    double breaker_open_seconds = 1.0;
    /** Fleet-shared retry rationing; null = unlimited retries. */
    std::shared_ptr<RetryBudget> retry_budget;
    /** Decoder caps applied to inbound response frames. */
    WireLimits limits;
};

// --- pure backoff policy (unit-testable without sockets) ---------------

/**
 * Nominal (pre-jitter) backoff before the (retry_index + 1)-th
 * attempt, 1-based: backoff_initial doubled per retry, capped at
 * backoff_max.  Non-decreasing in retry_index.
 */
double backoffNominalSeconds(const ClientOptions &options,
                             int retry_index);

/**
 * The actual sleep before a retry: nominal backoff jittered into
 * [0.5, 1.0] x nominal (advancing @p jitter_state deterministically),
 * then floored at the server's @p retry_after_ms hint — the hint is
 * always respected even when it exceeds the backoff ceiling.
 */
double retryDelaySeconds(const ClientOptions &options, int retry_index,
                         std::uint32_t retry_after_ms,
                         std::uint64_t &jitter_state);

/** Blocking strategy-server client.  Not thread-safe. */
class StrategyClient
{
  public:
    StrategyClient(std::string host, std::uint16_t port,
                   ClientOptions options = {});
    ~StrategyClient();

    StrategyClient(const StrategyClient &) = delete;
    StrategyClient &operator=(const StrategyClient &) = delete;

    /**
     * Send @p request and block for the response, retrying per the
     * options.  Returns only Status::Ok responses.
     * @throws BusyError         every attempt was rejected (last cause)
     * @throws NetError          every attempt failed in transport, or
     *                           the shared retry budget ran dry
     * @throws CircuitOpenError  the breaker is open and the cool-down
     *                           has not elapsed (nothing was sent)
     * @throws DeadlineError     a deadline expired
     * @throws RemoteError       the server answered Malformed /
     *                           ChipMismatch / Internal (no retry)
     * @throws NotOwnerError     the server does not own the request's
     *                           fingerprint (no retry here; routers
     *                           follow the redirect)
     * @throws WireError         the server's bytes failed to decode
     *                           (no retry)
     */
    WireResponse call(const WireRequest &request);

    /** True while a connection is established. */
    bool connected() const { return fd_ >= 0; }

    /** Drop the connection (the next call reconnects). */
    void disconnect();

    /** Retries performed across all call()s (observability). */
    std::uint64_t retries() const { return retries_; }

    /** connect(2) attempts, including failed ones (the breaker bounds
     *  this against a dead server). */
    std::uint64_t connectAttempts() const { return connect_attempts_; }

    /** Times the breaker transitioned to Open. */
    std::uint64_t breakerOpens() const { return breaker_opens_; }

    BreakerState breakerState() const { return breaker_state_; }

  private:
    WireResponse attemptOnce(const WireRequest &request,
                             const std::string &frame);
    void connectWithDeadline();
    void sendAll(const std::string &bytes, double deadline);
    WireResponse receiveResponse(double deadline);
    /** @throws CircuitOpenError; transitions Open -> HalfOpen when the
     *  cool-down has elapsed. */
    void breakerAdmit();
    void breakerRecordSuccess();
    void breakerRecordFailure();
    double now() const;

    std::string host_;
    std::uint16_t port_;
    ClientOptions options_;
    int fd_ = -1;
    std::uint64_t jitter_state_;
    std::uint64_t retries_ = 0;
    std::uint64_t connect_attempts_ = 0;
    std::uint64_t connections_established_ = 0;
    BreakerState breaker_state_ = BreakerState::Closed;
    int breaker_failures_ = 0;
    double breaker_open_until_ = 0.0;
    std::uint64_t breaker_opens_ = 0;
};

/**
 * One-shot plaintext admin query against a strategy server (`STATS`
 * or `HEALTH`); returns the raw response text.
 * @throws NetError / DeadlineError on transport failure.
 */
std::string adminQuery(const std::string &host, std::uint16_t port,
                       const std::string &command,
                       double timeout_seconds = 2.0);

} // namespace opdvfs::net

#endif // OPDVFS_NET_CLIENT_H
