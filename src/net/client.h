/**
 * @file
 * Blocking RPC client for the strategy server, resilient by policy:
 *
 *  - connect and whole-request deadlines (a stalled server cannot
 *    hang the caller);
 *  - bounded exponential backoff with deterministic jitter between
 *    retries;
 *  - retries only where they are sound: `Busy` responses and
 *    transport failures (refused / reset / torn connection) are
 *    retryable because requests are idempotent by fingerprint —
 *    re-sending the same request can at worst re-answer from the
 *    cache.  Malformed-frame errors and version mismatches are never
 *    retried (the bytes will not get better), and a deadline expiry
 *    fails the call immediately (retrying would double the wait the
 *    caller already refused to pay).
 *
 * One client drives one connection, lazily (re-)established; it is
 * not thread-safe — use one client per thread (the bench does).
 */

#ifndef OPDVFS_NET_CLIENT_H
#define OPDVFS_NET_CLIENT_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/wire.h"

namespace opdvfs::net {

/** Transport-level failure (connect/send/recv); retryable. */
class NetError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The server rejected admission (Status::Busy); retryable. */
class BusyError : public NetError
{
  public:
    BusyError(const std::string &what, serve::RejectReason reason)
        : NetError(what), reason_(reason)
    {}

    /** Structured cause from the wire (queue-full / shutting-down). */
    serve::RejectReason reason() const { return reason_; }

  private:
    serve::RejectReason reason_;
};

/** The configured deadline expired; never retried internally. */
class DeadlineError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The server answered with a non-retryable failure status. */
class RemoteError : public std::runtime_error
{
  public:
    RemoteError(const std::string &what, Status status)
        : std::runtime_error(what), status_(status)
    {}

    Status status() const { return status_; }

  private:
    Status status_;
};

/** Client configuration. */
struct ClientOptions
{
    /** Deadline for establishing a connection, seconds. */
    double connect_timeout_seconds = 2.0;
    /** Whole-call deadline per attempt (send + server + recv). */
    double request_timeout_seconds = 30.0;
    /** Total tries per call() (1 = no retries). */
    int max_attempts = 4;
    /** First backoff delay; doubles per retry. */
    double backoff_initial_seconds = 0.05;
    /** Backoff ceiling. */
    double backoff_max_seconds = 1.0;
    /** Seed for the deterministic backoff jitter. */
    std::uint64_t jitter_seed = 1;
    /** Decoder caps applied to inbound response frames. */
    WireLimits limits;
};

/** Blocking strategy-server client.  Not thread-safe. */
class StrategyClient
{
  public:
    StrategyClient(std::string host, std::uint16_t port,
                   ClientOptions options = {});
    ~StrategyClient();

    StrategyClient(const StrategyClient &) = delete;
    StrategyClient &operator=(const StrategyClient &) = delete;

    /**
     * Send @p request and block for the response, retrying per the
     * options.  Returns only Status::Ok responses.
     * @throws BusyError      every attempt was rejected (last cause)
     * @throws NetError       every attempt failed in transport
     * @throws DeadlineError  a deadline expired
     * @throws RemoteError    the server answered Malformed /
     *                        ChipMismatch / Internal (no retry)
     * @throws WireError      the server's bytes failed to decode
     *                        (no retry)
     */
    WireResponse call(const WireRequest &request);

    /** True while a connection is established. */
    bool connected() const { return fd_ >= 0; }

    /** Drop the connection (the next call reconnects). */
    void disconnect();

    /** Retries performed across all call()s (observability). */
    std::uint64_t retries() const { return retries_; }

  private:
    WireResponse attemptOnce(const std::string &frame);
    void connectWithDeadline();
    void sendAll(const std::string &bytes, double deadline);
    WireResponse receiveResponse(double deadline);
    double now() const;

    std::string host_;
    std::uint16_t port_;
    ClientOptions options_;
    int fd_ = -1;
    std::uint64_t jitter_state_;
    std::uint64_t retries_ = 0;
};

/**
 * One-shot plaintext admin query against a strategy server (`STATS`
 * or `HEALTH`); returns the raw response text.
 * @throws NetError / DeadlineError on transport failure.
 */
std::string adminQuery(const std::string &host, std::uint16_t port,
                       const std::string &command,
                       double timeout_seconds = 2.0);

} // namespace opdvfs::net

#endif // OPDVFS_NET_CLIENT_H
