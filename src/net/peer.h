/**
 * @file
 * Shard-to-shard peer client for the clustered strategy service.
 *
 * Two cluster duties live here, both built on one-shot blocking
 * exchanges (connect, one frame out, one frame in, close — no
 * connection pool to corrupt, safe to call from any service worker
 * concurrently):
 *
 *  - `queryDonors`: when a cold request finds no local warm-start
 *    donor, ask up to `max_fanout` peer shards for their nearest
 *    donor.  Peers answer straight off their event loop (a cache probe
 *    plus one serialisation), so the short per-peer deadline is
 *    dominated by one loopback round trip; the fan-out runs in
 *    parallel and the best reply above the service's similarity floor
 *    wins.  A down peer costs its deadline, never a hang.
 *
 *  - `broadcastEpochInvalidate`: after a recalibration advanced this
 *    shard's model epoch, tell every peer to raise theirs.  The call
 *    blocks until each peer acked or its deadline lapsed, so when it
 *    returns no reachable shard can still serve a pre-epoch strategy
 *    as an exact hit.
 *
 * `makePeerDonorLookup` adapts a ShardPeers into the
 * `serve::ServiceOptions::peer_donor_lookup` callback — the serve
 * layer stays free of sockets.
 */

#ifndef OPDVFS_NET_PEER_H
#define OPDVFS_NET_PEER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "net/wire.h"
#include "serve/service.h"
#include "shard/shard_map.h"

namespace opdvfs::net {

/** Peer-client configuration. */
struct PeerOptions
{
    /** Per-peer connect deadline, seconds. */
    double connect_timeout_seconds = 0.25;
    /** Per-peer whole-exchange deadline for donor queries. */
    double query_timeout_seconds = 0.25;
    /** Per-peer whole-exchange deadline for epoch invalidates (more
     *  generous: coherence beats latency here). */
    double invalidate_timeout_seconds = 2.0;
    /** Max peers asked per donor query (0 disables peer donors). */
    std::size_t max_fanout = 3;
    /** Decoder caps applied to peer replies. */
    WireLimits limits;
};

/** Monotonic counters (thread-safe reads). */
struct PeerStats
{
    std::uint64_t donor_queries_sent = 0;
    std::uint64_t donor_replies_found = 0;
    std::uint64_t donor_exchange_failures = 0;
    std::uint64_t invalidates_sent = 0;
    std::uint64_t invalidates_acked = 0;
};

/** Shard-to-shard client; thread-safe. */
class ShardPeers
{
  public:
    /**
     * @p self_id this shard's id: it is never queried.
     * @p map the live membership; peers are re-read per call, so
     *        admin JOIN/LEAVE applies to the next exchange.
     */
    ShardPeers(std::uint32_t self_id,
               std::shared_ptr<shard::SharedShardMap> map,
               PeerOptions options = {});

    /**
     * Ask up to `max_fanout` peers for a warm-start donor for
     * @p probe; exchanges run in parallel and the most similar donor
     * wins.  Returns nullopt when no peer had one (or all failed).
     */
    std::optional<serve::PeerDonor>
    queryDonors(const serve::Fingerprint &probe, double perf_loss_target);

    /**
     * Tell every peer to raise its model epoch to @p epoch; blocks
     * until each acked or timed out.  Returns the number of acks.
     */
    std::size_t broadcastEpochInvalidate(std::uint64_t epoch);

    PeerStats stats() const;

    std::uint32_t selfId() const { return self_id_; }

  private:
    std::uint32_t self_id_;
    std::shared_ptr<shard::SharedShardMap> map_;
    PeerOptions options_;

    std::atomic<std::uint64_t> donor_queries_sent_{0};
    std::atomic<std::uint64_t> donor_replies_found_{0};
    std::atomic<std::uint64_t> donor_exchange_failures_{0};
    std::atomic<std::uint64_t> invalidates_sent_{0};
    std::atomic<std::uint64_t> invalidates_acked_{0};
};

/**
 * Adapt @p peers into the serve-layer donor-lookup callback.  Null or
 * zero-fanout peers yield an empty (disabled) function.
 */
serve::DonorLookupFn
makePeerDonorLookup(std::shared_ptr<ShardPeers> peers);

} // namespace opdvfs::net

#endif // OPDVFS_NET_PEER_H
