/**
 * @file
 * Shard-to-shard peer client for the clustered strategy service.
 *
 * Two cluster duties live here, both built on one-shot blocking
 * exchanges (connect, one frame out, one frame in, close — no
 * connection pool to corrupt, safe to call from any service worker
 * concurrently):
 *
 *  - `queryDonors`: when a cold request finds no local warm-start
 *    donor, ask up to `max_fanout` peer shards for their nearest
 *    donor.  Peers answer straight off their event loop (a cache probe
 *    plus one serialisation), so the short per-peer deadline is
 *    dominated by one loopback round trip; the fan-out runs in
 *    parallel and the best reply above the service's similarity floor
 *    wins.  A down peer costs its deadline, never a hang.
 *
 *  - `broadcastEpochInvalidate`: after a recalibration advanced this
 *    shard's model epoch, tell every peer to raise theirs.  The call
 *    blocks until each peer acked or its deadline lapsed, so when it
 *    returns no reachable shard can still serve a pre-epoch strategy
 *    as an exact hit.
 *
 * `makePeerDonorLookup` adapts a ShardPeers into the
 * `serve::ServiceOptions::peer_donor_lookup` callback — the serve
 * layer stays free of sockets.
 */

#ifndef OPDVFS_NET_PEER_H
#define OPDVFS_NET_PEER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "serve/service.h"
#include "shard/shard_map.h"

namespace opdvfs::net {

/** Peer-client configuration. */
struct PeerOptions
{
    /** Per-peer connect deadline, seconds. */
    double connect_timeout_seconds = 0.25;
    /** Per-peer whole-exchange deadline for donor queries. */
    double query_timeout_seconds = 0.25;
    /** Per-peer whole-exchange deadline for epoch invalidates (more
     *  generous: coherence beats latency here). */
    double invalidate_timeout_seconds = 2.0;
    /** Max peers asked per donor query (0 disables peer donors). */
    std::size_t max_fanout = 3;
    /** Decoder caps applied to peer replies. */
    WireLimits limits;
};

/** Monotonic counters (thread-safe reads). */
struct PeerStats
{
    std::uint64_t donor_queries_sent = 0;
    std::uint64_t donor_replies_found = 0;
    std::uint64_t donor_exchange_failures = 0;
    std::uint64_t invalidates_sent = 0;
    std::uint64_t invalidates_acked = 0;
};

/** Shard-to-shard client; thread-safe. */
class ShardPeers
{
  public:
    /**
     * @p self_id this shard's id: it is never queried.
     * @p map the live membership; peers are re-read per call, so
     *        admin JOIN/LEAVE applies to the next exchange.
     */
    ShardPeers(std::uint32_t self_id,
               std::shared_ptr<shard::SharedShardMap> map,
               PeerOptions options = {});

    /**
     * Ask up to `max_fanout` peers for a warm-start donor for
     * @p probe; exchanges run in parallel and the most similar donor
     * wins.  Returns nullopt when no peer had one (or all failed).
     */
    std::optional<serve::PeerDonor>
    queryDonors(const serve::Fingerprint &probe, double perf_loss_target);

    /** Outcome of one epoch-invalidate broadcast. */
    struct InvalidateResult
    {
        /** Peers whose ack covered the new epoch. */
        std::size_t acks = 0;
        /** Addresses of peers that failed or timed out — surfaced in
         *  the RECAL admin reply so an operator sees *which* shard is
         *  incoherent, not just a count. */
        std::vector<std::string> failed_addresses;
    };

    /**
     * Tell every peer to raise its model epoch to @p epoch; blocks
     * until each acked or timed out.
     */
    InvalidateResult broadcastEpochInvalidate(std::uint64_t epoch);

    PeerStats stats() const;

    std::uint32_t selfId() const { return self_id_; }

  private:
    std::uint32_t self_id_;
    std::shared_ptr<shard::SharedShardMap> map_;
    PeerOptions options_;

    std::atomic<std::uint64_t> donor_queries_sent_{0};
    std::atomic<std::uint64_t> donor_replies_found_{0};
    std::atomic<std::uint64_t> donor_exchange_failures_{0};
    std::atomic<std::uint64_t> invalidates_sent_{0};
    std::atomic<std::uint64_t> invalidates_acked_{0};
};

/**
 * Adapt @p peers into the serve-layer donor-lookup callback.  Null or
 * zero-fanout peers yield an empty (disabled) function.
 */
serve::DonorLookupFn
makePeerDonorLookup(std::shared_ptr<ShardPeers> peers);

/** Replicator configuration. */
struct ReplicatorOptions
{
    /** Total copies per entry (owner included); 2 means one ring
     *  successor holds a replica.  1 disables replication. */
    std::size_t replication_factor = 2;
    /** Max entries queued for the sender thread; beyond it the oldest
     *  durability guarantee wins and the new entry is dropped. */
    std::size_t queue_capacity = 128;
    /** Per-peer connect deadline, seconds. */
    double connect_timeout_seconds = 0.25;
    /** Per-peer whole-exchange deadline, seconds. */
    double exchange_timeout_seconds = 0.5;
    /** Encoder/decoder caps. */
    WireLimits limits;
};

/** Monotonic replication counters (thread-safe reads). */
struct ReplicatorStats
{
    /** PeerReplicate frames sent (one per successor per entry). */
    std::uint64_t sent = 0;
    /** Frames the successor accepted. */
    std::uint64_t acked = 0;
    /** Exchanges that failed, timed out, or were refused. */
    std::uint64_t failed = 0;
    /** Entries dropped because the queue was full. */
    std::uint64_t dropped = 0;
    /** Entries awaiting the sender thread — the replication lag. */
    std::size_t queue_depth = 0;
};

/**
 * Asynchronous successor replication: every owned cache insert is
 * pushed (as a warm-start-only donor, reusing the peer-donor import
 * path) to the entry's `replication_factor - 1` ring successors, so a
 * dead owner's keys are answered warm by the shards the router fails
 * over to.
 *
 * The insert hook is bounded and non-blocking: a slow or dead
 * successor can lag replication (visible as `queue_depth`), never
 * stall the serving path.  One background sender thread drains the
 * queue; `flush()` blocks until it is idle (deterministic tests).
 */
class ShardReplicator
{
  public:
    /** @p self_id this shard — skipped when it appears as successor. */
    ShardReplicator(std::uint32_t self_id,
                    std::shared_ptr<shard::SharedShardMap> map,
                    ReplicatorOptions options = {});
    ~ShardReplicator();

    ShardReplicator(const ShardReplicator &) = delete;
    ShardReplicator &operator=(const ShardReplicator &) = delete;

    /** Insert hook (bind as the service's insert listener).  Bounded,
     *  non-blocking; a full queue drops the entry and counts it. */
    void onInsert(const serve::CacheEntry &entry);

    /** Block until the queue is empty and the sender is idle. */
    void flush();

    /** Stop the sender thread (idempotent; destructor calls it). */
    void stop();

    ReplicatorStats stats() const;

  private:
    void senderLoop();
    void replicateOne(const serve::CacheEntry &entry);

    std::uint32_t self_id_;
    std::shared_ptr<shard::SharedShardMap> map_;
    ReplicatorOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable drained_;
    std::deque<serve::CacheEntry> queue_;
    bool stopping_ = false;
    bool sending_ = false;

    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> acked_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> dropped_{0};

    std::mutex join_mutex_;
    std::thread sender_;
};

} // namespace opdvfs::net

#endif // OPDVFS_NET_PEER_H
