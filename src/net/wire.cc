#include "net/wire.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/crc32.h"

namespace opdvfs::net {

namespace {

// --- flat little-endian primitives -------------------------------------

class ByteWriter
{
  public:
    void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }

    void u16(std::uint16_t value)
    {
        for (int byte = 0; byte < 2; ++byte)
            u8(static_cast<std::uint8_t>(value >> (8 * byte)));
    }

    void u32(std::uint32_t value)
    {
        for (int byte = 0; byte < 4; ++byte)
            u8(static_cast<std::uint8_t>(value >> (8 * byte)));
    }

    void u64(std::uint64_t value)
    {
        for (int byte = 0; byte < 8; ++byte)
            u8(static_cast<std::uint8_t>(value >> (8 * byte)));
    }

    void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }

    /** IEEE-754 bit pattern; NaN/-0.0 travel verbatim. */
    void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

    void str16(std::string_view text, std::size_t cap, const char *what)
    {
        if (text.size() > cap || text.size() > 0xFFFF)
            throw WireError(std::string("wire: ") + what
                            + " exceeds the string cap");
        u16(static_cast<std::uint16_t>(text.size()));
        out_.append(text);
    }

    void str32(std::string_view text, std::size_t cap, const char *what)
    {
        if (text.size() > cap)
            throw WireError(std::string("wire: ") + what
                            + " exceeds its block cap");
        u32(static_cast<std::uint32_t>(text.size()));
        out_.append(text);
    }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    std::uint8_t u8()
    {
        need(1, "byte");
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint16_t u16()
    {
        need(2, "u16");
        std::uint16_t value = 0;
        for (int byte = 0; byte < 2; ++byte)
            value |= static_cast<std::uint16_t>(
                static_cast<std::uint8_t>(data_[pos_++]))
                << (8 * byte);
        return value;
    }

    std::uint32_t u32()
    {
        need(4, "u32");
        std::uint32_t value = 0;
        for (int byte = 0; byte < 4; ++byte)
            value |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(data_[pos_++]))
                << (8 * byte);
        return value;
    }

    std::uint64_t u64()
    {
        need(8, "u64");
        std::uint64_t value = 0;
        for (int byte = 0; byte < 8; ++byte)
            value |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(data_[pos_++]))
                << (8 * byte);
        return value;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64() { return std::bit_cast<double>(u64()); }

    /** A double that must be finite (every numeric protocol field). */
    double finite(const char *what)
    {
        double value = f64();
        if (!std::isfinite(value))
            throw WireError(std::string("wire: non-finite ") + what);
        return value;
    }

    std::string str16(std::size_t cap, const char *what)
    {
        std::size_t length = u16();
        if (length > cap)
            throw WireError(std::string("wire: ") + what
                            + " exceeds the string cap");
        need(length, what);
        std::string text(data_.substr(pos_, length));
        pos_ += length;
        return text;
    }

    std::string str32(std::size_t cap, const char *what)
    {
        std::size_t length = u32();
        if (length > cap)
            throw WireError(std::string("wire: ") + what
                            + " exceeds its block cap");
        need(length, what);
        std::string text(data_.substr(pos_, length));
        pos_ += length;
        return text;
    }

    void expectEnd(const char *what)
    {
        if (!atEnd())
            throw WireError(std::string("wire: trailing bytes after ")
                            + what);
    }

  private:
    void need(std::size_t bytes, const char *what)
    {
        if (remaining() < bytes)
            throw WireError(std::string("wire: truncated ") + what);
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

/** A finite double holding an integral value in [lo, hi]. */
std::int64_t
integralInRange(double value, std::int64_t lo, std::int64_t hi,
                const char *what)
{
    if (!std::isfinite(value) || value != std::floor(value)
        || value < static_cast<double>(lo)
        || value > static_cast<double>(hi))
        throw WireError(std::string("wire: ") + what
                        + " is not an integer in range");
    return static_cast<std::int64_t>(value);
}

// --- chip configuration block ------------------------------------------

/**
 * Only identity-relevant fields travel: exactly the set the service
 * fingerprint hashes.  FaultPlan (runtime misbehaviour) and
 * max_energy_segment (integration granularity) are not a different
 * optimisation problem and stay local.
 */
void
writeChip(ByteWriter &writer, const npu::NpuConfig &chip)
{
    const npu::FreqTableConfig &freq = chip.freq;
    for (double value : {freq.min_mhz, freq.max_mhz, freq.step_mhz,
                         freq.knee_mhz, freq.base_volts,
                         freq.volts_per_mhz})
        writer.f64(value);
    const npu::MemorySystemConfig &memory = chip.memory;
    writer.u64(memory.core_num);
    for (double value : {memory.bytes_per_cycle_per_core,
                         memory.l2_bandwidth, memory.hbm_bandwidth,
                         memory.bandwidth_scale})
        writer.f64(value);
    for (double value : {chip.aicore_power.beta, chip.aicore_power.theta,
                         chip.aicore_power.gamma})
        writer.f64(value);
    for (double value :
         {chip.uncore_power.idle_watts, chip.uncore_power.active_watts,
          chip.uncore_power.gamma, chip.uncore_power.dynamic_fraction})
        writer.f64(value);
    for (double value : {chip.thermal.ambient_celsius,
                         chip.thermal.k_per_watt,
                         chip.thermal.time_constant_s})
        writer.f64(value);
    writer.i64(chip.set_freq_latency);
    writer.f64(chip.initial_mhz);
    writer.f64(chip.uncore_scale);
}

npu::NpuConfig
readChip(ByteReader &reader)
{
    npu::NpuConfig chip;
    chip.freq.min_mhz = reader.finite("freq.min_mhz");
    chip.freq.max_mhz = reader.finite("freq.max_mhz");
    chip.freq.step_mhz = reader.finite("freq.step_mhz");
    chip.freq.knee_mhz = reader.finite("freq.knee_mhz");
    chip.freq.base_volts = reader.finite("freq.base_volts");
    chip.freq.volts_per_mhz = reader.finite("freq.volts_per_mhz");
    std::uint64_t core_num = reader.u64();
    if (core_num == 0 || core_num > 1000000)
        throw WireError("wire: core_num out of range");
    chip.memory.core_num = static_cast<std::size_t>(core_num);
    chip.memory.bytes_per_cycle_per_core =
        reader.finite("memory.bytes_per_cycle_per_core");
    chip.memory.l2_bandwidth = reader.finite("memory.l2_bandwidth");
    chip.memory.hbm_bandwidth = reader.finite("memory.hbm_bandwidth");
    chip.memory.bandwidth_scale = reader.finite("memory.bandwidth_scale");
    chip.aicore_power.beta = reader.finite("aicore_power.beta");
    chip.aicore_power.theta = reader.finite("aicore_power.theta");
    chip.aicore_power.gamma = reader.finite("aicore_power.gamma");
    chip.uncore_power.idle_watts =
        reader.finite("uncore_power.idle_watts");
    chip.uncore_power.active_watts =
        reader.finite("uncore_power.active_watts");
    chip.uncore_power.gamma = reader.finite("uncore_power.gamma");
    chip.uncore_power.dynamic_fraction =
        reader.finite("uncore_power.dynamic_fraction");
    chip.thermal.ambient_celsius =
        reader.finite("thermal.ambient_celsius");
    chip.thermal.k_per_watt = reader.finite("thermal.k_per_watt");
    chip.thermal.time_constant_s =
        reader.finite("thermal.time_constant_s");
    chip.set_freq_latency = reader.i64();
    if (chip.set_freq_latency < 0)
        throw WireError("wire: negative set_freq_latency");
    chip.initial_mhz = reader.finite("initial_mhz");
    chip.uncore_scale = reader.finite("uncore_scale");
    return chip;
}

constexpr std::uint8_t kFlagUseCache = 0x01;
constexpr std::uint8_t kFlagAllowWarmStart = 0x02;
/** v2: a u32 deadline_ms follows the seed when set. */
constexpr std::uint8_t kFlagHasDeadline = 0x04;
/** v4: answer a non-owned key from the replica set (failover). */
constexpr std::uint8_t kFlagServeReplica = 0x08;

} // namespace

const char *
statusToken(Status status)
{
    switch (status) {
    case Status::Ok: return "ok";
    case Status::Busy: return "busy";
    case Status::Malformed: return "malformed";
    case Status::ChipMismatch: return "chip-mismatch";
    case Status::Internal: return "internal";
    case Status::NotOwner: return "not-owner";
    }
    return "unknown";
}

std::size_t
workloadNumbersPerOp()
{
    // Probe the canonical visitor itself so the answer tracks its
    // coverage automatically: one default operator, count the scalar
    // fields it emits.
    static const std::size_t count = [] {
        models::Workload probe;
        probe.iteration.resize(1);
        std::size_t strings = 0;
        std::size_t numbers = 0;
        models::WorkloadFieldVisitor visitor;
        visitor.string_field = [&strings](std::string_view) { ++strings; };
        visitor.number_field = [&numbers](double) { ++numbers; };
        models::visitWorkloadFields(probe, visitor);
        if (strings != 1)
            throw std::logic_error(
                "wire: visitWorkloadFields no longer emits exactly one "
                "string per op; the wire layout must be revised");
        return numbers;
    }();
    return count;
}

std::string
encodeChipConfig(const npu::NpuConfig &chip)
{
    ByteWriter writer;
    writeChip(writer, chip);
    return writer.take();
}

std::string
encodeRequest(const WireRequest &request, const WireLimits &limits)
{
    if (request.workload.opCount() > limits.max_ops)
        throw WireError("wire: workload exceeds the op cap");
    if (!std::isfinite(request.perf_loss_target)
        || request.perf_loss_target <= 0.0
        || request.perf_loss_target >= 1.0)
        throw WireError("wire: perf_loss_target outside (0, 1)");
    ByteWriter writer;
    std::uint8_t flags = 0;
    if (request.use_cache)
        flags |= kFlagUseCache;
    if (request.allow_warm_start)
        flags |= kFlagAllowWarmStart;
    if (request.deadline_ms > 0)
        flags |= kFlagHasDeadline;
    if (request.serve_replica)
        flags |= kFlagServeReplica;
    writer.u8(flags);
    writer.f64(request.perf_loss_target);
    writer.u64(request.seed);
    if (request.deadline_ms > 0)
        writer.u32(request.deadline_ms);
    writeChip(writer, request.chip);

    writer.u32(static_cast<std::uint32_t>(request.workload.opCount()));
    writer.u32(static_cast<std::uint32_t>(workloadNumbersPerOp()));
    // The op stream is emitted through the canonical field visitor —
    // the same stream the fingerprint hashes — so wire coverage and
    // cache-identity coverage are one definition, not two.
    models::WorkloadFieldVisitor visitor;
    const WireLimits *caps = &limits;
    visitor.string_field = [&writer, caps](std::string_view text) {
        writer.str16(text, caps->max_string_bytes, "op type");
    };
    visitor.number_field = [&writer](double value) { writer.f64(value); };
    models::visitWorkloadFields(request.workload, visitor);
    return writer.take();
}

WireRequest
decodeRequest(std::string_view payload, const WireLimits &limits)
{
    ByteReader reader(payload);
    WireRequest request;
    std::uint8_t flags = reader.u8();
    if (flags
        & ~(kFlagUseCache | kFlagAllowWarmStart | kFlagHasDeadline
            | kFlagServeReplica))
        throw WireError("wire: unknown request flags");
    request.use_cache = (flags & kFlagUseCache) != 0;
    request.allow_warm_start = (flags & kFlagAllowWarmStart) != 0;
    request.serve_replica = (flags & kFlagServeReplica) != 0;
    request.perf_loss_target = reader.finite("perf_loss_target");
    if (request.perf_loss_target <= 0.0 || request.perf_loss_target >= 1.0)
        throw WireError("wire: perf_loss_target outside (0, 1)");
    request.seed = reader.u64();
    if (flags & kFlagHasDeadline) {
        request.deadline_ms = reader.u32();
        // A present-but-zero deadline has no canonical encoding (the
        // encoder omits the field for 0), so reject it to preserve
        // encode(decode(p)) == p.
        if (request.deadline_ms == 0)
            throw WireError("wire: deadline flag set with zero budget");
    }
    request.chip = readChip(reader);

    std::size_t op_count = reader.u32();
    if (op_count > limits.max_ops)
        throw WireError("wire: op count exceeds the cap");
    std::size_t numbers_per_op = reader.u32();
    if (numbers_per_op != workloadNumbersPerOp())
        throw WireVersionError(
            "wire: per-op field coverage differs from this build");
    // The positional mapping below consumes exactly this many scalars.
    // workloadNumbersPerOp() is probed from the visitor at runtime, so
    // a build whose visitor shrank must be rejected *here*: otherwise
    // numbers[used++] would index out of bounds before the
    // `used != numbers_per_op` guard after the mapping could fire
    // (that guard still catches the growth direction).
    constexpr std::size_t kMappedNumbersPerOp = 15;
    if (numbers_per_op != kMappedNumbersPerOp)
        throw WireVersionError(
            "wire: per-op field count differs from this build's request "
            "mapping");
    // Every op needs at least its string length prefix plus the scalar
    // block; reject counts the remaining bytes cannot possibly satisfy
    // before reserving anything.
    if (op_count > 0
        && reader.remaining() / (2 + 8 * numbers_per_op) < op_count)
        throw WireError("wire: op count exceeds the remaining payload");
    request.workload.iteration.reserve(op_count);

    std::vector<double> numbers(numbers_per_op);
    for (std::size_t index = 0; index < op_count; ++index) {
        ops::Op op;
        op.id = index;
        op.type = reader.str16(limits.max_string_bytes, "op type");
        for (double &value : numbers)
            value = reader.finite("op field");
        // Positional mapping back into HwOpParams, mirroring the
        // visitor's emission order.  `used` must land exactly on
        // numbers_per_op: if the visitor grows a field this build did
        // not learn to map, decoding fails loudly instead of
        // misaligning the stream.
        std::size_t used = 0;
        op.hw.category = static_cast<npu::OpCategory>(
            integralInRange(numbers[used++], 0, 3, "op category"));
        op.hw.scenario = static_cast<npu::Scenario>(
            integralInRange(numbers[used++], 0, 3, "op scenario"));
        op.hw.core_pipe = static_cast<npu::CorePipe>(
            integralInRange(numbers[used++], 0, 3, "op core_pipe"));
        op.hw.n = static_cast<int>(
            integralInRange(numbers[used++], 1, 0x7FFFFFFF, "op n"));
        op.hw.core_cycles = numbers[used++];
        op.hw.ld_volume_bytes = numbers[used++];
        op.hw.ld_l2_hit = numbers[used++];
        op.hw.st_volume_bytes = numbers[used++];
        op.hw.st_l2_hit = numbers[used++];
        op.hw.t0_seconds = numbers[used++];
        op.hw.overhead_seconds = numbers[used++];
        op.hw.fixed_seconds = numbers[used++];
        op.hw.comm_bytes = numbers[used++];
        op.hw.alpha_core = numbers[used++];
        op.hw.uncore_activity = numbers[used++];
        if (used != numbers_per_op)
            throw WireVersionError(
                "wire: per-op field coverage differs from this build");
        request.workload.iteration.push_back(std::move(op));
    }
    reader.expectEnd("request payload");
    return request;
}

std::string
encodeResponse(const WireResponse &response, const WireLimits &limits)
{
    if ((response.status == Status::Busy)
        != (response.reject != serve::RejectReason::None))
        throw WireError("wire: Busy responses (and only those) carry a "
                        "reject cause");
    if (response.status != Status::Busy && response.retry_after_ms != 0)
        throw WireError("wire: retry_after_ms is only carried by Busy "
                        "responses");
    if ((response.status == Status::NotOwner)
        != !response.owner_address.empty())
        throw WireError("wire: NotOwner responses (and only those) carry "
                        "an owner address");
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(response.status));
    writer.u8(static_cast<std::uint8_t>(response.reject));
    writer.str16(response.message, limits.max_message_bytes,
                 "response message");
    if (response.status == Status::Busy)
        writer.u32(response.retry_after_ms);
    if (response.status == Status::NotOwner) {
        writer.str16(response.owner_address, limits.max_string_bytes,
                     "owner address");
        writer.u64(response.map_epoch);
        writer.str32(response.shard_map_text, limits.max_shard_map_bytes,
                     "shard map block");
        return writer.take();
    }
    if (response.status != Status::Ok)
        return writer.take();

    writer.u64(response.fingerprint_digest);
    writer.u64(response.model_epoch);
    writer.u8(static_cast<std::uint8_t>(response.provenance));
    writer.f64(response.similarity);
    writer.u32(response.generations_run);
    writer.u32(response.generations_saved);
    writer.f64(response.service_seconds);
    writer.f64(response.best_score);
    // The strategy travels in the strategy_io text format: one
    // serialisation shared with on-disk persistence, so wire responses
    // inherit its validation and byte-stability guarantees.
    std::ostringstream strategy_text;
    dvfs::saveStrategy(response.strategy, strategy_text);
    writer.str32(strategy_text.str(), limits.max_strategy_bytes,
                 "strategy block");
    return writer.take();
}

WireResponse
decodeResponse(std::string_view payload, const WireLimits &limits)
{
    ByteReader reader(payload);
    WireResponse response;
    std::uint8_t status = reader.u8();
    if (status > static_cast<std::uint8_t>(Status::NotOwner))
        throw WireError("wire: unknown response status");
    response.status = static_cast<Status>(status);
    std::uint8_t reject = reader.u8();
    if (reject > static_cast<std::uint8_t>(
            serve::RejectReason::Overloaded))
        throw WireError("wire: unknown reject reason");
    response.reject = static_cast<serve::RejectReason>(reject);
    if ((response.status == Status::Busy)
        != (response.reject != serve::RejectReason::None))
        throw WireError("wire: Busy responses (and only those) carry a "
                        "reject cause");
    response.message =
        reader.str16(limits.max_message_bytes, "response message");
    if (response.status == Status::Busy)
        response.retry_after_ms = reader.u32();
    if (response.status == Status::NotOwner) {
        response.owner_address =
            reader.str16(limits.max_string_bytes, "owner address");
        if (response.owner_address.empty())
            throw WireError("wire: NotOwner without an owner address");
        response.map_epoch = reader.u64();
        response.shard_map_text = reader.str32(limits.max_shard_map_bytes,
                                               "shard map block");
        reader.expectEnd("response payload");
        return response;
    }
    if (response.status != Status::Ok) {
        reader.expectEnd("response payload");
        return response;
    }

    response.fingerprint_digest = reader.u64();
    response.model_epoch = reader.u64();
    std::uint8_t provenance = reader.u8();
    if (provenance > static_cast<std::uint8_t>(
            serve::Provenance::Predicted))
        throw WireError("wire: unknown provenance");
    response.provenance = static_cast<serve::Provenance>(provenance);
    response.similarity = reader.finite("similarity");
    if (response.similarity < 0.0 || response.similarity > 1.0)
        throw WireError("wire: similarity outside [0, 1]");
    response.generations_run = reader.u32();
    response.generations_saved = reader.u32();
    response.service_seconds = reader.finite("service_seconds");
    if (response.service_seconds < 0.0)
        throw WireError("wire: negative service_seconds");
    response.best_score = reader.finite("best_score");
    std::string strategy_text =
        reader.str32(limits.max_strategy_bytes, "strategy block");
    try {
        std::istringstream is(strategy_text);
        response.strategy = dvfs::loadStrategy(is);
    } catch (const std::invalid_argument &error) {
        throw WireError(std::string("wire: embedded strategy rejected: ")
                        + error.what());
    }
    reader.expectEnd("response payload");
    return response;
}

namespace {

/** u16 count + IEEE-754 doubles; every element must be finite. */
void
writeDoubles(ByteWriter &writer, const std::vector<double> &values,
             std::size_t cap, const char *what)
{
    if (values.size() > cap)
        throw WireError(std::string("wire: ") + what
                        + " exceeds its element cap");
    writer.u16(static_cast<std::uint16_t>(values.size()));
    for (double value : values) {
        if (!std::isfinite(value))
            throw WireError(std::string("wire: non-finite ") + what);
        writer.f64(value);
    }
}

std::vector<double>
readDoubles(ByteReader &reader, std::size_t cap, const char *what)
{
    std::size_t count = reader.u16();
    if (count > cap)
        throw WireError(std::string("wire: ") + what
                        + " exceeds its element cap");
    std::vector<double> values(count);
    for (double &value : values)
        value = reader.finite(what);
    return values;
}

} // namespace

std::string
encodePeerDonorQuery(const PeerDonorQuery &query, const WireLimits &limits)
{
    if (!std::isfinite(query.perf_loss_target)
        || query.perf_loss_target <= 0.0 || query.perf_loss_target >= 1.0)
        throw WireError("wire: perf_loss_target outside (0, 1)");
    ByteWriter writer;
    writer.u64(query.digest);
    writer.u64(query.model_epoch);
    writer.f64(query.perf_loss_target);
    writer.u32(query.origin_shard);
    writeDoubles(writer, query.features, limits.max_features,
                 "query features");
    return writer.take();
}

PeerDonorQuery
decodePeerDonorQuery(std::string_view payload, const WireLimits &limits)
{
    ByteReader reader(payload);
    PeerDonorQuery query;
    query.digest = reader.u64();
    query.model_epoch = reader.u64();
    query.perf_loss_target = reader.finite("perf_loss_target");
    if (query.perf_loss_target <= 0.0 || query.perf_loss_target >= 1.0)
        throw WireError("wire: perf_loss_target outside (0, 1)");
    query.origin_shard = reader.u32();
    query.features =
        readDoubles(reader, limits.max_features, "query features");
    reader.expectEnd("peer donor query");
    return query;
}

std::string
encodePeerDonorReply(const PeerDonorReply &reply, const WireLimits &limits)
{
    ByteWriter writer;
    writer.u8(reply.found ? 1 : 0);
    if (!reply.found) {
        // A miss carries nothing: the canonical empty reply.
        return writer.take();
    }
    if (!std::isfinite(reply.similarity) || reply.similarity < 0.0
        || reply.similarity > 1.0)
        throw WireError("wire: similarity outside [0, 1]");
    writer.f64(reply.similarity);
    writer.u64(reply.fingerprint_digest);
    writer.u64(reply.model_epoch);
    writer.f64(reply.perf_loss_target);
    writer.f64(reply.best_score);
    writeDoubles(writer, reply.features, limits.max_features,
                 "donor features");
    writeDoubles(writer, reply.best_mhz, limits.max_stages,
                 "donor best_mhz");
    writer.str32(reply.strategy_text, limits.max_strategy_bytes,
                 "donor strategy block");
    return writer.take();
}

PeerDonorReply
decodePeerDonorReply(std::string_view payload, const WireLimits &limits)
{
    ByteReader reader(payload);
    PeerDonorReply reply;
    std::uint8_t found = reader.u8();
    if (found > 1)
        throw WireError("wire: bad donor-found flag");
    reply.found = found == 1;
    if (!reply.found) {
        reader.expectEnd("peer donor reply");
        return reply;
    }
    reply.similarity = reader.finite("similarity");
    if (reply.similarity < 0.0 || reply.similarity > 1.0)
        throw WireError("wire: similarity outside [0, 1]");
    reply.fingerprint_digest = reader.u64();
    reply.model_epoch = reader.u64();
    reply.perf_loss_target = reader.finite("perf_loss_target");
    reply.best_score = reader.finite("best_score");
    reply.features =
        readDoubles(reader, limits.max_features, "donor features");
    reply.best_mhz =
        readDoubles(reader, limits.max_stages, "donor best_mhz");
    reply.strategy_text = reader.str32(limits.max_strategy_bytes,
                                       "donor strategy block");
    reader.expectEnd("peer donor reply");
    return reply;
}

std::string
encodeEpochInvalidate(const EpochInvalidate &invalidate)
{
    ByteWriter writer;
    writer.u32(invalidate.origin_shard);
    writer.u64(invalidate.model_epoch);
    return writer.take();
}

EpochInvalidate
decodeEpochInvalidate(std::string_view payload)
{
    ByteReader reader(payload);
    EpochInvalidate invalidate;
    invalidate.origin_shard = reader.u32();
    invalidate.model_epoch = reader.u64();
    reader.expectEnd("epoch invalidate");
    return invalidate;
}

std::string
encodeEpochInvalidateAck(const EpochInvalidateAck &ack)
{
    ByteWriter writer;
    writer.u32(ack.shard_id);
    writer.u64(ack.model_epoch);
    return writer.take();
}

EpochInvalidateAck
decodeEpochInvalidateAck(std::string_view payload)
{
    ByteReader reader(payload);
    EpochInvalidateAck ack;
    ack.shard_id = reader.u32();
    ack.model_epoch = reader.u64();
    reader.expectEnd("epoch invalidate ack");
    return ack;
}

std::string
encodePeerReplicate(const PeerReplicate &replicate,
                    const WireLimits &limits)
{
    if (!std::isfinite(replicate.perf_loss_target)
        || replicate.perf_loss_target <= 0.0
        || replicate.perf_loss_target >= 1.0)
        throw WireError("wire: perf_loss_target outside (0, 1)");
    ByteWriter writer;
    writer.u32(replicate.origin_shard);
    writer.u64(replicate.fingerprint_digest);
    writer.u64(replicate.model_epoch);
    writer.f64(replicate.perf_loss_target);
    writer.f64(replicate.best_score);
    writeDoubles(writer, replicate.features, limits.max_features,
                 "replica features");
    writeDoubles(writer, replicate.best_mhz, limits.max_stages,
                 "replica best_mhz");
    writer.str32(replicate.strategy_text, limits.max_strategy_bytes,
                 "replica strategy block");
    return writer.take();
}

PeerReplicate
decodePeerReplicate(std::string_view payload, const WireLimits &limits)
{
    ByteReader reader(payload);
    PeerReplicate replicate;
    replicate.origin_shard = reader.u32();
    replicate.fingerprint_digest = reader.u64();
    replicate.model_epoch = reader.u64();
    replicate.perf_loss_target = reader.finite("perf_loss_target");
    if (replicate.perf_loss_target <= 0.0
        || replicate.perf_loss_target >= 1.0)
        throw WireError("wire: perf_loss_target outside (0, 1)");
    replicate.best_score = reader.finite("best_score");
    replicate.features =
        readDoubles(reader, limits.max_features, "replica features");
    replicate.best_mhz =
        readDoubles(reader, limits.max_stages, "replica best_mhz");
    replicate.strategy_text = reader.str32(limits.max_strategy_bytes,
                                           "replica strategy block");
    reader.expectEnd("peer replicate");
    return replicate;
}

std::string
encodePeerReplicateAck(const PeerReplicateAck &ack)
{
    ByteWriter writer;
    writer.u32(ack.shard_id);
    writer.u8(ack.accepted ? 1 : 0);
    return writer.take();
}

PeerReplicateAck
decodePeerReplicateAck(std::string_view payload)
{
    ByteReader reader(payload);
    PeerReplicateAck ack;
    ack.shard_id = reader.u32();
    std::uint8_t accepted = reader.u8();
    if (accepted > 1)
        throw WireError("wire: bad replica-accepted flag");
    ack.accepted = accepted == 1;
    reader.expectEnd("peer replicate ack");
    return ack;
}

std::string
frameMessage(MsgType type, std::string_view payload,
             const WireLimits &limits)
{
    if (limits.max_frame_bytes < kFrameHeaderBytes
        || payload.size() > limits.max_frame_bytes - kFrameHeaderBytes)
        throw WireError("wire: payload exceeds the frame cap");
    ByteWriter writer;
    for (char byte : kWireMagic)
        writer.u8(static_cast<std::uint8_t>(byte));
    writer.u8(kWireVersion);
    writer.u8(static_cast<std::uint8_t>(type));
    writer.u16(0); // reserved
    writer.u32(static_cast<std::uint32_t>(payload.size()));
    writer.u32(crc32(payload));
    std::string frame = writer.take();
    frame.append(payload);
    return frame;
}

std::optional<FrameView>
peelFrame(std::string_view buffer, std::size_t *consumed,
          const WireLimits &limits)
{
    if (consumed)
        *consumed = 0;
    if (buffer.size() < kFrameHeaderBytes)
        return std::nullopt;
    if (std::memcmp(buffer.data(), kWireMagic, sizeof(kWireMagic)) != 0)
        throw WireError("wire: bad frame magic");
    ByteReader reader(buffer.substr(sizeof(kWireMagic),
                                    kFrameHeaderBytes
                                        - sizeof(kWireMagic)));
    std::uint8_t version = reader.u8();
    if (version != kWireVersion)
        throw WireVersionError("wire: unsupported protocol version "
                               + std::to_string(version));
    std::uint8_t type = reader.u8();
    if (type < static_cast<std::uint8_t>(MsgType::Request)
        || type > static_cast<std::uint8_t>(MsgType::PeerReplicateAck))
        throw WireError("wire: unknown message type");
    if (reader.u16() != 0)
        throw WireError("wire: reserved header bits set");
    std::size_t length = reader.u32();
    std::uint32_t declared_crc = reader.u32();
    if (limits.max_frame_bytes < kFrameHeaderBytes
        || length > limits.max_frame_bytes - kFrameHeaderBytes)
        throw WireError("wire: declared frame length exceeds the cap");
    if (buffer.size() < kFrameHeaderBytes + length)
        return std::nullopt; // wait for the rest of the payload
    std::string_view payload = buffer.substr(kFrameHeaderBytes, length);
    if (crc32(payload) != declared_crc)
        throw WireError("wire: frame CRC mismatch");
    if (consumed)
        *consumed = kFrameHeaderBytes + length;
    return FrameView{static_cast<MsgType>(type), payload};
}

std::string
frameRequest(const WireRequest &request, const WireLimits &limits)
{
    return frameMessage(MsgType::Request, encodeRequest(request, limits),
                        limits);
}

std::string
frameResponse(const WireResponse &response, const WireLimits &limits)
{
    return frameMessage(MsgType::Response,
                        encodeResponse(response, limits), limits);
}

} // namespace opdvfs::net
