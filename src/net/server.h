/**
 * @file
 * TCP front end for the strategy service.
 *
 * The server runs `ServerOptions::reactor_threads` poll(2)-based
 * reactor threads.  Each reactor exclusively owns its connections'
 * sockets: it peels wire frames off per-connection read buffers,
 * admits decoded requests into the StrategyService through its
 * non-blocking callback API, and flushes encoded responses.  No
 * socket is ever touched by two threads; service worker completions
 * encode off the loop, push framed bytes onto the owning reactor's
 * queue and wake it through that reactor's self-pipe.
 *
 * Connections are distributed at accept time.  By default reactor 0
 * owns the listener and hands accepted sockets round-robin to its
 * peers (deterministic — tests assert the distribution); with
 * `ServerOptions::reuse_port` each reactor binds its own
 * SO_REUSEPORT listener and the kernel spreads connections by flow
 * hash (no handoff hop, preferred for benchmarks).
 *
 * Exact cache hits are served directly on the reactor: every Ok
 * worker-path completion publishes a pre-encoded exact-hit frame into
 * an RCU-read EncodedResponseCache (serve/encoded_cache.h), so a
 * repeat request is fingerprint -> wait-free lookup -> send, with no
 * worker hop, no completion-queue round trip, no lock and no
 * re-encode (the frame's CRC is computed once and reused verbatim).
 * A fast-path hit is byte-identical to the worker path's exact-hit
 * response except `service_seconds`, which it pins to 0.0 (no
 * service time is spent).  The frame is served only when its model
 * epoch equals the service's current epoch, so a recalibration
 * instantly gates every pre-epoch frame; misses fall through to the
 * StrategyService admission path unchanged.
 *
 * Backpressure is structured end to end: when the service's admission
 * queue is full (or the service is draining) the request is answered
 * with a `Busy` frame carrying the serve::RejectReason — the
 * connection is never dropped to signal overload.  The server itself
 * bounds connections (globally, across reactors) and accepts at most
 * one in-flight request per connection (the protocol is strictly
 * request/response; a frame that arrives while the previous one is
 * being served simply waits in the read buffer).
 *
 * The same port also answers a plaintext admin protocol: connections
 * whose first byte is not the frame magic's 'O' are read as one text
 * line — `STATS` returns service + server counters (including p50/p95
 * service latency and per-reactor lines), `HEALTH` returns `ok` or
 * `draining` — then the connection closes.  In cluster mode four more
 * commands manage the shard: `SHARDMAP` (the encoded map), `JOIN <id>
 * <host:port>` / `LEAVE <id>` (membership changes, bumping the map
 * epoch), and `RECAL` (advance the model epoch and broadcast an
 * epoch-invalidate to every peer; the reply reports the new epoch and
 * the ack count only after the broadcast completed, so `ok`+reply
 * implies no reachable shard still serves pre-epoch exact hits).
 *
 * In cluster mode (`ServerOptions::shard_map` set) the server also
 * ownership-checks every request against the consistent-hash ring and
 * answers `NotOwner` for digests another shard owns, and it serves the
 * shard-to-shard frames (`PeerDonorQuery`, `EpochInvalidate`) directly
 * on the owning reactor — both are sub-millisecond cache/epoch
 * operations, far cheaper than the GA work that goes through the
 * service pool.
 *
 * stop() is graceful: buffered-but-unserved frames are answered
 * `Busy (shutting-down)`, the service drains (every admitted request
 * completes), every pending response is flushed, and only then do the
 * reactors exit.  Listeners stay open through the drain window
 * (bounded by shutdown_flush_seconds) so HEALTH probes can observe
 * `draining`; they are closed by the time stop() returns.
 */

#ifndef OPDVFS_NET_SERVER_H
#define OPDVFS_NET_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/health.h"
#include "net/peer.h"
#include "net/wire.h"
#include "serve/encoded_cache.h"
#include "serve/service.h"
#include "shard/shard_map.h"

namespace opdvfs::net {

/** Server configuration. */
struct ServerOptions
{
    /** Bind address (tests and the bench stay on loopback). */
    std::string bind_address = "127.0.0.1";
    /** Port to bind; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /** Event-loop threads, each owning its connections' sockets. */
    std::size_t reactor_threads = 1;
    /**
     * With more than one reactor, bind one SO_REUSEPORT listener per
     * reactor and let the kernel distribute connections by flow hash
     * (no cross-thread handoff).  Off: reactor 0 owns the single
     * listener and deals accepted sockets round-robin — deterministic,
     * which the reactor tests rely on.  Falls back to round-robin
     * where SO_REUSEPORT is unavailable.
     */
    bool reuse_port = false;
    /**
     * Serve exact cache hits directly on the reactor from pre-encoded
     * frames (see the file comment).  Off: every request takes the
     * worker path (the pre-fast-path behaviour, kept as a bench
     * baseline and an escape hatch).
     */
    bool fast_exact_hits = true;
    /** Pre-encoded frames kept for the fast path (FIFO eviction). */
    std::size_t encoded_cache_capacity = 1024;
    /** Accepted connections beyond this (across all reactors) are
     *  closed immediately. */
    std::size_t max_connections = 64;
    /** listen(2) backlog. */
    int backlog = 16;
    /** Idle connections (no in-flight work) are reaped after this.
     *  Also bounds write stalls: a peer that stops reading its socket
     *  makes no write progress, so its connection is reaped too
     *  instead of pinning a max_connections slot forever. */
    double idle_timeout_seconds = 60.0;
    /** During stop(), connections whose responses still cannot be
     *  flushed this long after shutdown began are force-closed, so a
     *  peer that stopped reading cannot hang graceful shutdown.  The
     *  listeners also stay open this long into shutdown so admin
     *  probes (HEALTH) can observe `draining` while the service
     *  finishes in-flight work. */
    double shutdown_flush_seconds = 5.0;
    /**
     * Close a connection after this many *consecutive* payload errors
     * (intact frames whose payload fails to decode; the count resets
     * on a good frame).  Framing errors always close immediately; this
     * bounds how long a peer spewing valid-CRC garbage can hold a
     * max_connections slot.  0 = never close on payload errors.
     */
    std::size_t max_payload_errors = 3;
    /** Decoder caps applied to every inbound frame. */
    WireLimits limits;

    // --- cluster mode -------------------------------------------------
    /**
     * This server's shard identity on the cluster ring.  Meaningful
     * only when `shard_map` is set.
     */
    std::uint32_t shard_id = 0;
    /**
     * Live cluster membership shared with the admin JOIN/LEAVE
     * commands and the peer client.  When set and non-empty, every
     * request is ownership-checked: a fingerprint owned by another
     * shard is answered `NotOwner` (owner address + map epoch + full
     * encoded map) instead of being served.  Null: single-shard mode,
     * no checks, wire-compatible with a non-clustered client.
     */
    std::shared_ptr<shard::SharedShardMap> shard_map;
    /**
     * Shard-to-shard client used to broadcast epoch invalidates when
     * the admin RECAL command advances the model epoch.  Null: RECAL
     * still recalibrates locally but tells no one.
     */
    std::shared_ptr<ShardPeers> peers;
    /**
     * Successor replicator whose counters STATS surfaces (the
     * replicator itself hangs off the service's insert listener, not
     * the server).  Null: no replication lines.
     */
    std::shared_ptr<ShardReplicator> replicator;
    /**
     * Peer health monitor; when set, STATS and HEALTH append per-peer
     * `peer_health <id> <address> <state>` lines.  Null: liveness is
     * not tracked and the extra lines are absent (the bare `ok` /
     * `draining` HEALTH reply is unchanged either way — probes and
     * old tooling parse only the first line).
     */
    std::shared_ptr<HealthMonitor> health;
};

/** Per-reactor slice of the counters (see ServerStats::reactors). */
struct ReactorStats
{
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_reaped = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t fast_path_hits = 0;
    std::size_t open_connections = 0;
};

/**
 * Monotonic counters, aggregated across reactors on read.  Each
 * reactor bumps its own cache-line-padded relaxed atomics; nothing on
 * the hot path shares a line between reactors.
 */
struct ServerStats
{
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_refused = 0;
    std::uint64_t connections_reaped = 0;
    std::uint64_t frames_in = 0;
    /** Exact hits served on a reactor from a pre-encoded frame
     *  (subset of responses_ok; these never reach the service, so
     *  they appear in no service_* counter). */
    std::uint64_t fast_path_hits = 0;
    /** Fast-path probes that missed and took the worker path. */
    std::uint64_t fast_path_misses = 0;
    std::uint64_t responses_ok = 0;
    std::uint64_t responses_busy = 0;
    /** Busy responses whose cause was an expired deadline (subset of
     *  responses_busy). */
    std::uint64_t responses_expired = 0;
    std::uint64_t responses_malformed = 0;
    std::uint64_t responses_chip_mismatch = 0;
    std::uint64_t responses_internal = 0;
    /** Requests answered NotOwner (another shard owns the digest). */
    std::uint64_t responses_not_owner = 0;
    /** Peer donor queries answered (hit or miss). */
    std::uint64_t peer_donor_queries_served = 0;
    /** Peer donor queries answered with a donor (subset of served). */
    std::uint64_t peer_donors_exported = 0;
    /** Epoch invalidates received from recalibrating peers. */
    std::uint64_t epoch_invalidates_received = 0;
    /** Replica entries received from owners and imported. */
    std::uint64_t peer_replicas_received = 0;
    /** Replica frames refused (decode/import failure). */
    std::uint64_t peer_replicas_refused = 0;
    std::uint64_t admin_requests = 0;
    std::size_t open_connections = 0;
    /** One slice per reactor, index-aligned. */
    std::vector<ReactorStats> reactors;
};

/**
 * The pre-encoded frame the reactor fast path serves for a cached
 * entry: byte-for-byte what the worker path encodes for an exact hit
 * on that entry, with `service_seconds` pinned to 0.0.  Built from
 * any Ok worker-path response (@p ok) for a cache-eligible request:
 * provenance becomes ExactHit, generations_run 0, generations_saved
 * the full GA budget, similarity 0, and the model epoch is stamped
 * from the cache entry so an epoch-equality check gates staleness.
 * Exposed so tests and the RCU property suite can rebuild the frame
 * independently (the re-encode identity oracle).
 * @throws WireError when the response exceeds the encoder caps.
 */
std::string encodeExactHitFrame(const WireResponse &ok,
                                std::uint32_t full_generations,
                                std::uint64_t entry_model_epoch,
                                const WireLimits &limits);

/**
 * Serves one StrategyService over TCP.  The service must outlive the
 * server; stop() (also run by the destructor) drains it.
 */
class StrategyServer
{
  public:
    StrategyServer(serve::StrategyService &service, ServerOptions options);
    ~StrategyServer();

    StrategyServer(const StrategyServer &) = delete;
    StrategyServer &operator=(const StrategyServer &) = delete;

    /**
     * Bind, listen and launch the reactors.
     * @throws std::runtime_error when the sockets cannot be set up.
     */
    void start();

    /** Graceful shutdown; idempotent.  See the file comment. */
    void stop();

    /** The bound port (after start(); resolves port 0 bindings). */
    std::uint16_t port() const { return bound_port_; }

    /** Snapshot of the aggregated counters. */
    ServerStats stats() const;

    /** The admin STATS text, exactly as served over the socket. */
    std::string statsText() const;

  private:
    struct Connection
    {
        int fd = -1;
        std::string read_buffer;
        std::string write_buffer;
        /** A request frame was admitted and not yet answered. */
        bool in_flight = false;
        /** First byte was not the frame magic: plaintext admin mode. */
        bool admin = false;
        /** Flush the write buffer, then close (frame desync or admin
         *  reply: no further frame can be trusted / is expected). */
        bool close_after_flush = false;
        /** Loop-clock timestamp of the last read or write. */
        double last_activity = 0.0;
        /** Consecutive intact-frame payload decode failures; the
         *  connection closes at ServerOptions::max_payload_errors. */
        std::size_t payload_error_streak = 0;
    };

    /** Hot counters, one padded block per reactor.  The owning
     *  reactor (or a completion it spawned) writes with relaxed
     *  atomics; stats() sums across blocks. */
    struct alignas(64) ReactorCounters
    {
        std::atomic<std::uint64_t> connections_accepted{0};
        std::atomic<std::uint64_t> connections_refused{0};
        std::atomic<std::uint64_t> connections_reaped{0};
        std::atomic<std::uint64_t> frames_in{0};
        std::atomic<std::uint64_t> fast_path_hits{0};
        std::atomic<std::uint64_t> fast_path_misses{0};
        std::atomic<std::uint64_t> responses_ok{0};
        std::atomic<std::uint64_t> responses_busy{0};
        std::atomic<std::uint64_t> responses_expired{0};
        std::atomic<std::uint64_t> responses_malformed{0};
        std::atomic<std::uint64_t> responses_chip_mismatch{0};
        std::atomic<std::uint64_t> responses_internal{0};
        std::atomic<std::uint64_t> responses_not_owner{0};
        std::atomic<std::uint64_t> peer_donor_queries_served{0};
        std::atomic<std::uint64_t> peer_donors_exported{0};
        std::atomic<std::uint64_t> epoch_invalidates_received{0};
        std::atomic<std::uint64_t> peer_replicas_received{0};
        std::atomic<std::uint64_t> peer_replicas_refused{0};
        std::atomic<std::uint64_t> admin_requests{0};
        std::atomic<std::size_t> open_connections{0};
    };

    /**
     * One event loop and everything it exclusively owns.  Only the
     * reactor's thread touches `connections`, the fds and the id
     * counter; the queues are the cross-thread seams (mutex-guarded,
     * drained by the loop after a self-pipe wake).
     */
    struct Reactor
    {
        std::size_t index = 0;
        /** Listener owned by this reactor: every reactor in
         *  reuse-port mode, reactor 0 otherwise, else -1. */
        int listen_fd = -1;
        int wake_read_fd = -1;
        int wake_write_fd = -1;
        std::thread thread;
        std::map<std::uint64_t, Connection> connections;
        std::uint64_t next_connection_id = 1;
        /** Framed response bytes finished by service workers. */
        std::mutex completion_mutex;
        std::deque<std::pair<std::uint64_t, std::string>> completions;
        /** Sockets accepted by reactor 0 awaiting adoption here. */
        std::mutex handoff_mutex;
        std::deque<int> handoff;
        /** This reactor's slot in the RCU encoded cache. */
        std::size_t cache_reader = 0;
        ReactorCounters counters;
    };

    void eventLoop(Reactor &reactor);
    void acceptPending(Reactor &reactor);
    /** Take ownership of an accepted socket on this reactor. */
    void adoptConnection(Reactor &reactor, int fd);
    void drainHandoff(Reactor &reactor);
    void handleReadable(Reactor &reactor, std::uint64_t id,
                        Connection &conn);
    void serveFrames(Reactor &reactor, std::uint64_t id,
                     Connection &conn);
    void serveRequest(Reactor &reactor, std::uint64_t id,
                      Connection &conn, std::string_view payload);
    /** Peer frames (donor query / epoch invalidate) are answered
     *  directly on the owning reactor: both are cheap cache/epoch
     *  operations. */
    void servePeerDonorQuery(Reactor &reactor, std::uint64_t id,
                             Connection &conn, std::string_view payload);
    void serveEpochInvalidate(Reactor &reactor, std::uint64_t id,
                              Connection &conn, std::string_view payload);
    void servePeerReplicate(Reactor &reactor, std::uint64_t id,
                            Connection &conn, std::string_view payload);
    void serveAdminLine(Reactor &reactor, Connection &conn);
    void queueResponse(Reactor &reactor, std::uint64_t id,
                       Connection &conn, const WireResponse &response);
    void flushWritable(Reactor &reactor, std::uint64_t id,
                       Connection &conn);
    void drainCompletions(Reactor &reactor);
    void closeConnection(Reactor &reactor, std::uint64_t id);
    void wakeReactor(Reactor &reactor);
    /** Open, bind and listen one socket; fills bound_port_ on the
     *  first bind when options_.port is 0. */
    int openListener(bool reuse_port);
    void teardownPartialStart();
    double loopNow() const;

    serve::StrategyService &service_;
    ServerOptions options_;
    /** The serving chip's canonical block; requests must match it. */
    std::string chip_block_;
    /** The full GA budget an exact hit saves (pre-encoded frames
     *  report it as generations_saved, like the worker path). */
    std::uint32_t full_generations_ = 0;

    std::uint16_t bound_port_ = 0;
    /** Loop-clock timestamp of start(); statsText reports uptime. */
    double started_at_ = 0.0;
    /** True when every reactor owns a SO_REUSEPORT listener. */
    bool reuse_port_active_ = false;

    /** 0 running, 1 stop requested, 2 stopped. */
    std::atomic<int> phase_{0};

    std::vector<std::unique_ptr<Reactor>> reactors_;
    /** Round-robin cursor for accept-and-distribute (reactor 0's
     *  thread only). */
    std::size_t accept_robin_ = 0;
    /** Open connections across all reactors (max_connections is a
     *  global bound). */
    std::atomic<std::size_t> total_open_{0};

    /** Pre-encoded exact-hit frames, RCU-read by every reactor,
     *  populated by worker completions. */
    serve::EncodedResponseCache encoded_;

    /**
     * Completion callbacks handed to the service and not yet returned.
     * The service releases its admission slot *before* the callback
     * runs, so drain() alone does not fence callbacks that capture
     * `this`; stop() additionally waits for this count to reach zero
     * before tearing anything down.
     */
    std::mutex callback_mutex_;
    std::condition_variable callback_idle_;
    std::size_t outstanding_callbacks_ = 0;
};

} // namespace opdvfs::net

#endif // OPDVFS_NET_SERVER_H
