/**
 * @file
 * TCP front end for the strategy service.
 *
 * One poll(2)-based event loop thread owns every socket: it accepts
 * connections, peels wire frames off per-connection read buffers,
 * admits decoded requests into the StrategyService through its
 * non-blocking callback API, and flushes encoded responses.  Service
 * worker threads never touch a socket: a completion encodes its
 * response off the loop, pushes the framed bytes onto a queue and
 * wakes the loop through a self-pipe.
 *
 * Backpressure is structured end to end: when the service's admission
 * queue is full (or the service is draining) the request is answered
 * with a `Busy` frame carrying the serve::RejectReason — the
 * connection is never dropped to signal overload.  The server itself
 * bounds connections and accepts at most one in-flight request per
 * connection (the protocol is strictly request/response; a frame that
 * arrives while the previous one is being served simply waits in the
 * read buffer).
 *
 * The same port also answers a plaintext admin protocol: connections
 * whose first byte is not the frame magic's 'O' are read as one text
 * line — `STATS` returns service + server counters (including p50/p95
 * service latency), `HEALTH` returns `ok` or `draining` — then the
 * connection closes.  In cluster mode four more commands manage the
 * shard: `SHARDMAP` (the encoded map), `JOIN <id> <host:port>` /
 * `LEAVE <id>` (membership changes, bumping the map epoch), and
 * `RECAL` (advance the model epoch and broadcast an epoch-invalidate
 * to every peer; the reply reports the new epoch and the ack count
 * only after the broadcast completed, so `ok`+reply implies no
 * reachable shard still serves pre-epoch exact hits).
 *
 * In cluster mode (`ServerOptions::shard_map` set) the server also
 * ownership-checks every request against the consistent-hash ring and
 * answers `NotOwner` for digests another shard owns, and it serves the
 * shard-to-shard frames (`PeerDonorQuery`, `EpochInvalidate`) directly
 * on the event loop — both are sub-millisecond cache/epoch operations,
 * far cheaper than the GA work that goes through the service pool.
 *
 * stop() is graceful: buffered-but-unserved frames are answered
 * `Busy (shutting-down)`, the service drains (every admitted request
 * completes), every pending response is flushed, and only then does
 * the loop exit.  The listener stays open through the drain window
 * (bounded by shutdown_flush_seconds) so HEALTH probes can observe
 * `draining`; it is closed by the time stop() returns.
 */

#ifndef OPDVFS_NET_SERVER_H
#define OPDVFS_NET_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "net/health.h"
#include "net/peer.h"
#include "net/wire.h"
#include "serve/service.h"
#include "shard/shard_map.h"

namespace opdvfs::net {

/** Server configuration. */
struct ServerOptions
{
    /** Bind address (tests and the bench stay on loopback). */
    std::string bind_address = "127.0.0.1";
    /** Port to bind; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /** Accepted connections beyond this are closed immediately. */
    std::size_t max_connections = 64;
    /** listen(2) backlog. */
    int backlog = 16;
    /** Idle connections (no in-flight work) are reaped after this.
     *  Also bounds write stalls: a peer that stops reading its socket
     *  makes no write progress, so its connection is reaped too
     *  instead of pinning a max_connections slot forever. */
    double idle_timeout_seconds = 60.0;
    /** During stop(), connections whose responses still cannot be
     *  flushed this long after shutdown began are force-closed, so a
     *  peer that stopped reading cannot hang graceful shutdown.  The
     *  listener also stays open this long into shutdown so admin
     *  probes (HEALTH) can observe `draining` while the service
     *  finishes in-flight work. */
    double shutdown_flush_seconds = 5.0;
    /**
     * Close a connection after this many *consecutive* payload errors
     * (intact frames whose payload fails to decode; the count resets
     * on a good frame).  Framing errors always close immediately; this
     * bounds how long a peer spewing valid-CRC garbage can hold a
     * max_connections slot.  0 = never close on payload errors.
     */
    std::size_t max_payload_errors = 3;
    /** Decoder caps applied to every inbound frame. */
    WireLimits limits;

    // --- cluster mode -------------------------------------------------
    /**
     * This server's shard identity on the cluster ring.  Meaningful
     * only when `shard_map` is set.
     */
    std::uint32_t shard_id = 0;
    /**
     * Live cluster membership shared with the admin JOIN/LEAVE
     * commands and the peer client.  When set and non-empty, every
     * request is ownership-checked: a fingerprint owned by another
     * shard is answered `NotOwner` (owner address + map epoch + full
     * encoded map) instead of being served.  Null: single-shard mode,
     * no checks, wire-compatible with a non-clustered client.
     */
    std::shared_ptr<shard::SharedShardMap> shard_map;
    /**
     * Shard-to-shard client used to broadcast epoch invalidates when
     * the admin RECAL command advances the model epoch.  Null: RECAL
     * still recalibrates locally but tells no one.
     */
    std::shared_ptr<ShardPeers> peers;
    /**
     * Successor replicator whose counters STATS surfaces (the
     * replicator itself hangs off the service's insert listener, not
     * the server).  Null: no replication lines.
     */
    std::shared_ptr<ShardReplicator> replicator;
    /**
     * Peer health monitor; when set, STATS and HEALTH append per-peer
     * `peer_health <id> <address> <state>` lines.  Null: liveness is
     * not tracked and the extra lines are absent (the bare `ok` /
     * `draining` HEALTH reply is unchanged either way — probes and
     * old tooling parse only the first line).
     */
    std::shared_ptr<HealthMonitor> health;
};

/** Monotonic counters owned by the event loop. */
struct ServerStats
{
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_refused = 0;
    std::uint64_t connections_reaped = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t responses_ok = 0;
    std::uint64_t responses_busy = 0;
    /** Busy responses whose cause was an expired deadline (subset of
     *  responses_busy). */
    std::uint64_t responses_expired = 0;
    std::uint64_t responses_malformed = 0;
    std::uint64_t responses_chip_mismatch = 0;
    std::uint64_t responses_internal = 0;
    /** Requests answered NotOwner (another shard owns the digest). */
    std::uint64_t responses_not_owner = 0;
    /** Peer donor queries answered (hit or miss). */
    std::uint64_t peer_donor_queries_served = 0;
    /** Peer donor queries answered with a donor (subset of served). */
    std::uint64_t peer_donors_exported = 0;
    /** Epoch invalidates received from recalibrating peers. */
    std::uint64_t epoch_invalidates_received = 0;
    /** Replica entries received from owners and imported. */
    std::uint64_t peer_replicas_received = 0;
    /** Replica frames refused (decode/import failure). */
    std::uint64_t peer_replicas_refused = 0;
    std::uint64_t admin_requests = 0;
    std::size_t open_connections = 0;
};

/**
 * Serves one StrategyService over TCP.  The service must outlive the
 * server; stop() (also run by the destructor) drains it.
 */
class StrategyServer
{
  public:
    StrategyServer(serve::StrategyService &service, ServerOptions options);
    ~StrategyServer();

    StrategyServer(const StrategyServer &) = delete;
    StrategyServer &operator=(const StrategyServer &) = delete;

    /**
     * Bind, listen and launch the event loop.
     * @throws std::runtime_error when the socket cannot be set up.
     */
    void start();

    /** Graceful shutdown; idempotent.  See the file comment. */
    void stop();

    /** The bound port (after start(); resolves port 0 bindings). */
    std::uint16_t port() const { return bound_port_; }

    /** Snapshot of the loop's counters. */
    ServerStats stats() const;

    /** The admin STATS text, exactly as served over the socket. */
    std::string statsText() const;

  private:
    struct Connection
    {
        int fd = -1;
        std::string read_buffer;
        std::string write_buffer;
        /** A request frame was admitted and not yet answered. */
        bool in_flight = false;
        /** First byte was not the frame magic: plaintext admin mode. */
        bool admin = false;
        /** Flush the write buffer, then close (frame desync or admin
         *  reply: no further frame can be trusted / is expected). */
        bool close_after_flush = false;
        /** Loop-clock timestamp of the last read or write. */
        double last_activity = 0.0;
        /** Consecutive intact-frame payload decode failures; the
         *  connection closes at ServerOptions::max_payload_errors. */
        std::size_t payload_error_streak = 0;
    };

    void eventLoop();
    void acceptPending();
    void handleReadable(std::uint64_t id, Connection &conn);
    void serveFrames(std::uint64_t id, Connection &conn);
    void serveRequest(std::uint64_t id, Connection &conn,
                      std::string_view payload);
    /** Peer frames (donor query / epoch invalidate) are answered
     *  directly on the loop: both are cheap cache/epoch operations. */
    void servePeerDonorQuery(std::uint64_t id, Connection &conn,
                             std::string_view payload);
    void serveEpochInvalidate(std::uint64_t id, Connection &conn,
                              std::string_view payload);
    void servePeerReplicate(std::uint64_t id, Connection &conn,
                            std::string_view payload);
    void serveAdminLine(Connection &conn);
    void queueResponse(std::uint64_t id, Connection &conn,
                       const WireResponse &response);
    void flushWritable(std::uint64_t id, Connection &conn);
    void drainCompletions();
    void closeConnection(std::uint64_t id);
    void wakeLoop();
    double loopNow() const;

    serve::StrategyService &service_;
    ServerOptions options_;
    /** The serving chip's canonical block; requests must match it. */
    std::string chip_block_;

    int listen_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    std::uint16_t bound_port_ = 0;
    /** Loop-clock timestamp of start(); statsText reports uptime. */
    double started_at_ = 0.0;

    std::thread loop_thread_;
    /** 0 running, 1 stop requested, 2 loop exited. */
    std::atomic<int> phase_{0};

    /** Loop-thread state (the loop is the only writer). */
    std::map<std::uint64_t, Connection> connections_;
    std::uint64_t next_connection_id_ = 1;

    /** Framed response bytes finished by service workers. */
    std::mutex completion_mutex_;
    std::deque<std::pair<std::uint64_t, std::string>> completions_;

    /**
     * Completion callbacks handed to the service and not yet returned.
     * The service releases its admission slot *before* the callback
     * runs, so drain() alone does not fence callbacks that capture
     * `this`; stop() additionally waits for this count to reach zero
     * before tearing anything down.
     */
    std::mutex callback_mutex_;
    std::condition_variable callback_idle_;
    std::size_t outstanding_callbacks_ = 0;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;
};

} // namespace opdvfs::net

#endif // OPDVFS_NET_SERVER_H
