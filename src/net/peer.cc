#include "net/peer.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

namespace opdvfs::net {

namespace {

double
steadyNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
pollUntil(int fd, short events, double deadline, const char *what)
{
    while (true) {
        double remaining = deadline - steadyNow();
        if (remaining <= 0.0)
            throw std::runtime_error(std::string("peer: deadline expired ")
                                     + what);
        pollfd pfd{fd, events, 0};
        int timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
        int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready > 0)
            return;
        if (ready < 0 && errno != EINTR)
            throw std::runtime_error("peer: poll() failed");
    }
}

/** RAII non-blocking connected socket with a connect deadline. */
class PeerSocket
{
  public:
    PeerSocket(const std::string &host, std::uint16_t port,
               double timeout_seconds)
    {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
            throw std::runtime_error("peer: bad host address " + host);
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            throw std::runtime_error("peer: socket() failed");
        try {
            int flags = ::fcntl(fd_, F_GETFL, 0);
            if (flags < 0
                || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0)
                throw std::runtime_error("peer: fcntl() failed");
            int rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr));
            if (rc < 0 && errno != EINPROGRESS)
                throw std::runtime_error("peer: connect() to " + host
                                         + " failed");
            if (rc < 0) {
                pollUntil(fd_, POLLOUT, steadyNow() + timeout_seconds,
                          "connecting");
                int error = 0;
                socklen_t length = sizeof(error);
                if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error,
                                 &length) < 0
                    || error != 0)
                    throw std::runtime_error(
                        "peer: connect() to " + host + " failed: "
                        + std::strerror(error ? error : errno));
            }
            int one = 1;
            ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
        } catch (...) {
            ::close(fd_);
            throw;
        }
    }

    ~PeerSocket()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    PeerSocket(const PeerSocket &) = delete;
    PeerSocket &operator=(const PeerSocket &) = delete;

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
};

/**
 * One-shot exchange: send @p frame, read exactly one frame of type
 * @p expect back.  Throws on any transport error, deadline expiry or
 * an unexpected frame type.
 */
std::string
exchangeFrame(const shard::ShardInfo &peer, const std::string &frame,
              MsgType expect, double connect_timeout,
              double exchange_timeout, const WireLimits &limits)
{
    std::string host;
    std::uint16_t port = 0;
    shard::parseAddress(peer.address, &host, &port);
    PeerSocket socket(host, port, connect_timeout);
    double deadline = steadyNow() + exchange_timeout;

    std::size_t offset = 0;
    while (offset < frame.size()) {
        ssize_t sent = ::send(socket.fd(), frame.data() + offset,
                              frame.size() - offset, MSG_NOSIGNAL);
        if (sent > 0) {
            offset += static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0
            && (errno == EAGAIN || errno == EWOULDBLOCK
                || errno == EINTR)) {
            pollUntil(socket.fd(), POLLOUT, deadline, "sending");
            continue;
        }
        throw std::runtime_error("peer: send() failed");
    }

    std::string buffer;
    char chunk[16384];
    while (true) {
        std::size_t consumed = 0;
        std::optional<FrameView> view =
            peelFrame(buffer, &consumed, limits);
        if (view) {
            if (view->type != expect)
                throw std::runtime_error(
                    "peer: unexpected reply frame type");
            return std::string(view->payload);
        }
        pollUntil(socket.fd(), POLLIN, deadline, "awaiting the reply");
        ssize_t got = ::recv(socket.fd(), chunk, sizeof(chunk), 0);
        if (got > 0) {
            buffer.append(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0)
            throw std::runtime_error("peer: peer closed the connection");
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            continue;
        throw std::runtime_error("peer: recv() failed");
    }
}

} // namespace

ShardPeers::ShardPeers(std::uint32_t self_id,
                       std::shared_ptr<shard::SharedShardMap> map,
                       PeerOptions options)
    : self_id_(self_id), map_(std::move(map)), options_(options)
{
    if (!map_)
        throw std::invalid_argument("peer: null shard map");
}

std::optional<serve::PeerDonor>
ShardPeers::queryDonors(const serve::Fingerprint &probe,
                        double perf_loss_target)
{
    if (options_.max_fanout == 0)
        return std::nullopt;
    auto map = map_->snapshot();
    std::vector<shard::ShardInfo> peers;
    for (const shard::ShardInfo &info : map->shards())
        if (info.id != self_id_ && peers.size() < options_.max_fanout)
            peers.push_back(info);
    if (peers.empty())
        return std::nullopt;

    PeerDonorQuery query;
    query.digest = probe.digest;
    query.features = probe.features;
    query.model_epoch = probe.model_epoch;
    query.perf_loss_target = perf_loss_target;
    query.origin_shard = self_id_;
    std::string frame =
        frameMessage(MsgType::PeerDonorQuery,
                     encodePeerDonorQuery(query, options_.limits),
                     options_.limits);

    // Parallel fan-out: one thread per peer, joined below, so the wall
    // cost is the slowest peer's deadline, not the sum.
    std::vector<std::optional<PeerDonorReply>> replies(peers.size());
    std::vector<std::thread> threads;
    threads.reserve(peers.size());
    for (std::size_t i = 0; i < peers.size(); ++i) {
        threads.emplace_back([this, &peers, &replies, &frame, i] {
            donor_queries_sent_.fetch_add(1, std::memory_order_relaxed);
            try {
                std::string payload = exchangeFrame(
                    peers[i], frame, MsgType::PeerDonorReply,
                    options_.connect_timeout_seconds,
                    options_.query_timeout_seconds, options_.limits);
                replies[i] =
                    decodePeerDonorReply(payload, options_.limits);
            } catch (const std::exception &) {
                donor_exchange_failures_.fetch_add(
                    1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    const PeerDonorReply *best = nullptr;
    for (const auto &reply : replies) {
        if (!reply || !reply->found)
            continue;
        donor_replies_found_.fetch_add(1, std::memory_order_relaxed);
        if (!best || reply->similarity > best->similarity)
            best = &*reply;
    }
    if (!best)
        return std::nullopt;

    serve::PeerDonor donor;
    donor.fingerprint.digest = best->fingerprint_digest;
    donor.fingerprint.features = best->features;
    donor.fingerprint.model_epoch = best->model_epoch;
    donor.best_mhz = best->best_mhz;
    donor.best_score = best->best_score;
    donor.similarity = best->similarity;
    donor.perf_loss_target = best->perf_loss_target;
    try {
        std::istringstream is(best->strategy_text);
        donor.strategy = dvfs::loadStrategy(is);
    } catch (const std::exception &) {
        // A peer shipping an unparsable strategy is a peer bug; treat
        // it as a miss rather than poisoning the local cache.
        donor_exchange_failures_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    return donor;
}

ShardPeers::InvalidateResult
ShardPeers::broadcastEpochInvalidate(std::uint64_t epoch)
{
    auto map = map_->snapshot();
    std::vector<shard::ShardInfo> peers;
    for (const shard::ShardInfo &info : map->shards())
        if (info.id != self_id_)
            peers.push_back(info);
    if (peers.empty())
        return {};

    EpochInvalidate invalidate;
    invalidate.origin_shard = self_id_;
    invalidate.model_epoch = epoch;
    std::string frame = frameMessage(MsgType::EpochInvalidate,
                                     encodeEpochInvalidate(invalidate),
                                     options_.limits);

    std::vector<char> acked(peers.size(), 0);
    std::vector<std::thread> threads;
    threads.reserve(peers.size());
    for (std::size_t i = 0; i < peers.size(); ++i) {
        threads.emplace_back([this, &peers, &acked, &frame, epoch, i] {
            invalidates_sent_.fetch_add(1, std::memory_order_relaxed);
            try {
                std::string payload = exchangeFrame(
                    peers[i], frame, MsgType::EpochInvalidateAck,
                    options_.connect_timeout_seconds,
                    options_.invalidate_timeout_seconds, options_.limits);
                EpochInvalidateAck ack =
                    decodeEpochInvalidateAck(payload);
                // The peer's resulting epoch must cover ours; a lower
                // ack means the raise did not take (peer bug) and must
                // not count towards coherence.
                if (ack.model_epoch >= epoch)
                    acked[i] = 1;
            } catch (const std::exception &) {
                // Unreachable peer: it holds no fresh strategies for
                // the new epoch anyway, and will resynchronise through
                // the next invalidate or restart.
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    InvalidateResult result;
    for (std::size_t i = 0; i < peers.size(); ++i) {
        if (acked[i])
            ++result.acks;
        else
            result.failed_addresses.push_back(peers[i].address);
    }
    invalidates_acked_.fetch_add(result.acks, std::memory_order_relaxed);
    return result;
}

PeerStats
ShardPeers::stats() const
{
    PeerStats out;
    out.donor_queries_sent =
        donor_queries_sent_.load(std::memory_order_relaxed);
    out.donor_replies_found =
        donor_replies_found_.load(std::memory_order_relaxed);
    out.donor_exchange_failures =
        donor_exchange_failures_.load(std::memory_order_relaxed);
    out.invalidates_sent =
        invalidates_sent_.load(std::memory_order_relaxed);
    out.invalidates_acked =
        invalidates_acked_.load(std::memory_order_relaxed);
    return out;
}

ShardReplicator::ShardReplicator(std::uint32_t self_id,
                                 std::shared_ptr<shard::SharedShardMap> map,
                                 ReplicatorOptions options)
    : self_id_(self_id), map_(std::move(map)), options_(options)
{
    if (!map_)
        throw std::invalid_argument("replicator: null shard map");
    if (options_.replication_factor == 0)
        throw std::invalid_argument(
            "replicator: zero replication factor");
    if (options_.queue_capacity == 0)
        throw std::invalid_argument("replicator: zero queue capacity");
    sender_ = std::thread([this] { senderLoop(); });
}

ShardReplicator::~ShardReplicator()
{
    stop();
}

void
ShardReplicator::onInsert(const serve::CacheEntry &entry)
{
    if (options_.replication_factor < 2)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        if (queue_.size() >= options_.queue_capacity) {
            // Bounded by design: a dead successor costs replicas (one
            // recompute after a failover), never serving-path memory.
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        queue_.push_back(entry);
    }
    wake_.notify_all();
}

void
ShardReplicator::flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] {
        return stopping_ || (queue_.empty() && !sending_);
    });
}

void
ShardReplicator::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    drained_.notify_all();
    std::lock_guard<std::mutex> join_lock(join_mutex_);
    if (sender_.joinable())
        sender_.join();
}

ReplicatorStats
ShardReplicator::stats() const
{
    ReplicatorStats out;
    out.sent = sent_.load(std::memory_order_relaxed);
    out.acked = acked_.load(std::memory_order_relaxed);
    out.failed = failed_.load(std::memory_order_relaxed);
    out.dropped = dropped_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.queue_depth = queue_.size();
    }
    return out;
}

void
ShardReplicator::senderLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        wake_.wait(lock,
                   [this] { return stopping_ || !queue_.empty(); });
        if (stopping_)
            break;
        serve::CacheEntry entry = std::move(queue_.front());
        queue_.pop_front();
        sending_ = true;
        lock.unlock();
        replicateOne(entry);
        lock.lock();
        sending_ = false;
        drained_.notify_all();
    }
    drained_.notify_all();
}

void
ShardReplicator::replicateOne(const serve::CacheEntry &entry)
{
    // Per-entry map snapshot: a JOIN/LEAVE between inserts re-routes
    // the next replica to the new successors.
    auto map = map_->snapshot();
    std::vector<shard::ShardInfo> successors;
    try {
        successors = map->successorsOf(entry.fingerprint.digest,
                                       options_.replication_factor - 1);
    } catch (const std::exception &) {
        return; // empty ring: nobody to replicate to
    }

    PeerReplicate message;
    message.origin_shard = self_id_;
    message.fingerprint_digest = entry.fingerprint.digest;
    message.features = entry.fingerprint.features;
    message.model_epoch = entry.fingerprint.model_epoch;
    message.perf_loss_target = entry.perf_loss_target;
    message.best_score = entry.ga.best_score;
    message.best_mhz = entry.ga.best_mhz;
    std::string frame;
    try {
        std::ostringstream strategy_text;
        dvfs::saveStrategy(entry.strategy, strategy_text);
        message.strategy_text = std::move(strategy_text).str();
        frame = frameMessage(
            MsgType::PeerReplicate,
            encodePeerReplicate(message, options_.limits),
            options_.limits);
    } catch (const std::exception &) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    for (const shard::ShardInfo &successor : successors) {
        if (successor.id == self_id_)
            continue; // a 2-shard ring can name us as our own successor
        sent_.fetch_add(1, std::memory_order_relaxed);
        try {
            std::string payload = exchangeFrame(
                successor, frame, MsgType::PeerReplicateAck,
                options_.connect_timeout_seconds,
                options_.exchange_timeout_seconds, options_.limits);
            PeerReplicateAck ack = decodePeerReplicateAck(payload);
            if (ack.accepted)
                acked_.fetch_add(1, std::memory_order_relaxed);
            else
                failed_.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception &) {
            // A dead successor lags replication; the counter is the
            // operator's signal, the queue bound is the safety net.
            failed_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

serve::DonorLookupFn
makePeerDonorLookup(std::shared_ptr<ShardPeers> peers)
{
    if (!peers)
        return {};
    return [peers](const serve::Fingerprint &probe,
                   double perf_loss_target) {
        return peers->queryDonors(probe, perf_loss_target);
    };
}

} // namespace opdvfs::net
