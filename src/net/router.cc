#include "net/router.h"

#include <stdexcept>

#include "serve/fingerprint.h"

namespace opdvfs::net {

ShardRouter::ShardRouter(shard::ShardMap map, RouterOptions options)
    : map_(std::move(map)), options_(std::move(options))
{
    if (map_.empty())
        throw std::invalid_argument("router: empty shard map");
    if (options_.max_redirects < 0)
        options_.max_redirects = 0;
}

std::uint64_t
ShardRouter::requestDigest(const WireRequest &request)
{
    // The identical canonical fingerprint the servers compute from the
    // decoded request: codec round-trip stability (encode(decode(p)) ==
    // p) guarantees client and server agree on the digest, hence on
    // the owner.
    return serve::fingerprintRequest(request.workload, request.chip,
                                     request.perf_loss_target,
                                     request.seed)
        .digest;
}

const std::string &
ShardRouter::ownerAddress(const WireRequest &request) const
{
    return map_.ownerOf(requestDigest(request)).address;
}

StrategyClient &
ShardRouter::clientFor(const std::string &address)
{
    auto found = clients_.find(address);
    if (found != clients_.end())
        return *found->second;
    std::string host;
    std::uint16_t port = 0;
    shard::parseAddress(address, &host, &port);
    auto client = std::make_unique<StrategyClient>(std::move(host), port,
                                                   options_.client);
    auto [it, inserted] = clients_.emplace(address, std::move(client));
    return *it->second;
}

WireResponse
ShardRouter::call(const WireRequest &request)
{
    std::uint64_t digest = requestDigest(request);
    std::string target = map_.ownerOf(digest).address;
    for (int hop = 0;; ++hop) {
        try {
            return clientFor(target).call(request);
        } catch (const NotOwnerError &redirect) {
            if (hop >= options_.max_redirects)
                throw RoutingError(
                    "router: redirect bound exhausted; no server "
                    "agrees with the shard map (last owner hint: "
                    + redirect.ownerAddress() + ")");
            ++redirects_;
            // Self-heal: adopt the server's map when it is strictly
            // newer.  A decode failure keeps the old map — the carried
            // owner address below still makes progress this call.
            if (redirect.mapEpoch() > map_.epoch()
                && !redirect.shardMapText().empty()) {
                try {
                    shard::ShardMap fresh =
                        shard::ShardMap::decode(redirect.shardMapText());
                    if (!fresh.empty()) {
                        map_ = std::move(fresh);
                        ++map_refreshes_;
                    }
                } catch (const std::invalid_argument &) {
                }
            }
            target = redirect.ownerAddress();
        }
    }
}

} // namespace opdvfs::net
