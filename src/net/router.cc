#include "net/router.h"

#include <stdexcept>

#include "serve/fingerprint.h"

namespace opdvfs::net {

ShardRouter::ShardRouter(shard::ShardMap map, RouterOptions options)
    : map_(std::move(map)), options_(std::move(options))
{
    if (map_.empty())
        throw std::invalid_argument("router: empty shard map");
    if (options_.max_redirects < 0)
        options_.max_redirects = 0;
}

std::uint64_t
ShardRouter::requestDigest(const WireRequest &request)
{
    // The identical canonical fingerprint the servers compute from the
    // decoded request: codec round-trip stability (encode(decode(p)) ==
    // p) guarantees client and server agree on the digest, hence on
    // the owner.
    return serve::fingerprintRequest(request.workload, request.chip,
                                     request.perf_loss_target,
                                     request.seed)
        .digest;
}

const std::string &
ShardRouter::ownerAddress(const WireRequest &request) const
{
    return map_.ownerOf(requestDigest(request)).address;
}

StrategyClient &
ShardRouter::clientFor(const std::string &address)
{
    auto found = clients_.find(address);
    if (found != clients_.end())
        return *found->second;
    std::string host;
    std::uint16_t port = 0;
    shard::parseAddress(address, &host, &port);
    auto client = std::make_unique<StrategyClient>(std::move(host), port,
                                                   options_.client);
    auto [it, inserted] = clients_.emplace(address, std::move(client));
    return *it->second;
}

std::optional<WireResponse>
ShardRouter::tryFailover(const WireRequest &request, std::uint64_t digest)
{
    std::vector<shard::ShardInfo> successors;
    try {
        successors =
            map_.successorsOf(digest, options_.max_failover_successors);
    } catch (const std::exception &) {
        return std::nullopt;
    }
    // The flag tells the successor this is a declared failover read:
    // it waives its ownership check and serves the key from its
    // replica set (or computes a donor-only answer) instead of
    // bouncing NotOwner back at a dead owner.
    WireRequest replica_request = request;
    replica_request.serve_replica = true;
    for (const shard::ShardInfo &successor : successors) {
        if (options_.peer_health
            && options_.peer_health(successor.id) == PeerHealth::Down)
            continue; // no point burning a connect timeout on a corpse
        try {
            WireResponse response =
                clientFor(successor.address).call(replica_request);
            ++failovers_;
            return response;
        } catch (const NetError &) {
            // This successor is down too; the next may hold a replica.
        } catch (const NotOwnerError &) {
            // A pre-v4 successor that ignored the flag; try the next.
        }
    }
    return std::nullopt;
}

WireResponse
ShardRouter::call(const WireRequest &request)
{
    std::uint64_t digest = requestDigest(request);
    const shard::ShardInfo &owner = map_.ownerOf(digest);
    std::string target = owner.address;
    // A health-monitored Down owner is failed over without paying its
    // connect timeout; stale health falls through to trying it anyway.
    if (options_.failover && options_.peer_health
        && options_.peer_health(owner.id) == PeerHealth::Down)
        if (std::optional<WireResponse> response =
                tryFailover(request, digest))
            return *response;
    for (int hop = 0;; ++hop) {
        try {
            return clientFor(target).call(request);
        } catch (const NetError &) {
            // The owner is unreachable (connect failure, retries
            // exhausted, or its breaker open).  Fail-fast when
            // failover is off; otherwise let a successor answer from
            // its replica set.  The original error propagates when
            // every successor also failed.
            if (!options_.failover)
                throw;
            if (std::optional<WireResponse> response =
                    tryFailover(request, digest))
                return *response;
            throw;
        } catch (const NotOwnerError &redirect) {
            if (hop >= options_.max_redirects)
                throw RoutingError(
                    "router: redirect bound exhausted; no server "
                    "agrees with the shard map (last owner hint: "
                    + redirect.ownerAddress() + ")");
            ++redirects_;
            // Self-heal: adopt the server's map when it is strictly
            // newer.  A decode failure keeps the old map — the carried
            // owner address below still makes progress this call.
            if (redirect.mapEpoch() > map_.epoch()
                && !redirect.shardMapText().empty()) {
                try {
                    shard::ShardMap fresh =
                        shard::ShardMap::decode(redirect.shardMapText());
                    if (!fresh.empty()) {
                        map_ = std::move(fresh);
                        ++map_refreshes_;
                    }
                } catch (const std::invalid_argument &) {
                }
            }
            target = redirect.ownerAddress();
        }
    }
}

} // namespace opdvfs::net
