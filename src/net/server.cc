#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace opdvfs::net {

namespace {

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw std::runtime_error("net: fcntl(O_NONBLOCK) failed");
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
bump(std::atomic<std::uint64_t> &counter)
{
    counter.fetch_add(1, std::memory_order_relaxed);
}

/** Admin connections hold at most one short command line. */
constexpr std::size_t kAdminLineCap = 4096;

} // namespace

std::string
encodeExactHitFrame(const WireResponse &ok,
                    std::uint32_t full_generations,
                    std::uint64_t entry_model_epoch,
                    const WireLimits &limits)
{
    WireResponse hit = ok;
    hit.status = Status::Ok;
    hit.reject = serve::RejectReason::None;
    hit.retry_after_ms = 0;
    hit.message.clear();
    hit.provenance = serve::Provenance::ExactHit;
    hit.similarity = 0.0;
    hit.generations_run = 0;
    hit.generations_saved = full_generations;
    hit.service_seconds = 0.0;
    hit.model_epoch = entry_model_epoch;
    // The cached strategy's meta still names the provenance that
    // *computed* it (cold / warm-start); the worker exact-hit path
    // restamps the copy it serves, so the frame must match.
    if (hit.strategy.meta)
        hit.strategy.meta->provenance =
            serve::provenanceToken(serve::Provenance::ExactHit);
    return frameResponse(hit, limits);
}

StrategyServer::StrategyServer(serve::StrategyService &service,
                               ServerOptions options)
    : service_(service), options_(std::move(options)),
      chip_block_(encodeChipConfig(service.options().pipeline.chip)),
      full_generations_(static_cast<std::uint32_t>(
          service.options().pipeline.ga.generations < 0
              ? 0
              : service.options().pipeline.ga.generations)),
      encoded_(serve::EncodedCacheOptions{
          options_.encoded_cache_capacity})
{
    if (options_.reactor_threads == 0)
        options_.reactor_threads = 1;
    // When an async refinement upgrades a predicted cache entry, the
    // pre-encoded frame of the prediction must stop being served; the
    // next exact hit then re-populates from the refined strategy.
    if (options_.fast_exact_hits) {
        service_.setUpgradeListener(
            [this](std::uint64_t digest) { encoded_.erase(digest); });
    }
}

StrategyServer::~StrategyServer()
{
    stop();
}

int
StrategyServer::openListener(bool reuse_port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("net: socket() failed");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuse_port) {
#ifdef SO_REUSEPORT
        if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one))
            < 0) {
            ::close(fd);
            throw std::runtime_error("net: SO_REUSEPORT unavailable");
        }
#else
        ::close(fd);
        throw std::runtime_error("net: SO_REUSEPORT unavailable");
#endif
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Later listeners re-bind the port the first one resolved.
    addr.sin_port = htons(bound_port_ != 0 ? bound_port_ : options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("net: bad bind address "
                                 + options_.bind_address);
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) < 0
        || ::listen(fd, options_.backlog) < 0) {
        ::close(fd);
        throw std::runtime_error("net: cannot bind/listen on "
                                 + options_.bind_address + ":"
                                 + std::to_string(options_.port));
    }
    if (bound_port_ == 0) {
        socklen_t addr_len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &addr_len) < 0) {
            ::close(fd);
            throw std::runtime_error("net: getsockname() failed");
        }
        bound_port_ = ntohs(addr.sin_port);
    }
    try {
        setNonBlocking(fd);
    } catch (...) {
        ::close(fd);
        throw;
    }
    return fd;
}

void
StrategyServer::teardownPartialStart()
{
    for (auto &reactor : reactors_) {
        closeFd(reactor->listen_fd);
        closeFd(reactor->wake_read_fd);
        closeFd(reactor->wake_write_fd);
    }
    reactors_.clear();
    bound_port_ = 0;
}

void
StrategyServer::start()
{
    if (!reactors_.empty())
        throw std::runtime_error("net: server already started");

    std::size_t count = options_.reactor_threads;
    reactors_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto reactor = std::make_unique<Reactor>();
        reactor->index = i;
        reactor->cache_reader = encoded_.registerReader();
        reactors_.push_back(std::move(reactor));
    }

    try {
        // Listener layout: one SO_REUSEPORT listener per reactor when
        // asked for (and available), otherwise a single listener on
        // reactor 0, which deals connections round-robin.
        reuse_port_active_ = false;
        if (options_.reuse_port && count > 1) {
            try {
                for (auto &reactor : reactors_)
                    reactor->listen_fd = openListener(true);
                reuse_port_active_ = true;
            } catch (const std::runtime_error &) {
                for (auto &reactor : reactors_)
                    closeFd(reactor->listen_fd);
                bound_port_ = 0;
            }
        }
        if (!reuse_port_active_)
            reactors_[0]->listen_fd = openListener(false);

        for (auto &reactor : reactors_) {
            int pipe_fds[2];
            if (::pipe(pipe_fds) < 0)
                throw std::runtime_error("net: pipe() failed");
            reactor->wake_read_fd = pipe_fds[0];
            reactor->wake_write_fd = pipe_fds[1];
            setNonBlocking(reactor->wake_read_fd);
            setNonBlocking(reactor->wake_write_fd);
        }
    } catch (...) {
        teardownPartialStart();
        throw;
    }

    phase_.store(0);
    total_open_.store(0);
    started_at_ = loopNow();
    for (auto &reactor : reactors_) {
        Reactor *raw = reactor.get();
        reactor->thread = std::thread([this, raw] { eventLoop(*raw); });
    }
}

void
StrategyServer::stop()
{
    int expected = 0;
    if (phase_.compare_exchange_strong(expected, 1)) {
        for (auto &reactor : reactors_)
            wakeReactor(*reactor);
        // Unhook the upgrade listener before draining: drain() waits
        // out in-flight refinements (which may still fire the copy
        // they already hold — encoded_ outlives stop()), and nothing
        // scheduled afterwards may reach into this server again.
        service_.setUpgradeListener(nullptr);
        // Every admitted request completes before drain() returns;
        // the reactors keep running to flush those responses out.
        service_.drain();
        // drain() fences the service's work, not our completion
        // callbacks (the admission slot is released before a callback
        // runs).  Wait until every callback has returned before any
        // teardown: a late callback touches options_, the encoded
        // cache, per-reactor counters and queues, and a wake pipe fd.
        {
            std::unique_lock<std::mutex> lock(callback_mutex_);
            callback_idle_.wait(
                lock, [this] { return outstanding_callbacks_ == 0; });
        }
        for (auto &reactor : reactors_)
            wakeReactor(*reactor);
    }
    for (auto &reactor : reactors_) {
        if (reactor->thread.joinable())
            reactor->thread.join();
        // Sockets dealt to this reactor but never adopted.
        std::lock_guard<std::mutex> lock(reactor->handoff_mutex);
        while (!reactor->handoff.empty()) {
            int fd = reactor->handoff.front();
            reactor->handoff.pop_front();
            ::close(fd);
            total_open_.fetch_sub(1, std::memory_order_relaxed);
        }
    }
    for (auto &reactor : reactors_) {
        closeFd(reactor->wake_write_fd);
        closeFd(reactor->wake_read_fd);
        closeFd(reactor->listen_fd);
    }
    if (!reactors_.empty())
        phase_.store(2);
}

double
StrategyServer::loopNow() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
StrategyServer::wakeReactor(Reactor &reactor)
{
    if (reactor.wake_write_fd < 0)
        return;
    char byte = 'w';
    [[maybe_unused]] ssize_t ignored =
        ::write(reactor.wake_write_fd, &byte, 1); // EAGAIN: wakes anyway
}

void
StrategyServer::eventLoop(Reactor &reactor)
{
    bool listener_open = reactor.listen_fd >= 0;
    double flush_deadline = 0.0;
    while (true) {
        bool stopping = phase_.load() != 0;
        if (stopping && flush_deadline == 0.0)
            flush_deadline = loopNow() + options_.shutdown_flush_seconds;
        // Listeners stay open through the drain window so load
        // balancers probing HEALTH observe `draining` and eject the
        // instance; new request frames are answered Busy
        // (shutting-down) by the draining service.  They close at the
        // flush deadline so a slow peer cannot extend the window.
        if (stopping && listener_open && loopNow() >= flush_deadline) {
            closeFd(reactor.listen_fd);
            listener_open = false;
        }

        drainHandoff(reactor);
        drainCompletions(reactor);

        if (stopping) {
            bool idle = true;
            {
                std::lock_guard<std::mutex> lock(
                    reactor.completion_mutex);
                idle = reactor.completions.empty();
            }
            for (const auto &[id, conn] : reactor.connections)
                if (conn.in_flight || !conn.write_buffer.empty())
                    idle = false;
            if (idle)
                break;
        }

        std::vector<pollfd> fds;
        std::vector<std::uint64_t> ids;
        if (listener_open) {
            fds.push_back({reactor.listen_fd, POLLIN, 0});
            ids.push_back(0);
        }
        fds.push_back({reactor.wake_read_fd, POLLIN, 0});
        ids.push_back(0);
        for (auto &[id, conn] : reactor.connections) {
            short events = 0;
            // Stop reading once a full max-size frame is buffered:
            // strict request/response means the buffer only drains as
            // responses go out, so this bounds memory per connection.
            if (!conn.close_after_flush
                && conn.read_buffer.size() < options_.limits.max_frame_bytes)
                events |= POLLIN;
            if (!conn.write_buffer.empty())
                events |= POLLOUT;
            fds.push_back({conn.fd, events, 0});
            ids.push_back(id);
        }

        ::poll(fds.data(), fds.size(), 200);

        double now = loopNow();
        std::vector<std::uint64_t> to_close;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if (fds[i].fd == reactor.wake_read_fd) {
                char scratch[64];
                while (::read(reactor.wake_read_fd, scratch,
                              sizeof(scratch))
                       > 0)
                    ;
                continue;
            }
            if (listener_open && fds[i].fd == reactor.listen_fd) {
                acceptPending(reactor);
                continue;
            }
            auto it = reactor.connections.find(ids[i]);
            if (it == reactor.connections.end())
                continue;
            Connection &conn = it->second;
            if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
                // Flush what we can (a half-closed peer may still
                // read), then drop the connection.
                if (!conn.write_buffer.empty())
                    flushWritable(reactor, ids[i], conn);
                to_close.push_back(ids[i]);
                continue;
            }
            if (fds[i].revents & POLLIN) {
                conn.last_activity = now;
                handleReadable(reactor, ids[i], conn);
            }
            auto again = reactor.connections.find(ids[i]);
            if (again == reactor.connections.end())
                continue;
            if ((fds[i].revents & POLLOUT)
                && !again->second.write_buffer.empty()) {
                again->second.last_activity = now;
                flushWritable(reactor, ids[i], again->second);
            }
        }
        for (std::uint64_t id : to_close)
            closeConnection(reactor, id);

        // Reap connections past the idle timeout.  Write progress
        // advances last_activity, so this covers both quiet peers and
        // write-stalled ones (a peer that stopped reading its socket
        // must not pin a max_connections slot forever).  During
        // stop(), additionally force-close any connection whose
        // response still cannot be flushed once the shutdown flush
        // deadline passes — otherwise such a peer would hang stop().
        std::vector<std::uint64_t> idle_ids;
        for (const auto &[id, conn] : reactor.connections) {
            bool timed_out =
                !conn.in_flight
                && now - conn.last_activity > options_.idle_timeout_seconds;
            bool stalled_at_stop = stopping && now >= flush_deadline
                                   && !conn.write_buffer.empty();
            if (timed_out || stalled_at_stop)
                idle_ids.push_back(id);
        }
        for (std::uint64_t id : idle_ids) {
            closeConnection(reactor, id);
            bump(reactor.counters.connections_reaped);
        }
    }

    for (auto &[id, conn] : reactor.connections) {
        closeFd(conn.fd);
        total_open_.fetch_sub(1, std::memory_order_relaxed);
    }
    reactor.connections.clear();
    reactor.counters.open_connections.store(0,
                                            std::memory_order_relaxed);
}

void
StrategyServer::acceptPending(Reactor &reactor)
{
    while (true) {
        int fd = ::accept(reactor.listen_fd, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or a transient error: nothing to accept
        if (total_open_.load(std::memory_order_relaxed)
            >= options_.max_connections) {
            ::close(fd);
            bump(reactor.counters.connections_refused);
            continue;
        }
        try {
            setNonBlocking(fd);
        } catch (const std::runtime_error &) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        total_open_.fetch_add(1, std::memory_order_relaxed);
        // In reuse-port mode the kernel already picked this reactor;
        // otherwise reactor 0 deals sockets round-robin (deterministic:
        // connection k lands on reactor k mod N).
        Reactor *target = &reactor;
        if (!reuse_port_active_ && reactors_.size() > 1) {
            target = reactors_[accept_robin_ % reactors_.size()].get();
            accept_robin_++;
        }
        if (target == &reactor) {
            adoptConnection(reactor, fd);
        } else {
            {
                std::lock_guard<std::mutex> lock(target->handoff_mutex);
                target->handoff.push_back(fd);
            }
            wakeReactor(*target);
        }
    }
}

void
StrategyServer::adoptConnection(Reactor &reactor, int fd)
{
    Connection conn;
    conn.fd = fd;
    conn.last_activity = loopNow();
    reactor.connections.emplace(reactor.next_connection_id++,
                                std::move(conn));
    bump(reactor.counters.connections_accepted);
    reactor.counters.open_connections.store(
        reactor.connections.size(), std::memory_order_relaxed);
}

void
StrategyServer::drainHandoff(Reactor &reactor)
{
    std::deque<int> pending;
    {
        std::lock_guard<std::mutex> lock(reactor.handoff_mutex);
        pending.swap(reactor.handoff);
    }
    bool stopping = phase_.load() != 0;
    for (int fd : pending) {
        if (stopping) {
            // Too late to serve: the deal happened, the adoption won't.
            ::close(fd);
            total_open_.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        adoptConnection(reactor, fd);
    }
}

void
StrategyServer::handleReadable(Reactor &reactor, std::uint64_t id,
                               Connection &conn)
{
    char chunk[16384];
    while (conn.read_buffer.size() < options_.limits.max_frame_bytes) {
        ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (got > 0) {
            if (conn.read_buffer.empty() && !conn.admin
                && chunk[0] != kWireMagic[0])
                conn.admin = true;
            conn.read_buffer.append(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0) { // orderly peer close
            closeConnection(reactor, id);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            break;
        closeConnection(reactor, id);
        return;
    }
    if (conn.admin)
        serveAdminLine(reactor, conn);
    else
        serveFrames(reactor, id, conn);
}

void
StrategyServer::serveFrames(Reactor &reactor, std::uint64_t id,
                            Connection &conn)
{
    // Strict request/response: the next frame is decoded only after
    // the previous one was answered, so responses always arrive in
    // request order and per-connection state stays trivial.  An
    // on-loop fast-path answer leaves in_flight false, so a buffer of
    // pipelined exact hits drains in this one pass.
    Connection *current = &conn;
    while (!current->in_flight && !current->close_after_flush) {
        std::size_t consumed = 0;
        std::optional<FrameView> frame;
        try {
            frame = peelFrame(current->read_buffer, &consumed,
                              options_.limits);
            if (frame && frame->type != MsgType::Request
                && frame->type != MsgType::PeerDonorQuery
                && frame->type != MsgType::EpochInvalidate
                && frame->type != MsgType::PeerReplicate)
                throw WireError("net: client sent a frame type servers "
                                "do not accept");
        } catch (const WireError &error) {
            // Framing is broken: the stream cannot be re-synchronised,
            // so answer once and hang up after the flush.  The flags
            // are set *before* queueing: the immediate flush must see
            // close_after_flush, and queueResponse may even close the
            // connection, so nothing is touched after it.
            current->close_after_flush = true;
            current->read_buffer.clear();
            bump(reactor.counters.responses_malformed);
            WireResponse response;
            response.status = Status::Malformed;
            response.message = error.what();
            queueResponse(reactor, id, *current, response);
            return;
        }
        if (!frame)
            return; // incomplete: wait for more bytes
        bump(reactor.counters.frames_in);
        if (frame->type == MsgType::PeerDonorQuery)
            servePeerDonorQuery(reactor, id, *current, frame->payload);
        else if (frame->type == MsgType::EpochInvalidate)
            serveEpochInvalidate(reactor, id, *current, frame->payload);
        else if (frame->type == MsgType::PeerReplicate)
            servePeerReplicate(reactor, id, *current, frame->payload);
        else
            serveRequest(reactor, id, *current, frame->payload);
        // Serving may have flushed an immediate answer and hit a dead
        // socket, closing the connection: re-resolve before any
        // further touch.
        auto it = reactor.connections.find(id);
        if (it == reactor.connections.end())
            return;
        current = &it->second;
        current->read_buffer.erase(0, consumed);
    }
}

void
StrategyServer::serveRequest(Reactor &reactor, std::uint64_t id,
                             Connection &conn, std::string_view payload)
{
    WireRequest request;
    try {
        request = decodeRequest(payload, options_.limits);
    } catch (const WireError &error) {
        // The frame itself was intact (CRC passed), so the stream is
        // still in sync: report and keep the connection — but only for
        // a bounded streak, so a peer spewing valid-CRC garbage cannot
        // hold a max_connections slot forever.  Counters bump before
        // the response flushes so a client that reads the answer never
        // observes a stale count.
        bump(reactor.counters.responses_malformed);
        ++conn.payload_error_streak;
        if (options_.max_payload_errors > 0
            && conn.payload_error_streak >= options_.max_payload_errors)
            conn.close_after_flush = true;
        WireResponse response;
        response.status = Status::Malformed;
        response.message = error.what();
        queueResponse(reactor, id, conn, response);
        return;
    }
    conn.payload_error_streak = 0;

    // One canonical digest per request, shared by the ownership check
    // and the fast path — the same fingerprint the router computed
    // client-side, so all sides always name the same owner/entry.
    std::uint64_t digest =
        serve::fingerprintRequest(request.workload, request.chip,
                                  request.perf_loss_target, request.seed)
            .digest;

    // Routing is the outer concern: a mis-routed request is answered
    // NotOwner before any local check (even chip mismatch) — the
    // owner, not this shard, is the authority on serving it.  The
    // serve_replica flag is the router's declaration that the owner is
    // unreachable and it *knows* this shard is a ring successor: the
    // ownership check is waived so the replica set (or a locally
    // computed donor-only answer) can serve the key.
    if (options_.shard_map && !request.serve_replica) {
        auto map = options_.shard_map->snapshot();
        if (!map->empty()) {
            const shard::ShardInfo &owner = map->ownerOf(digest);
            if (owner.id != options_.shard_id) {
                bump(reactor.counters.responses_not_owner);
                WireResponse response;
                response.status = Status::NotOwner;
                response.owner_address = owner.address;
                response.map_epoch = map->epoch();
                response.shard_map_text = map->encode();
                response.message =
                    "net: shard " + std::to_string(options_.shard_id)
                    + " does not own this fingerprint";
                queueResponse(reactor, id, conn, response);
                return;
            }
        }
    }

    if (encodeChipConfig(request.chip) != chip_block_) {
        bump(reactor.counters.responses_chip_mismatch);
        WireResponse response;
        response.status = Status::ChipMismatch;
        response.message =
            "net: request chip differs from the serving chip";
        queueResponse(reactor, id, conn, response);
        return;
    }

    // --- reactor fast path -------------------------------------------
    // A pre-encoded frame for this digest at the *current* model epoch
    // is served straight off the loop: wait-free lookup, one buffer
    // append, no worker hop.  Deliberately after the ownership and
    // chip checks (identical refusal semantics either path) and gated
    // on the same conditions under which the worker path may answer
    // ExactHit — replica reads and cache-bypass requests always take
    // the worker path.  Exact hits are served even past the client's
    // deadline, exactly like the worker path.
    if (options_.fast_exact_hits && request.use_cache
        && !request.serve_replica) {
        if (auto frame = encoded_.find(reactor.cache_reader, digest,
                                       service_.modelEpoch())) {
            bump(reactor.counters.fast_path_hits);
            bump(reactor.counters.responses_ok);
            conn.write_buffer += *frame;
            flushWritable(reactor, id, conn);
            return;
        }
        bump(reactor.counters.fast_path_misses);
    }

    serve::StrategyRequest service_request;
    service_request.workload = std::move(request.workload);
    service_request.perf_loss_target = request.perf_loss_target;
    service_request.seed = request.seed;
    service_request.use_cache = request.use_cache;
    service_request.allow_warm_start = request.allow_warm_start;
    service_request.serve_replica = request.serve_replica;
    service_request.deadline_seconds = request.deadline_ms / 1000.0;

    // Whether this completion may publish a fast-path frame: only
    // answers the worker path could itself later serve as exact hits.
    bool populate_fast_path = options_.fast_exact_hits
                              && request.use_cache
                              && !request.serve_replica;

    // Counted before the submit attempt so stop() can never observe a
    // window where an admitted callback is neither counted nor done.
    {
        std::lock_guard<std::mutex> lock(callback_mutex_);
        ++outstanding_callbacks_;
    }
    Reactor *home = &reactor;
    serve::RejectReason reject = service_.trySubmit(
        std::move(service_request),
        [this, home, id, populate_fast_path](
            serve::StrategyResponse response,
            std::exception_ptr error) {
            // Worker thread: encode off the loop, enqueue, wake.
            WireResponse wire;
            if (error) {
                wire.status = Status::Internal;
                try {
                    std::rethrow_exception(error);
                } catch (const serve::RequestExpired &exception) {
                    // The caller's own deadline lapsed in our queue:
                    // that is backpressure, not a server fault.
                    wire.status = Status::Busy;
                    wire.reject = serve::RejectReason::Expired;
                    wire.message = exception.what();
                } catch (const std::exception &exception) {
                    wire.message = exception.what();
                } catch (...) {
                    wire.message = "net: pipeline failed";
                }
            } else {
                wire.status = Status::Ok;
                wire.strategy = std::move(response.strategy);
                wire.best_score = response.ga.best_score;
                wire.provenance = response.provenance;
                wire.similarity = response.similarity;
                wire.generations_run = static_cast<std::uint32_t>(
                    response.generations_run < 0
                        ? 0
                        : response.generations_run);
                wire.generations_saved = static_cast<std::uint32_t>(
                    response.generations_saved < 0
                        ? 0
                        : response.generations_saved);
                wire.service_seconds = response.service_seconds;
                wire.fingerprint_digest = response.fingerprint.digest;
                wire.model_epoch = service_.modelEpoch();
            }
            std::string framed;
            try {
                framed = frameResponse(wire, options_.limits);
            } catch (const WireError &encode_error) {
                WireResponse fallback;
                fallback.status = Status::Internal;
                fallback.message = encode_error.what();
                framed = frameResponse(fallback, options_.limits);
                wire.status = Status::Internal;
            }
            if (wire.status == Status::Ok) {
                bump(home->counters.responses_ok);
                // Publish the exact-hit frame this answer's cache
                // entry would produce, keyed by the epoch the entry
                // was computed under: the next identical request is
                // served on the loop.  A frame over the encoder caps
                // just never joins the fast path.
                if (populate_fast_path) {
                    try {
                        encoded_.insert(
                            wire.fingerprint_digest,
                            response.fingerprint.model_epoch,
                            encodeExactHitFrame(
                                wire, full_generations_,
                                response.fingerprint.model_epoch,
                                options_.limits));
                    } catch (const WireError &) {
                    }
                }
            } else if (wire.status == Status::Busy) {
                bump(home->counters.responses_busy);
                bump(home->counters.responses_expired);
            } else {
                bump(home->counters.responses_internal);
            }
            {
                std::lock_guard<std::mutex> lock(home->completion_mutex);
                home->completions.emplace_back(id, std::move(framed));
            }
            wakeReactor(*home);
            // Last touch of the server: once this count drops to
            // zero, stop() may proceed to tear everything down.
            std::lock_guard<std::mutex> lock(callback_mutex_);
            --outstanding_callbacks_;
            callback_idle_.notify_all();
        });

    if (reject != serve::RejectReason::None) {
        {
            // Not admitted: no callback will ever run.
            std::lock_guard<std::mutex> lock(callback_mutex_);
            --outstanding_callbacks_;
            callback_idle_.notify_all();
        }
        // Structured backpressure: the connection stays up and the
        // client learns whether to back off (queue-full) or fail over
        // (shutting-down).
        bump(reactor.counters.responses_busy);
        WireResponse response;
        response.status = Status::Busy;
        response.reject = reject;
        // Transient rejections hint when a retry is worth sending; a
        // shutting-down server hints nothing (clients should fail
        // over, not wait).
        if (reject == serve::RejectReason::QueueFull
            || reject == serve::RejectReason::Overloaded)
            response.retry_after_ms = service_.retryAfterMs();
        response.message = std::string("net: admission rejected: ")
                           + serve::rejectReasonToken(reject);
        queueResponse(reactor, id, conn, response);
        return;
    }
    conn.in_flight = true;
}

void
StrategyServer::servePeerDonorQuery(Reactor &reactor, std::uint64_t id,
                                    Connection &conn,
                                    std::string_view payload)
{
    PeerDonorQuery query;
    try {
        query = decodePeerDonorQuery(payload, options_.limits);
    } catch (const WireError &error) {
        bump(reactor.counters.responses_malformed);
        ++conn.payload_error_streak;
        if (options_.max_payload_errors > 0
            && conn.payload_error_streak >= options_.max_payload_errors)
            conn.close_after_flush = true;
        WireResponse response;
        response.status = Status::Malformed;
        response.message = error.what();
        queueResponse(reactor, id, conn, response);
        return;
    }
    conn.payload_error_streak = 0;

    // A cache probe plus one serialisation: cheap enough to answer
    // directly on the loop, keeping peer latency one round trip.
    serve::Fingerprint probe;
    probe.digest = query.digest;
    probe.features = query.features;
    probe.model_epoch = query.model_epoch;
    PeerDonorReply reply;
    if (auto hit = service_.exportDonor(probe, query.perf_loss_target)) {
        reply.found = true;
        reply.similarity = hit->similarity;
        reply.fingerprint_digest = hit->entry.fingerprint.digest;
        reply.features = hit->entry.fingerprint.features;
        reply.model_epoch = hit->entry.fingerprint.model_epoch;
        reply.perf_loss_target = hit->entry.perf_loss_target;
        reply.best_score = hit->entry.ga.best_score;
        reply.best_mhz = hit->entry.ga.best_mhz;
        std::ostringstream strategy_text;
        dvfs::saveStrategy(hit->entry.strategy, strategy_text);
        reply.strategy_text = strategy_text.str();
    }
    bump(reactor.counters.peer_donor_queries_served);
    if (reply.found)
        bump(reactor.counters.peer_donors_exported);
    std::string framed;
    try {
        framed =
            frameMessage(MsgType::PeerDonorReply,
                         encodePeerDonorReply(reply, options_.limits),
                         options_.limits);
    } catch (const WireError &) {
        // A donor too large for the caps degrades to a miss; the peer
        // just runs cold, exactly as if we had nothing.
        framed = frameMessage(
            MsgType::PeerDonorReply,
            encodePeerDonorReply(PeerDonorReply{}, options_.limits),
            options_.limits);
    }
    conn.write_buffer += framed;
    flushWritable(reactor, id, conn);
}

void
StrategyServer::serveEpochInvalidate(Reactor &reactor, std::uint64_t id,
                                     Connection &conn,
                                     std::string_view payload)
{
    EpochInvalidate invalidate;
    try {
        invalidate = decodeEpochInvalidate(payload);
    } catch (const WireError &error) {
        bump(reactor.counters.responses_malformed);
        ++conn.payload_error_streak;
        if (options_.max_payload_errors > 0
            && conn.payload_error_streak >= options_.max_payload_errors)
            conn.close_after_flush = true;
        WireResponse response;
        response.status = Status::Malformed;
        response.message = error.what();
        queueResponse(reactor, id, conn, response);
        return;
    }
    conn.payload_error_streak = 0;

    // Raise *before* the ack goes out: once the origin shard has our
    // ack, no request on this shard can see a pre-epoch exact hit —
    // the coherence guarantee the broadcast blocks for.  The raised
    // epoch gates the fast path too (find() checks epoch equality);
    // dropping the stale frames afterwards is purely memory hygiene.
    std::uint64_t epoch =
        service_.raiseModelEpoch(invalidate.model_epoch);
    encoded_.invalidateBelow(epoch);
    bump(reactor.counters.epoch_invalidates_received);
    EpochInvalidateAck ack;
    ack.shard_id = options_.shard_id;
    ack.model_epoch = epoch;
    conn.write_buffer += frameMessage(MsgType::EpochInvalidateAck,
                                      encodeEpochInvalidateAck(ack),
                                      options_.limits);
    flushWritable(reactor, id, conn);
}

void
StrategyServer::servePeerReplicate(Reactor &reactor, std::uint64_t id,
                                   Connection &conn,
                                   std::string_view payload)
{
    PeerReplicate replicate;
    try {
        replicate = decodePeerReplicate(payload, options_.limits);
    } catch (const WireError &error) {
        bump(reactor.counters.responses_malformed);
        bump(reactor.counters.peer_replicas_refused);
        ++conn.payload_error_streak;
        if (options_.max_payload_errors > 0
            && conn.payload_error_streak >= options_.max_payload_errors)
            conn.close_after_flush = true;
        WireResponse response;
        response.status = Status::Malformed;
        response.message = error.what();
        queueResponse(reactor, id, conn, response);
        return;
    }
    conn.payload_error_streak = 0;

    // Import through the peer-donor path: the copy lands
    // warm_start_only, so it can serve failover reads and similarity
    // lookups but never shadows an entry this shard owns.  A cache
    // insert is cheap enough for the event loop.
    PeerReplicateAck ack;
    ack.shard_id = options_.shard_id;
    try {
        serve::PeerDonor donor;
        donor.fingerprint.digest = replicate.fingerprint_digest;
        donor.fingerprint.features = replicate.features;
        donor.fingerprint.model_epoch = replicate.model_epoch;
        donor.best_mhz = replicate.best_mhz;
        donor.best_score = replicate.best_score;
        donor.similarity = 1.0;
        donor.perf_loss_target = replicate.perf_loss_target;
        std::istringstream strategy_is(replicate.strategy_text);
        donor.strategy = dvfs::loadStrategy(strategy_is);
        service_.importDonor(donor);
        ack.accepted = true;
    } catch (const std::exception &) {
        // An unparsable strategy is an owner bug; refuse the replica
        // rather than poisoning the local cache.
        ack.accepted = false;
    }
    if (ack.accepted)
        bump(reactor.counters.peer_replicas_received);
    else
        bump(reactor.counters.peer_replicas_refused);
    conn.write_buffer += frameMessage(MsgType::PeerReplicateAck,
                                      encodePeerReplicateAck(ack),
                                      options_.limits);
    flushWritable(reactor, id, conn);
}

void
StrategyServer::serveAdminLine(Reactor &reactor, Connection &conn)
{
    if (conn.close_after_flush)
        return;
    std::size_t newline = conn.read_buffer.find('\n');
    if (newline == std::string::npos) {
        if (conn.read_buffer.size() > kAdminLineCap)
            conn.close_after_flush = true;
        return;
    }
    std::string line = conn.read_buffer.substr(0, newline);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    bump(reactor.counters.admin_requests);
    std::istringstream fields(line);
    std::string command;
    fields >> command;
    if (command == "STATS") {
        conn.write_buffer += statsText();
    } else if (command == "HEALTH") {
        // phase_ covers the instant between stop() being requested and
        // service_.drain() raising its flag.
        conn.write_buffer +=
            (phase_.load() != 0 || service_.draining()) ? "draining\n"
                                                        : "ok\n";
        // Probes and old tooling read only the first line; the peer
        // table rides along for operators when a monitor is wired.
        if (options_.health)
            for (const auto &peer : options_.health->snapshot())
                conn.write_buffer += "peer_health "
                                     + std::to_string(peer.id) + " "
                                     + peer.address + " "
                                     + peerHealthToken(peer.health)
                                     + "\n";
    } else if (command == "SHARDMAP") {
        if (options_.shard_map)
            conn.write_buffer += options_.shard_map->snapshot()->encode();
        else
            conn.write_buffer += "error no-shard-map\n";
    } else if (command == "JOIN") {
        std::uint64_t shard_id = 0;
        std::string address;
        if (!options_.shard_map) {
            conn.write_buffer += "error no-shard-map\n";
        } else if (!(fields >> shard_id >> address)
                   || shard_id > 0xFFFFFFFFull
                   || !(fields >> std::ws).eof()) {
            conn.write_buffer += "error bad-join-arguments\n";
        } else {
            try {
                std::uint64_t epoch = options_.shard_map->join(
                    {static_cast<std::uint32_t>(shard_id), address});
                conn.write_buffer +=
                    "ok epoch " + std::to_string(epoch) + "\n";
            } catch (const std::invalid_argument &error) {
                conn.write_buffer +=
                    std::string("error ") + error.what() + "\n";
            }
        }
    } else if (command == "LEAVE") {
        std::uint64_t shard_id = 0;
        if (!options_.shard_map) {
            conn.write_buffer += "error no-shard-map\n";
        } else if (!(fields >> shard_id) || shard_id > 0xFFFFFFFFull
                   || !(fields >> std::ws).eof()) {
            conn.write_buffer += "error bad-leave-arguments\n";
        } else {
            std::uint64_t epoch = options_.shard_map->leave(
                static_cast<std::uint32_t>(shard_id));
            conn.write_buffer +=
                "ok epoch " + std::to_string(epoch) + "\n";
        }
    } else if (command == "RECAL") {
        if (!(fields >> std::ws).eof()) {
            conn.write_buffer += "error bad-recal-arguments\n";
        } else {
            // Advance locally, then broadcast and *block* for the acks
            // before replying: when the admin reply arrives, no acked
            // peer can still answer a pre-epoch exact hit.  Blocking
            // this reactor is deliberate — recalibration is rare and
            // the broadcast deadline bounds the stall.  The epoch
            // advance gates the fast path on every reactor at once
            // (each hit re-checks the epoch); the invalidateBelow only
            // reclaims the stale frames' memory.
            std::uint64_t epoch = service_.advanceModelEpoch();
            encoded_.invalidateBelow(epoch);
            ShardPeers::InvalidateResult broadcast;
            if (options_.peers)
                broadcast =
                    options_.peers->broadcastEpochInvalidate(epoch);
            std::string reply = "ok epoch " + std::to_string(epoch)
                                + " acks "
                                + std::to_string(broadcast.acks);
            // Name the peers that never acked: an operator chasing a
            // partial recalibration needs the address, not a count.
            // The suffix is additive — old parsers that stop at the
            // ack count still read the same prefix.
            if (!broadcast.failed_addresses.empty()) {
                reply += " timeouts ";
                for (std::size_t i = 0;
                     i < broadcast.failed_addresses.size(); ++i) {
                    if (i > 0)
                        reply += ",";
                    reply += broadcast.failed_addresses[i];
                }
            }
            conn.write_buffer += reply + "\n";
        }
    } else {
        conn.write_buffer += "error unknown-command\n";
    }
    conn.read_buffer.clear();
    conn.close_after_flush = true; // one command per connection
}

void
StrategyServer::queueResponse(Reactor &reactor, std::uint64_t id,
                              Connection &conn,
                              const WireResponse &response)
{
    conn.write_buffer += frameResponse(response, options_.limits);
    flushWritable(reactor, id, conn);
}

void
StrategyServer::flushWritable(Reactor &reactor, std::uint64_t id,
                              Connection &conn)
{
    while (!conn.write_buffer.empty()) {
        ssize_t sent = ::send(conn.fd, conn.write_buffer.data(),
                              conn.write_buffer.size(), MSG_NOSIGNAL);
        if (sent > 0) {
            // Progress counts as activity: only a genuinely stalled
            // write (peer not reading) lets the idle reaper fire.
            conn.last_activity = loopNow();
            conn.write_buffer.erase(0, static_cast<std::size_t>(sent));
            continue;
        }
        if (sent < 0
            && (errno == EAGAIN || errno == EWOULDBLOCK
                || errno == EINTR))
            return; // kernel buffer full; POLLOUT resumes the flush
        closeConnection(reactor, id);
        return;
    }
    if (conn.close_after_flush)
        closeConnection(reactor, id);
}

void
StrategyServer::drainCompletions(Reactor &reactor)
{
    std::deque<std::pair<std::uint64_t, std::string>> ready;
    {
        std::lock_guard<std::mutex> lock(reactor.completion_mutex);
        ready.swap(reactor.completions);
    }
    for (auto &[id, framed] : ready) {
        auto it = reactor.connections.find(id);
        if (it == reactor.connections.end())
            continue; // the requester hung up; drop the response
        Connection &conn = it->second;
        conn.in_flight = false;
        conn.write_buffer += framed;
        flushWritable(reactor, id, conn);
        auto again = reactor.connections.find(id);
        if (again != reactor.connections.end())
            serveFrames(reactor, id, again->second); // next buffered request
    }
}

void
StrategyServer::closeConnection(Reactor &reactor, std::uint64_t id)
{
    auto it = reactor.connections.find(id);
    if (it == reactor.connections.end())
        return;
    closeFd(it->second.fd);
    reactor.connections.erase(it);
    reactor.counters.open_connections.store(
        reactor.connections.size(), std::memory_order_relaxed);
    total_open_.fetch_sub(1, std::memory_order_relaxed);
}

ServerStats
StrategyServer::stats() const
{
    auto load64 = [](const std::atomic<std::uint64_t> &v) {
        return v.load(std::memory_order_relaxed);
    };
    ServerStats out;
    out.reactors.reserve(reactors_.size());
    for (const auto &reactor : reactors_) {
        const ReactorCounters &c = reactor->counters;
        ReactorStats slice;
        slice.connections_accepted = load64(c.connections_accepted);
        slice.connections_reaped = load64(c.connections_reaped);
        slice.frames_in = load64(c.frames_in);
        slice.fast_path_hits = load64(c.fast_path_hits);
        slice.open_connections =
            c.open_connections.load(std::memory_order_relaxed);
        out.reactors.push_back(slice);

        out.connections_accepted += slice.connections_accepted;
        out.connections_refused += load64(c.connections_refused);
        out.connections_reaped += slice.connections_reaped;
        out.frames_in += slice.frames_in;
        out.fast_path_hits += slice.fast_path_hits;
        out.fast_path_misses += load64(c.fast_path_misses);
        out.responses_ok += load64(c.responses_ok);
        out.responses_busy += load64(c.responses_busy);
        out.responses_expired += load64(c.responses_expired);
        out.responses_malformed += load64(c.responses_malformed);
        out.responses_chip_mismatch += load64(c.responses_chip_mismatch);
        out.responses_internal += load64(c.responses_internal);
        out.responses_not_owner += load64(c.responses_not_owner);
        out.peer_donor_queries_served +=
            load64(c.peer_donor_queries_served);
        out.peer_donors_exported += load64(c.peer_donors_exported);
        out.epoch_invalidates_received +=
            load64(c.epoch_invalidates_received);
        out.peer_replicas_received += load64(c.peer_replicas_received);
        out.peer_replicas_refused += load64(c.peer_replicas_refused);
        out.admin_requests += load64(c.admin_requests);
        out.open_connections += slice.open_connections;
    }
    return out;
}

std::string
StrategyServer::statsText() const
{
    ServerStats server = stats();
    serve::ServiceStats service = service_.stats();
    std::ostringstream os;
    os << "uptime_seconds " << (loopNow() - started_at_) << '\n'
       << "reactor_threads " << reactors_.size() << '\n'
       << "connections_accepted " << server.connections_accepted << '\n'
       << "connections_refused " << server.connections_refused << '\n'
       << "connections_reaped " << server.connections_reaped << '\n'
       << "open_connections " << server.open_connections << '\n'
       << "frames_in " << server.frames_in << '\n'
       << "fast_path_hits " << server.fast_path_hits << '\n'
       << "fast_path_misses " << server.fast_path_misses << '\n'
       << "encoded_cache_size " << encoded_.size() << '\n'
       << "responses_ok " << server.responses_ok << '\n'
       << "responses_busy " << server.responses_busy << '\n'
       << "responses_expired " << server.responses_expired << '\n'
       << "responses_malformed " << server.responses_malformed << '\n'
       << "responses_chip_mismatch " << server.responses_chip_mismatch
       << '\n'
       << "responses_internal " << server.responses_internal << '\n'
       << "responses_not_owner " << server.responses_not_owner << '\n'
       << "peer_donor_queries_served "
       << server.peer_donor_queries_served << '\n'
       << "peer_donors_exported " << server.peer_donors_exported << '\n'
       << "epoch_invalidates_received "
       << server.epoch_invalidates_received << '\n'
       << "peer_replicas_received " << server.peer_replicas_received
       << '\n'
       << "peer_replicas_refused " << server.peer_replicas_refused
       << '\n'
       << "admin_requests " << server.admin_requests << '\n'
       << "service_requests " << service.requests << '\n'
       << "service_exact_hits " << service.exact_hits << '\n'
       << "service_coalesced " << service.coalesced << '\n'
       << "service_warm_hits " << service.warm_hits << '\n'
       << "service_cold_misses " << service.cold_misses << '\n'
       << "service_rejected " << service.rejected << '\n'
       << "service_expired_in_queue " << service.expired_in_queue << '\n'
       << "service_shed_early " << service.shed_early << '\n'
       << "service_ga_runs_past_deadline "
       << service.ga_runs_past_deadline << '\n'
       << "service_generations_saved " << service.generations_saved
       << '\n'
       << "service_model_epoch " << service.model_epoch << '\n'
       << "service_queue_depth " << service.queue_depth << '\n'
       << "service_in_flight " << service.in_flight << '\n'
       << "service_cache_size " << service.cache_size << '\n'
       << "service_draining " << (service.draining ? 1 : 0) << '\n'
       << "p50_service_seconds " << service.p50_service_seconds << '\n'
       << "p95_service_seconds " << service.p95_service_seconds << '\n'
       << "sojourn_ewma_seconds " << service.sojourn_ewma_seconds << '\n'
       << "cold_ewma_seconds " << service.cold_ewma_seconds << '\n'
       << "service_replica_hits " << service.replica_hits << '\n'
       << "service_restored_entries " << service.restored_entries << '\n'
       << "service_predicted_served " << service.predicted_served << '\n'
       << "service_refine_upgrades " << service.refine_upgrades << '\n'
       << "service_refine_discards " << service.refine_discards << '\n'
       << "service_refines_in_flight " << service.refines_in_flight
       << '\n'
       << "cache_similar_scanned " << service.similar_scanned << '\n'
       << "cache_similar_pruned " << service.similar_pruned << '\n'
       << "retry_after_hint_ms " << service_.retryAfterMs() << '\n';
    if (options_.replicator) {
        ReplicatorStats replication = options_.replicator->stats();
        os << "replication_sent " << replication.sent << '\n'
           << "replication_acked " << replication.acked << '\n'
           << "replication_failed " << replication.failed << '\n'
           << "replication_dropped " << replication.dropped << '\n'
           << "replication_queue_depth " << replication.queue_depth
           << '\n';
    }
    if (options_.health)
        for (const auto &peer : options_.health->snapshot())
            os << "peer_health " << peer.id << ' ' << peer.address << ' '
               << peerHealthToken(peer.health) << '\n';
    // Per-reactor slices last: additive lines old parsers skip.
    for (std::size_t i = 0; i < server.reactors.size(); ++i) {
        const ReactorStats &r = server.reactors[i];
        os << "reactor " << i << " accepted " << r.connections_accepted
           << " open " << r.open_connections << " frames_in "
           << r.frames_in << " fast_path_hits " << r.fast_path_hits
           << " reaped " << r.connections_reaped << '\n';
    }
    return os.str();
}

} // namespace opdvfs::net
