/**
 * @file
 * Genetic-algorithm strategy search (paper Sect. 6.3).
 *
 * A genome assigns one supported frequency to each candidate stage.
 * The first generation holds the all-max baseline, a prior individual
 * (LFC at 1600 MHz, HFC at 1800 MHz) and random individuals.  Each
 * generation scores individuals via the model-based evaluator using
 * the piecewise scoring of Eq. 17 — individuals missing the
 * performance lower bound are penalised — then breeds the next
 * generation with score-proportional selection, tail-swap crossover
 * and point mutation.
 */

#ifndef OPDVFS_DVFS_GENETIC_H
#define OPDVFS_DVFS_GENETIC_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "dvfs/evaluator.h"

namespace opdvfs::dvfs {

/**
 * Data-parallel index loop: run fn(0) .. fn(count - 1), each exactly
 * once, in any order, returning when all completed.  The strategy
 * service injects a thread-pool-backed implementation to score GA
 * populations concurrently.
 */
using ParallelFor =
    std::function<void(std::size_t count,
                       const std::function<void(std::size_t)> &fn)>;

/** Half-open span [begin, end) of genome indices a child rewrote. */
struct GeneSpan
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

/**
 * Breeding lineage of one individual within a generation: which slot
 * of the previously scored generation it descends from, and which
 * gene spans the crossover/mutation operators touched.  Outside the
 * dirty spans the child's genome is bitwise equal to the parent's —
 * the invariant an incremental fitness backend relies on to re-score
 * only changed stages.  Elites carry their slot with no dirty spans;
 * generation 0 and any individual without a tracked parent use
 * kNoParent (full evaluation).
 */
struct GenomeLineage
{
    static constexpr std::size_t kNoParent =
        static_cast<std::size_t>(-1);
    std::size_t parent = kNoParent;
    std::vector<GeneSpan> dirty;
};

/**
 * Pluggable population-fitness evaluator.  The GA calls
 * scoreGeneration() once per generation with the full population and
 * its lineage; an incremental backend (tune::IncrementalFitness)
 * keeps per-individual cached timeline/power sums and re-scores only
 * the dirty spans against the parent's cache.  scoreOne() is the
 * stand-alone path used by the memetic refinement probes; it must be
 * bit-consistent with scoreGeneration() (the backend's full and
 * incremental evaluations agree bitwise — property-tested).
 *
 * A backend instance is stateful across generations of ONE search:
 * do not share it between concurrent searchStrategy() calls.
 */
class FitnessBackend
{
  public:
    virtual ~FitnessBackend() = default;

    /**
     * Score every individual: write evals[i]/scores[i] for each i.
     * @p lineage aligns with @p genomes; @p parallel_for, when set,
     * must be used index-parallel exactly like the built-in path so
     * scoring stays deterministic under any thread count.
     */
    virtual void
    scoreGeneration(const std::vector<std::vector<std::uint8_t>> &genomes,
                    const std::vector<GenomeLineage> &lineage,
                    double perf_lower_bound,
                    const ParallelFor &parallel_for,
                    std::vector<double> &scores,
                    std::vector<StrategyEvaluation> &evals) = 0;

    /** Score one genome from scratch (refinement probes). */
    virtual void scoreOne(const std::vector<std::uint8_t> &genome,
                          double perf_lower_bound, double &score,
                          StrategyEvaluation &eval) = 0;
};

/** GA hyper-parameters (paper defaults from Sect. 7.4). */
struct GaOptions
{
    int population = 200;
    int generations = 600;
    double mutation_rate = 0.15;
    double crossover_rate = 0.7;
    /** Elite individuals copied unchanged each generation. */
    int elite = 2;
    /** Allowed relative performance loss, e.g. 0.02. */
    double perf_loss_target = 0.02;
    /** Prior individual: LFC stages start here. */
    double prior_lfc_mhz = 1600.0;
    /** Prior individual: HFC stages start here. */
    double prior_hfc_mhz = 1800.0;
    /**
     * Seed one extra prior individual per supported LFC level (all
     * HFC stages at max); the infeasible ones die off via Eq. 17's
     * penalty branch.
     */
    bool multi_level_priors = true;
    /** Probability of a contiguous block mutation per child. */
    double block_mutation_rate = 0.10;
    /**
     * Post-search memetic refinement: hill-climbing sweeps over the
     * genome, accepting single-gene moves that improve the Eq. 17
     * score.  0 disables (pure GA, as in the paper).
     */
    int refine_sweeps = 12;
    std::uint64_t seed = 7;
    /**
     * Extra prior individuals seeded into generation 0, as MHz per
     * stage — e.g. cached strategies of similar workloads (warm
     * start).  Frequencies snap to the nearest supported point; a
     * prior whose length differs from the stage count is adapted by
     * nearest-position resampling.  Empty priors are rejected.
     */
    std::vector<std::vector<double>> prior_individuals;
    /**
     * When set, population fitness is scored through this loop (one
     * index per individual).  Scoring is written by index and reduced
     * serially afterwards, so the result is bit-identical to the
     * serial path regardless of evaluation order or thread count.
     */
    ParallelFor parallel_for;
    /**
     * Optional fitness backend (non-owning; must outlive the search).
     * nullptr keeps the classic serial-sum evaluator path bit-for-bit
     * unchanged.  A backend's pairwise-reduction sums differ from the
     * serial path in final ulps, so switching backends is a search
     * variant, not a bit-identical drop-in — within one backend, full
     * and incremental evaluation are bit-identical.
     */
    FitnessBackend *fitness_backend = nullptr;
};

/** Search output. */
struct GaResult
{
    /** Best genome: frequency index per stage. */
    std::vector<std::uint8_t> best_genome;
    /** Best genome as MHz per stage. */
    std::vector<double> best_mhz;
    double best_score = 0.0;
    StrategyEvaluation best_eval;
    StrategyEvaluation baseline_eval;
    /** Fittest score after each generation (Fig. 17). */
    std::vector<double> score_history;
    /** Generation at which the best score was first reached. */
    int converged_at = 0;
    /** Score before the memetic refinement pass. */
    double pre_refine_score = 0.0;
};

/** Eq. 17 score of an evaluation against the baseline bound. */
double strategyScore(const StrategyEvaluation &eval, double perf_lower_bound);

/** Run the search. */
GaResult searchStrategy(const StageEvaluator &evaluator,
                        const std::vector<Stage> &stages,
                        const GaOptions &options = {});

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_GENETIC_H
