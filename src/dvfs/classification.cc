#include "dvfs/classification.h"

#include <algorithm>

namespace opdvfs::dvfs {

std::string
bottleneckName(Bottleneck bottleneck)
{
    switch (bottleneck) {
      case Bottleneck::NoPipeline:    return "no-pipeline";
      case Bottleneck::Latency:       return "latency";
      case Bottleneck::Uncore:        return "uncore";
      case Bottleneck::Core:          return "core";
      case Bottleneck::Aicpu:         return "aicpu";
      case Bottleneck::Communication: return "communication";
      case Bottleneck::Idle:          return "idle";
    }
    return "?";
}

Bottleneck
classify(const trace::OpRecord &record, const ClassifyOptions &options)
{
    switch (record.category) {
      case npu::OpCategory::Aicpu:
        return Bottleneck::Aicpu;
      case npu::OpCategory::Communication:
        return Bottleneck::Communication;
      case npu::OpCategory::Idle:
        return Bottleneck::Idle;
      case npu::OpCategory::Compute:
        break;
    }

    const npu::PipelineRatios &r = record.ratios;
    if (r.sum() < options.no_pipeline_sum)
        return Bottleneck::NoPipeline;
    if (r.maxRatio() < options.latency_max_ratio)
        return Bottleneck::Latency;

    double uncore_max = std::max(r.mte2, r.mte3);
    double core_max = std::max({r.cube, r.vector, r.scalar, r.mte1});
    return uncore_max >= core_max ? Bottleneck::Uncore : Bottleneck::Core;
}

bool
isFrequencySensitive(Bottleneck bottleneck)
{
    switch (bottleneck) {
      case Bottleneck::Core:
      case Bottleneck::Latency:
        return true;
      case Bottleneck::NoPipeline:
      case Bottleneck::Uncore:
      case Bottleneck::Aicpu:
      case Bottleneck::Communication:
      case Bottleneck::Idle:
        return false;
    }
    return true;
}

} // namespace opdvfs::dvfs
