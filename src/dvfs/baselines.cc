#include "dvfs/baselines.h"

#include <algorithm>
#include <stdexcept>

#include "common/random.h"

namespace opdvfs::dvfs {

UniformFrequencyResult
selectUniformFrequency(const StageEvaluator &evaluator,
                       double perf_loss_target)
{
    UniformFrequencyResult result;
    result.baseline_eval = evaluator.evaluateBaseline();
    double per_lb =
        1e-6 / result.baseline_eval.seconds * (1.0 - perf_loss_target);

    for (std::size_t fi = 0; fi < evaluator.freqCount(); ++fi) {
        std::vector<std::uint8_t> genome(evaluator.stageCount(),
                                         static_cast<std::uint8_t>(fi));
        StrategyEvaluation eval = evaluator.evaluate(genome);
        double score = strategyScore(eval, per_lb);
        if (score > result.score) {
            result.score = score;
            result.eval = eval;
            result.mhz = evaluator.frequenciesMhz()[fi];
        }
    }
    return result;
}

namespace {

/** Measure one candidate strategy on the device. */
trace::RunResult
measure(const trace::WorkloadRunner &runner,
        const models::Workload &workload, const std::vector<Stage> &stages,
        const std::vector<trace::OpRecord> &baseline_records,
        const std::vector<double> &mhz, double warmup_seconds,
        std::uint64_t seed)
{
    ExecutionPlan plan = planExecution(stages, mhz, baseline_records, {});
    trace::RunOptions options;
    options.initial_mhz = plan.initial_mhz;
    options.warmup_seconds = warmup_seconds;
    options.seed = seed;
    return runner.run(workload, options, plan.triggers);
}

double
runScore(const trace::RunResult &run, double per_lb)
{
    StrategyEvaluation eval;
    eval.seconds = run.iteration_seconds;
    eval.soc_watts = run.soc_avg_w;
    return strategyScore(eval, per_lb);
}

} // namespace

ModelFreeResult
searchModelFree(const trace::WorkloadRunner &runner,
                const models::Workload &workload,
                const std::vector<Stage> &stages,
                const std::vector<trace::OpRecord> &baseline_records,
                const npu::FreqTable &table,
                const ModelFreeOptions &options)
{
    if (stages.empty())
        throw std::invalid_argument("searchModelFree: no stages");
    if (options.population < 2 || options.evaluation_budget < 2)
        throw std::invalid_argument("searchModelFree: bad options");

    const std::vector<double> freqs = table.frequenciesMhz();
    const std::size_t n = stages.size();
    Rng rng(options.seed);

    ModelFreeResult result;

    // Baseline measurement (all-max).
    std::vector<double> max_mhz(n, freqs.back());
    result.baseline_run =
        measure(runner, workload, stages, baseline_records, max_mhz,
                options.warmup_seconds, options.seed);
    ++result.evaluations;
    result.simulated_seconds += result.baseline_run.iteration_seconds;
    double per_lb = 1e-6 / result.baseline_run.iteration_seconds
        * (1.0 - options.perf_loss_target);
    result.best_mhz = max_mhz;
    result.best_score = runScore(result.baseline_run, per_lb);
    result.best_run = result.baseline_run;

    // Small measurement-driven GA under the evaluation budget.
    using Genome = std::vector<double>;
    std::vector<Genome> population;
    population.push_back(max_mhz);
    Genome prior(n);
    for (std::size_t s = 0; s < n; ++s)
        prior[s] = stages[s].high_frequency ? freqs.back() : 1600.0;
    population.push_back(table.supports(1600.0) ? prior : max_mhz);
    while (population.size() < static_cast<std::size_t>(options.population)) {
        Genome g(n);
        for (auto &mhz : g)
            mhz = freqs[rng.index(freqs.size())];
        population.push_back(std::move(g));
    }

    std::vector<double> scores(population.size(), 0.0);
    std::size_t next_to_score = 0;
    std::uint64_t run_seed = options.seed + 101;

    while (result.evaluations < options.evaluation_budget) {
        if (next_to_score >= population.size()) {
            // Breed the next generation from what has been measured.
            std::vector<Genome> next;
            next.push_back(result.best_mhz); // elitism
            while (next.size() < population.size()) {
                Genome a = population[rng.weightedIndex(scores)];
                Genome b = population[rng.weightedIndex(scores)];
                if (n > 1 && rng.chance(options.crossover_rate)) {
                    std::size_t k = rng.index(n - 1) + 1;
                    for (std::size_t s = n - k; s < n; ++s)
                        std::swap(a[s], b[s]);
                }
                if (rng.chance(options.mutation_rate))
                    a[rng.index(n)] = freqs[rng.index(freqs.size())];
                next.push_back(std::move(a));
            }
            population = std::move(next);
            std::fill(scores.begin(), scores.end(), 0.0);
            next_to_score = 1; // the elite keeps its (re-measured) rank
            scores[0] = result.best_score;
        }

        trace::RunResult run =
            measure(runner, workload, stages, baseline_records,
                    population[next_to_score], options.warmup_seconds,
                    run_seed++);
        ++result.evaluations;
        result.simulated_seconds += run.iteration_seconds;
        double score = runScore(run, per_lb);
        scores[next_to_score] = score;
        if (score > result.best_score) {
            result.best_score = score;
            result.best_mhz = population[next_to_score];
            result.best_run = run;
        }
        ++next_to_score;
    }
    return result;
}

} // namespace opdvfs::dvfs
