#include "dvfs/pareto.h"

#include <stdexcept>

namespace opdvfs::dvfs {

std::vector<ParetoPoint>
sweepParetoFrontier(const StageEvaluator &evaluator,
                    const std::vector<Stage> &stages,
                    const std::vector<double> &targets,
                    const GaOptions &base_options)
{
    if (targets.empty())
        throw std::invalid_argument("sweepParetoFrontier: no targets");

    StrategyEvaluation baseline = evaluator.evaluateBaseline();
    double per_baseline = 1e-6 / baseline.seconds;

    std::vector<ParetoPoint> frontier;
    std::vector<std::vector<std::uint8_t>> winners;

    for (std::size_t t = 0; t < targets.size(); ++t) {
        GaOptions options = base_options;
        options.perf_loss_target = targets[t];
        options.seed = base_options.seed + t * 131;
        GaResult result = searchStrategy(evaluator, stages, options);

        double per_lb = per_baseline * (1.0 - targets[t]);
        std::vector<std::uint8_t> best_genome = result.best_genome;
        StrategyEvaluation best_eval = result.best_eval;
        double best_score = strategyScore(best_eval, per_lb);

        // Earlier winners stay feasible at looser targets: keep the
        // frontier monotone by rescoring them here.
        for (const auto &genome : winners) {
            StrategyEvaluation eval = evaluator.evaluate(genome);
            double score = strategyScore(eval, per_lb);
            if (score > best_score) {
                best_score = score;
                best_eval = eval;
                best_genome = genome;
            }
        }
        winners.push_back(best_genome);

        ParetoPoint point;
        point.perf_loss_target = targets[t];
        point.eval = best_eval;
        point.predicted_loss = best_eval.seconds / baseline.seconds - 1.0;
        point.predicted_aicore_reduction =
            1.0 - best_eval.aicore_watts / baseline.aicore_watts;
        point.predicted_soc_reduction =
            1.0 - best_eval.soc_watts / baseline.soc_watts;
        point.mhz_per_stage.reserve(best_genome.size());
        for (std::uint8_t gene : best_genome)
            point.mhz_per_stage.push_back(
                evaluator.frequenciesMhz()[gene]);
        frontier.push_back(std::move(point));
    }
    return frontier;
}

} // namespace opdvfs::dvfs
