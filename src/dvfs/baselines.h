/**
 * @file
 * Baseline DVFS strategies the paper positions itself against.
 *
 * 1. Whole-program uniform frequency (the granularity of prior GPU
 *    DVFS work the introduction surveys: one operating point for the
 *    entire application, selected for energy efficiency under a
 *    performance bound).
 *
 * 2. Model-free search (Sect. 8.1): the same genetic algorithm, but
 *    each individual is scored by actually executing the workload on
 *    the (simulated) device instead of consulting the models.  One
 *    evaluation costs a full training iteration, so the search is
 *    budgeted by evaluations; the paper's argument is that within the
 *    time the model-based search scores hundreds of thousands of
 *    policies, a model-free loop measures only a few dozen.
 */

#ifndef OPDVFS_DVFS_BASELINES_H
#define OPDVFS_DVFS_BASELINES_H

#include <cstdint>

#include "dvfs/evaluator.h"
#include "dvfs/executor.h"
#include "dvfs/genetic.h"
#include "models/workload.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {

/** Outcome of the uniform-frequency baseline selection. */
struct UniformFrequencyResult
{
    double mhz = 0.0;
    StrategyEvaluation eval;
    StrategyEvaluation baseline_eval;
    /** Eq. 17 score of the chosen point. */
    double score = 0.0;
};

/**
 * Pick the single best whole-program frequency under the loss target,
 * using the same models/scoring as the fine-grained search.
 */
UniformFrequencyResult
selectUniformFrequency(const StageEvaluator &evaluator,
                       double perf_loss_target);

/** Options for the measurement-driven (model-free) search. */
struct ModelFreeOptions
{
    /** Total workload executions the search may spend. */
    int evaluation_budget = 30;
    int population = 10;
    double mutation_rate = 0.3;
    double crossover_rate = 0.7;
    double perf_loss_target = 0.02;
    /** Warm-up before the first measured iteration, seconds. */
    double warmup_seconds = 10.0;
    std::uint64_t seed = 13;
};

/** Outcome of the model-free search. */
struct ModelFreeResult
{
    std::vector<double> best_mhz;
    double best_score = 0.0;
    /** Measured behaviour of the best strategy. */
    trace::RunResult best_run;
    trace::RunResult baseline_run;
    /** Workload executions actually spent. */
    int evaluations = 0;
    /** Total simulated seconds spent executing candidates. */
    double simulated_seconds = 0.0;
};

/**
 * Genetic search scored by running each candidate on the simulated
 * device (Sect. 8.1's alternative).  Stages come from preprocessing a
 * profiled baseline run, exactly as in the model-based flow.
 */
ModelFreeResult
searchModelFree(const trace::WorkloadRunner &runner,
                const models::Workload &workload,
                const std::vector<Stage> &stages,
                const std::vector<trace::OpRecord> &baseline_records,
                const npu::FreqTable &table,
                const ModelFreeOptions &options = {});

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_BASELINES_H
