/**
 * @file
 * Energy/performance frontier sweep: run the strategy search across a
 * range of performance-loss targets against one set of fitted models
 * (profiling and model construction are shared, so the sweep costs
 * seconds).  Generalises the Table 3 target column into a frontier a
 * deployment can pick an operating point from.
 */

#ifndef OPDVFS_DVFS_PARETO_H
#define OPDVFS_DVFS_PARETO_H

#include <vector>

#include "dvfs/evaluator.h"
#include "dvfs/genetic.h"

namespace opdvfs::dvfs {

/** One frontier point. */
struct ParetoPoint
{
    double perf_loss_target = 0.0;
    /** Model-predicted behaviour of the best strategy at this target. */
    StrategyEvaluation eval;
    /** Predicted relative iteration-time increase. */
    double predicted_loss = 0.0;
    /** Predicted relative AICore power reduction. */
    double predicted_aicore_reduction = 0.0;
    /** Predicted relative SoC power reduction. */
    double predicted_soc_reduction = 0.0;
    /** The winning strategy. */
    std::vector<double> mhz_per_stage;
};

/**
 * Sweep the GA over @p targets (fractions, e.g. {0.02, 0.04, ...}).
 * Points come back in the given order; by construction each looser
 * target's predicted savings are at least as large as the previous
 * point's (the sweep reuses earlier winners as extra priors).
 */
std::vector<ParetoPoint>
sweepParetoFrontier(const StageEvaluator &evaluator,
                    const std::vector<Stage> &stages,
                    const std::vector<double> &targets,
                    const GaOptions &base_options = {});

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_PARETO_H
