/**
 * @file
 * Markdown report generation for a completed pipeline run: the
 * headline numbers, the workload composition, the candidate-stage
 * summary and the strategy's frequency histogram, in one
 * human-reviewable document.
 */

#ifndef OPDVFS_DVFS_REPORT_H
#define OPDVFS_DVFS_REPORT_H

#include <iosfwd>

#include "dvfs/pipeline.h"

namespace opdvfs::dvfs {

/**
 * Write a markdown report of @p result for @p workload to @p os.
 * @p memory must be the memory system the workload was built against
 * (used for the analytic composition summary).
 */
void writeReport(const PipelineResult &result,
                 const models::Workload &workload,
                 const npu::MemorySystem &memory, std::ostream &os);

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_REPORT_H
