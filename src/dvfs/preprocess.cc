#include "dvfs/preprocess.h"

#include <stdexcept>

namespace opdvfs::dvfs {

std::size_t
PreprocessResult::lfcCount() const
{
    std::size_t count = 0;
    for (const auto &stage : stages) {
        if (!stage.high_frequency)
            ++count;
    }
    return count;
}

std::size_t
PreprocessResult::hfcCount() const
{
    return stages.size() - lfcCount();
}

PreprocessResult
preprocess(const std::vector<trace::OpRecord> &records,
           const PreprocessOptions &options)
{
    if (records.empty())
        throw std::invalid_argument("preprocess: no records");
    if (options.fai <= 0)
        throw std::invalid_argument("preprocess: non-positive FAI");

    PreprocessResult result;
    result.bottlenecks.reserve(records.size());
    for (const auto &record : records)
        result.bottlenecks.push_back(classify(record, options.classify));

    // Step 3: split into maximal runs of equal sensitivity.
    std::vector<Stage> runs;
    for (std::size_t i = 0; i < records.size(); ++i) {
        bool sensitive = isFrequencySensitive(result.bottlenecks[i]);
        double seconds = ticksToSeconds(records[i].end - records[i].start);

        if (runs.empty() || runs.back().high_frequency != sensitive) {
            Stage stage;
            stage.start = records[i].start;
            stage.high_frequency = sensitive;
            stage.first_op = i;
            runs.push_back(std::move(stage));
        }
        Stage &current = runs.back();
        current.duration = records[i].end - current.start;
        current.op_ids.push_back(records[i].op_id);
        if (sensitive)
            current.sensitive_seconds += seconds;
        else
            current.insensitive_seconds += seconds;
    }

    // Step 4: merge stages shorter than the FAI into their successor
    // (or, at the tail, their predecessor); the merged stage's type is
    // decided by whichever kind of time dominates.
    auto mergeInto = [](Stage &dst, Stage &&src) {
        if (src.start < dst.start) {
            dst.start = src.start;
            dst.first_op = src.first_op;
            dst.op_ids.insert(dst.op_ids.begin(), src.op_ids.begin(),
                              src.op_ids.end());
        } else {
            dst.op_ids.insert(dst.op_ids.end(), src.op_ids.begin(),
                              src.op_ids.end());
        }
        dst.sensitive_seconds += src.sensitive_seconds;
        dst.insensitive_seconds += src.insensitive_seconds;
        dst.duration += src.duration;
        dst.high_frequency = dst.sensitive_seconds >= dst.insensitive_seconds;
    };

    std::vector<Stage> merged;
    Stage pending;
    bool have_pending = false;
    for (auto &run : runs) {
        if (!have_pending) {
            pending = std::move(run);
            have_pending = true;
        } else {
            if (pending.duration >= options.fai) {
                merged.push_back(std::move(pending));
                pending = std::move(run);
            } else {
                mergeInto(pending, std::move(run));
            }
        }
    }
    if (have_pending) {
        if (pending.duration < options.fai && !merged.empty())
            mergeInto(merged.back(), std::move(pending));
        else
            merged.push_back(std::move(pending));
    }

    result.stages = std::move(merged);
    return result;
}

} // namespace opdvfs::dvfs
