#include "dvfs/executor.h"

#include <algorithm>
#include <stdexcept>

namespace opdvfs::dvfs {

namespace {

/**
 * Trigger selection of Fig. 14: the last operator completing at or
 * before @p dispatch_tick, never earlier than @p min_pos.
 *
 * A dispatch point can precede every completion when the assumed
 * SetFreq latency exceeds the time before the boundary (e.g. a 14 ms
 * V100-style latency against a stage starting at 5 ms, or a whole
 * iteration shorter than the latency).  The tick arithmetic then
 * underflows past the iteration start; such points snap to the
 * earliest valid trigger — the first operator completion at or after
 * @p min_pos — instead of producing an unplannable placement.  The
 * @p min_pos floor also keeps consecutive triggers in dispatch order.
 */
std::size_t
triggerPosFor(const std::vector<trace::OpRecord> &records,
              Tick dispatch_tick, std::size_t min_pos)
{
    std::size_t chosen = min_pos;
    for (std::size_t i = min_pos; i < records.size(); ++i) {
        if (records[i].end > dispatch_tick)
            break;
        chosen = i;
    }
    return chosen;
}

} // namespace

ExecutionPlan
planExecution(const std::vector<Stage> &stages,
              const std::vector<double> &mhz_per_stage,
              const std::vector<trace::OpRecord> &records,
              const ExecutorOptions &options)
{
    if (stages.size() != mhz_per_stage.size())
        throw std::invalid_argument("planExecution: size mismatch");
    if (records.empty())
        throw std::invalid_argument("planExecution: no records");

    Tick iteration_end = 0;
    for (const auto &record : records)
        iteration_end = std::max(iteration_end, record.end);

    ExecutionPlan plan;
    plan.initial_mhz = mhz_per_stage.front();
    std::size_t last_pos = 0;

    // Changes at interior stage boundaries.
    for (std::size_t s = 1; s < stages.size(); ++s) {
        if (mhz_per_stage[s] == mhz_per_stage[s - 1])
            continue;
        Tick dispatch = stages[s].start - options.assumed_set_freq_latency;
        last_pos = triggerPosFor(records, dispatch, last_pos);
        plan.triggers.push_back(
            {static_cast<std::size_t>(records[last_pos].op_id),
             mhz_per_stage[s]});
    }

    // Cyclic wrap: restore stage 0's frequency for the next iteration.
    if (mhz_per_stage.front() != mhz_per_stage.back()) {
        Tick dispatch = iteration_end - options.assumed_set_freq_latency;
        std::size_t pos = triggerPosFor(records, dispatch, last_pos);
        plan.triggers.push_back(
            {static_cast<std::size_t>(records[pos].op_id),
             mhz_per_stage.front()});
    }

    return plan;
}

} // namespace opdvfs::dvfs
