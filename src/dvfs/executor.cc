#include "dvfs/executor.h"

#include <algorithm>
#include <stdexcept>

namespace opdvfs::dvfs {

namespace {

/**
 * Trigger selection of Fig. 14: the last operator completing at or
 * before @p dispatch_tick.  Falls back to the first operator when the
 * dispatch point precedes every completion.
 */
std::size_t
triggerOpFor(const std::vector<trace::OpRecord> &records, Tick dispatch_tick)
{
    std::size_t chosen = static_cast<std::size_t>(records.front().op_id);
    for (const auto &record : records) {
        if (record.end > dispatch_tick)
            break;
        chosen = static_cast<std::size_t>(record.op_id);
    }
    return chosen;
}

} // namespace

ExecutionPlan
planExecution(const std::vector<Stage> &stages,
              const std::vector<double> &mhz_per_stage,
              const std::vector<trace::OpRecord> &records,
              const ExecutorOptions &options)
{
    if (stages.size() != mhz_per_stage.size())
        throw std::invalid_argument("planExecution: size mismatch");
    if (records.empty())
        throw std::invalid_argument("planExecution: no records");

    Tick iteration_end = 0;
    for (const auto &record : records)
        iteration_end = std::max(iteration_end, record.end);

    ExecutionPlan plan;
    plan.initial_mhz = mhz_per_stage.front();

    // Changes at interior stage boundaries.
    for (std::size_t s = 1; s < stages.size(); ++s) {
        if (mhz_per_stage[s] == mhz_per_stage[s - 1])
            continue;
        Tick dispatch = stages[s].start - options.assumed_set_freq_latency;
        plan.triggers.push_back(
            {triggerOpFor(records, dispatch), mhz_per_stage[s]});
    }

    // Cyclic wrap: restore stage 0's frequency for the next iteration.
    if (mhz_per_stage.front() != mhz_per_stage.back()) {
        Tick dispatch = iteration_end - options.assumed_set_freq_latency;
        plan.triggers.push_back(
            {triggerOpFor(records, dispatch), mhz_per_stage.front()});
    }

    return plan;
}

} // namespace opdvfs::dvfs
